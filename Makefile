# steerq development targets. `make ci` is the authoritative gate; the
# other targets are the individual stages for quick local iteration.

.PHONY: all build test race lint vet fmt fuzz ci

all: build

build:
	go build ./...

test:
	go test ./...

race:
	STEERQ_CHECK_PLANS=1 go test -race ./...

lint:
	go run ./cmd/steerq-lint ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

fuzz:
	go test -fuzz=FuzzParse -fuzztime=15s ./internal/scopeql/
	go test -fuzz=FuzzCompile -fuzztime=15s ./internal/scopeql/

ci:
	./ci.sh
