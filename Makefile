# steerq development targets. `make ci` is the authoritative gate; the
# other targets are the individual stages for quick local iteration.

.PHONY: all build test race lint lint-fix vet fmt fuzz bench bench-compare ci

all: build

build:
	go build ./...

test:
	go test ./...

race:
	STEERQ_CHECK_PLANS=1 go test -race ./...

# lint mirrors the CI stage: all ten analyzers, findings filtered through the
# committed baseline (stale entries fail). lint-fix applies the machine
# fixes (detcheck sort insertions, ctxflow context threading) in place.
lint:
	go run ./cmd/steerq-lint -baseline lint-baseline.json ./...

lint-fix:
	go run ./cmd/steerq-lint -fix ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

fuzz:
	go test -fuzz=FuzzParse -fuzztime=15s ./internal/scopeql/
	go test -fuzz=FuzzCompile -fuzztime=15s ./internal/scopeql/

# bench runs the pipeline benchmarks and regenerates BENCH_pipeline.json
# (ns/op, allocs/op, cache hit rate, serial-vs-parallel speedup, and the
# workers-1/2/4/8 Zipf scaling sweep on this machine) so PRs carry a perf
# trajectory, then regenerates BENCH_serving.json (serving-path load legs:
# workers-1/2/4/8 saturation sweeps, paced diurnal/burst shape legs with
# coordinated-omission-corrected percentiles, and a loopback steerqd leg).
# On machines with fewer cores than workers the parallel legs are forced and
# annotated oversubscribed rather than skipped.
bench:
	go test -run '^$$' -bench 'BenchmarkPipeline' -benchmem .
	STEERQ_BENCH_FORCE_PARALLEL=1 go run ./cmd/steerq-bench -perf -perf-out BENCH_pipeline.json
	go run ./cmd/steerq-bench -serving -serving-out BENCH_serving.json

# bench-compare diffs older reports against the current BENCH_pipeline.json
# and BENCH_serving.json and exits nonzero on a regression past the
# thresholds (ns/op, allocs/op, scaling-sweep speedup, and serving achieved
# QPS at the highest worker count). Usage:
#   make bench-compare OLD=old/BENCH_pipeline.json OLD_SERVING=old/BENCH_serving.json
OLD ?= BENCH_pipeline.json
OLD_SERVING ?= BENCH_serving.json
bench-compare:
	go run ./cmd/steerq-bench -compare $(OLD) -perf-out BENCH_pipeline.json
	go run ./cmd/steerq-bench -compare-serving $(OLD_SERVING) -serving-out BENCH_serving.json

ci:
	./ci.sh
