# steerq development targets. `make ci` is the authoritative gate; the
# other targets are the individual stages for quick local iteration.

.PHONY: all build test race lint lint-fix vet fmt fuzz bench bench-compare ci

all: build

build:
	go build ./...

test:
	go test ./...

race:
	STEERQ_CHECK_PLANS=1 go test -race ./...

# lint mirrors the CI stage: all ten analyzers, findings filtered through the
# committed baseline (stale entries fail). lint-fix applies the machine
# fixes (detcheck sort insertions, ctxflow context threading) in place.
lint:
	go run ./cmd/steerq-lint -baseline lint-baseline.json ./...

lint-fix:
	go run ./cmd/steerq-lint -fix ./...

vet:
	go vet ./...

fmt:
	gofmt -w .

fuzz:
	go test -fuzz=FuzzParse -fuzztime=15s ./internal/scopeql/
	go test -fuzz=FuzzCompile -fuzztime=15s ./internal/scopeql/

# bench runs the pipeline benchmarks and regenerates BENCH_pipeline.json
# (ns/op, allocs/op, cache hit rate, serial-vs-parallel speedup, and the
# workers-1/2/4/8 Zipf scaling sweep on this machine) so PRs carry a perf
# trajectory. On machines with fewer cores than workers the parallel legs
# are forced and annotated oversubscribed rather than skipped.
bench:
	go test -run '^$$' -bench 'BenchmarkPipeline' -benchmem .
	STEERQ_BENCH_FORCE_PARALLEL=1 go run ./cmd/steerq-bench -perf -perf-out BENCH_pipeline.json

# bench-compare diffs an older report against the current BENCH_pipeline.json
# and exits nonzero on a regression past the thresholds (ns/op, allocs/op,
# and scaling-sweep speedup at the highest worker count). Usage:
#   make bench-compare OLD=path/to/old/BENCH_pipeline.json
OLD ?= BENCH_pipeline.json
bench-compare:
	go run ./cmd/steerq-bench -compare $(OLD) -perf-out BENCH_pipeline.json

ci:
	./ci.sh
