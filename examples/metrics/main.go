// Metrics: the Figure 7 scenario. For a set of Workload B jobs, execute ten
// alternative rule configurations each, then choose the best configuration
// per metric — runtime, CPU time, or I/O time — and observe the cross-metric
// tension: optimizing one metric frequently regresses another (§6.2).
//
// Run with:
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"log"

	"steerq/internal/abtest"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	w := workload.Generate(workload.ProfileB(0.004, 2021))
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	h := abtest.New(w.Cat, opt, 7)
	p := steering.NewPipeline(h, xrand.New(5))
	p.MaxCandidates = 200
	p.ExecutePerJob = 10

	var analyses []*steering.Analysis
	for _, j := range w.Day(0) {
		probe := h.RunConfig(j.Root, opt.Rules.DefaultConfig(), j.Day, j.ID+"/probe")
		if probe.Err != nil || probe.Metrics.RuntimeSec < 60 {
			continue
		}
		a, err := p.Analyze(j)
		if err != nil {
			log.Printf("analyze %s: %v", j.ID, err)
			continue
		}
		if len(a.Trials) > 0 {
			analyses = append(analyses, a)
		}
		if len(analyses) >= 15 {
			break
		}
	}
	if len(analyses) == 0 {
		log.Fatal("no jobs analyzed; increase the scale")
	}

	metrics := []steering.Metric{steering.MetricRuntime, steering.MetricCPU, steering.MetricIO}
	for _, pickBy := range metrics {
		fmt.Printf("\nselecting the best configuration per job by %s:\n", pickBy)
		fmt.Printf("  %-14s %10s %10s %10s\n", "job", "runtime", "cpu-time", "io-time")
		regress := map[steering.Metric]int{}
		for _, a := range analyses {
			best := a.BestAlternative(pickBy)
			if best == nil {
				continue
			}
			var cells []string
			for _, m := range metrics {
				pct := a.PercentChange(best, m)
				if pct > 1 {
					regress[m]++
				}
				cells = append(cells, fmt.Sprintf("%+8.1f%%", pct))
			}
			fmt.Printf("  %-14s %10s %10s %10s\n", a.Job.ID, cells[0], cells[1], cells[2])
		}
		fmt.Printf("  regressions: runtime=%d cpu=%d io=%d of %d jobs\n",
			regress[steering.MetricRuntime], regress[steering.MetricCPU], regress[steering.MetricIO], len(analyses))
	}
	fmt.Println("\npicking for one metric regresses others — the tension of Figure 7;")
	fmt.Println("a deployment would run separate per-metric models and choose by cluster load.")
}
