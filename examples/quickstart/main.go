// Quickstart: compile one SCOPE-like job, inspect its rule signature, then
// steer it — discover a better rule configuration with the offline pipeline
// and compare simulated executions.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"steerq/internal/abtest"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	// The generated Workload A catalog stands in for a data lake: its
	// streams carry both the statistics the optimizer sees and the hidden
	// true distributions the execution simulator uses.
	w := workload.Generate(workload.ProfileA(0.002, 2021))
	cat := w.Cat

	script := buildScript(cat)
	fmt.Println("script:")
	fmt.Println(script)

	root, err := scopeql.Compile(script, cat)
	if err != nil {
		log.Fatal(err)
	}

	opt := rules.NewOptimizer(cost.NewEstimated(cat))
	rs := opt.Rules
	h := abtest.New(cat, opt, 7)

	// Compile and execute under the default rule configuration.
	def := h.RunConfig(root, rs.DefaultConfig(), 0, "quickstart")
	if def.Err != nil {
		log.Fatal(def.Err)
	}
	fmt.Printf("default: est cost %.2f, simulated runtime %.1fs\n", def.EstCost, def.Metrics.RuntimeSec)
	fmt.Println("default rule signature:")
	for _, id := range def.Signature.Ones() {
		ri, _ := rs.Info(id)
		fmt.Printf("  %s\n", ri)
	}

	// The job span: every non-required rule that can influence this job's
	// final plan (Algorithm 1 of the paper).
	span, err := steering.JobSpan(opt, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob span: %d of %d non-required rules\n", span.Count(), len(rs.NonRequiredIDs()))

	// Run the discovery pipeline: sample candidate configurations from the
	// span, recompile them, execute the 10 cheapest, keep the best.
	p := steering.NewPipeline(h, xrand.New(11))
	p.MaxCandidates = 200
	job := &workload.Job{ID: "quickstart", Root: root, Script: script}
	a, err := p.Analyze(job)
	if err != nil {
		log.Fatal(err)
	}
	best := a.BestConfig(steering.MetricRuntime)
	fmt.Printf("\npipeline: %d candidates compiled, %d executed\n", len(a.Candidates), len(a.Trials))
	fmt.Printf("best configuration: runtime %.1fs (%+.1f%% vs default)\n",
		best.Metrics.RuntimeSec, a.PercentChange(best, steering.MetricRuntime))
	diff := steering.Diff(a.Default.Signature, best.Signature)
	fmt.Println("RuleDiff of the best plan:")
	for _, id := range diff.OnlyDefault {
		ri, _ := rs.Info(id)
		fmt.Printf("  only in default plan: %s\n", ri.Name)
	}
	for _, id := range diff.OnlyNew {
		ri, _ := rs.Info(id)
		fmt.Printf("  only in best plan:    %s\n", ri.Name)
	}
}

// buildScript assembles a filter-join-aggregate job against whichever
// generated fact and dimension streams share a key domain, so the example
// works for any generator seed.
func buildScript(cat *catalog.Catalog) string {
	fact, dim, key, measure, filterCol := pickStreams(cat)
	var b strings.Builder
	fmt.Fprintf(&b, "f = SELECT %s, %s FROM \"%s\" WHERE %s > 10;\n", key, measure, fact, measure)
	fmt.Fprintf(&b, "j = SELECT f.%s AS %s, f.%s AS %s FROM f INNER JOIN \"%s\" AS d ON f.%s == d.%s;\n",
		key, key, measure, measure, dim, key, key)
	fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM j GROUP BY %s;\n", key, measure, key)
	fmt.Fprintf(&b, "OUTPUT a TO \"out/quickstart\";\n")
	_ = filterCol
	return b.String()
}

func pickStreams(cat *catalog.Catalog) (fact, dim, key, measure, filterCol string) {
	names := cat.StreamNames()
	// Find a dimension stream first: its first column is its key domain.
	for _, dn := range names {
		if !strings.Contains(dn, "/dim_") {
			continue
		}
		dkey := cat.Stream(dn).Columns[0].Name
		for _, fn := range names {
			if !strings.Contains(fn, "/fact_") {
				continue
			}
			st := cat.Stream(fn)
			if st.Column(dkey) == nil {
				continue
			}
			// Need a numeric measure column distinct from the key.
			for _, c := range st.Columns {
				if c.Name != dkey && c.Max > 100 && c.TrueDistinct > 1000 {
					return fn, dn, dkey, c.Name, ""
				}
			}
		}
	}
	log.Fatal("no joinable fact/dim pair found in the generated catalog")
	return
}
