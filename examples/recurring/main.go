// Recurring: the Figure 1 scenario. Discover a good rule configuration for
// one job, then apply that same configuration to every job sharing its rule
// signature (its "job group") across a week of daily arrivals — the paper's
// extrapolation step (§6.4).
//
// Run with:
//
//	go run ./examples/recurring
package main

import (
	"fmt"
	"log"

	"steerq/internal/abtest"
	"steerq/internal/cascades"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	const days = 7
	w := workload.Generate(workload.ProfileA(0.003, 2021))
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	h := abtest.New(w.Cat, opt, 7)
	grouper := steering.NewGrouper(h)

	// Collect a week of jobs and group them by default rule signature.
	var corpus []*workload.Job
	for d := 0; d < days; d++ {
		corpus = append(corpus, w.Day(d)...)
	}
	groups, err := grouper.Group(corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs over %d days fall into %d rule-signature job groups\n",
		len(corpus), days, len(groups))

	// Run the discovery pipeline on base jobs from the largest groups until
	// one yields a configuration that beats its own default noticeably.
	p := steering.NewPipeline(h, xrand.New(3))
	p.MaxCandidates = 250
	for _, g := range groups {
		if len(g.Jobs) < 10 {
			continue
		}
		base := g.Jobs[0]
		// Focus on long-running groups: short jobs' runtime variance makes
		// extrapolated improvements indistinguishable from noise (§3.1.1).
		probe := h.RunConfig(base.Root, opt.Rules.DefaultConfig(), base.Day, base.ID+"/probe")
		if probe.Err != nil || probe.Metrics.RuntimeSec < 120 {
			continue
		}
		a, err := p.Analyze(base)
		if err != nil {
			continue
		}
		best := a.BestAlternative(steering.MetricRuntime)
		if best == nil {
			continue
		}
		pct := a.PercentChange(best, steering.MetricRuntime)
		if pct > -10 {
			continue // not worth extrapolating
		}
		fmt.Printf("\nbase job %s: best configuration is %.1f%% faster than default\n", base.ID, pct)
		diff := steering.Diff(a.Default.Signature, best.Signature)
		fmt.Printf("RuleDiff: -%v +%v\n",
			ruleNames(opt.Rules, diff.OnlyDefault), ruleNames(opt.Rules, diff.OnlyNew))

		// Extrapolate the configuration to the rest of the group across the
		// week.
		rest := g.Jobs[1:]
		if len(rest) > 65 {
			rest = rest[:65]
		}
		cmp := steering.Extrapolate(h, best.Config, rest)
		improved, regressed := 0, 0
		for _, c := range cmp {
			marker := " "
			switch {
			case c.PctChange < -1:
				improved++
				marker = "+"
			case c.PctChange > 1:
				regressed++
				marker = "-"
			}
			fmt.Printf("  %s %-14s default=%7.0fs steered=%7.0fs (%+6.1f%%)\n",
				marker, c.Job.ID, c.Default.Metrics.RuntimeSec, c.New.Metrics.RuntimeSec, c.PctChange)
		}
		fmt.Printf("extrapolation over %d jobs: %d improved, %d regressed\n",
			len(cmp), improved, regressed)
		if regressed > 0 {
			fmt.Println("regressions motivate the learning step (examples/learned).")
		}
		return
	}
	fmt.Println("no group with a >10% base improvement found at this scale; try another seed")
}

func ruleNames(rs *cascades.RuleSet, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if ri, ok := rs.Info(id); ok {
			out = append(out, ri.Name)
		}
	}
	return out
}
