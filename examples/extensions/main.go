// Extensions: the §8 future-work directions, end to end on one job.
//
//  1. Feedback-guided iterative search: execution results reweight which rule
//     flips later search rounds try.
//  2. Rule-independence discovery: probe which span rules interact, partition
//     the span, and shrink the configuration space.
//  3. Deployment: export the discovered configuration as a SCOPE-style plan
//     hint (§3.3) and parse it back.
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"steerq/internal/abtest"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	w := workload.Generate(workload.ProfileA(0.003, 2021))
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	h := abtest.New(w.Cat, opt, 7)
	p := steering.NewPipeline(h, xrand.New(31))
	p.MaxCandidates = 150

	// Pick a long-running job.
	var job *workload.Job
	for _, j := range w.Day(0) {
		t := h.RunConfig(j.Root, opt.Rules.DefaultConfig(), j.Day, j.ID+"/probe")
		if t.Err == nil && t.Metrics.RuntimeSec > 300 {
			job = j
			break
		}
	}
	if job == nil {
		log.Fatal("no long-running job at this scale")
	}
	a, err := p.Recompile(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: default runtime %.0fs, span %d rules\n",
		job.ID, a.Default.Metrics.RuntimeSec, a.Span.Count())

	// 1. Feedback-guided iterative search.
	it := steering.NewIterativeSearch(p)
	it.Rounds = 3
	it.PerRound = 50
	it.ExecutePerRound = 4
	res, err := it.Run(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niterative search: %d trials over %d rounds\n", len(res.Trials), it.Rounds)
	for _, t := range res.Trials {
		marker := " "
		if res.Best != nil && t.Config.Equal(res.Best.Config) {
			marker = "*"
		}
		fmt.Printf("  %s round %d: %.0fs (est cost %.1f)\n", marker, t.Round, t.Runtime, t.EstCost)
	}
	if res.Best != nil {
		fmt.Printf("best: %.0fs (%+.1f%% vs default)\n", res.Best.Runtime,
			100*(res.Best.Runtime-a.Default.Metrics.RuntimeSec)/a.Default.Metrics.RuntimeSec)
	}

	// 2. Rule-independence discovery.
	ind, err := steering.ProbeIndependence(p, a, xrand.New(33))
	if err != nil {
		log.Fatal(err)
	}
	naive, part := ind.SearchSpace(a.Span.Count())
	fmt.Printf("\nindependence probe: %d compilations partition the %d-rule span into %d groups\n",
		ind.Compilations, a.Span.Count(), len(ind.Groups))
	for gi, g := range ind.Groups {
		names := make([]string, 0, len(g))
		for _, id := range g {
			ri, _ := opt.Rules.Info(id)
			names = append(names, ri.Name)
		}
		fmt.Printf("  group %d: %v\n", gi+1, names)
	}
	fmt.Printf("configuration space: %.0f -> %.0f (%.1fx smaller)\n", naive, part, naive/part)

	// 3. Deployment as a plan hint.
	p.ExecutePerJob = 8
	p.Execute(a)
	if rec := steering.Recommend(a, opt.Rules); rec != nil {
		fmt.Printf("\nrecommendation for job group %s...:\n%s", rec.GroupSignature[:16], rec.Hints)
		blob, _ := json.MarshalIndent(rec, "", "  ")
		fmt.Printf("as JSON for the workload owner:\n%s\n", blob)
		// A consumer reconstructs the configuration from the hint text.
		cfg, err := steering.ParseHints(rec.Hints, opt.Rules)
		if err != nil {
			log.Fatal(err)
		}
		check := h.RunConfig(job.Root, cfg, job.Day, job.ID+"/from-hints")
		if check.Err != nil {
			log.Fatal(check.Err)
		}
		fmt.Printf("re-executed from hints: %.0fs\n", check.Metrics.RuntimeSec)
	} else {
		fmt.Println("\nno improving configuration found for this job")
	}
}
