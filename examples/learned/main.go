// Learned: §7 end to end. Pick a rule-signature job group of Workload B
// where no single configuration always wins, discover candidate arms with the
// pipeline, collect per-arm runtimes across two weeks of jobs, train the
// one-hidden-layer model with the BCE-on-normalized-runtimes loss, and
// evaluate the learned policy against the default and the oracle on held-out
// jobs.
//
// Run with:
//
//	go run ./examples/learned
package main

import (
	"fmt"
	"log"

	"steerq/internal/abtest"
	"steerq/internal/cost"
	"steerq/internal/learning"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	const days = 14
	w := workload.Generate(workload.ProfileB(0.004, 2021))
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	h := abtest.New(w.Cat, opt, 7)

	var corpus []*workload.Job
	for d := 0; d < days; d++ {
		corpus = append(corpus, w.Day(d)...)
	}
	grouper := steering.NewGrouper(h)
	groups, err := grouper.Group(corpus)
	if err != nil {
		log.Fatal(err)
	}

	// Choose a sizable group of jobs worth optimizing.
	var group *steering.JobGroup
	for _, g := range groups {
		if len(g.Jobs) < 40 {
			continue
		}
		// Probe a member for runtime.
		t := h.RunConfig(g.Jobs[0].Root, opt.Rules.DefaultConfig(), g.Jobs[0].Day, g.Jobs[0].ID+"/probe")
		if t.Err == nil && t.Metrics.RuntimeSec > 30 {
			group = g
			break
		}
	}
	if group == nil {
		log.Fatal("no suitable job group at this scale; raise the scale or change the seed")
	}
	fmt.Printf("job group: %d jobs over %d days share one default rule signature\n",
		len(group.Jobs), days)

	// Discover the group's candidate arms on a few base jobs.
	p := steering.NewPipeline(h, xrand.New(13))
	p.MaxCandidates = 200
	arms, err := learning.CandidateArms(p, group.Jobs, 3, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate arms: %d configurations (arm 0 = default)\n", len(arms))

	// Collect the dataset: every arm executed for every job.
	ds := learning.Collect(h, group.Signature, group.Jobs, arms)
	fmt.Printf("dataset: %d jobs x %d arms\n", len(ds.Examples), len(arms))

	split := learning.NewSplit(len(ds.Examples), xrand.New(17))
	fmt.Printf("split: %d train / %d val / %d test (the paper's 40/20/40)\n",
		len(split.Train), len(split.Val), len(split.Test))

	model := learning.Train(ds, split, learning.DefaultTrainOptions(), xrand.New(19))
	ev := learning.Evaluate(model, ds, split.Test)

	fmt.Println("\nper-test-job outcome (negative = learned beats default):")
	improved, regressed := 0, 0
	for _, o := range ev.PerJob {
		pct := 0.0
		if o.Default > 0 {
			pct = 100 * (o.Learned - o.Default) / o.Default
		}
		switch {
		case pct < -1:
			improved++
		case pct > 1:
			regressed++
		}
		fmt.Printf("  %-14s arm=%d default=%7.1fs learned=%7.1fs best=%7.1fs (%+6.1f%%)\n",
			o.Job.ID, o.Arm, o.Default, o.Learned, o.Best, pct)
	}

	sum := func(get func(learning.JobOutcome) float64) learning.Summary { return ev.Summarize(get) }
	best := sum(func(o learning.JobOutcome) float64 { return o.Best })
	def := sum(func(o learning.JobOutcome) float64 { return o.Default })
	lrn := sum(func(o learning.JobOutcome) float64 { return o.Learned })
	fmt.Printf("\n%-9s %9s %9s %9s\n", "", "Mean", "90P", "99P")
	fmt.Printf("%-9s %9.1f %9.1f %9.1f\n", "Best", best.Mean, best.P90, best.P99)
	fmt.Printf("%-9s %9.1f %9.1f %9.1f\n", "Default", def.Mean, def.P90, def.P99)
	fmt.Printf("%-9s %9.1f %9.1f %9.1f\n", "Learned", lrn.Mean, lrn.P90, lrn.P99)
	fmt.Printf("\n%d improved, %d regressed of %d test jobs\n", improved, regressed, len(ev.PerJob))
}
