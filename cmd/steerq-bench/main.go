// Command steerq-bench regenerates every table and figure of the paper on
// the simulated stack and prints them in order. Use -exp to run a single
// experiment, -workers to fan analysis out across goroutines (results are
// identical at any worker count), and -perf to measure pipeline throughput
// and write a machine-readable BENCH_pipeline.json.
//
// Usage:
//
//	steerq-bench [-scale 0.01] [-seed 2021] [-m 300] [-workers N] [-exp all|table1..table5|fig1..fig8|ablations|extensions] [-v]
//	steerq-bench -perf [-perf-out BENCH_pipeline.json] [-workers 4] [-scale 0.01] [-m 300] [-zipf 1.1] [-perf-quick]
//	steerq-bench -compare old.json [-perf-out new.json] [-compare-ns-threshold 10] [-compare-allocs-threshold 10] [-compare-speedup-threshold 10]
//	steerq-bench -serving [-serving-out BENCH_serving.json] [-serving-qps 2000] [-serving-duration 2s] [-zipf 1.1] [-serving-quick]
//	steerq-bench -compare-serving old.json [-serving-out new.json] [-compare-serving-qps-threshold 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"steerq/internal/experiments"
	"steerq/internal/faults"
)

// main delegates to realMain so deferred profile flushes run before exit
// (os.Exit skips defers).
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		scale      = flag.Float64("scale", 0.01, "workload scale (1.0 = the paper's 150K daily jobs)")
		seed       = flag.Uint64("seed", 2021, "experiment seed")
		m          = flag.Int("m", 300, "candidate configurations per analyzed job (paper: up to 1000)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = $STEERQ_WORKERS or GOMAXPROCS); results are identical at any setting")
		expName    = flag.String("exp", "all", "experiment to run (all, table1..table5, fig1..fig8)")
		perf       = flag.Bool("perf", false, "measure pipeline throughput instead of running experiments")
		perfOut    = flag.String("perf-out", "BENCH_pipeline.json", "output path for the -perf JSON report")
		perfQuick  = flag.Bool("perf-quick", false, "with -perf, time one iteration per leg instead of a calibrated benchmark loop (CI smoke; allocs unreported)")
		zipf       = flag.Float64("zipf", 1.1, "with -perf, Zipf skew s for the scaling sweep's hot-template workload (0 = uniform arrivals, negative disables the sweep)")
		compareOld = flag.String("compare", "", "diff this old BENCH_pipeline.json against -perf-out and exit nonzero on regression past the thresholds")
		compareNs  = flag.Float64("compare-ns-threshold", 10.0, "with -compare, max tolerated ns/op regression in percent")
		compareAl  = flag.Float64("compare-allocs-threshold", 10.0, "with -compare, max tolerated allocs/op regression in percent")
		compareSp  = flag.Float64("compare-speedup-threshold", 10.0, "with -compare, max tolerated scaling-sweep speedup regression at the highest worker count, in percent")
		serving    = flag.Bool("serving", false, "measure the serving path under deterministic open-loop load instead of running experiments")
		servingOut = flag.String("serving-out", "BENCH_serving.json", "output path for the -serving JSON report")
		servingQPS = flag.Float64("serving-qps", 2000, "with -serving, mean offered arrival rate per leg")
		servingDur = flag.Duration("serving-duration", 2*time.Second, "with -serving, arrival-timeline length per leg")
		servingQk  = flag.Bool("serving-quick", false, "with -serving, shrink the offered load and bundle feed (CI smoke)")
		compareSv  = flag.String("compare-serving", "", "diff this old BENCH_serving.json against -serving-out and exit nonzero on regression past the threshold")
		compareSQ  = flag.Float64("compare-serving-qps-threshold", 10.0, "with -compare-serving, max tolerated achieved-QPS regression at the highest worker count, in percent")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation heap profile to this file on exit")
		faultSeed  = flag.String("fault-seed", "", "arm deterministic fault injection with this seed (empty = $STEERQ_FAULT_SEED or off)")
		faultRates = flag.String("fault-rates", "", "fault probabilities as site.kind=prob pairs, e.g. compile.fail=0.1,exec.hang=0.05")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot on exit (.prom/.txt = text exposition, else JSON)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars and /metrics on this address while the run is live")
		verbose    = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	faultPlan, err := faultPlanFromFlags(*faultSeed, *faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "steerq-bench:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench: -cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "steerq-bench: -cpuprofile:", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "steerq-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so alloc_space is complete
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "steerq-bench: -memprofile:", err)
			}
		}()
	}

	if *compareOld != "" {
		if err := runCompare(*compareOld, *perfOut, *compareNs, *compareAl, *compareSp); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
		return 0
	}

	if *compareSv != "" {
		if err := runCompareServing(*compareSv, *servingOut, *compareSQ); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
		return 0
	}

	if *serving {
		if err := runServing(*scale, *seed, *m, *zipf, *servingQPS, *servingDur, *servingQk, *servingOut); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
		return 0
	}

	if *perf {
		if err := runPerf(*scale, *seed, *m, *workers, *zipf, *perfQuick, *perfOut, *metricsOut, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Candidates = *m
	cfg.Workers = *workers
	cfg.Faults = faultPlan
	if *verbose {
		cfg.Log = os.Stderr
	}
	r := experiments.NewRunner(cfg)
	out := os.Stdout

	if *debugAddr != "" {
		srv, err := r.Obs().ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "steerq-bench: debug endpoint on http://%s (/debug/vars, /metrics)\n", srv.Addr())
	}

	names := strings.Split(*expName, ",")
	want := func(n string) bool {
		for _, x := range names {
			if x == "all" || x == n {
				return true
			}
		}
		return false
	}

	run := func(name string, f func() error) {
		if !want(name) {
			return
		}
		// steerq:allow-wallclock — -v progress timing goes to stderr only,
		// never into report output, so the determinism contract is unaffected.
		start := time.Now() // steerq:allow-wallclock — see above.
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "steerq-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *verbose {
			// steerq:allow-wallclock — same stderr-only progress line as above.
			fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out)
	}

	run("table1", func() error { return render1(r, out) })
	run("table2", func() error { return render2(r, out) })
	run("fig2", func() error { return renderF2(r, out) })
	run("fig3", func() error { return renderF3(r, out) })
	run("fig4", func() error { return renderF4(r, out) })
	run("fig5", func() error { return renderF5(r, out) })
	run("fig6", func() error { return renderF6(r, out) })
	run("table3", func() error { return render3(r, out) })
	run("table4", func() error { return render4(r, out) })
	run("fig7", func() error { return renderF7(r, out) })
	run("fig1", func() error { return renderF1(r, out) })
	run("ablations", func() error { return renderAblations(r, out) })
	run("extensions", func() error { return renderExtensions(r, out) })
	var learn *experiments.LearningRun
	run("table5", func() error {
		var err error
		learn, err = r.Learning("B", 14, 3)
		if err != nil {
			return err
		}
		(&experiments.Table5{Run: learn}).Render(out)
		return nil
	})
	run("fig8", func() error {
		if learn == nil {
			var err error
			learn, err = r.Learning("B", 14, 3)
			if err != nil {
				return err
			}
		}
		(&experiments.Figure8{Run: learn}).Render(out)
		return nil
	})

	// Surface compile-cache effectiveness for whatever ran above.
	for _, name := range []string{"A", "B", "C"} {
		st := r.CacheStats(name)
		if st.Hits+st.Misses == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "[compile cache %s: %d hits / %d misses (%.0f%% hit rate), %d entries]\n",
			name, st.Hits, st.Misses, 100*st.HitRate(), st.Entries)
	}
	// With fault injection armed, report how the run survived it.
	if r.Faults() != nil {
		for _, name := range []string{"A", "B", "C"} {
			rep := r.RobustnessFor(name)
			if rep.Analyses == 0 && rep.Record.IsZero() {
				continue
			}
			rep.Render(os.Stderr)
		}
	}
	// Observability rollup for everything that ran above: per-stage spans,
	// compile/exec counters, memo-size histograms.
	snap := r.Obs().Snapshot()
	if err := snap.Report(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "steerq-bench:", err)
		return 1
	}
	if *metricsOut != "" {
		if err := snap.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "steerq-bench:", err)
			return 1
		}
	}
	return 0
}

// faultPlanFromFlags resolves the fault flags, falling back to the
// STEERQ_FAULT_SEED / STEERQ_FAULT_RATES environment knobs.
func faultPlanFromFlags(seed, rates string) (*faults.Plan, error) {
	if seed == "" && rates == "" {
		return faults.PlanFromEnv()
	}
	return faults.ParsePlan(seed, rates)
}

func render1(r *experiments.Runner, w io.Writer) error {
	t, err := r.Table1(0)
	if err != nil {
		return err
	}
	t.Render(w)
	return nil
}

func render2(r *experiments.Runner, w io.Writer) error {
	t, err := r.Table2("A", 0)
	if err != nil {
		return err
	}
	t.Render(w)
	return nil
}

func render3(r *experiments.Runner, w io.Writer) error {
	t, err := r.Table3(0)
	if err != nil {
		return err
	}
	t.Render(w)
	return nil
}

func render4(r *experiments.Runner, w io.Writer) error {
	t, err := r.Table4(0, 3)
	if err != nil {
		return err
	}
	t.Render(w)
	return nil
}

func renderF1(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure1("A", 7, 65)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderF2(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure2("A", 0)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderF3(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure3("A", 0, 150)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderF4(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure4("A", 0, 15)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderF5(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure5("A", 0)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderF6(r *experiments.Runner, w io.Writer) error {
	for _, name := range []string{"A", "B", "C"} {
		f, err := r.Figure6(name, 0)
		if err != nil {
			return err
		}
		f.Render(w)
	}
	return nil
}

func renderF7(r *experiments.Runner, w io.Writer) error {
	f, err := r.Figure7("B", 2)
	if err != nil {
		return err
	}
	f.Render(w)
	return nil
}

func renderAblations(r *experiments.Runner, w io.Writer) error {
	rvg, err := r.RandomVsGuided("A", 0, 12, 8)
	if err != nil {
		return err
	}
	rvg.Render(w)
	fmt.Fprintln(w)
	ss, err := r.SpanSearch("A", 0, 25, 40)
	if err != nil {
		return err
	}
	ss.Render(w)
	fmt.Fprintln(w)
	gr, err := r.Grouping("B", 7)
	if err != nil {
		return err
	}
	gr.Render(w)
	return nil
}

func renderExtensions(r *experiments.Runner, w io.Writer) error {
	e, err := r.Extensions("A", 0, 8)
	if err != nil {
		return err
	}
	e.Render(w)
	return nil
}
