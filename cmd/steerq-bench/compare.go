package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// runCompare diffs two BENCH_pipeline.json reports (old vs new) and fails
// when the new serial leg, parallel leg, single-compile section, or scaling
// sweep regressed past the thresholds: nsPct percent on ns/op, allocsPct
// percent on allocs/op, and speedupPct percent on the scaling sweep's
// speedup at the highest worker count. Improvements and regressions inside
// the tolerance print as deltas; anything past a threshold prints as
// REGRESSION and makes the function return an error, so
// `steerq-bench -compare old.json` works as a CI gate around `make bench`.
// The speedup gate is skipped when either sweep is oversubscribed (more
// workers than cores) — those numbers are recorded for continuity, not
// scaling claims — or when either report predates the scaling section.
func runCompare(oldPath, newPath string, nsPct, allocsPct, speedupPct float64) error {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}

	fmt.Printf("compare: %s (old) vs %s (new); thresholds ns/op +%.1f%%, allocs/op +%.1f%%\n",
		oldPath, newPath, nsPct, allocsPct)
	if oldRep.Workload != newRep.Workload || oldRep.Jobs != newRep.Jobs || oldRep.Candidates != newRep.Candidates {
		fmt.Printf("  note: shapes differ (old %s/%dj/%dm, new %s/%dj/%dm) — deltas may not be like-for-like\n",
			oldRep.Workload, oldRep.Jobs, oldRep.Candidates, newRep.Workload, newRep.Jobs, newRep.Candidates)
	}

	var regressions []string
	leg := func(name string, o, n perfConfig) {
		if o.Skipped || n.Skipped {
			why := "old"
			if n.Skipped {
				why = "new"
			}
			fmt.Printf("  %-8s skipped (%s report has no measurement)\n", name, why)
			return
		}
		regressions = append(regressions, diffLeg(name, o.NsPerOp, n.NsPerOp, o.AllocsPerOp, n.AllocsPerOp, nsPct, allocsPct)...)
	}
	leg("serial", oldRep.Serial, newRep.Serial)
	leg("parallel", oldRep.Parallel, newRep.Parallel)
	regressions = append(regressions, diffLeg("compile",
		oldRep.Compile.NsPerCompile, newRep.Compile.NsPerCompile,
		oldRep.Compile.AllocsPerCompile, newRep.Compile.AllocsPerCompile, nsPct, allocsPct)...)
	regressions = append(regressions, diffScaling(oldRep.Scaling, newRep.Scaling, speedupPct)...)

	if len(regressions) > 0 {
		return fmt.Errorf("compare: %d regression(s) past threshold", len(regressions))
	}
	fmt.Println("  ok: no regressions past thresholds")
	return nil
}

// diffLeg prints one section's ns/op and allocs/op deltas and returns a
// description per metric that regressed past its threshold.
func diffLeg(name string, oldNs, newNs, oldAllocs, newAllocs int64, nsPct, allocsPct float64) []string {
	var bad []string
	nsDelta := deltaPct(oldNs, newNs)
	allocDelta := deltaPct(oldAllocs, newAllocs)
	fmt.Printf("  %-8s ns/op %s -> %s (%+.1f%%)  allocs/op %d -> %d (%+.1f%%)\n",
		name, time.Duration(oldNs), time.Duration(newNs), nsDelta, oldAllocs, newAllocs, allocDelta)
	if nsDelta > nsPct {
		msg := fmt.Sprintf("%s ns/op +%.1f%% exceeds +%.1f%%", name, nsDelta, nsPct)
		fmt.Printf("  REGRESSION: %s\n", msg)
		bad = append(bad, msg)
	}
	if allocDelta > allocsPct {
		msg := fmt.Sprintf("%s allocs/op +%.1f%% exceeds +%.1f%%", name, allocDelta, allocsPct)
		fmt.Printf("  REGRESSION: %s\n", msg)
		bad = append(bad, msg)
	}
	return bad
}

// diffScaling gates the scaling sweep's speedup at the highest worker count:
// a drop of more than speedupPct percent is a regression. Sweeps that are
// missing (old-format reports), empty, or oversubscribed print a note and
// pass — an oversubscribed "speedup" measures scheduler overhead under
// contention, not scaling, so gating on it would flap.
func diffScaling(o, n *perfScaling, speedupPct float64) []string {
	switch {
	case o == nil && n == nil:
		return nil
	case o == nil || n == nil:
		why := "old"
		if n == nil {
			why = "new"
		}
		fmt.Printf("  scaling  skipped (%s report has no scaling sweep)\n", why)
		return nil
	case len(o.Legs) == 0 || len(n.Legs) == 0:
		fmt.Printf("  scaling  skipped (empty sweep)\n")
		return nil
	}
	oldMax, newMax := o.Legs[len(o.Legs)-1], n.Legs[len(n.Legs)-1]
	drop := 0.0
	if o.SpeedupAtMax > 0 {
		drop = 100 * (1 - n.SpeedupAtMax/o.SpeedupAtMax)
	}
	fmt.Printf("  scaling  speedup@%dw %.2fx -> %.2fx (%+.1f%%)  steals %d -> %d\n",
		newMax.Workers, o.SpeedupAtMax, n.SpeedupAtMax, -drop, oldMax.Steals, newMax.Steals)
	if o.Oversubscribed || n.Oversubscribed {
		fmt.Printf("  scaling  speedup gate skipped (oversubscribed sweep: workers exceed cores)\n")
		return nil
	}
	if o.SpeedupAtMax > 0 && drop > speedupPct {
		msg := fmt.Sprintf("scaling speedup@%dw -%.1f%% exceeds -%.1f%% (%.2fx -> %.2fx)",
			newMax.Workers, drop, speedupPct, o.SpeedupAtMax, n.SpeedupAtMax)
		fmt.Printf("  REGRESSION: %s\n", msg)
		return []string{msg}
	}
	return nil
}

// deltaPct is the percent change from old to new; positive means new is
// worse (bigger). A non-positive old value yields 0 rather than dividing by
// zero — a report that never measured the metric cannot regress.
func deltaPct(old, new int64) float64 {
	if old <= 0 {
		return 0
	}
	return 100 * (float64(new)/float64(old) - 1)
}

func readReport(path string) (*perfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("compare: %w", err)
	}
	var rep perfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("compare: %s: %w", path, err)
	}
	return &rep, nil
}
