package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/experiments"
	"steerq/internal/obs"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// perfConfig is one measured pipeline configuration in BENCH_pipeline.json.
type perfConfig struct {
	Workers     int     `json:"workers"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	SecPerOp    float64 `json:"sec_per_op"`
	Skipped     bool    `json:"skipped,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// perfCompile measures one default-configuration Cascades compile of a single
// job — the unit the tentpole optimizes. The pipeline numbers above multiply
// this by jobs x candidates.
type perfCompile struct {
	Job              string `json:"job"`
	NsPerCompile     int64  `json:"ns_per_compile"`
	AllocsPerCompile int64  `json:"allocs_per_compile"`
	BytesPerCompile  int64  `json:"bytes_per_compile"`
	Iterations       int    `json:"iterations"`
}

// perfBaseline pins the serial-leg numbers this PR was measured against and
// the reductions achieved, so the report is self-describing.
type perfBaseline struct {
	Source            string  `json:"source"`
	NsPerOp           int64   `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	NsReductionPct    float64 `json:"ns_reduction_pct"`
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	BytesReductionPct float64 `json:"bytes_reduction_pct"`
}

// prBaseline is the serial pipeline leg recorded by PR 2's
// BENCH_pipeline.json on this same machine, before the allocation work.
var prBaseline = perfBaseline{
	Source:      "PR 2 BENCH_pipeline.json (pre-interning-rework serial leg)",
	NsPerOp:     253803482,
	AllocsPerOp: 1475710,
	BytesPerOp:  100479020,
}

// perfCache reports compile-cache effectiveness over two warm passes.
type perfCache struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
	// Projected counts hits found through footprint projection — the probing
	// configuration differed from the writer's on rules the compile never
	// consulted.
	Projected     uint64  `json:"projected_hits"`
	ProjectedRate float64 `json:"projected_hit_rate"`
	Evictions     uint64  `json:"evictions"`
}

// perfFootprint reports how far footprint memoization collapsed the
// candidate stage on a cold cache: of Candidates generated configurations
// only Compiled went through the optimizer; the rest shared an equivalence
// class representative's outcome.
type perfFootprint struct {
	Candidates  int     `json:"candidates"`
	Classes     int     `json:"classes"`
	Compiled    int     `json:"compiled"`
	CacheSeeded int     `json:"cache_seeded"`
	Avoided     int     `json:"compiles_avoided"`
	AvoidedRate float64 `json:"avoided_rate"`
}

// perfReport is the full machine-readable benchmark record. Future PRs diff
// these files to track the perf trajectory.
type perfReport struct {
	GeneratedUnix int64         `json:"generated_unix"`
	NumCPU        int           `json:"num_cpu"`
	Workload      string        `json:"workload"`
	Jobs          int           `json:"jobs"`
	Candidates    int           `json:"candidates"`
	Serial        perfConfig    `json:"serial"`
	Parallel      perfConfig    `json:"parallel"`
	Speedup       float64       `json:"speedup,omitempty"`
	Compile       perfCompile   `json:"compile"`
	Baseline      perfBaseline  `json:"baseline"`
	Cache         perfCache     `json:"cache"`
	Footprint     perfFootprint `json:"footprint"`
	Obs           *obs.Snapshot `json:"obs,omitempty"`
}

// minParallelProcs is the floor for the parallel leg: measuring "parallel"
// speedup with fewer schedulable threads than workers is how PR 2 recorded a
// misleading 0.97x.
const minParallelProcs = 4

// runPerf measures Pipeline.Recompile wall-clock at Workers=1 vs
// Workers=workers over a fixed job set (cold cache each iteration, so the
// comparison is honest), plus a single-compile microbenchmark and
// compile-cache hit rates over repeated passes, and writes the result as JSON
// to outPath.
func runPerf(scale float64, seed uint64, m, workers int, outPath, metricsOut string, verbose bool) error {
	if workers <= 0 {
		workers = 4
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Candidates = m
	r := experiments.NewRunner(cfg)
	const wl = "A"
	long := r.LongJobs(wl, 0)
	if len(long) == 0 {
		return fmt.Errorf("perf: workload %s has no long-running jobs at scale %g", wl, scale)
	}
	jobs := long
	if len(jobs) > 6 {
		jobs = jobs[:6]
	}
	h := r.Harness(wl)

	recompileAll := func(w int, cache *steering.CompileCache, stats *steering.FootprintStats) error {
		p := steering.NewPipeline(h, xrand.New(seed).Derive("perf"))
		p.MaxCandidates = m
		p.Workers = w
		p.Cache = cache
		for _, j := range jobs {
			a, err := p.Recompile(j)
			if err != nil {
				return fmt.Errorf("perf: recompile %s: %w", j.ID, err)
			}
			if stats != nil {
				stats.Add(a.Footprint)
			}
		}
		return nil
	}
	// Warm up once so lazily built state (catalog statistics, day inputs)
	// does not land inside the first measured iteration; the pass doubles as
	// the footprint-collapse census (cold cache, serial — the same work every
	// measured iteration repeats).
	var fpStats steering.FootprintStats
	if err := recompileAll(1, nil, &fpStats); err != nil {
		return err
	}

	measure := func(w int) (perfConfig, error) {
		var err error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if e := recompileAll(w, nil, nil); e != nil && err == nil {
					err = e
				}
			}
		})
		return perfConfig{
			Workers:     w,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
			SecPerOp:    float64(res.NsPerOp()) / 1e9,
		}, err
	}

	serial, err := measure(1)
	if err != nil {
		return err
	}

	// Parallel leg: raise GOMAXPROCS to at least minParallelProcs so the
	// worker goroutines can actually run concurrently. A single-core
	// machine cannot produce a meaningful parallel measurement at all, so
	// the leg is skipped there with a logged warning rather than recorded
	// as a misleading ~1.0x — unless STEERQ_BENCH_FORCE_PARALLEL=1 asks for
	// an oversubscribed run anyway (downstream tooling that diffs reports
	// chokes on the all-zero fields a skip produces; an annotated
	// oversubscribed number is the lesser evil).
	force := os.Getenv("STEERQ_BENCH_FORCE_PARALLEL") == "1"
	var parallel perfConfig
	if runtime.NumCPU() < 2 && !force {
		note := fmt.Sprintf("skipped: single-core machine (NumCPU=1); parallel leg needs GOMAXPROCS >= %d schedulable cores; set STEERQ_BENCH_FORCE_PARALLEL=1 to run it oversubscribed", minParallelProcs)
		fmt.Fprintf(os.Stderr, "steerq-bench: warning: %s\n", note)
		parallel = perfConfig{
			Workers:    workers,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Skipped:    true,
			Note:       note,
		}
	} else {
		prev := runtime.GOMAXPROCS(0)
		procs := prev
		if procs < minParallelProcs {
			procs = minParallelProcs
		}
		runtime.GOMAXPROCS(procs)
		parallel, err = measure(workers)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return err
		}
		if procs > runtime.NumCPU() {
			parallel.Note = fmt.Sprintf("oversubscribed: GOMAXPROCS=%d > NumCPU=%d; speedup is not a scaling measurement", procs, runtime.NumCPU())
			if force && runtime.NumCPU() < 2 {
				parallel.Note += " (STEERQ_BENCH_FORCE_PARALLEL=1)"
			}
			fmt.Fprintf(os.Stderr, "steerq-bench: warning: parallel leg %s\n", parallel.Note)
		}
	}

	// Single-compile microbenchmark: one job, default (all-rules)
	// configuration, fresh memo per iteration.
	full := bitvec.AllSet(bitvec.Width)
	job := jobs[0]
	var compileErr error
	cres := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, e := h.Opt.Optimize(job.Root, full); e != nil && compileErr == nil {
				compileErr = e
			}
		}
	})
	if compileErr != nil {
		return fmt.Errorf("perf: compile %s: %w", job.ID, compileErr)
	}
	compile := perfCompile{
		Job:              job.ID,
		NsPerCompile:     cres.NsPerOp(),
		AllocsPerCompile: cres.AllocsPerOp(),
		BytesPerCompile:  cres.AllocedBytesPerOp(),
		Iterations:       cres.N,
	}

	// Cache effectiveness: two passes over the same jobs through one cache —
	// the steady state of recurring-workload experiments.
	cache := steering.NewCompileCache()
	for pass := 0; pass < 2; pass++ {
		if err := recompileAll(workers, cache, nil); err != nil {
			return err
		}
	}
	st := cache.Stats()

	baseline := prBaseline
	baseline.NsReductionPct = reductionPct(baseline.NsPerOp, serial.NsPerOp)
	baseline.AllocReductionPct = reductionPct(baseline.AllocsPerOp, serial.AllocsPerOp)
	baseline.BytesReductionPct = reductionPct(baseline.BytesPerOp, serial.BytesPerOp)

	// Fold the run's observability snapshot into the report: compile counters
	// and memo-size histograms accumulated across every measured iteration.
	snap := r.Obs().Snapshot()

	rep := perfReport{
		// ClockFromEnv keeps -perf reports reproducible: under STEERQ_VCLOCK
		// the stamp is the frozen epoch (0), so CI can diff whole reports.
		GeneratedUnix: obs.ClockFromEnv()().Unix(),
		NumCPU:        runtime.NumCPU(),
		Workload:      wl,
		Jobs:          len(jobs),
		Candidates:    m,
		Serial:        serial,
		Parallel:      parallel,
		Compile:       compile,
		Baseline:      baseline,
		Cache: perfCache{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Entries:       st.Entries,
			HitRate:       st.HitRate(),
			Projected:     st.Projected,
			ProjectedRate: st.ProjectedRate(),
			Evictions:     st.Evictions,
		},
		Footprint: perfFootprint{
			Candidates:  fpStats.Candidates,
			Classes:     fpStats.Classes,
			Compiled:    fpStats.Compiled,
			CacheSeeded: fpStats.CacheSeeded,
			Avoided:     fpStats.Avoided,
		},
		Obs: &snap,
	}
	if fpStats.Candidates > 0 {
		rep.Footprint.AvoidedRate = float64(fpStats.Avoided) / float64(fpStats.Candidates)
	}
	if !parallel.Skipped && parallel.NsPerOp > 0 {
		rep.Speedup = float64(serial.NsPerOp) / float64(parallel.NsPerOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf: %d jobs x %d candidates on %d CPU(s)\n", len(jobs), m, rep.NumCPU)
	fmt.Printf("  workers=1 (GOMAXPROCS=%d): %s/op  %d allocs/op  %d B/op\n",
		serial.GoMaxProcs, time.Duration(serial.NsPerOp), serial.AllocsPerOp, serial.BytesPerOp)
	if parallel.Skipped {
		fmt.Printf("  workers=%d: %s\n", workers, parallel.Note)
	} else {
		fmt.Printf("  workers=%d (GOMAXPROCS=%d): %s/op  %d allocs/op  (%.2fx speedup)\n",
			workers, parallel.GoMaxProcs, time.Duration(parallel.NsPerOp), parallel.AllocsPerOp, rep.Speedup)
	}
	fmt.Printf("  compile %s: %s  %d allocs  %d B\n",
		compile.Job, time.Duration(compile.NsPerCompile), compile.AllocsPerCompile, compile.BytesPerCompile)
	fmt.Printf("  vs baseline: allocs -%.1f%%  bytes -%.1f%%  time -%.1f%%\n",
		baseline.AllocReductionPct, baseline.BytesReductionPct, baseline.NsReductionPct)
	fmt.Printf("  footprint: %d candidates -> %d classes, %d compiled (%.0f%% compiles avoided)\n",
		rep.Footprint.Candidates, rep.Footprint.Classes, rep.Footprint.Compiled, 100*rep.Footprint.AvoidedRate)
	fmt.Printf("  cache: %d hits / %d misses (%.0f%% hit rate, %.0f%% projected, %d entries, %d evictions)\n",
		st.Hits, st.Misses, 100*st.HitRate(), 100*st.ProjectedRate(), st.Entries, st.Evictions)
	fmt.Printf("  wrote %s\n", outPath)
	if metricsOut != "" {
		if err := snap.WriteFile(metricsOut); err != nil {
			return err
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%s", data)
	}
	return nil
}

func reductionPct(base, now int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(now)/float64(base))
}
