package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"steerq/internal/experiments"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// perfConfig is one measured pipeline configuration in BENCH_pipeline.json.
type perfConfig struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	SecPerOp    float64 `json:"sec_per_op"`
}

// perfCache reports compile-cache effectiveness over two warm passes.
type perfCache struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// perfReport is the full machine-readable benchmark record. Future PRs diff
// these files to track the perf trajectory.
type perfReport struct {
	GeneratedUnix int64      `json:"generated_unix"`
	GoMaxProcs    int        `json:"gomaxprocs"`
	Workload      string     `json:"workload"`
	Jobs          int        `json:"jobs"`
	Candidates    int        `json:"candidates"`
	Serial        perfConfig `json:"serial"`
	Parallel      perfConfig `json:"parallel"`
	Speedup       float64    `json:"speedup"`
	Cache         perfCache  `json:"cache"`
}

// runPerf measures Pipeline.Recompile wall-clock at Workers=1 vs
// Workers=workers over a fixed job set (cold cache each iteration, so the
// comparison is honest), plus compile-cache hit rates over repeated passes,
// and writes the result as JSON to outPath.
func runPerf(scale float64, seed uint64, m, workers int, outPath string, verbose bool) error {
	if workers <= 0 {
		workers = 4
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Candidates = m
	r := experiments.NewRunner(cfg)
	const wl = "A"
	long := r.LongJobs(wl, 0)
	if len(long) == 0 {
		return fmt.Errorf("perf: workload %s has no long-running jobs at scale %g", wl, scale)
	}
	jobs := long
	if len(jobs) > 6 {
		jobs = jobs[:6]
	}
	h := r.Harness(wl)

	recompileAll := func(w int, cache *steering.CompileCache) error {
		p := steering.NewPipeline(h, xrand.New(seed).Derive("perf"))
		p.MaxCandidates = m
		p.Workers = w
		p.Cache = cache
		for _, j := range jobs {
			if _, err := p.Recompile(j); err != nil {
				return fmt.Errorf("perf: recompile %s: %w", j.ID, err)
			}
		}
		return nil
	}
	// Warm up once so lazily built state (catalog statistics, day inputs)
	// does not land inside the first measured iteration.
	if err := recompileAll(1, nil); err != nil {
		return err
	}

	measure := func(w int) (perfConfig, error) {
		var err error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if e := recompileAll(w, nil); e != nil && err == nil {
					err = e
				}
			}
		})
		return perfConfig{
			Workers:     w,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
			SecPerOp:    float64(res.NsPerOp()) / 1e9,
		}, err
	}

	serial, err := measure(1)
	if err != nil {
		return err
	}
	parallel, err := measure(workers)
	if err != nil {
		return err
	}

	// Cache effectiveness: two passes over the same jobs through one cache —
	// the steady state of recurring-workload experiments.
	cache := steering.NewCompileCache()
	for pass := 0; pass < 2; pass++ {
		if err := recompileAll(workers, cache); err != nil {
			return err
		}
	}
	st := cache.Stats()

	rep := perfReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workload:      wl,
		Jobs:          len(jobs),
		Candidates:    m,
		Serial:        serial,
		Parallel:      parallel,
		Cache: perfCache{
			Hits:    st.Hits,
			Misses:  st.Misses,
			Entries: st.Entries,
			HitRate: st.HitRate(),
		},
	}
	if parallel.NsPerOp > 0 {
		rep.Speedup = float64(serial.NsPerOp) / float64(parallel.NsPerOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf: %d jobs x %d candidates on GOMAXPROCS=%d\n", len(jobs), m, rep.GoMaxProcs)
	fmt.Printf("  workers=1: %s/op  %d allocs/op\n", time.Duration(serial.NsPerOp), serial.AllocsPerOp)
	fmt.Printf("  workers=%d: %s/op  %d allocs/op  (%.2fx speedup)\n",
		workers, time.Duration(parallel.NsPerOp), parallel.AllocsPerOp, rep.Speedup)
	fmt.Printf("  cache: %d hits / %d misses (%.0f%% hit rate, %d entries)\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Entries)
	fmt.Printf("  wrote %s\n", outPath)
	if verbose {
		fmt.Fprintf(os.Stderr, "%s", data)
	}
	return nil
}
