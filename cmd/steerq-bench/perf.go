package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/experiments"
	"steerq/internal/obs"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// perfConfig is one measured pipeline configuration in BENCH_pipeline.json.
type perfConfig struct {
	Workers     int     `json:"workers"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	SecPerOp    float64 `json:"sec_per_op"`
	Skipped     bool    `json:"skipped,omitempty"`
	// Oversubscribed marks a leg run with GOMAXPROCS above NumCPU (forced
	// via STEERQ_BENCH_FORCE_PARALLEL=1 or a small machine): the number is
	// recorded rather than skipped, but it is not a scaling measurement and
	// downstream gates must not treat it as one.
	Oversubscribed bool   `json:"oversubscribed,omitempty"`
	Note           string `json:"note,omitempty"`
}

// perfScalingLeg is one worker count of the scaling sweep: cold-cache
// Recompile over the Zipf-skewed hot-template job set, with the scheduler's
// steal/merge counters from one representative pass.
type perfScalingLeg struct {
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NsPerOp    int64   `json:"ns_per_op"`
	SecPerOp   float64 `json:"sec_per_op"`
	Iterations int     `json:"iterations"`
	// Speedup is legs[0].NsPerOp / NsPerOp — throughput relative to the
	// one-worker leg of the same sweep.
	Speedup float64 `json:"speedup"`
	// Items/Steals/Merges are per-op scheduler counters: candidate compiles
	// dispatched, cross-worker steals (schedule-dependent, diagnostic only),
	// and serial merge phases. Items and Merges are deterministic.
	Items          int    `json:"items"`
	Steals         uint64 `json:"steals"`
	Merges         int    `json:"merges"`
	Oversubscribed bool   `json:"oversubscribed,omitempty"`
}

// perfScaling is the workers-1/2/4/8 sweep over a Zipf(s) hot-template
// workload — the skewed recurring-template traffic the production paper
// describes. Oversubscribed is true when any leg ran with more workers than
// cores; such sweeps are recorded but exempt from the -compare speedup gate.
type perfScaling struct {
	Workload       string           `json:"workload"`
	ZipfSkew       float64          `json:"zipf_skew"`
	Jobs           int              `json:"jobs"`
	Candidates     int              `json:"candidates"`
	Legs           []perfScalingLeg `json:"legs"`
	SpeedupAtMax   float64          `json:"speedup_at_max"`
	Oversubscribed bool             `json:"oversubscribed,omitempty"`
}

// perfCompile measures one default-configuration Cascades compile of a single
// job — the unit the tentpole optimizes. The pipeline numbers above multiply
// this by jobs x candidates.
type perfCompile struct {
	Job              string `json:"job"`
	NsPerCompile     int64  `json:"ns_per_compile"`
	AllocsPerCompile int64  `json:"allocs_per_compile"`
	BytesPerCompile  int64  `json:"bytes_per_compile"`
	Iterations       int    `json:"iterations"`
}

// perfBaseline pins the serial-leg numbers this PR was measured against and
// the reductions achieved, so the report is self-describing.
type perfBaseline struct {
	Source            string  `json:"source"`
	NsPerOp           int64   `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	NsReductionPct    float64 `json:"ns_reduction_pct"`
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	BytesReductionPct float64 `json:"bytes_reduction_pct"`
}

// prBaseline is the serial pipeline leg recorded by PR 2's
// BENCH_pipeline.json on this same machine, before the allocation work.
var prBaseline = perfBaseline{
	Source:      "PR 2 BENCH_pipeline.json (pre-interning-rework serial leg)",
	NsPerOp:     253803482,
	AllocsPerOp: 1475710,
	BytesPerOp:  100479020,
}

// perfCache reports compile-cache effectiveness over two warm passes.
type perfCache struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
	// Projected counts hits found through footprint projection — the probing
	// configuration differed from the writer's on rules the compile never
	// consulted.
	Projected     uint64  `json:"projected_hits"`
	ProjectedRate float64 `json:"projected_hit_rate"`
	Evictions     uint64  `json:"evictions"`
}

// perfFootprint reports how far footprint memoization collapsed the
// candidate stage on a cold cache: of Candidates generated configurations
// only Compiled went through the optimizer; the rest shared an equivalence
// class representative's outcome.
type perfFootprint struct {
	Candidates  int     `json:"candidates"`
	Classes     int     `json:"classes"`
	Compiled    int     `json:"compiled"`
	CacheSeeded int     `json:"cache_seeded"`
	Avoided     int     `json:"compiles_avoided"`
	AvoidedRate float64 `json:"avoided_rate"`
}

// perfReport is the full machine-readable benchmark record. Future PRs diff
// these files to track the perf trajectory.
type perfReport struct {
	GeneratedUnix int64         `json:"generated_unix"`
	NumCPU        int           `json:"num_cpu"`
	Workload      string        `json:"workload"`
	Jobs          int           `json:"jobs"`
	Candidates    int           `json:"candidates"`
	Serial        perfConfig    `json:"serial"`
	Parallel      perfConfig    `json:"parallel"`
	Speedup       float64       `json:"speedup,omitempty"`
	Scaling       *perfScaling  `json:"scaling,omitempty"`
	Compile       perfCompile   `json:"compile"`
	Baseline      perfBaseline  `json:"baseline"`
	Cache         perfCache     `json:"cache"`
	Footprint     perfFootprint `json:"footprint"`
	Obs           *obs.Snapshot `json:"obs,omitempty"`
}

// minParallelProcs is the floor for the parallel leg: measuring "parallel"
// speedup with fewer schedulable threads than workers is how PR 2 recorded a
// misleading 0.97x.
const minParallelProcs = 4

// benchOnce times a single invocation of f — the -perf-quick measurement
// unit. testing.Benchmark cannot take a -benchtime, so CI smoke runs use one
// timed iteration instead of a calibrated loop.
func benchOnce(f func() error) (int64, error) {
	// steerq:allow-wallclock — this IS the benchmark measurement; timings go
	// into the perf report, never into experiment output.
	start := time.Now() // steerq:allow-wallclock — see above.
	err := f()
	// steerq:allow-wallclock — see above.
	return time.Since(start).Nanoseconds(), err
}

// runPerf measures Pipeline.Recompile wall-clock at Workers=1 vs
// Workers=workers over a fixed job set (cold cache each iteration, so the
// comparison is honest), plus a single-compile microbenchmark, compile-cache
// hit rates over repeated passes, and a workers-1/2/4/8 scaling sweep over a
// Zipf(zipf)-skewed hot-template workload, and writes the result as JSON to
// outPath. quick swaps every calibrated testing.Benchmark loop for one timed
// iteration (allocs unreported) so CI can smoke the whole report cheaply.
func runPerf(scale float64, seed uint64, m, workers int, zipf float64, quick bool, outPath, metricsOut string, verbose bool) error {
	if workers <= 0 {
		workers = 4
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Candidates = m
	r := experiments.NewRunner(cfg)
	const wl = "A"
	long := r.LongJobs(wl, 0)
	if len(long) == 0 {
		return fmt.Errorf("perf: workload %s has no long-running jobs at scale %g", wl, scale)
	}
	jobs := long
	if len(jobs) > 6 {
		jobs = jobs[:6]
	}
	h := r.Harness(wl)

	recompileAll := func(w int, cache *steering.CompileCache, stats *steering.FootprintStats) error {
		p := steering.NewPipeline(h, xrand.New(seed).Derive("perf"))
		p.MaxCandidates = m
		p.Workers = w
		p.Cache = cache
		for _, j := range jobs {
			a, err := p.Recompile(j)
			if err != nil {
				return fmt.Errorf("perf: recompile %s: %w", j.ID, err)
			}
			if stats != nil {
				stats.Add(a.Footprint)
			}
		}
		return nil
	}
	// Warm up once so lazily built state (catalog statistics, day inputs)
	// does not land inside the first measured iteration; the pass doubles as
	// the footprint-collapse census (cold cache, serial — the same work every
	// measured iteration repeats).
	var fpStats steering.FootprintStats
	if err := recompileAll(1, nil, &fpStats); err != nil {
		return err
	}

	measure := func(w int) (perfConfig, error) {
		if quick {
			ns, err := benchOnce(func() error { return recompileAll(w, nil, nil) })
			return perfConfig{
				Workers:    w,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    ns,
				Iterations: 1,
				SecPerOp:   float64(ns) / 1e9,
			}, err
		}
		var err error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if e := recompileAll(w, nil, nil); e != nil && err == nil {
					err = e
				}
			}
		})
		return perfConfig{
			Workers:     w,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
			SecPerOp:    float64(res.NsPerOp()) / 1e9,
		}, err
	}

	serial, err := measure(1)
	if err != nil {
		return err
	}

	// Parallel leg: raise GOMAXPROCS to at least minParallelProcs so the
	// worker goroutines can actually run concurrently. A single-core
	// machine cannot produce a meaningful parallel measurement at all, so
	// the leg is skipped there with a logged warning rather than recorded
	// as a misleading ~1.0x — unless STEERQ_BENCH_FORCE_PARALLEL=1 asks for
	// an oversubscribed run anyway (downstream tooling that diffs reports
	// chokes on the all-zero fields a skip produces; an annotated
	// oversubscribed number is the lesser evil).
	force := os.Getenv("STEERQ_BENCH_FORCE_PARALLEL") == "1"
	var parallel perfConfig
	if runtime.NumCPU() < 2 && !force {
		note := fmt.Sprintf("skipped: single-core machine (NumCPU=1); parallel leg needs GOMAXPROCS >= %d schedulable cores; set STEERQ_BENCH_FORCE_PARALLEL=1 to run it oversubscribed", minParallelProcs)
		fmt.Fprintf(os.Stderr, "steerq-bench: warning: %s\n", note)
		parallel = perfConfig{
			Workers:    workers,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Skipped:    true,
			Note:       note,
		}
	} else {
		prev := runtime.GOMAXPROCS(0)
		procs := prev
		if procs < minParallelProcs {
			procs = minParallelProcs
		}
		runtime.GOMAXPROCS(procs)
		parallel, err = measure(workers)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return err
		}
		if procs > runtime.NumCPU() {
			parallel.Oversubscribed = true
			parallel.Note = fmt.Sprintf("oversubscribed: GOMAXPROCS=%d > NumCPU=%d; speedup is not a scaling measurement", procs, runtime.NumCPU())
			if force && runtime.NumCPU() < 2 {
				parallel.Note += " (STEERQ_BENCH_FORCE_PARALLEL=1)"
			}
			fmt.Fprintf(os.Stderr, "steerq-bench: warning: parallel leg %s\n", parallel.Note)
		}
	}

	// Single-compile microbenchmark: one job, default (all-rules)
	// configuration, fresh memo per iteration.
	full := bitvec.AllSet(bitvec.Width)
	job := jobs[0]
	var compile perfCompile
	if quick {
		ns, err := benchOnce(func() error {
			_, e := h.Opt.Optimize(job.Root, full)
			return e
		})
		if err != nil {
			return fmt.Errorf("perf: compile %s: %w", job.ID, err)
		}
		compile = perfCompile{Job: job.ID, NsPerCompile: ns, Iterations: 1}
	} else {
		var compileErr error
		cres := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, e := h.Opt.Optimize(job.Root, full); e != nil && compileErr == nil {
					compileErr = e
				}
			}
		})
		if compileErr != nil {
			return fmt.Errorf("perf: compile %s: %w", job.ID, compileErr)
		}
		compile = perfCompile{
			Job:              job.ID,
			NsPerCompile:     cres.NsPerOp(),
			AllocsPerCompile: cres.AllocsPerOp(),
			BytesPerCompile:  cres.AllocedBytesPerOp(),
			Iterations:       cres.N,
		}
	}

	// Scaling sweep: workers 1/2/4/8 over the Zipf-skewed hot-template
	// workload, recording speedup and scheduler steal/merge counters. zipf=0
	// is the uniform limit of the law (arrival weights untouched), so the
	// same sweep doubles as the uniform-traffic comparison; negative skew
	// disables the sweep entirely.
	var scaling *perfScaling
	if zipf >= 0 {
		var err error
		scaling, err = measureScaling(scale, seed, m, zipf, quick)
		if err != nil {
			return err
		}
	}

	// Cache effectiveness: two passes over the same jobs through one cache —
	// the steady state of recurring-workload experiments.
	cache := steering.NewCompileCache()
	for pass := 0; pass < 2; pass++ {
		if err := recompileAll(workers, cache, nil); err != nil {
			return err
		}
	}
	st := cache.Stats()

	baseline := prBaseline
	baseline.NsReductionPct = reductionPct(baseline.NsPerOp, serial.NsPerOp)
	baseline.AllocReductionPct = reductionPct(baseline.AllocsPerOp, serial.AllocsPerOp)
	baseline.BytesReductionPct = reductionPct(baseline.BytesPerOp, serial.BytesPerOp)

	// Fold the run's observability snapshot into the report: compile counters
	// and memo-size histograms accumulated across every measured iteration.
	snap := r.Obs().Snapshot()

	rep := perfReport{
		// ClockFromEnv keeps -perf reports reproducible: under STEERQ_VCLOCK
		// the stamp is the frozen epoch (0), so CI can diff whole reports.
		GeneratedUnix: obs.ClockFromEnv()().Unix(),
		NumCPU:        runtime.NumCPU(),
		Workload:      wl,
		Jobs:          len(jobs),
		Candidates:    m,
		Serial:        serial,
		Parallel:      parallel,
		Scaling:       scaling,
		Compile:       compile,
		Baseline:      baseline,
		Cache: perfCache{
			Hits:          st.Hits,
			Misses:        st.Misses,
			Entries:       st.Entries,
			HitRate:       st.HitRate(),
			Projected:     st.Projected,
			ProjectedRate: st.ProjectedRate(),
			Evictions:     st.Evictions,
		},
		Footprint: perfFootprint{
			Candidates:  fpStats.Candidates,
			Classes:     fpStats.Classes,
			Compiled:    fpStats.Compiled,
			CacheSeeded: fpStats.CacheSeeded,
			Avoided:     fpStats.Avoided,
		},
		Obs: &snap,
	}
	if fpStats.Candidates > 0 {
		rep.Footprint.AvoidedRate = float64(fpStats.Avoided) / float64(fpStats.Candidates)
	}
	if !parallel.Skipped && parallel.NsPerOp > 0 {
		rep.Speedup = float64(serial.NsPerOp) / float64(parallel.NsPerOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("perf: %d jobs x %d candidates on %d CPU(s)\n", len(jobs), m, rep.NumCPU)
	fmt.Printf("  workers=1 (GOMAXPROCS=%d): %s/op  %d allocs/op  %d B/op\n",
		serial.GoMaxProcs, time.Duration(serial.NsPerOp), serial.AllocsPerOp, serial.BytesPerOp)
	if parallel.Skipped {
		fmt.Printf("  workers=%d: %s\n", workers, parallel.Note)
	} else {
		fmt.Printf("  workers=%d (GOMAXPROCS=%d): %s/op  %d allocs/op  (%.2fx speedup)\n",
			workers, parallel.GoMaxProcs, time.Duration(parallel.NsPerOp), parallel.AllocsPerOp, rep.Speedup)
	}
	if scaling != nil {
		fmt.Printf("  scaling (zipf s=%g, %d jobs):\n", scaling.ZipfSkew, scaling.Jobs)
		for _, leg := range scaling.Legs {
			tag := ""
			if leg.Oversubscribed {
				tag = "  [oversubscribed]"
			}
			fmt.Printf("    workers=%d: %s/op  %.2fx  %d items  %d steals  %d merges%s\n",
				leg.Workers, time.Duration(leg.NsPerOp), leg.Speedup, leg.Items, leg.Steals, leg.Merges, tag)
		}
	}
	fmt.Printf("  compile %s: %s  %d allocs  %d B\n",
		compile.Job, time.Duration(compile.NsPerCompile), compile.AllocsPerCompile, compile.BytesPerCompile)
	fmt.Printf("  vs baseline: allocs -%.1f%%  bytes -%.1f%%  time -%.1f%%\n",
		baseline.AllocReductionPct, baseline.BytesReductionPct, baseline.NsReductionPct)
	fmt.Printf("  footprint: %d candidates -> %d classes, %d compiled (%.0f%% compiles avoided)\n",
		rep.Footprint.Candidates, rep.Footprint.Classes, rep.Footprint.Compiled, 100*rep.Footprint.AvoidedRate)
	fmt.Printf("  cache: %d hits / %d misses (%.0f%% hit rate, %.0f%% projected, %d entries, %d evictions)\n",
		st.Hits, st.Misses, 100*st.HitRate(), 100*st.ProjectedRate(), st.Entries, st.Evictions)
	fmt.Printf("  wrote %s\n", outPath)
	if metricsOut != "" {
		if err := snap.WriteFile(metricsOut); err != nil {
			return err
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%s", data)
	}
	return nil
}

// scalingWorkers is the sweep the scaling leg records; the last entry is the
// count the -compare speedup gate reads.
var scalingWorkers = []int{1, 2, 4, 8}

// measureScaling runs the cold-cache Recompile sweep over a Zipf(s)-skewed
// hot-template workload at each worker count in scalingWorkers. GOMAXPROCS is
// raised to the leg's worker count when the machine has fewer cores, and such
// legs (and the sweep) are marked oversubscribed so downstream gates can
// ignore their speedups. One stats pass per leg records the scheduler's
// items/steals/merges counters; items and merges are deterministic, steals
// are schedule-dependent diagnostics.
func measureScaling(scale float64, seed uint64, m int, zipf float64, quick bool) (*perfScaling, error) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Candidates = m
	cfg.ZipfSkew = zipf
	r := experiments.NewRunner(cfg)
	const wl = "A"
	jobs := r.LongJobs(wl, 0)
	if len(jobs) == 0 {
		return nil, fmt.Errorf("perf: zipf workload %s has no long-running jobs at scale %g", wl, scale)
	}
	if len(jobs) > 6 {
		jobs = jobs[:6]
	}
	h := r.Harness(wl)

	recompileAll := func(w int, sched *steering.SchedStats) error {
		p := steering.NewPipeline(h, xrand.New(seed).Derive("scaling"))
		p.MaxCandidates = m
		p.Workers = w
		for _, j := range jobs {
			a, err := p.Recompile(j)
			if err != nil {
				return fmt.Errorf("perf: scaling recompile %s: %w", j.ID, err)
			}
			if sched != nil {
				sched.Add(a.Sched)
			}
		}
		return nil
	}
	// Warm-up, and the lazily built state (statistics, day inputs) census.
	if err := recompileAll(1, nil); err != nil {
		return nil, err
	}

	sc := &perfScaling{Workload: wl, ZipfSkew: zipf, Jobs: len(jobs), Candidates: m}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range scalingWorkers {
		procs := prev
		if w > procs {
			procs = w
		}
		runtime.GOMAXPROCS(procs)
		leg := perfScalingLeg{Workers: w, GoMaxProcs: procs, Oversubscribed: procs > runtime.NumCPU()}
		var sched steering.SchedStats
		if quick {
			// The single timed iteration doubles as the stats pass.
			ns, err := benchOnce(func() error { return recompileAll(w, &sched) })
			if err != nil {
				return nil, err
			}
			leg.NsPerOp, leg.Iterations = ns, 1
		} else {
			var err error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if e := recompileAll(w, nil); e != nil && err == nil {
						err = e
					}
				}
			})
			if err != nil {
				return nil, err
			}
			leg.NsPerOp, leg.Iterations = res.NsPerOp(), res.N
			if err := recompileAll(w, &sched); err != nil {
				return nil, err
			}
		}
		leg.SecPerOp = float64(leg.NsPerOp) / 1e9
		leg.Items, leg.Steals, leg.Merges = sched.Items, sched.Steals, sched.Merges
		if len(sc.Legs) > 0 && leg.NsPerOp > 0 {
			leg.Speedup = float64(sc.Legs[0].NsPerOp) / float64(leg.NsPerOp)
		} else if len(sc.Legs) == 0 {
			leg.Speedup = 1
		}
		if leg.Oversubscribed {
			sc.Oversubscribed = true
		}
		sc.Legs = append(sc.Legs, leg)
	}
	sc.SpeedupAtMax = sc.Legs[len(sc.Legs)-1].Speedup
	if sc.Oversubscribed {
		fmt.Fprintf(os.Stderr, "steerq-bench: warning: scaling sweep oversubscribed (NumCPU=%d); speedups recorded but not gate-worthy\n", runtime.NumCPU())
	}
	return sc, nil
}

func reductionPct(base, now int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(now)/float64(base))
}
