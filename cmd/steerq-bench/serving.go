package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/experiments"
	"steerq/internal/loadgen"
	"steerq/internal/obs"
	"steerq/internal/serve"
	"steerq/internal/workload"
)

// servingLeg is one measured load leg of the serving benchmark: a schedule
// replayed against one target at one worker count, with the merged decision
// mix and the coordinated-omission-corrected latency percentiles.
type servingLeg struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"` // "sdk" or "http"
	Shape     string  `json:"shape"`     // "flat", "diurnal", "burst"
	ZipfSkew  float64 `json:"zipf_skew"`
	Workers   int     `json:"workers"`
	Paced     bool    `json:"paced,omitempty"`

	Arrivals  int   `json:"arrivals"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Hits      int64 `json:"hits"`
	Fallbacks int64 `json:"fallbacks"`
	Defaults  int64 `json:"defaults"`

	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`

	// Speedup is AchievedQPS over the 1-worker leg of the same sweep; only
	// sweep legs carry it. Under a frozen clock it is exactly 1.
	Speedup float64 `json:"speedup,omitempty"`
	// Oversubscribed marks a leg that ran with more workers than cores; its
	// speedup is recorded but exempt from the -compare-serving gate.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// servingSweep is the workers-1/2/4/8 saturation sweep over one arrival mix.
type servingSweep struct {
	ZipfSkew       float64      `json:"zipf_skew"`
	Legs           []servingLeg `json:"legs"`
	SpeedupAtMax   float64      `json:"speedup_at_max"`
	Oversubscribed bool         `json:"oversubscribed,omitempty"`
}

// servingBundle records the decision table the legs were served from.
type servingBundle struct {
	Version   uint64 `json:"version"`
	Workload  string `json:"workload"`
	Jobs      int    `json:"jobs"`
	Entries   int    `json:"entries"`
	Steered   int    `json:"steered"`
	Fallbacks int    `json:"fallbacks"`
	Failed    int    `json:"failed,omitempty"`
	Checksum  string `json:"checksum"`
	Sharded   bool   `json:"sharded,omitempty"`
}

// servingReport is the machine-readable BENCH_serving.json record. Under
// STEERQ_VCLOCK the report is canonical: the timestamp is the frozen epoch,
// machine-shape fields (NumCPU, GOMAXPROCS) are omitted, every latency is
// zero, achieved equals offered, and every speedup is exactly 1 — so CI can
// diff whole reports byte for byte across runs.
type servingReport struct {
	GeneratedUnix int64 `json:"generated_unix"`
	// Virtual marks a frozen-clock run: the timeline was replayed without
	// pacing sleeps and no wall time was measured.
	Virtual    bool `json:"virtual,omitempty"`
	NumCPU     int  `json:"num_cpu,omitempty"`
	GoMaxProcs int  `json:"gomaxprocs,omitempty"`

	Seed        uint64  `json:"seed"`
	QPS         float64 `json:"qps"`
	DurationSec float64 `json:"duration_sec"`
	ZipfSkew    float64 `json:"zipf_skew"`
	MissFrac    float64 `json:"miss_frac"`

	Bundle servingBundle  `json:"bundle"`
	Sweeps []servingSweep `json:"sweeps"`
	Shapes []servingLeg   `json:"shapes"`
	HTTP   servingLeg     `json:"http"`
}

// servingMissFrac is the fraction of load-test traffic drawn from signatures
// absent from the bundle — the default-decision path every real deployment
// sees from never-before-grouped jobs.
const servingMissFrac = 0.1

// servingMissSigs is how many distinct unknown signatures carry that traffic.
const servingMissSigs = 8

// servingSweepWorkers is the saturation sweep's worker counts; the last
// entry is what -compare-serving gates on.
var servingSweepWorkers = []int{1, 2, 4, 8}

// runServing builds a decision-table bundle through the real steering
// pipeline, loads it into an in-process SDK, and measures the serving path
// under deterministic open-loop load: worker-scaling saturation sweeps over
// uniform and Zipf-skewed mixes, paced shape legs (flat, diurnal ramp, flash
// burst) with coordinated-omission-corrected latencies, and one leg through
// a live loopback daemon. The report is written as JSON to outPath. quick
// shrinks the offered load and the bundle's job feed so CI can smoke the
// whole report cheaply.
func runServing(scale float64, seed uint64, m int, zipf, qps float64, duration time.Duration, quick bool, outPath string) error {
	clock := obs.ClockFromEnv()
	virtual := os.Getenv(obs.VClockEnv) != ""
	maxJobs := 60
	if quick {
		qps /= 4
		duration /= 2
		maxJobs = 24
	}
	if qps <= 0 || duration <= 0 {
		return fmt.Errorf("serving: need positive qps (%g) and duration (%v)", qps, duration)
	}

	// The decision table comes from the real offline build: group a day's
	// jobs by rule signature and analyze one representative per group, so the
	// hit/fallback mix in the report reflects what the pipeline actually
	// decides, not a synthetic split.
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Candidates = m
	r := experiments.NewRunner(cfg)
	const wl = "A"
	jobs := r.Day(wl, 0)
	if len(jobs) > maxJobs {
		jobs = jobs[:maxJobs]
	}
	if len(jobs) == 0 {
		return fmt.Errorf("serving: workload %s has no jobs at scale %g", wl, scale)
	}
	b, brep, err := r.Pipeline(wl).BuildBundle(jobs, 1, clock().Unix())
	if err != nil {
		return fmt.Errorf("serving: bundle build: %w", err)
	}

	reg := obs.NewWithClock(clock)
	sdk := serve.NewSDK(reg)
	if err := sdk.Load(b); err != nil {
		return fmt.Errorf("serving: load bundle: %w", err)
	}

	sigs := make([]bitvec.Vector, len(b.Entries))
	for i, e := range b.Entries {
		sigs[i] = e.Signature
	}
	miss := loadgen.MissSignatures(seed, servingMissSigs, sigs)
	mixFor := func(skew float64) loadgen.Mix {
		mix := loadgen.Mix{Signatures: sigs, Miss: miss, MissFrac: servingMissFrac}
		if skew > 0 {
			mix.Weights = workload.ZipfProbs(len(sigs), skew)
		}
		return mix
	}

	flat := loadgen.Profile{QPS: qps, Duration: duration}
	runLeg := func(s *loadgen.Schedule, tgt loadgen.Target, name, transport, shape string, skew float64, workers int, paced bool) servingLeg {
		opts := loadgen.Options{Workers: workers, Paced: paced, Clock: clock, Reg: reg}
		if virtual {
			// A frozen clock never advances, so a pacing sleep computed
			// against it would block for the arrival's full offset in real
			// time. Virtual runs replay the timeline instantly instead.
			opts.Sleep = func(time.Duration) {}
		}
		res := loadgen.Run(s, tgt, opts)
		return servingLeg{
			Name:        name,
			Transport:   transport,
			Shape:       shape,
			ZipfSkew:    skew,
			Workers:     workers,
			Paced:       paced,
			Arrivals:    res.Arrivals,
			Completed:   res.Completed,
			Errors:      res.Errors,
			Hits:        res.Hits,
			Fallbacks:   res.Fallbacks,
			Defaults:    res.Defaults,
			OfferedQPS:  res.OfferedQPS,
			AchievedQPS: res.AchievedQPS,
			P50NS:       res.Hist.Quantile(0.50),
			P95NS:       res.Hist.Quantile(0.95),
			P99NS:       res.Hist.Quantile(0.99),
			P999NS:      res.Hist.Quantile(0.999),
			MeanNS:      res.Hist.MeanNS(),
			MaxNS:       res.Hist.MaxNS(),
		}
	}

	// Saturation sweeps: the same schedule replayed back to back at each
	// worker count, uniform and Zipf-skewed. Speedup is achieved-QPS relative
	// to the 1-worker leg. GOMAXPROCS is raised per leg when the machine has
	// fewer cores, and such legs are marked oversubscribed (real runs only —
	// a virtual replay measures no wall time, so the flags would be noise).
	skews := []float64{0}
	if zipf > 0 {
		skews = append(skews, zipf)
	}
	var sweeps []servingSweep
	for _, skew := range skews {
		s, err := loadgen.Build(seed, flat, mixFor(skew))
		if err != nil {
			return fmt.Errorf("serving: build schedule: %w", err)
		}
		sw := servingSweep{ZipfSkew: skew}
		prev := runtime.GOMAXPROCS(0)
		for _, w := range servingSweepWorkers {
			if !virtual {
				procs := prev
				if w > procs {
					procs = w
				}
				runtime.GOMAXPROCS(procs)
			}
			leg := runLeg(s, loadgen.SDKTarget{SDK: sdk}, fmt.Sprintf("sweep/zipf%g/w%d", skew, w), "sdk", "flat", skew, w, false)
			if !virtual {
				leg.Oversubscribed = w > runtime.NumCPU()
			}
			if len(sw.Legs) == 0 {
				leg.Speedup = 1
			} else if base := sw.Legs[0].AchievedQPS; base > 0 {
				leg.Speedup = leg.AchievedQPS / base
			}
			if leg.Oversubscribed {
				sw.Oversubscribed = true
			}
			sw.Legs = append(sw.Legs, leg)
		}
		runtime.GOMAXPROCS(prev)
		sw.SpeedupAtMax = sw.Legs[len(sw.Legs)-1].Speedup
		sweeps = append(sweeps, sw)
	}

	// Shape legs: paced open-loop replay of the three arrival shapes, so the
	// percentiles charge queueing delay from each intended arrival instant
	// (coordinated omission corrected).
	shapes := []struct {
		name string
		p    loadgen.Profile
	}{
		{"flat", flat},
		{"diurnal", loadgen.Profile{QPS: qps, Duration: duration, DiurnalAmp: 0.6}},
		{"burst", loadgen.Profile{QPS: qps, Duration: duration,
			Bursts: []loadgen.Burst{{Start: duration / 2, Dur: duration / 4, Factor: 4}}}},
	}
	var shapeLegs []servingLeg
	for _, sh := range shapes {
		s, err := loadgen.Build(seed, sh.p, mixFor(zipf))
		if err != nil {
			return fmt.Errorf("serving: build %s schedule: %w", sh.name, err)
		}
		shapeLegs = append(shapeLegs, runLeg(s, loadgen.SDKTarget{SDK: sdk},
			"shape/"+sh.name, "sdk", sh.name, zipf, 4, true))
	}

	// HTTP leg: the same flat schedule through a live loopback daemon — the
	// steer endpoint, JSON decode and all — so the report shows what the
	// network hop costs relative to the in-process SDK.
	srv := serve.NewServer(sdk, reg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return fmt.Errorf("serving: start daemon: %w", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if err := serve.WaitReady(base, 5*time.Second); err != nil {
		return fmt.Errorf("serving: daemon not ready: %w", err)
	}
	httpSched, err := loadgen.Build(seed, flat, mixFor(zipf))
	if err != nil {
		return fmt.Errorf("serving: build http schedule: %w", err)
	}
	httpLeg := runLeg(httpSched, loadgen.HTTPTarget{Base: base}, "http/flat", "http", "flat", zipf, 4, false)

	rep := servingReport{
		GeneratedUnix: clock().Unix(),
		Virtual:       virtual,
		Seed:          seed,
		QPS:           qps,
		DurationSec:   duration.Seconds(),
		ZipfSkew:      zipf,
		MissFrac:      servingMissFrac,
		Bundle: servingBundle{
			Version:   b.Version,
			Workload:  b.Workload,
			Jobs:      brep.Jobs,
			Entries:   len(b.Entries),
			Steered:   brep.Steered,
			Fallbacks: brep.Fallbacks + brep.Failed,
			Failed:    brep.Failed,
			Checksum:  fmt.Sprintf("%016x", b.Checksum()),
			Sharded:   sdk.Active().Sharded(),
		},
		Sweeps: sweeps,
		Shapes: shapeLegs,
		HTTP:   httpLeg,
	}
	if !virtual {
		rep.NumCPU = runtime.NumCPU()
		rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	printServing(&rep, outPath)
	return nil
}

// printServing renders the human-readable summary of a serving report.
func printServing(rep *servingReport, outPath string) {
	mode := "wall clock"
	if rep.Virtual {
		mode = "virtual timeline (frozen clock)"
	}
	fmt.Printf("serving: %.0f qps x %.1fs, zipf s=%g, %s\n", rep.QPS, rep.DurationSec, rep.ZipfSkew, mode)
	fmt.Printf("  bundle v%d: %d jobs -> %d entries (%d steered, %d fallback), checksum %s\n",
		rep.Bundle.Version, rep.Bundle.Jobs, rep.Bundle.Entries, rep.Bundle.Steered, rep.Bundle.Fallbacks, rep.Bundle.Checksum)
	for _, sw := range rep.Sweeps {
		tag := ""
		if sw.Oversubscribed {
			tag = "  [oversubscribed]"
		}
		fmt.Printf("  sweep zipf=%g (speedup@max %.2fx)%s\n", sw.ZipfSkew, sw.SpeedupAtMax, tag)
		for _, leg := range sw.Legs {
			fmt.Printf("    workers=%d: %s\n", leg.Workers, legLine(leg))
		}
	}
	for _, leg := range rep.Shapes {
		fmt.Printf("  shape %-7s %s\n", leg.Shape+":", legLine(leg))
	}
	fmt.Printf("  http w=%d:      %s\n", rep.HTTP.Workers, legLine(rep.HTTP))
	fmt.Printf("  wrote %s\n", outPath)
}

// legLine formats one leg's throughput, mix, and percentiles.
func legLine(leg servingLeg) string {
	return fmt.Sprintf("%.0f/%.0f qps  mix %d/%d/%d (+%d err)  p50 %s  p99 %s  p999 %s  max %s",
		leg.AchievedQPS, leg.OfferedQPS, leg.Hits, leg.Fallbacks, leg.Defaults, leg.Errors,
		time.Duration(leg.P50NS), time.Duration(leg.P99NS), time.Duration(leg.P999NS), time.Duration(leg.MaxNS))
}

// runCompareServing diffs two BENCH_serving.json reports and fails when the
// new report's saturation throughput regressed past qpsPct percent at the
// highest worker count of any sweep both reports share. Latency percentiles
// print as context but are not gated — loopback latency is too
// machine-sensitive for a portable threshold. The throughput gate is skipped
// when either report is virtual (a frozen-clock replay measures no
// throughput) or either sweep is oversubscribed.
func runCompareServing(oldPath, newPath string, qpsPct float64) error {
	oldRep, err := readServingReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readServingReport(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("compare-serving: %s (old) vs %s (new); threshold achieved-qps -%.1f%%\n",
		oldPath, newPath, qpsPct)

	var regressions []string
	for _, osw := range oldRep.Sweeps {
		nsw := findSweep(newRep.Sweeps, osw.ZipfSkew)
		if nsw == nil || len(osw.Legs) == 0 || len(nsw.Legs) == 0 {
			fmt.Printf("  sweep zipf=%g skipped (missing or empty in new report)\n", osw.ZipfSkew)
			continue
		}
		o, n := osw.Legs[len(osw.Legs)-1], nsw.Legs[len(nsw.Legs)-1]
		drop := 0.0
		if o.AchievedQPS > 0 {
			drop = 100 * (1 - n.AchievedQPS/o.AchievedQPS)
		}
		fmt.Printf("  sweep zipf=%g qps@%dw %.0f -> %.0f (%+.1f%%)  speedup %.2fx -> %.2fx\n",
			osw.ZipfSkew, n.Workers, o.AchievedQPS, n.AchievedQPS, -drop, osw.SpeedupAtMax, nsw.SpeedupAtMax)
		switch {
		case oldRep.Virtual || newRep.Virtual:
			fmt.Printf("  sweep zipf=%g gate skipped (virtual report: no wall time measured)\n", osw.ZipfSkew)
		case osw.Oversubscribed || nsw.Oversubscribed:
			fmt.Printf("  sweep zipf=%g gate skipped (oversubscribed sweep: workers exceed cores)\n", osw.ZipfSkew)
		case o.AchievedQPS > 0 && drop > qpsPct:
			msg := fmt.Sprintf("sweep zipf=%g achieved qps@%dw -%.1f%% exceeds -%.1f%% (%.0f -> %.0f)",
				osw.ZipfSkew, n.Workers, drop, qpsPct, o.AchievedQPS, n.AchievedQPS)
			fmt.Printf("  REGRESSION: %s\n", msg)
			regressions = append(regressions, msg)
		}
	}
	for _, oleg := range oldRep.Shapes {
		if nleg := findShape(newRep.Shapes, oleg.Shape); nleg != nil {
			fmt.Printf("  shape %-7s p99 %s -> %s  p999 %s -> %s\n", oleg.Shape+":",
				time.Duration(oleg.P99NS), time.Duration(nleg.P99NS),
				time.Duration(oleg.P999NS), time.Duration(nleg.P999NS))
		}
	}
	fmt.Printf("  http:          p99 %s -> %s  qps %.0f -> %.0f\n",
		time.Duration(oldRep.HTTP.P99NS), time.Duration(newRep.HTTP.P99NS),
		oldRep.HTTP.AchievedQPS, newRep.HTTP.AchievedQPS)

	if len(regressions) > 0 {
		return fmt.Errorf("compare-serving: %d regression(s) past threshold", len(regressions))
	}
	fmt.Println("  ok: no regressions past thresholds")
	return nil
}

func findSweep(sweeps []servingSweep, skew float64) *servingSweep {
	for i := range sweeps {
		if sweeps[i].ZipfSkew == skew {
			return &sweeps[i]
		}
	}
	return nil
}

func findShape(legs []servingLeg, shape string) *servingLeg {
	for i := range legs {
		if legs[i].Shape == shape {
			return &legs[i]
		}
	}
	return nil
}

func readServingReport(path string) (*servingReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("compare-serving: %w", err)
	}
	var rep servingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("compare-serving: %s: %w", path, err)
	}
	return &rep, nil
}
