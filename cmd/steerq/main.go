// Command steerq is the interactive CLI over the steering stack: compile a
// SCOPE-like script against a generated workload's catalog, inspect its plan,
// rule signature and job span, search candidate configurations, and run the
// discovery pipeline for a single job.
//
// Usage:
//
//	steerq compile  [-workload A] [-seed N] [-script file | -job day/idx] [-show-plan]
//	steerq span     [-workload A] [-job day/idx]
//	steerq search   [-workload A] [-job day/idx] [-m 200] [-workers N]
//	steerq pipeline [-workload A] [-job day/idx] [-m 300] [-k 10] [-workers N] [-fault-seed N] [-fault-rates site.kind=p,...]
//	steerq groups   [-workload A] [-day 0] [-top 15]
//	steerq workload [-workload A] [-day 0]
//	steerq bundle   [-workload A] [-day 0] [-max-jobs N] [-m 300] [-k 10] -out file.stqb
//	steerq bundle   -inspect file.stqb
//	steerq steer    (-addr host:port | -bundle file.stqb) [-sig hex | -job day/idx] [-wait-ready 5s]
//
// Jobs are addressed as day/index within the deterministic generated
// workload, e.g. -job 0/17.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/bundle"
	"steerq/internal/cascades"
	"steerq/internal/cost"
	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/par"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
	"steerq/internal/serve"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(args)
	case "span":
		err = cmdSpan(args)
	case "search":
		err = cmdSearch(args)
	case "pipeline":
		err = cmdPipeline(args)
	case "groups":
		err = cmdGroups(args)
	case "workload":
		err = cmdWorkload(args)
	case "explain":
		err = cmdExplain(args)
	case "bundle":
		err = cmdBundle(args)
	case "steer":
		err = cmdSteer(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "steerq:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: steerq <compile|explain|span|search|pipeline|groups|workload|bundle|steer> [flags]
run "steerq <command> -h" for command flags`)
}

// env bundles the common flags and lazily built objects.
type env struct {
	fs         *flag.FlagSet
	name       *string
	seed       *uint64
	scale      *float64
	jobRef     *string
	script     *string
	workers    *int
	faultSeed  *string
	faultRates *string
	metricsOut *string
	debugAddr  *string
	wl         *workload.Workload
	harness    *abtest.Harness
	reg        *obs.Registry
	debug      *obs.DebugServer
}

func newEnv(cmd string) *env {
	e := &env{fs: flag.NewFlagSet(cmd, flag.ExitOnError)}
	e.name = e.fs.String("workload", "A", "workload name (A, B or C)")
	e.seed = e.fs.Uint64("seed", 2021, "generator seed")
	e.scale = e.fs.Float64("scale", 0.01, "workload scale (1.0 = paper scale)")
	e.jobRef = e.fs.String("job", "0/0", "job reference day/index")
	e.script = e.fs.String("script", "", "path to a SCOPE-like script (overrides -job)")
	e.workers = e.fs.Int("workers", 0, "worker goroutines (0 = $STEERQ_WORKERS or GOMAXPROCS); results are identical at any setting")
	e.faultSeed = e.fs.String("fault-seed", "", "arm deterministic fault injection with this seed (empty = $STEERQ_FAULT_SEED or off)")
	e.faultRates = e.fs.String("fault-rates", "", "fault probabilities as site.kind=prob pairs, e.g. compile.fail=0.1,exec.hang=0.05")
	e.metricsOut = e.fs.String("metrics-out", "", "write a metrics snapshot on exit (.prom/.txt = text exposition, else JSON)")
	e.debugAddr = e.fs.String("debug-addr", "", "serve /debug/vars and /metrics on this address while the command runs")
	return e
}

func (e *env) build() error {
	var p workload.Profile
	switch *e.name {
	case "A":
		p = workload.ProfileA(*e.scale, *e.seed)
	case "B":
		p = workload.ProfileB(*e.scale, *e.seed)
	case "C":
		p = workload.ProfileC(*e.scale, *e.seed)
	default:
		return fmt.Errorf("unknown workload %q", *e.name)
	}
	e.wl = workload.Generate(p)
	e.reg = obs.NewWithClock(obs.ClockFromEnv())
	opt := rules.NewOptimizer(cost.NewEstimated(e.wl.Cat))
	opt.SetObs(e.reg)
	e.harness = abtest.New(e.wl.Cat, opt, *e.seed+1)
	e.harness.SetObs(e.reg)
	e.harness.Workers = *e.workers
	fp, err := e.faultPlan()
	if err != nil {
		return err
	}
	if fp != nil {
		in := faults.NewInjector(*fp)
		e.harness.SetFaults(in)
		in.Publish(e.reg)
	}
	if *e.debugAddr != "" {
		srv, err := e.reg.ServeDebug(*e.debugAddr)
		if err != nil {
			return err
		}
		e.debug = srv
		fmt.Fprintf(os.Stderr, "steerq: debug endpoint on http://%s (/debug/vars, /metrics)\n", srv.Addr())
	}
	return nil
}

// finish flushes observability outputs: it writes the -metrics-out snapshot
// and shuts down the -debug-addr server. Commands call it on their success
// path so a failed run never leaves a partial snapshot behind.
func (e *env) finish() error {
	if e.debug != nil {
		if err := e.debug.Close(); err != nil {
			return err
		}
	}
	if *e.metricsOut == "" {
		return nil
	}
	return e.reg.Snapshot().WriteFile(*e.metricsOut)
}

// faultPlan resolves the fault-injection flags, falling back to the
// STEERQ_FAULT_SEED / STEERQ_FAULT_RATES environment knobs.
func (e *env) faultPlan() (*faults.Plan, error) {
	if *e.faultSeed == "" && *e.faultRates == "" {
		return faults.PlanFromEnv()
	}
	return faults.ParsePlan(*e.faultSeed, *e.faultRates)
}

// job resolves the -script / -job flags into a compiled job.
func (e *env) job() (*workload.Job, error) {
	if *e.script != "" {
		src, err := os.ReadFile(*e.script)
		if err != nil {
			return nil, err
		}
		root, err := scopeql.Compile(string(src), e.wl.Cat)
		if err != nil {
			return nil, err
		}
		return &workload.Job{ID: *e.script, Workload: *e.name, Script: string(src), Root: root}, nil
	}
	parts := strings.SplitN(*e.jobRef, "/", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -job %q, want day/index", *e.jobRef)
	}
	day, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("bad day in -job: %v", err)
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad index in -job: %v", err)
	}
	jobs := e.wl.Day(day)
	if idx < 0 || idx >= len(jobs) {
		return nil, fmt.Errorf("job index %d out of range (day has %d jobs)", idx, len(jobs))
	}
	return jobs[idx], nil
}

func cmdCompile(args []string) error {
	e := newEnv("compile")
	showPlan := e.fs.Bool("show-plan", false, "print the physical plan")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	j, err := e.job()
	if err != nil {
		return err
	}
	rs := e.harness.Opt.Rules
	res, err := e.harness.Opt.Optimize(j.Root, rs.DefaultConfig())
	if err != nil {
		return err
	}
	m := e.harness.Executor.Run(res.Plan, j.Day, j.ID)
	fmt.Printf("job %s (template %016x)\n", j.ID, j.TemplateHash)
	fmt.Printf("estimated cost: %.2f\n", res.Cost)
	fmt.Printf("simulated runtime: %.1fs cpu: %.1fs io: %.1fs vertices: %d\n",
		m.RuntimeSec, m.CPUSec, m.IOTimeSec, m.Vertices)
	fmt.Printf("rule signature (%d rules):\n", res.Signature.Count())
	for _, id := range res.Signature.Ones() {
		ri, _ := rs.Info(id)
		fmt.Printf("  %s\n", ri)
	}
	if *showPlan {
		fmt.Printf("physical plan:\n%s", res.Plan)
	}
	return e.finish()
}

func cmdSpan(args []string) error {
	e := newEnv("span")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	j, err := e.job()
	if err != nil {
		return err
	}
	span, err := steering.JobSpan(e.harness.Opt, j.Root)
	if err != nil {
		return err
	}
	rs := e.harness.Opt.Rules
	fmt.Printf("job span of %s: %d rules\n", j.ID, span.Count())
	byCat := steering.SpanByCategory(span, rs)
	for cat, v := range byCat {
		fmt.Printf("  %s:\n", cat)
		for _, id := range v.Ones() {
			ri, _ := rs.Info(id)
			fmt.Printf("    %s#%d\n", ri.Name, ri.ID)
		}
	}
	return e.finish()
}

func cmdSearch(args []string) error {
	e := newEnv("search")
	m := e.fs.Int("m", 200, "candidate configurations to generate")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	j, err := e.job()
	if err != nil {
		return err
	}
	span, err := steering.JobSpan(e.harness.Opt, j.Root)
	if err != nil {
		return err
	}
	rs := e.harness.Opt.Rules
	cfgs := steering.CandidateConfigs(span, rs, *m, xrand.New(*e.seed).Derive("cli-search"))
	def, err := e.harness.Opt.Optimize(j.Root, rs.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("span=%d rules, %d unique candidate configurations; default cost %.2f\n",
		span.Count(), len(cfgs), def.Cost)
	type row struct {
		cost float64
		diff steering.RuleDiff
		ok   bool
	}
	slots, _ := par.Map(*e.workers, cfgs, func(_ int, cfg bitvec.Vector) (row, error) {
		res, err := e.harness.Opt.Optimize(j.Root, cfg)
		if err != nil {
			return row{}, nil
		}
		return row{res.Cost, steering.Diff(def.Signature, res.Signature), true}, nil
	})
	rows := make([]row, 0, len(slots))
	failed := 0
	for _, s := range slots {
		if !s.ok {
			failed++
			continue
		}
		rows = append(rows, s)
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].cost < rows[k].cost })
	fmt.Printf("%d compiled, %d failed; 10 cheapest:\n", len(rows), failed)
	for i := 0; i < 10 && i < len(rows); i++ {
		r := rows[i]
		fmt.Printf("  cost=%.2f  -%v +%v\n", r.cost, names(rs, r.diff.OnlyDefault), names(rs, r.diff.OnlyNew))
	}
	return e.finish()
}

func cmdPipeline(args []string) error {
	e := newEnv("pipeline")
	m := e.fs.Int("m", 300, "candidate configurations (M)")
	k := e.fs.Int("k", 10, "alternatives executed per job")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	j, err := e.job()
	if err != nil {
		return err
	}
	p := steering.NewPipeline(e.harness, xrand.New(*e.seed).Derive("cli-pipeline"))
	p.MaxCandidates = *m
	p.ExecutePerJob = *k
	p.Workers = *e.workers
	p.Cache = steering.NewCompileCache()
	p.Cache.SetObs(e.reg, "workload", *e.name)
	p.Obs = e.reg
	a, err := p.Analyze(j)
	if err != nil {
		return err
	}
	rs := e.harness.Opt.Rules
	fmt.Printf("job %s: default runtime %.1fs, cost %.2f, span %d rules, %d candidates compiled\n",
		j.ID, a.Default.Metrics.RuntimeSec, a.Default.EstCost, a.Span.Count(), len(a.Candidates))
	for i, t := range a.Trials {
		if t.Err != nil {
			fmt.Printf("  alt%d: compile failed: %v\n", i, t.Err)
			continue
		}
		if t.FellBack {
			fmt.Printf("  alt%d: fell back to default config after %d attempts\n", i, t.Attempts)
			continue
		}
		pct := a.PercentChange(&a.Trials[i], steering.MetricRuntime)
		d := steering.Diff(a.Default.Signature, t.Signature)
		fmt.Printf("  alt%d: runtime %.1fs (%+.1f%%) cost %.2f  -%v +%v\n",
			i, t.Metrics.RuntimeSec, pct, t.EstCost, names(rs, d.OnlyDefault), names(rs, d.OnlyNew))
	}
	best := a.BestConfig(steering.MetricRuntime)
	fmt.Printf("best runtime: %.1fs (%+.1f%% vs default)\n",
		best.Metrics.RuntimeSec, a.PercentChange(best, steering.MetricRuntime))
	if rb := a.Robustness; !rb.IsZero() {
		st := e.harness.Faults.Stats()
		fmt.Printf("fault injection: %d injected (fail=%d hang=%d corrupt=%d) over %d decisions\n",
			st.Injected(), st.Fails, st.Hangs, st.Corrupts, st.Decisions)
		fmt.Printf("  survived via %d retries (%d compile, %d exec), %d timeouts, %d corrupted plans caught, %d fallbacks\n",
			rb.Retries(), rb.CompileRetries, rb.ExecRetries, rb.Timeouts, rb.Corruptions, rb.Fallbacks)
	}
	if rec := steering.Recommend(a, rs); rec != nil {
		fmt.Printf("recommended plan hint for job group %s...:\n%s",
			rec.GroupSignature[:16], rec.Hints)
	}
	return e.finish()
}

func cmdGroups(args []string) error {
	e := newEnv("groups")
	day := e.fs.Int("day", 0, "day to group")
	top := e.fs.Int("top", 15, "groups to print")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	jobs := e.wl.Day(*day)
	g := steering.NewGrouper(e.harness)
	groups, err := g.Group(jobs)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s day %d: %d jobs in %d rule-signature job groups\n",
		*e.name, *day, len(jobs), len(groups))
	rs := e.harness.Opt.Rules
	for i, grp := range groups {
		if i >= *top {
			break
		}
		fmt.Printf("  group %2d: %4d jobs, signature %d rules: %v\n",
			i+1, len(grp.Jobs), grp.Signature.Count(), names(rs, grp.Signature.Ones()))
	}
	return e.finish()
}

func cmdWorkload(args []string) error {
	e := newEnv("workload")
	day := e.fs.Int("day", 0, "day to describe")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	jobs := e.wl.Day(*day)
	st := workload.DayStats(jobs)
	fmt.Printf("workload %s day %d: %d jobs, %d unique templates, %d unique input sets\n",
		*e.name, *day, st.Jobs, st.UniqueTemplates, st.UniqueInputs)
	fmt.Printf("catalog: %d streams\n", len(e.wl.Cat.StreamNames()))
	shapes := make(map[string]int)
	for _, j := range jobs {
		shapes[e.wl.Templates[j.Template].Shape]++
	}
	var keys []string
	for k := range shapes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  shape %-14s %4d jobs\n", k, shapes[k])
	}
	return e.finish()
}

// names maps rule IDs to rule names for display.
func names(rs *cascades.RuleSet, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if ri, ok := rs.Info(id); ok {
			out = append(out, ri.Name)
		} else {
			out = append(out, fmt.Sprintf("rule#%d", id))
		}
	}
	return out
}

// cmdExplain compiles a job under the default configuration (or hints from
// -hints) and prints the per-operator planned-vs-actual breakdown.
func cmdExplain(args []string) error {
	e := newEnv("explain")
	hintsPath := e.fs.String("hints", "", "path to a plan-hint file to apply")
	e.fs.Parse(args)
	if err := e.build(); err != nil {
		return err
	}
	j, err := e.job()
	if err != nil {
		return err
	}
	rs := e.harness.Opt.Rules
	cfg := rs.DefaultConfig()
	if *hintsPath != "" {
		text, err := os.ReadFile(*hintsPath)
		if err != nil {
			return err
		}
		cfg, err = steering.ParseHints(string(text), rs)
		if err != nil {
			return err
		}
	}
	res, err := e.harness.Opt.Optimize(j.Root, cfg)
	if err != nil {
		return err
	}
	rep := e.harness.Executor.Explain(res.Plan, j.Day, j.ID)
	rep.Render(os.Stdout)
	return e.finish()
}

// cmdBundle is the offline "bundle build" step: group a day's jobs by
// default rule signature, run the discovery pipeline on one representative
// per group, and serialize the decision table into a versioned bundle for
// steerqd. With -inspect it decodes an existing bundle instead.
func cmdBundle(args []string) error {
	e := newEnv("bundle")
	day := e.fs.Int("day", 0, "day whose jobs feed the bundle")
	maxJobs := e.fs.Int("max-jobs", 0, "cap on jobs fed to the build (0 = whole day)")
	m := e.fs.Int("m", 300, "candidate configurations per group (M)")
	k := e.fs.Int("k", 10, "alternatives executed per group")
	version := e.fs.Uint64("bundle-version", 1, "version stamped into the bundle")
	created := e.fs.Int64("created-unix", 0, "created timestamp stamped into the bundle (unix seconds; keep fixed for reproducible artifacts)")
	out := e.fs.String("out", "", "bundle file to write")
	inspect := e.fs.String("inspect", "", "decode and print this bundle instead of building")
	e.fs.Parse(args)
	if *inspect != "" {
		return inspectBundle(*inspect)
	}
	if *out == "" {
		return fmt.Errorf("bundle: -out is required (or use -inspect)")
	}
	if err := e.build(); err != nil {
		return err
	}
	jobs := e.wl.Day(*day)
	if *maxJobs > 0 && len(jobs) > *maxJobs {
		jobs = jobs[:*maxJobs]
	}
	p := steering.NewPipeline(e.harness, xrand.New(*e.seed).Derive("cli-bundle"))
	p.MaxCandidates = *m
	p.ExecutePerJob = *k
	p.Workers = *e.workers
	p.Cache = steering.NewCompileCache()
	p.Cache.SetObs(e.reg, "workload", *e.name)
	p.Obs = e.reg
	b, rep, err := p.BuildBundle(jobs, *version, *created)
	if err != nil {
		return err
	}
	if err := b.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("bundle v%d workload %s: %d jobs in %d groups -> %d entries (%d steered, %d fallback, %d failed)\n",
		b.Version, b.Workload, rep.Jobs, rep.Groups, len(b.Entries), rep.Steered, rep.Fallbacks, rep.Failed)
	fmt.Printf("wrote %s (checksum %016x)\n", *out, b.Checksum())
	return e.finish()
}

// inspectBundle decodes a bundle file and prints its decision table.
func inspectBundle(path string) error {
	b, err := bundle.ReadFile(path)
	if err != nil {
		return err
	}
	steered, fallbacks := 0, 0
	for _, en := range b.Entries {
		if en.Fallback {
			fallbacks++
		} else {
			steered++
		}
	}
	fmt.Printf("bundle v%d workload %s: %d entries (%d steered, %d fallback), checksum %016x, created %d\n",
		b.Version, b.Workload, len(b.Entries), steered, fallbacks, b.Checksum(), b.CreatedUnix)
	fmt.Printf("default: %s\n", b.Default.Hex())
	for i, en := range b.Entries {
		kind := "hit"
		if en.Fallback {
			kind = "fallback"
		}
		fmt.Printf("entry %d: %-8s sig=%s config=%s\n", i, kind, en.Signature.Hex(), en.Config.Hex())
	}
	return nil
}

// cmdSteer is the serving-path client: resolve a job's default rule
// signature (or take one as -sig) and ask either a running steerqd (-addr)
// or a bundle loaded in-process through the SDK (-bundle) for the steering
// decision. Both paths answer from the same decision table, byte for byte.
func cmdSteer(args []string) error {
	e := newEnv("steer")
	addr := e.fs.String("addr", "", "steerqd address host:port (HTTP mode)")
	bundlePath := e.fs.String("bundle", "", "bundle file consulted in-process through the SDK")
	sigHex := e.fs.String("sig", "", "default rule signature as hex (else resolved from -job/-script)")
	waitReady := e.fs.Duration("wait-ready", 0, "poll the daemon's /readyz up to this long before querying (HTTP mode)")
	e.fs.Parse(args)
	if (*addr == "") == (*bundlePath == "") {
		return fmt.Errorf("steer: exactly one of -addr or -bundle is required")
	}

	var sig bitvec.Vector
	built := false
	if *sigHex != "" {
		v, err := bitvec.ParseHex(*sigHex)
		if err != nil {
			return fmt.Errorf("steer: bad -sig: %w", err)
		}
		sig = v
	} else {
		if err := e.build(); err != nil {
			return err
		}
		built = true
		j, err := e.job()
		if err != nil {
			return err
		}
		res, err := e.harness.Opt.OptimizeCost(j.Root, e.harness.Opt.Rules.DefaultConfig())
		if err != nil {
			return err
		}
		sig = res.Signature
		fmt.Printf("job %s\n", j.ID)
	}
	fmt.Printf("signature: %s\n", sig.Hex())

	var version uint64
	var kind, cfgHex string
	if *addr != "" {
		base := "http://" + *addr
		if *waitReady > 0 {
			if err := serve.WaitReady(base, *waitReady); err != nil {
				return err
			}
		}
		resp, err := http.Get(base + serve.PathSteer + "?sig=" + sig.Hex())
		if err != nil {
			return fmt.Errorf("steer: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var er serve.ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&er)
			return fmt.Errorf("steer: %s returned %d: %s", *addr, resp.StatusCode, er.Error)
		}
		var sr serve.SteerResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return fmt.Errorf("steer: decode response: %w", err)
		}
		version, kind, cfgHex = sr.Version, sr.Kind, sr.Config
	} else {
		sdk := serve.NewSDK(e.reg)
		if err := sdk.LoadFile(*bundlePath); err != nil {
			return err
		}
		d, ok := sdk.Lookup(sig)
		if !ok {
			return fmt.Errorf("steer: no bundle live after load")
		}
		version, kind, cfgHex = d.Version, d.Kind.String(), d.Config.Hex()
	}

	fmt.Printf("version: %d kind: %s\n", version, kind)
	fmt.Printf("config: %s\n", cfgHex)
	if built {
		cfg, err := bitvec.ParseHex(cfgHex)
		if err == nil {
			fmt.Printf("hints:\n%s", steering.HintsFor(cfg, e.harness.Opt.Rules).String())
		}
		return e.finish()
	}
	return nil
}
