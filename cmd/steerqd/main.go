// Command steerqd is the long-running steering service: it loads a versioned
// decision-table bundle produced by the offline pipeline (`steerq bundle`)
// and answers per-job steering lookups over HTTP.
//
//	steerqd -addr 127.0.0.1:7311 -bundle active.stqb [-watch 2s] [-metrics-out snap.json]
//
// Surface:
//
//	GET  /v1/steer?sig=<hex>  decision for one default rule signature
//	GET  /v1/bundles          active bundle info
//	POST /v1/bundles          hot-swap a new bundle (atomic; rejects keep the old table)
//	GET  /metrics             Prometheus-style text exposition
//	GET  /healthz             liveness (503 once draining)
//	GET  /readyz              readiness (200 only with a live bundle)
//
// The daemon drains gracefully on SIGTERM/SIGINT: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), the -metrics-out
// snapshot is flushed, and the process exits 0. A second signal forces an
// immediate close and exit 1. With -watch set, the bundle file is polled and
// hot-reloaded on change; a corrupt file is rejected and the active table
// stays live.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"steerq/internal/obs"
	"steerq/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "steerqd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("steerqd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7311", "listen address (use :0 with -addr-file for an ephemeral port)")
	bundlePath := fs.String("bundle", "", "bundle file to load at startup (optional with -watch: the daemon waits for it)")
	watchEvery := fs.Duration("watch", 0, "poll the -bundle file at this interval and hot-reload on change (0 = off)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (written atomically)")
	metricsOut := fs.String("metrics-out", "", "write a metrics snapshot on exit (.prom/.txt = text exposition, else JSON)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain (0 = wait forever)")
	fs.Parse(args)

	reg := obs.NewWithClock(obs.ClockFromEnv())
	sdk := serve.NewSDK(reg)
	srv := serve.NewServer(sdk, reg)

	if *bundlePath != "" {
		if err := sdk.LoadFile(*bundlePath); err != nil {
			if *watchEvery <= 0 {
				return err
			}
			// With a watcher the daemon can start ahead of its first bundle:
			// readiness stays 503 until a good file lands.
			fmt.Fprintln(os.Stderr, "steerqd: initial bundle not loaded, waiting for the watcher:", err)
		} else {
			t := sdk.Active()
			fmt.Fprintf(os.Stderr, "steerqd: bundle v%d (%s, %d entries, %016x) loaded\n",
				t.Version(), t.Workload(), t.Len(), t.Checksum())
		}
	}

	if err := srv.Start(*addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "steerqd: serving on http://%s (state %s)\n", srv.Addr(), srv.State())
	if *addrFile != "" {
		if err := serve.WriteFileAtomic(*addrFile, []byte(srv.Addr()+"\n")); err != nil {
			_ = srv.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if *watchEvery > 0 && *bundlePath != "" {
		go sdk.Watch(watchCtx, *bundlePath, *watchEvery, func(err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "steerqd: bundle reload rejected:", err)
				return
			}
			t := sdk.Active()
			fmt.Fprintf(os.Stderr, "steerqd: hot-reloaded bundle v%d (%d entries, %016x)\n",
				t.Version(), t.Len(), t.Checksum())
		})
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	forced := srv.DrainOnSignal(sig, *drainTimeout)
	stopWatch()
	if forced {
		fmt.Fprintln(os.Stderr, "steerqd: second signal, forced shutdown")
	} else {
		fmt.Fprintln(os.Stderr, "steerqd: drained")
	}

	if *metricsOut != "" {
		if err := reg.Snapshot().WriteFile(*metricsOut); err != nil {
			return fmt.Errorf("flush metrics: %w", err)
		}
	}
	if forced {
		os.Exit(1)
	}
	return nil
}
