// Command steerq-lint type-checks the whole module and runs the steerq
// static analyzers (see internal/analysis): rulecheck, exhaustiveswitch,
// randcheck, panicfree, errwrap, detcheck, lockcheck, obslabels, ctxflow
// and hotalloc.
//
// Usage:
//
//	steerq-lint [flags] [packages]
//
//	-format=text|json|sarif   output format (default text)
//	-fix                      apply suggested fixes to the source tree
//	-baseline=FILE            filter findings through a committed baseline;
//	                          stale entries (matching nothing) are an error
//	-update-baseline          rewrite the -baseline file to grandfather every
//	                          current finding, and exit clean
//	-config=FILE              driver configuration (default .steerqlint.json
//	                          at the module root, when present)
//	-workers=N                parallel parse fan-out (0 = $STEERQ_WORKERS or
//	                          GOMAXPROCS)
//	-list                     list the registered analyzers and exit
//
// The package arguments are accepted for command-line compatibility with
// go vet style invocations ("steerq-lint ./...") but the tool always
// analyzes the entire module rooted at -root (default: the current
// directory). Exit status: 0 clean (warnings only), 1 on error-severity
// findings or a stale baseline, 2 on load/configuration errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"steerq/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list           = flag.Bool("list", false, "list the registered analyzers and exit")
		root           = flag.String("root", ".", "module root directory to analyze")
		format         = flag.String("format", "text", "output format: text, json or sarif")
		fix            = flag.Bool("fix", false, "apply suggested fixes to the source tree")
		baselinePath   = flag.String("baseline", "", "baseline file filtering grandfathered findings")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite the -baseline file from the current findings")
		configPath     = flag.String("config", "", "driver configuration file (default: .steerqlint.json at the module root)")
		workers        = flag.Int("workers", 0, "parallel parse fan-out (0 = $STEERQ_WORKERS or GOMAXPROCS)")
	)
	flag.Parse()

	cfg, err := loadConfig(*root, *configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		return 2
	}
	all := analysis.Analyzers()
	analyzers := cfg.Select(all)

	if *list {
		for _, a := range all {
			state := cfg.Severity(a.Name)
			if !cfg.Enabled(a.Name) {
				state = "disabled"
			}
			fmt.Printf("%-18s [%s] %s\n", a.Name, state, a.Doc)
		}
		return 0
	}

	rootAbs, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(rootAbs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		return 2
	}
	loader.Workers = *workers
	units, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		return 2
	}

	diags := analysis.Run(units, analyzers)

	if *updateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "steerq-lint: -update-baseline requires -baseline")
			return 2
		}
		if err := analysis.NewBaseline(rootAbs, diags).Write(*baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "steerq-lint: grandfathered %d finding(s) into %s\n", len(diags), *baselinePath)
		return 0
	}

	suppressed := 0
	var stale []analysis.BaselineEntry
	if *baselinePath != "" {
		bl, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
		diags, suppressed, stale = bl.Apply(rootAbs, diags)
	}

	if *fix {
		n, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "steerq-lint: applied %d fix(es); re-run to verify\n", n)
	}

	switch *format {
	case "text":
		if err := analysis.WriteText(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
	case "json":
		rep := analysis.NewReport(rootAbs, diags, cfg)
		rep.Suppressed = suppressed
		rep.Stale = stale
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, rootAbs, diags, cfg, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "steerq-lint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}

	failing := 0
	for _, d := range diags {
		if cfg.Severity(d.Analyzer) == analysis.SeverityError {
			failing++
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "steerq-lint: stale baseline entry: %s %s: %s (finding no longer fires; remove the entry)\n",
			e.Analyzer, e.File, e.Message)
	}
	if failing > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "steerq-lint: %d finding(s), %d suppressed by baseline, %d stale baseline entr(ies)\n",
			failing, suppressed, len(stale))
		return 1
	}
	return 0
}

// loadConfig resolves the driver configuration: an explicit -config path
// must exist; otherwise .steerqlint.json at the module root is used when
// present, and a nil config (all analyzers enabled at error severity)
// otherwise.
func loadConfig(root, explicit string) (*analysis.Config, error) {
	path := explicit
	if path == "" {
		candidate := filepath.Join(root, analysis.ConfigFile)
		if _, err := os.Stat(candidate); err != nil {
			return nil, nil // no config: defaults
		}
		path = candidate
	}
	return analysis.LoadConfig(path)
}
