// Command steerq-lint type-checks the whole module and runs the steerq
// static analyzers (see internal/analysis): rulecheck, exhaustiveswitch,
// randcheck, panicfree and errwrap.
//
// Usage:
//
//	steerq-lint [-list] [packages]
//
// The package arguments are accepted for command-line compatibility with
// go vet style invocations ("steerq-lint ./...") but the tool always
// analyzes the entire module rooted at the current directory. It prints one
// "file:line:col: analyzer: message" line per finding and exits 1 when any
// finding is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"steerq/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	root := flag.String("root", ".", "module root directory to analyze")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader, err := analysis.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		os.Exit(2)
	}
	units, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "steerq-lint: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(units, analysis.Analyzers())
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "steerq-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
