// Package steerq's root benchmarks regenerate every table and figure of the
// paper (see DESIGN.md's per-experiment index). Each benchmark runs the
// corresponding experiment at a laptop-friendly scale and reports the
// headline quantity the paper's artifact carries as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// For the full printed tables/series use:
//
//	go run ./cmd/steerq-bench
package steerq_test

import (
	"testing"

	"steerq/internal/experiments"
	"steerq/internal/learning"
	"steerq/internal/steering"
)

// benchConfig is the shared scaled-down configuration. Benchmarks share one
// runner per b.Run tree via newRunner.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.002
	cfg.Candidates = 120
	cfg.ExecutePerJob = 8
	cfg.SampleFrac = 0.25
	cfg.LongJobFloor = 60
	cfg.LongJobCeil = 5400
	cfg.LearnMinGroup = 20
	cfg.LearnMinMedianSec = 15
	return cfg
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		t1, err := r.Table1(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t1.Total.Jobs), "jobs")
		b.ReportMetric(float64(t1.Total.UniqueSignatures), "signatures")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		t2, err := r.Table2("A", 0)
		if err != nil {
			b.Fatal(err)
		}
		unused := 0
		for _, row := range t2.Rows {
			unused += row.Unused
		}
		b.ReportMetric(float64(unused), "unused-rules")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		t3, err := r.Table3(0)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t3.Rows {
			b.ReportMetric(-row.DeltaPct, "pct-gain-"+row.Workload)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		t4, err := r.Table4(0, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t4.Rows)), "rulediffs")
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		run, err := r.Learning("B", 8, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range run.Groups {
			def := g.Eval.Summarize(func(o learning.JobOutcome) float64 { return o.Default })
			lrn := g.Eval.Summarize(func(o learning.JobOutcome) float64 { return o.Learned })
			if def.Mean > 0 {
				b.ReportMetric(100*(def.Mean-lrn.Mean)/def.Mean, "learned-gain-pct")
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure1("A", 4, 65)
		if err != nil {
			b.Fatal(err)
		}
		improved := 0
		for _, c := range f.Comparisons {
			if c.PctChange < 0 {
				improved++
			}
		}
		b.ReportMetric(float64(improved), "improved-jobs")
		b.ReportMetric(float64(len(f.Comparisons)), "group-jobs")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure2("A", 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.LongJobFrac, "long-job-pct")
		b.ReportMetric(100*f.LongJobContainers, "long-job-container-pct")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure3("A", 0, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range f.Rows {
			if row.Category == "total" {
				b.ReportMetric(row.Mean, "span-rules-mean")
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure4("A", 0, 15)
		if err != nil {
			b.Fatal(err)
		}
		cheaper := 0
		for _, row := range f.Rows {
			if row.MinCost < row.DefaultCost {
				cheaper++
			}
		}
		b.ReportMetric(float64(cheaper), "jobs-with-cheaper-plans")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure5("A", 0)
		if err != nil {
			b.Fatal(err)
		}
		// Jobs in the low-cost, high-runtime corner (top-left 2x2 block).
		corner := f.Grid[0][0] + f.Grid[0][1] + f.Grid[1][0] + f.Grid[1][1]
		b.ReportMetric(float64(corner), "corner-jobs")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		var improved, total int
		var best float64
		for _, name := range []string{"A", "B", "C"} {
			f, err := r.Figure6(name, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range f.Changes {
				total++
				if c.PctChange < 0 {
					improved++
				}
				if c.PctChange < best {
					best = c.PctChange
				}
			}
		}
		b.ReportMetric(float64(improved)/float64(total)*100, "improved-pct")
		b.ReportMetric(-best, "best-gain-pct")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		f, err := r.Figure7("B", 0)
		if err != nil {
			b.Fatal(err)
		}
		// Tension indicator: CPU regressions when selecting for runtime.
		reg := 0
		for _, row := range f.Panels[0] {
			if row.CPUPct > 1 {
				reg++
			}
		}
		b.ReportMetric(float64(reg), "cpu-regressions")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		run, err := r.Learning("B", 8, 2)
		if err != nil {
			b.Fatal(err)
		}
		improved, regressed := 0, 0
		for _, g := range run.Groups {
			for _, o := range g.Eval.PerJob {
				switch {
				case o.Learned < o.Default*0.99:
					improved++
				case o.Learned > o.Default*1.01:
					regressed++
				}
			}
		}
		b.ReportMetric(float64(improved), "improved-jobs")
		b.ReportMetric(float64(regressed), "regressed-jobs")
	}
}

// BenchmarkCompileDefault measures raw compilation throughput of the
// Cascades optimizer over a generated day — the substrate cost every
// pipeline stage pays.
func BenchmarkCompileDefault(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	jobs := r.Day("A", 0)
	h := r.Harness("A")
	cfg := h.Opt.Rules.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		if _, err := h.Opt.Optimize(j.Root, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipelineRecompile measures the discovery pipeline's compile-heavy
// half (span + M candidate recompilations) over a fixed job set at the given
// worker count. A fresh (or nil) cache per iteration keeps the serial and
// parallel numbers comparable; BenchmarkPipelineCached shows the warm path.
func benchPipelineRecompile(b *testing.B, workers int, warmCache bool) {
	r := experiments.NewRunner(benchConfig())
	long := r.LongJobs("A", 0)
	if len(long) > 4 {
		long = long[:4]
	}
	if len(long) == 0 {
		b.Fatal("no long-running jobs at bench scale")
	}
	mk := func(cache *steering.CompileCache) *steering.Pipeline {
		p := r.Pipeline("A")
		p.Workers = workers
		p.Cache = cache
		return p
	}
	var cache *steering.CompileCache
	if warmCache {
		cache = steering.NewCompileCache()
		for _, j := range long {
			if _, err := mk(cache).Recompile(j); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk(cache)
		for _, j := range long {
			if _, err := p.Recompile(j); err != nil {
				b.Fatal(err)
			}
		}
	}
	if warmCache {
		st := cache.Stats()
		b.ReportMetric(100*st.HitRate(), "hit-%")
	}
	b.ReportMetric(float64(workers), "workers")
}

func BenchmarkPipelineWorkers1(b *testing.B) { benchPipelineRecompile(b, 1, false) }

func BenchmarkPipelineWorkers4(b *testing.B) { benchPipelineRecompile(b, 4, false) }

// BenchmarkPipelineCached measures the steady state of recurring-workload
// experiments: every (job, config) compilation is served from the shared
// compile cache.
func BenchmarkPipelineCached(b *testing.B) { benchPipelineRecompile(b, 4, true) }

// BenchmarkJobSpan measures the cost of Algorithm 1 per job.
func BenchmarkJobSpan(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	jobs := r.Day("A", 0)
	h := r.Harness("A")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := jobs[i%len(jobs)]
		if _, err := steering.JobSpan(h.Opt, j.Root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRandomVsGuided reports how often cost-guided selection
// beats uniform-random selection of executed configurations (§6.2).
func BenchmarkAblationRandomVsGuided(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		a, err := r.RandomVsGuided("A", 0, 8, 6)
		if err != nil {
			b.Fatal(err)
		}
		guided, random := 0, 0
		for _, row := range a.Rows {
			if row.GuidedBest < row.RandomBest*0.99 {
				guided++
			} else if row.RandomBest < row.GuidedBest*0.99 {
				random++
			}
		}
		b.ReportMetric(float64(guided), "guided-wins")
		b.ReportMetric(float64(random), "random-wins")
	}
}

// BenchmarkAblationSpanSearch reports the search-efficiency gain of the job
// span (Definition 5.1) over naive whole-catalog sampling.
func BenchmarkAblationSpanSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		a, err := r.SpanSearch("A", 0, 15, 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.SpanDistinct, "span-distinct-per-100")
		b.ReportMetric(a.NaiveDistinct, "naive-distinct-per-100")
	}
}

// BenchmarkAblationGrouping reports the group-size advantage of
// rule-signature grouping over template grouping (§6.4).
func BenchmarkAblationGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		a, err := r.Grouping("B", 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.TemplateGroups), "template-groups")
		b.ReportMetric(float64(a.SignatureGroups), "signature-groups")
		b.ReportMetric(float64(a.SignatureMax), "largest-signature-group")
	}
}

// BenchmarkExtensionIndependence reports the configuration-space reduction
// achieved by the §8 rule-independence prober.
func BenchmarkExtensionIndependence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		e, err := r.Extensions("A", 0, 5)
		if err != nil {
			b.Fatal(err)
		}
		var naive, part float64
		for _, row := range e.Independence {
			naive += row.NaiveSpace
			part += row.PartSpace
		}
		if part > 0 {
			b.ReportMetric(naive/part, "space-reduction-x")
		}
	}
}
