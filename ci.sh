#!/bin/sh
# ci.sh — the full steerq gate. Run from the repository root.
#
# Stages, in order:
#   1. go build ./...            everything compiles
#   2. gofmt -l                  no unformatted files
#   3. go vet ./...              stdlib vet findings
#   4. go run ./cmd/steerq-lint  all ten project analyzers (see README),
#                                filtered through lint-baseline.json; the JSON
#                                report is archived as LINT_report.json next
#                                to BENCH_pipeline.json, and stale baseline
#                                entries fail the stage
#   5. go test -race ./...       unit + property + golden tests under the
#                                race detector, with plan validation forced
#                                on via STEERQ_CHECK_PLANS
#   6. parallel smoke            the pipeline determinism tests re-run with
#                                STEERQ_WORKERS=4 so the race detector covers
#                                the worker pool on every run
#   7. alloc regression          the compile allocation budget re-checked
#                                under -race (testing.AllocsPerRun)
#   8. bench smoke               the serial and 4-worker pipeline benchmarks
#                                executed once (-benchtime=1x) so a broken or
#                                pathologically slow hot path fails CI, not
#                                the next perf run
#   9. coverage floor            go test -cover over the robustness- and
#                                observability-critical packages (faults, par,
#                                steering, obs, learning, nn, analysis, serve,
#                                bundle) with an 80% per-package floor, and
#                                internal/loadgen with a 90% floor — the load
#                                harness is itself test infrastructure, so it
#                                is held to the higher bar
#  10. fault-injection smoke     one pipeline run with a pinned fault seed and
#                                plan checking on: it must complete with every
#                                faulted job surviving via retry or fallback
#  11. metrics golden smoke      the same pinned-seed pipeline run under the
#                                frozen virtual clock (STEERQ_VCLOCK) with
#                                -metrics-out, diffed byte-for-byte against the
#                                committed snapshot golden — metric drift and
#                                nondeterminism both fail here
#  12. serving smoke             the full serving path end to end: build a
#                                pinned-seed bundle with `steerq bundle`,
#                                start steerqd on an ephemeral loopback port,
#                                smoke-query known signatures (hits and a
#                                miss) through the `steerq steer` client,
#                                drain the daemon with SIGTERM, and diff its
#                                frozen-clock metrics snapshot against the
#                                committed ci_serving.golden.json
#  13. serving load smoke        a pinned-seed steerq-bench -serving run under
#                                the frozen virtual clock: the whole
#                                BENCH_serving.json report (arrival schedules,
#                                decision mixes, worker sweep) must be
#                                byte-identical to the committed golden, the
#                                -compare-serving self-diff must pass, and an
#                                injected throughput collapse must trip the
#                                gate once the virtual-report skip is removed
#  14. perf stamp smoke          a tiny steerq-bench -perf -perf-quick run
#                                under the frozen clock with
#                                STEERQ_BENCH_FORCE_PARALLEL=1: the report's
#                                generated_unix stamp must be 0 (reports are
#                                reproducible under STEERQ_VCLOCK), the
#                                parallel leg must be measured (never
#                                skipped; oversubscribed runs are annotated,
#                                not dropped), and the workers-1/2/4/8
#                                scaling sweep must be present
#  15. bench compare smoke       steerq-bench -compare self-diffs the stage-14
#                                report (a report never regresses against
#                                itself) and then must flag an injected 10x
#                                serial regression — both the zero-delta and
#                                the gate-trips paths are exercised
#  16. short fuzz pass           45s total over the scopeql parser/binder
#                                (including the parse-print-parse round trip)
#                                and the bundle decoder
#
# Set STEERQ_CI_SKIP_FUZZ=1 to skip stage 16 (e.g. on very slow machines).
set -eu

echo "== build =="
go build ./...

echo "== gofmt =="
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== vet =="
go vet ./...

echo "== steerq-lint (json report, baseline) =="
if go run ./cmd/steerq-lint -format=json -baseline lint-baseline.json ./... > LINT_report.json; then
    echo "lint clean; report archived in LINT_report.json"
else
    cat LINT_report.json
    echo "steerq-lint: findings or stale baseline entries (report above)" >&2
    exit 1
fi

echo "== test (race) =="
STEERQ_CHECK_PLANS=1 go test -race ./...

echo "== parallel pipeline smoke (race, 4 workers) =="
STEERQ_WORKERS=4 STEERQ_CHECK_PLANS=1 go test -race ./internal/steering/ ./internal/experiments/ -run 'Parallel|Determinism|Fault'

echo "== alloc regression (race) =="
go test -race ./internal/rules/ -run TestCompileAllocationBudget -count=1

echo "== bench smoke (1x, serial + 4 workers) =="
go test -run '^$' -bench 'BenchmarkPipelineWorkers(1|4)$' -benchtime=1x -benchmem .

echo "== coverage floor (faults, par, steering, obs, learning, nn, analysis, serve, bundle >= 80%) =="
go test -cover ./internal/faults/ ./internal/par/ ./internal/steering/ \
    ./internal/obs/ ./internal/learning/ ./internal/nn/ ./internal/analysis/ \
    ./internal/serve/ ./internal/bundle/ > /tmp/steerq-cover.$$
cat /tmp/steerq-cover.$$
awk '
    /coverage:/ {
        pct = 0
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { pct = $i; sub(/%/, "", pct) }
        if (pct + 0 < 80) { printf "coverage below 80%% floor: %s\n", $0; bad = 1 }
    }
    END { exit bad }
' /tmp/steerq-cover.$$
rm -f /tmp/steerq-cover.$$

echo "== coverage floor (loadgen >= 90%) =="
go test -cover ./internal/loadgen/ > /tmp/steerq-cover-load.$$
cat /tmp/steerq-cover-load.$$
awk '
    /coverage:/ {
        pct = 0
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) { pct = $i; sub(/%/, "", pct) }
        if (pct + 0 < 90) { printf "coverage below 90%% floor: %s\n", $0; bad = 1 }
    }
    END { exit bad }
' /tmp/steerq-cover-load.$$
rm -f /tmp/steerq-cover-load.$$

echo "== fault-injection smoke (pinned seed 1337) =="
STEERQ_CHECK_PLANS=1 go run ./cmd/steerq pipeline -workload A -job 0/3 -m 60 -k 5 -workers 4 -fault-seed 1337 > /tmp/steerq-faults.$$
grep -q 'fault injection:' /tmp/steerq-faults.$$ || {
    echo "fault smoke: no injection stats in output" >&2
    rm -f /tmp/steerq-faults.$$
    exit 1
}
rm -f /tmp/steerq-faults.$$

echo "== metrics golden smoke (frozen clock, pinned seed 1337) =="
STEERQ_VCLOCK=1 STEERQ_CHECK_PLANS=1 go run ./cmd/steerq pipeline \
    -workload A -job 0/3 -m 60 -k 5 -workers 4 -fault-seed 1337 \
    -metrics-out /tmp/steerq-metrics.$$.json > /dev/null
diff -u cmd/steerq/testdata/ci_metrics.golden.json /tmp/steerq-metrics.$$.json || {
    echo "metrics smoke: snapshot drifted from committed golden" >&2
    echo "(if the change is intentional, regenerate with the command above)" >&2
    rm -f /tmp/steerq-metrics.$$.json
    exit 1
}
rm -f /tmp/steerq-metrics.$$.json

echo "== serving smoke (steerqd end to end, frozen clock) =="
servdir=$(mktemp -d)
STEERQ_VCLOCK=1 go run ./cmd/steerq bundle -workload B -scale 0.002 -seed 5 -day 0 \
    -max-jobs 10 -m 40 -k 3 -bundle-version 3 -created-unix 1700000000 \
    -out "$servdir/active.stqb" > /dev/null
go build -o "$servdir/steerqd" ./cmd/steerqd
STEERQ_VCLOCK=1 "$servdir/steerqd" -addr 127.0.0.1:0 -bundle "$servdir/active.stqb" \
    -addr-file "$servdir/addr.txt" -metrics-out "$servdir/serving.json" \
    2> "$servdir/steerqd.log" &
servpid=$!
i=0
while [ ! -s "$servdir/addr.txt" ] && [ $i -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
[ -s "$servdir/addr.txt" ] || {
    echo "serving smoke: daemon never wrote its address file" >&2
    cat "$servdir/steerqd.log" >&2
    kill "$servpid" 2> /dev/null || true
    rm -rf "$servdir"
    exit 1
}
servaddr=$(cat "$servdir/addr.txt")
# Smoke-query the bundle's first three signatures (known groups) plus the
# all-zero signature (a guaranteed miss served from the default config).
servsigs=$(go run ./cmd/steerq bundle -inspect "$servdir/active.stqb" \
    | awk '/^entry/ { print $4 }' | cut -d= -f2 | head -3)
first=1
for sig in $servsigs $(printf '%064d' 0); do
    if [ "$first" = 1 ]; then
        go run ./cmd/steerq steer -addr "$servaddr" -wait-ready 10s -sig "$sig" > /dev/null
        first=0
    else
        go run ./cmd/steerq steer -addr "$servaddr" -sig "$sig" > /dev/null
    fi
done
kill -TERM "$servpid"
wait "$servpid" || {
    echo "serving smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$servdir/steerqd.log" >&2
    rm -rf "$servdir"
    exit 1
}
diff -u cmd/steerqd/testdata/ci_serving.golden.json "$servdir/serving.json" || {
    echo "serving smoke: metrics snapshot drifted from committed golden" >&2
    echo "(if the change is intentional, regenerate with the commands above)" >&2
    rm -rf "$servdir"
    exit 1
}
rm -rf "$servdir"

echo "== serving load smoke (frozen clock, pinned seed) =="
# The whole report — bundle checksum, arrival counts, decision mixes, worker
# sweep — must reproduce byte for byte under the frozen virtual clock.
STEERQ_VCLOCK=1 go run ./cmd/steerq-bench -serving -serving-quick \
    -scale 0.002 -m 40 -serving-out /tmp/steerq-serving.$$.json > /dev/null
diff -u cmd/steerq-bench/testdata/ci_serving_load.golden.json /tmp/steerq-serving.$$.json || {
    echo "serving load smoke: BENCH_serving.json drifted from committed golden" >&2
    echo "(if the change is intentional, regenerate with the command above)" >&2
    rm -f /tmp/steerq-serving.$$.json
    exit 1
}
# A report diffed against itself never regresses.
go run ./cmd/steerq-bench -compare-serving /tmp/steerq-serving.$$.json \
    -serving-out /tmp/steerq-serving.$$.json > /dev/null
# With the virtual-report skip removed and the old report claiming enormous
# throughput, the achieved-QPS gate must trip (exit nonzero).
sed '/"virtual": true,/d' /tmp/steerq-serving.$$.json > /tmp/steerq-serving-real.$$.json
sed -E 's/"achieved_qps": [0-9.]+/"achieved_qps": 1000000/' \
    /tmp/steerq-serving-real.$$.json > /tmp/steerq-serving-old.$$.json
if go run ./cmd/steerq-bench -compare-serving /tmp/steerq-serving-old.$$.json \
    -serving-out /tmp/steerq-serving-real.$$.json > /dev/null 2>&1; then
    echo "serving load smoke: injected throughput collapse was not flagged" >&2
    rm -f /tmp/steerq-serving.$$.json /tmp/steerq-serving-real.$$.json /tmp/steerq-serving-old.$$.json
    exit 1
fi
rm -f /tmp/steerq-serving.$$.json /tmp/steerq-serving-real.$$.json /tmp/steerq-serving-old.$$.json

echo "== perf stamp smoke (frozen clock, forced parallel) =="
STEERQ_VCLOCK=1 STEERQ_BENCH_FORCE_PARALLEL=1 go run ./cmd/steerq-bench \
    -perf -perf-quick -scale 0.002 -m 10 \
    -perf-out /tmp/steerq-perf.$$.json > /dev/null
grep -q '"generated_unix": 0' /tmp/steerq-perf.$$.json || {
    echo "perf smoke: report stamp not frozen under STEERQ_VCLOCK (wall-clock leak)" >&2
    rm -f /tmp/steerq-perf.$$.json
    exit 1
}
if grep -q '"skipped": true' /tmp/steerq-perf.$$.json; then
    echo "perf smoke: a leg was skipped despite STEERQ_BENCH_FORCE_PARALLEL=1" >&2
    rm -f /tmp/steerq-perf.$$.json
    exit 1
fi
grep -q '"speedup_at_max"' /tmp/steerq-perf.$$.json || {
    echo "perf smoke: report has no workers-1/2/4/8 scaling sweep" >&2
    rm -f /tmp/steerq-perf.$$.json
    exit 1
}

echo "== bench compare smoke =="
# A report diffed against itself has zero deltas everywhere; the gate must
# pass.
go run ./cmd/steerq-bench -compare /tmp/steerq-perf.$$.json \
    -perf-out /tmp/steerq-perf.$$.json > /dev/null
# Shrink the old report's serial ns/op so the fresh report looks like a huge
# regression; the gate must trip (exit nonzero).
awk '!done && /"ns_per_op":/ { sub(/"ns_per_op": [0-9]+/, "\"ns_per_op\": 1"); done = 1 } { print }' \
    /tmp/steerq-perf.$$.json > /tmp/steerq-perf-old.$$.json
if go run ./cmd/steerq-bench -compare /tmp/steerq-perf-old.$$.json \
    -perf-out /tmp/steerq-perf.$$.json > /dev/null 2>&1; then
    echo "compare smoke: injected serial regression was not flagged" >&2
    rm -f /tmp/steerq-perf.$$.json /tmp/steerq-perf-old.$$.json
    exit 1
fi
rm -f /tmp/steerq-perf.$$.json /tmp/steerq-perf-old.$$.json

if [ "${STEERQ_CI_SKIP_FUZZ:-0}" != "1" ]; then
    echo "== fuzz (short) =="
    go test -fuzz=FuzzParse -fuzztime=15s ./internal/scopeql/
    go test -fuzz=FuzzCompile -fuzztime=15s ./internal/scopeql/
    go test -fuzz=FuzzBundleDecode -fuzztime=15s ./internal/bundle/
fi

echo "CI OK"
