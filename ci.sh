#!/bin/sh
# ci.sh — the full steerq gate. Run from the repository root.
#
# Stages, in order:
#   1. go build ./...            everything compiles
#   2. gofmt -l                  no unformatted files
#   3. go vet ./...              stdlib vet findings
#   4. go run ./cmd/steerq-lint  project-specific analyzers (see README)
#   5. go test -race ./...       unit + property + golden tests under the
#                                race detector, with plan validation forced
#                                on via STEERQ_CHECK_PLANS
#   6. parallel smoke            the pipeline determinism tests re-run with
#                                STEERQ_WORKERS=4 so the race detector covers
#                                the worker pool on every run
#   7. alloc regression          the compile allocation budget re-checked
#                                under -race (testing.AllocsPerRun)
#   8. bench smoke               the pipeline benchmark executed once
#                                (-benchtime=1x) so a broken or pathologically
#                                slow hot path fails CI, not the next perf run
#   9. short fuzz pass           30s total over the scopeql parser/binder
#
# Set STEERQ_CI_SKIP_FUZZ=1 to skip stage 9 (e.g. on very slow machines).
set -eu

echo "== build =="
go build ./...

echo "== gofmt =="
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== vet =="
go vet ./...

echo "== steerq-lint =="
go run ./cmd/steerq-lint ./...

echo "== test (race) =="
STEERQ_CHECK_PLANS=1 go test -race ./...

echo "== parallel pipeline smoke (race, 4 workers) =="
STEERQ_WORKERS=4 STEERQ_CHECK_PLANS=1 go test -race ./internal/steering/ ./internal/experiments/ -run 'Parallel|Determinism'

echo "== alloc regression (race) =="
go test -race ./internal/rules/ -run TestCompileAllocationBudget -count=1

echo "== bench smoke (1x) =="
go test -run '^$' -bench BenchmarkPipelineWorkers1 -benchtime=1x -benchmem .

if [ "${STEERQ_CI_SKIP_FUZZ:-0}" != "1" ]; then
    echo "== fuzz (short) =="
    go test -fuzz=FuzzParse -fuzztime=15s ./internal/scopeql/
    go test -fuzz=FuzzCompile -fuzztime=15s ./internal/scopeql/
fi

echo "CI OK"
