module steerq

go 1.22
