// Package bitvec provides fixed-width bit vectors used throughout steerq to
// represent rule configurations and rule signatures.
//
// A rule configuration is a bit vector with one bit per optimizer rule: bit i
// set means rule i is enabled for compilation. A rule signature is a bit
// vector with bit i set when rule i directly contributed to the final query
// plan. Both concepts come from Definitions 3.1 and 3.2 of the paper.
//
// Vectors are value types backed by a small fixed array so they can be used
// as map keys after conversion with Key, hashed cheaply, and copied without
// aliasing bugs.
//
// steerq:hotpath — signatures are hashed and compared per candidate; the
// hotalloc analyzer guards this package against allocation regressions.
package bitvec

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math/bits"
	"strings"
)

// Width is the number of bits in every Vector. The SCOPE optimizer modeled by
// this repository has 256 rules, matching the paper's rule census (Table 2).
const Width = 256

// words is the number of 64-bit words backing a Vector.
const words = Width / 64

// Vector is a fixed-width bit vector of Width bits.
//
// The zero value is the empty vector (all bits clear).
type Vector struct {
	w [words]uint64
}

// Key is a comparable, compact form of a Vector suitable for use as a map
// key. Two Vectors are equal iff their Keys are equal.
type Key [words]uint64

// New returns a Vector with the given bit positions set.
// It panics if any position is out of range, mirroring slice indexing.
func New(positions ...int) Vector {
	var v Vector
	for _, p := range positions {
		v.Set(p)
	}
	return v
}

// AllSet returns a Vector with the first n bits set.
// It panics if n is negative or greater than Width.
func AllSet(n int) Vector {
	if n < 0 || n > Width {
		// steerq:allow-panic — documented slice-indexing semantics; the tests assert it.
		panic(fmt.Sprintf("bitvec: AllSet(%d) out of range [0,%d]", n, Width))
	}
	var v Vector
	for i := 0; i < n; i++ {
		v.Set(i)
	}
	return v
}

func check(i int) {
	if i < 0 || i >= Width {
		// steerq:allow-panic — out-of-range bit access is a caller bug, like s[i] past len(s).
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, Width))
	}
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	check(i)
	v.w[i/64] |= 1 << (uint(i) % 64)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	check(i)
	v.w[i/64] &^= 1 << (uint(i) % 64)
}

// Assign sets bit i to on.
func (v *Vector) Assign(i int, on bool) {
	if on {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	check(i)
	return v.w[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of set bits.
func (v Vector) Count() int {
	n := 0
	for _, w := range v.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether no bits are set.
func (v Vector) IsEmpty() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical bits.
func (v Vector) Equal(o Vector) bool { return v.w == o.w }

// And returns the bitwise intersection of v and o.
func (v Vector) And(o Vector) Vector {
	var r Vector
	for i := range v.w {
		r.w[i] = v.w[i] & o.w[i]
	}
	return r
}

// Or returns the bitwise union of v and o.
func (v Vector) Or(o Vector) Vector {
	var r Vector
	for i := range v.w {
		r.w[i] = v.w[i] | o.w[i]
	}
	return r
}

// AndNot returns the bits set in v but not in o (set difference).
func (v Vector) AndNot(o Vector) Vector {
	var r Vector
	for i := range v.w {
		r.w[i] = v.w[i] &^ o.w[i]
	}
	return r
}

// Xor returns the bits set in exactly one of v and o (symmetric difference).
// RuleDiff (Definition 6.1) is computed from the Xor of two signatures.
func (v Vector) Xor(o Vector) Vector {
	var r Vector
	for i := range v.w {
		r.w[i] = v.w[i] ^ o.w[i]
	}
	return r
}

// Contains reports whether every bit set in o is also set in v.
func (v Vector) Contains(o Vector) bool {
	for i := range v.w {
		if o.w[i]&^v.w[i] != 0 {
			return false
		}
	}
	return true
}

// Ones returns the positions of all set bits in ascending order.
func (v Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Key returns the comparable map-key form of v.
func (v Vector) Key() Key { return Key(v.w) }

// FromKey reconstructs the Vector encoded by k.
func FromKey(k Key) Vector { return Vector{w: [words]uint64(k)} }

// Hash returns a 64-bit FNV-1a hash of the vector contents.
func (v Vector) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range v.w {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * uint(i)))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Hex returns a fixed-length lowercase hex encoding of the vector,
// most-significant word first. Suitable as a stable textual identifier for a
// rule signature (used to name job groups).
func (v Vector) Hex() string {
	buf := make([]byte, 8*words)
	for wi := 0; wi < words; wi++ {
		w := v.w[words-1-wi]
		for i := 0; i < 8; i++ {
			buf[wi*8+i] = byte(w >> (8 * uint(7-i)))
		}
	}
	return hex.EncodeToString(buf)
}

// ParseHex parses a string previously produced by Hex.
func ParseHex(s string) (Vector, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Vector{}, fmt.Errorf("bitvec: parse hex: %w", err)
	}
	if len(raw) != 8*words {
		return Vector{}, fmt.Errorf("bitvec: parse hex: want %d bytes, got %d", 8*words, len(raw))
	}
	var v Vector
	for wi := 0; wi < words; wi++ {
		var w uint64
		for i := 0; i < 8; i++ {
			w = w<<8 | uint64(raw[wi*8+i])
		}
		v.w[words-1-wi] = w
	}
	return v, nil
}

// String renders the vector as "{3, 17, 42}" listing the set bit positions.
func (v Vector) String() string {
	ones := v.Ones()
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ones {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte('}')
	return b.String()
}
