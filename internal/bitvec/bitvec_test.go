package bitvec

import (
	"reflect"
	"testing"

	"steerq/internal/xrand"
)

// randomVector draws a vector from an xrand stream: like all stochastic code
// in this module, the tests derive their randomness from seeded xrand
// streams rather than math/rand (enforced by the randcheck analyzer).
func randomVector(r *xrand.Source) Vector {
	var v Vector
	n := r.Intn(Width)
	for i := 0; i < n; i++ {
		v.Set(r.Intn(Width))
	}
	return v
}

// checkProp runs a property over pairs of seeded random vectors.
func checkProp(t *testing.T, iterations int, prop func(a, b Vector) bool) {
	t.Helper()
	r := xrand.New(7).Derive("bitvec", t.Name())
	for i := 0; i < iterations; i++ {
		a, b := randomVector(r), randomVector(r)
		if !prop(a, b) {
			t.Fatalf("property failed on iteration %d:\na = %v\nb = %v", i, a, b)
		}
	}
}

func TestSetClearGet(t *testing.T) {
	var v Vector
	for _, i := range []int{0, 1, 63, 64, 127, 128, 255} {
		if v.Get(i) {
			t.Errorf("bit %d set in zero vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestAssign(t *testing.T) {
	var v Vector
	v.Assign(42, true)
	if !v.Get(42) {
		t.Fatal("Assign(42, true) did not set")
	}
	v.Assign(42, false)
	if v.Get(42) {
		t.Fatal("Assign(42, false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, Width, Width + 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			var v Vector
			v.Get(i)
		}()
	}
}

func TestAllSet(t *testing.T) {
	v := AllSet(100)
	if v.Count() != 100 {
		t.Fatalf("AllSet(100).Count() = %d", v.Count())
	}
	if !v.Get(99) || v.Get(100) {
		t.Fatal("AllSet boundary wrong")
	}
	if AllSet(0).Count() != 0 {
		t.Fatal("AllSet(0) not empty")
	}
	if AllSet(Width).Count() != Width {
		t.Fatal("AllSet(Width) incomplete")
	}
}

func TestOnes(t *testing.T) {
	v := New(3, 64, 200, 5)
	want := []int{3, 5, 64, 200}
	if got := v.Ones(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Ones() = %v, want %v", got, want)
	}
}

func TestCountMatchesOnes(t *testing.T) {
	checkProp(t, 100, func(v, _ Vector) bool { return v.Count() == len(v.Ones()) })
}

func TestAndNotDefinition(t *testing.T) {
	checkProp(t, 50, func(a, b Vector) bool {
		d := a.AndNot(b)
		for i := 0; i < Width; i++ {
			if d.Get(i) != (a.Get(i) && !b.Get(i)) {
				return false
			}
		}
		return true
	})
}

func TestXorSymmetricDifference(t *testing.T) {
	checkProp(t, 100, func(a, b Vector) bool {
		x := a.Xor(b)
		return x.Equal(a.AndNot(b).Or(b.AndNot(a)))
	})
}

func TestUnionIntersectionLaws(t *testing.T) {
	checkProp(t, 100, func(a, b Vector) bool {
		u := a.Or(b)
		i := a.And(b)
		// |A| + |B| == |A∪B| + |A∩B|
		if a.Count()+b.Count() != u.Count()+i.Count() {
			return false
		}
		// A ⊆ A∪B and A∩B ⊆ A
		return u.Contains(a) && u.Contains(b) && a.Contains(i) && b.Contains(i)
	})
}

func TestContainsReflexive(t *testing.T) {
	checkProp(t, 100, func(a, _ Vector) bool { return a.Contains(a) && a.Contains(Vector{}) })
}

func TestHexRoundTrip(t *testing.T) {
	checkProp(t, 100, func(a, _ Vector) bool {
		got, err := ParseHex(a.Hex())
		return err == nil && got.Equal(a)
	})
}

func TestParseHexErrors(t *testing.T) {
	if _, err := ParseHex("zz"); err == nil {
		t.Error("ParseHex accepted non-hex input")
	}
	if _, err := ParseHex("abcd"); err == nil {
		t.Error("ParseHex accepted short input")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	checkProp(t, 100, func(a, _ Vector) bool { return FromKey(a.Key()).Equal(a) })
}

func TestKeyEqualityMatchesEqual(t *testing.T) {
	checkProp(t, 100, func(a, b Vector) bool { return (a.Key() == b.Key()) == a.Equal(b) })
	// Pairs drawn independently rarely collide; also check the equal case.
	checkProp(t, 100, func(a, _ Vector) bool { return a.Key() == a.Key() })
}

func TestHashConsistent(t *testing.T) {
	a := New(1, 2, 3)
	b := New(3, 2, 1)
	if a.Hash() != b.Hash() {
		t.Fatal("equal vectors hash differently")
	}
	if a.Hash() == New(1, 2, 4).Hash() {
		t.Log("hash collision between close vectors (allowed but unexpected)")
	}
}

func TestIsEmpty(t *testing.T) {
	var v Vector
	if !v.IsEmpty() {
		t.Fatal("zero vector not empty")
	}
	v.Set(255)
	if v.IsEmpty() {
		t.Fatal("vector with bit 255 reported empty")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 17).String(); got != "{3, 17}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Vector{}).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}
