// Package faults is the deterministic fault-injection layer behind the
// robustness test tier: it makes compiles and simulated executions fail,
// hang past their deadline, or return corrupted plans at configurable
// per-site probabilities, while keeping every run reproducible bit-for-bit
// at any worker count.
//
// Determinism is the design constraint, exactly as in internal/par and
// internal/exec: a fault decision is a pure function of (seed, site, tag,
// attempt) — it derives a private xrand stream from content, never from
// shared RNG state or scheduling order — so the same seed injects the same
// faults whether the pipeline runs on one worker or eight, and a failing
// seed from CI replays exactly on a laptop.
//
// The production follow-up to the paper ("Deploying a Steered Query
// Optimizer in Production at Microsoft") ships steering only with a safety
// net: validation, bounded retry and automatic fallback to the default
// configuration when a steered compile or execution misbehaves. This
// package provides both halves of that story for the reproduction — the
// misbehavior (Injector) and the machinery that survives it (Policy,
// Record, plan validation against corruption).
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"steerq/internal/obs"
	"steerq/internal/xrand"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds. KindNone means the operation proceeds untouched.
const (
	KindNone Kind = iota
	// KindFail makes the operation return ErrInjected immediately.
	KindFail
	// KindHang makes the operation block until its context deadline and
	// return ErrTimeout — the simulator's stand-in for a compile or vertex
	// that stops making progress.
	KindHang
	// KindCorrupt lets the operation complete but hands back a structurally
	// broken result (a plan that fails cascades.Validate). Detection is the
	// caller's job — that is the point: the robustness layer must catch
	// corruption by validating, not by being told.
	KindCorrupt
)

var kindNames = [...]string{"none", "fail", "hang", "corrupt"}

func (k Kind) String() string { return kindNames[k] }

// Site identifies where in the pipeline an operation runs. Probabilities
// are configured per site.
type Site string

// Injection sites.
const (
	SiteCompile Site = "compile"
	SiteExec    Site = "exec"
)

// Probs are the per-attempt fault probabilities of one site. They are
// cumulative-sampled in order fail, hang, corrupt, so their sum must not
// exceed 1.
type Probs struct {
	Fail    float64
	Hang    float64
	Corrupt float64
}

// sum is the total fault probability of the site.
func (p Probs) sum() float64 { return p.Fail + p.Hang + p.Corrupt }

// Plan configures deterministic fault injection: a seed rooting every
// decision stream plus per-site probabilities.
type Plan struct {
	Seed    uint64
	Compile Probs
	Exec    Probs
}

// DefaultPlan returns a plan with moderate rates at both sites: high enough
// that a pipeline run of a few hundred compiles sees every fault kind, low
// enough that bounded retry almost always recovers (persistent failure
// needs every attempt's independent draw to fail).
func DefaultPlan(seed uint64) Plan {
	return Plan{
		Seed:    seed,
		Compile: Probs{Fail: 0.06, Hang: 0.03, Corrupt: 0.04},
		Exec:    Probs{Fail: 0.06, Hang: 0.03},
	}
}

// probs selects the site's probabilities.
func (p Plan) probs(site Site) Probs {
	if site == SiteExec {
		return p.Exec
	}
	return p.Compile
}

// Validate checks the plan's probabilities are sane.
func (p Plan) Validate() error {
	for _, s := range []struct {
		site Site
		pr   Probs
	}{{SiteCompile, p.Compile}, {SiteExec, p.Exec}} {
		for _, v := range []float64{s.pr.Fail, s.pr.Hang, s.pr.Corrupt} {
			if v < 0 || v > 1 {
				return fmt.Errorf("faults: %s probability %v outside [0, 1]", s.site, v)
			}
		}
		if s.pr.sum() > 1 {
			return fmt.Errorf("faults: %s probabilities sum to %v > 1", s.site, s.pr.sum())
		}
	}
	return nil
}

// Stats counts injected faults. All fields are monotone totals since the
// injector was built.
type Stats struct {
	Decisions uint64 // fault decisions taken (one per attempt per site)
	Fails     uint64
	Hangs     uint64
	Corrupts  uint64
}

// Injected returns the total number of injected faults of any kind.
func (s Stats) Injected() uint64 { return s.Fails + s.Hangs + s.Corrupts }

// Injector takes fault decisions for a Plan and counts what it injected.
// A nil *Injector is valid everywhere and injects nothing, so call sites
// need no guards; the same injector may be shared across goroutines,
// harnesses and pipelines of one experiment (decisions are content-keyed,
// the counters are atomic).
type Injector struct {
	plan      Plan
	decisions atomic.Uint64
	fails     atomic.Uint64
	hangs     atomic.Uint64
	corrupts  atomic.Uint64
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) *Injector { return &Injector{plan: p} }

// Plan returns the injector's configuration (zero value on nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Active reports whether fault injection is configured at all.
func (in *Injector) Active() bool { return in != nil }

// Decide returns the fault (or KindNone) for one attempt of one operation.
// The decision derives from (seed, site, tag, attempt) only: tags are
// content identifiers (job ID plus candidate index, never goroutine or
// completion order), and the attempt number makes retries redraw — a
// faulted first attempt does not doom the retry, and persistent failure
// requires every attempt's independent draw to land in the fault window.
func (in *Injector) Decide(site Site, tag string, attempt int) Kind {
	if in == nil {
		return KindNone
	}
	in.decisions.Add(1)
	pr := in.plan.probs(site)
	if pr.sum() <= 0 {
		return KindNone
	}
	u := in.rand("decide", site, tag, attempt).Float64()
	switch {
	case u < pr.Fail:
		in.fails.Add(1)
		return KindFail
	case u < pr.Fail+pr.Hang:
		in.hangs.Add(1)
		return KindHang
	case u < pr.Fail+pr.Hang+pr.Corrupt:
		in.corrupts.Add(1)
		return KindCorrupt
	}
	return KindNone
}

// Rand returns the content-keyed stream for auxiliary draws of one attempt
// (e.g. picking which plan node to corrupt). Distinct from the decision
// stream so adding draws never perturbs decisions.
func (in *Injector) Rand(site Site, tag string, attempt int) *xrand.Source {
	return in.rand("aux", site, tag, attempt)
}

// RetryRand returns the stream that jitters retry backoff for one
// operation. Keyed by content, not by attempt: one stream covers the whole
// retry loop of the operation.
func (in *Injector) RetryRand(site Site, tag string) *xrand.Source {
	if in == nil {
		return xrand.New(0).Derive("retry", string(site), tag)
	}
	return xrand.New(in.plan.Seed).Derive("retry", string(site), tag)
}

func (in *Injector) rand(kind string, site Site, tag string, attempt int) *xrand.Source {
	return xrand.New(in.plan.Seed).Derive("fault", kind, string(site), tag, strconv.Itoa(attempt))
}

// Publish registers the injector's tallies as snapshot-time gauges on reg:
// decisions taken and faults injected per kind. Gauge functions read the
// atomic counters when the snapshot is taken, so the values are exact totals
// regardless of how many goroutines share the injector. Safe on a nil
// injector or registry.
func (in *Injector) Publish(reg *obs.Registry) {
	if in == nil || reg == nil {
		return
	}
	reg.GaugeFunc("steerq_faults_decisions", func() float64 {
		return float64(in.decisions.Load())
	})
	reg.GaugeFunc("steerq_faults_injected", func() float64 {
		return float64(in.fails.Load())
	}, "kind", "fail")
	reg.GaugeFunc("steerq_faults_injected", func() float64 {
		return float64(in.hangs.Load())
	}, "kind", "hang")
	reg.GaugeFunc("steerq_faults_injected", func() float64 {
		return float64(in.corrupts.Load())
	}, "kind", "corrupt")
}

// Stats snapshots the injection counters. Safe on nil.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Decisions: in.decisions.Load(),
		Fails:     in.fails.Load(),
		Hangs:     in.hangs.Load(),
		Corrupts:  in.corrupts.Load(),
	}
}

// Sentinel errors of the injection layer. Callers classify with errors.Is;
// all three are retryable (Retryable), unlike genuine compile failures such
// as cascades.ErrNoPlan which are deterministic properties of the input.
var (
	// ErrInjected marks an injected hard failure.
	ErrInjected = errors.New("faults: injected failure")
	// ErrTimeout marks an attempt that exceeded its deadline — injected
	// hang or genuine overrun alike.
	ErrTimeout = errors.New("faults: attempt timed out")
	// ErrCorrupt marks a result that failed structural validation.
	ErrCorrupt = errors.New("faults: corrupted result")
)

// Injectedf builds an ErrInjected-wrapping error identifying the operation.
func Injectedf(site Site, tag string, attempt int) error {
	return fmt.Errorf("%w: %s %s attempt %d", ErrInjected, site, tag, attempt)
}

// Hang simulates a stuck operation: it blocks until the attempt's deadline
// fires and returns ErrTimeout (wrapping the context cause). Without a
// deadline on ctx nothing bounded would ever unblock it, so it times out
// immediately — the stand-in for a watchdog kill — which keeps runs with
// timeouts disabled deterministic instead of deadlocked.
func Hang(ctx context.Context, site Site, tag string, attempt int) error {
	if _, bounded := ctx.Deadline(); bounded {
		<-ctx.Done()
	}
	cause := ctx.Err()
	if cause == nil {
		cause = context.DeadlineExceeded
	}
	return fmt.Errorf("%w: %s %s attempt %d hung: %v", ErrTimeout, site, tag, attempt, cause)
}

// Retryable reports whether err is worth re-attempting: injected failures,
// timeouts and corruption are transient by construction; anything else
// (cascades.ErrNoPlan, binder errors) is deterministic and retrying would
// only repeat it.
func Retryable(err error) bool {
	return errors.Is(err, ErrInjected) || isTimeout(err) || isCorrupt(err)
}

func isTimeout(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, context.DeadlineExceeded)
}

func isCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
