package faults

import (
	"context"
	"time"

	"steerq/internal/xrand"
)

// Policy bounds how a faulted operation is re-attempted: total attempts and
// an exponential backoff with multiplicative xrand jitter. The zero value
// means a single attempt (no retry).
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 behave as 1.
	MaxAttempts int
	// BaseBackoff is the nominal delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep, when non-nil, is called with each backoff delay. The default
	// is nil — no real sleeping: the cluster is simulated and its latency
	// modeled elsewhere, so tests run at full speed while the computed
	// delays stay observable through Record.Backoff.
	Sleep func(time.Duration)
}

// DefaultPolicy returns the pipeline's standard retry budget: four attempts
// with 10ms..500ms backoff. Four attempts push the persistent-failure
// probability of a site with fault rate p to p^4 (~1e-5 at p=0.06).
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
}

// PolicyOrDefault resolves the effective policy: an explicitly configured
// one wins; otherwise active fault injection turns on DefaultPolicy (faults
// without retry would just be noise), and no injection means one attempt.
func PolicyOrDefault(p Policy, in *Injector) Policy {
	if p.MaxAttempts > 0 {
		return p
	}
	if in.Active() {
		return DefaultPolicy()
	}
	return Policy{MaxAttempts: 1}
}

// attempts returns the effective attempt bound.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff computes the delay before retry number retry (1-based: the delay
// after the first failed attempt is Backoff(r, 1)): BaseBackoff doubled per
// retry, scaled by a uniform jitter in [0.5, 1.5) drawn from r, capped at
// MaxBackoff. Jitter decorrelates retry storms; drawing it from a
// content-keyed stream keeps it reproducible.
func (p Policy) Backoff(r *xrand.Source, retry int) time.Duration {
	if p.BaseBackoff <= 0 || retry < 1 {
		return 0
	}
	d := p.BaseBackoff << uint(retry-1)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	d = time.Duration(float64(d) * r.Uniform(0.5, 1.5))
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Do runs op under the policy: attempts are numbered from 0 and re-run
// while the error is Retryable and the budget lasts. r jitters the backoff
// (derive it per operation via Injector.RetryRand); rec, when non-nil,
// observes retries, timeouts and virtual backoff at the given site. The
// parent ctx bounds the whole loop — per-attempt deadlines are the op's
// job (par.ItemContext inside op), so a hang burns one attempt, not the
// whole budget.
//
// Returns the attempt count actually used and the final error (nil on
// success). A non-retryable error — a genuine compile failure, a parent
// cancellation — stops the loop immediately.
func (p Policy) Do(ctx context.Context, site Site, r *xrand.Source, rec *Record, op func(ctx context.Context, attempt int) error) (int, error) {
	maxA := p.attempts()
	var err error
	for attempt := 0; attempt < maxA; attempt++ {
		if attempt > 0 {
			rec.observeRetry(site)
			d := p.Backoff(r, attempt)
			rec.observeBackoff(d)
			if p.Sleep != nil && d > 0 {
				p.Sleep(d)
			}
		}
		err = op(ctx, attempt)
		if err == nil {
			return attempt + 1, nil
		}
		rec.observeError(err)
		if !Retryable(err) {
			return attempt + 1, err
		}
		if cerr := ctx.Err(); cerr != nil {
			// The parent deadline or cancelation is spent: further attempts
			// would all time out instantly. Surface the attempt error.
			return attempt + 1, err
		}
	}
	return maxA, err
}

// Record accumulates the robustness events of one pipeline unit (one job
// analysis, one trial, one experiment run). Plain ints: records are filled
// per item and merged serially in input-index order, which is what keeps
// the counts — like every other pipeline output — identical at any worker
// count.
type Record struct {
	// CompileRetries and ExecRetries count re-attempts beyond the first,
	// per site.
	CompileRetries int
	ExecRetries    int
	// Timeouts counts attempts that ended at a deadline (injected hang or
	// genuine overrun).
	Timeouts int
	// Corruptions counts attempts whose result failed validation.
	Corruptions int
	// Fallbacks counts steered executions abandoned for the default
	// configuration after exhausting their retry budget.
	Fallbacks int
	// GiveUps counts candidate compiles dropped after exhausting their
	// retry budget.
	GiveUps int
	// Backoff is the total virtual backoff delay computed for retries
	// (not slept by default; see Policy.Sleep).
	Backoff time.Duration
}

// Add merges o into r.
func (r *Record) Add(o Record) {
	r.CompileRetries += o.CompileRetries
	r.ExecRetries += o.ExecRetries
	r.Timeouts += o.Timeouts
	r.Corruptions += o.Corruptions
	r.Fallbacks += o.Fallbacks
	r.GiveUps += o.GiveUps
	r.Backoff += o.Backoff
}

// Retries returns total re-attempts across both sites.
func (r Record) Retries() int { return r.CompileRetries + r.ExecRetries }

// IsZero reports whether nothing was recorded.
func (r Record) IsZero() bool { return r == Record{} }

func (r *Record) observeRetry(site Site) {
	if r == nil {
		return
	}
	if site == SiteExec {
		r.ExecRetries++
	} else {
		r.CompileRetries++
	}
}

func (r *Record) observeBackoff(d time.Duration) {
	if r == nil {
		return
	}
	r.Backoff += d
}

func (r *Record) observeError(err error) {
	if r == nil {
		return
	}
	switch {
	case isTimeout(err):
		r.Timeouts++
	case isCorrupt(err):
		r.Corruptions++
	}
}
