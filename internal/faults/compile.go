package faults

import (
	"context"
	"fmt"

	"steerq/internal/cascades"
	"steerq/internal/plan"
	"steerq/internal/xrand"
)

// CompileAttempt runs one guarded compile attempt: it takes the fault
// decision for (site=compile, tag, attempt), runs compile unless an injected
// failure or hang preempts it, corrupts the winning plan when the decision
// says so, and — whenever injection is active — validates the plan before
// handing it back, so a corrupted result surfaces as a retryable ErrCorrupt
// instead of reaching the cache, the executor, or a report.
//
// Validation on every compile (not just corrupted ones) is deliberate: the
// robustness layer must catch corruption by checking invariants, not by
// peeking at the injector's decision — that is what makes the metamorphic
// tests meaningful.
func (in *Injector) CompileAttempt(ctx context.Context, tag string, attempt int, compile func() (*cascades.Result, error)) (*cascades.Result, error) {
	switch in.Decide(SiteCompile, tag, attempt) {
	case KindFail:
		return nil, Injectedf(SiteCompile, tag, attempt)
	case KindHang:
		return nil, Hang(ctx, SiteCompile, tag, attempt)
	case KindCorrupt:
		res, err := compile()
		if err != nil {
			// Pass the optimizer's partial result (no-plan verdicts carry
			// the decision footprint) through with the error.
			return res, err
		}
		res.Plan = CorruptPlan(res.Plan, in.Rand(SiteCompile, tag, attempt))
		return in.validated(res, tag, attempt)
	}
	res, err := compile()
	if err != nil {
		return res, err
	}
	return in.validated(res, tag, attempt)
}

// validated guards a compile result behind cascades.Validate when injection
// is active.
func (in *Injector) validated(res *cascades.Result, tag string, attempt int) (*cascades.Result, error) {
	if !in.Active() {
		return res, nil
	}
	if err := cascades.Validate(res.Plan, 0); err != nil {
		return nil, fmt.Errorf("%w: compile %s attempt %d: %v", ErrCorrupt, tag, attempt, err)
	}
	return res, nil
}

// CorruptPlan returns a structurally broken deep copy of p: one node,
// picked by r, gets one of a few mutations every one of which violates a
// cascades.Validate invariant (a degree of parallelism outside [1, maxDOP],
// a missing rule attribution). The original plan is untouched.
func CorruptPlan(p *plan.PhysNode, r *xrand.Source) *plan.PhysNode {
	cp := plan.ClonePhys(p)
	var nodes []*plan.PhysNode
	cp.Walk(func(n *plan.PhysNode) { nodes = append(nodes, n) })
	victim := nodes[r.Intn(len(nodes))]
	switch r.Intn(3) {
	case 0:
		victim.Dist.DOP = 0
	case 1:
		victim.Dist.DOP = -7
	default:
		victim.RuleID = -1
	}
	return cp
}
