package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Environment knobs. Setting EnvSeed is what arms fault injection in the
// CLIs and in ci.sh's smoke stage; EnvRates overrides the default
// probabilities. A failing run is reproduced by exporting the same seed —
// decisions depend on nothing else.
const (
	// EnvSeed (STEERQ_FAULT_SEED) roots every fault decision stream.
	EnvSeed = "STEERQ_FAULT_SEED"
	// EnvRates (STEERQ_FAULT_RATES) sets per-site probabilities as
	// comma-separated site.kind=prob pairs, e.g.
	// "compile.fail=0.05,compile.corrupt=0.02,exec.hang=0.01".
	EnvRates = "STEERQ_FAULT_RATES"
)

// FromEnv builds an injector from the environment: nil (injection off) when
// STEERQ_FAULT_SEED is unset, otherwise DefaultPlan(seed) adjusted by
// STEERQ_FAULT_RATES.
func FromEnv() (*Injector, error) {
	p, err := PlanFromEnv()
	if err != nil || p == nil {
		return nil, err
	}
	return NewInjector(*p), nil
}

// PlanFromEnv resolves the environment knobs into a plan, nil when
// STEERQ_FAULT_SEED is unset.
func PlanFromEnv() (*Plan, error) {
	return ParsePlan(os.Getenv(EnvSeed), os.Getenv(EnvRates))
}

// ParsePlan builds a plan from textual seed and rates (the CLI flag values):
// an empty seed with empty rates means injection off (nil plan, no error);
// rates without a seed is an error, because rates alone cannot arm
// injection.
func ParsePlan(seedStr, rates string) (*Plan, error) {
	if seedStr == "" {
		if rates != "" {
			return nil, fmt.Errorf("faults: rates %q given without a fault seed", rates)
		}
		return nil, nil
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faults: seed %q: %w", seedStr, err)
	}
	plan := DefaultPlan(seed)
	if rates != "" {
		if err := ApplyRates(&plan, rates); err != nil {
			return nil, err
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &plan, nil
}

// ApplyRates parses a comma-separated list of site.kind=prob pairs into the
// plan. Unmentioned probabilities keep their current values.
func ApplyRates(plan *Plan, rates string) error {
	for _, pair := range strings.Split(rates, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("faults: rate %q: want site.kind=prob", pair)
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return fmt.Errorf("faults: rate %q: %w", pair, err)
		}
		site, kind, ok := strings.Cut(strings.TrimSpace(key), ".")
		if !ok {
			return fmt.Errorf("faults: rate %q: want site.kind=prob", pair)
		}
		var probs *Probs
		switch Site(site) {
		case SiteCompile:
			probs = &plan.Compile
		case SiteExec:
			probs = &plan.Exec
		default:
			return fmt.Errorf("faults: rate %q: unknown site %q", pair, site)
		}
		switch kind {
		case "fail":
			probs.Fail = prob
		case "hang":
			probs.Hang = prob
		case "corrupt":
			probs.Corrupt = prob
		default:
			return fmt.Errorf("faults: rate %q: unknown kind %q", pair, kind)
		}
	}
	return nil
}
