package faults_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"steerq/internal/faults"
	"steerq/internal/xrand"
)

func testPlan() faults.Plan { return faults.DefaultPlan(99) }

func TestDecideIsContentKeyed(t *testing.T) {
	// Two injectors with one plan, decisions taken in different orders, must
	// agree on every (site, tag, attempt): decisions depend on content only.
	a := faults.NewInjector(testPlan())
	b := faults.NewInjector(testPlan())
	type key struct {
		site    faults.Site
		tag     string
		attempt int
	}
	var keys []key
	for i := 0; i < 200; i++ {
		keys = append(keys, key{faults.SiteCompile, fmt.Sprintf("job%d/cand%d", i%7, i), i % 3})
		keys = append(keys, key{faults.SiteExec, fmt.Sprintf("job%d/alt%d", i%7, i), i % 3})
	}
	got := make(map[key]faults.Kind)
	for _, k := range keys {
		got[k] = a.Decide(k.site, k.tag, k.attempt)
	}
	for i := len(keys) - 1; i >= 0; i-- { // reversed order
		k := keys[i]
		if kind := b.Decide(k.site, k.tag, k.attempt); kind != got[k] {
			t.Fatalf("Decide(%v) = %v under reversed order, want %v", k, kind, got[k])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestDecideRatesAndStats(t *testing.T) {
	in := faults.NewInjector(faults.Plan{
		Seed:    4,
		Compile: faults.Probs{Fail: 0.2, Hang: 0.1, Corrupt: 0.1},
	})
	counts := make(map[faults.Kind]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Decide(faults.SiteCompile, fmt.Sprintf("t%d", i), 0)]++
		// Exec has zero probabilities in this plan: never faults.
		if k := in.Decide(faults.SiteExec, fmt.Sprintf("t%d", i), 0); k != faults.KindNone {
			t.Fatalf("zero-probability site injected %v", k)
		}
	}
	st := in.Stats()
	if st.Decisions != 2*n {
		t.Fatalf("Decisions = %d, want %d", st.Decisions, 2*n)
	}
	if st.Fails != uint64(counts[faults.KindFail]) || st.Hangs != uint64(counts[faults.KindHang]) || st.Corrupts != uint64(counts[faults.KindCorrupt]) {
		t.Fatalf("stats %+v disagree with observed %v", st, counts)
	}
	if st.Injected() != st.Fails+st.Hangs+st.Corrupts {
		t.Fatalf("Injected() = %d inconsistent with %+v", st.Injected(), st)
	}
	// Empirical rates should be near the configured ones (3-sigma-ish slack).
	for kind, want := range map[faults.Kind]float64{faults.KindFail: 0.2, faults.KindHang: 0.1, faults.KindCorrupt: 0.1} {
		got := float64(counts[kind]) / n
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("%v rate = %.3f, want ~%.2f", kind, got, want)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *faults.Injector
	if in.Active() {
		t.Fatal("nil injector reports active")
	}
	if k := in.Decide(faults.SiteCompile, "x", 0); k != faults.KindNone {
		t.Fatalf("nil Decide = %v", k)
	}
	if st := in.Stats(); st != (faults.Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if p := in.Plan(); p != (faults.Plan{}) {
		t.Fatalf("nil Plan = %+v", p)
	}
	if r := in.RetryRand(faults.SiteExec, "x"); r == nil {
		t.Fatal("nil RetryRand returned nil source")
	}
}

func TestRetriesRedrawPerAttempt(t *testing.T) {
	// With the attempt number in the key, a tag that faults at attempt 0 must
	// not fault at every attempt: find such a tag and check later attempts
	// differ somewhere.
	in := faults.NewInjector(faults.Plan{Seed: 11, Compile: faults.Probs{Fail: 0.3}})
	recovered := false
	for i := 0; i < 200 && !recovered; i++ {
		tag := fmt.Sprintf("j%d", i)
		if in.Decide(faults.SiteCompile, tag, 0) != faults.KindFail {
			continue
		}
		for attempt := 1; attempt < 4; attempt++ {
			if in.Decide(faults.SiteCompile, tag, attempt) == faults.KindNone {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Fatal("no faulted tag recovered on retry: attempts do not redraw")
	}
}

func TestPlanValidate(t *testing.T) {
	ok := testPlan()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	bad := []faults.Plan{
		{Compile: faults.Probs{Fail: -0.1}},
		{Exec: faults.Probs{Hang: 1.5}},
		{Compile: faults.Probs{Fail: 0.5, Hang: 0.4, Corrupt: 0.2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[faults.Kind]string{
		faults.KindNone:    "none",
		faults.KindFail:    "fail",
		faults.KindHang:    "hang",
		faults.KindCorrupt: "corrupt",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRetryable(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", faults.ErrInjected)
	for _, err := range []error{faults.ErrInjected, faults.ErrTimeout, faults.ErrCorrupt, wrapped, context.DeadlineExceeded} {
		if !faults.Retryable(err) {
			t.Errorf("Retryable(%v) = false", err)
		}
	}
	for _, err := range []error{nil, errors.New("no plan"), context.Canceled} {
		if faults.Retryable(err) {
			t.Errorf("Retryable(%v) = true", err)
		}
	}
}

func TestHang(t *testing.T) {
	// Bounded context: Hang blocks until the deadline, then reports a timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := faults.Hang(ctx, faults.SiteExec, "j", 1)
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("Hang with deadline: %v, want ErrTimeout", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Hang returned before the deadline")
	}
	// Unbounded context: the watchdog-kill path returns immediately.
	done := make(chan error, 1)
	go func() { done <- faults.Hang(context.Background(), faults.SiteCompile, "j", 0) }()
	select {
	case err := <-done:
		if !errors.Is(err, faults.ErrTimeout) {
			t.Fatalf("Hang without deadline: %v, want ErrTimeout", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Hang without deadline blocked")
	}
}

func TestInjectedfMentionsOperation(t *testing.T) {
	err := faults.Injectedf(faults.SiteCompile, "A/d0/j3/cand7", 2)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Injectedf not ErrInjected: %v", err)
	}
	for _, want := range []string{"compile", "A/d0/j3/cand7", "attempt 2"} {
		if !contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPolicyBackoff(t *testing.T) {
	p := faults.Policy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	r := xrand.New(3).Derive("backoff-test")
	for retry := 1; retry <= 6; retry++ {
		d := p.Backoff(r, retry)
		nominal := p.BaseBackoff << uint(retry-1)
		if nominal > p.MaxBackoff {
			nominal = p.MaxBackoff
		}
		lo, hi := nominal/2, p.MaxBackoff
		if d < lo || d > hi {
			t.Errorf("Backoff(retry=%d) = %v outside [%v, %v]", retry, d, lo, hi)
		}
	}
	if d := (faults.Policy{}).Backoff(r, 1); d != 0 {
		t.Errorf("zero-policy backoff = %v", d)
	}
	if d := p.Backoff(r, 0); d != 0 {
		t.Errorf("retry 0 backoff = %v", d)
	}
}

func TestBackoffJitterIsSeedDeterministic(t *testing.T) {
	p := faults.DefaultPolicy()
	in := faults.NewInjector(testPlan())
	a := p.Backoff(in.RetryRand(faults.SiteCompile, "j1"), 1)
	b := p.Backoff(in.RetryRand(faults.SiteCompile, "j1"), 1)
	if a != b {
		t.Fatalf("same stream, same retry: %v vs %v", a, b)
	}
}

func TestPolicyOrDefault(t *testing.T) {
	explicit := faults.Policy{MaxAttempts: 7}
	if got := faults.PolicyOrDefault(explicit, nil); got.MaxAttempts != 7 {
		t.Fatalf("explicit policy lost: %+v", got)
	}
	in := faults.NewInjector(testPlan())
	if got := faults.PolicyOrDefault(faults.Policy{}, in); got.MaxAttempts != faults.DefaultPolicy().MaxAttempts {
		t.Fatalf("active injector should default retries on: %+v", got)
	}
	if got := faults.PolicyOrDefault(faults.Policy{}, nil); got.MaxAttempts != 1 {
		t.Fatalf("no injection should mean one attempt: %+v", got)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := faults.Policy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second}
	var rec faults.Record
	r := xrand.New(1).Derive("do-test")
	calls := 0
	attempts, err := p.Do(context.Background(), faults.SiteCompile, r, &rec, func(ctx context.Context, attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if attempt < 2 {
			return faults.Injectedf(faults.SiteCompile, "j", attempt)
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("Do = (%d, %v), calls=%d; want (3, nil), 3", attempts, err, calls)
	}
	if rec.CompileRetries != 2 || rec.ExecRetries != 0 {
		t.Fatalf("record %+v, want 2 compile retries", rec)
	}
	if rec.Backoff <= 0 {
		t.Fatalf("no virtual backoff recorded: %+v", rec)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	genuine := errors.New("cascades: no plan")
	var rec faults.Record
	calls := 0
	attempts, err := faults.DefaultPolicy().Do(context.Background(), faults.SiteExec, xrand.New(2), &rec, func(ctx context.Context, attempt int) error {
		calls++
		return genuine
	})
	if !errors.Is(err, genuine) || attempts != 1 || calls != 1 {
		t.Fatalf("Do = (%d, %v), calls=%d; want immediate stop", attempts, err, calls)
	}
	if !rec.IsZero() {
		t.Fatalf("non-retryable failure recorded retries: %+v", rec)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var rec faults.Record
	calls := 0
	attempts, err := faults.DefaultPolicy().Do(context.Background(), faults.SiteExec, xrand.New(5), &rec, func(ctx context.Context, attempt int) error {
		calls++
		return fmt.Errorf("%w: vertex stuck", faults.ErrTimeout)
	})
	if err == nil || !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("exhausted Do err = %v", err)
	}
	want := faults.DefaultPolicy().MaxAttempts
	if attempts != want || calls != want {
		t.Fatalf("attempts = %d, calls = %d, want %d", attempts, calls, want)
	}
	if rec.ExecRetries != want-1 || rec.Timeouts != want {
		t.Fatalf("record %+v, want %d retries and %d timeouts", rec, want-1, want)
	}
}

func TestDoStopsWhenParentContextSpent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	attempts, err := faults.DefaultPolicy().Do(ctx, faults.SiteCompile, xrand.New(6), nil, func(ctx context.Context, attempt int) error {
		calls++
		cancel() // parent dies during the first attempt
		return faults.Injectedf(faults.SiteCompile, "j", attempt)
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("Do kept retrying after parent cancellation: attempts=%d calls=%d", attempts, calls)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want the attempt's error", err)
	}
}

func TestDoSleepHook(t *testing.T) {
	var slept []time.Duration
	p := faults.Policy{MaxAttempts: 3, BaseBackoff: 8 * time.Millisecond, MaxBackoff: time.Second,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	var rec faults.Record
	_, _ = p.Do(context.Background(), faults.SiteCompile, xrand.New(7), &rec, func(ctx context.Context, attempt int) error {
		return faults.Injectedf(faults.SiteCompile, "j", attempt)
	})
	if len(slept) != 2 {
		t.Fatalf("Sleep called %d times, want 2", len(slept))
	}
	var total time.Duration
	for _, d := range slept {
		total += d
	}
	if total != rec.Backoff {
		t.Fatalf("slept %v but recorded %v", total, rec.Backoff)
	}
}

func TestRecordAddAndRetries(t *testing.T) {
	a := faults.Record{CompileRetries: 1, ExecRetries: 2, Timeouts: 3, Corruptions: 4, Fallbacks: 5, GiveUps: 6, Backoff: time.Second}
	b := a
	b.Add(a)
	want := faults.Record{CompileRetries: 2, ExecRetries: 4, Timeouts: 6, Corruptions: 8, Fallbacks: 10, GiveUps: 12, Backoff: 2 * time.Second}
	if b != want {
		t.Fatalf("Add = %+v, want %+v", b, want)
	}
	if a.Retries() != 3 {
		t.Fatalf("Retries = %d, want 3", a.Retries())
	}
	if a.IsZero() || !(faults.Record{}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

func TestParsePlanAndRates(t *testing.T) {
	p, err := faults.ParsePlan("", "")
	if p != nil || err != nil {
		t.Fatalf("empty ParsePlan = (%v, %v)", p, err)
	}
	if _, err := faults.ParsePlan("", "compile.fail=0.5"); err == nil {
		t.Fatal("rates without seed accepted")
	}
	if _, err := faults.ParsePlan("not-a-number", ""); err == nil {
		t.Fatal("bad seed accepted")
	}
	p, err = faults.ParsePlan("42", "compile.fail=0.5, exec.hang=0.25,compile.corrupt=0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Compile.Fail != 0.5 || p.Exec.Hang != 0.25 || p.Compile.Corrupt != 0 {
		t.Fatalf("ParsePlan = %+v", p)
	}
	// Unmentioned rates keep the defaults.
	if p.Compile.Hang != faults.DefaultPlan(42).Compile.Hang {
		t.Fatalf("unmentioned rate changed: %+v", p)
	}
	for _, bad := range []string{"compile=0.5", "disk.fail=0.5", "compile.melt=0.5", "compile.fail=lots", "compile.fail=2"} {
		if _, err := faults.ParsePlan("1", bad); err == nil {
			t.Errorf("bad rates %q accepted", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(faults.EnvSeed, "")
	t.Setenv(faults.EnvRates, "")
	in, err := faults.FromEnv()
	if in != nil || err != nil {
		t.Fatalf("unset env: (%v, %v)", in, err)
	}
	t.Setenv(faults.EnvSeed, "1337")
	t.Setenv(faults.EnvRates, "exec.fail=0.5")
	in, err = faults.FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Plan(); got.Seed != 1337 || got.Exec.Fail != 0.5 {
		t.Fatalf("FromEnv plan = %+v", got)
	}
	t.Setenv(faults.EnvSeed, "nope")
	if _, err := faults.FromEnv(); err == nil {
		t.Fatal("bad env seed accepted")
	}
}
