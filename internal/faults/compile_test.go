package faults_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/faults"
	"steerq/internal/plan"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
	"steerq/internal/xrand"
)

// compiledResult optimizes a small script under the default configuration so
// corruption tests work on a genuine physical plan.
func compiledResult(t *testing.T) (*cascades.Optimizer, *cascades.Result) {
	t.Helper()
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "f",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 2000, TrueDistinct: 2000, Min: 0, Max: 2000},
			{Name: "v", Distinct: 500, TrueDistinct: 500, Min: 0, Max: 500},
		},
		BaseRows: 1e6, BytesPerRow: 50, GrowthPerDay: 1,
	})
	root, err := scopeql.Compile(`
a = SELECT k, SUM(v) AS total FROM "f" WHERE v > 10 GROUP BY k;
OUTPUT a TO "out/x";
`, cat)
	if err != nil {
		t.Fatal(err)
	}
	opt := rules.NewOptimizer(cost.NewEstimated(cat))
	res, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return opt, res
}

func TestCorruptPlanBreaksValidationNotOriginal(t *testing.T) {
	_, res := compiledResult(t)
	if err := cascades.Validate(res.Plan, 0); err != nil {
		t.Fatalf("fresh plan invalid: %v", err)
	}
	orig := res.Plan.String()
	for i := 0; i < 20; i++ {
		bad := faults.CorruptPlan(res.Plan, xrand.New(uint64(i)).Derive("corrupt-test"))
		if err := cascades.Validate(bad, 0); err == nil {
			t.Fatalf("corruption %d produced a plan that still validates", i)
		}
	}
	if res.Plan.String() != orig {
		t.Fatal("CorruptPlan mutated the original plan")
	}
	if err := cascades.Validate(res.Plan, 0); err != nil {
		t.Fatalf("original no longer validates after corruptions: %v", err)
	}
}

func TestClonePhysPreservesSharing(t *testing.T) {
	shared := &plan.PhysNode{Op: plan.PhysExtract, Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 2}}
	root := &plan.PhysNode{Op: plan.PhysMultiImpl, Children: []*plan.PhysNode{shared, shared},
		Dist: plan.Distribution{Kind: plan.DistSingleton, DOP: 1}}
	cp := plan.ClonePhys(root)
	if cp == root || cp.Children[0] == shared {
		t.Fatal("clone aliases the original")
	}
	if cp.Children[0] != cp.Children[1] {
		t.Fatal("clone lost internal sharing")
	}
	cp.Children[0].Dist.DOP = 99
	if shared.Dist.DOP != 2 {
		t.Fatal("mutating the clone reached the original")
	}
}

// decideKind scans attempt tags until the injector takes the wanted decision
// at attempt 0, so tests can pin each fault path deterministically.
func decideKind(t *testing.T, in *faults.Injector, want faults.Kind) string {
	t.Helper()
	for i := 0; i < 5000; i++ {
		tag := fmt.Sprintf("probe%d", i)
		if in.Decide(faults.SiteCompile, tag, 0) == want {
			return tag
		}
	}
	t.Fatalf("no tag decides %v at attempt 0", want)
	return ""
}

func TestCompileAttemptFaultPaths(t *testing.T) {
	_, res := compiledResult(t)
	in := faults.NewInjector(faults.Plan{Seed: 8, Compile: faults.Probs{Fail: 0.2, Hang: 0.2, Corrupt: 0.2}})
	fresh := func() (*cascades.Result, error) {
		r := *res // shallow copy so injected corruption cannot leak across subtests
		return &r, nil
	}

	t.Run("fail", func(t *testing.T) {
		tag := decideKind(t, in, faults.KindFail)
		_, err := in.CompileAttempt(context.Background(), tag, 0, fresh)
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
	})
	t.Run("hang", func(t *testing.T) {
		tag := decideKind(t, in, faults.KindHang)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_, err := in.CompileAttempt(ctx, tag, 0, fresh)
		if !errors.Is(err, faults.ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		tag := decideKind(t, in, faults.KindCorrupt)
		_, err := in.CompileAttempt(context.Background(), tag, 0, fresh)
		if !errors.Is(err, faults.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt: validation must catch the corruption", err)
		}
	})
	t.Run("clean", func(t *testing.T) {
		tag := decideKind(t, in, faults.KindNone)
		got, err := in.CompileAttempt(context.Background(), tag, 0, fresh)
		if err != nil {
			t.Fatal(err)
		}
		if got.Plan != res.Plan {
			t.Fatal("clean attempt did not hand back the compiled plan")
		}
	})
	t.Run("compile-error-passthrough", func(t *testing.T) {
		tag := decideKind(t, in, faults.KindNone)
		genuine := errors.New("cascades: no plan")
		_, err := in.CompileAttempt(context.Background(), tag, 0, func() (*cascades.Result, error) {
			return nil, genuine
		})
		if !errors.Is(err, genuine) {
			t.Fatalf("err = %v, want the compiler's own error", err)
		}
	})
	t.Run("nil-injector", func(t *testing.T) {
		var off *faults.Injector
		got, err := off.CompileAttempt(context.Background(), "any", 0, fresh)
		if err != nil || got.Plan != res.Plan {
			t.Fatalf("nil injector altered the compile: (%v, %v)", got, err)
		}
	})
}
