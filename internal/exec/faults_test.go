package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"steerq/internal/faults"
)

func TestRunCtxWithoutInjectorMatchesRun(t *testing.T) {
	x := New(execCatalog(), 42)
	p := scanPlan(10)
	want := x.Run(p, 0, "job1")
	got, err := x.RunCtx(context.Background(), p, 0, "job1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RunCtx = %+v, Run = %+v", got, want)
	}
}

func TestRunCtxCleanRetryReproducesMetrics(t *testing.T) {
	// Noise derives from (seed, tag, day) — not the attempt — so a retried
	// execution of the same plan is bit-identical to the first attempt.
	x := New(execCatalog(), 42)
	x.Faults = faults.NewInjector(faults.Plan{Seed: 1}) // armed, zero rates
	p := scanPlan(10)
	m0, err0 := x.RunCtx(context.Background(), p, 0, "job1", 0)
	m3, err3 := x.RunCtx(context.Background(), p, 0, "job1", 3)
	if err0 != nil || err3 != nil {
		t.Fatal(err0, err3)
	}
	if m0 != m3 {
		t.Fatalf("attempt 0 and attempt 3 metrics differ: %+v vs %+v", m0, m3)
	}
}

// execTagDeciding scans tags until the injector takes the wanted decision at
// the exec site for attempt 0.
func execTagDeciding(t *testing.T, in *faults.Injector, want faults.Kind) string {
	t.Helper()
	for i := 0; i < 5000; i++ {
		tag := fmt.Sprintf("probe%d", i)
		if in.Decide(faults.SiteExec, tag, 0) == want {
			return tag
		}
	}
	t.Fatalf("no tag decides %v", want)
	return ""
}

func TestRunCtxInjectedFail(t *testing.T) {
	x := New(execCatalog(), 42)
	x.Faults = faults.NewInjector(faults.Plan{Seed: 2, Exec: faults.Probs{Fail: 0.3}})
	tag := execTagDeciding(t, x.Faults, faults.KindFail)
	m, err := x.RunCtx(context.Background(), scanPlan(10), 0, tag, 0)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if m != (Metrics{}) {
		t.Fatalf("failed execution returned metrics %+v", m)
	}
}

func TestRunCtxInjectedHangHitsDeadline(t *testing.T) {
	x := New(execCatalog(), 42)
	x.Faults = faults.NewInjector(faults.Plan{Seed: 2, Exec: faults.Probs{Hang: 0.3}})
	tag := execTagDeciding(t, x.Faults, faults.KindHang)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := x.RunCtx(ctx, scanPlan(10), 0, tag, 0)
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("hang returned before the deadline")
	}
}

func TestRunCtxSpentContextIsTimeout(t *testing.T) {
	x := New(execCatalog(), 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := x.RunCtx(ctx, scanPlan(10), 0, "job1", 0)
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout for a spent context", err)
	}
}
