package exec

import (
	"fmt"
	"io"
	"strings"

	"steerq/internal/cost"
	"steerq/internal/plan"
	"steerq/internal/xrand"
)

// NodeReport compares one operator's planned and actual behaviour.
type NodeReport struct {
	Op       plan.PhysOp
	Detail   string // table / exchange kind / processor
	DOP      int
	EstRows  float64
	TrueRows float64
	// MisestimateX is TrueRows/EstRows (>1 = underestimate).
	MisestimateX float64
	// Usage is the node's true resource usage including noise.
	Usage cost.OpUsage
}

// Report is a per-operator breakdown of one execution — the debugging surface
// an engineer reaches for when a steered plan surprises: where the optimizer
// mis-estimated, and where the time actually went.
type Report struct {
	Metrics Metrics
	Nodes   []NodeReport // pre-order, shared operators once
}

// Explain executes the plan like Run and additionally returns the
// per-operator breakdown. Deterministic in the same inputs as Run.
func (x *Executor) Explain(p *plan.PhysNode, day int, tag string) Report {
	oracle := cost.NewTrue(x.Cat, day)
	props := make(map[*plan.PhysNode]cost.Props)
	x.trueProps(p, oracle, props)
	noise := newNoise(x.Seed, tag, day)
	scratch := xrand.New(0)

	var rep Report
	seen := make(map[*plan.PhysNode]bool)
	var rec func(n *plan.PhysNode)
	rec = func(n *plan.PhysNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		u := x.nodeUsage(n, props, noise, scratch, day)
		nr := NodeReport{
			Op:       n.Op,
			Detail:   nodeDetail(n),
			DOP:      maxIntE(n.Dist.DOP, 1),
			EstRows:  n.EstRows,
			TrueRows: props[n].Rows,
			Usage:    u,
		}
		if nr.EstRows > 0 {
			nr.MisestimateX = nr.TrueRows / nr.EstRows
		}
		rep.Nodes = append(rep.Nodes, nr)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p)
	rep.Metrics = x.Run(p, day, tag)
	return rep
}

func nodeDetail(n *plan.PhysNode) string {
	switch n.Op {
	case plan.PhysExtract, plan.PhysRangeScan:
		return n.Table
	case plan.PhysExchange:
		return n.Exchange.String()
	case plan.PhysProcessImpl, plan.PhysReduceImpl:
		return n.Processor
	case plan.PhysOutputImpl:
		return n.OutputPath
	default:
		return ""
	}
}

// Render prints the report as an aligned table, worst mis-estimates flagged.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "runtime %.1fs cpu %.1fs io %.1fs vertices %d\n",
		r.Metrics.RuntimeSec, r.Metrics.CPUSec, r.Metrics.IOTimeSec, r.Metrics.Vertices)
	fmt.Fprintf(w, "%-16s %-24s %4s %12s %12s %8s %10s\n",
		"operator", "detail", "dop", "est rows", "true rows", "mis-x", "latency")
	for _, n := range r.Nodes {
		flag := ""
		if n.MisestimateX > 4 || (n.MisestimateX > 0 && n.MisestimateX < 0.25) {
			flag = " <!>"
		}
		detail := n.Detail
		if len(detail) > 24 {
			detail = "..." + detail[len(detail)-21:]
		}
		fmt.Fprintf(w, "%-16s %-24s %4d %12.0f %12.0f %8.2f %9.1fs%s\n",
			n.Op, detail, n.DOP, n.EstRows, n.TrueRows, n.MisestimateX, n.Usage.LatencySeconds, flag)
	}
}

// String renders the report to a string.
func (r Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}
