// Package exec simulates distributed execution of physical plans on a
// SCOPE-like cluster: stage-structured execution at the plan's chosen degrees
// of parallelism, with runtimes derived from *true* statistics
// (cost.ModeTrue) rather than the estimates the optimizer planned with.
//
// The simulator reproduces the error classes the paper attributes runtime
// wins and regressions to:
//
//   - cardinality gaps (correlations, skew, daily input drift, opaque UDOs)
//     make truly-expensive operators cheap on paper and vice versa;
//   - partition skew penalizes shuffles on hot keys, invisible to the
//     estimator;
//   - degrees of parallelism chosen from estimated sizes misfit the real
//     data;
//   - per-vertex scheduling overhead penalizes plans with many tiny
//     partitions (e.g. deep virtual-dataset unions).
//
// Executions are noisy but deterministic in (seed, job tag, plan, day), so
// A/B comparisons (internal/abtest) are reproducible while still showing the
// runtime variance the paper reports for short jobs (§3.1.1).
package exec

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"

	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/plan"
	"steerq/internal/xrand"
)

// Metrics are the outcome of one job execution, matching §3.1.2: runtime
// (wall clock), total CPU time across vertices, and total I/O time.
type Metrics struct {
	RuntimeSec float64
	CPUSec     float64
	IOTimeSec  float64
	IOBytes    float64
	// Vertices approximates the number of containers the job occupied.
	Vertices int
	// VertexSeconds is total container occupancy (sum over operators of
	// latency x parallelism) — the resource-consumption measure behind the
	// paper's "10%% of jobs consume 90%% of the containers".
	VertexSeconds float64
}

// Executor runs physical plans against the simulated cluster.
type Executor struct {
	Cat    *catalog.Catalog
	Coster *cost.Coster

	// Tokens is the container budget per job. The A/B infrastructure pins
	// it (50 in the paper's experiments, §3.1.3). Stages wider than the
	// token budget execute in waves.
	Tokens int

	// Seed roots the deterministic noise streams.
	Seed uint64

	// BaseSigma is the per-stage log-normal noise; short stages get extra
	// variance (short jobs vary ~10%, §3.1.1). Zero means the default.
	BaseSigma float64

	// HotSpotProb is the chance a stage lands on a hot node and slows
	// down. Zero means the default.
	HotSpotProb float64

	// CheckPlans runs cascades.Validate on every plan before executing it
	// and fails loudly on a violation. New enables it when the
	// STEERQ_CHECK_PLANS environment variable is non-empty; harnesses may
	// also set it directly.
	CheckPlans bool

	// Faults, when non-nil, injects deterministic execution faults into
	// RunCtx (Run itself stays fault-free: it models the cluster, not its
	// failure modes). Shared with the compile-side injector so one seed
	// governs the whole pipeline.
	Faults *faults.Injector

	// Pre-resolved instruments (see SetObs); nil-safe no-ops until wired.
	runtimeHist *obs.Histogram
	execFail    *obs.Counter
	execHang    *obs.Counter
}

// execRuntimeBounds bucket simulated runtimes in seconds, log-spaced over
// the range the workload generators produce (sub-second scans up to the
// paper's one-hour long-job ceiling).
var execRuntimeBounds = []float64{1, 10, 60, 300, 900, 1800, 3600, 7200}

// SetObs wires execution metrics into reg: a runtime histogram observed by
// every Run, and injected-fault counters for RunCtx. Instruments are
// resolved once here so the execution path pays atomic adds only. Call it
// before the executor is shared across goroutines.
func (x *Executor) SetObs(reg *obs.Registry) {
	x.runtimeHist = reg.Histogram("steerq_exec_runtime_seconds", execRuntimeBounds)
	x.execFail = reg.Counter("steerq_exec_faults_total", "kind", "fail")
	x.execHang = reg.Counter("steerq_exec_faults_total", "kind", "hang")
}

// New returns an executor with default rates for the given catalog.
func New(cat *catalog.Catalog, seed uint64) *Executor {
	return &Executor{
		Cat:         cat,
		Coster:      cost.NewCoster(),
		Tokens:      50,
		Seed:        seed,
		BaseSigma:   0.05,
		HotSpotProb: 0.02,
		CheckPlans:  os.Getenv("STEERQ_CHECK_PLANS") != "",
	}
}

// Run executes the plan for the given day. tag distinguishes executions of
// the same plan (job instance ID, attempt number): different tags see
// different noise, identical tags reproduce identical metrics.
func (x *Executor) Run(p *plan.PhysNode, day int, tag string) Metrics {
	if x.CheckPlans {
		if err := cascades.Validate(p, 0); err != nil {
			// Executing a structurally broken plan would produce garbage
			// metrics silently; when checking is on, stop the experiment.
			// steerq:allow-panic
			panic(fmt.Sprintf("exec: STEERQ_CHECK_PLANS: job %q day %d: %v", tag, day, err))
		}
	}
	oracle := cost.NewTrue(x.Cat, day)
	props := make(map[*plan.PhysNode]cost.Props)
	x.trueProps(p, oracle, props)

	noise := newNoise(x.Seed, tag, day)
	// scratch is re-seeded per node inside nodeUsage instead of deriving a
	// fresh ~5KB generator state per node; it is confined to this Run call,
	// so the shared Executor stays safe for concurrent use.
	scratch := xrand.New(0)

	var m Metrics
	longest := make(map[*plan.PhysNode]float64)
	var walk func(n *plan.PhysNode) float64
	seen := make(map[*plan.PhysNode]bool)
	var rec func(n *plan.PhysNode)
	// First pass: accumulate totals (each node once).
	rec = func(n *plan.PhysNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			rec(c)
		}
		u := x.nodeUsage(n, props, noise, scratch, day)
		m.CPUSec += u.CPUSeconds
		m.IOBytes += u.IOBytes
		dop := n.Dist.DOP
		if dop < 1 {
			dop = 1
		}
		m.VertexSeconds += u.LatencySeconds * float64(dop)
		if isStageHead(n.Op) {
			m.Vertices += n.Dist.DOP
		}
	}
	rec(p)
	m.IOTimeSec = m.IOBytes / x.Coster.BytesPerIOSecond

	// Second pass: critical path of per-node latencies (parallel branches
	// overlap; operators along a path serialize at stage boundaries).
	walk = func(n *plan.PhysNode) float64 {
		if v, ok := longest[n]; ok {
			return v
		}
		var childMax float64
		for _, c := range n.Children {
			if v := walk(c); v > childMax {
				childMax = v
			}
		}
		u := x.nodeUsage(n, props, noise, scratch, day)
		v := childMax + u.LatencySeconds
		longest[n] = v
		return v
	}
	m.RuntimeSec = walk(p)
	x.runtimeHist.Observe(m.RuntimeSec)
	return m
}

// RunCtx is Run behind the fault-injection and timeout layer: the injector
// (if any) may fail the attempt outright or hang it until ctx's deadline,
// and a context that is already done surfaces as a timeout instead of an
// execution. A clean attempt returns exactly Run's metrics — noise derives
// from (seed, tag, day), never from the attempt number, so a retried
// execution of the same plan reproduces the same metrics bit-for-bit.
func (x *Executor) RunCtx(ctx context.Context, p *plan.PhysNode, day int, tag string, attempt int) (Metrics, error) {
	switch x.Faults.Decide(faults.SiteExec, tag, attempt) {
	case faults.KindFail:
		x.execFail.Inc()
		return Metrics{}, faults.Injectedf(faults.SiteExec, tag, attempt)
	case faults.KindHang, faults.KindCorrupt:
		// Executions have no result to corrupt; a corrupt draw (site probs
		// normally keep it at zero) degrades to a hang.
		x.execHang.Inc()
		return Metrics{}, faults.Hang(ctx, faults.SiteExec, tag, attempt)
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, fmt.Errorf("%w: exec %s attempt %d: %v", faults.ErrTimeout, tag, attempt, err)
	}
	return x.Run(p, day, tag), nil
}

// newNoise builds the deterministic noise stream of one execution.
func newNoise(seed uint64, tag string, day int) *xrand.Source {
	return xrand.New(seed).Derive("exec", tag, fmt.Sprint(day))
}

func isStageHead(op plan.PhysOp) bool {
	switch op {
	case plan.PhysExchange, plan.PhysExtract, plan.PhysRangeScan:
		return true
	default:
		return false
	}
}

// nodeUsage costs one node with true statistics, the plan's DOP, skew
// penalties and execution noise. Deterministic per (executor seed, tag, day,
// node identity) — it derives noise from the node's position-independent
// content, so it is called twice per Run with identical results.
func (x *Executor) nodeUsage(n *plan.PhysNode, props map[*plan.PhysNode]cost.Props, noise, scratch *xrand.Source, day int) cost.OpUsage {
	p := props[n]
	var inRows, inBytes float64
	for _, c := range n.Children {
		cp := props[c]
		inRows += cp.Rows
		inBytes += cp.Rows * cp.RowBytes
	}
	if n.Op == plan.PhysExtract || n.Op == plan.PhysRangeScan {
		// Scans read the whole (true) stream.
		if st := x.Cat.Stream(n.Table); st != nil {
			inRows = st.TrueRows(day)
			inBytes = inRows * st.BytesPerRow
		}
	}
	dop := n.Dist.DOP
	if dop < 1 {
		dop = 1
	}
	params := cost.OpCostParams{
		Op:       n.Op,
		Exchange: n.Exchange,
		InRows:   inRows,
		InBytes:  inBytes,
		OutRows:  p.Rows,
		OutBytes: p.Rows * p.RowBytes,
		DOP:      dop,
		TopN:     n.TopN,
		Branches: len(n.Children),
	}
	if n.Processor != "" {
		params.UDO = x.Cat.UDO(n.Processor)
	}
	if len(n.Children) == 2 {
		switch n.Op {
		case plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin:
			b := x.buildSide(n, props)
			params.BuildRows = props[n.Children[b]].Rows
			params.ProbeRows = props[n.Children[1-b]].Rows
		default:
			// Binary but not a join: no build/probe split to cost.
		}
	}
	u := x.Coster.Cost(params)

	// Wave execution past the token budget: a 200-wide stage on 50 tokens
	// needs four waves.
	if x.Tokens > 0 && dop > x.Tokens {
		waves := math.Ceil(float64(dop) / float64(x.Tokens))
		u.LatencySeconds *= waves
	}

	// Partition skew: shuffles and hash-partitioned consumers on a hot key
	// concentrate work on one vertex.
	if f := x.skewFactor(n); f > 1 {
		u.LatencySeconds *= f
	}

	// Execution noise, deterministic per node content. Re-seeding the
	// per-Run scratch stream draws exactly like a freshly derived one.
	r := scratch
	noise.ReseedDerived(r, "node", nodeTag(n))
	sigma := x.BaseSigma + 0.25/math.Sqrt(1+u.LatencySeconds)
	mult := r.LogNormal(0, sigma)
	if r.Bool(x.HotSpotProb) {
		mult *= r.Uniform(1.3, 2.5)
	}
	u.LatencySeconds *= mult
	u.CPUSeconds *= mult
	return u
}

// buildSide locates the smaller true side for PhysHashJoin (which builds on
// whichever side the optimizer *estimated* smaller — re-derive from the
// plan's estimates, not the truth, since the executor must honor the plan).
func (x *Executor) buildSide(n *plan.PhysNode, props map[*plan.PhysNode]cost.Props) int {
	if n.Op == plan.PhysHashJoinAlt || n.Op == plan.PhysLoopJoin {
		return 1 // always builds the (broadcast) right side
	}
	// HashJoin / MergeJoin: the plan committed to the side with the
	// smaller estimate.
	if n.Children[0].EstRows < n.Children[1].EstRows {
		return 0
	}
	return 1
}

// skewFactor penalizes hash partitioning on skewed keys: the hottest
// partition carries a disproportionate share.
func (x *Executor) skewFactor(n *plan.PhysNode) float64 {
	if n.Op != plan.PhysExchange || n.Exchange != plan.ExchangeShuffle {
		return 1
	}
	if n.Dist.Kind != plan.DistHash || n.Dist.DOP <= 1 {
		return 1
	}
	worst := 1.0
	for _, c := range n.Schema {
		id := c.ID
		for _, k := range n.Dist.Keys {
			if k != id {
				continue
			}
			st, col := x.lookupColumn(c)
			if st == nil || col == nil || col.Skew <= 0 {
				continue
			}
			f := catalog.SkewFanout(col.TrueDistinct, col.Skew)
			// The hottest key's share bounded by one partition's capacity.
			pen := 1 + minf(f-1, float64(n.Dist.DOP)-1)*0.25
			if pen > worst {
				worst = pen
			}
		}
	}
	return worst
}

func (x *Executor) lookupColumn(c plan.Column) (*catalog.Stream, *catalog.Column) {
	i := strings.LastIndexByte(c.Source, '.')
	if i < 0 {
		return nil, nil
	}
	st := x.Cat.Stream(c.Source[:i])
	if st == nil {
		return nil, nil
	}
	return st, st.Column(c.Source[i+1:])
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// nodeTag builds a stable content tag for noise derivation.
func nodeTag(n *plan.PhysNode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|%s|%d|%d", n.Op, n.Table, n.Processor, n.Dist.DOP, len(n.Children))
	if n.Pred != nil {
		b.WriteString(n.Pred.String())
	}
	for _, c := range n.Schema {
		fmt.Fprintf(&b, ",%d", c.ID)
	}
	return b.String()
}

// trueProps derives ground-truth statistics for every node of the physical
// DAG.
func (x *Executor) trueProps(n *plan.PhysNode, oracle *cost.Estimator, memo map[*plan.PhysNode]cost.Props) cost.Props {
	if p, ok := memo[n]; ok {
		return p
	}
	childProps := make([]cost.Props, len(n.Children))
	childSchemas := make([][]plan.Column, len(n.Children))
	for i, c := range n.Children {
		childProps[i] = x.trueProps(c, oracle, memo)
		childSchemas[i] = c.Schema
	}
	var p cost.Props
	switch n.Op {
	case plan.PhysExtract, plan.PhysRangeScan:
		p = oracle.Scan(n.Table, n.Schema, n.Pred)
	case plan.PhysFilter:
		p = oracle.Filter(childProps[0], n.Pred)
	case plan.PhysCompute:
		p = oracle.Project(childProps[0], n.Projs)
	case plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin:
		p = oracle.Join(childProps[0], childProps[1], n.Pred)
	case plan.PhysHashAgg, plan.PhysStreamAgg, plan.PhysFinalHashAgg:
		p = oracle.GroupBy(childProps[0], n.GroupKeys, n.Aggs)
	case plan.PhysPartialHashAgg:
		full := oracle.GroupBy(childProps[0], n.GroupKeys, n.Aggs)
		p = full
		dop := float64(n.Dist.DOP)
		if dop < 1 {
			dop = 1
		}
		p.Rows = math.Min(childProps[0].Rows, full.Rows*dop)
	case plan.PhysUnionMerge, plan.PhysVirtualDataset:
		p = oracle.UnionAll(childProps, childSchemas, n.Schema)
	case plan.PhysProcessImpl:
		p = oracle.Process(childProps[0], n.Processor)
	case plan.PhysReduceImpl:
		p = oracle.Reduce(childProps[0], n.ReduceKeys, n.Processor)
	case plan.PhysLocalTop:
		// Value copy shares the child's NDV map copy-on-write; only Rows
		// changes below (see the cost.Props contract).
		p = childProps[0]
		dop := float64(n.Dist.DOP)
		if dop < 1 {
			dop = 1
		}
		p.Rows = math.Min(childProps[0].Rows, float64(n.TopN)*dop)
	case plan.PhysGlobalTop:
		p = oracle.Top(childProps[0], n.TopN)
	case plan.PhysSort, plan.PhysExchange, plan.PhysOutputImpl:
		p = childProps[0]
	case plan.PhysMultiImpl:
		p = cost.Props{NDV: map[plan.ColumnID]float64{}}
		for _, cp := range childProps {
			p.Rows += cp.Rows
			if cp.RowBytes > p.RowBytes {
				p.RowBytes = cp.RowBytes
			}
		}
	default:
		p = cost.Props{Rows: 1, RowBytes: 8, NDV: map[plan.ColumnID]float64{}}
	}
	memo[n] = p
	return p
}
