package exec

import (
	"strings"
	"testing"

	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/plan"
)

func execCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "s",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 1000, TrueDistinct: 1000, Min: 0, Max: 1000, Skew: 1.3},
			{Name: "v", Distinct: 100, TrueDistinct: 100, Min: 0, Max: 100},
		},
		BaseRows: 1e7, BytesPerRow: 50, DailySigma: 0.2, GrowthPerDay: 1.01,
	})
	cat.AddUDO(&catalog.UDO{Name: "u", EstFactor: 1, TrueFactor: 2, CPUPerRow: 4})
	return cat
}

// scanPlan builds Extract -> Filter -> Output with the given DOPs.
func scanPlan(dop int) *plan.PhysNode {
	k := plan.Column{ID: 1, Name: "k", Source: "s.k"}
	v := plan.Column{ID: 2, Name: "v", Source: "s.v"}
	schema := []plan.Column{k, v}
	scan := &plan.PhysNode{
		Op: plan.PhysExtract, Table: "s", Schema: schema,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: dop}, EstRows: 1e7, RuleID: 3,
	}
	filter := &plan.PhysNode{
		Op: plan.PhysFilter, Schema: schema,
		Pred:     plan.Cmp(plan.OpGT, plan.ColExpr(v), plan.NumExpr(50)),
		Children: []*plan.PhysNode{scan},
		Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: dop}, EstRows: 5e6, RuleID: 4,
	}
	out := &plan.PhysNode{
		Op: plan.PhysOutputImpl, OutputPath: "o", Schema: schema,
		Children: []*plan.PhysNode{filter},
		Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: dop}, EstRows: 5e6, RuleID: 2,
	}
	return out
}

func TestRunDeterministic(t *testing.T) {
	x := New(execCatalog(), 42)
	p := scanPlan(10)
	m1 := x.Run(p, 0, "job1")
	m2 := x.Run(p, 0, "job1")
	if m1 != m2 {
		t.Fatalf("identical runs differ: %+v vs %+v", m1, m2)
	}
}

func TestRunNoiseVariesByTag(t *testing.T) {
	x := New(execCatalog(), 42)
	p := scanPlan(10)
	m1 := x.Run(p, 0, "job1")
	m2 := x.Run(p, 0, "job2")
	if m1.RuntimeSec == m2.RuntimeSec {
		t.Fatal("different job tags produced identical runtimes")
	}
	// Noise is bounded: the two runs are the same plan on the same data.
	ratio := m1.RuntimeSec / m2.RuntimeSec
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("noise unreasonably large: ratio %v", ratio)
	}
}

func TestRunVariesByDay(t *testing.T) {
	x := New(execCatalog(), 42)
	p := scanPlan(10)
	m0 := x.Run(p, 0, "job")
	m5 := x.Run(p, 5, "job")
	if m0.RuntimeSec == m5.RuntimeSec {
		t.Fatal("daily input drift not reflected in runtimes")
	}
}

func TestMetricsPositive(t *testing.T) {
	x := New(execCatalog(), 42)
	m := x.Run(scanPlan(10), 0, "job")
	if m.RuntimeSec <= 0 || m.CPUSec <= 0 || m.IOBytes <= 0 || m.Vertices <= 0 || m.VertexSeconds <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
}

func TestParallelismReducesRuntime(t *testing.T) {
	x := New(execCatalog(), 42)
	x.BaseSigma = 0
	x.HotSpotProb = 0
	serial := x.Run(scanPlan(1), 0, "job")
	parallel := x.Run(scanPlan(40), 0, "job")
	if parallel.RuntimeSec >= serial.RuntimeSec {
		t.Fatalf("DOP 40 (%vs) not faster than DOP 1 (%vs)", parallel.RuntimeSec, serial.RuntimeSec)
	}
	// Total CPU is roughly parallelism-independent.
	ratio := parallel.CPUSec / serial.CPUSec
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("CPU total changed with parallelism: ratio %v", ratio)
	}
}

func TestWavePenaltyPastTokens(t *testing.T) {
	x := New(execCatalog(), 42)
	x.BaseSigma = 0
	x.HotSpotProb = 0
	x.Tokens = 10
	within := x.Run(scanPlan(10), 0, "job")
	x2 := New(execCatalog(), 42)
	x2.BaseSigma = 0
	x2.HotSpotProb = 0
	x2.Tokens = 10
	beyond := x2.Run(scanPlan(40), 0, "job")
	// 40-wide stages on 10 tokens run in 4 waves: no faster than 10-wide.
	if beyond.RuntimeSec < within.RuntimeSec*0.9 {
		t.Fatalf("token budget not enforced: 40-wide %vs vs 10-wide %vs", beyond.RuntimeSec, within.RuntimeSec)
	}
}

func TestSkewPenaltyOnHotKeyShuffle(t *testing.T) {
	x := New(execCatalog(), 42)
	x.BaseSigma = 0
	x.HotSpotProb = 0
	k := plan.Column{ID: 1, Name: "k", Source: "s.k"}
	schema := []plan.Column{k}
	scan := &plan.PhysNode{
		Op: plan.PhysExtract, Table: "s", Schema: schema,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 20}, RuleID: 3,
	}
	mk := func(keys []plan.ColumnID) *plan.PhysNode {
		// A keyless shuffle is a random repartition; only the hash variant
		// carries keys (and only it can hit skew).
		dist := plan.Distribution{Kind: plan.DistRandom, DOP: 20}
		if len(keys) > 0 {
			dist = plan.Distribution{Kind: plan.DistHash, Keys: keys, DOP: 20}
		}
		ex := &plan.PhysNode{
			Op: plan.PhysExchange, Exchange: plan.ExchangeShuffle, Schema: schema,
			Children: []*plan.PhysNode{scan},
			Dist:     dist,
			RuleID:   0,
		}
		return &plan.PhysNode{
			Op: plan.PhysOutputImpl, Schema: schema, OutputPath: "o",
			Children: []*plan.PhysNode{ex},
			Dist:     dist,
			RuleID:   2,
		}
	}
	onHotKey := x.Run(mk([]plan.ColumnID{1}), 0, "hot")
	onNoKey := x.Run(mk(nil), 0, "hot")
	if onHotKey.RuntimeSec <= onNoKey.RuntimeSec {
		t.Fatalf("hot-key shuffle (%vs) not slower than keyless (%vs)", onHotKey.RuntimeSec, onNoKey.RuntimeSec)
	}
}

func TestTruePropsUDOExpansion(t *testing.T) {
	x := New(execCatalog(), 42)
	k := plan.Column{ID: 1, Name: "k", Source: "s.k"}
	schema := []plan.Column{k}
	scan := &plan.PhysNode{
		Op: plan.PhysExtract, Table: "s", Schema: schema,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 10}, RuleID: 3,
	}
	proc := &plan.PhysNode{
		Op: plan.PhysProcessImpl, Processor: "u", Schema: schema,
		Children: []*plan.PhysNode{scan},
		Dist:     plan.Distribution{Kind: plan.DistRandom, DOP: 10}, RuleID: 233,
	}
	oracle := cost.NewTrue(x.Cat, 0)
	memo := make(map[*plan.PhysNode]cost.Props)
	x.trueProps(proc, oracle, memo)
	if memo[proc].Rows != 2*memo[scan].Rows {
		t.Fatalf("true UDO factor lost: in=%v out=%v", memo[scan].Rows, memo[proc].Rows)
	}
}

func TestSharedNodeCountedOnce(t *testing.T) {
	x := New(execCatalog(), 42)
	x.BaseSigma = 0
	x.HotSpotProb = 0
	k := plan.Column{ID: 1, Name: "k", Source: "s.k"}
	schema := []plan.Column{k}
	scan := &plan.PhysNode{
		Op: plan.PhysExtract, Table: "s", Schema: schema,
		Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 10}, RuleID: 3,
	}
	out1 := &plan.PhysNode{Op: plan.PhysOutputImpl, Schema: schema, OutputPath: "a", Children: []*plan.PhysNode{scan}, Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 10}, RuleID: 2}
	out2 := &plan.PhysNode{Op: plan.PhysOutputImpl, Schema: schema, OutputPath: "b", Children: []*plan.PhysNode{scan}, Dist: plan.Distribution{Kind: plan.DistRandom, DOP: 10}, RuleID: 2}
	multi := &plan.PhysNode{Op: plan.PhysMultiImpl, Schema: nil, Children: []*plan.PhysNode{out1, out2}, Dist: plan.Distribution{Kind: plan.DistSingleton, DOP: 1}, RuleID: 6}

	shared := x.Run(multi, 0, "dag")
	single := x.Run(out1, 0, "dag")
	// The shared scan is paid once: the two-output job costs less CPU than
	// twice the single-output job.
	if shared.CPUSec >= 1.9*single.CPUSec {
		t.Fatalf("shared scan double-counted: %v vs 2x %v", shared.CPUSec, single.CPUSec)
	}
}

func TestExplainMatchesRun(t *testing.T) {
	x := New(execCatalog(), 42)
	p := scanPlan(10)
	rep := x.Explain(p, 0, "job")
	m := x.Run(p, 0, "job")
	if rep.Metrics != m {
		t.Fatalf("Explain metrics %+v differ from Run %+v", rep.Metrics, m)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("report has %d nodes, want 3", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if n.TrueRows <= 0 || n.DOP < 1 {
			t.Fatalf("bad node report: %+v", n)
		}
	}
	// The scan's mis-estimate reflects the day's drift from the stale
	// BaseRows statistic.
	scan := rep.Nodes[len(rep.Nodes)-1]
	if scan.Op != plan.PhysExtract {
		t.Fatalf("last pre-order node is %v", scan.Op)
	}
	if scan.MisestimateX == 1 {
		t.Fatal("scan mis-estimate exactly 1; daily drift missing")
	}
	s := rep.String()
	if !strings.Contains(s, "Extract") || !strings.Contains(s, "runtime") {
		t.Fatalf("report rendering incomplete:\n%s", s)
	}
}

func TestCheckPlansEnvToggle(t *testing.T) {
	t.Setenv("STEERQ_CHECK_PLANS", "1")
	x := New(execCatalog(), 42)
	if !x.CheckPlans {
		t.Fatal("STEERQ_CHECK_PLANS=1 did not enable plan checking")
	}
	// A valid plan runs normally under checking.
	if m := x.Run(scanPlan(10), 0, "job"); m.RuntimeSec <= 0 {
		t.Fatalf("checked run produced bad metrics: %+v", m)
	}
	// A broken plan stops the run.
	broken := scanPlan(10)
	broken.RuleID = -1
	defer func() {
		if recover() == nil {
			t.Fatal("broken plan executed despite STEERQ_CHECK_PLANS")
		}
	}()
	x.Run(broken, 0, "job")
}

func TestCheckPlansOffByDefault(t *testing.T) {
	t.Setenv("STEERQ_CHECK_PLANS", "")
	x := New(execCatalog(), 42)
	if x.CheckPlans {
		t.Fatal("plan checking on without STEERQ_CHECK_PLANS")
	}
	// Without the toggle, even a defective plan executes (the simulator is
	// lenient by default; validation is an opt-in assertion).
	broken := scanPlan(10)
	broken.RuleID = -1
	if m := x.Run(broken, 0, "job"); m.RuntimeSec <= 0 {
		t.Fatalf("unchecked run produced bad metrics: %+v", m)
	}
}
