package abtest_test

import (
	"testing"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
)

func harness(t *testing.T) (*abtest.Harness, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "s",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 100, TrueDistinct: 100, Min: 0, Max: 100},
			{Name: "v", Distinct: 50, TrueDistinct: 50, Min: 0, Max: 50},
		},
		BaseRows: 1e6, BytesPerRow: 40, DailySigma: 0.1, GrowthPerDay: 1,
	})
	opt := rules.NewOptimizer(cost.NewEstimated(cat))
	return abtest.New(cat, opt, 3), cat
}

const script = `x = SELECT k, v FROM "s" WHERE v > 10; OUTPUT x TO "o";`

func TestRunConfigSuccess(t *testing.T) {
	h, cat := harness(t)
	root, err := scopeql.Compile(script, cat)
	if err != nil {
		t.Fatal(err)
	}
	tr := h.RunConfig(root, h.Opt.Rules.DefaultConfig(), 0, "j1")
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if tr.Metrics.RuntimeSec <= 0 || tr.EstCost <= 0 || tr.Signature.IsEmpty() {
		t.Fatalf("trial incomplete: %+v", tr)
	}
}

func TestRunConfigCompileFailure(t *testing.T) {
	h, cat := harness(t)
	root, err := scopeql.Compile(script, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Disabling every scan-adjacent filter implementation is impossible
	// (they're required); instead disable everything non-required — the
	// filter rewrite paths survive via required rules, so to force failure
	// we disable the whole configuration including implementation rules
	// for Get... Required rules ignore bits, so the job still compiles.
	// A guaranteed failure: empty config on a job with a Top (no top
	// implementation enabled).
	topRoot, err := scopeql.Compile(`x = SELECT TOP 5 k FROM "s" ORDER BY k; OUTPUT x TO "o";`, cat)
	if err != nil {
		t.Fatal(err)
	}
	var empty bitvec.Vector
	tr := h.RunConfig(topRoot, empty, 0, "j2")
	if tr.Err == nil {
		t.Fatal("expected compile failure with all top implementations disabled")
	}
	_ = root
}

func TestRunConfigsOrderAndIsolation(t *testing.T) {
	h, cat := harness(t)
	root, err := scopeql.Compile(script, cat)
	if err != nil {
		t.Fatal(err)
	}
	def := h.Opt.Rules.DefaultConfig()
	trials := h.RunConfigs(root, []bitvec.Vector{def, def, def}, 0, "j3")
	if len(trials) != 3 {
		t.Fatalf("got %d trials", len(trials))
	}
	// Same plan under different execution slots: runtimes vary (cluster
	// noise) but signatures agree.
	if !trials[0].Signature.Equal(trials[1].Signature) {
		t.Fatal("same config produced different signatures")
	}
	if trials[0].Metrics.RuntimeSec == trials[1].Metrics.RuntimeSec {
		t.Fatal("independent executions produced identical runtimes (no variance)")
	}
}

func TestTrialsDeterministicPerTag(t *testing.T) {
	h, cat := harness(t)
	root, err := scopeql.Compile(script, cat)
	if err != nil {
		t.Fatal(err)
	}
	def := h.Opt.Rules.DefaultConfig()
	t1 := h.RunConfig(root, def, 0, "same-tag")
	t2 := h.RunConfig(root, def, 0, "same-tag")
	if t1.Metrics != t2.Metrics {
		t.Fatal("identical tags produced different metrics")
	}
}
