package abtest_test

import (
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/scopeql"
)

// mapSteerer is a fake serving tier: a fixed signature -> config map.
type mapSteerer struct {
	decisions map[bitvec.Key]bitvec.Vector
}

func (m *mapSteerer) Decide(sig bitvec.Vector) (bitvec.Vector, bool) {
	cfg, ok := m.decisions[sig.Key()]
	return cfg, ok
}

func TestRunSteeredConsultsSteerer(t *testing.T) {
	h, cat := harness(t)
	root, err := scopeql.Compile(script, cat)
	if err != nil {
		t.Fatal(err)
	}
	def := h.Opt.Rules.DefaultConfig()
	res, err := h.Opt.OptimizeCost(root, def)
	if err != nil {
		t.Fatal(err)
	}
	sig := res.Signature

	// No steerer wired: plain default execution, not steered.
	tr, steered := h.RunSteered(root, 0, "s0")
	if steered || tr.Err != nil || !tr.Config.Equal(def) {
		t.Fatalf("unsteered run: steered=%v cfg=%s err=%v", steered, tr.Config.Hex(), tr.Err)
	}

	// A steerer that knows this signature redirects the compile. Flip one
	// non-required optional bit off so the config differs but still compiles.
	alt := def
	for _, id := range h.Opt.Rules.NonRequiredIDs() {
		if def.Get(id) {
			alt.Clear(id)
			break
		}
	}
	if alt.Equal(def) {
		t.Fatal("could not derive an alternative config")
	}
	h.Steer = &mapSteerer{decisions: map[bitvec.Key]bitvec.Vector{sig.Key(): alt}}
	tr, steered = h.RunSteered(root, 0, "s1")
	if !steered {
		t.Fatal("known signature not steered")
	}
	if !tr.Config.Equal(alt) {
		t.Fatalf("steered config %s, want %s", tr.Config.Hex(), alt.Hex())
	}

	// A steerer that misses the signature leaves the run unsteered.
	h.Steer = &mapSteerer{decisions: map[bitvec.Key]bitvec.Vector{}}
	tr, steered = h.RunSteered(root, 0, "s2")
	if steered || !tr.Config.Equal(def) {
		t.Fatalf("missed signature steered: %v %s", steered, tr.Config.Hex())
	}

	// A steerer that answers with the default is reported unsteered: the
	// executor must not claim a steering decision that changes nothing.
	h.Steer = &mapSteerer{decisions: map[bitvec.Key]bitvec.Vector{sig.Key(): def}}
	_, steered = h.RunSteered(root, 0, "s3")
	if steered {
		t.Fatal("default-config answer reported as steered")
	}
}
