// Package abtest models SCOPE's A/B testing infrastructure (§3.1.3): it
// re-executes recent production jobs — the original plan and alternative
// plans compiled under different rule configurations — on the pre-production
// cluster with outputs redirected and a pinned resource budget (50 tokens per
// job), so metric differences are attributable to the plans.
package abtest

import (
	"fmt"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/exec"
	"steerq/internal/par"
	"steerq/internal/plan"
)

// Trial is the outcome of executing one (job, configuration) pair.
type Trial struct {
	Config    bitvec.Vector
	Signature bitvec.Vector
	EstCost   float64
	Metrics   exec.Metrics
	// Err is non-nil when the job failed to compile under Config.
	Err error
}

// Harness re-executes plans with pinned resources. Its methods are safe for
// concurrent use: the optimizer and executor keep no cross-call state, and
// execution noise is derived from (seed, jobTag, day), not shared RNG state.
type Harness struct {
	Cat      *catalog.Catalog
	Opt      *cascades.Optimizer
	Executor *exec.Executor

	// Workers bounds the goroutines RunConfigs uses; zero resolves through
	// STEERQ_WORKERS and then GOMAXPROCS. Trials come back in input order
	// regardless.
	Workers int
}

// New builds a harness; the executor is configured with the standard
// 50-token budget.
func New(cat *catalog.Catalog, opt *cascades.Optimizer, seed uint64) *Harness {
	ex := exec.New(cat, seed)
	ex.Tokens = 50
	return &Harness{Cat: cat, Opt: opt, Executor: ex}
}

// RunConfig compiles the job's logical plan under cfg and executes it for the
// given day. jobTag must uniquely identify the job instance so repeated
// executions of one plan see consistent cluster noise while different jobs
// see independent noise.
func (h *Harness) RunConfig(root *plan.Node, cfg bitvec.Vector, day int, jobTag string) Trial {
	res, err := h.Opt.Optimize(root, cfg)
	if err != nil {
		return Trial{Config: cfg, Err: err}
	}
	m := h.Executor.Run(res.Plan, day, jobTag)
	return Trial{
		Config:    cfg,
		Signature: res.Signature,
		EstCost:   res.Cost,
		Metrics:   m,
	}
}

// RunConfigs executes the job under every configuration, returning trials in
// input order. Compile failures are recorded, not fatal: many candidate
// configurations legitimately do not compile (§4).
func (h *Harness) RunConfigs(root *plan.Node, cfgs []bitvec.Vector, day int, jobTag string) []Trial {
	out, _ := par.Map(h.Workers, cfgs, func(i int, cfg bitvec.Vector) (Trial, error) {
		return h.RunConfig(root, cfg, day, fmt.Sprintf("%s/cfg%d", jobTag, i)), nil
	})
	return out
}
