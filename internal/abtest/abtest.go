// Package abtest models SCOPE's A/B testing infrastructure (§3.1.3): it
// re-executes recent production jobs — the original plan and alternative
// plans compiled under different rule configurations — on the pre-production
// cluster with outputs redirected and a pinned resource budget (50 tokens per
// job), so metric differences are attributable to the plans.
package abtest

import (
	"context"
	"errors"
	"fmt"
	"time"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/exec"
	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/par"
	"steerq/internal/plan"
)

// Trial is the outcome of executing one (job, configuration) pair.
type Trial struct {
	Config    bitvec.Vector
	Signature bitvec.Vector
	// Footprint is the compile's decision footprint (see cascades.Result):
	// the rule IDs whose enabled-bit the search read. Configurations
	// agreeing on these bits produce this exact trial's plan.
	Footprint bitvec.Vector
	EstCost   float64
	Metrics   exec.Metrics
	// Err is non-nil when the job failed to compile under Config, or — with
	// fault injection active — when compile or execution exhausted its
	// retry budget.
	Err error
	// Attempts is the total number of compile plus execution attempts the
	// trial consumed (2 for a clean run, more under injected faults).
	Attempts int
	// FellBack marks a trial whose steered configuration failed
	// persistently and was replaced by the default configuration — the
	// deployment safety net. Set by the discovery pipeline, not here.
	FellBack bool
}

// Steerer is the in-process steering surface: given a job's default rule
// signature, it returns the rule configuration the serving tier recommends
// for that job group. serve.SDK implements it over the active bundle's
// decision table; this interface keeps abtest free of the serving
// dependency while letting the executor consult steering without HTTP —
// the embedded-SDK deployment shape from the paper's production successor.
type Steerer interface {
	Decide(sig bitvec.Vector) (cfg bitvec.Vector, ok bool)
}

// Harness re-executes plans with pinned resources. Its methods are safe for
// concurrent use: the optimizer and executor keep no cross-call state,
// execution noise is derived from (seed, jobTag, day), and fault decisions
// are derived from (fault seed, site, jobTag, attempt) — never from shared
// RNG state.
type Harness struct {
	Cat      *catalog.Catalog
	Opt      *cascades.Optimizer
	Executor *exec.Executor

	// Workers bounds the goroutines RunConfigs uses; zero resolves through
	// STEERQ_WORKERS and then GOMAXPROCS. Trials come back in input order
	// regardless.
	Workers int

	// Faults, when non-nil, injects deterministic compile and execution
	// faults. Assigning it also arms the executor (see SetFaults).
	Faults *faults.Injector

	// Retry bounds re-attempts of faulted compiles and executions. The
	// zero value resolves to faults.DefaultPolicy when Faults is set and
	// to a single attempt otherwise.
	Retry faults.Policy

	// CompileTimeout and ExecTimeout bound one attempt each; zero means no
	// deadline. An injected hang waits out the deadline and surfaces as
	// faults.ErrTimeout.
	CompileTimeout, ExecTimeout time.Duration

	// Obs, when non-nil, records an abtest.compile and abtest.exec span per
	// trial (tagged by jobTag — content, never schedule) plus per-site
	// attempt counters. Assign it together with Executor.SetObs (see
	// SetObs) so the whole trial reports into one registry.
	Obs *obs.Registry

	// Steer, when non-nil, is consulted by RunSteered with each job's
	// default rule signature; the trial then compiles under the returned
	// configuration instead of the default.
	Steer Steerer
}

// New builds a harness; the executor is configured with the standard
// 50-token budget.
func New(cat *catalog.Catalog, opt *cascades.Optimizer, seed uint64) *Harness {
	ex := exec.New(cat, seed)
	ex.Tokens = 50
	return &Harness{Cat: cat, Opt: opt, Executor: ex}
}

// SetFaults arms fault injection on the harness and its executor together,
// so compile-site and exec-site decisions share one seed.
func (h *Harness) SetFaults(in *faults.Injector) {
	h.Faults = in
	h.Executor.Faults = in
}

// SetObs wires observability on the harness and its executor together, so
// trial spans and execution histograms land in one registry.
func (h *Harness) SetObs(reg *obs.Registry) {
	h.Obs = reg
	h.Executor.SetObs(reg)
}

// compileOutcome classifies a trial's compile error for its span.
func compileOutcome(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, cascades.ErrNoPlan):
		return "noplan"
	default:
		return obs.OutcomeError
	}
}

// RunConfig compiles the job's logical plan under cfg and executes it for the
// given day. jobTag must uniquely identify the job instance so repeated
// executions of one plan see consistent cluster noise while different jobs
// see independent noise.
func (h *Harness) RunConfig(root *plan.Node, cfg bitvec.Vector, day int, jobTag string) Trial {
	return h.RunConfigCtx(context.Background(), root, cfg, day, jobTag, nil)
}

// RunConfigCtx is RunConfig with a context bounding the whole trial,
// per-attempt timeouts, fault injection and bounded retry. rec, when
// non-nil, observes retries and timeouts; pass one per pipeline unit and
// merge serially to keep reports deterministic at any worker count.
func (h *Harness) RunConfigCtx(ctx context.Context, root *plan.Node, cfg bitvec.Vector, day int, jobTag string, rec *faults.Record) Trial {
	pol := faults.PolicyOrDefault(h.Retry, h.Faults)

	var res *cascades.Result
	cctx, csp := h.Obs.StartSpan(ctx, "abtest.compile", jobTag)
	cAttempts, err := pol.Do(cctx, faults.SiteCompile, h.Faults.RetryRand(faults.SiteCompile, jobTag), rec,
		func(actx context.Context, attempt int) error {
			ictx, cancel := par.ItemContext(actx, h.CompileTimeout)
			defer cancel()
			r, cerr := h.Faults.CompileAttempt(ictx, jobTag, attempt, func() (*cascades.Result, error) {
				return h.Opt.Optimize(root, cfg)
			})
			if cerr != nil {
				return cerr
			}
			res = r
			return nil
		})
	csp.End(compileOutcome(err))
	h.Obs.Counter("steerq_abtest_attempts_total", "site", "compile").Add(uint64(cAttempts))
	if err != nil {
		return Trial{Config: cfg, Err: err, Attempts: cAttempts}
	}

	var m exec.Metrics
	ectx, esp := h.Obs.StartSpan(ctx, "abtest.exec", jobTag)
	eAttempts, err := pol.Do(ectx, faults.SiteExec, h.Faults.RetryRand(faults.SiteExec, jobTag), rec,
		func(actx context.Context, attempt int) error {
			ictx, cancel := par.ItemContext(actx, h.ExecTimeout)
			defer cancel()
			mm, xerr := h.Executor.RunCtx(ictx, res.Plan, day, jobTag, attempt)
			if xerr != nil {
				return xerr
			}
			m = mm
			return nil
		})
	esp.EndErr(err)
	h.Obs.Counter("steerq_abtest_attempts_total", "site", "exec").Add(uint64(eAttempts))
	t := Trial{
		Config:    cfg,
		Signature: res.Signature,
		Footprint: res.Footprint,
		EstCost:   res.Cost,
		Metrics:   m,
		Attempts:  cAttempts + eAttempts,
	}
	if err != nil {
		t.Err = err
		t.Metrics = exec.Metrics{}
	}
	return t
}

// RunSteered executes the job the way a steered cluster would: compile the
// default configuration far enough to learn the job's rule signature, ask
// the Steerer for that group's recommended configuration, and run the trial
// under it. The boolean reports whether the trial was actually steered away
// from the default; with no Steerer wired (or no bundle live) the job runs
// unsteered, exactly as before deployment.
func (h *Harness) RunSteered(root *plan.Node, day int, jobTag string) (Trial, bool) {
	return h.RunSteeredCtx(context.Background(), root, day, jobTag, nil)
}

// RunSteeredCtx is RunSteered bounded by a context, with the same fault
// record contract as RunConfigCtx. The signature probe is a plan-less
// compile (OptimizeCost); if it fails, the job falls through to the
// unsteered path and RunConfigCtx surfaces the error with full retry
// handling.
func (h *Harness) RunSteeredCtx(ctx context.Context, root *plan.Node, day int, jobTag string, rec *faults.Record) (Trial, bool) {
	cfg := h.Opt.Rules.DefaultConfig()
	steered := false
	if h.Steer != nil {
		if res, err := h.Opt.OptimizeCost(root, cfg); err == nil {
			if sc, ok := h.Steer.Decide(res.Signature); ok && !sc.Equal(cfg) {
				cfg = sc
				steered = true
			}
		}
	}
	return h.RunConfigCtx(ctx, root, cfg, day, jobTag, rec), steered
}

// RunConfigs executes the job under every configuration, returning trials in
// input order. Compile failures are recorded, not fatal: many candidate
// configurations legitimately do not compile (§4).
func (h *Harness) RunConfigs(root *plan.Node, cfgs []bitvec.Vector, day int, jobTag string) []Trial {
	out, _ := par.Map(h.Workers, cfgs, func(i int, cfg bitvec.Vector) (Trial, error) {
		return h.RunConfig(root, cfg, day, fmt.Sprintf("%s/cfg%d", jobTag, i)), nil
	})
	return out
}
