package obs

import (
	"context"
	"sync/atomic"
)

// Span outcomes. Instrumented packages may also record their own short
// outcome classes (e.g. "noplan", "fallback") — anything content-derived
// keeps snapshots deterministic.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// ErrOutcome classifies an error into the standard outcomes: OutcomeOK for
// nil, OutcomeError otherwise. Packages with richer error taxonomies (the
// steering pipeline knows no-plan from injected faults) classify themselves.
func ErrOutcome(err error) string {
	if err == nil {
		return OutcomeOK
	}
	return OutcomeError
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// Span is one in-flight stage of work. Spans nest via context: StartSpan
// stores the new span in the returned context, and children started from
// that context record the parent's content-keyed path. End records the span
// into the registry; a span may be ended at most once (later Ends no-op).
//
// Durations come from the registry clock, so they are the only
// schedule-dependent field — under FrozenClock they are all zero and the
// span set serializes byte-identically at any worker count (stage, tag and
// parent path are content identifiers, never goroutine or completion order).
type Span struct {
	reg     *Registry
	stage   string
	tag     string
	path    string
	parent  string
	startNs int64
	ended   atomic.Bool
}

// StartSpan opens a span for one stage of work. tag is a content identifier
// (job ID, candidate index) — never anything schedule-derived. The returned
// context carries the span so nested StartSpan calls chain parent paths. On
// a nil registry it returns ctx unchanged and a nil span.
func (r *Registry) StartSpan(ctx context.Context, stage, tag string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	s := &Span{reg: r, stage: stage, tag: tag, startNs: r.now().UnixNano()}
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		s.parent = parent.path
	}
	s.path = joinPath(s.parent, stage, tag)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// End completes the span with the given outcome and records it. Safe on a
// nil span; only the first End records.
func (s *Span) End(outcome string) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	p := SpanPoint{
		Path:       s.path,
		Stage:      s.stage,
		Tag:        s.tag,
		Parent:     s.parent,
		Outcome:    outcome,
		DurationNs: s.reg.now().UnixNano() - s.startNs,
	}
	s.reg.mu.Lock()
	s.reg.spans = append(s.reg.spans, p)
	s.reg.mu.Unlock()
}

// EndErr completes the span with ErrOutcome(err).
func (s *Span) EndErr(err error) { s.End(ErrOutcome(err)) }

// joinPath builds the content-keyed span path "parent/stage(tag)".
func joinPath(parent, stage, tag string) string {
	n := len(stage)
	if parent != "" {
		n += len(parent) + 1
	}
	if tag != "" {
		n += len(tag) + 2
	}
	b := make([]byte, 0, n)
	if parent != "" {
		b = append(b, parent...)
		b = append(b, '/')
	}
	b = append(b, stage...)
	if tag != "" {
		b = append(b, '(')
		b = append(b, tag...)
		b = append(b, ')')
	}
	return string(b)
}
