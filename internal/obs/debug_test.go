package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"steerq/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeDebugEndpoints(t *testing.T) {
	r := obs.New()
	r.Counter("steerq_debug_test_total", "kind", "a").Add(9)
	srv, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("bound server must report its address")
	}
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `steerq_debug_test_total{kind="a"} 9`) {
		t.Fatalf("/metrics missing counter sample:\n%s", body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars struct {
		Steerq obs.Snapshot `json:"steerq"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if len(vars.Steerq.Counters) != 1 || vars.Steerq.Counters[0].Value != 9 {
		t.Fatalf("expvar snapshot = %+v", vars.Steerq)
	}
}

// TestPublishLastRegistryWins: expvar.Publish panics on duplicate keys, so
// re-publishing (tests, repeated CLI setup in one process) must swap the
// backing registry instead of registering the key again.
func TestPublishLastRegistryWins(t *testing.T) {
	old := obs.New()
	old.Counter("steerq_old_total").Inc()
	old.Publish()

	cur := obs.New()
	cur.Counter("steerq_new_total").Add(5)
	srv, err := cur.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	_, body := get(t, "http://"+srv.Addr()+"/debug/vars")
	if !strings.Contains(body, "steerq_new_total") {
		t.Fatalf("/debug/vars does not reflect the last published registry:\n%s", body)
	}
	if strings.Contains(body, "steerq_old_total") {
		t.Fatalf("/debug/vars still serves a stale registry:\n%s", body)
	}
}

func TestServeDebugNilRegistry(t *testing.T) {
	var r *obs.Registry
	if _, err := r.ServeDebug("127.0.0.1:0"); err == nil {
		t.Fatal("nil registry must refuse to serve")
	}
	r.Publish() // must not panic
	var d *obs.DebugServer
	if d.Addr() != "" {
		t.Fatal("nil server Addr must be empty")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	r := obs.New()
	if _, err := r.ServeDebug("256.256.256.256:99999"); err == nil {
		t.Fatal("unbindable address must error")
	}
}
