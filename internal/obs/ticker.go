package obs

import (
	"sync"
	"time"
)

// Ticker is the injectable periodic-tick seam, the cadence counterpart of
// Clock: components that poll (the serve bundle watcher) take a TickerFunc
// instead of calling time.NewTicker, so tests drive every poll explicitly
// and stay deterministic under STEERQ_VCLOCK instead of racing a real
// 5ms ticker.
type Ticker interface {
	// C delivers the ticks.
	C() <-chan time.Time
	// Stop releases the ticker's resources. After Stop no more ticks are
	// delivered; C is not closed (matching time.Ticker).
	Stop()
}

// TickerFunc builds a Ticker for a poll interval — the seam components
// store. NewWallTicker is the production implementation.
type TickerFunc func(interval time.Duration) Ticker

// wallTicker adapts time.Ticker to the Ticker interface.
type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }

// NewWallTicker ticks on the real clock every interval. This is the module's
// one approved raw ticker seam, exactly like WallClock is for clock reads:
// every polling component threads a TickerFunc obtained here or injected by
// a test, and detcheck enforces that discipline.
func NewWallTicker(interval time.Duration) Ticker {
	// steerq:allow-wallclock — the approved cadence seam itself.
	return wallTicker{t: time.NewTicker(interval)}
}

// ManualTicker is a test-driven Ticker: each Tick call delivers exactly one
// tick and returns once the polling loop has received it, so a test knows
// the poll has *started*; a second Tick additionally proves the previous
// poll *finished* (the loop is back at its receive). Safe for concurrent
// use.
type ManualTicker struct {
	ch       chan time.Time
	done     chan struct{}
	stopOnce sync.Once
}

// NewManualTicker returns a manual ticker with an unbuffered channel.
func NewManualTicker() *ManualTicker {
	return &ManualTicker{ch: make(chan time.Time), done: make(chan struct{})}
}

// C delivers the ticks sent by Tick.
func (m *ManualTicker) C() <-chan time.Time { return m.ch }

// Tick delivers one tick, blocking until the consumer receives it. A tick
// racing the ticker's Stop is dropped rather than deadlocking, so a test's
// final Tick is safe against a loop that already exited.
func (m *ManualTicker) Tick() {
	select {
	case m.ch <- time.Time{}:
	case <-m.done:
	}
}

// Stop unblocks pending and future Tick calls without delivering them.
func (m *ManualTicker) Stop() {
	m.stopOnce.Do(func() { close(m.done) })
}
