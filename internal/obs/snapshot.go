package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Label is one key/value metric dimension. Labels are sorted by key at
// registration, so identity and serialization order never depend on call
// sites.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// CounterPoint is one counter's snapshot.
type CounterPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugePoint is one gauge's snapshot (materialized gauges and GaugeFuncs
// alike).
type GaugePoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one histogram's snapshot. Bounds are the finite
// ascending upper bounds; Counts has len(Bounds)+1 entries, the last being
// the implicit +Inf overflow bucket (kept implicit so the snapshot stays
// plain JSON — +Inf has no JSON encoding).
type HistogramPoint struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// SpanPoint is one completed span. Path/Stage/Tag/Parent are content-derived
// (job IDs, stage names), so the sorted span set is schedule-independent;
// DurationNs is the only clock-dependent field.
type SpanPoint struct {
	Path       string `json:"path"`
	Stage      string `json:"stage"`
	Tag        string `json:"tag,omitempty"`
	Parent     string `json:"parent,omitempty"`
	Outcome    string `json:"outcome"`
	DurationNs int64  `json:"duration_ns"`
}

// Snapshot is one registry's full, deterministically ordered state.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	Spans      []SpanPoint      `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state with a deterministic
// ordering: metrics sort by identity (name, then labels) and spans by
// content-keyed path, then outcome. GaugeFuncs are evaluated here. A nil
// registry yields the zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	gfs := make([]gaugeFunc, 0, len(r.gaugeFuncs))
	for _, gf := range r.gaugeFuncs {
		gfs = append(gfs, gf)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	snap.Spans = append([]SpanPoint(nil), r.spans...)
	r.mu.Unlock()

	snap.Counters = make([]CounterPoint, 0, len(counters))
	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterPoint{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	snap.Gauges = make([]GaugePoint, 0, len(gauges)+len(gfs))
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, gf := range gfs {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: gf.name, Labels: gf.labels, Value: gf.fn()})
	}
	snap.Histograms = make([]HistogramPoint, 0, len(hists))
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, h.snapshot())
	}

	sort.Slice(snap.Counters, func(i, j int) bool {
		return pointLess(snap.Counters[i].Name, snap.Counters[i].Labels, snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return pointLess(snap.Gauges[i].Name, snap.Gauges[i].Labels, snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return pointLess(snap.Histograms[i].Name, snap.Histograms[i].Labels, snap.Histograms[j].Name, snap.Histograms[j].Labels)
	})
	sort.Slice(snap.Spans, func(i, j int) bool {
		a, b := snap.Spans[i], snap.Spans[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Outcome < b.Outcome
	})
	return snap
}

// pointLess orders metric points by identity: name first, then sorted labels.
func pointLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i].Key != bl[i].Key {
			return al[i].Key < bl[i].Key
		}
		if al[i].Value != bl[i].Value {
			return al[i].Value < bl[i].Value
		}
	}
	return len(al) < len(bl)
}

// MarshalIndent is the canonical snapshot serialization used by
// -metrics-out: indented, field-ordered, deterministic given the sorted
// point ordering from Snapshot.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the snapshot to path in the format the extension selects:
// Prometheus text exposition for .prom and .txt, indented JSON otherwise.
// Both CLIs route -metrics-out through here so the formats cannot drift.
func (s Snapshot) WriteFile(path string) error {
	var data []byte
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		var buf bytes.Buffer
		if err := s.Text(&buf); err != nil {
			return err
		}
		data = buf.Bytes()
	} else {
		var err error
		data, err = s.MarshalIndent()
		if err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write metrics file: %w", err)
	}
	return nil
}

// ParseSnapshot decodes a snapshot previously serialized with MarshalIndent
// (or plain encoding/json). Unknown fields are rejected so format drift is
// caught by the round-trip test instead of silently dropped.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return s, nil
}

// Text writes the snapshot as a Prometheus-style text exposition: one
// `# TYPE` line per metric family, then `name{k="v"} value` sample lines.
// Histograms expand to `_bucket{le="..."}` (cumulative, ending at le="+Inf"),
// `_sum` and `_count`. Spans are aggregated per (stage, outcome) into
// `steerq_span_total` and `steerq_span_duration_ns_total` families so the
// exposition stays bounded. The output is deterministic: families and
// samples appear in sorted order.
func (s Snapshot) Text(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	family := func(name, typ string) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
	}
	for _, c := range s.Counters {
		family(c.Name, "counter")
		writeSample(&b, c.Name, c.Labels, "", formatUint(c.Value))
	}
	lastFamily = ""
	for _, g := range s.Gauges {
		family(g.Name, "gauge")
		writeSample(&b, g.Name, g.Labels, "", formatFloat(g.Value))
	}
	lastFamily = ""
	for _, h := range s.Histograms {
		family(h.Name, "histogram")
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			writeSample(&b, h.Name+"_bucket", h.Labels, `le="`+le+`"`, formatUint(cum))
		}
		writeSample(&b, h.Name+"_sum", h.Labels, "", formatFloat(h.Sum))
		writeSample(&b, h.Name+"_count", h.Labels, "", formatUint(h.Count))
	}
	if len(s.Spans) > 0 {
		type spanAgg struct {
			count uint64
			durNs int64
		}
		aggs := make(map[string]*spanAgg)
		keys := make([]string, 0, 8)
		for _, sp := range s.Spans {
			k := sp.Stage + "\x00" + sp.Outcome
			a, ok := aggs[k]
			if !ok {
				a = &spanAgg{}
				aggs[k] = a
				keys = append(keys, k)
			}
			a.count++
			a.durNs += sp.DurationNs
		}
		sort.Strings(keys)
		b.WriteString("# TYPE steerq_span_total counter\n")
		for _, k := range keys {
			stage, outcome, _ := strings.Cut(k, "\x00")
			ls := []Label{{Key: "outcome", Value: outcome}, {Key: "stage", Value: stage}}
			writeSample(&b, "steerq_span_total", ls, "", formatUint(aggs[k].count))
		}
		b.WriteString("# TYPE steerq_span_duration_ns_total counter\n")
		for _, k := range keys {
			stage, outcome, _ := strings.Cut(k, "\x00")
			ls := []Label{{Key: "outcome", Value: outcome}, {Key: "stage", Value: stage}}
			writeSample(&b, "steerq_span_duration_ns_total", ls, "", strconv.FormatInt(aggs[k].durNs, 10))
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: write exposition: %w", err)
	}
	return nil
}

// writeSample appends one `name{labels,extra} value` exposition line.
func writeSample(b *strings.Builder, name string, ls []Label, extra, value string) {
	b.WriteString(name)
	if len(ls) > 0 || extra != "" {
		b.WriteByte('{')
		for i, l := range ls {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extra != "" {
			if len(ls) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatUint renders a counter/bucket value.
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders a float with the shortest round-trippable form, so
// text output is byte-stable across runs and platforms.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
