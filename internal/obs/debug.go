package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
)

// publishOnce guards expvar publication: expvar.Publish panics on duplicate
// names, and tests (plus repeated CLI invocations in one process) may wire
// more than one registry. The last-published registry wins.
var (
	publishMu  sync.Mutex
	publishReg *Registry
	publishSet bool
)

// Publish exposes the registry under the expvar key "steerq" as a JSON
// snapshot function. Safe to call more than once (later registries replace
// earlier ones under the same key).
func (r *Registry) Publish() {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	publishReg = r
	if publishSet {
		return
	}
	publishSet = true
	expvar.Publish("steerq", expvar.Func(func() any {
		publishMu.Lock()
		reg := publishReg
		publishMu.Unlock()
		return reg.Snapshot()
	}))
}

// DebugServer is the optional HTTP endpoint behind -debug-addr. It serves
// the stdlib expvar page at /debug/vars (which includes the published
// "steerq" snapshot) and the Prometheus-style exposition at /metrics.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug publishes the registry via expvar and starts an HTTP server on
// addr (e.g. "localhost:6060"). It returns once the listener is bound; the
// server runs until Close.
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: serve debug: nil registry")
	}
	r.Publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve debug: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		if err := r.Snapshot().Text(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address (useful with ":0" in tests).
func (d *DebugServer) Addr() string {
	if d == nil || d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the debug server.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	if err := d.srv.Close(); err != nil {
		return fmt.Errorf("obs: close debug server: %w", err)
	}
	return nil
}
