package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report writes a human-readable table of the snapshot: counters, gauges,
// histogram summaries (count/sum/mean) and spans aggregated per stage and
// outcome. It is the experiments-summary view; machine consumers use Text or
// MarshalIndent.
func (s Snapshot) Report(w io.Writer) error {
	var b strings.Builder
	b.WriteString("== observability report ==\n")
	if len(s.Counters) > 0 {
		b.WriteString("-- counters --\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-58s %d\n", metricID(c.Name, c.Labels), c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("-- gauges --\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-58s %s\n", metricID(g.Name, g.Labels), formatFloat(g.Value))
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("-- histograms --\n")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-58s count=%d sum=%s mean=%s\n",
				metricID(h.Name, h.Labels), h.Count, formatFloat(h.Sum), formatFloat(mean))
		}
	}
	if len(s.Spans) > 0 {
		b.WriteString("-- spans (by stage) --\n")
		type agg struct {
			count uint64
			durNs int64
		}
		aggs := make(map[string]*agg)
		order := make([]string, 0, 8)
		for _, sp := range s.Spans {
			k := sp.Stage + " " + sp.Outcome
			a, ok := aggs[k]
			if !ok {
				a = &agg{}
				aggs[k] = a
				order = append(order, k)
			}
			a.count++
			a.durNs += sp.DurationNs
		}
		sort.Strings(order)
		for _, k := range order {
			a := aggs[k]
			fmt.Fprintf(&b, "  %-58s n=%d total=%s\n", k, a.count, formatDurNs(a.durNs))
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

// formatDurNs renders a nanosecond total compactly for the report table.
func formatDurNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return formatFloat(float64(ns)/1e9) + "s"
	case ns >= 1e6:
		return formatFloat(float64(ns)/1e6) + "ms"
	case ns >= 1e3:
		return formatFloat(float64(ns)/1e3) + "us"
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
