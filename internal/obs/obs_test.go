package obs_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"steerq/internal/obs"
)

func TestCounterIdentityAndValues(t *testing.T) {
	r := obs.New()
	a := r.Counter("steerq_test_total", "site", "compile")
	// Same name with label pairs in any vararg order resolves to the same
	// instance: identity is (name, sorted labels).
	b := r.Counter("steerq_test_total", "site", "compile")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	a.Inc()
	b.Add(4)
	if got := a.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	other := r.Counter("steerq_test_total", "site", "exec")
	if other == a {
		t.Fatal("different labels returned the same counter")
	}
	if got := other.Value(); got != 0 {
		t.Fatalf("fresh counter value = %d, want 0", got)
	}
}

func TestLabelSortingNormalizesIdentity(t *testing.T) {
	r := obs.New()
	a := r.Counter("m", "b", "2", "a", "1")
	b := r.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed metric identity; labels must sort by key")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("got %d counters, want 1", len(snap.Counters))
	}
	ls := snap.Counters[0].Labels
	if len(ls) != 2 || ls[0].Key != "a" || ls[1].Key != "b" {
		t.Fatalf("labels not sorted by key: %+v", ls)
	}
}

func TestTrailingOddLabelKeyKept(t *testing.T) {
	r := obs.New()
	r.Counter("m", "k").Inc()
	snap := r.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("got %d counters, want 1", len(snap.Counters))
	}
	ls := snap.Counters[0].Labels
	if len(ls) != 1 || ls[0].Key != "k" || ls[0].Value != "" {
		t.Fatalf("trailing odd key not kept with empty value: %+v", ls)
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := obs.New()
	g := r.Gauge("steerq_test_gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
	if again := r.Gauge("steerq_test_gauge"); again != g {
		t.Fatal("same identity returned distinct gauges")
	}
	n := 1.0
	r.GaugeFunc("steerq_test_fn", func() float64 { return n })
	// Re-registering replaces the function.
	r.GaugeFunc("steerq_test_fn", func() float64 { return n * 10 })
	n = 3
	snap := r.Snapshot()
	vals := map[string]float64{}
	for _, g := range snap.Gauges {
		vals[g.Name] = g.Value
	}
	if vals["steerq_test_gauge"] != 2.5 {
		t.Fatalf("materialized gauge = %v, want 2.5", vals["steerq_test_gauge"])
	}
	if vals["steerq_test_fn"] != 30 {
		t.Fatalf("gauge func = %v, want 30 (evaluated at snapshot, replaced fn)", vals["steerq_test_fn"])
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := obs.New()
	h := r.Histogram("steerq_test_hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 50, 1000, -2} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(snap.Histograms))
	}
	p := snap.Histograms[0]
	if !reflect.DeepEqual(p.Bounds, []float64{1, 10, 100}) {
		t.Fatalf("bounds = %v", p.Bounds)
	}
	// Buckets are v <= bound: {-2, 0.5, 1} | {1.5} | {50} | overflow {1000}.
	want := []uint64{3, 1, 1, 1}
	if !reflect.DeepEqual(p.Counts, want) {
		t.Fatalf("counts = %v, want %v", p.Counts, want)
	}
	if p.Count != 6 {
		t.Fatalf("count = %d, want 6", p.Count)
	}
	if p.Sum != 0.5+1+1.5+50+1000-2 {
		t.Fatalf("sum = %v", p.Sum)
	}
	// Bounds are fixed at first registration.
	if again := r.Histogram("steerq_test_hist", []float64{7}); again != h {
		t.Fatal("same identity returned distinct histograms")
	}
}

// TestHistogramConcurrentMergeDeterministic is the package's core property:
// the snapshot of a histogram is a pure function of the observation multiset,
// independent of which goroutines observed what in which order.
func TestHistogramConcurrentMergeDeterministic(t *testing.T) {
	values := make([]float64, 4000)
	for i := range values {
		values[i] = float64(i%97) * 0.25
	}
	run := func(workers int) obs.HistogramPoint {
		r := obs.New()
		h := r.Histogram("h", []float64{1, 5, 20})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(values); i += workers {
					h.Observe(values[i])
				}
			}(w)
		}
		wg.Wait()
		return r.Snapshot().Histograms[0]
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("histogram snapshot differs by worker count:\n 1: %+v\n 8: %+v", serial, parallel)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c != nil || c.Value() != 0 {
		t.Fatal("nil registry must hand out nil no-op counters")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g != nil || g.Value() != 0 {
		t.Fatal("nil registry must hand out nil no-op gauges")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	h := r.Histogram("x", []float64{1})
	h.Observe(5)
	if h != nil {
		t.Fatal("nil registry must hand out nil no-op histograms")
	}
	ctx := context.Background()
	ctx2, sp := r.StartSpan(ctx, "stage", "tag")
	if ctx2 != ctx || sp != nil {
		t.Fatal("nil registry StartSpan must return ctx unchanged and a nil span")
	}
	sp.End(obs.OutcomeOK)
	sp.EndErr(nil)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestSpanNestingAndOutcomes(t *testing.T) {
	mc := obs.NewManualClock()
	r := obs.NewWithClock(mc.Clock())
	ctx, parent := r.StartSpan(context.Background(), "pipeline.recompile", "job1")
	if got := obs.SpanFromContext(ctx); got != parent {
		t.Fatal("SpanFromContext did not return the active span")
	}
	mc.Advance(5 * time.Millisecond)
	_, child := r.StartSpan(ctx, "pipeline.span_search", "job1")
	mc.Advance(2 * time.Millisecond)
	child.EndErr(nil)
	mc.Advance(time.Millisecond)
	parent.End(obs.OutcomeError)
	parent.End(obs.OutcomeOK) // second End must not record

	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap.Spans))
	}
	// Sorted by path: parent "pipeline.recompile(job1)" first.
	p, c := snap.Spans[0], snap.Spans[1]
	if p.Path != "pipeline.recompile(job1)" || p.Outcome != obs.OutcomeError {
		t.Fatalf("parent span = %+v", p)
	}
	if p.DurationNs != int64(8*time.Millisecond) {
		t.Fatalf("parent duration = %d", p.DurationNs)
	}
	if c.Path != "pipeline.recompile(job1)/pipeline.span_search(job1)" {
		t.Fatalf("child path = %q", c.Path)
	}
	if c.Parent != "pipeline.recompile(job1)" || c.Outcome != obs.OutcomeOK {
		t.Fatalf("child span = %+v", c)
	}
	if c.DurationNs != int64(2*time.Millisecond) {
		t.Fatalf("child duration = %d", c.DurationNs)
	}
}

func TestErrOutcome(t *testing.T) {
	if obs.ErrOutcome(nil) != obs.OutcomeOK {
		t.Fatal("nil error must classify ok")
	}
	if obs.ErrOutcome(context.Canceled) != obs.OutcomeError {
		t.Fatal("non-nil error must classify error")
	}
}

func TestFrozenClockZeroDurations(t *testing.T) {
	r := obs.NewWithClock(obs.FrozenClock())
	_, sp := r.StartSpan(context.Background(), "s", "")
	sp.End(obs.OutcomeOK)
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].DurationNs != 0 {
		t.Fatalf("frozen clock span = %+v, want zero duration", snap.Spans)
	}
	if snap.Spans[0].Path != "s" {
		t.Fatalf("tagless span path = %q, want %q", snap.Spans[0].Path, "s")
	}
}

func TestClockFromEnv(t *testing.T) {
	t.Setenv(obs.VClockEnv, "1")
	c := obs.ClockFromEnv()
	if !c().Equal(time.Unix(0, 0)) {
		t.Fatal("STEERQ_VCLOCK set: clock must be frozen at the zero instant")
	}
	t.Setenv(obs.VClockEnv, "")
	w := obs.ClockFromEnv()
	if d := time.Since(w()); d < -time.Minute || d > time.Minute {
		t.Fatalf("unset STEERQ_VCLOCK: clock must read wall time, got %v away", d)
	}
}

func TestSnapshotOrderingDeterministic(t *testing.T) {
	build := func(order []int) obs.Snapshot {
		r := obs.NewWithClock(obs.FrozenClock())
		ops := []func(){
			func() { r.Counter("b_total").Add(2) },
			func() { r.Counter("a_total", "k", "v2").Inc() },
			func() { r.Counter("a_total", "k", "v1").Inc() },
			func() { r.Gauge("g").Set(1) },
			func() { r.Histogram("h", []float64{1}).Observe(0.5) },
			func() {
				_, sp := r.StartSpan(context.Background(), "z", "t")
				sp.End(obs.OutcomeOK)
			},
			func() {
				_, sp := r.StartSpan(context.Background(), "a", "t")
				sp.End(obs.OutcomeOK)
			},
		}
		for _, i := range order {
			ops[i]()
		}
		return r.Snapshot()
	}
	fwd := build([]int{0, 1, 2, 3, 4, 5, 6})
	rev := build([]int{6, 5, 4, 3, 2, 1, 0})
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("snapshot depends on recording order:\nfwd %+v\nrev %+v", fwd, rev)
	}
	if fwd.Counters[0].Name != "a_total" || fwd.Counters[0].Labels[0].Value != "v1" {
		t.Fatalf("counters not sorted by (name, labels): %+v", fwd.Counters)
	}
	if fwd.Spans[0].Stage != "a" {
		t.Fatalf("spans not sorted by path: %+v", fwd.Spans)
	}
}

func TestStandaloneCounter(t *testing.T) {
	c := obs.NewCounter("steerq_cache_hits_total")
	c.Add(7)
	if c.Value() != 7 {
		t.Fatalf("standalone counter = %d, want 7", c.Value())
	}
}

func TestManualClockAdvance(t *testing.T) {
	mc := obs.NewManualClock()
	if !mc.Now().Equal(time.Unix(0, 0)) {
		t.Fatal("manual clock must start at the zero instant")
	}
	mc.Advance(3 * time.Second)
	if got := mc.Now(); !got.Equal(time.Unix(3, 0)) {
		t.Fatalf("after Advance(3s): %v", got)
	}
}
