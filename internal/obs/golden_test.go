package obs_test

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"steerq/internal/obs"
)

// goldenRegistry builds one registry exercising every metric kind with fixed
// values, on a manual clock so span durations are pinned.
func goldenRegistry() *obs.Registry {
	mc := obs.NewManualClock()
	r := obs.NewWithClock(mc.Clock())
	r.Counter("steerq_pipeline_candidates_total", "outcome", "compiled").Add(12)
	r.Counter("steerq_pipeline_candidates_total", "outcome", "noplan").Add(3)
	r.Counter("steerq_cache_hits_total", "workload", "A").Add(40)
	r.Gauge("steerq_cache_entries", "workload", "A").Set(7)
	r.GaugeFunc("steerq_faults_decisions", func() float64 { return 123 })
	h := r.Histogram("steerq_exec_runtime_seconds", []float64{1, 10, 60})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(600)
	ctx, parent := r.StartSpan(context.Background(), "pipeline.recompile", "d0j1")
	mc.Advance(1500 * time.Microsecond)
	_, child := r.StartSpan(ctx, "pipeline.span_search", "d0j1")
	mc.Advance(500 * time.Microsecond)
	child.End(obs.OutcomeOK)
	parent.End(obs.OutcomeOK)
	_, errSpan := r.StartSpan(context.Background(), "abtest.compile", "d0j2")
	errSpan.End("noplan")
	return r
}

// goldenText locks the exposition format: # TYPE lines per family, sorted
// samples, cumulative histogram buckets ending at le="+Inf", spans aggregated
// per (stage, outcome). Any byte of drift here is an exposition format change
// and must be deliberate.
const goldenText = `# TYPE steerq_cache_hits_total counter
steerq_cache_hits_total{workload="A"} 40
# TYPE steerq_pipeline_candidates_total counter
steerq_pipeline_candidates_total{outcome="compiled"} 12
steerq_pipeline_candidates_total{outcome="noplan"} 3
# TYPE steerq_cache_entries gauge
steerq_cache_entries{workload="A"} 7
# TYPE steerq_faults_decisions gauge
steerq_faults_decisions 123
# TYPE steerq_exec_runtime_seconds histogram
steerq_exec_runtime_seconds_bucket{le="1"} 1
steerq_exec_runtime_seconds_bucket{le="10"} 3
steerq_exec_runtime_seconds_bucket{le="60"} 3
steerq_exec_runtime_seconds_bucket{le="+Inf"} 4
steerq_exec_runtime_seconds_sum 610.5
steerq_exec_runtime_seconds_count 4
# TYPE steerq_span_total counter
steerq_span_total{outcome="noplan",stage="abtest.compile"} 1
steerq_span_total{outcome="ok",stage="pipeline.recompile"} 1
steerq_span_total{outcome="ok",stage="pipeline.span_search"} 1
# TYPE steerq_span_duration_ns_total counter
steerq_span_duration_ns_total{outcome="noplan",stage="abtest.compile"} 0
steerq_span_duration_ns_total{outcome="ok",stage="pipeline.recompile"} 2000000
steerq_span_duration_ns_total{outcome="ok",stage="pipeline.span_search"} 500000
`

func TestTextExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().Text(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenText {
		t.Fatalf("text exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenText)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	data, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("MarshalIndent must end with a newline")
	}
	back, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot round trip lost information:\nbefore %+v\nafter  %+v", snap, back)
	}
	again, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-marshaled snapshot is not byte-identical")
	}
}

func TestParseSnapshotRejectsUnknownFields(t *testing.T) {
	if _, err := obs.ParseSnapshot([]byte(`{"counters": [], "surprise": 1}`)); err == nil {
		t.Fatal("unknown top-level field must be rejected")
	}
	if _, err := obs.ParseSnapshot([]byte(`{"counters": [{"name": "x", "value": 1, "extra": true}]}`)); err == nil {
		t.Fatal("unknown nested field must be rejected")
	}
	if _, err := obs.ParseSnapshot([]byte(`not json`)); err == nil {
		t.Fatal("malformed input must be rejected")
	}
}

func TestTextEscapesLabelValues(t *testing.T) {
	r := obs.New()
	r.Counter("m_total", "path", "a\\b\"c\nd").Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().Text(&buf); err != nil {
		t.Fatal(err)
	}
	want := `m_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("label value not escaped:\n%s", buf.String())
	}
}

func TestWriteFileFormats(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	dir := t.TempDir()

	jsonPath := dir + "/metrics.json"
	if err := snap.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseSnapshot(jdata); err != nil {
		t.Fatalf("JSON metrics file did not parse back: %v", err)
	}

	promPath := dir + "/metrics.prom"
	if err := snap.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	pdata, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(pdata) != goldenText {
		t.Fatalf(".prom file is not the text exposition:\n%s", pdata)
	}
}

func TestReportTable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== observability report ==",
		"-- counters --",
		`steerq_pipeline_candidates_total{outcome=compiled}`,
		"-- gauges --",
		"-- histograms --",
		"count=4 sum=610.5 mean=152.625",
		"-- spans (by stage) --",
		"pipeline.recompile ok",
		"n=1 total=2ms",
		"n=1 total=500us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptySnapshotOutputs(t *testing.T) {
	snap := obs.New().Snapshot()
	var buf bytes.Buffer
	if err := snap.Text(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot exposition not empty: %q", buf.String())
	}
	buf.Reset()
	if err := snap.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "== observability report ==\n" {
		t.Fatalf("empty report = %q", got)
	}
	data, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "{}" {
		t.Fatalf("empty snapshot JSON = %q", data)
	}
}
