package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. Adds are atomic and commutative, so the
// total read at snapshot time is independent of goroutine scheduling — the
// property the W1-vs-W8 determinism suite asserts. The zero value is ready
// to use; a nil counter records nothing.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Uint64
}

// NewCounter returns a standalone counter not attached to any registry —
// useful for components (the compile cache) that keep counting whether or
// not observability is wired, and re-point to registry counters when it is.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value. Concurrent Sets race by
// design (the winner is schedule-dependent), so deterministic pipelines set
// gauges only from serial sections — or use Registry.GaugeFunc.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histShards is the fixed shard count of one histogram. Shard choice only
// spreads lock contention; because every shard holds commutative integer
// state and shards merge serially in index order at snapshot time, the
// merged result is identical for any assignment of observations to shards.
const histShards = 8

// histShard is one lock-guarded slice of a histogram.
type histShard struct {
	mu sync.Mutex
	// counts[i] tallies observations in bucket i; the last bucket is +Inf.
	counts []uint64
	// sumMicros accumulates observations in fixed-point micro-units.
	// Integer addition is associative and commutative, which is what keeps
	// the merged Sum bit-identical at any worker count — a float64 sum
	// would depend on accumulation order.
	sumMicros int64
	count     uint64
}

// Histogram is a fixed-bucket, lock-sharded distribution. Observations pick
// a shard from their value bits, update integer state under the shard lock,
// and the shards are merged serially at snapshot time (the faults.Record
// pattern). A nil histogram records nothing.
type Histogram struct {
	name   string
	labels []Label
	// bounds are ascending upper bounds; observations above the last bound
	// land in the implicit +Inf bucket.
	bounds []float64
	shards [histShards]histShard
}

func newHistogram(name string, labels []Label, bounds []float64) *Histogram {
	h := &Histogram{name: name, labels: labels, bounds: append([]float64(nil), bounds...)}
	for i := range h.shards {
		h.shards[i].counts = make([]uint64, len(bounds)+1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	b := len(h.bounds)
	for i, ub := range h.bounds {
		if v <= ub {
			b = i
			break
		}
	}
	s := &h.shards[shardOf(v)]
	s.mu.Lock()
	s.counts[b]++
	s.count++
	s.sumMicros += toMicros(v)
	s.mu.Unlock()
}

// shardOf spreads observations across shards by mixing the value bits. Any
// mapping is correct (see histShard); this one keeps identical values from
// piling onto one lock only when they genuinely repeat.
func shardOf(v float64) int {
	x := math.Float64bits(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % histShards)
}

// toMicros converts an observation to fixed-point micro-units with
// round-half-away-from-zero. Per-observation rounding is deterministic, so
// the integer sum is too.
func toMicros(v float64) int64 {
	scaled := v * 1e6
	if scaled >= 0 {
		return int64(scaled + 0.5)
	}
	return int64(scaled - 0.5)
}

// snapshot merges the shards serially in index order.
func (h *Histogram) snapshot() HistogramPoint {
	p := HistogramPoint{
		Name:   h.name,
		Labels: h.labels,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	var micros int64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for b, c := range s.counts {
			p.Counts[b] += c
		}
		p.Count += s.count
		micros += s.sumMicros
		s.mu.Unlock()
	}
	p.Sum = float64(micros) / 1e6
	return p
}
