// Package obs is steerq's dependency-free observability layer: counters,
// gauges and fixed-bucket histograms plus lightweight spans, all collected
// into one Registry and exposed as a Prometheus-style text exposition, a
// JSON snapshot, an expvar-backed debug endpoint and a human report table.
//
// The production follow-up to the source paper ("Deploying a Steered Query
// Optimizer in Production at Microsoft") ships steering only because every
// pipeline stage is instrumented — rule-config hit rates, regression
// guardrails, per-stage latency. This package is the reproduction's version
// of that telemetry plane, built under the same constraint as internal/par
// and internal/faults: determinism at any worker count.
//
// # Determinism
//
// Every metric accumulates commutative integer state — counters are atomic
// uint64 adds, histogram shards hold integer bucket counts and fixed-point
// micro-unit sums — so the merged totals are a pure function of the *set* of
// observations, never of goroutine scheduling. Shards are merged serially in
// fixed shard order at snapshot time, exactly like faults.Record merges in
// candidate-index order. Snapshots sort metrics by identity and spans by
// content-keyed path, so a Workers=1 and a Workers=8 run of the same seeded
// pipeline serialize byte-identically (under a virtual clock; see Clock).
//
// Gauges are last-write-wins and therefore must only be set from serial
// sections or via GaugeFunc, which is evaluated at snapshot time.
//
// # Nil safety
//
// A nil *Registry, nil *Counter, nil *Gauge, nil *Histogram and nil *Span
// are all valid and record nothing, so instrumented packages never need
// guards: observability is wired by threading one Registry, and its absence
// costs one nil check per call site.
package obs

import (
	"os"
	"sort"
	"sync"
	"time"
)

// Clock supplies span timestamps. Production uses wall time; deterministic
// tests and CI goldens use a frozen or manual clock so span durations (the
// only wall-clock-dependent output) serialize identically on every run.
type Clock func() time.Time

// WallClock reads the real time. This is the module's one approved raw
// wall-clock seam: every other package threads a Clock obtained here or from
// ClockFromEnv, and detcheck enforces that discipline.
//
// steerq:allow-wallclock — the approved seam itself.
func WallClock() Clock { return time.Now }

// FrozenClock always reads the zero instant: every span duration is exactly
// zero, which is what makes full-snapshot goldens diffable across runs.
func FrozenClock() Clock {
	t0 := time.Unix(0, 0)
	return func() time.Time { return t0 }
}

// VClockEnv is the environment variable that switches ClockFromEnv to the
// frozen virtual clock. CI sets it for the metrics-golden smoke stage.
const VClockEnv = "STEERQ_VCLOCK"

// ClockFromEnv returns FrozenClock when STEERQ_VCLOCK is non-empty and
// WallClock otherwise. Both CLIs build their registries through this, so a
// pinned-seed run under STEERQ_VCLOCK=1 emits a byte-stable snapshot.
func ClockFromEnv() Clock {
	if os.Getenv(VClockEnv) != "" {
		return FrozenClock()
	}
	return WallClock()
}

// ManualClock is a settable clock for tests: Now returns the current virtual
// instant, Advance moves it forward. Safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock starts a manual clock at the zero instant.
func NewManualClock() *ManualClock { return &ManualClock{now: time.Unix(0, 0)} }

// Now returns the clock's current virtual instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Clock adapts the manual clock to the Clock function type.
func (c *ManualClock) Clock() Clock { return c.Now }

// Registry holds one run's metrics and spans. The zero value is not usable;
// build one with New or NewWithClock. All methods are safe for concurrent
// use and safe on a nil receiver (recording nothing).
type Registry struct {
	clock Clock

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]gaugeFunc
	hists      map[string]*Histogram
	spans      []SpanPoint
}

type gaugeFunc struct {
	name   string
	labels []Label
	fn     func() float64
}

// New returns a registry on the wall clock.
func New() *Registry { return NewWithClock(WallClock()) }

// NewWithClock returns a registry whose spans read the given clock.
func NewWithClock(c Clock) *Registry {
	if c == nil {
		c = WallClock()
	}
	return &Registry{
		clock:      c,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]gaugeFunc),
		hists:      make(map[string]*Histogram),
	}
}

// now reads the registry clock (zero instant on nil).
func (r *Registry) now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock()
}

// Clock exposes the registry's clock so callers timing their own phases
// (e.g. the pipeline's merge-phase histogram) read the same seam spans do:
// frozen or virtual clocks make those durations deterministic exactly like
// span durations. A nil registry returns the frozen clock — there is no
// instrument to record into, so the reading must at least be cheap and
// deterministic.
func (r *Registry) Clock() Clock {
	if r == nil {
		return FrozenClock()
	}
	return r.clock
}

// Counter returns (creating once) the counter with the given name and
// label pairs (key, value, key, value, ...). A nil registry returns a nil
// counter, which records nothing.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelPairs(labels)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	r.counters[id] = c
	return c
}

// Gauge returns (creating once) the gauge with the given name and label
// pairs. Gauges are last-write-wins: set them only from serial sections.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelPairs(labels)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	r.gauges[id] = g
	return g
}

// GaugeFunc registers a gauge evaluated at snapshot time — the right shape
// for externally owned monotone state (cache entry counts, injector
// tallies). Registering the same identity again replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	ls := labelPairs(labels)
	id := metricID(name, ls)
	r.mu.Lock()
	r.gaugeFuncs[id] = gaugeFunc{name: name, labels: ls, fn: fn}
	r.mu.Unlock()
}

// Histogram returns (creating once) the fixed-bucket histogram with the
// given name, upper bounds (ascending; an implicit +Inf bucket is appended)
// and label pairs. Bounds are fixed at first registration; later callers
// get the existing instance regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelPairs(labels)
	id := metricID(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	h := newHistogram(name, ls, bounds)
	r.hists[id] = h
	return h
}

// labelPairs folds a (key, value, key, value, ...) vararg list into sorted
// labels. A trailing odd key gets an empty value rather than being dropped,
// so a mistake is visible in the exposition instead of silent.
func labelPairs(kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	ls := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		l := Label{Key: kv[i]}
		if i+1 < len(kv) {
			l.Value = kv[i+1]
		}
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// metricID is the canonical identity of one metric instance: name plus
// sorted labels.
func metricID(name string, ls []Label) string {
	if len(ls) == 0 {
		return name
	}
	b := make([]byte, 0, len(name)+16*len(ls))
	b = append(b, name...)
	b = append(b, '{')
	for i, l := range ls {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=')
		b = append(b, l.Value...)
	}
	b = append(b, '}')
	return string(b)
}
