package obs_test

import (
	"testing"
	"time"

	"steerq/internal/obs"
)

func TestManualTickerDeliversAndStops(t *testing.T) {
	m := obs.NewManualTicker()

	received := make(chan struct{})
	go func() {
		<-m.C()
		close(received)
	}()
	m.Tick()
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("tick not delivered")
	}

	// After Stop, Tick must return without a consumer instead of blocking
	// forever — that is the whole point of the done channel.
	m.Stop()
	done := make(chan struct{})
	go func() {
		m.Tick()
		m.Tick()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Tick blocked after Stop")
	}

	m.Stop() // idempotent
}

func TestManualTickerStopUnblocksPendingTick(t *testing.T) {
	m := obs.NewManualTicker()
	done := make(chan struct{})
	go func() {
		m.Tick() // no consumer: blocks until Stop
		close(done)
	}()
	m.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock a pending Tick")
	}
}

func TestWallTickerTicks(t *testing.T) {
	tk := obs.NewWallTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall ticker never ticked")
	}
}
