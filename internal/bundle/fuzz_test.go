package bundle

import (
	"bytes"
	"testing"

	"steerq/internal/xrand"
)

// FuzzBundleDecode throws arbitrary bytes at the decoder. The invariants:
// Decode never panics; a successful decode re-encodes to the identical
// bytes (the format is canonical, so decode is injective on valid inputs);
// and the re-decoded bundle carries the same checksum. The seeds cover the
// interesting structural boundaries — valid bundles, truncations at every
// section, duplicate signatures with a repaired checksum — so even a short
// fuzz pass exercises each validation branch.
func FuzzBundleDecode(f *testing.F) {
	r := xrand.New(7).Derive("bundle-fuzz")
	valid := randBundle(r, 3)
	data, err := valid.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add([]byte(Magic))
	f.Add(data)
	f.Add(data[:headerBytes])                    // truncated after the fixed header
	f.Add(data[:len(data)-1])                    // truncated inside the checksum
	f.Add(append(data[:len(data):len(data)], 0)) // trailing garbage
	empty, err := (&Bundle{Workload: "A"}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// A duplicate-signature bundle with a valid checksum: assemble it by
	// hand since Encode refuses to produce one.
	dup := append([]byte(nil), data...)
	start := len(dup) - checksumBytes - len(valid.Entries)*entryBytes
	copy(dup[start+entryBytes:], dup[start:start+entryBytes])
	sum := fnvSum(dup[:len(dup)-checksumBytes])
	for i := 0; i < checksumBytes; i++ {
		dup[len(dup)-checksumBytes+i] = byte(sum >> (8 * i))
	}
	f.Add(dup)

	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := Decode(in)
		if err != nil {
			return
		}
		out, err := b.Encode()
		if err != nil {
			t.Fatalf("decoded bundle failed to re-encode: %v", err)
		}
		if !bytes.Equal(in, out) {
			t.Fatalf("decode/encode not the identity on a valid input:\n in: %x\nout: %x", in, out)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Checksum() != b.Checksum() {
			t.Fatalf("checksum drifted: %016x vs %016x", again.Checksum(), b.Checksum())
		}
	})
}
