package bundle

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/xrand"
)

// randVec draws a vector with roughly density×Width bits set.
func randVec(r *xrand.Source, density float64) bitvec.Vector {
	var v bitvec.Vector
	for i := 0; i < bitvec.Width; i++ {
		if r.Bool(density) {
			v.Set(i)
		}
	}
	return v
}

// randBundle builds a structurally valid bundle with n distinct entries.
func randBundle(r *xrand.Source, n int) *Bundle {
	b := &Bundle{
		Version:     uint64(r.Intn(1000)) + 1,
		CreatedUnix: int64(r.Intn(1 << 30)),
		Workload:    "A",
		Default:     randVec(r, 0.5),
	}
	seen := make(map[bitvec.Key]bool)
	for len(b.Entries) < n {
		sig := randVec(r, 0.3)
		if seen[sig.Key()] {
			continue
		}
		seen[sig.Key()] = true
		b.Entries = append(b.Entries, Entry{
			Signature: sig,
			Config:    randVec(r, 0.5),
			Fallback:  r.Bool(0.25),
		})
	}
	return b
}

// sameDecisions compares two bundles up to entry order.
func sameDecisions(a, b *Bundle) bool {
	if a.Version != b.Version || a.CreatedUnix != b.CreatedUnix ||
		a.Workload != b.Workload || !a.Default.Equal(b.Default) ||
		len(a.Entries) != len(b.Entries) {
		return false
	}
	byKey := make(map[bitvec.Key]Entry, len(a.Entries))
	for _, e := range a.Entries {
		byKey[e.Signature.Key()] = e
	}
	for _, e := range b.Entries {
		o, ok := byKey[e.Signature.Key()]
		if !ok || !o.Config.Equal(e.Config) || o.Fallback != e.Fallback {
			return false
		}
	}
	return true
}

func TestRoundTripProperty(t *testing.T) {
	r := xrand.New(41).Derive("bundle-roundtrip")
	for i := 0; i < 50; i++ {
		b := randBundle(r, r.Intn(20))
		data, err := b.Encode()
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !sameDecisions(b, got) {
			t.Fatalf("case %d: decisions changed across the round trip", i)
		}
		if got.Checksum() != b.Checksum() || got.Checksum() == 0 {
			t.Fatalf("case %d: checksum %016x vs %016x", i, got.Checksum(), b.Checksum())
		}
		// Canonical form: re-encoding a decoded bundle is the identity.
		again, err := got.Encode()
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("case %d: re-encoded bytes differ", i)
		}
	}
}

func TestEncodeCanonicalizesEntryOrder(t *testing.T) {
	r := xrand.New(42).Derive("bundle-canon")
	b := randBundle(r, 12)
	data1, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rev := &Bundle{Version: b.Version, CreatedUnix: b.CreatedUnix, Workload: b.Workload, Default: b.Default}
	for i := len(b.Entries) - 1; i >= 0; i-- {
		rev.Entries = append(rev.Entries, b.Entries[i])
	}
	data2, err := rev.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("entry order leaked into the encoding")
	}
}

func TestEncodeRejects(t *testing.T) {
	dup := &Bundle{Workload: "A"}
	sig := bitvec.New(1, 2, 3)
	dup.Entries = []Entry{{Signature: sig}, {Signature: sig, Fallback: true}}
	if _, err := dup.Encode(); !errors.Is(err, ErrFormat) {
		t.Fatalf("duplicate signatures: got %v, want ErrFormat", err)
	}
	long := &Bundle{Workload: string(make([]byte, MaxWorkloadLen+1))}
	if _, err := long.Encode(); !errors.Is(err, ErrFormat) {
		t.Fatalf("oversized workload name: got %v, want ErrFormat", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	r := xrand.New(43).Derive("bundle-reject")
	b := randBundle(r, 5)
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrFormat},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, ErrFormat},
		{"unknown format version", func(d []byte) []byte { d[4] = 99; return d }, ErrFormat},
		{"truncated header", func(d []byte) []byte { return d[:10] }, ErrFormat},
		{"truncated entries", func(d []byte) []byte { return d[:len(d)-20] }, ErrFormat},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0) }, ErrFormat},
		{"flipped payload byte", func(d []byte) []byte { d[len(d)-20] ^= 1; return d }, ErrChecksum},
		{"flipped checksum byte", func(d []byte) []byte { d[len(d)-1] ^= 1; return d }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mutate(append([]byte(nil), data...))
			if _, err := Decode(in); !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeRejectsUnsortedEntries hand-corrupts the entry order and repairs
// the checksum, so only the sortedness check can catch it.
func TestDecodeRejectsUnsortedEntries(t *testing.T) {
	r := xrand.New(44).Derive("bundle-unsorted")
	b := randBundle(r, 4)
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Swap the first two entries in place.
	start := len(data) - checksumBytes - len(b.Entries)*entryBytes
	e0 := append([]byte(nil), data[start:start+entryBytes]...)
	copy(data[start:], data[start+entryBytes:start+2*entryBytes])
	copy(data[start+entryBytes:], e0)
	// Repair the checksum over the mutated payload.
	sum := fnvSum(data[:len(data)-checksumBytes])
	for i := 0; i < checksumBytes; i++ {
		data[len(data)-checksumBytes+i] = byte(sum >> (8 * i))
	}
	if _, err := Decode(data); !errors.Is(err, ErrFormat) {
		t.Fatalf("unsorted entries: got %v, want ErrFormat", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "steer.bundle")
	r := xrand.New(45).Derive("bundle-file")
	b := randBundle(r, 7)
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecisions(b, got) {
		t.Fatal("file round trip changed decisions")
	}
	// No temp files left behind by the atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("stray files after WriteFile: %v", names)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
}

func TestZeroBundleRoundTrip(t *testing.T) {
	b := &Bundle{}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 || got.Version != 0 || got.Workload != "" {
		t.Fatalf("zero bundle decoded as %+v", got)
	}
}
