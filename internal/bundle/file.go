package bundle

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile encodes the bundle and writes it atomically: the bytes land in
// a temporary file in the destination directory which is then renamed over
// path. A concurrent reader — the daemon's file watcher — therefore only
// ever observes a complete artifact, never a torn prefix.
func (b *Bundle) WriteFile(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bundle-*")
	if err != nil {
		return fmt.Errorf("bundle: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("bundle: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("bundle: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("bundle: write %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and decodes the bundle at path.
func ReadFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: read %s: %w", path, err)
	}
	b, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("bundle: read %s: %w", path, err)
	}
	return b, nil
}
