// Package bundle defines steerq's versioned steering artifact: the
// serialized per-group best-configuration decision table the offline
// pipeline produces and the serving tier (internal/serve, cmd/steerqd)
// loads. This is the reproduction of the "bundle" mechanism from the
// paper's production successor ("Deploying a Steered Query Optimizer in
// Production at Microsoft"): the expensive discovery runs offline, and only
// an immutable, checksummed table of decisions crosses the wire.
//
// A bundle maps default rule signatures (Definition 6.2's job-group
// identity) to the rule configuration the pipeline recommends for that
// group. Groups the pipeline analyzed without finding an improvement are
// recorded as explicit fallback entries — the serving tier can then tell
// "deliberately default" from "never seen" — and every bundle carries the
// default configuration itself so misses always resolve.
//
// # Wire format (format version 1)
//
// All integers are little-endian; vectors are the 32-byte little-endian
// word encoding of a bitvec.Vector.
//
//	magic          4 bytes  "STQB"
//	format         uint16   1
//	version        uint64   producer-assigned bundle version
//	created_unix   int64    producer clock stamp (0 under STEERQ_VCLOCK)
//	workload_len   uint8
//	workload       workload_len bytes
//	default        32 bytes default rule configuration
//	entry_count    uint32
//	entries        entry_count × 65 bytes, strictly ascending by signature:
//	    signature  32 bytes
//	    config     32 bytes
//	    flags      uint8    bit 0: fallback entry
//	checksum       uint64   FNV-1a 64 over every preceding byte
//
// Encode always emits the canonical form — entries sorted by signature
// bytes — so Encode∘Decode is the identity on bytes: two producers that
// agree on the decisions agree on the artifact, byte for byte, and the
// checksum doubles as a content hash.
package bundle

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"steerq/internal/bitvec"
)

// Magic is the file magic every bundle starts with.
const Magic = "STQB"

// FormatVersion is the wire-format version this package reads and writes.
const FormatVersion = 1

// vecBytes is the encoded size of one bitvec.Vector.
const vecBytes = bitvec.Width / 8

// entryBytes is the encoded size of one Entry.
const entryBytes = 2*vecBytes + 1

// headerBytes is the encoded size of everything before the workload name.
const headerBytes = len(Magic) + 2 + 8 + 8 + 1

// checksumBytes is the size of the trailing checksum.
const checksumBytes = 8

// MaxWorkloadLen bounds the workload-name field (it is length-prefixed with
// one byte).
const MaxWorkloadLen = 255

// Decode failure classes, wrapped into every decode error so callers (the
// upload endpoint, the file watcher) can classify rejections without string
// matching.
var (
	// ErrFormat marks a structurally invalid bundle: bad magic, unknown
	// format version, truncation, trailing bytes, unsorted or duplicate
	// signatures.
	ErrFormat = errors.New("bundle: invalid format")
	// ErrChecksum marks a bundle whose trailing checksum does not match its
	// content — a corrupted or torn artifact.
	ErrChecksum = errors.New("bundle: checksum mismatch")
)

// Entry is one decision: jobs whose default rule signature equals Signature
// should compile under Config. Fallback marks a group the pipeline analyzed
// and deliberately left on the default configuration.
type Entry struct {
	Signature bitvec.Vector
	Config    bitvec.Vector
	Fallback  bool
}

// Bundle is one versioned steering artifact. The zero value is an empty
// bundle; producers fill the fields and call Encode or WriteFile.
type Bundle struct {
	// Version is the producer-assigned bundle version, surfaced by the
	// serving tier in every decision and in its active-version gauge.
	Version uint64
	// CreatedUnix is the producer's clock stamp (obs.ClockFromEnv keeps it
	// 0 under STEERQ_VCLOCK so CI artifacts are byte-stable).
	CreatedUnix int64
	// Workload names the workload the decisions were discovered on.
	Workload string
	// Default is the optimizer's default rule configuration at build time;
	// lookups that miss every entry resolve to it.
	Default bitvec.Vector
	// Entries are the per-group decisions. Order is irrelevant to callers;
	// Encode canonicalizes it.
	Entries []Entry

	// checksum is the content hash of the canonical encoding, set by
	// Encode and Decode.
	checksum uint64
}

// Checksum returns the FNV-1a 64 content hash of the bundle's canonical
// encoding. It is zero until the bundle has been through Encode or Decode.
func (b *Bundle) Checksum() uint64 { return b.checksum }

// putVec appends the 32-byte little-endian encoding of v.
func putVec(buf []byte, v bitvec.Vector) []byte {
	k := v.Key()
	for _, w := range k {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// getVec decodes the 32-byte little-endian encoding at data[0:vecBytes].
func getVec(data []byte) bitvec.Vector {
	var k bitvec.Key
	for i := range k {
		k[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return bitvec.FromKey(k)
}

// sigBytes returns the canonical sort key of an entry: the encoded
// signature.
func sigBytes(v bitvec.Vector) [vecBytes]byte {
	var out [vecBytes]byte
	putVec(out[:0], v)
	return out
}

// Encode serializes the bundle in canonical form and stamps b's checksum.
// It fails on a workload name over MaxWorkloadLen bytes or on two entries
// sharing a signature (the table would be ambiguous).
func (b *Bundle) Encode() ([]byte, error) {
	if len(b.Workload) > MaxWorkloadLen {
		return nil, fmt.Errorf("%w: workload name %d bytes exceeds %d", ErrFormat, len(b.Workload), MaxWorkloadLen)
	}
	entries := append([]Entry(nil), b.Entries...)
	sort.Slice(entries, func(i, j int) bool {
		a, c := sigBytes(entries[i].Signature), sigBytes(entries[j].Signature)
		return bytes.Compare(a[:], c[:]) < 0
	})
	for i := 1; i < len(entries); i++ {
		if entries[i].Signature.Equal(entries[i-1].Signature) {
			return nil, fmt.Errorf("%w: duplicate signature %s", ErrFormat, entries[i].Signature.Hex())
		}
	}
	buf := make([]byte, 0, headerBytes+len(b.Workload)+vecBytes+4+len(entries)*entryBytes+checksumBytes)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, b.Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.CreatedUnix))
	buf = append(buf, byte(len(b.Workload)))
	buf = append(buf, b.Workload...)
	buf = putVec(buf, b.Default)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = putVec(buf, e.Signature)
		buf = putVec(buf, e.Config)
		var flags byte
		if e.Fallback {
			flags |= 1
		}
		buf = append(buf, flags)
	}
	b.checksum = fnvSum(buf)
	buf = binary.LittleEndian.AppendUint64(buf, b.checksum)
	return buf, nil
}

// fnvSum hashes data with FNV-1a 64.
func fnvSum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Decode parses and validates one encoded bundle. Every structural defect —
// bad magic, unknown format version, truncation, trailing bytes, unsorted
// or duplicate signatures, unknown flag bits — fails with an error wrapping
// ErrFormat; a content/checksum disagreement fails with ErrChecksum. A
// successfully decoded bundle re-encodes to the identical bytes.
func Decode(data []byte) (*Bundle, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrFormat, len(data), headerBytes)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:len(Magic)])
	}
	off := len(Magic)
	format := binary.LittleEndian.Uint16(data[off:])
	off += 2
	if format != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrFormat, format, FormatVersion)
	}
	b := &Bundle{}
	b.Version = binary.LittleEndian.Uint64(data[off:])
	off += 8
	b.CreatedUnix = int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	nameLen := int(data[off])
	off++
	if len(data) < off+nameLen+vecBytes+4 {
		return nil, fmt.Errorf("%w: truncated before entry table", ErrFormat)
	}
	b.Workload = string(data[off : off+nameLen])
	off += nameLen
	b.Default = getVec(data[off:])
	off += vecBytes
	count := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	want := off + count*entryBytes + checksumBytes
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d for %d entries", ErrFormat, len(data), want, count)
	}
	body := data[:len(data)-checksumBytes]
	sum := binary.LittleEndian.Uint64(data[len(data)-checksumBytes:])
	if got := fnvSum(body); got != sum {
		return nil, fmt.Errorf("%w: content hashes to %016x, trailer says %016x", ErrChecksum, got, sum)
	}
	b.Entries = make([]Entry, count)
	var prev [vecBytes]byte
	for i := range b.Entries {
		e := &b.Entries[i]
		e.Signature = getVec(data[off:])
		off += vecBytes
		e.Config = getVec(data[off:])
		off += vecBytes
		flags := data[off]
		off++
		if flags&^1 != 0 {
			return nil, fmt.Errorf("%w: entry %d has unknown flag bits %#x", ErrFormat, i, flags)
		}
		e.Fallback = flags&1 != 0
		sig := sigBytes(e.Signature)
		if i > 0 && bytes.Compare(prev[:], sig[:]) >= 0 {
			return nil, fmt.Errorf("%w: entry %d signature out of order or duplicated", ErrFormat, i)
		}
		prev = sig
	}
	b.checksum = sum
	return b, nil
}
