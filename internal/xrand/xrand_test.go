package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Derive("x", "y")
	b := New(42).Derive("x", "y")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical derivation paths diverge")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := New(42)
	a := root.Derive("a")
	b := root.Derive("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different paths produced %d identical values", same)
	}
}

func TestDeriveOrderInsensitive(t *testing.T) {
	// Deriving b after consuming values from the parent must not change b's
	// stream: derivation depends only on the seed and path.
	r1 := New(7)
	r1.Float64()
	r1.Float64()
	b1 := r1.Derive("child").Float64()
	b2 := New(7).Derive("child").Float64()
	if b1 != b2 {
		t.Fatal("derived stream depends on parent consumption")
	}
}

func TestReseedDerivedMatchesDerive(t *testing.T) {
	// ReseedDerived must land dst on exactly the stream Derive returns:
	// same derived seed, same draw sequence, for every path shape.
	paths := [][]string{
		{},
		{"node"},
		{"node", "tag17"},
		{"exec", "wlA/j3", "5"},
		{"", ""},
	}
	root := New(99)
	scratch := New(0)
	for _, p := range paths {
		fresh := root.Derive(p...)
		root.ReseedDerived(scratch, p...)
		if scratch.Seed() != fresh.Seed() {
			t.Fatalf("ReseedDerived(%q) seed %d, Derive seed %d", p, scratch.Seed(), fresh.Seed())
		}
		for i := 0; i < 50; i++ {
			if a, b := scratch.Int63(), fresh.Int63(); a != b {
				t.Fatalf("ReseedDerived(%q) draw %d = %d, Derive = %d", p, i, a, b)
			}
		}
	}
	// Reuse of the same scratch for a new path must fully reset the state.
	root.ReseedDerived(scratch, "other")
	fresh := root.Derive("other")
	for i := 0; i < 50; i++ {
		if a, b := scratch.Int63(), fresh.Int63(); a != b {
			t.Fatalf("reused scratch draw %d = %d, want %d", i, a, b)
		}
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a := New(11)
	b := New(11)
	var buf []int
	for n := 0; n <= 12; n++ {
		want := a.Perm(n)
		buf = b.PermInto(buf, n)
		if len(buf) != len(want) {
			t.Fatalf("PermInto(%d) length %d, want %d", n, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("PermInto(%d)[%d] = %d, Perm = %d", n, i, buf[i], want[i])
			}
		}
	}
}

func TestUniformBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %v out of range", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
}

func TestParetoAtLeastXm(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := New(4)
	const n = 20
	counts := make([]int, n)
	for i := 0; i < 20000; i++ {
		k := r.Zipf(n, 1.2)
		if k < 0 || k >= n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("Zipf not skewed: rank0=%d rank%d=%d", counts[0], n-1, counts[n-1])
	}
	if r.Zipf(1, 2) != 0 || r.Zipf(0, 2) != 0 {
		t.Fatal("degenerate Zipf should return 0")
	}
}

func TestPickWeights(t *testing.T) {
	r := New(5)
	w := []float64{0, 0, 10, 0}
	for i := 0; i < 100; i++ {
		if got := r.Pick(w); got != 2 {
			t.Fatalf("Pick of single-weight vector = %d", got)
		}
	}
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("Pick of all-zero weights = %d, want 0", got)
	}
	// Heavier weights drawn more often.
	w2 := []float64{1, 9}
	hits := 0
	for i := 0; i < 5000; i++ {
		if r.Pick(w2) == 1 {
			hits++
		}
	}
	frac := float64(hits) / 5000
	if math.Abs(frac-0.9) > 0.05 {
		t.Fatalf("Pick weight 9:1 hit fraction %v, want ~0.9", frac)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(6)
	got := r.Sample(10, 5)
	if len(got) != 5 {
		t.Fatalf("Sample(10,5) length %d", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("Sample value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("Sample returned duplicate %d", v)
		}
		seen[v] = true
	}
	if len(r.Sample(3, 10)) != 3 {
		t.Fatal("Sample with k>n should return n values")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / 10000
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestExpPositiveDeterministicMean(t *testing.T) {
	a := New(3).Derive("exp")
	b := New(3).Derive("exp")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := a.Exp(4)
		if x <= 0 {
			t.Fatalf("Exp returned %g, want > 0", x)
		}
		if y := b.Exp(4); y != x {
			t.Fatal("identical streams diverge on Exp")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp(4) mean %g, want ~0.25", mean)
	}
}

func TestExpBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}
