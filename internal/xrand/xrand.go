// Package xrand provides deterministic, splittable random number streams.
//
// Every stochastic component of steerq (workload generation, data statistics,
// configuration sampling, execution noise, model initialization) draws from a
// stream derived from a single experiment seed plus a textual path such as
// "workloadA/day3/job17". Equal paths yield equal streams, so experiments are
// reproducible and independent components do not perturb each other's
// randomness when code paths change.
package xrand

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with a seed
// derived from a root seed and a path, and offers the distributions used by
// the simulator.
type Source struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a stream for the given root seed. The underlying generator is
// materialized lazily on the first draw: a math/rand source is ~5KB of
// seeding work, and many derived streams (retry jitter on operations that
// never retry, for one) are constructed eagerly but never drawn from. The
// sequence is identical either way — rand.NewSource(seed) at first draw is
// exactly rand.NewSource(seed) at construction.
func New(seed uint64) *Source {
	return &Source{seed: seed}
}

// gen returns the stream's generator, seeding it on first use.
func (s *Source) gen() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(int64(s.seed)))
	}
	return s.rng
}

// Derive returns a new independent stream whose seed is a hash of the parent
// seed and the path components. Deriving the same path twice yields streams
// that produce identical sequences.
func (s *Source) Derive(path ...string) *Source {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(s.seed >> (8 * uint(i)))
	}
	h.Write(buf[:])
	for _, p := range path {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return New(h.Sum64())
}

// ReseedDerived repositions dst onto the stream that s.Derive(path...) would
// return, reusing dst's internal generator state instead of allocating a new
// one (a math/rand source is ~5KB). rand.Rand.Seed reinitializes exactly like
// rand.NewSource with the same seed, so the resulting sequence is identical
// to a freshly derived stream. dst must not be shared across goroutines.
func (s *Source) ReseedDerived(dst *Source, path ...string) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(s.seed >> (8 * uint(i))))
		h *= prime64
	}
	for _, p := range path {
		h ^= 0
		h *= prime64
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
	}
	dst.seed = h
	if dst.rng != nil {
		dst.rng.Seed(int64(h))
	}
	// A dst that has never drawn has no generator yet; gen() will seed it
	// from the updated seed on first use, which is the same sequence.
}

// Seed returns the stream's seed, useful for diagnostics.
func (s *Source) Seed() uint64 { return s.seed }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.gen().Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.gen().Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.gen().Float64() }

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.gen().Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.gen().NormFloat64()
}

// LogNormal returns a log-normally distributed float64 where the underlying
// normal has the given mu and sigma. Job runtimes in big-data clusters are
// approximately log-normal (Figure 2a), which is why the workload generator
// and the noise model both use this distribution.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). Inter-arrival gaps of a Poisson process are exponential,
// which is what the open-loop load generator schedules arrivals with. It
// panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		// steerq:allow-panic — programmer error, exactly like Intn(0).
		panic(fmt.Sprintf("xrand: Exp rate %g <= 0", rate))
	}
	return s.gen().ExpFloat64() / rate
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed sizes for inputs
// and skewed key frequencies.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.gen().Float64()
	for u == 0 {
		u = s.gen().Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns integers in [0, n) with a Zipf-like rank-frequency law of the
// given skew s (>0, larger is more skewed). Used to model hot join keys and
// the heavy-headed distribution of rule signatures (Figure 2d).
func (s *Source) Zipf(n int, skew float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF sampling over the (truncated) harmonic weights.
	// For the small n used here this is accurate and allocation-free
	// besides being perfectly deterministic.
	u := s.gen().Float64()
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), skew)
	}
	target := u * total
	var cum float64
	for i := 1; i <= n; i++ {
		cum += 1 / math.Pow(float64(i), skew)
		if cum >= target {
			return i - 1
		}
	}
	return n - 1
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.gen().Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.gen().Perm(n) }

// PermInto writes a pseudo-random permutation of [0, n) into dst, growing it
// only when capacity is short, and returns it. It consumes the stream with
// exactly the same draws as Perm (math/rand's inside-out shuffle), so hot
// paths can switch to a reusable buffer without perturbing any downstream
// randomness.
func (s *Source) PermInto(dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	// The i=0 iteration swaps dst[0] with itself but still consumes one
	// Intn draw — math/rand.Perm keeps it for stream compatibility, and so
	// must we.
	for i := 0; i < n; i++ {
		j := s.gen().Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.gen().Shuffle(n, swap) }

// Pick returns a uniformly chosen element index weighted by weights.
// Weights must be non-negative; if all are zero it returns 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	target := s.gen().Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if cum >= target {
			return i
		}
	}
	return len(weights) - 1
}

// Sample returns k distinct indices uniformly drawn from [0, n) in random
// order. If k >= n it returns a permutation of all n indices.
func (s *Source) Sample(n, k int) []int {
	p := s.gen().Perm(n)
	if k > n {
		k = n
	}
	return p[:k]
}
