package workload

import (
	"fmt"
	"strconv"
	"strings"

	"steerq/internal/xrand"
)

// fnum renders a float as a plain decimal literal the dialect's lexer
// accepts (no exponent form).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// shapeBuilder freezes the structure of one template of the given shape and
// returns its per-instance script renderer.
func (g *generator) shapeBuilder(shape string, r *xrand.Source) func(*xrand.Source) string {
	switch shape {
	case "cookRaw":
		return g.cookRaw(r)
	case "joinAgg":
		return g.joinAgg(r)
	case "multiJoin":
		return g.multiJoin(r)
	case "unionCook":
		return g.unionCook(r)
	case "reduceJob":
		return g.reduceJob(r)
	case "topDash":
		return g.topDash(r)
	case "multiOut":
		return g.multiOut(r)
	case "unionProcess":
		return g.unionProcess(r)
	}
	return g.cookRaw(r)
}

func (g *generator) pickFact(r *xrand.Source) factMeta {
	return g.facts[r.Intn(len(g.facts))]
}

func (g *generator) pickUDO(r *xrand.Source) string {
	return g.udos[r.Intn(len(g.udos))]
}

func outPath(r *xrand.Source, wl, shape string) string {
	return fmt.Sprintf("out/%s/%s_%06d", wl, shape, r.Intn(1e6))
}

// cookRaw: filter a raw fact stream, optionally cook it with a UDO.
func (g *generator) cookRaw(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	key := f.keys[r.Intn(len(f.keys))].name
	m := f.measures[r.Intn(len(f.measures))]
	cols := strings.Join([]string{key, m, f.filters[0]}, ", ")
	preds := g.predsFor(r, f, 1+r.Intn(3))
	useUDO := r.Bool(0.7)
	udo := g.pickUDO(r)
	computed := r.Bool(0.4)
	out := outPath(r, g.profile.Name, "cook")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "src = SELECT %s FROM \"%s\" WHERE %s;\n", cols, f.name, renderPreds(ir, preds))
		last := "src"
		if computed {
			fmt.Fprintf(&b, "proj = SELECT %s, %s * %s AS scaled FROM src;\n", key, m, fnum(1+ir.Float64()))
			last = "proj"
		}
		if useUDO {
			fmt.Fprintf(&b, "cooked = PROCESS %s USING %s;\n", last, udo)
			last = "cooked"
		}
		fmt.Fprintf(&b, "OUTPUT %s TO \"%s\";\n", last, out)
		return b.String()
	}
}

// joinAgg: filter a fact, join a dimension, aggregate. Two frozen variants:
// grouping by the dimension attribute, or grouping by the fact-side join key
// with the dimension as an enrichment filter — the latter is the pattern the
// off-by-default GroupbyOnJoin (eager aggregation) rule targets.
func (g *generator) joinAgg(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	d, key, ok := g.dimFor(r, f)
	if !ok {
		return g.cookRaw(r)
	}
	m := f.measures[r.Intn(len(f.measures))]
	attr := d.attrs[r.Intn(len(d.attrs))]
	preds := g.predsFor(r, f, 1+r.Intn(3))
	byKey := r.Bool(0.5)
	out := outPath(r, g.profile.Name, "joinagg")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "f = SELECT %s, %s FROM \"%s\" WHERE %s;\n", key.name, m, f.name, renderPreds(ir, preds))
		fmt.Fprintf(&b, "j = SELECT f.%s AS %s, d.%s AS %s, f.%s AS %s FROM f INNER JOIN \"%s\" AS d ON f.%s == d.%s;\n",
			key.name, key.name, attr, attr, m, m, d.name, key.name, key.name)
		if byKey {
			fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM j GROUP BY %s;\n", key.name, m, key.name)
		} else {
			fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM j GROUP BY %s;\n", attr, m, attr)
		}
		fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out)
		return b.String()
	}
}

// multiJoin: fact joined with two dimensions, or a dimension plus a second
// fact, then aggregated.
func (g *generator) multiJoin(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	if len(f.keys) < 2 {
		return g.joinAgg(r)
	}
	d1, key1, ok := g.dimFor(r, f)
	if !ok {
		return g.cookRaw(r)
	}
	// Second key distinct from the first.
	var key2 keyDomain
	for _, k := range f.keys {
		if k.name != key1.name {
			key2 = k
			break
		}
	}
	if key2.name == "" {
		return g.joinAgg(r)
	}
	m := f.measures[r.Intn(len(f.measures))]
	a1 := d1.attrs[r.Intn(len(d1.attrs))]
	preds := g.predsFor(r, f, 1+r.Intn(3))
	out := outPath(r, g.profile.Name, "multijoin")

	// Prefer a second dimension on key2; fall back to a fact-fact join.
	var d2 dimMeta
	haveD2 := false
	for _, d := range g.dims {
		if d.key.name == key2.name && d.name != d1.name {
			d2 = d
			haveD2 = true
			break
		}
	}
	if haveD2 {
		a2 := d2.attrs[r.Intn(len(d2.attrs))]
		return func(ir *xrand.Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "f = SELECT %s, %s, %s FROM \"%s\" WHERE %s;\n", key1.name, key2.name, m, f.name, renderPreds(ir, preds))
			fmt.Fprintf(&b, "j1 = SELECT f.%s AS %s, f.%s AS %s, f.%s AS %s, d1.%s AS attr1 FROM f INNER JOIN \"%s\" AS d1 ON f.%s == d1.%s;\n",
				key1.name, key1.name, key2.name, key2.name, m, m, a1, d1.name, key1.name, key1.name)
			fmt.Fprintf(&b, "j2 = SELECT j1.%s AS %s, j1.attr1 AS attr1, d2.%s AS attr2 FROM j1 INNER JOIN \"%s\" AS d2 ON j1.%s == d2.%s;\n",
				m, m, a2, d2.name, key2.name, key2.name)
			fmt.Fprintf(&b, "a = SELECT attr1, attr2, SUM(%s) AS total, COUNT(*) AS cnt FROM j2 GROUP BY attr1, attr2;\n", m)
			fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out)
			return b.String()
		}
	}
	// Fact-fact join on the shared second key.
	partners := g.factsSharingKey(r, f, key2, 2)
	if len(partners) < 2 {
		return g.joinAgg(r)
	}
	f2 := partners[1]
	m2 := f2.measures[r.Intn(len(f2.measures))]
	preds2 := g.predsFor(r, f2, 1+r.Intn(2))
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "f = SELECT %s, %s, %s FROM \"%s\" WHERE %s;\n", key1.name, key2.name, m, f.name, renderPreds(ir, preds))
		fmt.Fprintf(&b, "j1 = SELECT f.%s AS %s, f.%s AS %s, f.%s AS %s, d1.%s AS %s FROM f INNER JOIN \"%s\" AS d1 ON f.%s == d1.%s;\n",
			key1.name, key1.name, key2.name, key2.name, m, m, a1, a1, d1.name, key1.name, key1.name)
		fmt.Fprintf(&b, "f2 = SELECT %s, %s FROM \"%s\" WHERE %s;\n", key2.name, m2, f2.name, renderPreds(ir, preds2))
		fmt.Fprintf(&b, "j2 = SELECT j1.%s AS %s, j1.%s AS %s, f2.%s AS other FROM j1 INNER JOIN f2 ON j1.%s == f2.%s;\n",
			a1, a1, m, m, m2, key2.name, key2.name)
		fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, SUM(other) AS total2 FROM j2 GROUP BY %s;\n", a1, m, a1)
		fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out)
		return b.String()
	}
}

// unionCook: union several filtered facts sharing a key, then either join a
// dimension and aggregate, or aggregate directly on the key. Exercises the
// union-all rule families (SelectOnUnionAll, GroupbyBelowUnionAll,
// CorrelatedJoinOnUnionAll, UnionAllToVirtualDataset vs UnionAllToUnionAll).
func (g *generator) unionCook(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	key := f.keys[r.Intn(len(f.keys))]
	branches := g.factsSharingKey(r, f, key, 2+r.Intn(3))
	if len(branches) < 2 {
		return g.joinAgg(r)
	}
	type branchSpec struct {
		fact  factMeta
		m     string
		preds []predSpec
	}
	specs := make([]branchSpec, len(branches))
	for i, bf := range branches {
		specs[i] = branchSpec{
			fact:  bf,
			m:     bf.measures[r.Intn(len(bf.measures))],
			preds: g.predsFor(r, bf, 1+r.Intn(2)),
		}
	}
	d, _, haveDim := g.dimFor(r, f)
	useDim := haveDim && r.Bool(0.6)
	var attr string
	if useDim {
		attr = d.attrs[r.Intn(len(d.attrs))]
		if d.key.name != key.name {
			useDim = false
		}
	}
	// A third frozen variant takes a top-N directly over the union — the
	// pattern the off-by-default TopOnUnionAll rule targets.
	useTop := !useDim && r.Bool(0.4)
	topN := 10 * (1 + r.Intn(30))
	mName := specs[0].m // union output takes branch-1 names
	out := outPath(r, g.profile.Name, "unioncook")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = fmt.Sprintf("b%d", i+1)
			fmt.Fprintf(&b, "%s = SELECT %s, %s FROM \"%s\" WHERE %s;\n",
				names[i], key.name, s.m, s.fact.name, renderPreds(ir, s.preds))
		}
		fmt.Fprintf(&b, "u = %s;\n", strings.Join(names, " UNION ALL "))
		switch {
		case useDim:
			fmt.Fprintf(&b, "j = SELECT u.%s AS %s, d.%s AS %s, u.%s AS %s FROM u INNER JOIN \"%s\" AS d ON u.%s == d.%s;\n",
				key.name, key.name, attr, attr, mName, mName, d.name, key.name, key.name)
			fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM j GROUP BY %s;\n", attr, mName, attr)
		case useTop:
			fmt.Fprintf(&b, "a = SELECT TOP %d %s, %s FROM u ORDER BY %s DESC;\n", topN, key.name, mName, mName)
		default:
			fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM u GROUP BY %s;\n", key.name, mName, key.name)
		}
		fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out)
		return b.String()
	}
}

// reduceJob: filter then apply a user-defined reducer per key group.
func (g *generator) reduceJob(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	key := f.keys[r.Intn(len(f.keys))].name
	m0 := f.measures[0]
	preds := g.predsFor(r, f, 1+r.Intn(2))
	udo := g.pickUDO(r)
	out := outPath(r, g.profile.Name, "reduce")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "f = SELECT %s, %s FROM \"%s\" WHERE %s;\n", key, m0, f.name, renderPreds(ir, preds))
		fmt.Fprintf(&b, "rj = REDUCE f ON %s USING %s;\n", key, udo)
		fmt.Fprintf(&b, "OUTPUT rj TO \"%s\";\n", out)
		return b.String()
	}
}

// topDash: join + aggregate + top-N, the dashboard-population pattern.
func (g *generator) topDash(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	d, key, ok := g.dimFor(r, f)
	if !ok {
		return g.cookRaw(r)
	}
	m := f.measures[r.Intn(len(f.measures))]
	attr := d.attrs[r.Intn(len(d.attrs))]
	preds := g.predsFor(r, f, 1+r.Intn(3))
	topN := 10 * (1 + r.Intn(50))
	out := outPath(r, g.profile.Name, "topdash")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "f = SELECT %s, %s FROM \"%s\" WHERE %s;\n", key.name, m, f.name, renderPreds(ir, preds))
		fmt.Fprintf(&b, "j = SELECT f.%s AS %s, d.%s AS %s, f.%s AS %s FROM f INNER JOIN \"%s\" AS d ON f.%s == d.%s;\n",
			key.name, key.name, attr, attr, m, m, d.name, key.name, key.name)
		fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total FROM j GROUP BY %s;\n", attr, m, attr)
		fmt.Fprintf(&b, "t = SELECT TOP %d %s, total FROM a ORDER BY total DESC;\n", topN, attr)
		fmt.Fprintf(&b, "OUTPUT t TO \"%s\";\n", out)
		return b.String()
	}
}

// multiOut: one cooked intermediate written raw and aggregated — a DAG job
// with two outputs.
func (g *generator) multiOut(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	key := f.keys[r.Intn(len(f.keys))].name
	m := f.measures[r.Intn(len(f.measures))]
	preds := g.predsFor(r, f, 1+r.Intn(2))
	udo := g.pickUDO(r)
	out1 := outPath(r, g.profile.Name, "raw")
	out2 := outPath(r, g.profile.Name, "agg")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		fmt.Fprintf(&b, "f = SELECT %s, %s FROM \"%s\" WHERE %s;\n", key, m, f.name, renderPreds(ir, preds))
		fmt.Fprintf(&b, "p = PROCESS f USING %s;\n", udo)
		fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM p GROUP BY %s;\n", key, m, key)
		fmt.Fprintf(&b, "OUTPUT p TO \"%s\";\n", out1)
		fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out2)
		return b.String()
	}
}

// unionProcess: union several facts, run a UDO over the union, aggregate.
func (g *generator) unionProcess(r *xrand.Source) func(*xrand.Source) string {
	f := g.pickFact(r)
	key := f.keys[r.Intn(len(f.keys))]
	branches := g.factsSharingKey(r, f, key, 2+r.Intn(3))
	if len(branches) < 2 {
		return g.reduceJob(r)
	}
	type branchSpec struct {
		fact  factMeta
		m     string
		preds []predSpec
	}
	specs := make([]branchSpec, len(branches))
	for i, bf := range branches {
		specs[i] = branchSpec{
			fact:  bf,
			m:     bf.measures[r.Intn(len(bf.measures))],
			preds: g.predsFor(r, bf, 1+r.Intn(2)),
		}
	}
	udo := g.pickUDO(r)
	mName := specs[0].m
	out := outPath(r, g.profile.Name, "unionproc")
	return func(ir *xrand.Source) string {
		var b strings.Builder
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = fmt.Sprintf("b%d", i+1)
			fmt.Fprintf(&b, "%s = SELECT %s, %s FROM \"%s\" WHERE %s;\n",
				names[i], key.name, s.m, s.fact.name, renderPreds(ir, s.preds))
		}
		fmt.Fprintf(&b, "u = %s;\n", strings.Join(names, " UNION ALL "))
		fmt.Fprintf(&b, "pu = PROCESS u USING %s;\n", udo)
		fmt.Fprintf(&b, "a = SELECT %s, SUM(%s) AS total, COUNT(*) AS cnt FROM pu GROUP BY %s;\n", key.name, mName, key.name)
		fmt.Fprintf(&b, "OUTPUT a TO \"%s\";\n", out)
		return b.String()
	}
}
