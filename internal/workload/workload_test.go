package workload

import (
	"sort"
	"testing"

	"steerq/internal/cascades"
	"steerq/internal/cost"
	"steerq/internal/exec"
	"steerq/internal/plan"
	"steerq/internal/rules"
)

func TestDayDeterministic(t *testing.T) {
	w1 := Generate(ProfileA(0.001, 42))
	w2 := Generate(ProfileA(0.001, 42))
	j1 := w1.Day(0)
	j2 := w2.Day(0)
	if len(j1) != len(j2) {
		t.Fatalf("day sizes differ: %d vs %d", len(j1), len(j2))
	}
	for i := range j1 {
		if j1[i].Script != j2[i].Script {
			t.Fatalf("job %d scripts differ", i)
		}
		if j1[i].InstanceHash != j2[i].InstanceHash {
			t.Fatalf("job %d instance hashes differ", i)
		}
	}
}

func TestDaysDiffer(t *testing.T) {
	w := Generate(ProfileA(0.001, 42))
	d0 := w.Day(0)
	d1 := w.Day(1)
	same := 0
	for i := range d0 {
		if i < len(d1) && d0[i].InstanceHash == d1[i].InstanceHash {
			same++
		}
	}
	if same == len(d0) {
		t.Fatal("consecutive days generated identical instances")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Generate(ProfileA(0.001, 1)).Day(0)
	b := Generate(ProfileA(0.001, 2)).Day(0)
	if a[0].Script == b[0].Script {
		t.Fatal("different seeds generated identical first jobs")
	}
}

func TestTemplateRecurrence(t *testing.T) {
	w := Generate(ProfileA(0.002, 42))
	// Instances of the same template share the TemplateHash but (usually)
	// not the InstanceHash.
	byTemplate := make(map[int][]*Job)
	for d := 0; d < 3; d++ {
		for _, j := range w.Day(d) {
			byTemplate[j.Template] = append(byTemplate[j.Template], j)
		}
	}
	checked := 0
	for _, jobs := range byTemplate {
		if len(jobs) < 2 {
			continue
		}
		checked++
		for _, j := range jobs[1:] {
			if j.TemplateHash != jobs[0].TemplateHash {
				t.Fatalf("template %d instances hash differently", j.Template)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no recurring templates in three days")
	}
}

func TestAllJobsCompileAndOptimize(t *testing.T) {
	for _, p := range []Profile{ProfileA(0.001, 7), ProfileB(0.002, 7), ProfileC(0.001, 7)} {
		w := Generate(p)
		opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
		cfg := opt.Rules.DefaultConfig()
		for _, j := range w.Day(0) {
			if j.Root == nil {
				t.Fatalf("%s: nil plan", j.ID)
			}
			if _, err := opt.Optimize(j.Root, cfg); err != nil {
				t.Fatalf("%s fails to optimize: %v\n%s", j.ID, err, j.Script)
			}
		}
	}
}

func TestDayStats(t *testing.T) {
	w := Generate(ProfileA(0.002, 42))
	jobs := w.Day(0)
	st := DayStats(jobs)
	if st.Jobs != len(jobs) {
		t.Fatalf("stats jobs %d != %d", st.Jobs, len(jobs))
	}
	if st.UniqueTemplates == 0 || st.UniqueTemplates > st.Jobs {
		t.Fatalf("unique templates %d out of range", st.UniqueTemplates)
	}
	if st.UniqueInputs == 0 || st.UniqueInputs > st.Jobs {
		t.Fatalf("unique inputs %d out of range", st.UniqueInputs)
	}
	// Recurrence: noticeably fewer templates than jobs.
	if st.UniqueTemplates == st.Jobs {
		t.Fatal("no template recurred within the day")
	}
}

// TestRuntimeDistribution calibrates the Figure 2a shape: a heavy-tailed
// runtime distribution where a small fraction of jobs runs long and holds a
// disproportionate share of the containers.
func TestRuntimeDistribution(t *testing.T) {
	w := Generate(ProfileA(0.002, 42))
	jobs := w.Day(0)
	opt := rules.NewOptimizer(cost.NewEstimated(w.Cat))
	cfg := opt.Rules.DefaultConfig()
	ex := exec.New(w.Cat, 7)
	var rts []float64
	var total, long float64
	over5 := 0
	for _, j := range jobs {
		res, err := opt.Optimize(j.Root, cfg)
		if err != nil {
			t.Fatalf("%s: %v", j.ID, err)
		}
		m := ex.Run(res.Plan, j.Day, j.ID)
		rts = append(rts, m.RuntimeSec)
		total += m.VertexSeconds
		if m.RuntimeSec > 300 {
			over5++
			long += m.VertexSeconds
		}
	}
	sort.Float64s(rts)
	med := rts[len(rts)/2]
	max := rts[len(rts)-1]
	frac := float64(over5) / float64(len(rts))
	if frac < 0.03 || frac > 0.45 {
		t.Errorf("fraction of >5min jobs %.2f outside the Figure 2a ballpark", frac)
	}
	if max < 10*med {
		t.Errorf("runtime tail too light: median %.0fs max %.0fs", med, max)
	}
	if share := long / total; share < frac {
		t.Errorf("long jobs hold %.0f%% of containers for %.0f%% of jobs; expected disproportionate share",
			100*share, 100*frac)
	}
}

func TestJobInputsMatchHashes(t *testing.T) {
	w := Generate(ProfileA(0.001, 42))
	for _, j := range w.Day(0)[:20] {
		if j.InputsHash != plan.InputsHash(j.Root) {
			t.Fatalf("%s: stale inputs hash", j.ID)
		}
		if j.TemplateHash != plan.TemplateHash(j.Root) {
			t.Fatalf("%s: stale template hash", j.ID)
		}
	}
}

func TestShapeMixCoversFamilies(t *testing.T) {
	w := Generate(ProfileA(0.005, 42))
	shapes := make(map[string]bool)
	for _, tpl := range w.Templates {
		shapes[tpl.Shape] = true
	}
	// At a reasonable scale every shape family should be represented.
	for _, s := range shapeNames {
		if !shapes[s] {
			t.Errorf("shape %s absent from the template pool", s)
		}
	}
}

func TestSubmittedConfig(t *testing.T) {
	rs := rules.Catalog()
	def := rs.DefaultConfig()
	j := &Job{Hints: []int{rules.IDCorrelatedJoinOnUnionAll1, rules.IDJoinImpl2}}
	cfg := j.SubmittedConfig(def)
	if !cfg.Get(rules.IDCorrelatedJoinOnUnionAll1) {
		t.Fatal("off-by-default hint not enabled")
	}
	if cfg.Get(rules.IDJoinImpl2) {
		t.Fatal("on-by-default hint not disabled")
	}
	// Unhinted jobs submit the default.
	if !(&Job{}).SubmittedConfig(def).Equal(def) {
		t.Fatal("unhinted job altered the default")
	}
}

func TestSomeTemplatesCarryHints(t *testing.T) {
	w := Generate(ProfileA(0.01, 2021))
	hinted := 0
	for _, tpl := range w.Templates {
		if len(tpl.hints) > 0 {
			hinted++
		}
	}
	if hinted == 0 {
		t.Fatal("no hinted templates generated")
	}
	if hinted > len(w.Templates)/4 {
		t.Fatalf("%d of %d templates hinted; hints should be rare", hinted, len(w.Templates))
	}
	// Hints reference real non-required rules.
	rs := rules.Catalog()
	for _, tpl := range w.Templates {
		for _, id := range tpl.hints {
			ri, ok := rs.Info(id)
			if !ok {
				t.Fatalf("hint references unknown rule %d", id)
			}
			if ri.Category == cascades.Required {
				t.Fatalf("hint toggles required rule %s", ri)
			}
		}
	}
}
