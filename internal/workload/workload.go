// Package workload generates the three production-like workloads the paper
// evaluates on (Table 1): daily arrivals of recurring SCOPE jobs drawn from a
// pool of templates over a shared data lake.
//
// The real workloads are proprietary (95K/15K/40K daily jobs sampled from
// Microsoft clusters); the generators reproduce their *distributional*
// structure at a configurable scale (default 1:100):
//
//   - recurring templates, each arriving one-to-many times per day with
//     varied predicate constants and daily-evolving inputs (§3.1.1);
//   - job shapes mixing relational operators, UNION ALL and user-defined
//     PROCESS/REDUCE operators, tens to hundreds of operators per job;
//   - heavy-tailed input sizes, so ~10% of jobs run longer than five minutes
//     and consume ~90% of the containers (Figure 2a);
//   - hot keys, correlated filter columns and opaque UDOs — the error
//     classes that make steering profitable.
package workload

import (
	"fmt"

	"steerq/internal/bitvec"
	"steerq/internal/catalog"
	"steerq/internal/plan"
	"steerq/internal/scopeql"
	"steerq/internal/xrand"
)

// Job is one instantiated job: a script bound against the workload's catalog,
// plus the identifiers Table 1 counts.
type Job struct {
	// ID is unique per instance, e.g. "A/d3/j17".
	ID       string
	Workload string
	Day      int
	Template int
	Script   string
	Root     *plan.Node

	// TemplateHash identifies the recurring template (structure minus
	// variable values, §3.1.1); InstanceHash additionally covers the
	// constants; InputsHash identifies the set of input streams read.
	TemplateHash uint64
	InstanceHash uint64
	InputsHash   uint64

	// Hints lists rule IDs the submitting customer toggles away from the
	// default — "rule flags are already available and often used by
	// customers" (§3.3). Empty for most jobs. Consumers build the job's
	// submitted configuration by flipping these bits on the default.
	Hints []int
}

// Workload is a generated workload: a catalog plus a template pool.
type Workload struct {
	Name      string
	Cat       *catalog.Catalog
	Templates []*Template

	// JobsPerDay is the expected number of daily arrivals.
	JobsPerDay int

	seed uint64
}

// Template is one recurring job template.
type Template struct {
	ID    int
	Shape string
	// build renders the script for one instance; the constants vary per
	// (day, instance) while the structure is frozen.
	build func(r *xrand.Source) string
	// weight is the template's relative daily arrival rate; a few
	// templates recur heavily (the paper observes rule-signature groups
	// with ~1000 jobs/day), most arrive once or twice.
	weight float64
	// hints are the customer rule toggles frozen into the template's
	// submissions (most templates have none).
	hints []int
}

// Weight exposes the template's relative daily arrival rate (1 for a
// typical template; Zipf or heavy-template profiles push hot templates far
// above it) for skew-aware consumers like the scaling benchmark.
func (t *Template) Weight() float64 { return t.weight }

// Day instantiates the workload's jobs for one day, deterministically.
func (w *Workload) Day(day int) []*Job {
	r := xrand.New(w.seed).Derive("day", fmt.Sprint(day))
	weights := make([]float64, len(w.Templates))
	for i, t := range w.Templates {
		weights[i] = t.weight
	}
	n := w.JobsPerDay
	jobs := make([]*Job, 0, n)
	for j := 0; j < n; j++ {
		ti := r.Pick(weights)
		t := w.Templates[ti]
		script := t.build(r.Derive("job", fmt.Sprint(j)))
		root, err := scopeql.Compile(script, w.Cat)
		if err != nil {
			// Generator and dialect are co-designed; a bind failure is a
			// generator bug worth failing loudly on.
			// steerq:allow-panic — see above; every template binds in tests.
			panic(fmt.Sprintf("workload %s day %d template %d: %v\nscript:\n%s", w.Name, day, t.ID, err, script))
		}
		jobs = append(jobs, &Job{
			ID:           fmt.Sprintf("%s/d%d/j%d", w.Name, day, j),
			Workload:     w.Name,
			Day:          day,
			Template:     t.ID,
			Script:       script,
			Root:         root,
			TemplateHash: plan.TemplateHash(root),
			InstanceHash: plan.InstanceHash(root),
			InputsHash:   plan.InputsHash(root),
			Hints:        t.hints,
		})
	}
	return jobs
}

// Stats summarizes a day of jobs the way Table 1 does.
type Stats struct {
	Jobs            int
	UniqueTemplates int
	UniqueInputs    int
}

// DayStats computes Table 1-style counts for a slice of jobs.
func DayStats(jobs []*Job) Stats {
	t := make(map[uint64]bool)
	in := make(map[uint64]bool)
	for _, j := range jobs {
		t[j.TemplateHash] = true
		in[j.InputsHash] = true
	}
	return Stats{Jobs: len(jobs), UniqueTemplates: len(t), UniqueInputs: len(in)}
}

// SubmittedConfig returns the rule configuration the job is submitted with:
// the default configuration with the job's customer hints toggled.
func (j *Job) SubmittedConfig(def bitvec.Vector) bitvec.Vector {
	cfg := def
	for _, id := range j.Hints {
		cfg.Assign(id, !def.Get(id))
	}
	return cfg
}
