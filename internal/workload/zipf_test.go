package workload_test

import (
	"math"
	"testing"

	"steerq/internal/workload"
)

func TestZipfWeightsShapeAndScale(t *testing.T) {
	const n, s = 100, 1.1
	w := workload.ZipfWeights(n, s)
	if len(w) != n {
		t.Fatalf("len = %d, want %d", len(w), n)
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight[%d] = %v, want positive", i, v)
		}
		if i > 0 && v > w[i-1] {
			t.Fatalf("weights not decreasing at rank %d: %v > %v", i, v, w[i-1])
		}
		sum += v
	}
	if math.Abs(sum-float64(n)) > 1e-9 {
		t.Fatalf("weights sum to %v, want %d (mean 1 keeps volume fixed)", sum, n)
	}
	// The law itself: w[k]/w[0] = (k+1)^-s.
	for _, k := range []int{1, 9, 99} {
		want := math.Pow(float64(k+1), -s)
		if got := w[k] / w[0]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("w[%d]/w[0] = %v, want %v", k, got, want)
		}
	}
}

// TestZipfDayConcentration: at s=1.1 a day's arrivals must concentrate —
// the most popular template should take a far larger share than under the
// default two-tier mix — while both modes produce the same job count.
func TestZipfDayConcentration(t *testing.T) {
	base := workload.ProfileB(0.02, 7)
	uniform := workload.Generate(base)
	zipf := workload.Generate(base.WithZipf(1.1))

	share := func(w *workload.Workload) (float64, int) {
		jobs := w.Day(0)
		counts := map[int]int{}
		for _, j := range jobs {
			counts[j.Template]++
		}
		top := 0
		for _, c := range counts {
			if c > top {
				top = c
			}
		}
		return float64(top) / float64(len(jobs)), len(jobs)
	}
	uShare, uJobs := share(uniform)
	zShare, zJobs := share(zipf)
	if uJobs != zJobs {
		t.Fatalf("job volume changed: %d vs %d", uJobs, zJobs)
	}
	if zShare <= uShare {
		t.Fatalf("zipf top-template share %.3f not above uniform %.3f", zShare, uShare)
	}
	if zShare < 0.05 {
		t.Fatalf("zipf top-template share %.3f too flat for s=1.1", zShare)
	}
}

// TestZipfDeterministicAndSeedSensitive: the hot ranking is a pure function
// of the profile seed — same seed, same day byte-for-byte; different seed,
// different hot template (almost surely).
func TestZipfDeterministicAndSeedSensitive(t *testing.T) {
	p := workload.ProfileB(0.02, 7).WithZipf(1.2)
	a := workload.Generate(p).Day(0)
	b := workload.Generate(p).Day(0)
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Script != b[i].Script || a[i].Template != b[i].Template {
			t.Fatalf("job %d differs across identical generations", i)
		}
	}
	hot := func(jobs []*workload.Job) int {
		counts := map[int]int{}
		for _, j := range jobs {
			counts[j.Template]++
		}
		best, top := -1, -1
		for ti, c := range counts {
			if c > top || (c == top && ti < best) {
				best, top = ti, c
			}
		}
		return best
	}
	p2 := workload.ProfileB(0.02, 1234).WithZipf(1.2)
	c := workload.Generate(p2).Day(0)
	if hot(a) == hot(c) && a[0].Script == c[0].Script {
		t.Fatal("different seeds produced an identical zipf day")
	}
}

// TestZipfTemplateWeights: the template pool's weights follow the ranked
// Zipf law — some template holds the rank-0 weight, and the multiset of
// weights equals ZipfWeights(n, s).
func TestZipfTemplateWeights(t *testing.T) {
	const s = 1.3
	p := workload.ProfileA(0.005, 3).WithZipf(s)
	w := workload.Generate(p)
	want := workload.ZipfWeights(len(w.Templates), s)
	got := make([]float64, 0, len(w.Templates))
	for _, tpl := range w.Templates {
		got = append(got, tpl.Weight())
	}
	used := make([]bool, len(want))
	for _, g := range got {
		found := false
		for i, v := range want {
			if !used[i] && math.Abs(v-g) < 1e-12 {
				used[i], found = true, true
				break
			}
		}
		if !found {
			t.Fatalf("template weight %v not in the zipf weight multiset", g)
		}
	}
}

// TestZipfProbsSumAndMonotone is the load-generator half of the law: the
// per-request draw distribution must be a genuine probability vector (sums to
// 1) that is rank-monotone, with s=0 the exact uniform limit.
func TestZipfProbsSumAndMonotone(t *testing.T) {
	const n, s = 64, 1.1
	p := workload.ZipfProbs(n, s)
	if len(p) != n {
		t.Fatalf("len = %d, want %d", len(p), n)
	}
	var sum float64
	for i, v := range p {
		if v <= 0 {
			t.Fatalf("prob[%d] = %v, want positive", i, v)
		}
		if i > 0 && v > p[i-1] {
			t.Fatalf("probs not rank-monotone at %d: %v > %v", i, v, p[i-1])
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %v, want 1", sum)
	}
	// Same law as ZipfWeights, just normalized differently.
	w := workload.ZipfWeights(n, s)
	for _, k := range []int{1, 7, 63} {
		if got, want := p[k]/p[0], w[k]/w[0]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("p[%d]/p[0] = %v, want %v", k, got, want)
		}
	}
	for i, v := range workload.ZipfProbs(5, 0) {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("uniform limit prob[%d] = %v, want 0.2", i, v)
		}
	}
}
