package workload

import (
	"fmt"
	"math"
	"strings"

	"steerq/internal/catalog"
	"steerq/internal/rules"
	"steerq/internal/xrand"
)

// Profile parameterizes one workload generator. The three built-in profiles
// (A, B, C) differ in scale, shape mix and size distribution the way the
// paper's three production workloads differ.
type Profile struct {
	Name string
	Seed uint64

	// Scale multiplies the paper's daily job counts (1.0 = 95K jobs/day
	// for A). The default experiments use 0.01.
	Scale float64

	// JobsPerDayFull is the paper-scale daily job count.
	JobsPerDayFull int
	// TemplatesFull is the paper-scale template count.
	TemplatesFull int

	// FactStreamsPerTemplate and DimStreams size the data lake.
	FactStreamsPerTemplate float64
	DimStreams             int

	// SizeMu/SizeSigma parameterize the log-normal fact-stream row counts.
	SizeMu, SizeSigma float64

	// HeavyTemplateFrac is the fraction of templates that recur many times
	// per day (the recurring pipelines behind Figure 1).
	HeavyTemplateFrac float64
	HeavyWeight       float64

	// ZipfSkew, when positive, replaces the two-tier heavy/normal
	// popularity model with a Zipf(s) law over a seeded random ranking of
	// the templates: the rank-k template arrives ∝ 1/k^s. This is the
	// serving-skew regime of the production deployments — Table 1's
	// workloads map tens of thousands of daily jobs onto a few hundred
	// rule-signature groups, with single hot groups near 1000 jobs/day;
	// s in [1.0, 1.2] reproduces that top-group share at workload-B scale.
	// Total daily volume is unchanged: weights are normalized to mean 1.
	ZipfSkew float64

	// ShapeWeights orders: cookRaw, joinAgg, multiJoin, unionCook,
	// reduceJob, topDash, multiOut, unionProcess.
	ShapeWeights []float64
}

// WithZipf returns a copy of the profile with ZipfSkew set — the knob the
// scaling benchmark and the skew experiments use to turn a uniform-ish
// workload into a hot-template one without touching anything else.
func (p Profile) WithZipf(s float64) Profile {
	p.ZipfSkew = s
	return p
}

// ZipfWeights returns the n popularity weights of a Zipf(s) law over ranks
// 1..n, scaled so the mean weight is 1: weight[k] ∝ (k+1)^-s. Scaling to
// mean 1 keeps a profile's total arrival volume fixed while concentrating
// it — only the shape of the popularity curve changes with s.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// ZipfProbs returns the Zipf(s) popularity law over ranks 1..n as a
// probability vector: prob[k] ∝ (k+1)^-s, normalized to sum to 1. The load
// generator draws request signatures from this — ZipfWeights scales the same
// law to mean 1 for arrival *volumes*, ZipfProbs to total 1 for per-request
// *draws*. s=0 is the uniform limit.
func ZipfProbs(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Shape names, indexing ShapeWeights.
var shapeNames = []string{
	"cookRaw", "joinAgg", "multiJoin", "unionCook",
	"reduceJob", "topDash", "multiOut", "unionProcess",
}

// ProfileA mirrors Workload A: the largest and most heterogeneous workload.
func ProfileA(scale float64, seed uint64) Profile {
	return Profile{
		Name: "A", Seed: seed, Scale: scale,
		JobsPerDayFull: 95000, TemplatesFull: 48000,
		FactStreamsPerTemplate: 0.55, DimStreams: 40,
		SizeMu: math.Log(2.5e8), SizeSigma: 1.9,
		HeavyTemplateFrac: 0.015, HeavyWeight: 40,
		ShapeWeights: []float64{2, 3, 2, 2.5, 1.5, 1.5, 1, 1.5},
	}
}

// ProfileB mirrors Workload B: smaller, more homogeneous (15K jobs map to
// only 837 rule signatures), with heavily recurring pipelines.
func ProfileB(scale float64, seed uint64) Profile {
	return Profile{
		Name: "B", Seed: seed, Scale: scale,
		JobsPerDayFull: 15000, TemplatesFull: 10500,
		FactStreamsPerTemplate: 0.5, DimStreams: 16,
		SizeMu: math.Log(4e8), SizeSigma: 1.5,
		HeavyTemplateFrac: 0.05, HeavyWeight: 25,
		ShapeWeights: []float64{1, 4, 2, 3, 0.5, 1, 0.5, 2},
	}
}

// ProfileC mirrors Workload C: mid-sized with longer-running jobs (so
// percentage improvements are smaller, §6.2).
func ProfileC(scale float64, seed uint64) Profile {
	return Profile{
		Name: "C", Seed: seed, Scale: scale,
		JobsPerDayFull: 40000, TemplatesFull: 22000,
		FactStreamsPerTemplate: 0.5, DimStreams: 24,
		SizeMu: math.Log(1.2e9), SizeSigma: 1.3,
		HeavyTemplateFrac: 0.02, HeavyWeight: 30,
		ShapeWeights: []float64{1.5, 3, 2.5, 2, 1.5, 1.5, 1, 1.5},
	}
}

// Generate builds the workload for a profile: the data lake catalog and the
// template pool. Everything is deterministic in the profile's seed.
func Generate(p Profile) *Workload {
	r := xrand.New(p.Seed).Derive("workload", p.Name)
	g := &generator{profile: p, cat: catalog.New(), r: r}
	g.buildLake()
	w := &Workload{
		Name:       p.Name,
		Cat:        g.cat,
		JobsPerDay: max(1, int(float64(p.JobsPerDayFull)*p.Scale)),
		seed:       r.Derive("arrivals").Seed(),
	}
	nTemplates := max(1, int(float64(p.TemplatesFull)*p.Scale))
	for i := 0; i < nTemplates; i++ {
		w.Templates = append(w.Templates, g.buildTemplate(i))
	}
	if p.ZipfSkew > 0 {
		// Zipf mode: a seeded permutation assigns ranks, so which template
		// is hot is deterministic in the profile seed but uncorrelated with
		// template structure (template 0 is not systematically the hot one).
		zw := ZipfWeights(nTemplates, p.ZipfSkew)
		perm := r.Derive("zipf").Perm(nTemplates)
		for rank, ti := range perm {
			w.Templates[ti].weight = zw[rank]
		}
	}
	return w
}

// keyDomain is a shared join-key domain of the lake.
type keyDomain struct {
	name     string
	distinct float64
	skew     float64 // skew of this key on fact streams
}

// factMeta and dimMeta describe generated streams for template construction.
type factMeta struct {
	name     string
	keys     []keyDomain // key columns present (by domain name)
	measures []string
	filters  []string // filterable low-cardinality columns
}

type dimMeta struct {
	name  string
	key   keyDomain
	attrs []string
}

type generator struct {
	profile Profile
	cat     *catalog.Catalog
	r       *xrand.Source

	domains []keyDomain
	facts   []factMeta
	dims    []dimMeta
	udos    []string
}

var measureNames = []string{"amount", "value", "latency_ms", "bytes_out", "duration", "score_raw"}
var filterNames = []string{"region", "day_part", "event_type", "platform", "tier", "market"}
var attrNames = []string{"segment", "grade", "category_name", "bucket", "cohort"}

func (g *generator) buildLake() {
	p := g.profile
	g.domains = []keyDomain{
		{"user_id", 5e5, 1.15},
		{"item_id", 1.2e5, 0.9},
		{"session_id", 4e6, 0.7},
		{"tenant_id", 2e3, 1.3},
		{"device_id", 8e5, 1.0},
		{"campaign_id", 3e4, 1.2},
	}
	nTemplates := max(1, int(float64(p.TemplatesFull)*p.Scale))
	nFacts := max(3, int(float64(nTemplates)*p.FactStreamsPerTemplate))

	for i := 0; i < nFacts; i++ {
		r := g.r.Derive("fact", fmt.Sprint(i))
		nKeys := 2 + r.Intn(2)
		keyIdx := r.Sample(len(g.domains), nKeys)
		var keys []keyDomain
		var cols []catalog.Column
		for _, ki := range keyIdx {
			d := g.domains[ki]
			skew := 0.0
			if r.Bool(0.6) {
				skew = d.skew * r.Uniform(0.7, 1.2)
			}
			keys = append(keys, d)
			cols = append(cols, catalog.Column{
				Name:         d.name,
				Distinct:     d.distinct * r.Uniform(0.7, 1.1),
				TrueDistinct: d.distinct,
				Min:          0, Max: d.distinct,
				Skew: skew,
			})
		}
		nMeasures := 2 + r.Intn(3)
		mi := r.Sample(len(measureNames), nMeasures)
		var measures []string
		for _, m := range mi {
			name := measureNames[m]
			measures = append(measures, name)
			cols = append(cols, catalog.Column{
				Name:         name,
				Distinct:     r.Uniform(5e3, 5e5),
				TrueDistinct: r.Uniform(5e3, 5e5),
				Min:          0, Max: r.Uniform(100, 10000),
			})
		}
		nFilters := 2 + r.Intn(2)
		fi := r.Sample(len(filterNames), nFilters)
		var filters []string
		for _, f := range fi {
			name := filterNames[f]
			card := r.Uniform(4, 60)
			filters = append(filters, name)
			cols = append(cols, catalog.Column{
				Name:         name,
				Distinct:     card,
				TrueDistinct: card,
				Min:          0, Max: card,
				Skew: pick(r, 0.6, r.Uniform(0.8, 1.4), 0),
			})
		}
		// Correlated filter pairs: the classic underestimate source.
		var corr []catalog.Correlation
		if len(filters) >= 2 && r.Bool(0.7) {
			corr = append(corr, catalog.Correlation{
				A: filters[0], B: filters[1], Factor: r.Uniform(4, 25),
			})
		}
		rows := math.Exp(r.Norm(p.SizeMu, p.SizeSigma))
		rows = clamp(rows, 2e5, 4e10)
		g.cat.AddStream(&catalog.Stream{
			Name:         fmt.Sprintf("lake/%s/fact_%03d", p.Name, i),
			Columns:      cols,
			BaseRows:     rows * r.Uniform(0.75, 1.15), // stats are stale
			DailySigma:   r.Uniform(0.1, 0.45),
			GrowthPerDay: r.Uniform(0.998, 1.012),
			BytesPerRow:  r.Uniform(40, 220),
			Correlations: corr,
		})
		g.facts = append(g.facts, factMeta{
			name:     fmt.Sprintf("lake/%s/fact_%03d", p.Name, i),
			keys:     keys,
			measures: measures,
			filters:  filters,
		})
	}

	for i := 0; i < p.DimStreams; i++ {
		r := g.r.Derive("dim", fmt.Sprint(i))
		d := g.domains[i%len(g.domains)]
		nAttrs := 2 + r.Intn(3)
		ai := r.Sample(len(attrNames), nAttrs)
		cols := []catalog.Column{{
			Name:         d.name,
			Distinct:     d.distinct,
			TrueDistinct: d.distinct,
			Min:          0, Max: d.distinct,
		}}
		var attrs []string
		for _, a := range ai {
			name := attrNames[a]
			card := r.Uniform(5, 400)
			attrs = append(attrs, name)
			cols = append(cols, catalog.Column{
				Name:         name,
				Distinct:     card,
				TrueDistinct: card,
				Min:          0, Max: card,
			})
		}
		g.cat.AddStream(&catalog.Stream{
			Name:         fmt.Sprintf("lake/%s/dim_%02d_%s", p.Name, i, d.name),
			Columns:      cols,
			BaseRows:     d.distinct * r.Uniform(0.9, 1.1),
			DailySigma:   0.02,
			GrowthPerDay: 1.0,
			BytesPerRow:  r.Uniform(30, 90),
		})
		g.dims = append(g.dims, dimMeta{
			name:  fmt.Sprintf("lake/%s/dim_%02d_%s", p.Name, i, d.name),
			key:   d,
			attrs: attrs,
		})
	}

	nUDOs := 18
	for i := 0; i < nUDOs; i++ {
		r := g.r.Derive("udo", fmt.Sprint(i))
		name := fmt.Sprintf("Udo%s%02d", p.Name, i)
		g.cat.AddUDO(&catalog.UDO{
			Name:      name,
			EstFactor: 1.0, // the optimizer's fixed guess for opaque code
			TrueFactor: clamp(
				math.Exp(r.Norm(0.2, 1.1)), 0.02, 15,
			),
			CPUPerRow: r.Uniform(1, 9),
		})
		g.udos = append(g.udos, name)
	}
}

func pick(r *xrand.Source, p float64, a, b float64) float64 {
	if r.Bool(p) {
		return a
	}
	return b
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// dimFor returns a dimension stream keyed by one of the fact's key domains;
// ok is false when none exists.
func (g *generator) dimFor(r *xrand.Source, f factMeta) (dimMeta, keyDomain, bool) {
	var cands []int
	for di, d := range g.dims {
		for _, k := range f.keys {
			if d.key.name == k.name {
				cands = append(cands, di)
			}
		}
	}
	if len(cands) == 0 {
		return dimMeta{}, keyDomain{}, false
	}
	d := g.dims[cands[r.Intn(len(cands))]]
	return d, d.key, true
}

// factsSharingKey returns up to n distinct facts that all carry the given key
// domain (for union shapes), always including `first`.
func (g *generator) factsSharingKey(r *xrand.Source, first factMeta, key keyDomain, n int) []factMeta {
	out := []factMeta{first}
	perm := r.Perm(len(g.facts))
	for _, fi := range perm {
		if len(out) >= n {
			break
		}
		f := g.facts[fi]
		if f.name == first.name {
			continue
		}
		for _, k := range f.keys {
			if k.name == key.name {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// buildTemplate freezes one recurring template: its shape, streams, columns
// and UDOs. Only literal constants vary per instance. A few templates carry
// customer hints enabling off-by-default rules suited to their shape —
// production workloads include such expert-tuned jobs (§3.2 footnote, §3.3),
// which is why the paper's Table 2 sees some off-by-default rules in use.
func (g *generator) buildTemplate(id int) *Template {
	r := g.r.Derive("template", fmt.Sprint(id))
	shape := shapeNames[r.Pick(g.profile.ShapeWeights)]
	weight := 1.0
	if r.Bool(g.profile.HeavyTemplateFrac) {
		weight = g.profile.HeavyWeight * r.Uniform(0.5, 1.5)
	}
	build := g.shapeBuilder(shape, r)
	var hints []int
	if r.Bool(0.08) {
		hints = customerHints(shape, r)
	}
	return &Template{ID: id, Shape: shape, build: build, weight: weight, hints: hints}
}

// customerHints picks off-by-default rules an expert might enable for the
// template's shape.
func customerHints(shape string, r *xrand.Source) []int {
	var pool []int
	switch shape {
	case "unionCook", "unionProcess":
		pool = []int{rules.IDCorrelatedJoinOnUnionAll1, rules.IDCorrelatedJoinOnUnionAll2, rules.IDCorrelatedJoinOnUnionAll3, rules.IDTopOnUnionAll}
	case "joinAgg", "multiJoin":
		pool = []int{rules.IDGroupbyOnJoin, rules.IDGroupbyOnJoinRight}
	default:
		pool = []int{rules.IDSelectSplitDisjunction, rules.IDGroupbyOnJoin}
	}
	n := 1 + r.Intn(2)
	idx := r.Sample(len(pool), n)
	out := make([]int, 0, n)
	for _, i := range idx {
		out = append(out, pool[i])
	}
	return out
}

// predSpec freezes a filterable predicate; render draws the constant.
type predSpec struct {
	col    string
	op     string
	lo, hi float64
	isEq   bool
}

func (g *generator) predsFor(r *xrand.Source, f factMeta, n int) []predSpec {
	var out []predSpec
	// One or two range predicates over measures, the rest equality over
	// filter columns.
	mi := r.Sample(len(f.measures), n)
	fi := r.Sample(len(f.filters), n)
	for i := 0; i < n; i++ {
		if i%2 == 0 && i/2 < len(mi) {
			m := f.measures[mi[i/2]]
			col := g.cat.Stream(f.name).Column(m)
			out = append(out, predSpec{col: m, op: ">", lo: col.Min, hi: col.Max})
		} else if (i-1)/2 < len(fi) {
			fc := f.filters[fi[(i-1)/2]]
			col := g.cat.Stream(f.name).Column(fc)
			out = append(out, predSpec{col: fc, op: "==", lo: col.Min, hi: col.Max, isEq: true})
		}
	}
	return out
}

func renderPreds(r *xrand.Source, preds []predSpec) string {
	parts := make([]string, 0, len(preds))
	for _, p := range preds {
		v := r.Uniform(p.lo, p.hi)
		if p.isEq {
			v = math.Floor(v)
		} else {
			// Bias thresholds toward selective tails.
			v = p.lo + (p.hi-p.lo)*math.Pow(r.Float64(), 0.35)
			v = math.Floor(v*100) / 100
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", p.col, p.op, fnum(v)))
	}
	return strings.Join(parts, " AND ")
}
