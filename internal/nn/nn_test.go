package nn

import (
	"math"
	"testing"
	"testing/quick"

	"steerq/internal/xrand"
)

func TestForwardShapesAndRange(t *testing.T) {
	n := New(4, 8, 3, xrand.New(1))
	out := n.Forward([]float64{0.1, 0.5, 0.9, 0})
	if len(out) != 3 {
		t.Fatalf("output width %d", len(out))
	}
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v outside (0,1)", v)
		}
	}
}

func TestForwardOutputsBounded(t *testing.T) {
	n := New(6, 16, 4, xrand.New(2))
	f := func(raw [6]float64) bool {
		x := make([]float64, 6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 10)
		}
		for _, v := range n.Forward(x) {
			// Sigmoid outputs live in (0, 1) mathematically but round to
			// the closed interval in float64 for extreme activations.
			if !(v >= 0 && v <= 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(4, 8, 2, xrand.New(7))
	b := New(4, 8, 2, xrand.New(7))
	x := []float64{1, 0, 0.5, 0.2}
	oa := a.Forward(x)
	ob := b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed, different networks")
		}
	}
}

// rankingTask builds samples where the correct arm is determined by the
// first feature: x[0] < 0.5 means arm 0 is fastest, otherwise arm 1.
func rankingTask(n int, r *xrand.Source) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		x := []float64{r.Float64(), r.Float64()}
		y := []float64{0, 1}
		if x[0] >= 0.5 {
			y = []float64{1, 0}
		}
		out = append(out, Sample{X: x, Y: y})
	}
	return out
}

func TestTrainingLearnsRanking(t *testing.T) {
	r := xrand.New(11)
	train := rankingTask(200, r.Derive("train"))
	test := rankingTask(100, r.Derive("test"))

	net := New(2, 16, 2, r.Derive("init"))
	before := net.BCELoss(test)
	cfg := TrainConfig{Epochs: 120, BatchSize: 16, LR: 5e-3}
	net.Train(train, cfg, r.Derive("sgd"))
	after := net.BCELoss(test)
	if after >= before {
		t.Fatalf("training did not reduce loss: %v -> %v", before, after)
	}
	// The argmin choice must be right most of the time.
	correct := 0
	for _, s := range test {
		out := net.Forward(s.X)
		pred := 0
		if out[1] < out[0] {
			pred = 1
		}
		truth := 0
		if s.Y[1] < s.Y[0] {
			truth = 1
		}
		if pred == truth {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(test)); frac < 0.85 {
		t.Fatalf("ranking accuracy %.2f after training", frac)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	r1 := xrand.New(13)
	net1 := New(2, 8, 2, r1.Derive("init"))
	net1.Train(rankingTask(50, r1.Derive("data")), TrainConfig{Epochs: 10, BatchSize: 8, LR: 1e-2}, r1.Derive("sgd"))

	r2 := xrand.New(13)
	net2 := New(2, 8, 2, r2.Derive("init"))
	net2.Train(rankingTask(50, r2.Derive("data")), TrainConfig{Epochs: 10, BatchSize: 8, LR: 1e-2}, r2.Derive("sgd"))

	x := []float64{0.3, 0.7}
	o1, o2 := net1.Forward(x), net2.Forward(x)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestMaskSkipsOutputs(t *testing.T) {
	r := xrand.New(17)
	net := New(2, 8, 3, r.Derive("init"))
	// Arm 2 is masked everywhere; training must still work on arms 0-1.
	samples := []Sample{
		{X: []float64{0.1, 0.2}, Y: []float64{0, 1, 0}, Mask: []bool{true, true, false}},
		{X: []float64{0.9, 0.2}, Y: []float64{1, 0, 0}, Mask: []bool{true, true, false}},
	}
	loss := net.Train(samples, TrainConfig{Epochs: 50, BatchSize: 2, LR: 1e-2}, r.Derive("sgd"))
	if math.IsNaN(loss) {
		t.Fatal("masked training produced NaN loss")
	}
}

func TestEmptyTraining(t *testing.T) {
	net := New(2, 4, 2, xrand.New(1))
	if got := net.Train(nil, TrainConfig{Epochs: 5, BatchSize: 4, LR: 1e-3}, xrand.New(2)); got != 0 {
		t.Fatalf("empty training returned loss %v", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := xrand.New(19)
	net := New(3, 8, 2, r)
	data, err := net.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	a, b := net.Forward(x), got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round-tripped network differs")
		}
	}
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Fatal("Unmarshal accepted garbage")
	}
}
