package nn_test

import (
	"math"
	"testing"

	"steerq/internal/nn"
	"steerq/internal/xrand"
)

// synthSamples builds a deterministic synthetic training set where the target
// of each output is a smooth function of the inputs — learnable but not
// trivially constant.
func synthSamples(n, in, out int, seed uint64) []nn.Sample {
	r := xrand.New(seed).Derive("synth")
	samples := make([]nn.Sample, n)
	for s := range samples {
		x := make([]float64, in)
		for i := range x {
			x[i] = r.Uniform(-1, 1)
		}
		y := make([]float64, out)
		for o := range y {
			v := 0.0
			for i, xi := range x {
				if (i+o)%2 == 0 {
					v += xi
				} else {
					v -= xi
				}
			}
			y[o] = 1 / (1 + math.Exp(-v)) // separable-ish smooth target in (0, 1)
		}
		samples[s] = nn.Sample{X: x, Y: y, Weight: 1}
	}
	return samples
}

// TestGradientsMatchFiniteDifference is the metamorphic anchor of the
// backprop refactor: the analytic gradient returned by Gradients must agree
// with a central finite difference of BCELoss at every probed parameter.
func TestGradientsMatchFiniteDifference(t *testing.T) {
	const in, hidden, out = 4, 5, 3
	net := nn.New(in, hidden, out, xrand.New(7).Derive("init"))
	samples := synthSamples(12, in, out, 21)
	// Mask a few outputs so the masked path is under test too.
	samples[0].Mask = []bool{true, false, true}
	samples[3].Mask = []bool{false, true, true}

	gw1, gb1, gw2, gb2 := net.Gradients(samples)

	const eps = 1e-6
	check := func(name string, w *float64, analytic float64) {
		t.Helper()
		orig := *w
		*w = orig + eps
		up := net.BCELoss(samples)
		*w = orig - eps
		down := net.BCELoss(samples)
		*w = orig
		numeric := (up - down) / (2 * eps)
		if diff := math.Abs(numeric - analytic); diff > 1e-5 && diff > 1e-3*math.Abs(numeric) {
			t.Errorf("%s: analytic gradient %g, finite difference %g (diff %g)", name, analytic, numeric, diff)
		}
	}
	for h := 0; h < hidden; h++ {
		for i := 0; i < in; i++ {
			check("W1", &net.W1[h][i], gw1[h][i])
		}
		check("B1", &net.B1[h], gb1[h])
	}
	for o := 0; o < out; o++ {
		for h := 0; h < hidden; h++ {
			check("W2", &net.W2[o][h], gw2[o][h])
		}
		check("B2", &net.B2[o], gb2[o])
	}
}

func TestGradientsAllMaskedAreZero(t *testing.T) {
	net := nn.New(3, 4, 2, xrand.New(9).Derive("init"))
	samples := synthSamples(5, 3, 2, 5)
	for i := range samples {
		samples[i].Mask = []bool{false, false}
	}
	gw1, gb1, gw2, gb2 := net.Gradients(samples)
	for h := range gw1 {
		for i := range gw1[h] {
			if gw1[h][i] != 0 {
				t.Fatalf("gw1[%d][%d] = %g on all-masked set, want 0", h, i, gw1[h][i])
			}
		}
		if gb1[h] != 0 {
			t.Fatalf("gb1[%d] = %g on all-masked set, want 0", h, gb1[h])
		}
	}
	for o := range gw2 {
		for h := range gw2[o] {
			if gw2[o][h] != 0 {
				t.Fatalf("gw2[%d][%d] = %g on all-masked set, want 0", o, h, gw2[o][h])
			}
		}
		if gb2[o] != 0 {
			t.Fatalf("gb2[%d] = %g on all-masked set, want 0", o, gb2[o])
		}
	}
}

// TestLossDecreasesOnSeparableSet trains on a cleanly separable synthetic set
// and asserts training drives the BCE loss well below its starting point, and
// that a larger epoch budget does not end up meaningfully worse.
func TestLossDecreasesOnSeparableSet(t *testing.T) {
	const in, out = 4, 2
	// Separable: output o is 1 exactly when x[o] > 0.
	r := xrand.New(3).Derive("sep")
	samples := make([]nn.Sample, 64)
	for s := range samples {
		x := make([]float64, in)
		for i := range x {
			x[i] = r.Uniform(-1, 1)
		}
		y := make([]float64, out)
		for o := range y {
			if x[o] > 0 {
				y[o] = 1
			}
		}
		samples[s] = nn.Sample{X: x, Y: y, Weight: 1}
	}

	train := func(epochs int) float64 {
		net := nn.New(in, 8, out, xrand.New(11).Derive("init"))
		cfg := nn.TrainConfig{Epochs: epochs, BatchSize: 16, LR: 1e-2, L2: 0}
		net.Train(samples, cfg, xrand.New(11).Derive("train"))
		return net.BCELoss(samples)
	}

	initial := nn.New(in, 8, out, xrand.New(11).Derive("init")).BCELoss(samples)
	short := train(40)
	long := train(160)
	if short >= initial {
		t.Fatalf("loss did not decrease: initial %.4f, after 40 epochs %.4f", initial, short)
	}
	if long > short+0.02 {
		t.Fatalf("longer training regressed: 40 epochs %.4f, 160 epochs %.4f", short, long)
	}
	if long > 0.25 {
		t.Fatalf("separable set not learned: loss %.4f after 160 epochs", long)
	}
}

// TestTrainingReseedDerivedBitIdentical: repositioning a scratch source with
// ReseedDerived must train the exact same model, bit for bit, as a source
// built with Derive — training is a pure function of (samples, config, RNG
// stream), not of how the stream object was obtained.
func TestTrainingReseedDerivedBitIdentical(t *testing.T) {
	const in, hidden, out = 5, 6, 3
	samples := synthSamples(24, in, out, 77)
	cfg := nn.TrainConfig{Epochs: 30, BatchSize: 8, LR: 1e-3, L2: 1e-5}

	root := xrand.New(42)
	a := nn.New(in, hidden, out, root.Derive("init"))
	lossA := a.Train(samples, cfg, root.Derive("train", "epochs"))

	scratch := xrand.New(0)
	root.ReseedDerived(scratch, "init")
	b := nn.New(in, hidden, out, scratch)
	root.ReseedDerived(scratch, "train", "epochs")
	lossB := b.Train(samples, cfg, scratch)

	if lossA != lossB {
		t.Fatalf("training loss differs: Derive %v, ReseedDerived %v", lossA, lossB)
	}
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("trained models differ bit-for-bit between Derive and ReseedDerived streams")
	}
}

// TestBCELossPermutationInvariant: the averaged loss is a function of the
// sample multiset, not its order (up to float summation error).
func TestBCELossPermutationInvariant(t *testing.T) {
	const in, out = 4, 2
	net := nn.New(in, 6, out, xrand.New(5).Derive("init"))
	samples := synthSamples(40, in, out, 13)
	base := net.BCELoss(samples)

	perm := xrand.New(99).Derive("perm").Perm(len(samples))
	shuffled := make([]nn.Sample, len(samples))
	for i, p := range perm {
		shuffled[i] = samples[p]
	}
	got := net.BCELoss(shuffled)
	if math.Abs(got-base) > 1e-12 {
		t.Fatalf("BCELoss changed under permutation: %v vs %v", base, got)
	}
}
