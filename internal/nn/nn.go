// Package nn implements the lightweight learned model of §7.3: a fully
// connected neural network with one hidden layer, trained with the
// binary-cross-entropy-on-normalized-runtimes loss the paper uses instead of
// mean squared error ("we really only care about choosing the fastest
// configuration").
//
// Only the standard library is used; the math is plain float64 slices.
package nn

import (
	"encoding/json"
	"fmt"
	"math"

	"steerq/internal/xrand"
)

// Network is a 1-hidden-layer MLP with ReLU activation and sigmoid outputs.
// Outputs estimate normalized runtimes in [0, 1], one per candidate
// configuration.
type Network struct {
	In, Hidden, Out int

	// W1 [Hidden][In], B1 [Hidden], W2 [Out][Hidden], B2 [Out].
	W1 [][]float64 `json:"w1"`
	B1 []float64   `json:"b1"`
	W2 [][]float64 `json:"w2"`
	B2 []float64   `json:"b2"`
}

// New builds a network with He-initialized weights, deterministic in r.
func New(in, hidden, out int, r *xrand.Source) *Network {
	n := &Network{In: in, Hidden: hidden, Out: out}
	scale1 := math.Sqrt(2 / float64(in))
	scale2 := math.Sqrt(2 / float64(hidden))
	n.W1 = make([][]float64, hidden)
	for h := range n.W1 {
		n.W1[h] = make([]float64, in)
		for i := range n.W1[h] {
			n.W1[h][i] = r.Norm(0, scale1)
		}
	}
	n.B1 = make([]float64, hidden)
	n.W2 = make([][]float64, out)
	for o := range n.W2 {
		n.W2[o] = make([]float64, hidden)
		for h := range n.W2[o] {
			n.W2[o][h] = r.Norm(0, scale2)
		}
	}
	n.B2 = make([]float64, out)
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward computes the network output for one input vector.
func (n *Network) Forward(x []float64) []float64 {
	h, out := n.forward(x)
	_ = h
	return out
}

func (n *Network) forward(x []float64) (hidden, out []float64) {
	hidden = make([]float64, n.Hidden)
	for h := range hidden {
		s := n.B1[h]
		w := n.W1[h]
		for i, xi := range x {
			s += w[i] * xi
		}
		if s > 0 {
			hidden[h] = s
		}
	}
	out = make([]float64, n.Out)
	for o := range out {
		s := n.B2[o]
		w := n.W2[o]
		for h, hv := range hidden {
			s += w[h] * hv
		}
		out[o] = sigmoid(s)
	}
	return hidden, out
}

// Sample is one training example: an input vector and per-output normalized
// targets in [0, 1] with a mask of valid outputs (a job group may have fewer
// valid configurations for some jobs, e.g. compile failures).
type Sample struct {
	X      []float64
	Y      []float64
	Mask   []bool
	Weight float64
}

// BCELoss is the continuous binary cross entropy over masked outputs:
// -(y log p + (1-y) log(1-p)), averaged.
func (n *Network) BCELoss(samples []Sample) float64 {
	var total float64
	var count int
	for _, s := range samples {
		out := n.Forward(s.X)
		for o, p := range out {
			if s.Mask != nil && !s.Mask[o] {
				continue
			}
			total += bce(s.Y[o], p)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func bce(y, p float64) float64 {
	const eps = 1e-7
	p = math.Min(math.Max(p, eps), 1-eps)
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}

// TrainConfig parameterizes Adam training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// L2 is weight decay.
	L2 float64
}

// DefaultTrainConfig mirrors the paper's "takes a minute to train" setup at
// simulator scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 200, BatchSize: 16, LR: 1e-3, L2: 1e-5}
}

// adam state per parameter matrix.
type adamState struct {
	m, v [][]float64
}

func newAdamState(shape [][]float64) *adamState {
	s := &adamState{m: make([][]float64, len(shape)), v: make([][]float64, len(shape))}
	for i := range shape {
		s.m[i] = make([]float64, len(shape[i]))
		s.v[i] = make([]float64, len(shape[i]))
	}
	return s
}

// Train fits the network with Adam on the BCE loss. Deterministic in r.
// It returns the final training loss.
func (n *Network) Train(samples []Sample, cfg TrainConfig, r *xrand.Source) float64 {
	if len(samples) == 0 {
		return 0
	}
	if cfg.Epochs == 0 {
		cfg = DefaultTrainConfig()
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	sw1 := newAdamState(n.W1)
	sw2 := newAdamState(n.W2)
	sb1 := newAdamState([][]float64{n.B1})
	sb2 := newAdamState([][]float64{n.B2})
	step := 0

	gw1 := make([][]float64, n.Hidden)
	for h := range gw1 {
		gw1[h] = make([]float64, n.In)
	}
	gw2 := make([][]float64, n.Out)
	for o := range gw2 {
		gw2[o] = make([]float64, n.Hidden)
	}
	gb1 := make([]float64, n.Hidden)
	gb2 := make([]float64, n.Out)

	zero := func() {
		for h := range gw1 {
			for i := range gw1[h] {
				gw1[h][i] = 0
			}
			gb1[h] = 0
		}
		for o := range gw2 {
			for h := range gw2[o] {
				gw2[o][h] = 0
			}
			gb2[o] = 0
		}
	}

	applyAdam := func(w []float64, g []float64, m, v []float64, lr float64) {
		t := float64(step)
		for i := range w {
			gi := g[i] + cfg.L2*w[i]
			m[i] = beta1*m[i] + (1-beta1)*gi
			v[i] = beta2*v[i] + (1-beta2)*gi*gi
			mh := m[i] / (1 - math.Pow(beta1, t))
			vh := v[i] / (1 - math.Pow(beta2, t))
			w[i] -= lr * mh / (math.Sqrt(vh) + eps)
		}
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := r.Perm(len(samples))
		var epochLoss float64
		var epochCount int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			zero()
			batchN := 0
			for _, si := range order[start:end] {
				epochCount += n.accumGrads(samples[si], gw1, gb1, gw2, gb2, &epochLoss)
				batchN++
			}
			if batchN == 0 {
				continue
			}
			inv := 1 / float64(batchN)
			for h := range gw1 {
				for i := range gw1[h] {
					gw1[h][i] *= inv
				}
				gb1[h] *= inv
			}
			for o := range gw2 {
				for h := range gw2[o] {
					gw2[o][h] *= inv
				}
				gb2[o] *= inv
			}
			step++
			for h := range n.W1 {
				applyAdam(n.W1[h], gw1[h], sw1.m[h], sw1.v[h], cfg.LR)
			}
			applyAdam(n.B1, gb1, sb1.m[0], sb1.v[0], cfg.LR)
			for o := range n.W2 {
				applyAdam(n.W2[o], gw2[o], sw2.m[o], sw2.v[o], cfg.LR)
			}
			applyAdam(n.B2, gb2, sb2.m[0], sb2.v[0], cfg.LR)
		}
		if epochCount > 0 {
			lastLoss = epochLoss / float64(epochCount)
		}
	}
	return lastLoss
}

// accumGrads runs forward and backprop for one sample, adding its un-scaled
// gradient contributions (of the summed per-output BCE loss) into the
// accumulators and its loss terms into *lossAcc, one bce() add at a time so
// the accumulation order matches the pre-extraction Train loop exactly. It
// returns the number of valid (masked-in) output pairs.
func (n *Network) accumGrads(s Sample, gw1 [][]float64, gb1 []float64, gw2 [][]float64, gb2 []float64, lossAcc *float64) int {
	valid := 0
	hidden, out := n.forward(s.X)
	// dL/dz2 for sigmoid+BCE is (p - y).
	dz2 := make([]float64, n.Out)
	for o, p := range out {
		if s.Mask != nil && !s.Mask[o] {
			continue
		}
		dz2[o] = p - s.Y[o]
		*lossAcc += bce(s.Y[o], p)
		valid++
	}
	for o := range dz2 {
		if dz2[o] == 0 {
			continue
		}
		gb2[o] += dz2[o]
		for h, hv := range hidden {
			gw2[o][h] += dz2[o] * hv
		}
	}
	// Backprop to hidden (ReLU).
	for h, hv := range hidden {
		if hv <= 0 {
			continue
		}
		var dh float64
		for o := range dz2 {
			dh += dz2[o] * n.W2[o][h]
		}
		if dh == 0 {
			continue
		}
		gb1[h] += dh
		for i, xi := range s.X {
			if xi != 0 {
				gw1[h][i] += dh * xi
			}
		}
	}
	return valid
}

// Gradients computes the analytic gradient of BCELoss over the samples with
// respect to every parameter, normalized like BCELoss itself (by the count of
// valid masked-in output pairs), so a finite-difference probe of BCELoss
// validates these directly. The network is not modified. All-masked sample
// sets return zero gradients.
func (n *Network) Gradients(samples []Sample) (gw1 [][]float64, gb1 []float64, gw2 [][]float64, gb2 []float64) {
	gw1 = make([][]float64, n.Hidden)
	for h := range gw1 {
		gw1[h] = make([]float64, n.In)
	}
	gw2 = make([][]float64, n.Out)
	for o := range gw2 {
		gw2[o] = make([]float64, n.Hidden)
	}
	gb1 = make([]float64, n.Hidden)
	gb2 = make([]float64, n.Out)
	var loss float64
	valid := 0
	for _, s := range samples {
		valid += n.accumGrads(s, gw1, gb1, gw2, gb2, &loss)
	}
	if valid == 0 {
		return gw1, gb1, gw2, gb2
	}
	inv := 1 / float64(valid)
	for h := range gw1 {
		for i := range gw1[h] {
			gw1[h][i] *= inv
		}
		gb1[h] *= inv
	}
	for o := range gw2 {
		for h := range gw2[o] {
			gw2[o][h] *= inv
		}
		gb2[o] *= inv
	}
	return gw1, gb1, gw2, gb2
}

// Marshal serializes the network to JSON (the models are ~small at simulator
// scale; the paper's are ~30 MB).
func (n *Network) Marshal() ([]byte, error) { return json.Marshal(n) }

// Unmarshal restores a network serialized by Marshal.
func Unmarshal(data []byte) (*Network, error) {
	var n Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("nn: unmarshal: %w", err)
	}
	if len(n.W1) != n.Hidden || len(n.W2) != n.Out {
		return nil, fmt.Errorf("nn: unmarshal: inconsistent shapes")
	}
	return &n, nil
}
