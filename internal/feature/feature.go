// Package feature builds the model input vectors of §7.2. A SCOPE job is a
// large DAG with opaque user code, so the paper featurizes three groups of
// signals rather than the graph itself:
//
//  1. job-level features — estimated input size, a hash of the inputs, a
//     hash of the query template;
//  2. rule-configuration features — per candidate configuration, the
//     estimated plan cost and the RuleDiff bit vector against the default;
//  3. query-graph features — one slot per operator type with its occurrence
//     count and average estimated cost and cardinality.
//
// Continuous features are min-max normalized to [0, 1]; low-cardinality
// categoricals are one-hot encoded; large-alphabet categoricals (input and
// template hashes) are deterministically hashed into 50 bins.
package feature

import (
	"math"

	"steerq/internal/bitvec"
	"steerq/internal/plan"
)

// HashBins is the number of buckets used for large-alphabet categorical
// features (§7.2 uses 50).
const HashBins = 50

// OpStat summarizes one operator type's occurrences in the default plan.
type OpStat struct {
	Count   int
	AvgCost float64
	AvgRows float64
}

// JobFeatures carries everything the encoder needs about one (job, candidate
// set) pair.
type JobFeatures struct {
	// InputBytes is the estimated total input size.
	InputBytes float64
	// InputsHash and TemplateHash identify inputs and template.
	InputsHash   uint64
	TemplateHash uint64
	// OpStats indexes operator statistics by physical operator.
	OpStats map[plan.PhysOp]OpStat
	// EstCosts[k] is the estimated plan cost under candidate k.
	EstCosts []float64
	// Diffs[k] is the RuleDiff bit vector of candidate k vs the default.
	Diffs []bitvec.Vector
	// Valid[k] marks candidates that compiled.
	Valid []bool
}

// Encoder turns JobFeatures into fixed-width vectors. Build it with Fit over
// the training set so min-max ranges and the relevant rule-diff bits are
// learned from training data only.
type Encoder struct {
	K       int           `json:"k"`        // candidate configurations per job group
	Ops     []plan.PhysOp `json:"ops"`      // operator slots, fixed order
	DiffIDs []int         `json:"diff_ids"` // rule IDs observed in any training diff
	// Ranges holds the min-max normalization bounds per feature key,
	// exported so trained encoders serialize with their models.
	Ranges map[string][2]float64 `json:"ranges"`
}

// trackedOps is the fixed operator-slot order.
var trackedOps = []plan.PhysOp{
	plan.PhysExtract, plan.PhysRangeScan, plan.PhysFilter, plan.PhysCompute,
	plan.PhysHashJoin, plan.PhysHashJoinAlt, plan.PhysMergeJoin, plan.PhysLoopJoin,
	plan.PhysHashAgg, plan.PhysStreamAgg, plan.PhysPartialHashAgg, plan.PhysFinalHashAgg,
	plan.PhysUnionMerge, plan.PhysVirtualDataset, plan.PhysProcessImpl, plan.PhysReduceImpl,
	plan.PhysLocalTop, plan.PhysGlobalTop, plan.PhysSort, plan.PhysExchange,
	plan.PhysOutputImpl,
}

// Fit learns normalization ranges and the diff vocabulary from training
// examples.
func Fit(train []JobFeatures, k int) *Encoder {
	e := &Encoder{K: k, Ops: trackedOps, Ranges: make(map[string][2]float64)}
	diffSet := make(map[int]bool)
	upd := func(key string, v float64) {
		r, ok := e.Ranges[key]
		if !ok {
			e.Ranges[key] = [2]float64{v, v}
			return
		}
		if v < r[0] {
			r[0] = v
		}
		if v > r[1] {
			r[1] = v
		}
		e.Ranges[key] = r
	}
	for _, f := range train {
		upd("inputBytes", logScale(f.InputBytes))
		for _, op := range e.Ops {
			s := f.OpStats[op]
			upd("count:"+op.String(), float64(s.Count))
			upd("cost:"+op.String(), logScale(s.AvgCost))
			upd("rows:"+op.String(), logScale(s.AvgRows))
		}
		for ki := 0; ki < k && ki < len(f.EstCosts); ki++ {
			upd("estCost", logScale(f.EstCosts[ki]))
			for _, id := range f.Diffs[ki].Ones() {
				diffSet[id] = true
			}
		}
	}
	for id := 0; id < bitvec.Width; id++ {
		if diffSet[id] {
			e.DiffIDs = append(e.DiffIDs, id)
		}
	}
	return e
}

func logScale(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log1p(v)
}

func (e *Encoder) norm(key string, v float64) float64 {
	r, ok := e.Ranges[key]
	if !ok || r[1] <= r[0] {
		return 0
	}
	x := (v - r[0]) / (r[1] - r[0])
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Width returns the encoded vector length.
func (e *Encoder) Width() int {
	return 1 + // input bytes
		2*HashBins + // inputs hash, template hash
		3*len(e.Ops) + // per-op count/cost/rows
		e.K*(1+1+len(e.DiffIDs)) // per-candidate: valid, est cost, diff bits
}

// Encode builds the input vector for one job.
func (e *Encoder) Encode(f JobFeatures) []float64 {
	x := make([]float64, 0, e.Width())
	x = append(x, e.norm("inputBytes", logScale(f.InputBytes)))

	inBins := make([]float64, HashBins)
	inBins[int(f.InputsHash%HashBins)] = 1
	x = append(x, inBins...)
	tBins := make([]float64, HashBins)
	tBins[int(f.TemplateHash%HashBins)] = 1
	x = append(x, tBins...)

	for _, op := range e.Ops {
		s := f.OpStats[op]
		x = append(x,
			e.norm("count:"+op.String(), float64(s.Count)),
			e.norm("cost:"+op.String(), logScale(s.AvgCost)),
			e.norm("rows:"+op.String(), logScale(s.AvgRows)),
		)
	}

	for ki := 0; ki < e.K; ki++ {
		valid := ki < len(f.EstCosts) && (f.Valid == nil || f.Valid[ki])
		if !valid {
			x = append(x, 0, 0)
			x = append(x, make([]float64, len(e.DiffIDs))...)
			continue
		}
		x = append(x, 1, e.norm("estCost", logScale(f.EstCosts[ki])))
		bits := make([]float64, len(e.DiffIDs))
		for bi, id := range e.DiffIDs {
			if f.Diffs[ki].Get(id) {
				bits[bi] = 1
			}
		}
		x = append(x, bits...)
	}
	return x
}

// PlanOpStats extracts the per-operator statistics of a physical plan.
func PlanOpStats(p *plan.PhysNode) map[plan.PhysOp]OpStat {
	type acc struct {
		n          int
		cost, rows float64
	}
	accs := make(map[plan.PhysOp]*acc)
	p.Walk(func(n *plan.PhysNode) {
		a := accs[n.Op]
		if a == nil {
			a = &acc{}
			accs[n.Op] = a
		}
		a.n++
		a.cost += n.EstCost
		a.rows += n.EstRows
	})
	out := make(map[plan.PhysOp]OpStat, len(accs))
	for op, a := range accs {
		out[op] = OpStat{
			Count:   a.n,
			AvgCost: a.cost / float64(a.n),
			AvgRows: a.rows / float64(a.n),
		}
	}
	return out
}
