package feature

import (
	"testing"
	"testing/quick"

	"steerq/internal/bitvec"
	"steerq/internal/plan"
	"steerq/internal/xrand"
)

func sampleFeatures(r *xrand.Source, k int) JobFeatures {
	f := JobFeatures{
		InputBytes:   r.Uniform(1e6, 1e12),
		InputsHash:   uint64(r.Int63()),
		TemplateHash: uint64(r.Int63()),
		OpStats:      map[plan.PhysOp]OpStat{},
		EstCosts:     make([]float64, k),
		Diffs:        make([]bitvec.Vector, k),
		Valid:        make([]bool, k),
	}
	for _, op := range []plan.PhysOp{plan.PhysExtract, plan.PhysFilter, plan.PhysHashJoin} {
		f.OpStats[op] = OpStat{Count: r.Intn(5), AvgCost: r.Uniform(0, 100), AvgRows: r.Uniform(1, 1e9)}
	}
	for i := 0; i < k; i++ {
		f.EstCosts[i] = r.Uniform(1, 1e4)
		var d bitvec.Vector
		for b := 0; b < r.Intn(5); b++ {
			d.Set(r.Intn(bitvec.Width))
		}
		f.Diffs[i] = d
		f.Valid[i] = r.Bool(0.9)
	}
	return f
}

func TestEncodeWidthMatches(t *testing.T) {
	r := xrand.New(1)
	const k = 5
	train := make([]JobFeatures, 30)
	for i := range train {
		train[i] = sampleFeatures(r.Derive("s", string(rune('a'+i))), k)
	}
	e := Fit(train, k)
	for i, f := range train {
		if got := len(e.Encode(f)); got != e.Width() {
			t.Fatalf("sample %d encoded to %d values, Width() = %d", i, got, e.Width())
		}
	}
	// Unseen features encode to the same width too.
	unseen := sampleFeatures(r.Derive("unseen"), k)
	if got := len(e.Encode(unseen)); got != e.Width() {
		t.Fatalf("unseen sample width %d != %d", got, e.Width())
	}
}

func TestEncodeValuesNormalized(t *testing.T) {
	r := xrand.New(2)
	const k = 3
	train := make([]JobFeatures, 20)
	for i := range train {
		train[i] = sampleFeatures(r.Derive("s", string(rune('a'+i))), k)
	}
	e := Fit(train, k)
	f := func(seed uint64) bool {
		x := e.Encode(sampleFeatures(xrand.New(seed), k))
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHashBinsOneHot(t *testing.T) {
	r := xrand.New(3)
	const k = 2
	train := []JobFeatures{sampleFeatures(r, k)}
	e := Fit(train, k)
	x := e.Encode(train[0])
	// Input-hash bins occupy positions [1, 1+HashBins); exactly one is hot.
	hot := 0
	for _, v := range x[1 : 1+HashBins] {
		if v == 1 {
			hot++
		} else if v != 0 {
			t.Fatalf("hash bin value %v", v)
		}
	}
	if hot != 1 {
		t.Fatalf("%d hot input-hash bins, want 1", hot)
	}
}

func TestInvalidArmEncodesZero(t *testing.T) {
	r := xrand.New(4)
	const k = 2
	f := sampleFeatures(r, k)
	f.Valid[1] = false
	e := Fit([]JobFeatures{f}, k)
	x := e.Encode(f)
	// The second arm's block is all zeros; its validity flag leads the
	// block.
	armW := 2 + len(e.DiffIDs)
	start := e.Width() - armW
	for i, v := range x[start:] {
		if v != 0 {
			t.Fatalf("invalid arm block position %d = %v", i, v)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := xrand.New(5)
	const k = 4
	f := sampleFeatures(r, k)
	e := Fit([]JobFeatures{f}, k)
	a := e.Encode(f)
	b := e.Encode(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Encode not deterministic")
		}
	}
}

func TestPlanOpStats(t *testing.T) {
	k := plan.Column{ID: 1, Name: "k"}
	scan := &plan.PhysNode{Op: plan.PhysExtract, Table: "s", Schema: []plan.Column{k}, EstRows: 100, EstCost: 2}
	f1 := &plan.PhysNode{Op: plan.PhysFilter, Schema: []plan.Column{k}, Children: []*plan.PhysNode{scan}, EstRows: 50, EstCost: 4}
	f2 := &plan.PhysNode{Op: plan.PhysFilter, Schema: []plan.Column{k}, Children: []*plan.PhysNode{f1}, EstRows: 10, EstCost: 2}
	stats := PlanOpStats(f2)
	if stats[plan.PhysFilter].Count != 2 {
		t.Fatalf("filter count %d", stats[plan.PhysFilter].Count)
	}
	if stats[plan.PhysFilter].AvgCost != 3 {
		t.Fatalf("filter avg cost %v", stats[plan.PhysFilter].AvgCost)
	}
	if stats[plan.PhysExtract].AvgRows != 100 {
		t.Fatalf("scan avg rows %v", stats[plan.PhysExtract].AvgRows)
	}
}
