package catalog

import (
	"testing"
	"testing/quick"
)

func TestDuplicateStreamPanics(t *testing.T) {
	c := New()
	c.AddStream(&Stream{Name: "s"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddStream did not panic")
		}
	}()
	c.AddStream(&Stream{Name: "s"})
}

func TestDuplicateUDOPanics(t *testing.T) {
	c := New()
	c.AddUDO(&UDO{Name: "u"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddUDO did not panic")
		}
	}()
	c.AddUDO(&UDO{Name: "u"})
}

func TestStreamNamesSorted(t *testing.T) {
	c := New()
	c.AddStream(&Stream{Name: "b"})
	c.AddStream(&Stream{Name: "a"})
	got := c.StreamNames()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("StreamNames = %v", got)
	}
}

func TestTrueRowsDeterministic(t *testing.T) {
	s := &Stream{Name: "s", BaseRows: 1e6, DailySigma: 0.3, GrowthPerDay: 1.01}
	if s.TrueRows(3) != s.TrueRows(3) {
		t.Fatal("TrueRows not deterministic")
	}
	if s.TrueRows(3) == s.TrueRows(4) {
		t.Fatal("TrueRows identical across days despite variance")
	}
}

func TestTrueRowsPerStreamIndependent(t *testing.T) {
	a := &Stream{Name: "a", BaseRows: 1e6, DailySigma: 0.3, GrowthPerDay: 1}
	b := &Stream{Name: "b", BaseRows: 1e6, DailySigma: 0.3, GrowthPerDay: 1}
	same := 0
	for d := 0; d < 20; d++ {
		if a.TrueRows(d) == b.TrueRows(d) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/20 days identical across distinct streams", same)
	}
}

func TestTrueRowsGrowthTrend(t *testing.T) {
	s := &Stream{Name: "s", BaseRows: 1e6, DailySigma: 0, GrowthPerDay: 1.05}
	if s.TrueRows(10) <= s.TrueRows(0) {
		t.Fatalf("growth trend absent: day0=%v day10=%v", s.TrueRows(0), s.TrueRows(10))
	}
}

func TestTrueRowsFloor(t *testing.T) {
	s := &Stream{Name: "s", BaseRows: 0.001, DailySigma: 0, GrowthPerDay: 1}
	if s.TrueRows(0) < 1 {
		t.Fatal("TrueRows below 1")
	}
}

func TestCorrelationFactor(t *testing.T) {
	s := &Stream{
		Name:         "s",
		Correlations: []Correlation{{A: "x", B: "y", Factor: 4}},
	}
	if got := s.CorrelationFactor("x", "y"); got != 4 {
		t.Fatalf("factor(x,y) = %v", got)
	}
	if got := s.CorrelationFactor("y", "x"); got != 4 {
		t.Fatalf("factor is not symmetric: %v", got)
	}
	if got := s.CorrelationFactor("x", "z"); got != 1 {
		t.Fatalf("uncorrelated pair factor = %v", got)
	}
}

func TestColumnLookup(t *testing.T) {
	s := &Stream{Columns: []Column{{Name: "a"}, {Name: "b"}}}
	if s.Column("b") == nil || s.Column("nope") != nil {
		t.Fatal("Column lookup wrong")
	}
}

func TestSkewFanoutProperties(t *testing.T) {
	// Fanout is >= 1 and increases with skew.
	f := func(d uint16, z8 uint8) bool {
		d64 := float64(d%5000) + 2
		z := float64(z8%30) / 10 // [0, 3)
		f1 := SkewFanout(d64, z)
		if f1 < 1 {
			return false
		}
		return SkewFanout(d64, z+0.5) >= f1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if SkewFanout(100, 0) != 1 {
		t.Fatal("zero skew fanout must be 1")
	}
	if SkewFanout(1, 2) != 1 {
		t.Fatal("single-value fanout must be 1")
	}
}
