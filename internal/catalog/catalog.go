// Package catalog models the data lake underneath the simulated SCOPE
// cluster: named input streams with schemas and statistics.
//
// Every stream carries two layers of statistics:
//
//   - Estimated statistics — what the optimizer's cardinality estimator sees:
//     base row counts collected at some point in the past, per-column distinct
//     counts and min/max ranges, and nothing else. The estimator combines them
//     under uniformity and independence assumptions (internal/cost).
//
//   - True statistics — the hidden ground truth used by the execution
//     simulator: actual daily row counts (inputs evolve day to day, §3.1.1),
//     value skew on join keys, correlations between predicate columns, and
//     the real expansion factors of user-defined operators.
//
// The gap between the two layers is exactly the class of optimizer error the
// paper exploits: "changing rule configurations can impact [estimates],
// thus the costs across recompilation runs ... are not directly comparable"
// (§5.3) and "severe cardinality underestimates can lead an optimizer to pick
// a disastrous plan" (§1).
package catalog

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"steerq/internal/xrand"
)

// Column describes one column of a stream together with its statistics.
type Column struct {
	Name string

	// Distinct is the estimated number of distinct values (what the
	// optimizer sees; may be stale relative to TrueDistinct).
	Distinct float64

	// TrueDistinct is the actual distinct count.
	TrueDistinct float64

	// Min and Max bound the numeric domain of the column. Predicates in
	// generated jobs compare against constants drawn from this range.
	Min, Max float64

	// Skew is the Zipf exponent of the value frequency distribution.
	// 0 means uniform. Join keys with Skew > 0 produce true join fan-outs
	// far above the estimator's uniform-frequency prediction.
	Skew float64
}

// Correlation records that predicates on columns A and B of the same stream
// are correlated: the true joint selectivity of conjunctive filters on both
// is Factor times the independence product (clamped to the smaller single
// selectivity). Factor > 1 means positively correlated predicates — the
// classic source of underestimates.
type Correlation struct {
	A, B   string
	Factor float64
}

// Stream is a named input stream (SCOPE's unit of storage).
type Stream struct {
	Name    string
	Columns []Column

	// BaseRows is the row count the optimizer's statistics were collected
	// at. The estimator always uses this number.
	BaseRows float64

	// DailySigma is the log-normal sigma of the daily size multiplier;
	// TrueRows(day) fluctuates around BaseRows with this spread plus a
	// mild growth trend.
	DailySigma float64

	// GrowthPerDay is a multiplicative daily growth factor for the true
	// size (1.0 = no growth). Recurring templates whose inputs grow are
	// how the paper's regressions-across-weeks scenario arises.
	GrowthPerDay float64

	// BytesPerRow is the average row width, used for I/O accounting.
	BytesPerRow float64

	Correlations []Correlation

	seed uint64

	// trueRowsMu guards trueRowsByDay, the memoized daily true sizes.
	// TrueRows sits on the execution simulator's per-node path and an
	// uncached computation costs a fresh ~5KB generator state; the same
	// few days are asked for constantly.
	trueRowsMu    sync.Mutex
	trueRowsByDay map[int]float64
}

// Catalog is a read-only set of streams plus registered user-defined
// operators.
type Catalog struct {
	streams map[string]*Stream
	names   []string
	udos    map[string]*UDO
}

// UDO describes a user-defined operator (PROCESS or REDUCE body).
// SCOPE jobs mix relational and user-defined operators (§3.1); their
// cardinality behaviour is opaque to the optimizer.
type UDO struct {
	Name string

	// EstFactor is the row multiplier the optimizer assumes (SCOPE-like
	// engines use a fixed guess for opaque operators).
	EstFactor float64

	// TrueFactor is the actual row multiplier applied at execution.
	TrueFactor float64

	// CPUPerRow is the relative CPU weight of the operator per input row
	// (user code is often much heavier than relational operators).
	CPUPerRow float64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		streams: make(map[string]*Stream),
		udos:    make(map[string]*UDO),
	}
}

// AddStream registers a stream. It panics on duplicate names: catalogs are
// constructed once by generators, and a duplicate indicates a generator bug.
func (c *Catalog) AddStream(s *Stream) {
	if _, dup := c.streams[s.Name]; dup {
		// steerq:allow-panic — catalogs are built once by generators; a duplicate is a generator bug.
		panic(fmt.Sprintf("catalog: duplicate stream %q", s.Name))
	}
	c.streams[s.Name] = s
	c.names = append(c.names, s.Name)
	sort.Strings(c.names)
}

// AddUDO registers a user-defined operator.
func (c *Catalog) AddUDO(u *UDO) {
	if _, dup := c.udos[u.Name]; dup {
		// steerq:allow-panic — catalogs are built once by generators; a duplicate is a generator bug.
		panic(fmt.Sprintf("catalog: duplicate UDO %q", u.Name))
	}
	c.udos[u.Name] = u
}

// Stream returns the named stream, or nil if absent.
func (c *Catalog) Stream(name string) *Stream { return c.streams[name] }

// UDO returns the named user-defined operator, or nil if absent.
func (c *Catalog) UDO(name string) *UDO { return c.udos[name] }

// StreamNames returns all stream names in sorted order.
func (c *Catalog) StreamNames() []string { return append([]string(nil), c.names...) }

// Column returns the column statistics for the named column, or nil.
func (s *Stream) Column(name string) *Column {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return &s.Columns[i]
		}
	}
	return nil
}

// TrueRows returns the actual number of rows in the stream on the given day.
// It is deterministic in (stream name, day): every stream evolves on its own
// schedule.
func (s *Stream) TrueRows(day int) float64 {
	s.trueRowsMu.Lock()
	if rows, ok := s.trueRowsByDay[day]; ok {
		s.trueRowsMu.Unlock()
		return rows
	}
	s.trueRowsMu.Unlock()
	r := xrand.New(s.seed).Derive("stream", s.Name, "day", fmt.Sprint(day))
	mult := r.LogNormal(0, s.DailySigma)
	growth := math.Pow(s.GrowthPerDay, float64(day))
	rows := s.BaseRows * mult * growth
	if rows < 1 {
		rows = 1
	}
	// Compute outside the lock: a racing duplicate computation yields the
	// identical deterministic value, so last-write-wins is harmless.
	s.trueRowsMu.Lock()
	if s.trueRowsByDay == nil {
		s.trueRowsByDay = make(map[int]float64)
	}
	s.trueRowsByDay[day] = rows
	s.trueRowsMu.Unlock()
	return rows
}

// CorrelationFactor returns the true-selectivity correction factor for a
// conjunction of predicates on columns a and b, or 1 if they are not
// correlated.
func (s *Stream) CorrelationFactor(a, b string) float64 {
	for _, c := range s.Correlations {
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			return c.Factor
		}
	}
	return 1
}

// SkewFanout converts a column's Zipf skew into the multiplier by which the
// true join fan-out on that key exceeds the uniform-frequency prediction.
// With skew z over d distinct values, the expected frequency of a uniformly
// drawn *row*'s key is sum(f_i^2)/sum(f_i) rather than n/d; this returns the
// ratio of the two, >= 1.
func SkewFanout(distinct, skew float64) float64 {
	if skew <= 0 || distinct <= 1 {
		return 1
	}
	d := int(distinct)
	if d > 4096 {
		// The harmonic sums converge quickly; cap the loop for speed.
		d = 4096
	}
	var s1, s2 float64
	for i := 1; i <= d; i++ {
		f := 1 / math.Pow(float64(i), skew)
		s1 += f
		s2 += f * f
	}
	// ratio of (s2/s1^2) to (1/d): how concentrated the mass is.
	r := (s2 / (s1 * s1)) * float64(d)
	if r < 1 {
		return 1
	}
	return r
}
