package rules

import (
	"fmt"

	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// Catalog assembles the full 256-rule set. The census matches Table 2 of the
// paper: 37 required, 46 off-by-default, 141 on-by-default, 32
// implementation.
func Catalog() *cascades.RuleSet {
	mk := func(id int, name string, cat cascades.Category) info {
		return info(cascades.RuleInfo{ID: id, Name: name, Category: cat})
	}

	transforms := []cascades.TransformRule{
		// Off-by-default transformations.
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll1, "CorrelatedJoinOnUnionAll1", cascades.OffByDefault), side: 0, minBranches: 2, maxBranches: 2},
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll2, "CorrelatedJoinOnUnionAll2", cascades.OffByDefault), side: 0, minBranches: 3},
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll3, "CorrelatedJoinOnUnionAll3", cascades.OffByDefault), side: 1, minBranches: 2},
		groupbyOnJoin{info: mk(IDGroupbyOnJoin, "GroupbyOnJoin", cascades.OffByDefault), side: 0},
		groupbyOnJoin{info: mk(IDGroupbyOnJoinRight, "GroupbyOnJoinRight", cascades.OffByDefault), side: 1},
		topOnUnionAll{info: mk(IDTopOnUnionAll, "TopOnUnionAll", cascades.OffByDefault)},
		selectSplitDisjunction{info: mk(IDSelectSplitDisjunction, "SelectSplitDisjunction", cascades.OffByDefault)},

		// On-by-default transformations.
		collapseSelects{info: mk(IDCollapseSelects, "CollapseSelects", cascades.OnByDefault)},
		selectOnProject{info: mk(IDSelectOnProject, "SelectOnProject", cascades.OnByDefault)},
		selectOnJoin{info: mk(IDSelectOnJoinLeft, "SelectOnJoinLeft", cascades.OnByDefault), side: 0},
		selectOnJoin{info: mk(IDSelectOnJoinRight, "SelectOnJoinRight", cascades.OnByDefault), side: 1},
		selectOnUnionAll{info: mk(IDSelectOnUnionAll, "SelectOnUnionAll", cascades.OnByDefault)},
		selectOnGroupBy{info: mk(IDSelectOnGroupBy, "SelectOnGroupBy", cascades.OnByDefault)},
		selectPredNormalized{info: mk(IDSelectPredNormalized, "SelectPredNormalized", cascades.OnByDefault)},
		selectOnTrue{info: mk(IDSelectOnTrue, "SelectOnTrue", cascades.OnByDefault)},
		selectIntoGet{info: mk(IDSelectIntoGet, "SelectIntoGet", cascades.OnByDefault)},
		joinCommute{info: mk(IDJoinCommute, "JoinCommute", cascades.OnByDefault)},
		joinAssoc{info: mk(IDJoinAssocLeft, "JoinAssocLeft", cascades.OnByDefault), side: 0},
		joinAssoc{info: mk(IDJoinAssocRight, "JoinAssocRight", cascades.OnByDefault), side: 1},
		projectOnProject{info: mk(IDProjectOnProject, "ProjectOnProject", cascades.OnByDefault)},
		unionAllFlatten{info: mk(IDUnionAllFlatten, "UnionAllFlatten", cascades.OnByDefault)},
		processOnUnionAll{info: mk(IDProcessOnUnionAll, "ProcessOnUnionAll", cascades.OnByDefault)},
		groupbyBelowUnionAll{info: mk(IDGroupbyBelowUnionAll, "GroupbyBelowUnionAll", cascades.OnByDefault)},
		topOnProject{info: mk(IDTopOnProject, "TopOnProject", cascades.OnByDefault)},
		groupbyOnProject{info: mk(IDGroupbyOnProject, "GroupbyOnProject", cascades.OnByDefault)},
		transitivePredicate{info: mk(IDTransitivePredicate, "TransitivePredicate", cascades.OnByDefault)},
		udoPredicateTransfer{info: mk(IDUdoPredicateTransfer, "UdoPredicateTransfer", cascades.OnByDefault)},
	}

	implements := []cascades.ImplementRule{
		// Required implementation machinery.
		getToRange{info: mk(IDGetToRange, "GetToRange", cascades.Required)},
		selectToFilter{info: mk(IDSelectToFilter, "SelectToFilter", cascades.Required)},
		projectToCompute{info: mk(IDProjectToCompute, "ProjectToCompute", cascades.Required)},
		buildOutput{info: mk(IDBuildOutput, "BuildOutput", cascades.Required)},
		buildMulti{info: mk(IDBuildMulti, "BuildMulti", cascades.Required)},

		// Implementation category.
		joinImpl{info: mk(IDHashJoinImpl1, "HashJoinImpl1", cascades.Implementation), flavor: plan.PhysHashJoin},
		joinImpl{info: mk(IDJoinImpl2, "JoinImpl2", cascades.Implementation), flavor: plan.PhysHashJoinAlt},
		joinImpl{info: mk(IDMergeJoinImpl, "MergeJoinImpl", cascades.Implementation), flavor: plan.PhysMergeJoin},
		joinImpl{info: mk(IDJoinToApplyIndex1, "JoinToApplyIndex1", cascades.Implementation), flavor: plan.PhysLoopJoin},
		aggImpl{info: mk(IDHashAggImpl, "HashAggImpl", cascades.Implementation), flavor: plan.PhysHashAgg},
		aggImpl{info: mk(IDStreamAggImpl, "StreamAggImpl", cascades.Implementation), flavor: plan.PhysStreamAgg},
		aggImpl{info: mk(IDLocalGlobalAggImpl, "LocalGlobalAggImpl", cascades.Implementation), flavor: plan.PhysFinalHashAgg},
		unionImpl{info: mk(IDUnionAllToUnionAll, "UnionAllToUnionAll", cascades.Implementation), flavor: plan.PhysUnionMerge},
		unionImpl{info: mk(IDUnionAllToVirtualDS, "UnionAllToVirtualDataset", cascades.Implementation), flavor: plan.PhysVirtualDataset},
		processImpl{info: mk(IDProcessImpl, "ProcessImpl", cascades.Implementation)},
		reduceImpl{info: mk(IDReduceImpl, "ReduceImpl", cascades.Implementation)},
		topImpl{info: mk(IDTopImplSimple, "TopImplSimple", cascades.Implementation)},
		topImpl{info: mk(IDTopImplTwoPhase, "TopImplTwoPhase", cascades.Implementation), twoPhase: true},
	}

	// Declared rules: registered catalog entries whose operator classes do
	// not occur in the dialect (see package comment).
	var extra []cascades.RuleInfo
	extra = append(extra,
		cascades.RuleInfo{ID: IDEnforceExchange, Name: "EnforceExchange", Category: cascades.Required},
		cascades.RuleInfo{ID: IDEnforceSortOrder, Name: "EnforceSortOrder", Category: cascades.Required},
	)
	next := 7 // after the real required rules
	for _, name := range declaredRequired {
		extra = append(extra, cascades.RuleInfo{ID: next, Name: name, Category: cascades.Required})
		next++
	}
	if next != requiredEnd {
		panic(fmt.Sprintf("rules: required census mismatch: next=%d want %d", next, requiredEnd))
	}
	next = IDSelectSplitDisjunction + 1
	for _, name := range declaredOffByDefault {
		extra = append(extra, cascades.RuleInfo{ID: next, Name: name, Category: cascades.OffByDefault})
		next++
	}
	if next != offByDefaultEnd {
		panic(fmt.Sprintf("rules: off-by-default census mismatch: next=%d want %d", next, offByDefaultEnd))
	}
	next = IDUdoPredicateTransfer + 1
	for _, name := range declaredOnByDefault {
		extra = append(extra, cascades.RuleInfo{ID: next, Name: name, Category: cascades.OnByDefault})
		next++
	}
	if next != onByDefaultEnd {
		panic(fmt.Sprintf("rules: on-by-default census mismatch: next=%d want %d", next, onByDefaultEnd))
	}
	next = IDTopImplTwoPhase + 1
	for _, name := range declaredImplementation {
		extra = append(extra, cascades.RuleInfo{ID: next, Name: name, Category: cascades.Implementation})
		next++
	}
	if next != catalogEnd {
		panic(fmt.Sprintf("rules: implementation census mismatch: next=%d want %d", next, catalogEnd))
	}

	rs, err := cascades.NewRuleSet(transforms, implements, extra)
	if err != nil {
		panic(err) // the catalog is static; an error is a programming bug
	}
	return rs
}
