package rules

import (
	"fmt"

	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// Catalog assembles the full 256-rule set. The census matches Table 2 of the
// paper: 37 required, 46 off-by-default, 141 on-by-default, 32
// implementation.
func Catalog() *cascades.RuleSet {
	rs, err := buildCatalog()
	if err != nil {
		// The catalog is static data; buildCatalog only fails on a
		// programming error, which lint and the golden test catch.
		// steerq:allow-panic
		panic(err)
	}
	return rs
}

// buildCatalog constructs and census-checks the rule set, reporting any
// catalog defect as an error.
func buildCatalog() (*cascades.RuleSet, error) {
	mk := func(id int, name string, cat cascades.Category) info {
		return info(cascades.RuleInfo{ID: id, Name: name, Category: cat})
	}

	transforms := []cascades.TransformRule{
		// Off-by-default transformations.
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll1, "CorrelatedJoinOnUnionAll1", cascades.OffByDefault), side: 0, minBranches: 2, maxBranches: 2},
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll2, "CorrelatedJoinOnUnionAll2", cascades.OffByDefault), side: 0, minBranches: 3},
		correlatedJoinOnUnionAll{info: mk(IDCorrelatedJoinOnUnionAll3, "CorrelatedJoinOnUnionAll3", cascades.OffByDefault), side: 1, minBranches: 2},
		groupbyOnJoin{info: mk(IDGroupbyOnJoin, "GroupbyOnJoin", cascades.OffByDefault), side: 0},
		groupbyOnJoin{info: mk(IDGroupbyOnJoinRight, "GroupbyOnJoinRight", cascades.OffByDefault), side: 1},
		topOnUnionAll{info: mk(IDTopOnUnionAll, "TopOnUnionAll", cascades.OffByDefault)},
		selectSplitDisjunction{info: mk(IDSelectSplitDisjunction, "SelectSplitDisjunction", cascades.OffByDefault)},

		// On-by-default transformations.
		collapseSelects{info: mk(IDCollapseSelects, "CollapseSelects", cascades.OnByDefault)},
		selectOnProject{info: mk(IDSelectOnProject, "SelectOnProject", cascades.OnByDefault)},
		selectOnJoin{info: mk(IDSelectOnJoinLeft, "SelectOnJoinLeft", cascades.OnByDefault), side: 0},
		selectOnJoin{info: mk(IDSelectOnJoinRight, "SelectOnJoinRight", cascades.OnByDefault), side: 1},
		selectOnUnionAll{info: mk(IDSelectOnUnionAll, "SelectOnUnionAll", cascades.OnByDefault)},
		selectOnGroupBy{info: mk(IDSelectOnGroupBy, "SelectOnGroupBy", cascades.OnByDefault)},
		selectPredNormalized{info: mk(IDSelectPredNormalized, "SelectPredNormalized", cascades.OnByDefault)},
		selectOnTrue{info: mk(IDSelectOnTrue, "SelectOnTrue", cascades.OnByDefault)},
		selectIntoGet{info: mk(IDSelectIntoGet, "SelectIntoGet", cascades.OnByDefault)},
		joinCommute{info: mk(IDJoinCommute, "JoinCommute", cascades.OnByDefault)},
		joinAssoc{info: mk(IDJoinAssocLeft, "JoinAssocLeft", cascades.OnByDefault), side: 0},
		joinAssoc{info: mk(IDJoinAssocRight, "JoinAssocRight", cascades.OnByDefault), side: 1},
		projectOnProject{info: mk(IDProjectOnProject, "ProjectOnProject", cascades.OnByDefault)},
		unionAllFlatten{info: mk(IDUnionAllFlatten, "UnionAllFlatten", cascades.OnByDefault)},
		processOnUnionAll{info: mk(IDProcessOnUnionAll, "ProcessOnUnionAll", cascades.OnByDefault)},
		groupbyBelowUnionAll{info: mk(IDGroupbyBelowUnionAll, "GroupbyBelowUnionAll", cascades.OnByDefault)},
		topOnProject{info: mk(IDTopOnProject, "TopOnProject", cascades.OnByDefault)},
		groupbyOnProject{info: mk(IDGroupbyOnProject, "GroupbyOnProject", cascades.OnByDefault)},
		transitivePredicate{info: mk(IDTransitivePredicate, "TransitivePredicate", cascades.OnByDefault)},
		udoPredicateTransfer{info: mk(IDUdoPredicateTransfer, "UdoPredicateTransfer", cascades.OnByDefault)},
	}

	implements := []cascades.ImplementRule{
		// Required implementation machinery.
		getToRange{info: mk(IDGetToRange, "GetToRange", cascades.Required)},
		selectToFilter{info: mk(IDSelectToFilter, "SelectToFilter", cascades.Required)},
		projectToCompute{info: mk(IDProjectToCompute, "ProjectToCompute", cascades.Required)},
		buildOutput{info: mk(IDBuildOutput, "BuildOutput", cascades.Required)},
		buildMulti{info: mk(IDBuildMulti, "BuildMulti", cascades.Required)},

		// Implementation category.
		joinImpl{info: mk(IDHashJoinImpl1, "HashJoinImpl1", cascades.Implementation), flavor: plan.PhysHashJoin},
		joinImpl{info: mk(IDJoinImpl2, "JoinImpl2", cascades.Implementation), flavor: plan.PhysHashJoinAlt},
		joinImpl{info: mk(IDMergeJoinImpl, "MergeJoinImpl", cascades.Implementation), flavor: plan.PhysMergeJoin},
		joinImpl{info: mk(IDJoinToApplyIndex1, "JoinToApplyIndex1", cascades.Implementation), flavor: plan.PhysLoopJoin},
		aggImpl{info: mk(IDHashAggImpl, "HashAggImpl", cascades.Implementation), flavor: plan.PhysHashAgg},
		aggImpl{info: mk(IDStreamAggImpl, "StreamAggImpl", cascades.Implementation), flavor: plan.PhysStreamAgg},
		aggImpl{info: mk(IDLocalGlobalAggImpl, "LocalGlobalAggImpl", cascades.Implementation), flavor: plan.PhysFinalHashAgg},
		unionImpl{info: mk(IDUnionAllToUnionAll, "UnionAllToUnionAll", cascades.Implementation), flavor: plan.PhysUnionMerge},
		unionImpl{info: mk(IDUnionAllToVirtualDS, "UnionAllToVirtualDataset", cascades.Implementation), flavor: plan.PhysVirtualDataset},
		processImpl{info: mk(IDProcessImpl, "ProcessImpl", cascades.Implementation)},
		reduceImpl{info: mk(IDReduceImpl, "ReduceImpl", cascades.Implementation)},
		topImpl{info: mk(IDTopImplSimple, "TopImplSimple", cascades.Implementation)},
		topImpl{info: mk(IDTopImplTwoPhase, "TopImplTwoPhase", cascades.Implementation), twoPhase: true},
	}

	// Declared rules: registered catalog entries whose operator classes do
	// not occur in the dialect (see package comment).
	var extra []cascades.RuleInfo
	extra = append(extra,
		cascades.RuleInfo{ID: IDEnforceExchange, Name: "EnforceExchange", Category: cascades.Required},
		cascades.RuleInfo{ID: IDEnforceSortOrder, Name: "EnforceSortOrder", Category: cascades.Required},
	)
	for _, b := range declaredBlocks {
		next := b.first
		for _, name := range b.names {
			extra = append(extra, cascades.RuleInfo{ID: next, Name: name, Category: b.cat})
			next++
		}
		if end := bandEnd(b.cat); next != end {
			return nil, fmt.Errorf("rules: census mismatch: %v block ends at %d, band ends at %d", b.cat, next, end)
		}
	}
	if total := len(transforms) + len(implements) + len(extra); total != catalogEnd {
		return nil, fmt.Errorf("rules: catalog census mismatch: %d registrations, want %d", total, catalogEnd)
	}

	rs, err := cascades.NewRuleSet(transforms, implements, extra)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return rs, nil
}

// bandEnd returns the exclusive upper ID bound of a category's band.
func bandEnd(cat cascades.Category) int {
	switch cat {
	case cascades.Required:
		return requiredEnd
	case cascades.OffByDefault:
		return offByDefaultEnd
	case cascades.OnByDefault:
		return onByDefaultEnd
	default:
		return catalogEnd
	}
}
