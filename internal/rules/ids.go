// Package rules defines the rule catalog of the simulated SCOPE optimizer:
// 256 rules in the four categories of Table 2 of the paper — 37 required,
// 46 off-by-default, 141 on-by-default and 32 implementation rules.
//
// A few dozen rules carry real transformation/implementation behaviour over
// the operators of the scopeql dialect; they include every rule the paper
// names in its examples and RuleDiffs (CorrelatedJoinOnUnionAll,
// GroupbyOnJoin, GroupbyBelowUnionAll, CollapseSelects, SelectOnProject,
// SelectOnTrue, UnionAllToVirtualDataset, UnionAllToUnionAll, HashJoinImpl1,
// JoinImpl2, JoinToApplyIndex1, ...). The remaining IDs are declared catalog
// entries for operator classes outside the dialect; they never fire, exactly
// like the dozens of registered-but-unused rules the paper observes in
// production (Table 2 reports 86 unused rules on Workload A).
package rules

import "steerq/internal/cascades"

// Rule IDs. Stable: bit i of a rule configuration or signature refers to the
// rule with ID i. Layout:
//
//	[0,37)    required
//	[37,83)   off-by-default
//	[83,224)  on-by-default
//	[224,256) implementation
const (
	// Required rules.
	IDEnforceExchange  = 0
	IDEnforceSortOrder = 1
	IDBuildOutput      = 2
	IDGetToRange       = 3
	IDSelectToFilter   = 4
	IDProjectToCompute = 5
	IDBuildMulti       = 6
	// 7..36: declared required rules for absent operator classes.

	// Off-by-default rules.
	IDCorrelatedJoinOnUnionAll1 = 37
	IDCorrelatedJoinOnUnionAll2 = 38
	IDCorrelatedJoinOnUnionAll3 = 39
	IDGroupbyOnJoin             = 40
	IDGroupbyOnJoinRight        = 41
	IDTopOnUnionAll             = 42
	IDSelectSplitDisjunction    = 43
	// 44..82: declared off-by-default rules.

	// On-by-default rules.
	IDCollapseSelects      = 83
	IDSelectOnProject      = 84
	IDSelectOnJoinLeft     = 85
	IDSelectOnJoinRight    = 86
	IDSelectOnUnionAll     = 87
	IDSelectOnGroupBy      = 88
	IDSelectPredNormalized = 89
	IDSelectOnTrue         = 90
	IDSelectIntoGet        = 91
	IDJoinCommute          = 92
	IDJoinAssocLeft        = 93
	IDJoinAssocRight       = 94
	IDProjectOnProject     = 95
	IDUnionAllFlatten      = 96
	IDProcessOnUnionAll    = 97
	IDGroupbyBelowUnionAll = 98
	IDTopOnProject         = 99
	IDGroupbyOnProject     = 100
	IDTransitivePredicate  = 101
	IDUdoPredicateTransfer = 102
	// 103..223: declared on-by-default rules.

	// Implementation rules.
	IDHashJoinImpl1       = 224
	IDJoinImpl2           = 225
	IDMergeJoinImpl       = 226
	IDJoinToApplyIndex1   = 227
	IDHashAggImpl         = 228
	IDStreamAggImpl       = 229
	IDLocalGlobalAggImpl  = 230
	IDUnionAllToUnionAll  = 231
	IDUnionAllToVirtualDS = 232
	IDProcessImpl         = 233
	IDReduceImpl          = 234
	IDTopImplSimple       = 235
	IDTopImplTwoPhase     = 236
	// 237..255: declared implementation rules.
)

// Category boundaries.
const (
	requiredEnd     = 37
	offByDefaultEnd = 83
	onByDefaultEnd  = 224
	catalogEnd      = 256
)

// declaredRequired names the registered required rules with no behaviour in
// the dialect (their operator classes — views, sequences, window frames,
// spools, asserts — do not occur in generated jobs). The paper likewise
// observes 9 of SCOPE's 37 required rules unused in Workload A.
var declaredRequired = []string{
	"NormalizeView", "BuildSequence", "AssertImpl", "EnforceRowOrder",
	"BuildSpool", "NormalizeWindowFrame", "BuildStreamSet", "EnforceSchema",
	"BuildCheckpoint", "NormalizeCast", "BuildApplyBinding", "EnforceNullOrder",
	"BuildExtractor", "NormalizeCollation", "BuildCombiner", "EnforceKeyRange",
	"BuildOutputter", "NormalizeDefault", "BuildMetaOp", "EnforceAffinity",
	"BuildRowsetSource", "NormalizeGuid", "BuildDelta", "EnforceStreamGuard",
	"BuildSample", "NormalizeDateTime", "BuildIndexLookup", "EnforceHeartbeat",
	"BuildViewAdapter", "NormalizeUdtCall",
}

// declaredOffByDefault names the registered experimental/unsafe rules with no
// behaviour in the dialect.
var declaredOffByDefault = []string{
	"CorrelatedJoinOnUnion4", "CorrelatedJoinOnUnion5", "CorrelatedJoinOnUnion6",
	"JoinOnIndexApply2", "JoinOnIndexApply3", "SemiJoinReduction1",
	"SemiJoinReduction2", "BitVectorFilter1", "BitVectorFilter2",
	"StarJoinReorder", "BushyJoinSearch", "MagicSetRewrite",
	"UnfoldCorrelatedApply", "DecorrelateSubquery2", "PartitionWiseJoin",
	"RangePartitionJoin", "SkewedJoinSplit", "ReplicatedAggregation",
	"WindowToSelfJoin", "CrossApplyToJoin2", "LazySpoolInsert",
	"EagerIndexIntersect", "DynamicPivot", "AdaptiveBroadcast",
	"SpeculativeSort", "HintedRecursion", "ForcedStreamRepartition",
	"ColumnGroupPrune", "MultiWayUnionSplit", "NestedUnionFusion",
	"AsymmetricHashRepartition", "CoalescePartitions2", "SampledJoinEstimate",
	"TwoLevelVirtualDataset", "HeuristicBloomProbe", "JoinOnClusteredRange",
	"RecursiveCTEUnroll", "LateMaterialization2", "PushReduceBelowJoin",
}

// declaredOnByDefault names the registered on-by-default rules with no
// behaviour in the dialect. Table 2 reports 37 of SCOPE's 141 on-by-default
// rules unused even across a 95K-job day; here the unused fraction is larger
// because the dialect is narrower.
var declaredOnByDefault = []string{
	"NormalizeReduce", "SelectPartitions", "SequenceProjectOnUnion",
	"CollapseProjects2", "NormalizeAggArgs", "RemoveRedundantExchange",
	"SimplifyCaseExpr", "FoldConstants2", "NullabilityNarrowing",
	"DistinctToGroupby", "ProjectBelowReduce",
	"ReduceOnUnionAll", "TopOnTop", "SortElimination",
	"RedundantJoinElim", "SelfJoinToProject",
	"PredicateSimplify2", "InListToJoin", "JoinPredPullup",
	"OuterToInnerJoin", "UnionAllConstantBranchPrune", "EmptySetPropagation",
	"LimitPushdown2", "ExchangeMergeAdjacent", "BroadcastThresholdTune",
	"PartialSortExploit", "InterestingOrderPropagation", "KeyDependencyPrune",
	"AggFunctionSplit", "AvgToSumCount", "CountStarOptimize",
	"MinMaxIndexProbe", "GroupbyKeySubsume", "RollupExpansion",
	"CubeExpansion", "GroupingSetSplit", "HavingToWhere",
	"WindowFunctionSlide", "RowNumberElim", "RankToTop",
	"DenseRankFold", "LeadLagToSelfJoin", "FirstValueOptimize",
	"StringPredicateRange", "LikeToRange", "DatePredicateFold",
	"IntervalOverlapSplit", "CaseToUnion", "CoalesceChainFold",
	"IsNullToAntiJoin", "NotExistsToAntiJoin", "ExistsToSemiJoin",
	"InSubqueryToSemiJoin", "ScalarSubqueryToApply", "ApplyToJoin",
	"DecorrelateApply", "FlattenApplyUnion", "ApplyProjectHoist",
	"CommonSubplanShare", "ViewSubstitution", "MaterializedViewMatch",
	"IndexedViewProbe", "StatisticsInjection", "CardinalityFeedback",
	"HistogramRefine", "SargableRewrite", "ResidualPredSplit",
	"PartitionPrune2", "StreamGuardElim", "AffinityColocate",
	"TokenAwareRepartition", "VertexFusion", "StageMergeAdjacent",
	"PipelineBreakInsert", "CheckpointElide", "IntermediateCompression",
	"ShuffleSkewSplit", "RangeRepartitionBalance", "HashHintPropagate",
	"SortKeyPrefixExploit", "MergeExchangeCombine", "LocalExchangeElide",
	"ReplicaAwareRead", "ColdStreamDefer", "HotStreamPin",
	"ExtractorColumnPrune", "OutputterBuffering", "UdoSignatureCache",
	"ProcessPipelineFuse", "ReducerCombinerInject", "CombinerBelowExchange",
	"RecursiveReducerSplit", "UdoColumnPushdown",
	"ScriptConstantHoist", "ParameterSniffingGuard", "PlanGuideMatch",
	"LegacySyntaxNormalize", "DeprecatedOpRewrite", "CompatShimInsert",
	"UnionAllBalance", "UnionAllBranchMerge", "UnionAllEmptyPrune",
	"JoinBuildSideHint", "ProbeSideResidual", "HashTeamFormation",
	"BitmapPushdown2", "RuntimeFilterInject", "DynamicPartitionElim",
	"AdaptiveJoinPivot", "BatchModeSwitch", "RowModeFallback",
	"MemoryGrantShape", "SpillAnticipation", "GranuleSizeTune",
	"VectorizedFilterSplit", "ShortCircuitAnd", "PredicateCostOrder",
	"ExpressionCSE", "SubexpressionHoist", "ComputeScalarMerge",
	"ProjectionNarrowing",
}

// declaredImplementation names the registered implementation rules with no
// behaviour in the dialect.
var declaredImplementation = []string{
	"UnionToVirtualDataset2", "ConcatImpl", "SpoolImpl",
	"WindowAggImpl", "SortedTopImpl", "IndexSeekImpl",
	"IndexRangeImpl", "ColumnStoreScanImpl", "LookupJoinImpl",
	"PartitionedOutputImpl", "SampledScanImpl", "CheckpointImpl",
	"SequenceImpl", "StreamSetImpl", "DeltaScanImpl",
	"BufferedExchangeImpl", "CompressedShuffleImpl", "RowBatchExchangeImpl",
	"BroadcastTreeImpl",
}

// declaredBlock assigns a contiguous ID range to declared-only rules:
// names[i] registers under ID first+i.
type declaredBlock struct {
	first int
	names []string
	cat   cascades.Category
}

// declaredBlocks places the declared-only name lists in the catalog. Together
// with the explicit registrations in catalog.go they must tile [0, catalogEnd)
// exactly once; buildCatalog verifies the census at runtime and the rulecheck
// analyzer verifies it statically. Keep the literal shape — constant first,
// package-level names slice, constant cat — or rulecheck cannot see the range.
var declaredBlocks = []declaredBlock{
	{first: IDBuildMulti + 1, names: declaredRequired, cat: cascades.Required},
	{first: IDSelectSplitDisjunction + 1, names: declaredOffByDefault, cat: cascades.OffByDefault},
	{first: IDUdoPredicateTransfer + 1, names: declaredOnByDefault, cat: cascades.OnByDefault},
	{first: IDTopImplTwoPhase + 1, names: declaredImplementation, cat: cascades.Implementation},
}
