package rules

import "steerq/internal/plan"

// Every catalog rule opens with a single-operator guard (`if e.Node.Op !=
// plan.OpX { return nil }`). The cascades.OpMatcher declarations below
// surface that guard to the optimizer, which then consults each rule only on
// expressions whose operator it could match. That prunes the dead
// Apply/Implement calls from the explore/implement loops and — because a
// skipped rule never has its enabled-bit read — keeps the compile's decision
// footprint tight, so more configurations collapse into one equivalence
// class in the steering layer.
//
// Each declaration must name exactly the operator its rule's guard checks;
// TestMatchOpHonorsGuards probes every rule against every other operator to
// keep the two in sync.

func (r collapseSelects) MatchOp() plan.Op          { return plan.OpSelect }
func (r selectOnProject) MatchOp() plan.Op          { return plan.OpSelect }
func (r selectOnJoin) MatchOp() plan.Op             { return plan.OpSelect }
func (r selectOnUnionAll) MatchOp() plan.Op         { return plan.OpSelect }
func (r selectOnGroupBy) MatchOp() plan.Op          { return plan.OpSelect }
func (r selectPredNormalized) MatchOp() plan.Op     { return plan.OpSelect }
func (r selectOnTrue) MatchOp() plan.Op             { return plan.OpSelect }
func (r selectIntoGet) MatchOp() plan.Op            { return plan.OpSelect }
func (r selectSplitDisjunction) MatchOp() plan.Op   { return plan.OpSelect }
func (r transitivePredicate) MatchOp() plan.Op      { return plan.OpSelect }
func (r udoPredicateTransfer) MatchOp() plan.Op     { return plan.OpSelect }
func (r joinCommute) MatchOp() plan.Op              { return plan.OpJoin }
func (r joinAssoc) MatchOp() plan.Op                { return plan.OpJoin }
func (r correlatedJoinOnUnionAll) MatchOp() plan.Op { return plan.OpJoin }
func (r projectOnProject) MatchOp() plan.Op         { return plan.OpProject }
func (r unionAllFlatten) MatchOp() plan.Op          { return plan.OpUnionAll }
func (r processOnUnionAll) MatchOp() plan.Op        { return plan.OpProcess }
func (r groupbyBelowUnionAll) MatchOp() plan.Op     { return plan.OpGroupBy }
func (r groupbyOnJoin) MatchOp() plan.Op            { return plan.OpGroupBy }
func (r groupbyOnProject) MatchOp() plan.Op         { return plan.OpGroupBy }
func (r topOnUnionAll) MatchOp() plan.Op            { return plan.OpTop }
func (r topOnProject) MatchOp() plan.Op             { return plan.OpTop }

func (r getToRange) MatchOp() plan.Op       { return plan.OpGet }
func (r selectToFilter) MatchOp() plan.Op   { return plan.OpSelect }
func (r projectToCompute) MatchOp() plan.Op { return plan.OpProject }
func (r buildOutput) MatchOp() plan.Op      { return plan.OpOutput }
func (r buildMulti) MatchOp() plan.Op       { return plan.OpMulti }
func (r joinImpl) MatchOp() plan.Op         { return plan.OpJoin }
func (r aggImpl) MatchOp() plan.Op          { return plan.OpGroupBy }
func (r unionImpl) MatchOp() plan.Op        { return plan.OpUnionAll }
func (r processImpl) MatchOp() plan.Op      { return plan.OpProcess }
func (r reduceImpl) MatchOp() plan.Op       { return plan.OpReduce }
func (r topImpl) MatchOp() plan.Op          { return plan.OpTop }
