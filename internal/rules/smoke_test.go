package rules

import (
	"testing"

	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/scopeql"
)

// testCatalog builds a small catalog shared by the package tests.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "shop/orders",
		Columns: []catalog.Column{
			{Name: "user_id", Distinct: 50000, TrueDistinct: 48000, Min: 0, Max: 50000, Skew: 1.1},
			{Name: "amount", Distinct: 10000, TrueDistinct: 9000, Min: 0, Max: 1000},
			{Name: "region", Distinct: 20, TrueDistinct: 20, Min: 0, Max: 20},
			{Name: "day_part", Distinct: 4, TrueDistinct: 4, Min: 0, Max: 4},
		},
		BaseRows:    5e6,
		DailySigma:  0.2,
		BytesPerRow: 120,
		Correlations: []catalog.Correlation{
			{A: "region", B: "day_part", Factor: 3.5},
		},
		GrowthPerDay: 1.0,
	})
	cat.AddStream(&catalog.Stream{
		Name: "shop/users",
		Columns: []catalog.Column{
			{Name: "user_id", Distinct: 50000, TrueDistinct: 48000, Min: 0, Max: 50000},
			{Name: "segment", Distinct: 8, TrueDistinct: 8, Min: 0, Max: 8},
			{Name: "score", Distinct: 1000, TrueDistinct: 900, Min: 0, Max: 100},
		},
		BaseRows:     50000,
		DailySigma:   0.05,
		BytesPerRow:  64,
		GrowthPerDay: 1.0,
	})
	cat.AddStream(&catalog.Stream{
		Name: "shop/clicks",
		Columns: []catalog.Column{
			{Name: "user_id", Distinct: 40000, TrueDistinct: 42000, Min: 0, Max: 50000, Skew: 1.4},
			{Name: "page", Distinct: 300, TrueDistinct: 310, Min: 0, Max: 300},
		},
		BaseRows:     2e7,
		DailySigma:   0.3,
		BytesPerRow:  48,
		GrowthPerDay: 1.0,
	})
	cat.AddUDO(&catalog.UDO{Name: "SegmentScorer", EstFactor: 1, TrueFactor: 1.6, CPUPerRow: 3})
	cat.AddUDO(&catalog.UDO{Name: "Cooker", EstFactor: 1, TrueFactor: 0.4, CPUPerRow: 6})
	return cat
}

const smokeScript = `
filtered = SELECT user_id, region, amount FROM "shop/orders"
           WHERE amount > 100 AND region == 3 AND day_part == 2;
joined   = SELECT f.user_id, u.segment, f.amount
           FROM filtered AS f
           INNER JOIN "shop/users" AS u ON f.user_id == u.user_id;
agg      = SELECT segment, SUM(amount) AS total, COUNT(*) AS cnt
           FROM joined GROUP BY segment;
cooked   = PROCESS agg USING SegmentScorer;
OUTPUT cooked TO "out/segment_totals";
`

func TestOptimizeSmoke(t *testing.T) {
	cat := testCatalog()
	root, err := scopeql.Compile(smokeScript, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt := NewOptimizer(cost.NewEstimated(cat))
	rs := opt.Rules
	res, err := opt.Optimize(root, rs.DefaultConfig())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.Plan == nil || res.Cost <= 0 {
		t.Fatalf("bad result: plan=%v cost=%v", res.Plan, res.Cost)
	}
	if res.Signature.IsEmpty() {
		t.Fatal("empty rule signature")
	}
	t.Logf("cost=%.3f groups=%d exprs=%d sig=%v", res.Cost, res.Groups, res.Exprs, res.Signature)
	t.Logf("plan:\n%s", res.Plan)
	for _, id := range res.Signature.Ones() {
		ri, ok := rs.Info(id)
		if !ok {
			t.Errorf("signature references unknown rule %d", id)
			continue
		}
		t.Logf("used rule: %s", ri)
	}
}
