package rules

import (
	"testing"

	"steerq/internal/cascades"
	"steerq/internal/cost"
	"steerq/internal/plan"
	"steerq/internal/scopeql"
)

// buildMemo compiles a script and wraps its logical plan in a memo.
func buildMemo(t *testing.T, src string) *cascades.Memo {
	t.Helper()
	cat := testCatalog()
	root, err := scopeql.Compile(src, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cascades.NewMemo(root, cost.NewEstimated(cat))
}

// findExpr locates the first memo expression with the given operator.
func findExpr(m *cascades.Memo, op plan.Op) *cascades.MExpr {
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == op {
				return e
			}
		}
	}
	return nil
}

// applyAndIntern applies a transform to the first matching expression and
// interns the results, returning how many were produced.
func applyAndIntern(t *testing.T, m *cascades.Memo, r cascades.TransformRule, op plan.Op) int {
	t.Helper()
	e := findExpr(m, op)
	if e == nil {
		t.Fatalf("no %v expression in memo", op)
	}
	results := r.Apply(e, m)
	for _, rn := range results {
		m.Intern(rn, e.Group, e, r.Info().ID)
	}
	return len(results)
}

const filterJoinScript = `
f = SELECT user_id, amount, region FROM "shop/orders";
fw = SELECT user_id, amount FROM f WHERE amount > 100 AND region == 2;
j = SELECT fw.user_id AS user_id, u.segment AS segment, fw.amount AS amount
    FROM fw INNER JOIN "shop/users" AS u ON fw.user_id == u.user_id;
jf = SELECT user_id, segment, amount FROM j WHERE amount > 500;
OUTPUT jf TO "out/x";
`

func mkRule[T any](ctor func(info) T, id int, name string, cat cascades.Category) T {
	return ctor(info(cascades.RuleInfo{ID: id, Name: name, Category: cat}))
}

func TestCollapseSelectsApply(t *testing.T) {
	m := buildMemo(t, `
a = SELECT user_id, amount FROM "shop/orders" WHERE amount > 10;
b = SELECT user_id, amount FROM a WHERE amount < 500;
OUTPUT b TO "o";
`)
	// The memo holds Select(Project(Select(...))) from the two statements;
	// collapse applies to adjacent selects only, so first push the outer
	// select through the project.
	sop := selectOnProject{info: info(cascades.RuleInfo{ID: IDSelectOnProject, Name: "t", Category: cascades.OnByDefault})}
	pushed := 0
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op != plan.OpSelect {
				continue
			}
			for _, rn := range sop.Apply(e, m) {
				m.Intern(rn, e.Group, e, IDSelectOnProject)
				pushed++
			}
		}
	}
	if pushed == 0 {
		t.Fatal("SelectOnProject produced nothing")
	}
	cs := collapseSelects{info: info(cascades.RuleInfo{ID: IDCollapseSelects, Name: "t", Category: cascades.OnByDefault})}
	applied := 0
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op != plan.OpSelect {
				continue
			}
			res := cs.Apply(e, m)
			applied += len(res)
			for _, rn := range res {
				m.Intern(rn, e.Group, e, IDCollapseSelects)
			}
		}
	}
	if applied == 0 {
		t.Fatal("CollapseSelects never applied")
	}
	// A merged select must exist whose predicate has both conjuncts.
	found := false
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect && len(plan.Conjuncts(e.Node.Pred)) >= 2 && e.RuleID == IDCollapseSelects {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no merged-predicate select interned")
	}
}

func TestSelectOnJoinPushesOneSide(t *testing.T) {
	m := buildMemo(t, filterJoinScript)
	r := selectOnJoin{info: info(cascades.RuleInfo{ID: IDSelectOnJoinLeft, Name: "t", Category: cascades.OnByDefault}), side: 0}
	// The select above the join filters on amount (left side): after
	// pushing the project-level select, the join-level select can move.
	sop := selectOnProject{info: info(cascades.RuleInfo{ID: IDSelectOnProject, Name: "t2", Category: cascades.OnByDefault})}
	for pass := 0; pass < 3; pass++ {
		for _, g := range m.Groups {
			for _, e := range g.Exprs {
				if e.Node.Op != plan.OpSelect {
					continue
				}
				for _, rn := range sop.Apply(e, m) {
					m.Intern(rn, e.Group, e, IDSelectOnProject)
				}
				for _, rn := range r.Apply(e, m) {
					m.Intern(rn, e.Group, e, IDSelectOnJoinLeft)
				}
			}
		}
	}
	// Some join expression must now have a Select group as its left child
	// that was produced by the pushdown.
	found := false
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.RuleID == IDSelectOnJoinLeft {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("filter pushdown through join never fired")
	}
}

func TestSelectPredNormalizedOrdersBySelectivity(t *testing.T) {
	m := buildMemo(t, `
a = SELECT user_id, amount FROM "shop/orders" WHERE amount > 10 AND region == 3;
OUTPUT a TO "o";
`)
	r := selectPredNormalized{info: info(cascades.RuleInfo{ID: IDSelectPredNormalized, Name: "t", Category: cascades.OnByDefault})}
	e := findExpr(m, plan.OpSelect)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("normalization produced %d results", len(res))
	}
	conj := plan.Conjuncts(res[0].Node.Pred)
	est := m.Estimator()
	props := e.Children[0].Props
	for i := 1; i < len(conj); i++ {
		if est.Selectivity(conj[i-1], props) > est.Selectivity(conj[i], props) {
			t.Fatal("conjuncts not sorted by ascending selectivity")
		}
	}
}

func TestSelectIntoGetMergesPredicate(t *testing.T) {
	m := buildMemo(t, `
a = SELECT user_id, amount FROM "shop/orders" WHERE amount > 10;
OUTPUT a TO "o";
`)
	r := selectIntoGet{info: info(cascades.RuleInfo{ID: IDSelectIntoGet, Name: "t", Category: cascades.OnByDefault})}
	e := findExpr(m, plan.OpSelect)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Node.Op != plan.OpGet || res[0].Node.Pred == nil {
		t.Fatalf("merged scan wrong: %v", res[0].Node.Op)
	}
}

func TestJoinCommuteSwapsChildren(t *testing.T) {
	m := buildMemo(t, filterJoinScript)
	r := joinCommute{info: info(cascades.RuleInfo{ID: IDJoinCommute, Name: "t", Category: cascades.OnByDefault})}
	e := findExpr(m, plan.OpJoin)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("commute produced %d results", len(res))
	}
	if res[0].Children[0].Group != e.Children[1] || res[0].Children[1].Group != e.Children[0] {
		t.Fatal("children not swapped")
	}
	// Double commute dedups back to the original expression.
	before := len(e.Group.Exprs)
	m.Intern(res[0], e.Group, e, IDJoinCommute)
	commuted := e.Group.Exprs[len(e.Group.Exprs)-1]
	res2 := r.Apply(commuted, m)
	m.Intern(res2[0], e.Group, commuted, IDJoinCommute)
	if len(e.Group.Exprs) != before+1 {
		t.Fatalf("double commute grew the group: %d -> %d", before, len(e.Group.Exprs))
	}
}

const threeWayJoinScript = `
f = SELECT user_id, amount FROM "shop/orders" WHERE amount > 50;
j1 = SELECT f.user_id AS user_id, f.amount AS amount, u.segment AS segment
     FROM f INNER JOIN "shop/users" AS u ON f.user_id == u.user_id;
j2 = SELECT j1.amount AS amount, j1.segment AS segment, c.page AS page
     FROM j1 INNER JOIN "shop/clicks" AS c ON j1.user_id == c.user_id;
OUTPUT j2 TO "out/3way";
`

func TestJoinAssocCreatesAlternative(t *testing.T) {
	m := buildMemo(t, threeWayJoinScript)
	// Find the upper join: a Join expression whose left child group holds a
	// Project; push that first so the assoc rule can see Join(Join...).
	// Rather than orchestrate passes by hand, run the full optimizer and
	// assert the rule can fire via provenance in at least one memo... here
	// we instead check the rule's structural contract on a hand-built
	// Join(Join(A,B),C).
	cat := testCatalog()
	a, _ := scopeql.Compile(`x = SELECT user_id, amount FROM "shop/orders"; OUTPUT x TO "o";`, cat)
	_ = a
	_ = m
	// Build Join(Join(A,B),C) directly.
	mkCol := func(id int, name, src string) plan.Column {
		return plan.Column{ID: plan.ColumnID(id), Name: name, Source: src}
	}
	ka := mkCol(1, "user_id", "shop/orders.user_id")
	kb := mkCol(2, "user_id", "shop/users.user_id")
	kc := mkCol(3, "user_id", "shop/clicks.user_id")
	A := plan.NewGet("shop/orders", []plan.Column{ka})
	B := plan.NewGet("shop/users", []plan.Column{kb})
	C := plan.NewGet("shop/clicks", []plan.Column{kc})
	inner := plan.NewJoin(A, B, plan.Cmp(plan.OpEQ, plan.ColExpr(ka), plan.ColExpr(kb)))
	outer := plan.NewJoin(inner, C, plan.Cmp(plan.OpEQ, plan.ColExpr(kb), plan.ColExpr(kc)))
	root := plan.NewOutput(outer, "o")
	mm := cascades.NewMemo(root, cost.NewEstimated(cat))

	r := joinAssoc{info: info(cascades.RuleInfo{ID: IDJoinAssocLeft, Name: "t", Category: cascades.OnByDefault}), side: 0}
	var oe *cascades.MExpr
	for _, g := range mm.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpJoin && len(g.Schema) == 3 {
				oe = e
			}
		}
	}
	if oe == nil {
		t.Fatal("outer join expression not found")
	}
	res := r.Apply(oe, mm)
	if len(res) != 1 {
		t.Fatalf("assoc produced %d results", len(res))
	}
	// New shape: Join(A, Join(B, C)).
	if res[0].Children[0].Group == nil {
		t.Fatal("left child of reassociated join should be group A")
	}
	if res[0].Children[1].Sub == nil || res[0].Children[1].Sub.Node.Op != plan.OpJoin {
		t.Fatal("right child should be a fresh inner join")
	}
}

func TestGroupbyBelowUnionAllShape(t *testing.T) {
	m := buildMemo(t, `
b1 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 5;
b2 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 700;
u = b1 UNION ALL b2;
a = SELECT user_id, SUM(amount) AS total, COUNT(*) AS cnt FROM u GROUP BY user_id;
OUTPUT a TO "o";
`)
	// Push the aggregation below the binder's Project first.
	gop := groupbyOnProject{info: info(cascades.RuleInfo{ID: IDGroupbyOnProject, Name: "t0", Category: cascades.OnByDefault})}
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpGroupBy {
				for _, rn := range gop.Apply(e, m) {
					m.Intern(rn, e.Group, e, IDGroupbyOnProject)
				}
			}
		}
	}
	r := groupbyBelowUnionAll{info: info(cascades.RuleInfo{ID: IDGroupbyBelowUnionAll, Name: "t", Category: cascades.OnByDefault})}
	produced := 0
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op != plan.OpGroupBy {
				continue
			}
			res := r.Apply(e, m)
			for _, rn := range res {
				// Shape: GroupBy(UnionAll(GroupBy(b1), GroupBy(b2))).
				if rn.Node.Op != plan.OpGroupBy {
					t.Fatalf("root of rewrite is %v", rn.Node.Op)
				}
				un := rn.Children[0].Sub
				if un == nil || un.Node.Op != plan.OpUnionAll {
					t.Fatal("rewrite lacks inner union")
				}
				for _, b := range un.Children {
					if b.Sub == nil || b.Sub.Node.Op != plan.OpGroupBy {
						t.Fatal("union branch is not a local aggregation")
					}
				}
				// Final aggregates merge partials: COUNT becomes SUM.
				for _, agg := range rn.Node.Aggs {
					if agg.Fn == "COUNT" {
						t.Fatal("final aggregation kept COUNT; partial counts must be summed")
					}
				}
				produced++
			}
		}
	}
	if produced == 0 {
		t.Fatal("GroupbyBelowUnionAll never fired")
	}
}

func TestCorrelatedJoinOnUnionAllShape(t *testing.T) {
	m := buildMemo(t, `
b1 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 5;
b2 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 700;
u = b1 UNION ALL b2;
j = SELECT u.user_id AS user_id, d.segment AS segment FROM u INNER JOIN "shop/users" AS d ON u.user_id == d.user_id;
OUTPUT j TO "o";
`)
	r := correlatedJoinOnUnionAll{
		info:        info(cascades.RuleInfo{ID: IDCorrelatedJoinOnUnionAll1, Name: "t", Category: cascades.OffByDefault}),
		side:        0,
		minBranches: 2, maxBranches: 2,
	}
	e := findExpr(m, plan.OpJoin)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("correlated join produced %d results", len(res))
	}
	rn := res[0]
	if rn.Node.Op != plan.OpUnionAll || len(rn.Children) != 2 {
		t.Fatalf("rewrite root is %v with %d children", rn.Node.Op, len(rn.Children))
	}
	for _, c := range rn.Children {
		if c.Sub == nil || c.Sub.Node.Op != plan.OpJoin {
			t.Fatal("union branch is not a join")
		}
		// Both branch joins share the dimension group (memo DAG).
		if c.Sub.Children[1].Group != e.Children[1] {
			t.Fatal("branch join does not share the original right group")
		}
	}
	// Branch-count guard: a three-branch union must not match variant 1.
	m3 := buildMemo(t, `
b1 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 5;
b2 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 300;
b3 = SELECT user_id, amount FROM "shop/orders" WHERE amount > 700;
u = b1 UNION ALL b2 UNION ALL b3;
j = SELECT u.user_id AS user_id, d.segment AS segment FROM u INNER JOIN "shop/users" AS d ON u.user_id == d.user_id;
OUTPUT j TO "o";
`)
	e3 := findExpr(m3, plan.OpJoin)
	if got := r.Apply(e3, m3); len(got) != 0 {
		t.Fatalf("variant 1 (<=2 branches) matched a 3-branch union: %d results", len(got))
	}
}

func TestGroupbyOnJoinGuards(t *testing.T) {
	// Keys and aggregate arguments from the left side: rule applies.
	mOK := buildMemo(t, `
f = SELECT user_id, amount FROM "shop/orders" WHERE amount > 5;
j = SELECT f.user_id AS user_id, f.amount AS amount, d.segment AS segment FROM f INNER JOIN "shop/users" AS d ON f.user_id == d.user_id;
a = SELECT user_id, SUM(amount) AS total FROM j GROUP BY user_id;
OUTPUT a TO "o";
`)
	gop := groupbyOnProject{info: info(cascades.RuleInfo{ID: IDGroupbyOnProject, Name: "t0", Category: cascades.OnByDefault})}
	for _, g := range mOK.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpGroupBy {
				for _, rn := range gop.Apply(e, mOK) {
					mOK.Intern(rn, e.Group, e, IDGroupbyOnProject)
				}
			}
		}
	}
	r := groupbyOnJoin{info: info(cascades.RuleInfo{ID: IDGroupbyOnJoin, Name: "t", Category: cascades.OffByDefault}), side: 0}
	fired := 0
	for _, g := range mOK.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpGroupBy {
				res := r.Apply(e, mOK)
				fired += len(res)
				for _, rn := range res {
					if rn.Node.Op != plan.OpGroupBy {
						t.Fatal("eager aggregation root must be a final GroupBy")
					}
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("GroupbyOnJoin did not fire on a left-side aggregation")
	}

	// Keys from the right (dimension) side: the left-side variant must not
	// fire on the dimension attribute grouping.
	mNo := buildMemo(t, `
f = SELECT user_id, amount FROM "shop/orders" WHERE amount > 5;
j = SELECT f.user_id AS user_id, f.amount AS amount, d.segment AS segment FROM f INNER JOIN "shop/users" AS d ON f.user_id == d.user_id;
a = SELECT segment, SUM(amount) AS total FROM j GROUP BY segment;
OUTPUT a TO "o";
`)
	for _, g := range mNo.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpGroupBy {
				for _, rn := range gop.Apply(e, mNo) {
					mNo.Intern(rn, e.Group, e, IDGroupbyOnProject)
				}
			}
		}
	}
	for _, g := range mNo.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpGroupBy {
				if res := r.Apply(e, mNo); len(res) != 0 {
					t.Fatal("GroupbyOnJoin fired with keys and args split across sides")
				}
			}
		}
	}
}

func TestUnionAllFlatten(t *testing.T) {
	m := buildMemo(t, `
b1 = SELECT user_id FROM "shop/orders";
b2 = SELECT user_id FROM "shop/orders" WHERE amount > 1;
b3 = SELECT user_id FROM "shop/orders" WHERE amount > 2;
u1 = b1 UNION ALL b2;
u2 = u1 UNION ALL b3;
OUTPUT u2 TO "o";
`)
	r := unionAllFlatten{info: info(cascades.RuleInfo{ID: IDUnionAllFlatten, Name: "t", Category: cascades.OnByDefault})}
	fired := false
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op != plan.OpUnionAll {
				continue
			}
			for _, rn := range r.Apply(e, m) {
				if len(rn.Children) != 3 {
					t.Fatalf("flattened union has %d children, want 3", len(rn.Children))
				}
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("UnionAllFlatten never fired on a nested union")
	}
}

func TestSelectSplitDisjunction(t *testing.T) {
	m := buildMemo(t, `
a = SELECT user_id, amount FROM "shop/orders" WHERE amount > 900 OR region == 2;
OUTPUT a TO "o";
`)
	r := selectSplitDisjunction{info: info(cascades.RuleInfo{ID: IDSelectSplitDisjunction, Name: "t", Category: cascades.OffByDefault})}
	e := findExpr(m, plan.OpSelect)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("split produced %d results", len(res))
	}
	if res[0].Node.Op != plan.OpUnionAll || len(res[0].Children) != 2 {
		t.Fatal("split did not produce a two-branch union")
	}
}

func TestSelectOnTrueDropsTrivial(t *testing.T) {
	cat := testCatalog()
	c := plan.Column{ID: 1, Name: "a", Source: "shop/orders.amount"}
	get := plan.NewGet("shop/orders", []plan.Column{c})
	pred := plan.And(
		plan.Cmp(plan.OpEQ, plan.NumExpr(1), plan.NumExpr(1)), // trivially true
		plan.Cmp(plan.OpGT, plan.ColExpr(c), plan.NumExpr(5)),
	)
	root := plan.NewOutput(plan.NewSelect(get, pred), "o")
	m := cascades.NewMemo(root, cost.NewEstimated(cat))
	r := selectOnTrue{info: info(cascades.RuleInfo{ID: IDSelectOnTrue, Name: "t", Category: cascades.OnByDefault})}
	e := findExpr(m, plan.OpSelect)
	res := r.Apply(e, m)
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if got := len(plan.Conjuncts(res[0].Node.Pred)); got != 1 {
		t.Fatalf("trivial conjunct survived: %d conjuncts", got)
	}
}

func TestTransitivePredicateDerivesMirror(t *testing.T) {
	m := buildMemo(t, `
f = SELECT user_id, amount FROM "shop/orders";
j = SELECT f.user_id AS uid, u.segment AS segment FROM f INNER JOIN "shop/users" AS u ON f.user_id == u.user_id;
OUTPUT j TO "o";
`)
	// Build a Select above the Join manually: pred on the left key.
	var join *cascades.MExpr
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpJoin {
				join = e
			}
		}
	}
	if join == nil {
		t.Fatal("no join in memo")
	}
	var leftKey plan.Column
	a, b, ok := join.Node.Pred.EquiJoinSides()
	if !ok {
		t.Fatal("join is not equi")
	}
	leftKey = a
	pred := plan.Cmp(plan.OpGT, plan.ColExpr(leftKey), plan.NumExpr(100))
	sel := &cascades.RNode{
		Node:     selNode(pred, join.Group.Schema),
		Children: []cascades.RChild{cascades.GroupChild(join.Group)},
	}
	// Intern the select as a root over the join group (fresh group).
	m.Intern(sel, nil, join, -1)
	var selExpr *cascades.MExpr
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op == plan.OpSelect && e.Children[0] == join.Group {
				selExpr = e
			}
		}
	}
	if selExpr == nil {
		t.Fatal("select expr not interned")
	}
	r := transitivePredicate{info: info(cascades.RuleInfo{ID: IDTransitivePredicate, Name: "t", Category: cascades.OnByDefault})}
	res := r.Apply(selExpr, m)
	if len(res) != 1 {
		t.Fatalf("transitive predicate produced %d results", len(res))
	}
	conj := plan.Conjuncts(res[0].Node.Pred)
	if len(conj) != 2 {
		t.Fatalf("derived predicate has %d conjuncts, want 2", len(conj))
	}
	// The derived conjunct references the right key.
	found := false
	for _, c := range conj {
		col, ok := singleColumnConst(c)
		if ok && col.ID == b.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("mirror conjunct on %v missing: %v", b, res[0].Node.Pred)
	}
	// Re-application adds nothing new (idempotent modulo dedup).
	selNode2 := &cascades.RNode{Node: res[0].Node, Children: res[0].Children}
	m.Intern(selNode2, selExpr.Group, selExpr, IDTransitivePredicate)
	enriched := selExpr.Group.Exprs[len(selExpr.Group.Exprs)-1]
	if again := r.Apply(enriched, m); len(again) != 0 {
		t.Fatalf("rule re-derived existing conjuncts: %v", again[0].Node.Pred)
	}
}

func TestUdoPredicateTransfer(t *testing.T) {
	m := buildMemo(t, `
f = SELECT user_id, amount FROM "shop/orders";
rj = REDUCE f ON user_id USING Cooker;
fl = SELECT user_id, amount FROM rj WHERE user_id > 100 AND amount > 5;
OUTPUT fl TO "o";
`)
	r := udoPredicateTransfer{info: info(cascades.RuleInfo{ID: IDUdoPredicateTransfer, Name: "t", Category: cascades.OnByDefault})}
	sop := selectOnProject{info: info(cascades.RuleInfo{ID: IDSelectOnProject, Name: "t2", Category: cascades.OnByDefault})}
	// Push the select through the binder's Project first, then apply.
	for pass := 0; pass < 2; pass++ {
		for _, g := range m.Groups {
			for _, e := range g.Exprs {
				if e.Node.Op != plan.OpSelect {
					continue
				}
				for _, rn := range sop.Apply(e, m) {
					m.Intern(rn, e.Group, e, IDSelectOnProject)
				}
			}
		}
	}
	fired := 0
	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Node.Op != plan.OpSelect {
				continue
			}
			for _, rn := range r.Apply(e, m) {
				fired++
				// Root must keep the non-key conjunct above the reduce.
				if rn.Node.Op != plan.OpSelect {
					t.Fatalf("rewrite root %v; the amount conjunct cannot cross the UDO", rn.Node.Op)
				}
				if got := len(plan.Conjuncts(rn.Node.Pred)); got != 1 {
					t.Fatalf("%d conjuncts stayed above the reduce, want 1", got)
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("UdoPredicateTransfer never fired")
	}
}
