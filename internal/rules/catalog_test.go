package rules

import (
	"testing"

	"steerq/internal/cascades"
)

// TestCatalogGolden pins the catalog census to the paper's Table 2: 256
// rules, every ID in [0, 256) registered exactly once, unique names, and
// category bands of exactly 37/46/141/32 laid out contiguously. It also
// cross-references the named ID constants in ids.go against the
// registration order Catalog() actually produced.
func TestCatalogGolden(t *testing.T) {
	rs := Catalog()
	infos := rs.Infos()
	if len(infos) != catalogEnd {
		t.Fatalf("catalog has %d rules, want %d", len(infos), catalogEnd)
	}

	names := make(map[string]int)
	counts := make(map[cascades.Category]int)
	for want, ri := range infos {
		if ri.ID != want {
			t.Fatalf("rule IDs not contiguous: position %d holds ID %d", want, ri.ID)
		}
		if ri.Name == "" {
			t.Errorf("rule %d has no name", ri.ID)
		}
		if prev, dup := names[ri.Name]; dup {
			t.Errorf("rule name %q claimed by IDs %d and %d", ri.Name, prev, ri.ID)
		}
		names[ri.Name] = ri.ID
		counts[ri.Category]++

		var band cascades.Category
		switch {
		case ri.ID < requiredEnd:
			band = cascades.Required
		case ri.ID < offByDefaultEnd:
			band = cascades.OffByDefault
		case ri.ID < onByDefaultEnd:
			band = cascades.OnByDefault
		default:
			band = cascades.Implementation
		}
		if ri.Category != band {
			t.Errorf("rule %d (%s) registered as %v but lies in the %v band", ri.ID, ri.Name, ri.Category, band)
		}
	}

	want := map[cascades.Category]int{
		cascades.Required:       37,
		cascades.OffByDefault:   46,
		cascades.OnByDefault:    141,
		cascades.Implementation: 32,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %v has %d rules, want %d", cat, counts[cat], n)
		}
	}

	// Spot-check named constants against their registrations.
	for name, id := range map[string]int{
		"EnforceExchange":           IDEnforceExchange,
		"BuildOutput":               IDBuildOutput,
		"CorrelatedJoinOnUnionAll1": IDCorrelatedJoinOnUnionAll1,
		"GroupbyOnJoin":             IDGroupbyOnJoin,
		"CollapseSelects":           IDCollapseSelects,
		"UdoPredicateTransfer":      IDUdoPredicateTransfer,
		"HashJoinImpl1":             IDHashJoinImpl1,
		"UnionAllToVirtualDataset":  IDUnionAllToVirtualDS,
		"TopImplTwoPhase":           IDTopImplTwoPhase,
	} {
		ri, ok := rs.Info(id)
		if !ok {
			t.Errorf("ID constant %s (=%d) has no registration", name, id)
			continue
		}
		if ri.Name != name {
			t.Errorf("ID %d registered as %q, ids.go names it %s", id, ri.Name, name)
		}
	}

	// The declared-only blocks land where ids.go says they do.
	for _, b := range declaredBlocks {
		for i, name := range b.names {
			ri, ok := rs.Info(b.first + i)
			if !ok || ri.Name != name || ri.Category != b.cat {
				t.Errorf("declared rule %q expected at ID %d/%v, found %+v (ok=%t)",
					name, b.first+i, b.cat, ri, ok)
			}
		}
	}
}

// TestBuildCatalogReportsCensusDefects verifies buildCatalog returns an
// error (rather than panicking) when a declared block misaligns.
func TestBuildCatalogReportsCensusDefects(t *testing.T) {
	if _, err := buildCatalog(); err != nil {
		t.Fatalf("pristine catalog failed to build: %v", err)
	}
	// Shrink a block and check the census error fires, restoring afterwards.
	saved := declaredOnByDefault
	declaredOnByDefault = declaredOnByDefault[:len(declaredOnByDefault)-1]
	declaredBlocks[2].names = declaredOnByDefault
	defer func() {
		declaredOnByDefault = saved
		declaredBlocks[2].names = saved
	}()
	if _, err := buildCatalog(); err == nil {
		t.Fatal("buildCatalog accepted a truncated on-by-default block")
	}
}
