package rules

import (
	"testing"

	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// allOps enumerates every logical operator.
var allOps = []plan.Op{
	plan.OpGet, plan.OpSelect, plan.OpProject, plan.OpJoin, plan.OpGroupBy,
	plan.OpUnionAll, plan.OpProcess, plan.OpReduce, plan.OpTop, plan.OpOutput,
	plan.OpMulti,
}

// TestMatchOpHonorsGuards keeps every MatchOp declaration in sync with its
// rule's actual operator guard: for each rule declaring an OpMatcher, probing
// it with an expression of any *other* operator must return nil. A rule whose
// declared operator is wrong would be consulted on expressions it silently
// rejects (harmless) but skipped on the one it matches — this test catches
// the dangerous direction by construction: if the declared op were wrong, the
// rule's guard would also reject the declared op under direct probing, which
// the catalog's behavioral tests (smoke, transforms, golden experiments)
// would see as a vanished rule. Here we pin the cheap invariant mechanically.
func TestMatchOpHonorsGuards(t *testing.T) {
	rs := Catalog()
	probe := func(name string, match plan.Op, apply func(e *cascades.MExpr) int) {
		for _, op := range allOps {
			if op == match {
				continue
			}
			e := &cascades.MExpr{Node: &plan.Node{Op: op}}
			if n := apply(e); n != 0 {
				t.Errorf("%s declares MatchOp %v but produced %d results on %v", name, match, n, op)
			}
		}
	}

	matchers := 0
	for _, r := range rs.Transforms {
		om, ok := r.(cascades.OpMatcher)
		if !ok {
			continue
		}
		matchers++
		r := r
		probe(r.Info().Name, om.MatchOp(), func(e *cascades.MExpr) int {
			return len(r.Apply(e, nil))
		})
	}
	for _, r := range rs.Implements {
		om, ok := r.(cascades.OpMatcher)
		if !ok {
			continue
		}
		matchers++
		r := r
		probe(r.Info().Name, om.MatchOp(), func(e *cascades.MExpr) int {
			return len(r.Implement(e, nil))
		})
	}
	if matchers == 0 {
		t.Fatal("no rule declares OpMatcher; the op prefilter is dead")
	}
	t.Logf("probed %d OpMatcher rules against %d operators each", matchers, len(allOps)-1)
}
