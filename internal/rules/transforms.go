package rules

import (
	"fmt"
	"sort"

	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// unionPayload builds a UnionAll payload node with the given output schema.
func unionPayload(schema []plan.Column) *plan.Node {
	return &plan.Node{Op: plan.OpUnionAll, Schema: schema}
}

// joinPayload copies a join payload with the given output schema.
func joinPayload(pred *plan.Expr, schema []plan.Column) *plan.Node {
	return &plan.Node{Op: plan.OpJoin, Pred: pred, Schema: schema}
}

// collapseSelects merges Select(Select(X, p2), p1) into Select(X, p1 AND p2).
// The merged conjunction changes the estimator's backoff order, so this rule
// shows up in RuleDiffs of faster plans (the paper's Q_B1 gained -96% with
// CollapseSelects only in the best plan).
type collapseSelects struct{ info }

func (r collapseSelects) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, c := range exprsWithOp(e.Children[0], plan.OpSelect) {
		merged := plan.And(c.Node.Pred, e.Node.Pred)
		out = append(out, &cascades.RNode{
			Node:     selNode(merged, e.Group.Schema),
			Children: []cascades.RChild{cascades.GroupChild(c.Children[0])},
		})
	}
	return out
}

// selectOnProject pushes a filter below a projection when the predicate only
// references pass-through columns.
type selectOnProject struct{ info }

func (r selectOnProject) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, c := range exprsWithOp(e.Children[0], plan.OpProject) {
		below := c.Children[0]
		if !e.Node.Pred.RefersOnly(schemaSet(below)) {
			continue
		}
		sub := &cascades.RNode{
			Node:     selNode(e.Node.Pred, below.Schema),
			Children: []cascades.RChild{cascades.GroupChild(below)},
		}
		out = append(out, &cascades.RNode{
			Node:     c.Node,
			Children: []cascades.RChild{cascades.SubChild(sub)},
		})
	}
	return out
}

// selectOnJoin pushes the conjuncts referring to one join side below the
// join. side 0 pushes into the left child, side 1 into the right.
type selectOnJoin struct {
	info
	side int
}

func (r selectOnJoin) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, j := range exprsWithOp(e.Children[0], plan.OpJoin) {
		target := j.Children[r.side]
		other := j.Children[1-r.side]
		tset := schemaSet(target)
		var push, rest []*plan.Expr
		for _, cj := range plan.Conjuncts(e.Node.Pred) {
			if cj.RefersOnly(tset) {
				push = append(push, cj)
			} else {
				rest = append(rest, cj)
			}
		}
		if len(push) == 0 {
			continue
		}
		sub := &cascades.RNode{
			Node:     selNode(plan.And(push...), target.Schema),
			Children: []cascades.RChild{cascades.GroupChild(target)},
		}
		kids := make([]cascades.RChild, 2)
		kids[r.side] = cascades.SubChild(sub)
		kids[1-r.side] = cascades.GroupChild(other)
		join := &cascades.RNode{
			Node:     joinPayload(j.Node.Pred, j.Group.Schema),
			Children: kids,
		}
		if len(rest) == 0 {
			out = append(out, join)
			continue
		}
		out = append(out, &cascades.RNode{
			Node:     selNode(plan.And(rest...), e.Group.Schema),
			Children: []cascades.RChild{cascades.SubChild(join)},
		})
	}
	return out
}

// selectOnUnionAll pushes a filter into every union branch.
type selectOnUnionAll struct{ info }

func (r selectOnUnionAll) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, u := range exprsWithOp(e.Children[0], plan.OpUnionAll) {
		branches, ok := alignedUnionBranches(u)
		if !ok {
			continue
		}
		kids := make([]cascades.RChild, 0, len(branches))
		okAll := true
		for _, b := range branches {
			mp, ok := positionalMap(u.Group.Schema, b.Schema)
			if !ok {
				okAll = false
				break
			}
			pred, ok := remapExpr(e.Node.Pred, mp, nil)
			if !ok {
				okAll = false
				break
			}
			kids = append(kids, cascades.SubChild(&cascades.RNode{
				Node:     selNode(pred, b.Schema),
				Children: []cascades.RChild{cascades.GroupChild(b)},
			}))
		}
		if !okAll {
			continue
		}
		out = append(out, &cascades.RNode{Node: unionPayload(e.Group.Schema), Children: kids})
	}
	return out
}

// selectOnGroupBy pushes conjuncts that reference only grouping keys below
// the aggregation.
type selectOnGroupBy struct{ info }

func (r selectOnGroupBy) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, gb := range exprsWithOp(e.Children[0], plan.OpGroupBy) {
		keySet := make(map[plan.ColumnID]bool, len(gb.Node.GroupKeys))
		for _, k := range gb.Node.GroupKeys {
			keySet[k.ID] = true
		}
		var push, rest []*plan.Expr
		for _, cj := range plan.Conjuncts(e.Node.Pred) {
			if cj.RefersOnly(keySet) {
				push = append(push, cj)
			} else {
				rest = append(rest, cj)
			}
		}
		if len(push) == 0 {
			continue
		}
		below := gb.Children[0]
		sub := &cascades.RNode{
			Node:     selNode(plan.And(push...), below.Schema),
			Children: []cascades.RChild{cascades.GroupChild(below)},
		}
		gbNode := *gb.Node
		gbNode.Schema = gb.Group.Schema
		inner := &cascades.RNode{Node: &gbNode, Children: []cascades.RChild{cascades.SubChild(sub)}}
		if len(rest) == 0 {
			out = append(out, inner)
			continue
		}
		out = append(out, &cascades.RNode{
			Node:     selNode(plan.And(rest...), e.Group.Schema),
			Children: []cascades.RChild{cascades.SubChild(inner)},
		})
	}
	return out
}

// selectPredNormalized reorders the conjuncts of a filter by estimated
// selectivity, most selective first. Under the estimator's exponential
// backoff this produces the *lowest* combined estimate for the same
// predicate — a pure node-property change of exactly the kind §5.3 describes.
type selectPredNormalized struct{ info }

func (r selectPredNormalized) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect || e.Node.Pred == nil || e.Node.Pred.Kind != plan.ExprAnd {
		return nil
	}
	conj := append([]*plan.Expr(nil), e.Node.Pred.Args...)
	if len(conj) < 2 {
		return nil
	}
	est := m.Estimator()
	props := e.Children[0].Props
	sort.SliceStable(conj, func(i, j int) bool {
		return est.Selectivity(conj[i], props) < est.Selectivity(conj[j], props)
	})
	return []*cascades.RNode{{
		Node:     selNode(plan.And(conj...), e.Group.Schema),
		Children: []cascades.RChild{cascades.GroupChild(e.Children[0])},
	}}
}

// selectOnTrue removes trivially true conjuncts (const == const, col == same
// col).
type selectOnTrue struct{ info }

func trivialConjunct(c *plan.Expr) bool {
	if c.Kind != plan.ExprCmp || len(c.Args) != 2 {
		return false
	}
	l, rr := c.Args[0], c.Args[1]
	if l.Kind == plan.ExprConst && rr.Kind == plan.ExprConst {
		if l.Lit.IsString != rr.Lit.IsString {
			return false
		}
		eq := l.Lit.S == rr.Lit.S && l.Lit.F == rr.Lit.F
		switch c.Op {
		case plan.OpEQ, plan.OpLE, plan.OpGE:
			return eq
		}
		return false
	}
	if l.Kind == plan.ExprColumn && rr.Kind == plan.ExprColumn && l.Col.ID == rr.Col.ID {
		switch c.Op {
		case plan.OpEQ, plan.OpLE, plan.OpGE:
			return true
		}
	}
	return false
}

func (r selectOnTrue) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect || e.Node.Pred == nil {
		return nil
	}
	conj := plan.Conjuncts(e.Node.Pred)
	kept := make([]*plan.Expr, 0, len(conj))
	for _, c := range conj {
		if !trivialConjunct(c) {
			kept = append(kept, c)
		}
	}
	if len(kept) == len(conj) || len(kept) == 0 {
		return nil
	}
	return []*cascades.RNode{{
		Node:     selNode(plan.And(kept...), e.Group.Schema),
		Children: []cascades.RChild{cascades.GroupChild(e.Children[0])},
	}}
}

// selectIntoGet merges a filter into the scan beneath it, enabling the
// RangeScan implementation.
type selectIntoGet struct{ info }

func (r selectIntoGet) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, g := range exprsWithOp(e.Children[0], plan.OpGet) {
		n := *g.Node
		n.Pred = plan.And(g.Node.Pred, e.Node.Pred)
		out = append(out, &cascades.RNode{Node: &n})
	}
	return out
}

// joinCommute swaps join inputs, flipping build/probe economics of the
// physical joins downstream.
type joinCommute struct{ info }

func (r joinCommute) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpJoin {
		return nil
	}
	return []*cascades.RNode{{
		Node: joinPayload(e.Node.Pred, e.Group.Schema),
		Children: []cascades.RChild{
			cascades.GroupChild(e.Children[1]),
			cascades.GroupChild(e.Children[0]),
		},
	}}
}

// joinAssoc reassociates (A ⋈ B) ⋈ C into A ⋈ (B ⋈ C) (side 0) and
// A ⋈ (B ⋈ C) into (A ⋈ B) ⋈ C (side 1).
type joinAssoc struct {
	info
	side int // which child contains the nested join
}

func (r joinAssoc) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpJoin {
		return nil
	}
	var out []*cascades.RNode
	for _, j := range exprsWithOp(e.Children[r.side], plan.OpJoin) {
		var a, b, c *cascades.Group
		if r.side == 0 {
			a, b = j.Children[0], j.Children[1]
			c = e.Children[1]
		} else {
			a = e.Children[0]
			b, c = j.Children[0], j.Children[1]
		}
		// Split the outer predicate: conjuncts over the two groups that
		// form the new inner join move inside.
		var innerSet map[plan.ColumnID]bool
		if r.side == 0 {
			innerSet = unionSet(schemaSet(b), schemaSet(c))
		} else {
			innerSet = unionSet(schemaSet(a), schemaSet(b))
		}
		var inner, outer []*plan.Expr
		for _, cj := range plan.Conjuncts(e.Node.Pred) {
			if cj.RefersOnly(innerSet) {
				inner = append(inner, cj)
			} else {
				outer = append(outer, cj)
			}
		}
		if len(inner) == 0 {
			continue // would create a cross join inside
		}
		outer = append(outer, plan.Conjuncts(j.Node.Pred)...)
		if r.side == 0 {
			innerJoin := &cascades.RNode{
				Node:     joinPayload(plan.And(inner...), concatSchema(b, c)),
				Children: []cascades.RChild{cascades.GroupChild(b), cascades.GroupChild(c)},
			}
			out = append(out, &cascades.RNode{
				Node:     joinPayload(plan.And(outer...), e.Group.Schema),
				Children: []cascades.RChild{cascades.GroupChild(a), cascades.SubChild(innerJoin)},
			})
		} else {
			innerJoin := &cascades.RNode{
				Node:     joinPayload(plan.And(inner...), concatSchema(a, b)),
				Children: []cascades.RChild{cascades.GroupChild(a), cascades.GroupChild(b)},
			}
			out = append(out, &cascades.RNode{
				Node:     joinPayload(plan.And(outer...), e.Group.Schema),
				Children: []cascades.RChild{cascades.SubChild(innerJoin), cascades.GroupChild(c)},
			})
		}
	}
	return out
}

func unionSet(a, b map[plan.ColumnID]bool) map[plan.ColumnID]bool {
	out := make(map[plan.ColumnID]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func concatSchema(a, b *cascades.Group) []plan.Column {
	out := make([]plan.Column, 0, len(a.Schema)+len(b.Schema))
	out = append(out, a.Schema...)
	out = append(out, b.Schema...)
	return out
}

// projectOnProject composes adjacent projections by inlining the lower
// projection's expressions into the upper one.
type projectOnProject struct{ info }

func (r projectOnProject) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpProject {
		return nil
	}
	var out []*cascades.RNode
	for _, c := range exprsWithOp(e.Children[0], plan.OpProject) {
		subst := make(map[plan.ColumnID]*plan.Expr, len(c.Node.Projs))
		for _, p := range c.Node.Projs {
			subst[p.Out.ID] = p.Expr
		}
		projs := make([]plan.Projection, len(e.Node.Projs))
		okAll := true
		for i, p := range e.Node.Projs {
			ne, ok := substExpr(p.Expr, subst)
			if !ok {
				okAll = false
				break
			}
			projs[i] = plan.Projection{Expr: ne, Out: p.Out}
		}
		if !okAll {
			continue
		}
		out = append(out, &cascades.RNode{
			Node:     &plan.Node{Op: plan.OpProject, Projs: projs, Schema: e.Group.Schema},
			Children: []cascades.RChild{cascades.GroupChild(c.Children[0])},
		})
	}
	return out
}

// substExpr replaces column references through subst; ok is false on a miss.
func substExpr(e *plan.Expr, subst map[plan.ColumnID]*plan.Expr) (*plan.Expr, bool) {
	if e == nil {
		return nil, true
	}
	if e.Kind == plan.ExprColumn {
		if s, ok := subst[e.Col.ID]; ok {
			return s, true
		}
		return nil, false
	}
	cp := *e
	if len(e.Args) > 0 {
		cp.Args = make([]*plan.Expr, len(e.Args))
		for i, a := range e.Args {
			na, ok := substExpr(a, subst)
			if !ok {
				return nil, false
			}
			cp.Args[i] = na
		}
	}
	return &cp, true
}

// unionAllFlatten splices a nested union's branches into its parent.
type unionAllFlatten struct{ info }

func (r unionAllFlatten) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpUnionAll {
		return nil
	}
	var out []*cascades.RNode
	for i, ch := range e.Children {
		for _, u := range exprsWithOp(ch, plan.OpUnionAll) {
			if u.Group == e.Group {
				continue
			}
			branches, ok := alignedUnionBranches(u)
			if !ok {
				continue
			}
			kids := make([]cascades.RChild, 0, len(e.Children)+len(branches)-1)
			for k, other := range e.Children {
				if k == i {
					for _, b := range branches {
						kids = append(kids, cascades.GroupChild(b))
					}
				} else {
					kids = append(kids, cascades.GroupChild(other))
				}
			}
			out = append(out, &cascades.RNode{Node: unionPayload(e.Group.Schema), Children: kids})
			break // one splice per child per application
		}
	}
	return out
}

// processOnUnionAll pushes a user-defined row processor into every union
// branch (the paper's "ProcesOnnUnionAll").
type processOnUnionAll struct{ info }

func (r processOnUnionAll) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpProcess {
		return nil
	}
	var out []*cascades.RNode
	for _, u := range exprsWithOp(e.Children[0], plan.OpUnionAll) {
		branches, ok := alignedUnionBranches(u)
		if !ok {
			continue
		}
		kids := make([]cascades.RChild, 0, len(branches))
		for _, b := range branches {
			kids = append(kids, cascades.SubChild(&cascades.RNode{
				Node:     &plan.Node{Op: plan.OpProcess, Processor: e.Node.Processor, Schema: b.Schema},
				Children: []cascades.RChild{cascades.GroupChild(b)},
			}))
		}
		out = append(out, &cascades.RNode{Node: unionPayload(e.Group.Schema), Children: kids})
	}
	return out
}

// groupbyBelowUnionAll turns GroupBy(UnionAll(b...)) into
// GroupByFinal(UnionAll(GroupByLocal(b)...)): branch-local pre-aggregation
// before the union, then a merging aggregation.
type groupbyBelowUnionAll struct{ info }

func (r groupbyBelowUnionAll) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpGroupBy || len(e.Node.GroupKeys) == 0 {
		return nil
	}
	var out []*cascades.RNode
	for _, u := range exprsWithOp(e.Children[0], plan.OpUnionAll) {
		branches, ok := alignedUnionBranches(u)
		if !ok {
			continue
		}
		kids := make([]cascades.RChild, 0, len(branches))
		var firstLocalSchema []plan.Column
		var firstAggOuts []plan.Column
		okAll := true
		for bi, b := range branches {
			mp, ok := positionalMap(u.Group.Schema, b.Schema)
			if !ok {
				okAll = false
				break
			}
			keys, ok := remapCols(e.Node.GroupKeys, mp)
			if !ok {
				okAll = false
				break
			}
			aggs := make([]plan.Agg, len(e.Node.Aggs))
			outs := make([]plan.Column, len(e.Node.Aggs))
			for ai, a := range e.Node.Aggs {
				arg, ok := remapExpr(a.Arg, mp, nil)
				if !ok {
					okAll = false
					break
				}
				outs[ai] = plan.Column{ID: m.NewColID(), Name: a.Out.Name + "_partial"}
				aggs[ai] = plan.Agg{Fn: a.Fn, Arg: arg, Out: outs[ai]}
			}
			if !okAll {
				break
			}
			schema := append(append([]plan.Column(nil), keys...), outs...)
			if bi == 0 {
				firstLocalSchema = schema
				firstAggOuts = outs
			}
			kids = append(kids, cascades.SubChild(&cascades.RNode{
				Node:     &plan.Node{Op: plan.OpGroupBy, GroupKeys: keys, Aggs: aggs, Schema: schema},
				Children: []cascades.RChild{cascades.GroupChild(b)},
			}))
		}
		if !okAll {
			continue
		}
		union := &cascades.RNode{Node: unionPayload(firstLocalSchema), Children: kids}
		finalAggs := make([]plan.Agg, len(e.Node.Aggs))
		for ai, a := range e.Node.Aggs {
			finalAggs[ai] = plan.Agg{Fn: mergeAggFn(a.Fn), Arg: plan.ColExpr(firstAggOuts[ai]), Out: a.Out}
		}
		out = append(out, &cascades.RNode{
			Node: &plan.Node{
				Op:        plan.OpGroupBy,
				GroupKeys: e.Node.GroupKeys,
				Aggs:      finalAggs,
				Schema:    e.Group.Schema,
			},
			Children: []cascades.RChild{cascades.SubChild(union)},
		})
	}
	return out
}

// correlatedJoinOnUnionAll distributes a join over a union:
// Join(UnionAll(b...), R) becomes UnionAll(Join(b, R)...). Whether this wins
// depends entirely on intermediate sizes — "the performance of this rule can
// be extremely sensitive to the sizes of the intermediate results" (§3.2),
// which is why the family is off by default. Variants differ by the side
// holding the union and the branch-count guard.
type correlatedJoinOnUnionAll struct {
	info
	side        int // which join child holds the union
	minBranches int
	maxBranches int
}

func (r correlatedJoinOnUnionAll) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpJoin {
		return nil
	}
	other := e.Children[1-r.side]
	keep := schemaSet(other)
	var out []*cascades.RNode
	for _, u := range exprsWithOp(e.Children[r.side], plan.OpUnionAll) {
		branches, ok := alignedUnionBranches(u)
		if !ok {
			continue
		}
		if len(branches) < r.minBranches || (r.maxBranches > 0 && len(branches) > r.maxBranches) {
			continue
		}
		kids := make([]cascades.RChild, 0, len(branches))
		okAll := true
		for _, b := range branches {
			mp, ok := positionalMap(u.Group.Schema, b.Schema)
			if !ok {
				okAll = false
				break
			}
			pred, ok := remapExpr(e.Node.Pred, mp, keep)
			if !ok {
				okAll = false
				break
			}
			var schema []plan.Column
			var jk []cascades.RChild
			if r.side == 0 {
				schema = append(append([]plan.Column(nil), b.Schema...), other.Schema...)
				jk = []cascades.RChild{cascades.GroupChild(b), cascades.GroupChild(other)}
			} else {
				schema = append(append([]plan.Column(nil), other.Schema...), b.Schema...)
				jk = []cascades.RChild{cascades.GroupChild(other), cascades.GroupChild(b)}
			}
			kids = append(kids, cascades.SubChild(&cascades.RNode{
				Node:     joinPayload(pred, schema),
				Children: jk,
			}))
		}
		if !okAll {
			continue
		}
		out = append(out, &cascades.RNode{Node: unionPayload(e.Group.Schema), Children: kids})
	}
	return out
}

// groupbyOnJoin pushes an eager pre-aggregation below one join side when the
// grouping keys, aggregate arguments and join-referenced columns of that side
// are covered. Off by default: its benefit hinges on the join's true
// fan-out.
type groupbyOnJoin struct {
	info
	side int // join side receiving the pre-aggregation
}

func (r groupbyOnJoin) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpGroupBy || len(e.Node.GroupKeys) == 0 {
		return nil
	}
	var out []*cascades.RNode
	for _, j := range exprsWithOp(e.Children[0], plan.OpJoin) {
		target := j.Children[r.side]
		other := j.Children[1-r.side]
		tset := schemaSet(target)
		oset := schemaSet(other)
		// Keys and aggregate arguments must come from the target side.
		okSide := true
		for _, k := range e.Node.GroupKeys {
			if !tset[k.ID] {
				okSide = false
				break
			}
		}
		for _, a := range e.Node.Aggs {
			if a.Arg != nil && !a.Arg.RefersOnly(tset) {
				okSide = false
				break
			}
		}
		if !okSide {
			continue
		}
		tk, ok2 := sideEquiKeys(j.Node.Pred, tset, oset)
		if !ok2 || len(tk) == 0 {
			continue
		}
		innerKeys := append([]plan.Column(nil), e.Node.GroupKeys...)
		have := make(map[plan.ColumnID]bool)
		for _, k := range innerKeys {
			have[k.ID] = true
		}
		for _, k := range tk {
			if !have[k.ID] {
				innerKeys = append(innerKeys, k)
				have[k.ID] = true
			}
		}
		// Every target-side column the join predicate touches must survive
		// the pre-aggregation.
		predOK := j.Node.Pred.RefersOnly(unionSet(have, oset))
		if !predOK {
			continue
		}
		outs := make([]plan.Column, len(e.Node.Aggs))
		localAggs := make([]plan.Agg, len(e.Node.Aggs))
		for ai, a := range e.Node.Aggs {
			outs[ai] = plan.Column{ID: m.NewColID(), Name: a.Out.Name + "_eager"}
			localAggs[ai] = plan.Agg{Fn: a.Fn, Arg: a.Arg, Out: outs[ai]}
		}
		localSchema := append(append([]plan.Column(nil), innerKeys...), outs...)
		local := &cascades.RNode{
			Node:     &plan.Node{Op: plan.OpGroupBy, GroupKeys: innerKeys, Aggs: localAggs, Schema: localSchema},
			Children: []cascades.RChild{cascades.GroupChild(target)},
		}
		var joinSchema []plan.Column
		var jk []cascades.RChild
		if r.side == 0 {
			joinSchema = append(append([]plan.Column(nil), localSchema...), other.Schema...)
			jk = []cascades.RChild{cascades.SubChild(local), cascades.GroupChild(other)}
		} else {
			joinSchema = append(append([]plan.Column(nil), other.Schema...), localSchema...)
			jk = []cascades.RChild{cascades.GroupChild(other), cascades.SubChild(local)}
		}
		join := &cascades.RNode{Node: joinPayload(j.Node.Pred, joinSchema), Children: jk}
		finalAggs := make([]plan.Agg, len(e.Node.Aggs))
		for ai, a := range e.Node.Aggs {
			finalAggs[ai] = plan.Agg{Fn: mergeAggFn(a.Fn), Arg: plan.ColExpr(outs[ai]), Out: a.Out}
		}
		out = append(out, &cascades.RNode{
			Node: &plan.Node{
				Op:        plan.OpGroupBy,
				GroupKeys: e.Node.GroupKeys,
				Aggs:      finalAggs,
				Schema:    e.Group.Schema,
			},
			Children: []cascades.RChild{cascades.SubChild(join)},
		})
	}
	return out
}

// sideEquiKeys returns the equi-join key columns belonging to the side
// described by tset; ok is false when the predicate has no two-sided equi
// conjunct.
func sideEquiKeys(pred *plan.Expr, tset, oset map[plan.ColumnID]bool) ([]plan.Column, bool) {
	lk, rk := equiKeys(pred, tset, oset)
	if len(lk) == 0 && len(rk) == 0 {
		return nil, false
	}
	return lk, true
}

// topOnUnionAll pushes a branch-local top-N into every union branch while
// keeping the global top above.
type topOnUnionAll struct{ info }

func (r topOnUnionAll) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpTop {
		return nil
	}
	var out []*cascades.RNode
	for _, u := range exprsWithOp(e.Children[0], plan.OpUnionAll) {
		branches, ok := alignedUnionBranches(u)
		if !ok {
			continue
		}
		kids := make([]cascades.RChild, 0, len(branches))
		okAll := true
		for _, b := range branches {
			mp, ok := positionalMap(u.Group.Schema, b.Schema)
			if !ok {
				okAll = false
				break
			}
			keys := make([]plan.SortKey, len(e.Node.SortKeys))
			for ki, k := range e.Node.SortKeys {
				nc, ok := mp[k.Col.ID]
				if !ok {
					okAll = false
					break
				}
				keys[ki] = plan.SortKey{Col: nc, Desc: k.Desc}
			}
			if !okAll {
				break
			}
			kids = append(kids, cascades.SubChild(&cascades.RNode{
				Node:     &plan.Node{Op: plan.OpTop, TopN: e.Node.TopN, SortKeys: keys, Schema: b.Schema},
				Children: []cascades.RChild{cascades.GroupChild(b)},
			}))
		}
		if !okAll {
			continue
		}
		union := &cascades.RNode{Node: unionPayload(u.Group.Schema), Children: kids}
		out = append(out, &cascades.RNode{
			Node:     &plan.Node{Op: plan.OpTop, TopN: e.Node.TopN, SortKeys: e.Node.SortKeys, Schema: e.Group.Schema},
			Children: []cascades.RChild{cascades.SubChild(union)},
		})
	}
	return out
}

// selectSplitDisjunction rewrites a two-way disjunctive filter into a union
// of two filtered branches. Off by default: it duplicates rows matching both
// disjuncts and pays a second pass over the input, but parallelizes highly
// selective disjuncts.
type selectSplitDisjunction struct{ info }

func (r selectSplitDisjunction) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect || e.Node.Pred == nil || e.Node.Pred.Kind != plan.ExprOr || len(e.Node.Pred.Args) != 2 {
		return nil
	}
	child := e.Children[0]
	mk := func(p *plan.Expr) cascades.RChild {
		return cascades.SubChild(&cascades.RNode{
			Node:     selNode(p, child.Schema),
			Children: []cascades.RChild{cascades.GroupChild(child)},
		})
	}
	return []*cascades.RNode{{
		Node:     unionPayload(e.Group.Schema),
		Children: []cascades.RChild{mk(e.Node.Pred.Args[0]), mk(e.Node.Pred.Args[1])},
	}}
}

// topOnProject pushes a top-N below a projection when every sort key passes
// through.
type topOnProject struct{ info }

func (r topOnProject) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpTop {
		return nil
	}
	var out []*cascades.RNode
	for _, c := range exprsWithOp(e.Children[0], plan.OpProject) {
		below := c.Children[0]
		bset := schemaSet(below)
		okAll := true
		for _, k := range e.Node.SortKeys {
			if !bset[k.Col.ID] {
				okAll = false
				break
			}
		}
		if !okAll {
			continue
		}
		top := &cascades.RNode{
			Node:     &plan.Node{Op: plan.OpTop, TopN: e.Node.TopN, SortKeys: e.Node.SortKeys, Schema: below.Schema},
			Children: []cascades.RChild{cascades.GroupChild(below)},
		}
		out = append(out, &cascades.RNode{
			Node:     c.Node,
			Children: []cascades.RChild{cascades.SubChild(top)},
		})
	}
	return out
}

// groupbyOnProject pushes an aggregation below a projection when every group
// key and aggregate argument passes through unchanged; the projection becomes
// redundant because the aggregation defines the output schema itself.
type groupbyOnProject struct{ info }

func (r groupbyOnProject) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpGroupBy {
		return nil
	}
	var out []*cascades.RNode
	for _, c := range exprsWithOp(e.Children[0], plan.OpProject) {
		below := c.Children[0]
		bset := schemaSet(below)
		ok := true
		for _, k := range e.Node.GroupKeys {
			if !bset[k.ID] {
				ok = false
				break
			}
		}
		for _, a := range e.Node.Aggs {
			if a.Arg != nil && !a.Arg.RefersOnly(bset) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		gbNode := *e.Node
		gbNode.Schema = e.Group.Schema
		out = append(out, &cascades.RNode{
			Node:     &gbNode,
			Children: []cascades.RChild{cascades.GroupChild(below)},
		})
	}
	return out
}

// transitivePredicate derives predicates across equi-join keys: with
// Select(Join(L, R, lk == rk), pred) and a conjunct of pred constraining lk
// against a constant, the same constraint holds for rk (and vice versa), so
// the rewrite adds the mirrored conjunct. The enriched predicate unlocks
// pushdown into both join sides and tightens estimates.
type transitivePredicate struct{ info }

func (r transitivePredicate) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, j := range exprsWithOp(e.Children[0], plan.OpJoin) {
		// Map each equi key to its counterpart on the other side.
		mirror := make(map[plan.ColumnID]plan.Column)
		for _, cj := range plan.Conjuncts(j.Node.Pred) {
			if a, b, ok := cj.EquiJoinSides(); ok {
				mirror[a.ID] = b
				mirror[b.ID] = a
			}
		}
		if len(mirror) == 0 {
			continue
		}
		conj := plan.Conjuncts(e.Node.Pred)
		// Dedup by (column ID, operator, literal): two columns can share a
		// name across join sides, so the display string is not a key.
		key := func(c *plan.Expr) (string, bool) {
			col, ok := singleColumnConst(c)
			if !ok {
				return "", false
			}
			return fmt.Sprintf("%d|%d|%s", col.ID, c.Op, c.Args[1].String()+c.Args[0].String()), true
		}
		have := make(map[string]bool, len(conj))
		for _, c := range conj {
			if k, ok := key(c); ok {
				have[k] = true
			}
		}
		var derived []*plan.Expr
		for _, c := range conj {
			col, ok := singleColumnConst(c)
			if !ok {
				continue
			}
			other, ok := mirror[col.ID]
			if !ok {
				continue
			}
			d := c.Clone()
			substituteColumn(d, col.ID, other)
			if k, ok := key(d); ok && !have[k] {
				have[k] = true
				derived = append(derived, d)
			}
		}
		if len(derived) == 0 {
			continue
		}
		merged := plan.And(append(append([]*plan.Expr(nil), conj...), derived...)...)
		out = append(out, &cascades.RNode{
			Node:     selNode(merged, e.Group.Schema),
			Children: []cascades.RChild{cascades.GroupChild(e.Children[0])},
		})
	}
	return out
}

// singleColumnConst matches a col-op-const comparison and returns its column.
func singleColumnConst(c *plan.Expr) (plan.Column, bool) {
	if c.Kind != plan.ExprCmp || len(c.Args) != 2 {
		return plan.Column{}, false
	}
	l, r := c.Args[0], c.Args[1]
	if l.Kind == plan.ExprColumn && r.Kind == plan.ExprConst {
		return l.Col, true
	}
	if r.Kind == plan.ExprColumn && l.Kind == plan.ExprConst {
		return r.Col, true
	}
	return plan.Column{}, false
}

// substituteColumn rewrites references to id with col, in place on a clone.
func substituteColumn(e *plan.Expr, id plan.ColumnID, col plan.Column) {
	if e == nil {
		return
	}
	if e.Kind == plan.ExprColumn && e.Col.ID == id {
		e.Col = col
		return
	}
	for _, a := range e.Args {
		substituteColumn(a, id, col)
	}
}

// udoPredicateTransfer pushes filter conjuncts that reference only a
// reducer's key columns below the REDUCE: a per-key user-defined reducer
// emits rows only for key groups that exist in its input, so key predicates
// commute with it. Non-key conjuncts must stay above the opaque UDO.
type udoPredicateTransfer struct{ info }

func (r udoPredicateTransfer) Apply(e *cascades.MExpr, m *cascades.Memo) []*cascades.RNode {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	var out []*cascades.RNode
	for _, red := range exprsWithOp(e.Children[0], plan.OpReduce) {
		keySet := make(map[plan.ColumnID]bool, len(red.Node.ReduceKeys))
		for _, k := range red.Node.ReduceKeys {
			keySet[k.ID] = true
		}
		var push, rest []*plan.Expr
		for _, cj := range plan.Conjuncts(e.Node.Pred) {
			if cj.RefersOnly(keySet) {
				push = append(push, cj)
			} else {
				rest = append(rest, cj)
			}
		}
		if len(push) == 0 {
			continue
		}
		below := red.Children[0]
		sub := &cascades.RNode{
			Node:     selNode(plan.And(push...), below.Schema),
			Children: []cascades.RChild{cascades.GroupChild(below)},
		}
		redNode := *red.Node
		redNode.Schema = red.Group.Schema
		inner := &cascades.RNode{Node: &redNode, Children: []cascades.RChild{cascades.SubChild(sub)}}
		if len(rest) == 0 {
			out = append(out, inner)
			continue
		}
		out = append(out, &cascades.RNode{
			Node:     selNode(plan.And(rest...), e.Group.Schema),
			Children: []cascades.RChild{cascades.SubChild(inner)},
		})
	}
	return out
}
