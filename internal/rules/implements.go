package rules

import (
	"steerq/internal/cascades"
	"steerq/internal/plan"
)

func anyDist() plan.Distribution       { return plan.Distribution{Kind: plan.DistAny} }
func randomDist() plan.Distribution    { return plan.Distribution{Kind: plan.DistRandom} }
func singletonDist() plan.Distribution { return plan.Distribution{Kind: plan.DistSingleton} }
func broadcastDist() plan.Distribution { return plan.Distribution{Kind: plan.DistBroadcast} }

func hashDist(cols []plan.Column) plan.Distribution {
	return plan.Distribution{Kind: plan.DistHash, Keys: cascades.SortedKeys(cols)}
}

// getToRange implements scans: Extract for a bare scan, RangeScan when a
// filter was merged into the scan. Required rule.
type getToRange struct{ info }

func (r getToRange) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpGet {
		return nil
	}
	op := plan.PhysExtract
	if e.Node.Pred != nil {
		op = plan.PhysRangeScan
	}
	return []*cascades.PhysProto{{
		Op:       op,
		Node:     e.Node,
		OutDist:  randomDist(),
		BuildIdx: -1,
	}}
}

// selectToFilter implements filters. Required rule.
type selectToFilter struct{ info }

func (r selectToFilter) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpSelect {
		return nil
	}
	return []*cascades.PhysProto{{
		Op:       plan.PhysFilter,
		Node:     e.Node,
		ChildReq: []plan.Distribution{anyDist()},
		OutDist:  anyDist(), // inherit
		BuildIdx: -1,
	}}
}

// projectToCompute implements projections. Required rule.
type projectToCompute struct{ info }

func (r projectToCompute) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpProject {
		return nil
	}
	return []*cascades.PhysProto{{
		Op:       plan.PhysCompute,
		Node:     e.Node,
		ChildReq: []plan.Distribution{anyDist()},
		OutDist:  anyDist(),
		BuildIdx: -1,
	}}
}

// buildOutput implements the writer. Required rule.
type buildOutput struct{ info }

func (r buildOutput) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpOutput {
		return nil
	}
	return []*cascades.PhysProto{{
		Op:       plan.PhysOutputImpl,
		Node:     e.Node,
		ChildReq: []plan.Distribution{anyDist()},
		OutDist:  anyDist(),
		BuildIdx: -1,
	}}
}

// buildMulti implements the virtual multi-output root. Required rule.
type buildMulti struct{ info }

func (r buildMulti) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpMulti {
		return nil
	}
	reqs := make([]plan.Distribution, len(e.Children))
	for i := range reqs {
		reqs[i] = anyDist()
	}
	return []*cascades.PhysProto{{
		Op:       plan.PhysMultiImpl,
		Node:     e.Node,
		ChildReq: reqs,
		OutDist:  singletonDist(),
		BuildIdx: -1,
	}}
}

// joinImpl produces one physical join flavor. The four registered instances
// mirror the implementation rules the paper's RuleDiffs name: HashJoinImpl1
// (re-partition both sides), JoinImpl2 (broadcast the right side into a hash
// join), MergeJoinImpl (re-partition plus sort-merge), JoinToApplyIndex1
// (broadcast nested-loop apply — the only option for non-equi predicates,
// and a disaster when the build side is underestimated).
type joinImpl struct {
	info
	flavor plan.PhysOp
}

func (r joinImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpJoin {
		return nil
	}
	l, rg := e.Children[0], e.Children[1]
	lk, rk := equiKeys(e.Node.Pred, schemaSet(l), schemaSet(rg))
	switch r.flavor {
	case plan.PhysHashJoin:
		if len(lk) == 0 {
			return nil
		}
		build := 0
		if rg.Props.Rows < l.Props.Rows {
			build = 1
		}
		return []*cascades.PhysProto{{
			Op:       plan.PhysHashJoin,
			Node:     e.Node,
			ChildReq: []plan.Distribution{hashDist(lk), hashDist(rk)},
			OutDist:  hashDist(lk),
			BuildIdx: build,
		}}
	case plan.PhysHashJoinAlt:
		if len(lk) == 0 {
			return nil
		}
		return []*cascades.PhysProto{{
			Op:       plan.PhysHashJoinAlt,
			Node:     e.Node,
			ChildReq: []plan.Distribution{anyDist(), broadcastDist()},
			OutDist:  anyDist(), // probe side layout preserved
			BuildIdx: 1,
		}}
	case plan.PhysMergeJoin:
		if len(lk) == 0 {
			return nil
		}
		return []*cascades.PhysProto{{
			Op:        plan.PhysMergeJoin,
			Node:      e.Node,
			ChildReq:  []plan.Distribution{hashDist(lk), hashDist(rk)},
			OutDist:   hashDist(lk),
			BuildIdx:  1,
			NeedsSort: true,
		}}
	case plan.PhysLoopJoin:
		return []*cascades.PhysProto{{
			Op:       plan.PhysLoopJoin,
			Node:     e.Node,
			ChildReq: []plan.Distribution{anyDist(), broadcastDist()},
			OutDist:  anyDist(),
			BuildIdx: 1,
		}}
	default:
		return nil // not a join flavor this rule produces
	}
}

// aggImpl produces one physical aggregation flavor: single-phase hash
// aggregation, sorted-stream aggregation, or two-phase local/global hash
// aggregation.
type aggImpl struct {
	info
	flavor plan.PhysOp
}

func (r aggImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpGroupBy {
		return nil
	}
	var req, out plan.Distribution
	if len(e.Node.GroupKeys) == 0 {
		req, out = singletonDist(), singletonDist()
	} else {
		req = hashDist(e.Node.GroupKeys)
		out = req
	}
	switch r.flavor {
	case plan.PhysHashAgg:
		return []*cascades.PhysProto{{
			Op:       plan.PhysHashAgg,
			Node:     e.Node,
			ChildReq: []plan.Distribution{req},
			OutDist:  out,
			BuildIdx: -1,
		}}
	case plan.PhysStreamAgg:
		return []*cascades.PhysProto{{
			Op:        plan.PhysStreamAgg,
			Node:      e.Node,
			ChildReq:  []plan.Distribution{req},
			OutDist:   out,
			BuildIdx:  -1,
			NeedsSort: true,
		}}
	case plan.PhysFinalHashAgg:
		return []*cascades.PhysProto{{
			Op:       plan.PhysFinalHashAgg,
			Node:     e.Node,
			ChildReq: []plan.Distribution{req},
			OutDist:  out,
			BuildIdx: -1,
			LocalPre: plan.PhysPartialHashAgg,
		}}
	default:
		return nil // not an aggregation flavor this rule produces
	}
}

// unionImpl produces one physical union flavor: the materializing
// UnionAllToUnionAll merge or the zero-copy UnionAllToVirtualDataset, whose
// relative merit the paper's RuleDiffs repeatedly surface (Q_A3, Q_B3).
type unionImpl struct {
	info
	flavor plan.PhysOp
}

func (r unionImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpUnionAll {
		return nil
	}
	reqs := make([]plan.Distribution, len(e.Children))
	for i := range reqs {
		reqs[i] = anyDist()
	}
	return []*cascades.PhysProto{{
		Op:       r.flavor,
		Node:     e.Node,
		ChildReq: reqs,
		OutDist:  randomDist(),
		BuildIdx: -1,
	}}
}

// processImpl implements user-defined row processors.
type processImpl struct{ info }

func (r processImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpProcess {
		return nil
	}
	return []*cascades.PhysProto{{
		Op:       plan.PhysProcessImpl,
		Node:     e.Node,
		ChildReq: []plan.Distribution{anyDist()},
		OutDist:  anyDist(),
		BuildIdx: -1,
	}}
}

// reduceImpl implements user-defined reducers: co-locate and sort each key
// group.
type reduceImpl struct{ info }

func (r reduceImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpReduce {
		return nil
	}
	req := hashDist(e.Node.ReduceKeys)
	return []*cascades.PhysProto{{
		Op:        plan.PhysReduceImpl,
		Node:      e.Node,
		ChildReq:  []plan.Distribution{req},
		OutDist:   req,
		BuildIdx:  -1,
		NeedsSort: true,
	}}
}

// topImpl produces top-N implementations: a simple gather-then-select, or the
// two-phase variant with per-partition local tops.
type topImpl struct {
	info
	twoPhase bool
}

func (r topImpl) Implement(e *cascades.MExpr, m *cascades.Memo) []*cascades.PhysProto {
	if e.Node.Op != plan.OpTop {
		return nil
	}
	p := &cascades.PhysProto{
		Op:       plan.PhysGlobalTop,
		Node:     e.Node,
		ChildReq: []plan.Distribution{singletonDist()},
		OutDist:  singletonDist(),
		BuildIdx: -1,
	}
	if r.twoPhase {
		p.LocalPre = plan.PhysLocalTop
	}
	return []*cascades.PhysProto{p}
}
