package rules

import (
	"steerq/internal/cascades"
	"steerq/internal/cost"
)

// NewOptimizer wires a Cascades optimizer with the full rule catalog, the
// default coster, and the SCOPE-like defaults (50-token parallelism cap per
// §3.1.3).
func NewOptimizer(est *cost.Estimator) *cascades.Optimizer {
	return &cascades.Optimizer{
		Rules:             Catalog(),
		Est:               est,
		Coster:            cost.NewCoster(),
		MaxDOP:            50,
		EnforceExchangeID: IDEnforceExchange,
		EnforceSortID:     IDEnforceSortOrder,
	}
}
