package rules

import (
	"testing"

	"steerq/internal/cost"
	"steerq/internal/scopeql"
)

// TestCompileAllocationBudget guards the allocation-lean Cascades core: a
// single default-configuration compile of the smoke job must stay under a
// generous allocation budget. The memo rework (hashed interning, bitset
// provenance, slab-allocated expressions and candidates) brought this compile
// to roughly 365 allocations; the budget leaves ample headroom for legitimate
// growth (new rules, richer stats) while still catching a reintroduced
// per-expression or per-candidate allocation, which multiplies by tens of
// thousands across a discovery-pipeline run.
func TestCompileAllocationBudget(t *testing.T) {
	cat := testCatalog()
	root, err := scopeql.Compile(smokeScript, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt := NewOptimizer(cost.NewEstimated(cat))
	cfg := opt.Rules.DefaultConfig()
	// One warm-up run so lazily initialized shared state is excluded.
	if _, err := opt.Optimize(root, cfg); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, e := opt.Optimize(root, cfg); e != nil {
			t.Errorf("optimize: %v", e)
		}
	})
	// ~5x the measured steady state; also holds under -race, whose
	// instrumentation adds a few allocations of its own.
	const budget = 2000
	t.Logf("allocs per compile: %.0f (budget %d)", avg, budget)
	if avg > budget {
		t.Fatalf("compile allocates %.0f times per run, over the %d budget — a hot-path allocation has crept back in", avg, budget)
	}
}
