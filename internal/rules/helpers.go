package rules

import (
	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// info is a shared Info() implementation.
type info cascades.RuleInfo

func (i info) Info() cascades.RuleInfo { return cascades.RuleInfo(i) }

// schemaSet returns the column-ID set of a group's canonical schema.
func schemaSet(g *cascades.Group) map[plan.ColumnID]bool {
	set := make(map[plan.ColumnID]bool, len(g.Schema))
	for _, c := range g.Schema {
		set[c.ID] = true
	}
	return set
}

// exprsWithOp returns the expressions of g whose operator is op.
func exprsWithOp(g *cascades.Group, op plan.Op) []*cascades.MExpr {
	var out []*cascades.MExpr
	for _, e := range g.Exprs {
		if e.Node.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// positionalMap maps column IDs of `from` to the same-position columns of
// `to`; ok is false on arity mismatch.
func positionalMap(from, to []plan.Column) (map[plan.ColumnID]plan.Column, bool) {
	if len(from) != len(to) {
		return nil, false
	}
	m := make(map[plan.ColumnID]plan.Column, len(from))
	for i := range from {
		m[from[i].ID] = to[i]
	}
	return m, true
}

// remapExpr rewrites column references of e through m. ok is false when a
// referenced column is missing from m and from keep (columns allowed to pass
// unmapped).
func remapExpr(e *plan.Expr, m map[plan.ColumnID]plan.Column, keep map[plan.ColumnID]bool) (*plan.Expr, bool) {
	if e == nil {
		return nil, true
	}
	if e.Kind == plan.ExprColumn {
		if c, ok := m[e.Col.ID]; ok {
			return plan.ColExpr(c), true
		}
		if keep != nil && keep[e.Col.ID] {
			return e, true
		}
		return nil, false
	}
	cp := *e
	if len(e.Args) > 0 {
		cp.Args = make([]*plan.Expr, len(e.Args))
		for i, a := range e.Args {
			na, ok := remapExpr(a, m, keep)
			if !ok {
				return nil, false
			}
			cp.Args[i] = na
		}
	}
	return &cp, true
}

// remapCols rewrites a column list through m; ok is false on a miss.
func remapCols(cols []plan.Column, m map[plan.ColumnID]plan.Column) ([]plan.Column, bool) {
	out := make([]plan.Column, len(cols))
	for i, c := range cols {
		nc, ok := m[c.ID]
		if !ok {
			return nil, false
		}
		out[i] = nc
	}
	return out, true
}

// selNode builds a Select payload over the given schema.
func selNode(pred *plan.Expr, schema []plan.Column) *plan.Node {
	return &plan.Node{Op: plan.OpSelect, Pred: pred, Schema: schema}
}

// alignedUnionBranches returns the child groups of a union expression when
// the union group's canonical schema positionally matches its first branch
// (the invariant established by the binder); ok is false otherwise, and the
// caller should not rewrite through this union.
func alignedUnionBranches(u *cascades.MExpr) ([]*cascades.Group, bool) {
	g := u.Group
	if len(u.Children) == 0 {
		return nil, false
	}
	first := u.Children[0]
	if len(first.Schema) != len(g.Schema) {
		return nil, false
	}
	for i := range g.Schema {
		if first.Schema[i].ID != g.Schema[i].ID {
			return nil, false
		}
	}
	for _, b := range u.Children[1:] {
		if len(b.Schema) != len(g.Schema) {
			return nil, false
		}
	}
	return u.Children, true
}

// mergeAggFn returns the aggregate function that merges partial results of
// fn (COUNT partials merge by SUM; others are idempotent under re-merge).
func mergeAggFn(fn string) string {
	if fn == "COUNT" {
		return "SUM"
	}
	if fn == "AVG" {
		return "AVG" // modeled: exact AVG merge needs sum+count pairs
	}
	return fn
}

// equiKeys splits the equi-join key columns of pred by side membership.
// Conjuncts that are not two-sided equi comparisons are ignored.
func equiKeys(pred *plan.Expr, left, right map[plan.ColumnID]bool) (lk, rk []plan.Column) {
	for _, c := range plan.Conjuncts(pred) {
		a, b, ok := c.EquiJoinSides()
		if !ok {
			continue
		}
		switch {
		case left[a.ID] && right[b.ID]:
			lk = append(lk, a)
			rk = append(rk, b)
		case left[b.ID] && right[a.ID]:
			lk = append(lk, b)
			rk = append(rk, a)
		}
	}
	return lk, rk
}
