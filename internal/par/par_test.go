package par_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"steerq/internal/par"
)

func TestWorkersResolution(t *testing.T) {
	if got := par.Workers(3); got != 3 {
		t.Fatalf("explicit Workers(3) = %d", got)
	}
	t.Setenv(par.EnvWorkers, "5")
	if got := par.Workers(0); got != 5 {
		t.Fatalf("env Workers(0) = %d, want 5", got)
	}
	if got := par.Workers(2); got != 2 {
		t.Fatalf("explicit beats env: Workers(2) = %d", got)
	}
	t.Setenv(par.EnvWorkers, "not-a-number")
	if got := par.Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("bad env Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	t.Setenv(par.EnvWorkers, "-4")
	if got := par.Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative env Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestMapSlotsResultsByInputIndex(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		out, err := par.Map(workers, items, func(i, item int) (string, error) {
			return fmt.Sprintf("%d*2=%d", item, item*2), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d*2=%d", i, i*2); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 257
	var counts [n]atomic.Int32
	if err := par.ForEach(7, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestFirstErrorIsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := par.ForEach(workers, 64, func(i int) error {
			switch i {
			case 50:
				return errB
			case 13:
				return errA
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: error %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestErrorDoesNotStopOtherIndices(t *testing.T) {
	var ran atomic.Int32
	err := par.ForEach(4, 32, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d of 32 indices", got)
	}
}

func TestEmptyAndZeroInputs(t *testing.T) {
	if err := par.ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	out, err := par.Map(4, []int(nil), func(int, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("nil items: out=%v err=%v", out, err)
	}
}
