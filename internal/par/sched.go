// Work-stealing scheduler: the execution engine behind ForEach/Map and the
// direct Run API.
//
// The previous pool handed indices out of one shared atomic counter, which
// serializes every worker on one cache line and cannot prioritize expensive
// items. The scheduler instead deals the full index set into per-worker
// bounded deques up front (optionally ordered by a caller-supplied priority,
// heaviest first) and lets idle workers steal: a worker drains its own deque
// from the head and, once empty, takes the lowest-index item exposed at any
// victim's steal end. Stealing moves scheduling decisions, never results —
// results stay slotted by input index and errors still resolve to the lowest
// failing index, so the determinism contract in the package comment is
// untouched at any worker count.
//
// Observability is the one place scheduling could leak: which worker ran an
// item and how often deques ran dry are genuinely schedule-dependent. Under
// the deterministic virtual clock (STEERQ_VCLOCK, the same switch that
// freezes span durations) SchedObs therefore publishes the canonical serial
// schedule — every item attributed to worker 0, zero steals — keeping
// frozen-clock metric snapshots byte-identical at any worker count, exactly
// as durations are canonicalized to zero. Wall-clock runs publish the
// actuals.

package par

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"steerq/internal/obs"
)

// Options configures one Run beyond the worker count.
type Options struct {
	// Priority, when non-nil, returns the scheduling weight of item i:
	// higher-weight items are dealt toward the front of the deques and so
	// start earlier. Ties are broken by the lower index. Priority affects
	// scheduling only — results, errors and all other observable outputs
	// are identical for any weighting.
	Priority func(i int) int64

	// Obs, when non-nil, receives the run's scheduler telemetry (steal
	// count, per-worker executed items, live queue depth).
	Obs *SchedObs
}

// Stats reports one Run's scheduling activity. Steals and the per-worker
// execution split depend on timing (they describe which worker got to an
// item first) and are therefore diagnostic: no determinism guarantee covers
// them, unlike every value Run's callback computes.
type Stats struct {
	// Workers is the resolved worker count of the run.
	Workers int
	// Items is the number of scheduled items.
	Items int
	// Steals counts items a worker took from another worker's deque.
	Steals uint64
	// Executed[w] counts the items worker w ran, summing to Items.
	Executed []uint64
}

// Add accumulates o into s for aggregation across runs; the worker count
// and per-worker tallies widen to the larger run.
func (s *Stats) Add(o Stats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Items += o.Items
	s.Steals += o.Steals
	if len(o.Executed) > len(s.Executed) {
		grown := make([]uint64, len(o.Executed))
		copy(grown, s.Executed)
		s.Executed = grown
	}
	for w, n := range o.Executed {
		s.Executed[w] += n
	}
}

// deque is one worker's bounded queue of item indices in schedule order.
// The owner pops from the head (highest priority first); thieves take from
// the tail (lowest priority, minimizing interference with the owner). The
// backing slice is sized exactly to the dealt share and never grows.
type deque struct {
	mu    sync.Mutex
	items []int
	head  int
	tail  int // one past the last queued item
}

// pop removes the head item. ok is false when the deque is empty.
func (d *deque) pop() (int, bool) {
	d.mu.Lock()
	if d.head >= d.tail {
		d.mu.Unlock()
		return 0, false
	}
	i := d.items[d.head]
	d.head++
	d.mu.Unlock()
	return i, true
}

// peekTail reports the item a thief would steal, without taking it.
func (d *deque) peekTail() (int, bool) {
	d.mu.Lock()
	if d.head >= d.tail {
		d.mu.Unlock()
		return 0, false
	}
	i := d.items[d.tail-1]
	d.mu.Unlock()
	return i, true
}

// stealTail takes the tail item iff it is still the expected one; a false
// return means the deque changed since the peek and the thief must rescan.
func (d *deque) stealTail(expect int) bool {
	d.mu.Lock()
	if d.head >= d.tail || d.items[d.tail-1] != expect {
		d.mu.Unlock()
		return false
	}
	d.tail--
	d.mu.Unlock()
	return true
}

// Run executes f(worker, i) for every i in [0, n) on at most
// Workers(workers) goroutines, scheduled by work stealing, and waits for all
// of them. The worker argument is a stable identity in [0, workers): at most
// one item runs under a given worker at a time, so callers may key
// worker-local state (scratch arenas, write buffers) by it without locking.
//
// Every index runs regardless of other indices' failures and the returned
// error is the one from the lowest failing index, exactly as in ForEach.
// The returned Stats describe scheduling only; see its comment.
func Run(workers, n int, opts Options, f func(worker, i int) error) (Stats, error) {
	if n <= 0 {
		return Stats{}, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	st := Stats{Workers: w, Items: n, Executed: make([]uint64, w)}
	order := scheduleOrder(n, opts.Priority)
	opts.Obs.enqueue(n)
	if w == 1 {
		// Serial fast path: the schedule is the priority order itself.
		var firstErr error
		firstIdx := -1
		for _, i := range order {
			opts.Obs.dequeue()
			if err := f(0, i); err != nil && (firstIdx == -1 || i < firstIdx) {
				firstIdx, firstErr = i, err
			}
		}
		st.Executed[0] = uint64(n)
		opts.Obs.publish(st)
		return st, firstErr
	}

	// Deal the schedule round-robin so every deque is a priority-descending
	// subsequence: worker g owns order[g], order[g+w], ...
	deques := make([]*deque, w)
	backing := make([]int, n)
	for g := 0; g < w; g++ {
		share := (n - g + w - 1) / w
		items := backing[:share:share]
		backing = backing[share:]
		for k := 0; k < share; k++ {
			items[k] = order[g+k*w]
		}
		deques[g] = &deque{items: items, tail: share}
	}

	var steals atomic.Uint64
	var mu sync.Mutex
	firstIdx := -1
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			var executed uint64
			for {
				i, ok := deques[self].pop()
				if !ok {
					i, ok = stealLowest(deques, self)
					if !ok {
						break
					}
					steals.Add(1)
				}
				opts.Obs.dequeue()
				executed++
				if err := f(self, i); err != nil {
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
			st.Executed[self] = executed
		}(g)
	}
	wg.Wait()
	st.Steals = steals.Load()
	opts.Obs.publish(st)
	return st, firstErr
}

// scheduleOrder returns the item indices in scheduling order: input order
// without priorities, else by descending priority with ties broken by the
// lower index (the stable sort over an ascending base guarantees the tie
// rule).
func scheduleOrder(n int, pri func(i int) int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if pri == nil {
		return order
	}
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = pri(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	return order
}

// stealLowest takes one item for a worker whose own deque ran dry: it scans
// every victim's steal end and steals the lowest item index exposed there,
// so the steal policy is a function of the queue state, not of victim-scan
// luck. ok is false once every deque is empty (items still executing on
// other workers are no longer stealable).
func stealLowest(deques []*deque, self int) (int, bool) {
	for {
		best, victim := -1, -1
		for v := range deques {
			if v == self {
				continue
			}
			if i, ok := deques[v].peekTail(); ok && (victim == -1 || i < best) {
				best, victim = i, v
			}
		}
		if victim == -1 {
			return 0, false
		}
		if deques[victim].stealTail(best) {
			return best, true
		}
		// Lost the race to the owner or another thief; rescan.
	}
}

// Scheduler metric names.
const (
	schedStealsMetric = "steerq_par_steals_total"
	schedItemsMetric  = "steerq_par_items_total"
	schedDepthMetric  = "steerq_par_queue_depth"
)

// maxWorkerLabel bounds the per-worker label cardinality: workers beyond the
// table share the overflow label, exactly the bounded-enum discipline the
// obslabels analyzer enforces.
const maxWorkerLabel = 16

// workerLabels are the precomputed bounded label values for the per-worker
// items counter.
var workerLabels = [maxWorkerLabel + 1]string{
	"0", "1", "2", "3", "4", "5", "6", "7",
	"8", "9", "10", "11", "12", "13", "14", "15", "16+",
}

// SchedObs publishes scheduler telemetry into an obs.Registry: a steal
// counter, per-worker executed-item counters and a live queue-depth gauge
// (items dealt but not yet started — nonzero only while a Run is in flight,
// which makes it a debug-endpoint signal and a deterministic zero in
// snapshots taken between runs).
//
// Which worker ran an item, and how many steals that took, are the only
// schedule-dependent quantities in this package; under STEERQ_VCLOCK they
// are canonicalized to the serial schedule (all items on worker "0", zero
// steals) so frozen-clock snapshot goldens stay byte-identical at any
// worker count. The Stats returned by Run always carry the actuals.
type SchedObs struct {
	reg    *obs.Registry
	labels []string
	steals *obs.Counter
	queued atomic.Int64

	mu      sync.Mutex
	workers map[int]*obs.Counter
}

// NewSchedObs resolves the scheduler instruments against reg with the given
// label pairs. A nil registry returns a nil SchedObs, which records nothing.
func NewSchedObs(reg *obs.Registry, labels ...string) *SchedObs {
	if reg == nil {
		return nil
	}
	s := &SchedObs{
		reg:     reg,
		labels:  labels,
		steals:  reg.Counter(schedStealsMetric, labels...),
		workers: make(map[int]*obs.Counter),
	}
	reg.GaugeFunc(schedDepthMetric, func() float64 {
		return float64(s.queued.Load())
	}, labels...)
	// Resolve worker 0 eagerly so even an all-canonical snapshot carries the
	// per-worker family.
	s.workerCounter(0)
	return s
}

// workerCounter returns (resolving once) the executed-items counter for one
// worker slot, clamped into the bounded label table.
func (s *SchedObs) workerCounter(w int) *obs.Counter {
	if w > maxWorkerLabel {
		w = maxWorkerLabel
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.workers[w]; ok {
		return c
	}
	ls := make([]string, 0, len(s.labels)+2)
	ls = append(ls, s.labels...)
	worker := workerLabels[w]
	ls = append(ls, "worker", worker)
	c := s.reg.Counter(schedItemsMetric, ls...)
	s.workers[w] = c
	return c
}

// enqueue/dequeue maintain the live queue-depth gauge. Nil-safe.
func (s *SchedObs) enqueue(n int) {
	if s != nil {
		s.queued.Add(int64(n))
	}
}

func (s *SchedObs) dequeue() {
	if s != nil {
		s.queued.Add(-1)
	}
}

// publish records one run's stats, canonicalized to the serial schedule
// under the deterministic virtual clock (see the type comment). Nil-safe.
func (s *SchedObs) publish(st Stats) {
	if s == nil {
		return
	}
	if os.Getenv(obs.VClockEnv) != "" {
		s.workerCounter(0).Add(uint64(st.Items))
		return
	}
	s.steals.Add(st.Steals)
	for w, n := range st.Executed {
		if n > 0 {
			s.workerCounter(w).Add(n)
		}
	}
}
