package par_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"steerq/internal/par"
)

// TestMapEdgeCases is the table-driven edge-case suite for the pool: empty
// input, every item failing, and failures mixed with successes, at both the
// serial fast path and a parallel worker count.
func TestMapEdgeCases(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d failed", i) }
	cases := []struct {
		name     string
		n        int
		failWhen func(i int) bool
		wantErr  string // substring of the lowest-index failure; "" = no error
		wantOut  func(i int) int
	}{
		{
			name: "zero-items",
			n:    0, failWhen: func(int) bool { return false },
			wantErr: "", wantOut: nil,
		},
		{
			name: "single-item",
			n:    1, failWhen: func(int) bool { return false },
			wantErr: "", wantOut: func(i int) int { return i * i },
		},
		{
			name: "all-error",
			n:    37, failWhen: func(int) bool { return true },
			wantErr: "item 0 failed", wantOut: func(int) int { return 0 },
		},
		{
			name: "mixed-errors-keep-successful-slots",
			n:    64, failWhen: func(i int) bool { return i%5 == 3 },
			wantErr: "item 3 failed",
			wantOut: func(i int) int {
				if i%5 == 3 {
					return 0 // failed slots keep the zero value
				}
				return i * i
			},
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				items := make([]int, tc.n)
				for i := range items {
					items[i] = i
				}
				out, err := par.Map(workers, items, func(i, item int) (int, error) {
					if tc.failWhen(i) {
						return 0, boom(i)
					}
					return item * item, nil
				})
				if tc.wantErr == "" && err != nil {
					t.Fatalf("err = %v", err)
				}
				if tc.wantErr != "" && (err == nil || err.Error() != tc.wantErr) {
					t.Fatalf("err = %v, want %q (the lowest failing index)", err, tc.wantErr)
				}
				if len(out) != tc.n {
					t.Fatalf("len(out) = %d, want %d", len(out), tc.n)
				}
				for i, v := range out {
					if want := tc.wantOut(i); v != want {
						t.Fatalf("out[%d] = %d, want %d", i, v, want)
					}
				}
			})
		}
	}
}

func TestForEachCtxPassesLiveContext(t *testing.T) {
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "payload")
	var ran atomic.Int32
	err := par.ForEachCtx(ctx, 4, 16, func(c context.Context, i int) error {
		if c.Value(ctxKey{}) != "payload" {
			return errors.New("wrong context")
		}
		ran.Add(1)
		return nil
	})
	if err != nil || ran.Load() != 16 {
		t.Fatalf("err=%v ran=%d", err, ran.Load())
	}
}

func TestForEachCtxPreCanceledSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := par.ForEachCtx(ctx, workers, 32, func(context.Context, int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d indices ran under a dead context", workers, ran.Load())
		}
	}
}

func TestMapCtxCancellationMidMap(t *testing.T) {
	// Index 5 cancels the context; indices not yet started must record
	// ctx.Err() instead of running, and the error must be the lowest-index
	// failure. With workers=1 the schedule is serial, so exactly indices
	// 0..5 run and 6..N-1 are skipped deterministically.
	const n = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	out, err := par.MapCtx(ctx, 1, make([]struct{}, n), func(c context.Context, i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i == 5 {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from index 6", err)
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("%d indices ran, want 6 (serial run stops starting new items)", got)
	}
	for i := 0; i < n; i++ {
		want := i + 1
		if i > 5 {
			want = 0 // skipped slots keep the zero value
		}
		if out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	// Parallel: timing decides which indices ran, but the invariants hold —
	// slotted output, canceled error, and no new items after cancellation
	// had propagated (checked loosely: at least the canceling item ran).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var ran2 atomic.Int32
	_, err = par.MapCtx(ctx2, 8, make([]struct{}, n), func(c context.Context, i int, _ struct{}) (int, error) {
		ran2.Add(1)
		if i == 5 {
			cancel2()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	if ran2.Load() == 0 || ran2.Load() > n {
		t.Fatalf("parallel ran %d items", ran2.Load())
	}
}

func TestMapCtxItemErrorBeatsLaterCancellation(t *testing.T) {
	// A genuine item failure at a low index must win over the ctx.Err()
	// entries of later skipped indices.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := par.MapCtx(ctx, 1, make([]struct{}, 10), func(c context.Context, i int, _ struct{}) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the item's own error", err)
	}
}

func TestItemContext(t *testing.T) {
	parent := context.Background()
	ctx, cancel := par.ItemContext(parent, 0)
	if ctx != parent {
		t.Fatal("zero timeout should return the parent context unchanged")
	}
	cancel() // must be a safe no-op

	ctx, cancel = par.ItemContext(parent, 10*time.Millisecond)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("positive timeout did not set a deadline")
	}
	if until := time.Until(dl); until <= 0 || until > 10*time.Millisecond {
		t.Fatalf("deadline %v from now, want (0, 10ms]", until)
	}
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}
