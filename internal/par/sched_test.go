package par_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"steerq/internal/obs"
	"steerq/internal/par"
)

func TestRunZeroItems(t *testing.T) {
	for _, n := range []int{0, -3} {
		st, err := par.Run(8, n, par.Options{}, func(worker, i int) error {
			t.Fatalf("callback ran for n=%d (worker=%d i=%d)", n, worker, i)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: err = %v", n, err)
		}
		if st.Items != 0 || st.Steals != 0 || len(st.Executed) != 0 {
			t.Fatalf("n=%d: stats = %+v, want zero value", n, st)
		}
	}
}

func TestRunWorkersExceedItems(t *testing.T) {
	// 64 workers over 3 items must clamp to 3 workers, run every index exactly
	// once, and attribute exactly 3 executions across the per-worker tallies.
	var ran [3]atomic.Int32
	st, err := par.Run(64, 3, par.Options{}, func(worker, i int) error {
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if st.Workers != 3 || len(st.Executed) != 3 {
		t.Fatalf("workers = %d (executed %d slots), want clamp to 3", st.Workers, len(st.Executed))
	}
	var total uint64
	for _, n := range st.Executed {
		total += n
	}
	if total != 3 || st.Items != 3 {
		t.Fatalf("executed %d items across workers, items=%d, want 3", total, st.Items)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestRunAllErrorLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := par.Run(workers, 41, par.Options{}, func(_, i int) error {
			return fmt.Errorf("item %d failed", i)
		})
		if err == nil || err.Error() != "item 0 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest failing index", workers, err)
		}
	}
}

// TestRunWorkerIdentityIsExclusive verifies the worker-local-state contract:
// at most one item runs under a given worker identity at a time, so
// unsynchronized per-worker slots must never race (the -race runs of this
// test would catch a violation) nor observe interleaved writes.
func TestRunWorkerIdentityIsExclusive(t *testing.T) {
	const workers, n = 4, 256
	depth := make([]atomic.Int32, workers)
	counts := make([]int, workers) // unsynchronized on purpose: exclusivity is the lock
	_, err := par.Run(workers, n, par.Options{}, func(worker, i int) error {
		if d := depth[worker].Add(1); d != 1 {
			return fmt.Errorf("worker %d reentered (depth %d)", worker, d)
		}
		counts[worker]++
		depth[worker].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
}

// TestRunPriorityOrderSerial pins the scheduling order at one worker: by
// descending priority, ties broken by the lower input index. Results remain
// slotted by index regardless.
func TestRunPriorityOrderSerial(t *testing.T) {
	pri := []int64{5, 9, 5, 1, 9, 5}
	var order []int
	out := make([]int, len(pri))
	_, err := par.Run(1, len(pri), par.Options{
		Priority: func(i int) int64 { return pri[i] },
	}, func(_, i int) error {
		order = append(order, i)
		out[i] = i * 10
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	want := []int{1, 4, 0, 2, 5, 3} // 9s first (1 before 4), then 5s in index order, then 1
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("schedule order = %v, want %v (priority desc, ties by index)", order, want)
		}
	}
	for i := range out {
		if out[i] != i*10 {
			t.Fatalf("out[%d] = %d: results must stay slotted by index", i, out[i])
		}
	}
}

// TestRunPriorityDeterminismAcrossWorkers: priorities shift the schedule but
// never the observable outputs — identical results and the same lowest-index
// error at any worker count, with or without a priority function.
func TestRunPriorityDeterminismAcrossWorkers(t *testing.T) {
	const n = 97
	boom := errors.New("boom")
	run := func(workers int, pri func(int) int64) ([]int, error) {
		out := make([]int, n)
		_, err := par.Run(workers, n, par.Options{Priority: pri}, func(_, i int) error {
			out[i] = i*i + 7
			if i%13 == 4 {
				return fmt.Errorf("%w at %d", boom, i)
			}
			return nil
		})
		return out, err
	}
	base, baseErr := run(1, nil)
	for _, workers := range []int{1, 2, 8} {
		for _, pri := range []func(int) int64{nil, func(i int) int64 { return int64(i % 7) }} {
			out, err := run(workers, pri)
			if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
				t.Fatalf("workers=%d: err = %v, want %v", workers, err, baseErr)
			}
			for i := range out {
				if out[i] != base[i] {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], base[i])
				}
			}
		}
	}
}

// TestRunStealsOccur forces the steal path: worker 0 stalls on its first item
// while the others finish their deques, so the stalled worker's remaining
// items must be stolen and the run must still complete every index.
func TestRunStealsOccur(t *testing.T) {
	const workers, n = 4, 64
	release := make(chan struct{})
	var ran atomic.Int32
	var stallOnce sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		st, err := par.Run(workers, n, par.Options{}, func(worker, i int) error {
			if i == 0 {
				stallOnce.Do(func() { <-release })
			}
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Errorf("err = %v", err)
		}
		if st.Steals == 0 {
			t.Errorf("steals = 0, want >0: a stalled worker's deque must be raided")
		}
	}()
	// The other workers drain everything stealable; index 0 is still running.
	for ran.Load() < n-1 {
		runtime.Gosched()
	}
	close(release)
	<-done
	if ran.Load() != n {
		t.Fatalf("%d items ran, want %d", ran.Load(), n)
	}
}

// TestRunCancelMidSteal cancels the context from an item while other workers
// are deep in the steal loop; unstarted indices must record ctx.Err(), the
// lowest-index failure must win, and the run must terminate.
func TestRunCancelMidSteal(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := par.ForEachCtx(ctx, 8, n, func(c context.Context, i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from a skipped index", err)
	}
	if got := ran.Load(); got == 0 || got > n {
		t.Fatalf("%d items ran", got)
	}
}

func TestStatsAdd(t *testing.T) {
	var s par.Stats
	s.Add(par.Stats{Workers: 2, Items: 10, Steals: 3, Executed: []uint64{6, 4}})
	s.Add(par.Stats{Workers: 4, Items: 8, Steals: 1, Executed: []uint64{2, 2, 2, 2}})
	want := par.Stats{Workers: 4, Items: 18, Steals: 4, Executed: []uint64{8, 6, 2, 2}}
	if s.Workers != want.Workers || s.Items != want.Items || s.Steals != want.Steals {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
	for w := range want.Executed {
		if s.Executed[w] != want.Executed[w] {
			t.Fatalf("executed = %v, want %v", s.Executed, want.Executed)
		}
	}
}

// TestSchedObsCanonicalUnderVClock: with the deterministic clock set, the
// published schedule is the canonical serial one — all items on worker "0",
// zero steals — no matter how many workers actually ran, so frozen-clock
// metric snapshots cannot depend on scheduling.
func TestSchedObsCanonicalUnderVClock(t *testing.T) {
	t.Setenv(obs.VClockEnv, "1")
	reg := obs.NewWithClock(obs.FrozenClock())
	so := par.NewSchedObs(reg, "pool", "test")
	for _, workers := range []int{1, 8} {
		if _, err := par.Run(workers, 50, par.Options{Obs: so}, func(_, i int) error {
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	var items, steals uint64
	workerSeen := map[string]bool{}
	for _, c := range snap.Counters {
		switch c.Name {
		case "steerq_par_items_total":
			items += c.Value
			for _, l := range c.Labels {
				if l.Key == "worker" {
					workerSeen[l.Value] = true
				}
			}
		case "steerq_par_steals_total":
			steals += c.Value
		}
	}
	if items != 100 {
		t.Fatalf("canonical items = %v, want 100", items)
	}
	if steals != 0 {
		t.Fatalf("canonical steals = %v, want 0", steals)
	}
	if len(workerSeen) != 1 || !workerSeen["0"] {
		t.Fatalf("worker labels = %v, want only \"0\" under %s", workerSeen, obs.VClockEnv)
	}
	for _, g := range snap.Gauges {
		if g.Name == "steerq_par_queue_depth" && g.Value != 0 {
			t.Fatalf("queue depth = %v between runs, want 0", g.Value)
		}
	}
}

// TestSchedObsActualsWithoutVClock: on the wall clock the per-worker split
// and steal count are published as measured (summing to the item count).
func TestSchedObsActualsWithoutVClock(t *testing.T) {
	t.Setenv(obs.VClockEnv, "")
	reg := obs.NewWithClock(obs.FrozenClock())
	so := par.NewSchedObs(reg, "pool", "test")
	st, err := par.Run(4, 40, par.Options{Obs: so}, func(_, i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var items uint64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "steerq_par_items_total" {
			items += c.Value
		}
	}
	if items != uint64(st.Items) {
		t.Fatalf("published items = %v, want %d", items, st.Items)
	}
}

func TestNewSchedObsNilRegistry(t *testing.T) {
	so := par.NewSchedObs(nil)
	if so != nil {
		t.Fatal("nil registry must yield a nil (no-op) SchedObs")
	}
	// The nil SchedObs must be safe to thread through a run.
	if _, err := par.Run(2, 8, par.Options{Obs: so}, func(_, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
