// Package par provides the bounded, deterministic fan-out primitive used by
// the discovery pipeline and the experiment runner.
//
// The determinism contract is the whole point: results are slotted by *input
// index*, never by completion order, and error reporting picks the failure at
// the lowest index — so a run with Workers=8 is bit-for-bit identical to a
// run with Workers=1, and the worker count is purely a throughput knob. Any
// call site whose output depended on goroutine scheduling would break the
// reproduction guarantees of internal/xrand, which is why no streaming or
// completion-order API is offered at all.
//
// Worker counts resolve in precedence order: an explicit positive value, the
// STEERQ_WORKERS environment variable, then runtime.GOMAXPROCS(0).
//
// steerq:hotpath — every candidate compile is dispatched through this
// package; the hotalloc analyzer guards the scheduler against allocation
// regressions.
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"time"
)

// EnvWorkers is the environment variable consulted when no explicit worker
// count is configured.
const EnvWorkers = "STEERQ_WORKERS"

// Workers resolves a configured worker count: n itself when positive, else
// STEERQ_WORKERS when set to a positive integer, else GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if p := runtime.GOMAXPROCS(0); p > 0 {
		return p
	}
	return 1
}

// ForEach runs f(i) for every i in [0, n) on at most Workers(workers)
// goroutines and waits for all of them. Every index runs regardless of other
// indices' failures (pipeline call sites treat per-item failure as data, not
// as a reason to stop); the returned error is the one from the lowest failing
// index, so the error too is independent of scheduling.
//
// ForEach schedules through the work-stealing scheduler (see Run) with no
// priority function, so items are dealt in index order; callers that want
// priorities, worker identities or scheduling telemetry use Run directly.
func ForEach(workers, n int, f func(i int) error) error {
	_, err := Run(workers, n, Options{}, func(_, i int) error {
		return f(i)
	})
	return err
}

// Map applies f to every item and returns the results slotted by input index.
// The output slice always has len(items) entries — failed items keep their
// zero value — and the returned error is the lowest-index failure, exactly as
// in ForEach.
func Map[T, R any](workers int, items []T, f func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(workers, len(items), func(i int) error {
		r, err := f(i, items[i])
		out[i] = r
		return err
	})
	return out, err
}

// ForEachCtx is ForEach with a context: f receives ctx so long-running items
// can honor deadlines, and once ctx is done no further indices start — each
// unstarted index records ctx.Err() as its error instead of running. Indices
// already in flight run to completion (they see the cancellation through
// their own ctx), so the pool never abandons a goroutine mid-item.
//
// The determinism contract weakens only on the error path: with a live
// context the results are bit-for-bit identical to ForEach; after a
// cancellation the set of indices that ran depends on timing, but the
// returned error is still the lowest-index failure, and a context canceled
// before the call starts skips every index deterministically.
func ForEachCtx(ctx context.Context, workers, n int, f func(ctx context.Context, i int) error) error {
	return ForEach(workers, n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return f(ctx, i)
	})
}

// MapCtx is Map with a context, with the same slotting and lowest-index
// error semantics; see ForEachCtx for the cancellation contract.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachCtx(ctx, workers, len(items), func(ctx context.Context, i int) error {
		r, err := f(ctx, i, items[i])
		out[i] = r
		return err
	})
	return out, err
}

// ItemContext bounds one pool item (one compile, one execution) by a
// per-item timeout: d > 0 derives a deadline context, d <= 0 returns ctx
// unchanged with a no-op cancel. Callers always `defer cancel()`, so the
// zero-timeout path must not allocate a cancelable context.
func ItemContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
