package learning

import (
	"bytes"
	"testing"

	"steerq/internal/xrand"
)

// TestTrainBitDeterministic: the full learning pipeline — split, feature
// fitting, epoch-budget selection, Adam training — is a pure function of
// (dataset, options, seed). Two runs from equal seeds must serialize to
// byte-identical models.
func TestTrainBitDeterministic(t *testing.T) {
	ds, _ := groupFixture(t)
	if len(ds.Examples) < 15 {
		t.Skipf("group too small for a split: %d examples", len(ds.Examples))
	}
	opts := DefaultTrainOptions()
	opts.Hidden = 8
	opts.NN.Epochs = 30

	train := func() []byte {
		split := NewSplit(len(ds.Examples), xrand.New(5))
		model := Train(ds, split, opts, xrand.New(6))
		data, err := model.Save()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := train(), train()
	if !bytes.Equal(a, b) {
		t.Fatal("two identically seeded training runs serialized differently")
	}
}

// TestSplitDeterministicAndSeedSensitive: equal (n, seed) reproduces the
// split exactly; a different seed permutes it (same sizes, same partition
// property, different membership).
func TestSplitDeterministicAndSeedSensitive(t *testing.T) {
	same := func(a, b Split) bool {
		eq := func(x, y []int) bool {
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}
		return eq(a.Train, b.Train) && eq(a.Val, b.Val) && eq(a.Test, b.Test)
	}
	a := NewSplit(80, xrand.New(3))
	b := NewSplit(80, xrand.New(3))
	if !same(a, b) {
		t.Fatal("same seed produced different splits")
	}
	c := NewSplit(80, xrand.New(4))
	if same(a, c) {
		t.Fatal("different seeds produced identical splits (suspicious)")
	}
	for _, s := range []Split{a, c} {
		seen := make(map[int]bool)
		for _, idx := range [][]int{s.Train, s.Val, s.Test} {
			for _, i := range idx {
				if i < 0 || i >= 80 || seen[i] {
					t.Fatalf("split is not a partition at index %d", i)
				}
				seen[i] = true
			}
		}
		if len(seen) != 80 {
			t.Fatalf("split covers %d of 80", len(seen))
		}
	}
}

// TestNormalizeTargetsShiftInvariant: adding a constant to every valid
// runtime must not change the normalized targets — normalization is min-max
// over the valid arms, so only relative spacing matters.
func TestNormalizeTargetsShiftInvariant(t *testing.T) {
	base := []float64{120, 240, -1, 180, 300}
	shifted := make([]float64, len(base))
	for i, v := range base {
		if v < 0 {
			shifted[i] = v
			continue
		}
		shifted[i] = v + 1000
	}
	y1, m1 := normalizeTargets(base)
	y2, m2 := normalizeTargets(shifted)
	for i := range y1 {
		if m1[i] != m2[i] {
			t.Fatalf("mask changed under shift at %d", i)
		}
		if !m1[i] {
			continue
		}
		if d := y1[i] - y2[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("normalized target %d changed under shift: %v vs %v", i, y1[i], y2[i])
		}
	}
}
