package learning

import (
	"testing"

	"steerq/internal/abtest"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func TestNormalizeTargets(t *testing.T) {
	y, mask := normalizeTargets([]float64{100, 200, -1, 150})
	if !mask[0] || !mask[1] || mask[2] || !mask[3] {
		t.Fatalf("mask wrong: %v", mask)
	}
	if y[0] != 0 || y[1] != 1 || y[3] != 0.5 {
		t.Fatalf("normalization wrong: %v", y)
	}
	// Uniform runtimes normalize to all zeros.
	y2, _ := normalizeTargets([]float64{50, 50})
	if y2[0] != 0 || y2[1] != 0 {
		t.Fatalf("constant runtimes normalized to %v", y2)
	}
}

func TestSplitProportions(t *testing.T) {
	s := NewSplit(100, xrand.New(1))
	if len(s.Val) != 20 || len(s.Train) != 40 || len(s.Test) != 40 {
		t.Fatalf("split sizes %d/%d/%d, want 40/20/40", len(s.Train), len(s.Val), len(s.Test))
	}
	seen := make(map[int]bool)
	for _, idx := range [][]int{s.Train, s.Val, s.Test} {
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("index %d in two splits", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("splits cover %d of 100", len(seen))
	}
}

// groupFixture collects a small real dataset over a generated workload.
func groupFixture(t *testing.T) (*Dataset, *abtest.Harness) {
	t.Helper()
	w := workload.Generate(workload.ProfileB(0.003, 2021))
	h := abtest.New(w.Cat, rules.NewOptimizer(cost.NewEstimated(w.Cat)), 7)
	var jobs []*workload.Job
	for d := 0; d < 4; d++ {
		jobs = append(jobs, w.Day(d)...)
	}
	g := steering.NewGrouper(h)
	groups, err := g.Group(jobs)
	if err != nil {
		t.Fatal(err)
	}
	grp := groups[0]
	p := steering.NewPipeline(h, xrand.New(9))
	p.MaxCandidates = 60
	p.ExecutePerJob = 5
	arms, err := CandidateArms(p, grp.Jobs, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	members := grp.Jobs
	if len(members) > 60 {
		members = members[:60]
	}
	return Collect(h, grp.Signature, members, arms), h
}

func TestCandidateArmsStructure(t *testing.T) {
	ds, h := groupFixture(t)
	if len(ds.Configs) < 2 {
		t.Fatalf("only %d arms discovered", len(ds.Configs))
	}
	if !ds.Configs[0].Equal(h.Opt.Rules.DefaultConfig()) {
		t.Fatal("arm 0 is not the default configuration")
	}
	seen := make(map[string]bool)
	for _, c := range ds.Configs {
		hx := c.Hex()
		if seen[hx] {
			t.Fatal("duplicate arm")
		}
		seen[hx] = true
	}
}

func TestCollectDataset(t *testing.T) {
	ds, _ := groupFixture(t)
	if len(ds.Examples) == 0 {
		t.Fatal("no examples collected")
	}
	for _, ex := range ds.Examples {
		if len(ex.Runtimes) != len(ds.Configs) {
			t.Fatalf("example has %d runtimes, want %d", len(ex.Runtimes), len(ds.Configs))
		}
		if ex.Runtimes[0] <= 0 {
			t.Fatal("default runtime missing")
		}
		if ex.Feats.OpStats == nil {
			t.Fatal("query-graph features missing")
		}
		// Diffs of the default arm are empty by definition.
		if !ex.Feats.Diffs[0].IsEmpty() {
			t.Fatal("default arm has a non-empty RuleDiff")
		}
	}
}

func TestTrainEvaluateEndToEnd(t *testing.T) {
	ds, _ := groupFixture(t)
	if len(ds.Examples) < 15 {
		t.Skipf("group too small for a split: %d examples", len(ds.Examples))
	}
	split := NewSplit(len(ds.Examples), xrand.New(5))
	opts := DefaultTrainOptions()
	opts.Hidden = 16
	opts.NN.Epochs = 60
	model := Train(ds, split, opts, xrand.New(6))
	ev := Evaluate(model, ds, split.Test)
	if len(ev.PerJob) != len(split.Test) {
		t.Fatalf("evaluated %d of %d test jobs", len(ev.PerJob), len(split.Test))
	}
	for _, o := range ev.PerJob {
		if o.Best > o.Default+1e-9 {
			t.Fatal("oracle worse than default")
		}
		if o.Best > o.Learned+1e-9 {
			t.Fatal("oracle worse than learned")
		}
		if o.Arm < 0 || o.Arm >= len(ds.Configs) {
			t.Fatalf("chosen arm %d out of range", o.Arm)
		}
	}
	// Aggregates ordered Best <= min(Default, Learned).
	mean := func(get func(JobOutcome) float64) float64 { return ev.Summarize(get).Mean }
	best := mean(func(o JobOutcome) float64 { return o.Best })
	def := mean(func(o JobOutcome) float64 { return o.Default })
	lrn := mean(func(o JobOutcome) float64 { return o.Learned })
	if best > def || best > lrn {
		t.Fatalf("ordering violated: best=%v default=%v learned=%v", best, def, lrn)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	ev := Evaluation{}
	for i := 1; i <= 100; i++ {
		ev.PerJob = append(ev.PerJob, JobOutcome{Default: float64(i)})
	}
	s := ev.Summarize(func(o JobOutcome) float64 { return o.Default })
	if s.Mean != 50.5 {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.P90 < 89 || s.P90 > 91 {
		t.Fatalf("p90 %v", s.P90)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("p99 %v", s.P99)
	}
}

func TestModelSaveLoad(t *testing.T) {
	ds, _ := groupFixture(t)
	if len(ds.Examples) < 10 {
		t.Skip("group too small")
	}
	split := NewSplit(len(ds.Examples), xrand.New(5))
	opts := DefaultTrainOptions()
	opts.Hidden = 8
	opts.NN.Epochs = 20
	model := Train(ds, split, opts, xrand.New(6))

	data, err := model.Save()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Configs) != len(model.Configs) {
		t.Fatalf("loaded %d arms, want %d", len(got.Configs), len(model.Configs))
	}
	for i := range got.Configs {
		if !got.Configs[i].Equal(model.Configs[i]) {
			t.Fatalf("arm %d differs after round trip", i)
		}
	}
	// The loaded model makes identical choices.
	for _, ex := range ds.Examples {
		if model.Choose(ex.Feats) != got.Choose(ex.Feats) {
			t.Fatal("loaded model chooses differently")
		}
	}
	if _, err := Load([]byte("{nope")); err == nil {
		t.Fatal("Load accepted garbage")
	}
}
