// Package learning implements §7 of the paper: choosing a rule configuration
// for an unseen job with a supervised model, trained per rule-signature job
// group.
//
// For each job group the pipeline (internal/steering) is run on a handful of
// base jobs; the fastest discovered configurations become the group's K
// candidate arms (the default configuration is always arm 0). Jobs sampled
// from the group across days are executed under every arm to build the
// dataset; a one-hidden-layer network (internal/nn) learns to map job
// features (internal/feature) to normalized per-arm runtimes, and at
// inference the arm with the smallest prediction wins.
package learning

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/feature"
	"steerq/internal/nn"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// Example is one job with its per-arm features and measured runtimes.
type Example struct {
	Job   *workload.Job
	Feats feature.JobFeatures
	// Runtimes[k] is the measured runtime under arm k; negative means the
	// job did not compile under that arm.
	Runtimes []float64
}

// Dataset is the training corpus of one job group.
type Dataset struct {
	Signature bitvec.Vector
	// Configs are the K arms; Configs[0] is the default configuration.
	Configs  []bitvec.Vector
	Examples []Example
}

// CandidateArms runs the discovery pipeline on up to nBase jobs of a group
// and returns the group's arms: the default configuration plus the fastest
// discovered configurations of each base job (3 per base, deduplicated),
// capped at maxArms total (§7.1).
func CandidateArms(p *steering.Pipeline, group []*workload.Job, nBase, maxArms int) ([]bitvec.Vector, error) {
	h := p.Harness
	arms := []bitvec.Vector{h.Opt.Rules.DefaultConfig()}
	seen := map[bitvec.Key]bool{arms[0].Key(): true}
	for bi := 0; bi < nBase && bi < len(group); bi++ {
		a, err := p.Analyze(group[bi])
		if err != nil {
			return nil, fmt.Errorf("learning: base job %s: %w", group[bi].ID, err)
		}
		type scored struct {
			cfg bitvec.Vector
			rt  float64
		}
		var ok []scored
		for _, t := range a.Trials {
			if t.Err != nil {
				continue
			}
			ok = append(ok, scored{t.Config, t.Metrics.RuntimeSec})
		}
		sort.Slice(ok, func(i, j int) bool { return ok[i].rt < ok[j].rt })
		for i := 0; i < 3 && i < len(ok); i++ {
			k := ok[i].cfg.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			arms = append(arms, ok[i].cfg)
		}
	}
	if len(arms) > maxArms {
		arms = arms[:maxArms]
	}
	return arms, nil
}

// Collect executes every arm for every job and assembles the dataset.
func Collect(h *abtest.Harness, sig bitvec.Vector, jobs []*workload.Job, arms []bitvec.Vector) *Dataset {
	ds := &Dataset{Signature: sig, Configs: arms}
	for _, j := range jobs {
		ex := Example{Job: j, Runtimes: make([]float64, len(arms))}
		ex.Feats = feature.JobFeatures{
			InputsHash:   j.InputsHash,
			TemplateHash: j.TemplateHash,
			EstCosts:     make([]float64, len(arms)),
			Diffs:        make([]bitvec.Vector, len(arms)),
			Valid:        make([]bool, len(arms)),
		}
		for _, in := range j.Root.Inputs() {
			if st := h.Cat.Stream(in); st != nil {
				ex.Feats.InputBytes += st.BaseRows * st.BytesPerRow
			}
		}
		var defaultSig bitvec.Vector
		for k, cfg := range arms {
			t := h.RunConfig(j.Root, cfg, j.Day, fmt.Sprintf("%s/arm%d", j.ID, k))
			if t.Err != nil {
				ex.Runtimes[k] = -1
				continue
			}
			if k == 0 {
				defaultSig = t.Signature
				// Query-graph features come from the default plan.
				res, err := h.Opt.Optimize(j.Root, cfg)
				if err == nil {
					ex.Feats.OpStats = feature.PlanOpStats(res.Plan)
				}
			}
			ex.Feats.Valid[k] = true
			ex.Feats.EstCosts[k] = t.EstCost
			ex.Feats.Diffs[k] = steering.DiffVector(defaultSig, t.Signature)
			ex.Runtimes[k] = t.Metrics.RuntimeSec
		}
		if ex.Runtimes[0] < 0 {
			continue // job group membership requires a default plan
		}
		ds.Examples = append(ds.Examples, ex)
	}
	return ds
}

// Split partitions example indices into train/validation/test with the
// paper's 40/20/40 proportions (§7.4), deterministically in r.
type Split struct {
	Train, Val, Test []int
}

// NewSplit shuffles and splits the dataset.
func NewSplit(n int, r *xrand.Source) Split {
	p := r.Perm(n)
	nVal := n / 5
	nTrain := 2 * n / 5
	return Split{
		Val:   p[:nVal],
		Train: p[nVal : nVal+nTrain],
		Test:  p[nVal+nTrain:],
	}
}

// Model chooses arms for unseen jobs of one group.
type Model struct {
	Enc     *feature.Encoder
	Net     *nn.Network
	Configs []bitvec.Vector
}

// TrainOptions parameterize Train.
type TrainOptions struct {
	// Hidden is the hidden-layer width. The paper uses 1024; the simulator
	// defaults to 64, which trains in milliseconds at this feature width.
	Hidden int
	NN     nn.TrainConfig
}

// DefaultTrainOptions returns the simulator-scale defaults.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Hidden: 64, NN: nn.DefaultTrainConfig()}
}

// Train fits a model on the dataset's train split. The validation split
// selects between candidate epoch budgets (light hyperparameter tuning, as
// §7.4 describes).
func Train(ds *Dataset, split Split, opts TrainOptions, r *xrand.Source) *Model {
	k := len(ds.Configs)
	trainFeats := make([]feature.JobFeatures, 0, len(split.Train))
	for _, i := range split.Train {
		trainFeats = append(trainFeats, ds.Examples[i].Feats)
	}
	enc := feature.Fit(trainFeats, k)

	mkSamples := func(idx []int) []nn.Sample {
		out := make([]nn.Sample, 0, len(idx))
		for _, i := range idx {
			ex := ds.Examples[i]
			y, mask := normalizeTargets(ex.Runtimes)
			out = append(out, nn.Sample{X: enc.Encode(ex.Feats), Y: y, Mask: mask})
		}
		return out
	}
	trainSamples := mkSamples(split.Train)
	valSamples := mkSamples(split.Val)

	var best *nn.Network
	bestLoss := math.Inf(1)
	for _, epochs := range []int{opts.NN.Epochs / 2, opts.NN.Epochs} {
		cfg := opts.NN
		cfg.Epochs = epochs
		net := nn.New(enc.Width(), opts.Hidden, k, r.Derive("init", fmt.Sprint(epochs)))
		net.Train(trainSamples, cfg, r.Derive("train", fmt.Sprint(epochs)))
		loss := net.BCELoss(valSamples)
		if len(valSamples) == 0 {
			loss = net.BCELoss(trainSamples)
		}
		if loss < bestLoss {
			bestLoss = loss
			best = net
		}
	}
	return &Model{Enc: enc, Net: best, Configs: ds.Configs}
}

// normalizeTargets min-max normalizes one example's runtimes to [0, 1] over
// the valid arms (the fastest arm gets 0): the model only needs the ranking,
// which is why BCE on normalized runtimes beats MSE here (§7.3).
func normalizeTargets(runtimes []float64) (y []float64, mask []bool) {
	y = make([]float64, len(runtimes))
	mask = make([]bool, len(runtimes))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, rt := range runtimes {
		if rt < 0 {
			continue
		}
		lo = math.Min(lo, rt)
		hi = math.Max(hi, rt)
	}
	for k, rt := range runtimes {
		if rt < 0 {
			continue
		}
		mask[k] = true
		if hi > lo {
			y[k] = (rt - lo) / (hi - lo)
		}
	}
	return y, mask
}

// Choose returns the arm index the model picks for an unseen job (the
// smallest predicted normalized runtime over valid arms).
func (m *Model) Choose(f feature.JobFeatures) int {
	out := m.Net.Forward(m.Enc.Encode(f))
	best, bestV := 0, math.Inf(1)
	for k, v := range out {
		if f.Valid != nil && k < len(f.Valid) && !f.Valid[k] {
			continue
		}
		if v < bestV {
			best, bestV = k, v
		}
	}
	return best
}

// Evaluation summarizes model quality on a split (Table 5): mean, 90th and
// 99th percentile runtimes when always using the default arm, the learned
// choice, and the best (oracle) arm.
type Evaluation struct {
	PerJob []JobOutcome
}

// JobOutcome is one test job's runtimes under the three policies.
type JobOutcome struct {
	Job     *workload.Job
	Default float64
	Learned float64
	Best    float64
	// Arm is the learned model's chosen arm.
	Arm int
}

// Evaluate applies the model to the given example indices.
func Evaluate(m *Model, ds *Dataset, idx []int) Evaluation {
	var ev Evaluation
	for _, i := range idx {
		ex := ds.Examples[i]
		arm := m.Choose(ex.Feats)
		best := math.Inf(1)
		for _, rt := range ex.Runtimes {
			if rt >= 0 && rt < best {
				best = rt
			}
		}
		learned := ex.Runtimes[arm]
		if learned < 0 {
			learned = ex.Runtimes[0]
		}
		ev.PerJob = append(ev.PerJob, JobOutcome{
			Job:     ex.Job,
			Default: ex.Runtimes[0],
			Learned: learned,
			Best:    best,
			Arm:     arm,
		})
	}
	return ev
}

// Summary holds mean/90P/99P for one policy.
type Summary struct {
	Mean, P90, P99 float64
}

// Summarize computes the Table 5 row statistics for a metric extractor.
func (ev Evaluation) Summarize(get func(JobOutcome) float64) Summary {
	vals := make([]float64, 0, len(ev.PerJob))
	for _, o := range ev.PerJob {
		vals = append(vals, get(o))
	}
	sort.Float64s(vals)
	var s Summary
	if len(vals) == 0 {
		return s
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	s.Mean = total / float64(len(vals))
	s.P90 = vals[int(0.9*float64(len(vals)-1))]
	s.P99 = vals[int(0.99*float64(len(vals)-1))]
	return s
}

// SavedModel is the serialized form of a trained per-group model: the
// network, the encoder state and the arm configurations, so an online
// compiler front end can load and apply it without retraining (the paper's
// models are trained offline and used "in an online scenario", §4).
type SavedModel struct {
	Net     json.RawMessage  `json:"net"`
	Enc     *feature.Encoder `json:"encoder"`
	Configs []string         `json:"configs"` // hex-encoded arms
}

// Save serializes the model to JSON.
func (m *Model) Save() ([]byte, error) {
	netData, err := m.Net.Marshal()
	if err != nil {
		return nil, err
	}
	sm := SavedModel{Net: netData, Enc: m.Enc}
	for _, c := range m.Configs {
		sm.Configs = append(sm.Configs, c.Hex())
	}
	return json.Marshal(sm)
}

// Load restores a model serialized with Save.
func Load(data []byte) (*Model, error) {
	var sm SavedModel
	if err := json.Unmarshal(data, &sm); err != nil {
		return nil, fmt.Errorf("learning: load model: %w", err)
	}
	net, err := nn.Unmarshal(sm.Net)
	if err != nil {
		return nil, err
	}
	m := &Model{Net: net, Enc: sm.Enc}
	for _, hx := range sm.Configs {
		v, err := bitvec.ParseHex(hx)
		if err != nil {
			return nil, fmt.Errorf("learning: load model: %w", err)
		}
		m.Configs = append(m.Configs, v)
	}
	return m, nil
}
