package scopeql

import "strconv"

// Parse lexes and parses a SCOPE-like script.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.script()
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) atSymbol(sym string) bool {
	t := p.cur()
	return t.Kind == TokSymbol && t.Text == sym
}

func (p *parser) expectKeyword(kw string) (Token, error) {
	if !p.atKeyword(kw) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %q", kw, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) expectSymbol(sym string) (Token, error) {
	if !p.atSymbol(sym) {
		return Token{}, errf(p.cur().Pos, "expected %q, found %q", sym, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, errf(p.cur().Pos, "expected identifier, found %q", p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) script() (*Script, error) {
	s := &Script{}
	for p.cur().Kind != TokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
	if len(s.Stmts) == 0 {
		return nil, errf(p.cur().Pos, "empty script")
	}
	return s, nil
}

func (p *parser) statement() (Stmt, error) {
	if p.atKeyword("OUTPUT") {
		pos := p.next().Pos
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		if p.cur().Kind != TokString {
			return nil, errf(p.cur().Pos, "expected output path string, found %q", p.cur().Text)
		}
		path := p.next().Text
		if _, err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return &OutputStmt{Name: name.Text, Path: path, Pos: pos}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	rel, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name.Text, Rel: rel, Pos: name.Pos}, nil
}

// relExpr parses a relational expression, handling UNION ALL at the top
// level.
func (p *parser) relExpr() (RelExpr, error) {
	first, err := p.relTerm()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("UNION") {
		return first, nil
	}
	u := &UnionExpr{Terms: []RelExpr{first}, Pos: p.cur().Pos}
	for p.atKeyword("UNION") {
		p.next()
		if _, err := p.expectKeyword("ALL"); err != nil {
			return nil, err
		}
		t, err := p.relTerm()
		if err != nil {
			return nil, err
		}
		u.Terms = append(u.Terms, t)
	}
	return u, nil
}

func (p *parser) relTerm() (RelExpr, error) {
	t := p.cur()
	switch {
	case p.atSymbol("("):
		p.next()
		inner, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.atKeyword("SELECT"):
		return p.selectExpr()
	case p.atKeyword("EXTRACT"):
		return p.extractExpr()
	case p.atKeyword("PROCESS"):
		return p.processExpr()
	case p.atKeyword("REDUCE"):
		return p.reduceExpr()
	case t.Kind == TokIdent:
		p.next()
		return &VarRef{Name: t.Text, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected relational expression, found %q", t.Text)
}

func (p *parser) extractExpr() (RelExpr, error) {
	pos := p.next().Pos // EXTRACT
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c.Text)
		if !p.atSymbol(",") {
			break
		}
		p.next()
	}
	if _, err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokString {
		return nil, errf(p.cur().Pos, "expected stream path string, found %q", p.cur().Text)
	}
	stream := p.next().Text
	return &ExtractExpr{Columns: cols, Stream: stream, Pos: pos}, nil
}

func (p *parser) processExpr() (RelExpr, error) {
	pos := p.next().Pos // PROCESS
	src, err := p.relSource()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	udo, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ProcessExpr{Source: src, UDO: udo.Text, Pos: pos}, nil
}

func (p *parser) reduceExpr() (RelExpr, error) {
	pos := p.next().Pos // REDUCE
	src, err := p.relSource()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	var keys []ColName
	for {
		c, err := p.colName()
		if err != nil {
			return nil, err
		}
		keys = append(keys, c)
		if !p.atSymbol(",") {
			break
		}
		p.next()
	}
	if _, err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	udo, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ReduceExpr{Source: src, Keys: keys, UDO: udo.Text, Pos: pos}, nil
}

// relSource parses the source of PROCESS/REDUCE: a variable or a
// parenthesized relational expression.
func (p *parser) relSource() (RelExpr, error) {
	if p.atSymbol("(") {
		p.next()
		inner, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &VarRef{Name: id.Text, Pos: id.Pos}, nil
}

func (p *parser) selectExpr() (RelExpr, error) {
	pos := p.next().Pos // SELECT
	sel := &SelectExpr{Pos: pos}
	if p.atKeyword("TOP") {
		p.next()
		if p.cur().Kind != TokNumber {
			return nil, errf(p.cur().Pos, "expected number after TOP, found %q", p.cur().Text)
		}
		n, err := strconv.Atoi(p.next().Text)
		if err != nil || n <= 0 {
			return nil, errf(pos, "invalid TOP count")
		}
		sel.Top = n
	}
	if p.atSymbol("*") {
		p.next()
		sel.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.atSymbol(",") {
				break
			}
			p.next()
		}
	}
	if _, err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for p.atKeyword("INNER") || p.atKeyword("JOIN") {
		jpos := p.cur().Pos
		if p.atKeyword("INNER") {
			p.next()
		}
		if _, err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Right: right, On: on, Pos: jpos})
	}
	if p.atKeyword("WHERE") {
		p.next()
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.atKeyword("GROUP") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.atSymbol(",") {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("HAVING") {
		p.next()
		h, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.atKeyword("ORDER") {
		p.next()
		if _, err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colName()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: c}
			if p.atKeyword("DESC") {
				p.next()
				key.Desc = true
			} else if p.atKeyword("ASC") {
				p.next()
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.atSymbol(",") {
				break
			}
			p.next()
		}
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	e, err := p.addExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("AS") {
		p.next()
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.Text
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t := p.cur()
	var ref TableRef
	ref.Pos = t.Pos
	switch {
	case t.Kind == TokString:
		p.next()
		ref.Stream = t.Text
	case t.Kind == TokIdent:
		p.next()
		ref.Var = t.Text
	case p.atSymbol("("):
		p.next()
		inner, err := p.relExpr()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expectSymbol(")"); err != nil {
			return TableRef{}, err
		}
		ref.Sub = inner
	default:
		return TableRef{}, errf(t.Pos, "expected table reference, found %q", t.Text)
	}
	if p.atKeyword("AS") {
		p.next()
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	}
	return ref, nil
}

// Scalar expression grammar, lowest to highest precedence:
// orExpr := andExpr (OR andExpr)*
// andExpr := cmpExpr (AND cmpExpr)*
// cmpExpr := addExpr (cmpOp addExpr)?
// addExpr := mulExpr (("+"|"-") mulExpr)*
// mulExpr := unary (("*"|"/") unary)*
// unary := number | string | colName | call | "(" orExpr ")"

func (p *parser) orExpr() (ScalarExpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		pos := p.next().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) andExpr() (ScalarExpr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		pos := p.next().Pos
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r, Pos: pos}
	}
	return l, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) cmpExpr() (ScalarExpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokSymbol && cmpOps[t.Text] {
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.Text, L: l, R: r, Pos: t.Pos}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (ScalarExpr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		t := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.Text, L: l, R: r, Pos: t.Pos}
	}
	return l, nil
}

func (p *parser) mulExpr() (ScalarExpr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("*") || p.atSymbol("/") {
		t := p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.Text, L: l, R: r, Pos: t.Pos}
	}
	return l, nil
}

func (p *parser) unary() (ScalarExpr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid number %q", t.Text)
		}
		return NumLit{Value: v, Pos: t.Pos}, nil
	case t.Kind == TokString:
		p.next()
		return StrLit{Value: t.Text, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && aggregates[t.Text]:
		p.next()
		if _, err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		call := &CallExpr{Fn: t.Text, Pos: t.Pos}
		if p.atSymbol("*") {
			p.next()
			call.Star = true
		} else {
			arg, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
		}
		if _, err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokIdent:
		return p.colNameExpr()
	case p.atSymbol("("):
		p.next()
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, errf(t.Pos, "expected expression, found %q", t.Text)
}

func (p *parser) colName() (ColName, error) {
	id, err := p.expectIdent()
	if err != nil {
		return ColName{}, err
	}
	c := ColName{Name: id.Text, Pos: id.Pos}
	if p.atSymbol(".") {
		p.next()
		id2, err := p.expectIdent()
		if err != nil {
			return ColName{}, err
		}
		c.Qualifier = c.Name
		c.Name = id2.Text
	}
	return c, nil
}

func (p *parser) colNameExpr() (ScalarExpr, error) {
	c, err := p.colName()
	return c, err
}
