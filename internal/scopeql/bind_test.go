package scopeql

import (
	"strings"
	"testing"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

func bindCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "lake/orders",
		Columns: []catalog.Column{
			{Name: "user_id", Distinct: 1000, TrueDistinct: 1000, Max: 1000},
			{Name: "amount", Distinct: 500, TrueDistinct: 500, Max: 100},
			{Name: "region", Distinct: 10, TrueDistinct: 10, Max: 10},
		},
		BaseRows: 1e6, BytesPerRow: 50, GrowthPerDay: 1,
	})
	cat.AddStream(&catalog.Stream{
		Name: "lake/users",
		Columns: []catalog.Column{
			{Name: "user_id", Distinct: 1000, TrueDistinct: 1000, Max: 1000},
			{Name: "segment", Distinct: 5, TrueDistinct: 5, Max: 5},
		},
		BaseRows: 1000, BytesPerRow: 30, GrowthPerDay: 1,
	})
	cat.AddUDO(&catalog.UDO{Name: "Cook", EstFactor: 1, TrueFactor: 2, CPUPerRow: 1})
	return cat
}

func mustBind(t *testing.T, src string) *plan.Node {
	t.Helper()
	root, err := Compile(src, bindCatalog())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return root
}

func TestBindSimpleSelect(t *testing.T) {
	root := mustBind(t, `
x = SELECT user_id, amount FROM "lake/orders" WHERE amount > 10;
OUTPUT x TO "o";`)
	if root.Op != plan.OpOutput {
		t.Fatalf("root is %v, want Output", root.Op)
	}
	var ops []plan.Op
	root.Walk(func(n *plan.Node) { ops = append(ops, n.Op) })
	want := []plan.Op{plan.OpOutput, plan.OpProject, plan.OpSelect, plan.OpGet}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestBindColumnLineage(t *testing.T) {
	root := mustBind(t, `
x = SELECT user_id FROM "lake/orders";
OUTPUT x TO "o";`)
	col := root.Schema[0]
	if col.Source != "lake/orders.user_id" {
		t.Fatalf("lineage %q", col.Source)
	}
}

func TestBindJoinQualified(t *testing.T) {
	root := mustBind(t, `
o = SELECT user_id, amount FROM "lake/orders";
j = SELECT o.user_id AS uid, u.segment AS seg FROM o INNER JOIN "lake/users" AS u ON o.user_id == u.user_id;
OUTPUT j TO "out";`)
	var join *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpJoin {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join node")
	}
	a, b, ok := join.Pred.EquiJoinSides()
	if !ok {
		t.Fatalf("join predicate %v is not an equi join", join.Pred)
	}
	if a.ID == b.ID {
		t.Fatal("join sides resolved to the same column")
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	_, err := Compile(`
o = SELECT user_id FROM "lake/orders";
j = SELECT user_id FROM o INNER JOIN "lake/users" AS u ON o.user_id == u.user_id;
OUTPUT j TO "out";`, bindCatalog())
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestBindSelfJoinClonesColumns(t *testing.T) {
	root := mustBind(t, `
o = SELECT user_id, amount FROM "lake/orders";
j = SELECT a.user_id AS uid, b.amount AS amt FROM o AS a INNER JOIN o AS b ON a.user_id == b.user_id;
OUTPUT j TO "out";`)
	var join *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpJoin {
			join = n
		}
	})
	seen := make(map[plan.ColumnID]int)
	for _, c := range join.Schema {
		seen[c.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("column %d appears %d times in self-join schema", id, n)
		}
	}
}

func TestBindMultiOutputSharesDAG(t *testing.T) {
	root := mustBind(t, `
f = SELECT user_id, amount FROM "lake/orders" WHERE amount > 5;
a = SELECT user_id, SUM(amount) AS total FROM f GROUP BY user_id;
OUTPUT f TO "raw";
OUTPUT a TO "agg";`)
	if root.Op != plan.OpMulti {
		t.Fatalf("root %v, want Multi", root.Op)
	}
	// The filtered node must appear exactly once in the DAG (shared).
	selects := 0
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpSelect {
			selects++
		}
	})
	if selects != 1 {
		t.Fatalf("filter duplicated: %d Select nodes", selects)
	}
}

func TestBindGroupByValidation(t *testing.T) {
	_, err := Compile(`
x = SELECT region, amount FROM "lake/orders" GROUP BY region;
OUTPUT x TO "o";`, bindCatalog())
	if err == nil || !strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("want group-by validation error, got %v", err)
	}
}

func TestBindGroupByHaving(t *testing.T) {
	root := mustBind(t, `
x = SELECT region, COUNT(*) AS cnt FROM "lake/orders" GROUP BY region HAVING cnt > 5;
OUTPUT x TO "o";`)
	var haveSelect, haveGroup bool
	root.Walk(func(n *plan.Node) {
		switch n.Op {
		case plan.OpSelect:
			haveSelect = true
		case plan.OpGroupBy:
			haveGroup = true
		}
	})
	if !haveSelect || !haveGroup {
		t.Fatal("HAVING did not produce Select above GroupBy")
	}
}

func TestBindErrors(t *testing.T) {
	cases := map[string]string{
		"unknown stream":    `x = SELECT a FROM "nope"; OUTPUT x TO "o";`,
		"unknown column":    `x = SELECT nope FROM "lake/orders"; OUTPUT x TO "o";`,
		"unbound var":       `x = SELECT user_id FROM missing; OUTPUT x TO "o";`,
		"unbound output":    `OUTPUT missing TO "o";`,
		"reassignment":      `x = SELECT user_id FROM "lake/orders"; x = SELECT user_id FROM "lake/orders"; OUTPUT x TO "o";`,
		"no output":         `x = SELECT user_id FROM "lake/orders";`,
		"union arity":       `a = SELECT user_id FROM "lake/orders"; b = SELECT user_id, amount FROM "lake/orders"; u = a UNION ALL b; OUTPUT u TO "o";`,
		"unknown UDO":       `x = PROCESS ("lake/orders" is wrong anyway) USING Nope; OUTPUT x TO "o";`,
		"order without top": `x = SELECT user_id FROM "lake/orders" ORDER BY user_id; OUTPUT x TO "o";`,
		"star with group":   `x = SELECT * FROM "lake/orders" GROUP BY region; OUTPUT x TO "o";`,
		"agg outside group": `x = SELECT user_id, amount FROM "lake/orders" WHERE SUM(amount) > 5; OUTPUT x TO "o";`,
	}
	cat := bindCatalog()
	for name, src := range cases {
		if _, err := Compile(src, cat); err == nil {
			t.Errorf("%s: Compile succeeded, want error", name)
		}
	}
}

func TestBindExtract(t *testing.T) {
	root := mustBind(t, `
e = EXTRACT user_id, region FROM "lake/orders";
OUTPUT e TO "o";`)
	var get *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpGet {
			get = n
		}
	})
	if get == nil || len(get.Schema) != 2 {
		t.Fatalf("extract schema wrong: %v", get)
	}
}

func TestBindProcessReduce(t *testing.T) {
	root := mustBind(t, `
f = SELECT user_id, amount FROM "lake/orders";
p = PROCESS f USING Cook;
rj = REDUCE p ON user_id USING Cook;
OUTPUT rj TO "o";`)
	var haveProcess, haveReduce bool
	root.Walk(func(n *plan.Node) {
		switch n.Op {
		case plan.OpProcess:
			haveProcess = true
		case plan.OpReduce:
			haveReduce = true
			if len(n.ReduceKeys) != 1 || n.ReduceKeys[0].Name != "user_id" {
				t.Errorf("reduce keys %v", n.ReduceKeys)
			}
		}
	})
	if !haveProcess || !haveReduce {
		t.Fatal("PROCESS/REDUCE not bound")
	}
}

func TestBindTopWithoutOrderBy(t *testing.T) {
	root := mustBind(t, `
x = SELECT TOP 5 user_id FROM "lake/orders";
OUTPUT x TO "o";`)
	var top *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.OpTop {
			top = n
		}
	})
	if top == nil || top.TopN != 5 || len(top.SortKeys) == 0 {
		t.Fatalf("TOP without ORDER BY bound wrong: %+v", top)
	}
}
