package scopeql

import (
	"strconv"
	"strings"
)

// Print renders a parsed script back to canonical source text. The output
// always reparses, and reparsing yields a structurally identical script
// (positions aside): Parse∘Print is the identity on ASTs, which makes
// Print∘Parse idempotent on source text. Canonical choices: keywords
// upper-cased, one statement per line, explicit INNER JOIN, minimal
// parentheses (inserted only where precedence or the grammar demands them),
// DESC spelled out and ASC left implicit.
func Print(s *Script) string {
	var b strings.Builder
	for _, st := range s.Stmts {
		printStmt(&b, st)
		b.WriteString(";\n")
	}
	return b.String()
}

func printStmt(b *strings.Builder, st Stmt) {
	switch st := st.(type) {
	case *AssignStmt:
		b.WriteString(st.Name)
		b.WriteString(" = ")
		printRel(b, st.Rel)
	case *OutputStmt:
		b.WriteString("OUTPUT ")
		b.WriteString(st.Name)
		b.WriteString(" TO ")
		printString(b, st.Path)
	}
}

func printRel(b *strings.Builder, r RelExpr) {
	switch r := r.(type) {
	case *VarRef:
		b.WriteString(r.Name)
	case *ExtractExpr:
		b.WriteString("EXTRACT ")
		for i, c := range r.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c)
		}
		b.WriteString(" FROM ")
		printString(b, r.Stream)
	case *SelectExpr:
		printSelect(b, r)
	case *UnionExpr:
		for i, t := range r.Terms {
			if i > 0 {
				b.WriteString(" UNION ALL ")
			}
			// A nested union must be parenthesized or the flat UNION ALL
			// loop would absorb its terms into this level.
			if _, nested := t.(*UnionExpr); nested {
				b.WriteString("(")
				printRel(b, t)
				b.WriteString(")")
			} else {
				printRel(b, t)
			}
		}
	case *ProcessExpr:
		b.WriteString("PROCESS ")
		printRelSource(b, r.Source)
		b.WriteString(" USING ")
		b.WriteString(r.UDO)
	case *ReduceExpr:
		b.WriteString("REDUCE ")
		printRelSource(b, r.Source)
		b.WriteString(" ON ")
		printCols(b, r.Keys)
		b.WriteString(" USING ")
		b.WriteString(r.UDO)
	}
}

// printRelSource renders the source of PROCESS/REDUCE, which the grammar
// restricts to a bare variable or a parenthesized expression.
func printRelSource(b *strings.Builder, r RelExpr) {
	if v, ok := r.(*VarRef); ok {
		b.WriteString(v.Name)
		return
	}
	b.WriteString("(")
	printRel(b, r)
	b.WriteString(")")
}

func printSelect(b *strings.Builder, s *SelectExpr) {
	b.WriteString("SELECT ")
	if s.Top > 0 {
		b.WriteString("TOP ")
		b.WriteString(strconv.Itoa(s.Top))
		b.WriteString(" ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, item := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			// Select items parse at additive precedence; anything looser
			// needs explicit parentheses.
			printScalar(b, item.Expr, precAdd)
			if item.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(item.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	printTableRef(b, s.From)
	for _, j := range s.Joins {
		b.WriteString(" INNER JOIN ")
		printTableRef(b, j.Right)
		b.WriteString(" ON ")
		printScalar(b, j.On, precOr)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printScalar(b, s.Where, precOr)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		printCols(b, s.GroupBy)
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printScalar(b, s.Having, precOr)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Col.String())
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
}

func printTableRef(b *strings.Builder, r TableRef) {
	switch {
	case r.Sub != nil:
		b.WriteString("(")
		printRel(b, r.Sub)
		b.WriteString(")")
	case r.Var != "":
		b.WriteString(r.Var)
	default:
		// The empty string is a lexable stream path, so Stream == "" does
		// not mean "absent" here.
		printString(b, r.Stream)
	}
	if r.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(r.Alias)
	}
}

func printCols(b *strings.Builder, cols []ColName) {
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
}

// Scalar precedence levels, mirroring the parser's grammar ladder
// (orExpr < andExpr < cmpExpr < addExpr < mulExpr < unary).
const (
	precOr   = 1
	precAnd  = 2
	precCmp  = 3
	precAdd  = 4
	precMul  = 5
	precAtom = 6
)

func scalarPrec(e ScalarExpr) int {
	be, ok := e.(*BinExpr)
	if !ok {
		return precAtom
	}
	switch be.Op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "+", "-":
		return precAdd
	case "*", "/":
		return precMul
	default:
		return precCmp
	}
}

// printScalar renders e, parenthesizing it when its precedence is below what
// the surrounding grammar position requires.
func printScalar(b *strings.Builder, e ScalarExpr, min int) {
	if scalarPrec(e) < min {
		b.WriteString("(")
		printScalar(b, e, precOr)
		b.WriteString(")")
		return
	}
	switch e := e.(type) {
	case ColName:
		b.WriteString(e.String())
	case NumLit:
		// 'f' with minimal digits stays inside the lexer's number syntax
		// (no exponent) and reparses to the identical float64.
		b.WriteString(strconv.FormatFloat(e.Value, 'f', -1, 64))
	case StrLit:
		printString(b, e.Value)
	case *CallExpr:
		b.WriteString(e.Fn)
		b.WriteString("(")
		if e.Star {
			b.WriteString("*")
		} else {
			for i, a := range e.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				// Call arguments parse at additive precedence.
				printScalar(b, a, precAdd)
			}
		}
		b.WriteString(")")
	case *BinExpr:
		p := scalarPrec(e)
		// Left-associative operators reparse correctly with the left child
		// at the operator's own level and the right child one tighter. The
		// single non-associative comparison needs both sides at additive
		// precedence or "a == b == c" would not parse at all.
		lmin, rmin := p, p+1
		if p == precCmp {
			lmin = precAdd
			rmin = precAdd
		}
		printScalar(b, e.L, lmin)
		b.WriteString(" ")
		b.WriteString(e.Op)
		b.WriteString(" ")
		printScalar(b, e.R, rmin)
	}
}

// printString renders a string literal. The lexer admits no escapes, so the
// only unprintable contents are a double quote or a newline — which no parsed
// string can contain. Print substitutes a placeholder rather than emit source
// that cannot lex.
func printString(b *strings.Builder, s string) {
	if strings.ContainsAny(s, "\"\n") {
		s = strings.NewReplacer("\"", "'", "\n", " ").Replace(s)
	}
	b.WriteString("\"")
	b.WriteString(s)
	b.WriteString("\"")
}
