// Package scopeql implements the front end for a SCOPE-like scripting
// language: a lexer, a recursive-descent parser, and a binder that resolves
// scripts against a catalog into logical plan DAGs (internal/plan).
//
// SCOPE scripts are data flows of multiple SQL-like statements mixing
// relational operators with user-defined PROCESS and REDUCE operators (§3.1).
// A script ("job") looks like:
//
//	filtered = SELECT user_id, region, amount
//	           FROM "shop/orders"
//	           WHERE amount > 100 AND region == "EU";
//	joined   = SELECT f.user_id, u.segment, f.amount
//	           FROM filtered AS f
//	           INNER JOIN "shop/users" AS u ON f.user_id == u.user_id;
//	agg      = SELECT segment, SUM(amount) AS total
//	           FROM joined GROUP BY segment;
//	cooked   = PROCESS agg USING SegmentScorer;
//	OUTPUT cooked TO "out/segment_totals";
package scopeql

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol
)

var tokNames = [...]string{"EOF", "identifier", "number", "string", "keyword", "symbol"}

func (k TokenKind) String() string { return tokNames[k] }

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keyword text is upper-cased; others verbatim
	Pos  Pos
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// keywords of the dialect. The lexer upper-cases candidate identifiers and
// checks membership, so keywords are case-insensitive as in SCOPE.
var keywords = map[string]bool{
	"SELECT": true, "TOP": true, "FROM": true, "AS": true,
	"INNER": true, "JOIN": true, "ON": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"UNION": true, "ALL": true, "EXTRACT": true, "OUTPUT": true,
	"TO": true, "PROCESS": true, "REDUCE": true, "USING": true,
	"DESC": true, "ASC": true, "AND": true, "OR": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// aggregates are the keyword-functions treated as aggregate calls.
var aggregates = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("scopeql: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
