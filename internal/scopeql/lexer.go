package scopeql

import (
	"strings"
	"unicode"
)

// Lex splits src into tokens. It returns a front-end error with position on
// malformed input (unterminated string, stray character).
func Lex(src string) ([]Token, error) {
	var (
		toks []Token
		line = 1
		col  = 1
	)
	runes := []rune(src)
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if runes[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			advance(1)
		case r == '-' && i+1 < len(runes) && runes[i+1] == '-':
			// line comment
			for i < len(runes) && runes[i] != '\n' {
				advance(1)
			}
		case r == '/' && i+1 < len(runes) && runes[i+1] == '/':
			for i < len(runes) && runes[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(r) || r == '_':
			start := i
			pos := Pos{line, col}
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				advance(1)
			}
			word := string(runes[start:i])
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: pos})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: pos})
			}
		case unicode.IsDigit(r):
			start := i
			pos := Pos{line, col}
			seenDot := false
			for i < len(runes) && (unicode.IsDigit(runes[i]) || (!seenDot && runes[i] == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1]))) {
				if runes[i] == '.' {
					seenDot = true
				}
				advance(1)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: string(runes[start:i]), Pos: pos})
		case r == '"':
			pos := Pos{line, col}
			advance(1)
			start := i
			for i < len(runes) && runes[i] != '"' {
				if runes[i] == '\n' {
					return nil, errf(pos, "unterminated string literal")
				}
				advance(1)
			}
			if i >= len(runes) {
				return nil, errf(pos, "unterminated string literal")
			}
			text := string(runes[start:i])
			advance(1) // closing quote
			toks = append(toks, Token{Kind: TokString, Text: text, Pos: pos})
		default:
			pos := Pos{line, col}
			two := ""
			if i+1 < len(runes) {
				two = string(runes[i : i+2])
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: pos})
				advance(2)
				continue
			}
			switch r {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';', '.':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(r), Pos: pos})
				advance(1)
			default:
				return nil, errf(pos, "unexpected character %q", string(r))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: Pos{line, col}})
	return toks, nil
}
