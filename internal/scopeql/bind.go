package scopeql

import (
	"fmt"

	"steerq/internal/catalog"
	"steerq/internal/plan"
)

// Bind resolves a parsed script against a catalog and returns the logical
// plan DAG of the job. Jobs with multiple OUTPUT statements get an OpMulti
// virtual root; jobs with a single output return the Output node itself.
func Bind(s *Script, cat *catalog.Catalog) (*plan.Node, error) {
	b := &binder{cat: cat, vars: make(map[string]*boundVar)}
	return b.bindScript(s)
}

// Compile is the convenience path: parse then bind.
func Compile(src string, cat *catalog.Catalog) (*plan.Node, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Bind(script, cat)
}

type boundVar struct {
	node *plan.Node
	uses int
}

type binder struct {
	cat    *catalog.Catalog
	vars   map[string]*boundVar
	nextID plan.ColumnID
}

func (b *binder) newID() plan.ColumnID {
	b.nextID++
	return b.nextID
}

func (b *binder) bindScript(s *Script) (*plan.Node, error) {
	var outputs []*plan.Node
	for _, st := range s.Stmts {
		switch st := st.(type) {
		case *AssignStmt:
			if _, dup := b.vars[st.Name]; dup {
				return nil, errf(st.Pos, "variable %q reassigned", st.Name)
			}
			n, err := b.bindRel(st.Rel)
			if err != nil {
				return nil, err
			}
			b.vars[st.Name] = &boundVar{node: n}
		case *OutputStmt:
			v, ok := b.vars[st.Name]
			if !ok {
				return nil, errf(st.Pos, "output of unbound variable %q", st.Name)
			}
			// Outputs share the bound node directly: two outputs of one
			// intermediate form a DAG, and their schemas never merge.
			outputs = append(outputs, plan.NewOutput(v.node, st.Path))
		}
	}
	if len(outputs) == 0 {
		return nil, errf(Pos{1, 1}, "script has no OUTPUT statement")
	}
	if len(outputs) == 1 {
		return outputs[0], nil
	}
	return plan.NewMulti(outputs...), nil
}

// useVar returns the node bound to a variable. The first relational use
// shares the node (preserving the job's DAG shape); later uses are cloned
// with fresh column IDs so self-joins and self-unions keep distinct column
// identities.
func (b *binder) useVar(name string, pos Pos) (*plan.Node, error) {
	v, ok := b.vars[name]
	if !ok {
		return nil, errf(pos, "reference to unbound variable %q", name)
	}
	v.uses++
	if v.uses == 1 {
		return v.node, nil
	}
	return plan.CloneWithFreshIDs(v.node, b.newID), nil
}

func (b *binder) bindRel(r RelExpr) (*plan.Node, error) {
	switch r := r.(type) {
	case *VarRef:
		return b.useVar(r.Name, r.Pos)
	case *ExtractExpr:
		return b.bindExtract(r)
	case *SelectExpr:
		return b.bindSelect(r)
	case *UnionExpr:
		return b.bindUnion(r)
	case *ProcessExpr:
		return b.bindProcess(r)
	case *ReduceExpr:
		return b.bindReduce(r)
	}
	return nil, fmt.Errorf("scopeql: unknown relational expression %T", r)
}

func (b *binder) bindExtract(e *ExtractExpr) (*plan.Node, error) {
	st := b.cat.Stream(e.Stream)
	if st == nil {
		return nil, errf(e.Pos, "unknown input stream %q", e.Stream)
	}
	schema := make([]plan.Column, 0, len(e.Columns))
	for _, name := range e.Columns {
		col := st.Column(name)
		if col == nil {
			return nil, errf(e.Pos, "stream %q has no column %q", e.Stream, name)
		}
		schema = append(schema, plan.Column{
			ID:     b.newID(),
			Name:   name,
			Source: e.Stream + "." + name,
		})
	}
	return plan.NewGet(e.Stream, schema), nil
}

// bindStream binds a direct stream reference in FROM position, extracting
// all columns.
func (b *binder) bindStream(name string, pos Pos) (*plan.Node, error) {
	st := b.cat.Stream(name)
	if st == nil {
		return nil, errf(pos, "unknown input stream %q", name)
	}
	schema := make([]plan.Column, 0, len(st.Columns))
	for _, col := range st.Columns {
		schema = append(schema, plan.Column{
			ID:     b.newID(),
			Name:   col.Name,
			Source: name + "." + col.Name,
		})
	}
	return plan.NewGet(name, schema), nil
}

func (b *binder) bindUnion(u *UnionExpr) (*plan.Node, error) {
	children := make([]*plan.Node, 0, len(u.Terms))
	for _, t := range u.Terms {
		n, err := b.bindRel(t)
		if err != nil {
			return nil, err
		}
		children = append(children, n)
	}
	arity := len(children[0].Schema)
	for i, c := range children[1:] {
		if len(c.Schema) != arity {
			return nil, errf(u.Pos, "UNION ALL branch %d has %d columns, want %d", i+2, len(c.Schema), arity)
		}
	}
	return plan.NewUnionAll(children...), nil
}

func (b *binder) bindProcess(e *ProcessExpr) (*plan.Node, error) {
	if b.cat.UDO(e.UDO) == nil {
		return nil, errf(e.Pos, "unknown processor %q", e.UDO)
	}
	child, err := b.bindRel(e.Source)
	if err != nil {
		return nil, err
	}
	return plan.NewProcess(child, e.UDO), nil
}

func (b *binder) bindReduce(e *ReduceExpr) (*plan.Node, error) {
	if b.cat.UDO(e.UDO) == nil {
		return nil, errf(e.Pos, "unknown reducer %q", e.UDO)
	}
	child, err := b.bindRel(e.Source)
	if err != nil {
		return nil, err
	}
	env := scope{{alias: "", node: child}}
	keys := make([]plan.Column, 0, len(e.Keys))
	for _, k := range e.Keys {
		col, err := env.resolve(k)
		if err != nil {
			return nil, err
		}
		keys = append(keys, col)
	}
	return plan.NewReduce(child, keys, e.UDO), nil
}

// scope is the name-resolution environment of one SELECT: the FROM and JOIN
// sources with their aliases.
type scope []scopeEntry

type scopeEntry struct {
	alias string
	node  *plan.Node
}

func (s scope) resolve(c ColName) (plan.Column, error) {
	var found []plan.Column
	for _, e := range s {
		if c.Qualifier != "" && c.Qualifier != e.alias {
			continue
		}
		for _, col := range e.node.Schema {
			if col.Name == c.Name {
				found = append(found, col)
			}
		}
	}
	switch len(found) {
	case 0:
		return plan.Column{}, errf(c.Pos, "unknown column %q", c.String())
	case 1:
		return found[0], nil
	}
	return plan.Column{}, errf(c.Pos, "ambiguous column %q (qualify it)", c.String())
}

func (b *binder) bindTableRef(r TableRef) (scopeEntry, error) {
	var (
		n   *plan.Node
		err error
	)
	switch {
	case r.Var != "":
		n, err = b.useVar(r.Var, r.Pos)
	case r.Stream != "":
		n, err = b.bindStream(r.Stream, r.Pos)
	default:
		n, err = b.bindRel(r.Sub)
	}
	if err != nil {
		return scopeEntry{}, err
	}
	alias := r.Alias
	if alias == "" {
		alias = r.Var // stream/sub sources without alias are unqualified
	}
	return scopeEntry{alias: alias, node: n}, nil
}

func (b *binder) bindSelect(sel *SelectExpr) (*plan.Node, error) {
	fromEntry, err := b.bindTableRef(sel.From)
	if err != nil {
		return nil, err
	}
	env := scope{fromEntry}
	cur := fromEntry.node

	// Joins: left-deep over the FROM chain. The optimizer's join-order
	// rules explore alternatives later.
	for _, j := range sel.Joins {
		rightEntry, err := b.bindTableRef(j.Right)
		if err != nil {
			return nil, err
		}
		env = append(env, rightEntry)
		on, err := b.bindScalar(j.On, env)
		if err != nil {
			return nil, err
		}
		cur = plan.NewJoin(cur, rightEntry.node, on)
	}

	if sel.Where != nil {
		pred, err := b.bindScalar(sel.Where, env)
		if err != nil {
			return nil, err
		}
		cur = plan.NewSelect(cur, pred)
	}

	grouped := len(sel.GroupBy) > 0 || hasAggregate(sel)
	if grouped {
		return b.bindGrouped(sel, cur, env)
	}

	if !sel.Star {
		projs := make([]plan.Projection, 0, len(sel.Items))
		for _, item := range sel.Items {
			p, err := b.bindProjection(item, env)
			if err != nil {
				return nil, err
			}
			projs = append(projs, p)
		}
		cur = plan.NewProject(cur, projs)
	}
	return b.applyTop(sel, cur)
}

func hasAggregate(sel *SelectExpr) bool {
	for _, item := range sel.Items {
		if _, ok := item.Expr.(*CallExpr); ok {
			return true
		}
	}
	return false
}

func (b *binder) bindGrouped(sel *SelectExpr, child *plan.Node, env scope) (*plan.Node, error) {
	if sel.Star {
		return nil, errf(sel.Pos, "SELECT * cannot be combined with GROUP BY or aggregates")
	}
	keys := make([]plan.Column, 0, len(sel.GroupBy))
	keySet := make(map[plan.ColumnID]bool)
	for _, k := range sel.GroupBy {
		col, err := env.resolve(k)
		if err != nil {
			return nil, err
		}
		keys = append(keys, col)
		keySet[col.ID] = true
	}

	var (
		aggs  []plan.Agg
		projs []plan.Projection
	)
	for _, item := range sel.Items {
		switch e := item.Expr.(type) {
		case *CallExpr:
			var arg *plan.Expr
			if !e.Star {
				a, err := b.bindScalar(e.Args[0], env)
				if err != nil {
					return nil, err
				}
				arg = a
			}
			name := item.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", e.Fn, len(aggs)+1)
			}
			out := plan.Column{ID: b.newID(), Name: name}
			aggs = append(aggs, plan.Agg{Fn: e.Fn, Arg: arg, Out: out})
			projs = append(projs, plan.Projection{Expr: plan.ColExpr(out), Out: out})
		case ColName:
			col, err := env.resolve(e)
			if err != nil {
				return nil, err
			}
			if !keySet[col.ID] {
				return nil, errf(e.Pos, "column %q must appear in GROUP BY or inside an aggregate", e.String())
			}
			out := col
			if item.Alias != "" {
				out.Name = item.Alias
			}
			projs = append(projs, plan.Projection{Expr: plan.ColExpr(col), Out: out})
		default:
			return nil, errf(sel.Pos, "grouped SELECT items must be group keys or aggregates")
		}
	}

	cur := plan.NewGroupBy(child, keys, aggs)

	if sel.Having != nil {
		henv := scope{{alias: "", node: cur}}
		pred, err := b.bindScalar(sel.Having, henv)
		if err != nil {
			return nil, err
		}
		cur = plan.NewSelect(cur, pred)
	}
	cur = plan.NewProject(cur, projs)
	return b.applyTop(sel, cur)
}

func (b *binder) applyTop(sel *SelectExpr, cur *plan.Node) (*plan.Node, error) {
	if len(sel.OrderBy) > 0 && sel.Top == 0 {
		return nil, errf(sel.Pos, "ORDER BY requires TOP in this dialect")
	}
	if sel.Top > 0 {
		env := scope{{alias: "", node: cur}}
		keys := make([]plan.SortKey, 0, len(sel.OrderBy))
		for _, ok := range sel.OrderBy {
			col, err := env.resolve(ok.Col)
			if err != nil {
				return nil, err
			}
			keys = append(keys, plan.SortKey{Col: col, Desc: ok.Desc})
		}
		if len(keys) == 0 {
			// TOP without ORDER BY: sort on first column for determinism.
			keys = append(keys, plan.SortKey{Col: cur.Schema[0]})
		}
		cur = plan.NewTop(cur, sel.Top, keys)
	}
	return cur, nil
}

func (b *binder) bindProjection(item SelectItem, env scope) (plan.Projection, error) {
	e, err := b.bindScalar(item.Expr, env)
	if err != nil {
		return plan.Projection{}, err
	}
	name := item.Alias
	if name == "" {
		if e.Kind == plan.ExprColumn {
			name = e.Col.Name
		} else {
			name = fmt.Sprintf("expr_%d", b.nextID+1)
		}
	}
	var out plan.Column
	if e.Kind == plan.ExprColumn {
		// Pass-through column: preserve identity and lineage.
		out = e.Col
		out.Name = name
	} else {
		out = plan.Column{ID: b.newID(), Name: name}
	}
	return plan.Projection{Expr: e, Out: out}, nil
}

var binOps = map[string]plan.CmpOp{
	"==": plan.OpEQ, "!=": plan.OpNE,
	"<": plan.OpLT, "<=": plan.OpLE, ">": plan.OpGT, ">=": plan.OpGE,
	"+": plan.OpAdd, "-": plan.OpSub, "*": plan.OpMul, "/": plan.OpDiv,
}

func (b *binder) bindScalar(e ScalarExpr, env scope) (*plan.Expr, error) {
	switch e := e.(type) {
	case ColName:
		col, err := env.resolve(e)
		if err != nil {
			return nil, err
		}
		return plan.ColExpr(col), nil
	case NumLit:
		return plan.NumExpr(e.Value), nil
	case StrLit:
		return plan.StrExpr(e.Value), nil
	case *BinExpr:
		l, err := b.bindScalar(e.L, env)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(e.R, env)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "AND":
			return plan.And(l, r), nil
		case "OR":
			return plan.Or(l, r), nil
		}
		op, ok := binOps[e.Op]
		if !ok {
			return nil, errf(e.Pos, "unsupported operator %q", e.Op)
		}
		kind := plan.ExprCmp
		if op >= plan.OpAdd {
			kind = plan.ExprArith
		}
		return &plan.Expr{Kind: kind, Op: op, Args: []*plan.Expr{l, r}}, nil
	case *CallExpr:
		return nil, errf(e.Pos, "aggregate %s outside grouped SELECT", e.Fn)
	}
	return nil, fmt.Errorf("scopeql: unknown scalar expression %T", e)
}
