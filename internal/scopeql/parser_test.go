package scopeql

import (
	"strings"
	"testing"
)

func TestParseFullScript(t *testing.T) {
	src := `
f = SELECT a, b FROM "lake/t" WHERE a > 5 AND b == 2 OR a < 1;
e = EXTRACT a, c FROM "lake/u";
j = SELECT f.a AS a, u.c AS c FROM f INNER JOIN e AS u ON f.a == u.a;
g = SELECT a, COUNT(*) AS cnt, SUM(c) AS total FROM j GROUP BY a HAVING cnt > 3;
un = f UNION ALL f UNION ALL f;
p = PROCESS un USING MyUdo;
rj = REDUCE p ON a USING MyReducer;
tp = SELECT TOP 10 a, cnt FROM g ORDER BY cnt DESC, a;
OUTPUT tp TO "out/x";
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 9 {
		t.Fatalf("got %d statements, want 9", len(s.Stmts))
	}
	sel := s.Stmts[0].(*AssignStmt).Rel.(*SelectExpr)
	if sel.Where == nil {
		t.Fatal("WHERE not parsed")
	}
	// a > 5 AND b == 2 OR a < 1 must parse as (a>5 AND b==2) OR (a<1).
	or, ok := sel.Where.(*BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top-level operator is %v, want OR", sel.Where)
	}
	and, ok := or.L.(*BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("left of OR is %v, want AND", or.L)
	}

	union := s.Stmts[4].(*AssignStmt).Rel.(*UnionExpr)
	if len(union.Terms) != 3 {
		t.Fatalf("union has %d terms, want 3", len(union.Terms))
	}

	top := s.Stmts[7].(*AssignStmt).Rel.(*SelectExpr)
	if top.Top != 10 || len(top.OrderBy) != 2 || !top.OrderBy[0].Desc || top.OrderBy[1].Desc {
		t.Fatalf("TOP/ORDER BY parsed wrong: %+v", top)
	}

	out := s.Stmts[8].(*OutputStmt)
	if out.Name != "tp" || out.Path != "out/x" {
		t.Fatalf("OUTPUT parsed wrong: %+v", out)
	}
}

func TestParseArithPrecedence(t *testing.T) {
	s, err := Parse(`x = SELECT a + b * 2 AS v FROM "lake/t"; OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	item := s.Stmts[0].(*AssignStmt).Rel.(*SelectExpr).Items[0]
	add := item.Expr.(*BinExpr)
	if add.Op != "+" {
		t.Fatalf("top op %q, want +", add.Op)
	}
	mul := add.R.(*BinExpr)
	if mul.Op != "*" {
		t.Fatalf("right op %q, want *", mul.Op)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	s, err := Parse(`x = SELECT t.a FROM "lake/t" AS t; OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	col := s.Stmts[0].(*AssignStmt).Rel.(*SelectExpr).Items[0].Expr.(ColName)
	if col.Qualifier != "t" || col.Name != "a" {
		t.Fatalf("qualified column parsed as %+v", col)
	}
}

func TestParseStar(t *testing.T) {
	s, err := Parse(`x = SELECT * FROM "lake/t"; OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stmts[0].(*AssignStmt).Rel.(*SelectExpr).Star {
		t.Fatal("star not recognized")
	}
}

func TestParseParenthesizedSource(t *testing.T) {
	_, err := Parse(`x = SELECT a FROM (SELECT a FROM "lake/t") AS s; OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":                 ``,
		"missing semicolon":     `x = SELECT a FROM "t"`,
		"missing FROM":          `x = SELECT a;`,
		"bad TOP":               `x = SELECT TOP 0 a FROM "t"; OUTPUT x TO "o";`,
		"bad TOP word":          `x = SELECT TOP abc a FROM "t"; OUTPUT x TO "o";`,
		"union missing ALL":     `x = a UNION b; OUTPUT x TO "o";`,
		"output missing TO":     `OUTPUT x "o";`,
		"output non-string":     `OUTPUT x TO path;`,
		"reduce missing USING":  `x = REDUCE y ON k; OUTPUT x TO "o";`,
		"process missing USING": `x = PROCESS y; OUTPUT x TO "o";`,
		"dangling expr":         `x = SELECT a + FROM "t"; OUTPUT x TO "o";`,
		"unclosed paren":        `x = SELECT (a FROM "t"; OUTPUT x TO "o";`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("x = SELECT a\nFROM;")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line position", err)
	}
}

func TestParseAggregates(t *testing.T) {
	s, err := Parse(`x = SELECT k, COUNT(*) AS c, AVG(v) AS a FROM "t" GROUP BY k; OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	items := s.Stmts[0].(*AssignStmt).Rel.(*SelectExpr).Items
	cnt := items[1].Expr.(*CallExpr)
	if cnt.Fn != "COUNT" || !cnt.Star {
		t.Fatalf("COUNT(*) parsed as %+v", cnt)
	}
	avg := items[2].Expr.(*CallExpr)
	if avg.Fn != "AVG" || avg.Star || len(avg.Args) != 1 {
		t.Fatalf("AVG(v) parsed as %+v", avg)
	}
}
