package scopeql

import "fmt"

// Script is a parsed SCOPE-like job: a sequence of variable assignments and
// OUTPUT statements.
type Script struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface{ stmt() }

// AssignStmt binds a relational expression to a script variable.
type AssignStmt struct {
	Name string
	Rel  RelExpr
	Pos  Pos
}

// OutputStmt writes a bound variable to a path.
type OutputStmt struct {
	Name string
	Path string
	Pos  Pos
}

func (*AssignStmt) stmt() {}
func (*OutputStmt) stmt() {}

// RelExpr is a relational expression.
type RelExpr interface{ rel() }

// VarRef references a previously bound script variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// ExtractExpr reads named columns from an input stream.
type ExtractExpr struct {
	Columns []string
	Stream  string
	Pos     Pos
}

// SelectExpr is a SELECT statement with optional joins, filtering, grouping
// and top-N.
type SelectExpr struct {
	Top     int // 0 = no TOP clause
	Items   []SelectItem
	Star    bool
	From    TableRef
	Joins   []JoinClause
	Where   ScalarExpr
	GroupBy []ColName
	Having  ScalarExpr
	OrderBy []OrderKey
	Pos     Pos
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  ScalarExpr
	Alias string
}

// TableRef is a FROM/JOIN source: either a bound variable, a quoted stream
// path, or a parenthesized subexpression, with an optional alias.
type TableRef struct {
	Var    string  // non-empty for variable references
	Stream string  // non-empty for direct stream reads
	Sub    RelExpr // non-nil for (subquery)
	Alias  string
	Pos    Pos
}

// JoinClause is one INNER JOIN ... ON ... clause.
type JoinClause struct {
	Right TableRef
	On    ScalarExpr
	Pos   Pos
}

// OrderKey is one ORDER BY column.
type OrderKey struct {
	Col  ColName
	Desc bool
}

// UnionExpr is an n-ary UNION ALL of relational terms.
type UnionExpr struct {
	Terms []RelExpr
	Pos   Pos
}

// ProcessExpr applies a user-defined row processor to a source.
type ProcessExpr struct {
	Source RelExpr
	UDO    string
	Pos    Pos
}

// ReduceExpr applies a user-defined reducer per key group.
type ReduceExpr struct {
	Source RelExpr
	Keys   []ColName
	UDO    string
	Pos    Pos
}

func (*VarRef) rel()      {}
func (*ExtractExpr) rel() {}
func (*SelectExpr) rel()  {}
func (*UnionExpr) rel()   {}
func (*ProcessExpr) rel() {}
func (*ReduceExpr) rel()  {}

// ScalarExpr is a scalar expression in predicates and projections.
type ScalarExpr interface{ scalar() }

// ColName is a possibly qualified column reference "alias.col" or "col".
type ColName struct {
	Qualifier string
	Name      string
	Pos       Pos
}

// NumLit is a numeric literal.
type NumLit struct {
	Value float64
	Pos   Pos
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Pos   Pos
}

// BinExpr is a binary operation: comparison, arithmetic, AND or OR
// (Op holds the surface operator text, e.g. "==", "AND", "+").
type BinExpr struct {
	Op   string
	L, R ScalarExpr
	Pos  Pos
}

// CallExpr is a function call; aggregate calls (COUNT/SUM/...) appear only in
// SELECT items of grouped queries. Star marks COUNT(*).
type CallExpr struct {
	Fn   string
	Args []ScalarExpr
	Star bool
	Pos  Pos
}

func (ColName) scalar()   {}
func (NumLit) scalar()    {}
func (StrLit) scalar()    {}
func (*BinExpr) scalar()  {}
func (*CallExpr) scalar() {}

func (c ColName) String() string {
	if c.Qualifier != "" {
		return fmt.Sprintf("%s.%s", c.Qualifier, c.Name)
	}
	return c.Name
}
