package scopeql_test

import (
	"fmt"
	"testing"

	"steerq/internal/scopeql"
	"steerq/internal/workload"
)

// equalScript compares two scripts structurally, ignoring source positions —
// the property a printer must preserve. It reports the first difference as a
// human-readable path.
func equalScript(a, b *scopeql.Script) error {
	if len(a.Stmts) != len(b.Stmts) {
		return fmt.Errorf("%d vs %d statements", len(a.Stmts), len(b.Stmts))
	}
	for i := range a.Stmts {
		if err := equalStmt(a.Stmts[i], b.Stmts[i]); err != nil {
			return fmt.Errorf("stmt %d: %w", i, err)
		}
	}
	return nil
}

func equalStmt(a, b scopeql.Stmt) error {
	switch a := a.(type) {
	case *scopeql.AssignStmt:
		bb, ok := b.(*scopeql.AssignStmt)
		if !ok {
			return fmt.Errorf("assign vs %T", b)
		}
		if a.Name != bb.Name {
			return fmt.Errorf("assign name %q vs %q", a.Name, bb.Name)
		}
		return equalRel(a.Rel, bb.Rel)
	case *scopeql.OutputStmt:
		bb, ok := b.(*scopeql.OutputStmt)
		if !ok {
			return fmt.Errorf("output vs %T", b)
		}
		if a.Name != bb.Name || a.Path != bb.Path {
			return fmt.Errorf("output %q->%q vs %q->%q", a.Name, a.Path, bb.Name, bb.Path)
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", a)
}

func equalRel(a, b scopeql.RelExpr) error {
	switch a := a.(type) {
	case *scopeql.VarRef:
		bb, ok := b.(*scopeql.VarRef)
		if !ok || a.Name != bb.Name {
			return fmt.Errorf("varref %q vs %#v", a.Name, b)
		}
	case *scopeql.ExtractExpr:
		bb, ok := b.(*scopeql.ExtractExpr)
		if !ok || a.Stream != bb.Stream || fmt.Sprint(a.Columns) != fmt.Sprint(bb.Columns) {
			return fmt.Errorf("extract %v vs %#v", a, b)
		}
	case *scopeql.SelectExpr:
		bb, ok := b.(*scopeql.SelectExpr)
		if !ok {
			return fmt.Errorf("select vs %T", b)
		}
		return equalSelect(a, bb)
	case *scopeql.UnionExpr:
		bb, ok := b.(*scopeql.UnionExpr)
		if !ok {
			return fmt.Errorf("union vs %T", b)
		}
		if len(a.Terms) != len(bb.Terms) {
			return fmt.Errorf("union arity %d vs %d", len(a.Terms), len(bb.Terms))
		}
		for i := range a.Terms {
			if err := equalRel(a.Terms[i], bb.Terms[i]); err != nil {
				return fmt.Errorf("union term %d: %w", i, err)
			}
		}
	case *scopeql.ProcessExpr:
		bb, ok := b.(*scopeql.ProcessExpr)
		if !ok || a.UDO != bb.UDO {
			return fmt.Errorf("process vs %#v", b)
		}
		return equalRel(a.Source, bb.Source)
	case *scopeql.ReduceExpr:
		bb, ok := b.(*scopeql.ReduceExpr)
		if !ok || a.UDO != bb.UDO {
			return fmt.Errorf("reduce vs %#v", b)
		}
		if err := equalCols(a.Keys, bb.Keys); err != nil {
			return fmt.Errorf("reduce keys: %w", err)
		}
		return equalRel(a.Source, bb.Source)
	default:
		return fmt.Errorf("unknown relational expr %T", a)
	}
	return nil
}

func equalSelect(a, b *scopeql.SelectExpr) error {
	if a.Top != b.Top || a.Star != b.Star {
		return fmt.Errorf("top/star %d/%v vs %d/%v", a.Top, a.Star, b.Top, b.Star)
	}
	if len(a.Items) != len(b.Items) {
		return fmt.Errorf("%d vs %d items", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i].Alias != b.Items[i].Alias {
			return fmt.Errorf("item %d alias %q vs %q", i, a.Items[i].Alias, b.Items[i].Alias)
		}
		if err := equalScalar(a.Items[i].Expr, b.Items[i].Expr); err != nil {
			return fmt.Errorf("item %d: %w", i, err)
		}
	}
	if err := equalTableRef(a.From, b.From); err != nil {
		return fmt.Errorf("from: %w", err)
	}
	if len(a.Joins) != len(b.Joins) {
		return fmt.Errorf("%d vs %d joins", len(a.Joins), len(b.Joins))
	}
	for i := range a.Joins {
		if err := equalTableRef(a.Joins[i].Right, b.Joins[i].Right); err != nil {
			return fmt.Errorf("join %d: %w", i, err)
		}
		if err := equalScalar(a.Joins[i].On, b.Joins[i].On); err != nil {
			return fmt.Errorf("join %d on: %w", i, err)
		}
	}
	if err := equalOptScalar(a.Where, b.Where); err != nil {
		return fmt.Errorf("where: %w", err)
	}
	if err := equalCols(a.GroupBy, b.GroupBy); err != nil {
		return fmt.Errorf("group by: %w", err)
	}
	if err := equalOptScalar(a.Having, b.Having); err != nil {
		return fmt.Errorf("having: %w", err)
	}
	if len(a.OrderBy) != len(b.OrderBy) {
		return fmt.Errorf("%d vs %d order keys", len(a.OrderBy), len(b.OrderBy))
	}
	for i := range a.OrderBy {
		ka, kb := a.OrderBy[i], b.OrderBy[i]
		if ka.Desc != kb.Desc || ka.Col.String() != kb.Col.String() {
			return fmt.Errorf("order key %d: %v/%v vs %v/%v", i, ka.Col, ka.Desc, kb.Col, kb.Desc)
		}
	}
	return nil
}

func equalTableRef(a, b scopeql.TableRef) error {
	if a.Var != b.Var || a.Stream != b.Stream || a.Alias != b.Alias {
		return fmt.Errorf("ref %v vs %v", a, b)
	}
	if (a.Sub == nil) != (b.Sub == nil) {
		return fmt.Errorf("one ref has a subquery, the other not")
	}
	if a.Sub != nil {
		return equalRel(a.Sub, b.Sub)
	}
	return nil
}

func equalCols(a, b []scopeql.ColName) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d columns", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return fmt.Errorf("column %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

func equalOptScalar(a, b scopeql.ScalarExpr) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("present vs absent")
	}
	if a == nil {
		return nil
	}
	return equalScalar(a, b)
}

func equalScalar(a, b scopeql.ScalarExpr) error {
	switch a := a.(type) {
	case scopeql.ColName:
		bb, ok := b.(scopeql.ColName)
		if !ok || a.String() != bb.String() {
			return fmt.Errorf("col %v vs %#v", a, b)
		}
	case scopeql.NumLit:
		bb, ok := b.(scopeql.NumLit)
		if !ok || a.Value != bb.Value {
			return fmt.Errorf("num %v vs %#v", a.Value, b)
		}
	case scopeql.StrLit:
		bb, ok := b.(scopeql.StrLit)
		if !ok || a.Value != bb.Value {
			return fmt.Errorf("str %q vs %#v", a.Value, b)
		}
	case *scopeql.BinExpr:
		bb, ok := b.(*scopeql.BinExpr)
		if !ok || a.Op != bb.Op {
			return fmt.Errorf("binop %q vs %#v", a.Op, b)
		}
		if err := equalScalar(a.L, bb.L); err != nil {
			return fmt.Errorf("%s left: %w", a.Op, err)
		}
		if err := equalScalar(a.R, bb.R); err != nil {
			return fmt.Errorf("%s right: %w", a.Op, err)
		}
	case *scopeql.CallExpr:
		bb, ok := b.(*scopeql.CallExpr)
		if !ok || a.Fn != bb.Fn || a.Star != bb.Star || len(a.Args) != len(bb.Args) {
			return fmt.Errorf("call %s vs %#v", a.Fn, b)
		}
		for i := range a.Args {
			if err := equalScalar(a.Args[i], bb.Args[i]); err != nil {
				return fmt.Errorf("%s arg %d: %w", a.Fn, i, err)
			}
		}
	default:
		return fmt.Errorf("unknown scalar %T", a)
	}
	return nil
}

// roundTrip asserts the printer's two contracts on one source text:
// Parse∘Print is the identity on ASTs (no information lost, positions
// aside), and Print∘Parse is a fixed point on source (printing is canonical
// after one pass).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	s1, err := scopeql.Parse(src)
	if err != nil {
		t.Fatalf("corpus script does not parse: %v\n%s", err, src)
	}
	p1 := scopeql.Print(s1)
	s2, err := scopeql.Parse(p1)
	if err != nil {
		t.Fatalf("printed script does not reparse: %v\noriginal:\n%s\nprinted:\n%s", err, src, p1)
	}
	if err := equalScript(s1, s2); err != nil {
		t.Fatalf("print lost information: %v\noriginal:\n%s\nprinted:\n%s", err, src, p1)
	}
	if p2 := scopeql.Print(s2); p2 != p1 {
		t.Fatalf("print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", p1, p2)
	}
}

// TestPrintRoundTripCorpus covers every statement form and the precedence
// and associativity corners where minimal parenthesization could go wrong.
func TestPrintRoundTripCorpus(t *testing.T) {
	corpus := []string{
		// The package documentation's example job.
		`filtered = SELECT user_id, region, amount
		            FROM "shop/orders"
		            WHERE amount > 100 AND region == "EU";
		 joined   = SELECT f.user_id, u.segment, f.amount
		            FROM filtered AS f
		            INNER JOIN "shop/users" AS u ON f.user_id == u.user_id;
		 agg      = SELECT segment, SUM(amount) AS total
		            FROM joined GROUP BY segment;
		 cooked   = PROCESS agg USING SegmentScorer;
		 OUTPUT cooked TO "out/segment_totals";`,
		// Every statement/clause form.
		`e = EXTRACT a, b, c FROM "lake/raw"; OUTPUT e TO "o";`,
		`x = SELECT * FROM "lake/t"; OUTPUT x TO "o";`,
		`tp = SELECT TOP 10 a, cnt FROM g ORDER BY cnt DESC, a, b ASC; OUTPUT tp TO "o";`,
		`g = SELECT a, COUNT(*) AS cnt, SUM(c) AS total, AVG(c) AS m FROM j GROUP BY a, b HAVING cnt > 3 AND total < 100; OUTPUT g TO "o";`,
		`x = SELECT a FROM (SELECT a FROM "lake/t" WHERE a > 1) AS s; OUTPUT x TO "o";`,
		`r = REDUCE y ON k, u.v USING Cook; OUTPUT r TO "o";`,
		`r = REDUCE (SELECT a FROM "t") ON a USING Cook; OUTPUT r TO "o";`,
		`p = PROCESS y USING Cook; OUTPUT p TO "o";`,
		`p = PROCESS (a UNION ALL b) USING Cook; OUTPUT p TO "o";`,
		`u = a UNION ALL SELECT x FROM "t" UNION ALL b; OUTPUT u TO "o";`,
		`u = (a UNION ALL b) UNION ALL c; OUTPUT u TO "o";`,
		// Precedence and associativity corners.
		`x = SELECT a + b * 2 AS v, (a + b) * 2 AS w FROM "t"; OUTPUT x TO "o";`,
		`x = SELECT a - (b - c) AS d, a / (b * c) AS e, a - b - c AS f FROM "t"; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE (a + 1) * 2 > 3 AND (b == 1 OR c == 2); OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE a OR b AND c OR d; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE (a OR b) AND c; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE (a AND b) == c; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE (a == b) == (c != d); OUTPUT x TO "o";`,
		`x = SELECT SUM(a + b * c) AS s FROM "t" GROUP BY k; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE region == "EU" AND x != "a b c"; OUTPUT x TO "o";`,
		`x = SELECT a FROM "t" WHERE a > 0.5 AND b < 1000000000000 AND c >= 0.0625; OUTPUT x TO "o";`,
		`j = SELECT f.a FROM f INNER JOIN e AS u ON f.a == u.a AND f.b < u.b INNER JOIN (SELECT z FROM "t") AS w ON w.z == f.a; OUTPUT j TO "o";`,
	}
	for i, src := range corpus {
		t.Run(fmt.Sprintf("corpus%02d", i), func(t *testing.T) { roundTrip(t, src) })
	}
}

// TestPrintRoundTripWorkloads round-trips every generated job script of all
// three workload profiles — the scripts the rest of the system actually
// compiles.
func TestPrintRoundTripWorkloads(t *testing.T) {
	profiles := map[string]workload.Profile{
		"A": workload.ProfileA(0.002, 7),
		"B": workload.ProfileB(0.002, 7),
		"C": workload.ProfileC(0.002, 7),
	}
	for name, p := range profiles {
		t.Run(name, func(t *testing.T) {
			w := workload.Generate(p)
			n := 0
			for day := 0; day < 2; day++ {
				for _, j := range w.Day(day) {
					roundTrip(t, j.Script)
					n++
				}
			}
			if n == 0 {
				t.Fatal("profile generated no jobs; round-trip is vacuous")
			}
		})
	}
}
