package scopeql

import (
	"strings"
	"testing"
)

// fuzzSeeds covers every statement form the grammar accepts plus a few
// known-bad inputs so the fuzzer starts with interesting coverage.
var fuzzSeeds = []string{
	`x = SELECT a, b FROM "lake/t" WHERE a > 5 AND b == 2 OR a < 1; OUTPUT x TO "o";`,
	`e = EXTRACT a, c FROM "lake/u"; OUTPUT e TO "o";`,
	`j = SELECT f.a AS a, u.c AS c FROM f INNER JOIN e AS u ON f.a == u.a; OUTPUT j TO "o";`,
	`g = SELECT a, COUNT(*) AS cnt, SUM(c) AS total FROM j GROUP BY a HAVING cnt > 3; OUTPUT g TO "o";`,
	`tp = SELECT TOP 10 a, cnt FROM g ORDER BY cnt DESC, a; OUTPUT tp TO "o";`,
	`x = SELECT a + b * 2 AS v FROM "lake/t"; OUTPUT x TO "o";`,
	`x = SELECT * FROM "lake/t"; OUTPUT x TO "o";`,
	`x = SELECT a FROM (SELECT a FROM "lake/t") AS s; OUTPUT x TO "o";`,
	`u = a UNION ALL b; OUTPUT u TO "o";`,
	`r = REDUCE y ON k USING Cook; OUTPUT r TO "o";`,
	`p = PROCESS y USING Cook; OUTPUT p TO "o";`,
	// Printer round-trip corners: empty stream path (found by fuzzing),
	// nested unions, and minimal-parenthesization pressure.
	`x = SELECT a FROM ""; OUTPUT x TO "o";`,
	`u = (a UNION ALL b) UNION ALL c; OUTPUT u TO "o";`,
	`x = SELECT a FROM "t" WHERE (a OR b) AND (c == d) == e; OUTPUT x TO "o";`,
	`x = SELECT a - (b - c) AS d, (a + b) * 2 AS e FROM "t"; OUTPUT x TO "o";`,
	// Malformed inputs that must produce errors, not panics.
	`x = SELECT a FROM "t"`,
	`x = SELECT TOP 0 a FROM "t"; OUTPUT x TO "o";`,
	`OUTPUT x "o";`,
	`= ; ;; "`,
	"x = SELECT \x00 FROM \"t\";",
}

// FuzzParse asserts the parser never panics — any input either yields a
// script or an error — and that every parsed script survives the printer
// round trip: Print output reparses, and printing the reparse reproduces it
// byte for byte (Print∘Parse is a fixed point on canonical source).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse returned both a script and error %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("Parse returned nil script and nil error")
		}
		for i, st := range s.Stmts {
			if st == nil {
				t.Fatalf("statement %d is nil", i)
			}
		}
		p1 := Print(s)
		s2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed script does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, p1)
		}
		if p2 := Print(s2); p2 != p1 {
			t.Fatalf("print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	})
}

// FuzzCompile drives the full parse+bind pipeline against a fixed catalog.
// Binding is where name resolution and schema bookkeeping live, so this
// exercises far more invariants than parsing alone.
func FuzzCompile(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(strings.ReplaceAll(seed, "lake/t", "lake/orders"))
	}
	cat := bindCatalog()
	f.Fuzz(func(t *testing.T, src string) {
		root, err := Compile(src, cat)
		if err == nil && root == nil {
			t.Fatal("Compile returned nil plan and nil error")
		}
	})
}
