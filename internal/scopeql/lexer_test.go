package scopeql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`x = SELECT a, b FROM "s/t" WHERE a >= 1.5;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokIdent, "x"}, {TokSymbol, "="}, {TokKeyword, "SELECT"},
		{TokIdent, "a"}, {TokSymbol, ","}, {TokIdent, "b"},
		{TokKeyword, "FROM"}, {TokString, "s/t"}, {TokKeyword, "WHERE"},
		{TokIdent, "a"}, {TokSymbol, ">="}, {TokNumber, "1.5"},
		{TokSymbol, ";"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("select Select SELECT")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword || tok.Text != "SELECT" {
			t.Fatalf("keyword normalization failed: %+v", tok)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a -- a comment\n// another\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := Lex("== != <= >= < > =")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"==", "!=", "<=", ">=", "<", ">", "="}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`x = "unterminated`,
		"x = \"newline\nin string\"",
		"x = @",
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexNumberForms(t *testing.T) {
	toks, err := Lex("1 2.5 100.25 7")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "100.25", "7"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("number %d = %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
	_ = kinds
}
