package steering_test

import (
	"testing"
	"testing/quick"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/catalog"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/scopeql"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func steerCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddStream(&catalog.Stream{
		Name: "f",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 2000, TrueDistinct: 2000, Min: 0, Max: 2000, Skew: 1.1},
			{Name: "v", Distinct: 500, TrueDistinct: 500, Min: 0, Max: 500},
			{Name: "flag", Distinct: 12, TrueDistinct: 12, Min: 0, Max: 12},
		},
		BaseRows: 3e7, BytesPerRow: 70, DailySigma: 0.2, GrowthPerDay: 1,
	})
	cat.AddStream(&catalog.Stream{
		Name: "d",
		Columns: []catalog.Column{
			{Name: "k", Distinct: 2000, TrueDistinct: 2000, Min: 0, Max: 2000},
			{Name: "attr", Distinct: 30, TrueDistinct: 30, Min: 0, Max: 30},
		},
		BaseRows: 2000, BytesPerRow: 40, GrowthPerDay: 1,
	})
	return cat
}

func steerHarness(cat *catalog.Catalog) *abtest.Harness {
	return abtest.New(cat, rules.NewOptimizer(cost.NewEstimated(cat)), 7)
}

const steerScript = `
f1 = SELECT k, v FROM "f" WHERE v > 100 AND flag == 2;
j = SELECT f1.k AS k, d.attr AS attr, f1.v AS v FROM f1 INNER JOIN "d" AS d ON f1.k == d.k;
a = SELECT attr, SUM(v) AS total, COUNT(*) AS cnt FROM j GROUP BY attr;
OUTPUT a TO "out/s";
`

func steerJob(t *testing.T, cat *catalog.Catalog) *workload.Job {
	t.Helper()
	root, err := scopeql.Compile(steerScript, cat)
	if err != nil {
		t.Fatal(err)
	}
	return &workload.Job{ID: "test/j0", Root: root, Script: steerScript}
}

func TestJobSpanContainsDefaultSignature(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	span, err := steering.JobSpan(h.Opt, job.Root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Opt.Optimize(job.Root, h.Opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nonRequired := bitvec.New(h.Opt.Rules.NonRequiredIDs()...)
	defaultNonReq := res.Signature.And(nonRequired)
	if !span.Contains(defaultNonReq) {
		t.Fatalf("span %v misses default-signature rules %v", span, defaultNonReq.AndNot(span))
	}
	// The span discovers alternatives beyond the default path (e.g. other
	// join implementations).
	if span.Count() <= defaultNonReq.Count() {
		t.Fatalf("span (%d rules) found no alternatives beyond the default signature (%d)",
			span.Count(), defaultNonReq.Count())
	}
}

func TestJobSpanDeterministic(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	s1, err := steering.JobSpan(h.Opt, job.Root)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := steering.JobSpan(h.Opt, job.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatal("span not deterministic")
	}
}

func TestJobSpanExcludesRequired(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	span, err := steering.JobSpan(h.Opt, job.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range span.Ones() {
		if ri, _ := h.Opt.Rules.Info(id); ri.Category == cascades.Required {
			t.Fatalf("required rule %s in job span", ri)
		}
	}
}

func TestCandidateConfigsProperties(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	span, err := steering.JobSpan(h.Opt, job.Root)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := steering.CandidateConfigs(span, h.Opt.Rules, 50, xrand.New(1))
	if len(cfgs) == 0 {
		t.Fatal("no candidates generated")
	}
	seen := make(map[bitvec.Key]bool)
	for _, cfg := range cfgs {
		if seen[cfg.Key()] {
			t.Fatal("duplicate candidate configuration")
		}
		seen[cfg.Key()] = true
		// Every rule outside the span is enabled (step 1 of §5.2).
		disabled := bitvec.AllSet(bitvec.Width).AndNot(cfg)
		if !span.Contains(disabled) {
			t.Fatalf("candidate disables non-span rules: %v", disabled.AndNot(span))
		}
	}
}

func TestCandidateConfigsCapBydistinct(t *testing.T) {
	// A tiny span bounds the number of distinct configurations.
	span := bitvec.New(40, 224)
	rs := rules.Catalog()
	cfgs := steering.CandidateConfigs(span, rs, 1000, xrand.New(2))
	if len(cfgs) > 4 {
		t.Fatalf("span of 2 rules yielded %d candidates, max 4 possible", len(cfgs))
	}
}

func TestDiffProperties(t *testing.T) {
	f := func(aBits, bBits []uint8) bool {
		var a, b bitvec.Vector
		for _, i := range aBits {
			a.Set(int(i))
		}
		for _, i := range bBits {
			b.Set(int(i))
		}
		d := steering.Diff(a, b)
		for _, id := range d.OnlyDefault {
			if !a.Get(id) || b.Get(id) {
				return false
			}
		}
		for _, id := range d.OnlyNew {
			if a.Get(id) || !b.Get(id) {
				return false
			}
		}
		return len(d.OnlyDefault)+len(d.OnlyNew) == steering.DiffVector(a, b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineAnalysis(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(3))
	p.MaxCandidates = 60
	p.ExecutePerJob = 5
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatal(err)
	}
	if a.Default.Err != nil {
		t.Fatal(a.Default.Err)
	}
	if len(a.Candidates) == 0 {
		t.Fatal("no candidates compiled")
	}
	if len(a.Selected) == 0 || len(a.Trials) != len(a.Selected) {
		t.Fatalf("selection/execution mismatch: %d selected, %d trials", len(a.Selected), len(a.Trials))
	}
	if len(a.Selected) > 5 {
		t.Fatalf("selected %d > ExecutePerJob", len(a.Selected))
	}
	// Selected plans have distinct signatures, none equal to the default.
	seen := map[bitvec.Key]bool{a.Default.Signature.Key(): true}
	for _, c := range a.Selected {
		if seen[c.Signature.Key()] {
			t.Fatal("selected duplicate or default-equal plan")
		}
		seen[c.Signature.Key()] = true
	}
	// BestConfig never loses to the default.
	best := a.BestConfig(steering.MetricRuntime)
	if best.Metrics.RuntimeSec > a.Default.Metrics.RuntimeSec {
		t.Fatal("BestConfig worse than default")
	}
}

func TestPercentChange(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(3))
	p.MaxCandidates = 20
	p.ExecutePerJob = 3
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PercentChange(&a.Default, steering.MetricRuntime); got != 0 {
		t.Fatalf("default vs default change %v", got)
	}
	for i := range a.Trials {
		pct := a.PercentChange(&a.Trials[i], steering.MetricRuntime)
		if pct < -100 {
			t.Fatalf("percentage gain below -100%%: %v", pct)
		}
	}
}

func TestGrouperGroupsConsistently(t *testing.T) {
	w := workload.Generate(workload.ProfileB(0.002, 5))
	h := abtest.New(w.Cat, rules.NewOptimizer(cost.NewEstimated(w.Cat)), 7)
	g := steering.NewGrouper(h)
	jobs := w.Day(0)
	groups, err := g.Group(jobs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, grp := range groups {
		total += len(grp.Jobs)
		for _, j := range grp.Jobs {
			sig, err := g.DefaultSignature(j)
			if err != nil {
				t.Fatal(err)
			}
			if !sig.Equal(grp.Signature) {
				t.Fatalf("job %s grouped under wrong signature", j.ID)
			}
		}
	}
	if total != len(jobs) {
		t.Fatalf("groups cover %d of %d jobs", total, len(jobs))
	}
	// Groups ordered by size.
	for i := 1; i < len(groups); i++ {
		if len(groups[i].Jobs) > len(groups[i-1].Jobs) {
			t.Fatal("groups not sorted by size")
		}
	}
}

func TestExtrapolateSkipsUncompilable(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	// A configuration that cannot compile (all join impls off).
	cfg := h.Opt.Rules.DefaultConfig()
	for _, id := range []int{rules.IDHashJoinImpl1, rules.IDJoinImpl2, rules.IDMergeJoinImpl, rules.IDJoinToApplyIndex1} {
		cfg.Clear(id)
	}
	out := steering.Extrapolate(h, cfg, []*workload.Job{job})
	if len(out) != 0 {
		t.Fatalf("uncompilable extrapolation produced %d comparisons", len(out))
	}
}

func TestLowCostHighRuntimeHeuristic(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(3))
	p.MaxCandidates = 10
	p.ExecutePerJob = 2
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LowCostHighRuntime(a.Default.EstCost+1, a.Default.Metrics.RuntimeSec-1) {
		t.Fatal("heuristic false for a point inside its own thresholds")
	}
	if a.LowCostHighRuntime(a.Default.EstCost-1, a.Default.Metrics.RuntimeSec-1) {
		t.Fatal("heuristic true for cost above ceiling")
	}
}
