package steering

import (
	"fmt"
	"sort"
	"strings"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
)

// Hints is the deployment surface the paper recommends (§3.3): a discovered
// rule configuration rendered as the rule on/off flags a customer pastes
// into their job ("rule flags are already available and often used by
// customers; new rule configurations can be simply surfaced as an extension
// of this capability").
//
// A hint string lists only the *differences* from the default configuration,
// e.g.:
//
//	DISABLE: JoinImpl2, SelectIntoGet
//	ENABLE:  CorrelatedJoinOnUnionAll1
type Hints struct {
	Disable []string
	Enable  []string
}

// HintsFor renders a configuration as hints relative to the rule set's
// default configuration. Rules the catalog does not know (stray bits) are
// rendered as "rule#<id>".
func HintsFor(cfg bitvec.Vector, rs *cascades.RuleSet) Hints {
	def := rs.DefaultConfig()
	name := func(id int) string {
		if ri, ok := rs.Info(id); ok {
			return ri.Name
		}
		return fmt.Sprintf("rule#%d", id)
	}
	var h Hints
	for _, id := range def.AndNot(cfg).Ones() {
		h.Disable = append(h.Disable, name(id))
	}
	for _, id := range cfg.AndNot(def).Ones() {
		h.Enable = append(h.Enable, name(id))
	}
	sort.Strings(h.Disable)
	sort.Strings(h.Enable)
	return h
}

// String renders the hints in the canonical textual form.
func (h Hints) String() string {
	var b strings.Builder
	if len(h.Disable) > 0 {
		fmt.Fprintf(&b, "DISABLE: %s\n", strings.Join(h.Disable, ", "))
	}
	if len(h.Enable) > 0 {
		fmt.Fprintf(&b, "ENABLE: %s\n", strings.Join(h.Enable, ", "))
	}
	if b.Len() == 0 {
		return "DEFAULT\n"
	}
	return b.String()
}

// ParseHints reconstructs a configuration from hint text, relative to the
// rule set's default configuration. Unknown rule names are an error — a
// stale hint referencing a removed rule must not silently degrade to the
// default ("it is always hard to deploy learning based approaches that may
// cause surprising regressions", §3.3).
func ParseHints(text string, rs *cascades.RuleSet) (bitvec.Vector, error) {
	cfg := rs.DefaultConfig()
	byName := make(map[string]int)
	for _, ri := range rs.Infos() {
		byName[ri.Name] = ri.ID
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line == "DEFAULT" {
			continue
		}
		var names string
		var enable bool
		switch {
		case strings.HasPrefix(line, "DISABLE:"):
			names = strings.TrimPrefix(line, "DISABLE:")
		case strings.HasPrefix(line, "ENABLE:"):
			names = strings.TrimPrefix(line, "ENABLE:")
			enable = true
		default:
			return bitvec.Vector{}, fmt.Errorf("steering: bad hint line %q", line)
		}
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			id, ok := byName[n]
			if !ok {
				return bitvec.Vector{}, fmt.Errorf("steering: unknown rule %q in hints", n)
			}
			if ri, _ := rs.Info(id); ri.Category == cascades.Required {
				return bitvec.Vector{}, fmt.Errorf("steering: required rule %q cannot be hinted", n)
			}
			cfg.Assign(id, enable)
		}
	}
	return cfg, nil
}

// Recommendation packages a discovered configuration for handoff to a
// workload owner: the hints, the evidence it was selected on, and the job
// group it is expected to transfer to.
type Recommendation struct {
	// Workload and BaseJob identify where the configuration was found.
	Workload string `json:"workload"`
	BaseJob  string `json:"base_job"`
	// GroupSignature is the default rule signature (hex) of the job group
	// the recommendation extrapolates to (Definition 6.2).
	GroupSignature string `json:"group_signature"`
	// ConfigHex is the full configuration bit vector in hex.
	ConfigHex string `json:"config_hex"`
	// Hints is the human-facing diff from the default configuration.
	Hints string `json:"hints"`
	// DefaultRuntimeSec and SteeredRuntimeSec record the base job's A/B
	// measurement.
	DefaultRuntimeSec float64 `json:"default_runtime_sec"`
	SteeredRuntimeSec float64 `json:"steered_runtime_sec"`
}

// MinimalConfig returns the deployable configuration for an analysis whose
// best alternative beats the default, minimized against the job span: rules
// outside the span cannot affect the plan (Definition 5.1), so their bits
// are reset to the default — the customer-facing hint and the bundle entry
// then carry only the toggles that matter. (If the span heuristic missed a
// dependency, the minimized configuration can compile slightly differently
// from the measured one; the paper accepts the same limitation, §5.1.)
// Reports false when no alternative improved the runtime.
func MinimalConfig(a *Analysis, rs *cascades.RuleSet) (bitvec.Vector, bool) {
	best := a.BestAlternative(MetricRuntime)
	if best == nil || best.Metrics.RuntimeSec >= a.Default.Metrics.RuntimeSec {
		return bitvec.Vector{}, false
	}
	minimal := rs.DefaultConfig()
	for _, id := range a.Span.Ones() {
		minimal.Assign(id, best.Config.Get(id))
	}
	return minimal, true
}

// Recommend builds the recommendation for an analysis whose best alternative
// beats the default (see MinimalConfig). Returns nil when no alternative
// improved the runtime.
func Recommend(a *Analysis, rs *cascades.RuleSet) *Recommendation {
	minimal, ok := MinimalConfig(a, rs)
	if !ok {
		return nil
	}
	best := a.BestAlternative(MetricRuntime)
	return &Recommendation{
		Workload:          a.Job.Workload,
		BaseJob:           a.Job.ID,
		GroupSignature:    a.Default.Signature.Hex(),
		ConfigHex:         minimal.Hex(),
		Hints:             HintsFor(minimal, rs).String(),
		DefaultRuntimeSec: a.Default.Metrics.RuntimeSec,
		SteeredRuntimeSec: best.Metrics.RuntimeSec,
	}
}
