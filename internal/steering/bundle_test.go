package steering_test

import (
	"context"
	"strings"
	"testing"

	"steerq/internal/abtest"
	"steerq/internal/cost"
	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

func bundlePipeline(t *testing.T) (*steering.Pipeline, []*workload.Job) {
	t.Helper()
	w := workload.Generate(workload.ProfileB(0.001, 9))
	h := abtest.New(w.Cat, rules.NewOptimizer(cost.NewEstimated(w.Cat)), 7)
	p := steering.NewPipeline(h, xrand.New(3).Derive("bundle-test"))
	p.MaxCandidates = 20
	p.ExecutePerJob = 3
	jobs := w.Day(0)
	if len(jobs) > 10 {
		jobs = jobs[:10]
	}
	return p, jobs
}

func TestBuildBundleShape(t *testing.T) {
	p, jobs := bundlePipeline(t)
	b, rep, err := p.BuildBundle(jobs, 7, 1700000000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != 7 || b.CreatedUnix != 1700000000 || b.Workload != jobs[0].Workload {
		t.Fatalf("bundle header: %+v", b)
	}
	if !b.Default.Equal(p.Harness.Opt.Rules.DefaultConfig()) {
		t.Fatal("bundle default differs from the rule set default")
	}
	if rep.Jobs != len(jobs) || rep.Groups != len(b.Entries) {
		t.Fatalf("report %+v over %d entries", rep, len(b.Entries))
	}
	if rep.Steered+rep.Fallbacks+rep.Failed != rep.Groups || rep.Failed != 0 {
		t.Fatalf("report does not partition the groups: %+v", rep)
	}
	if b.Checksum() == 0 {
		t.Fatal("bundle checksum not stamped")
	}
	for i, e := range b.Entries {
		if e.Fallback && !e.Config.Equal(b.Default) {
			t.Fatalf("entry %d: fallback entry steers away from the default", i)
		}
	}
	// The stamped checksum is the file identity: a round trip agrees.
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
}

func TestBuildBundleEmptyWorkload(t *testing.T) {
	p, _ := bundlePipeline(t)
	b, rep, err := p.BuildBundle(nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 0 || rep.Groups != 0 || len(b.Entries) != 0 {
		t.Fatalf("empty build: %+v, %d entries", rep, len(b.Entries))
	}
	if _, err := b.Encode(); err != nil {
		t.Fatalf("empty bundle must still encode: %v", err)
	}
}

func TestBuildBundleCanceled(t *testing.T) {
	p, jobs := bundlePipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _, err := p.BuildBundleCtx(ctx, jobs, 1, 0)
	if err == nil || b != nil {
		t.Fatalf("canceled build returned bundle %v, err %v", b, err)
	}
	if !strings.Contains(err.Error(), "steering: bundle build:") {
		t.Fatalf("canceled build error not wrapped: %v", err)
	}
}
