package steering

import "steerq/internal/bitvec"

// FootprintClasses partitions candidate configurations into rule-equivalence
// classes by decision footprint.
//
// A compile's footprint (cascades.Result.Footprint) is the set of rule IDs
// whose enabled-bit the search read. The search tree branches only on those
// reads, so two configurations that agree on every footprint bit take the
// exact same path through the optimizer and provably produce byte-identical
// results — plan, cost, signature, even the footprint itself. The classifier
// exploits this: once one representative of a class is compiled, every other
// configuration projecting onto the same (footprint, projected-key) pair
// shares the outcome without compiling.
//
// Classes are discovered in admission order and scanned in that order on
// lookup, so resolution is deterministic regardless of how many workers
// produced the admitted values. The zero value is ready to use; the struct
// is not safe for concurrent mutation (the pipeline admits and looks up
// serially).
type FootprintClasses struct {
	classes []footprintClass
}

type footprintClass struct {
	foot bitvec.Vector
	proj bitvec.Key
	val  CompileValue
}

// Len returns the number of admitted classes.
func (fc *FootprintClasses) Len() int { return len(fc.classes) }

// Lookup returns the shared outcome of cfg's equivalence class, if one has
// been admitted: the first class (in admission order) whose footprint
// projection of cfg matches its representative's. An empty footprint
// matches every configuration — correctly so: a compile that read no
// enabled-bits behaves identically under all of them.
func (fc *FootprintClasses) Lookup(cfg bitvec.Vector) (CompileValue, bool) {
	for i := range fc.classes {
		cl := &fc.classes[i]
		if cfg.And(cl.foot).Key() == cl.proj {
			return cl.val, true
		}
	}
	return CompileValue{}, false
}

// Admit registers cfg's class with the outcome of compiling cfg, and
// reports whether a new class was created. Admitting a configuration whose
// class is already present is a no-op (compilation is deterministic, so the
// value would be identical); this keeps Len an exact class count even when
// one parallel batch compiles two configurations of the same class.
func (fc *FootprintClasses) Admit(cfg bitvec.Vector, v CompileValue) bool {
	proj := cfg.And(v.Footprint).Key()
	for i := range fc.classes {
		cl := &fc.classes[i]
		if cl.foot.Equal(v.Footprint) && cl.proj == proj {
			return false
		}
	}
	fc.classes = append(fc.classes, footprintClass{foot: v.Footprint, proj: proj, val: v})
	return true
}
