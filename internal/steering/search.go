package steering

import (
	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/xrand"
)

// CandidateConfigs generates up to m unique candidate rule configurations for
// a job with the given span, by randomized search under the category-
// independence assumption (§5.2):
//
//  1. every rule outside the span is enabled (disabling a rule that cannot
//     affect the plan makes no difference, and rules missed by the span
//     heuristic can still help — footnote 2 of the paper);
//  2. per category, an independently sampled subset of the span rules is
//     disabled;
//  3. duplicates are discarded until m unique configurations exist (or the
//     attempt budget runs out — the span may span fewer than m distinct
//     configurations).
func CandidateConfigs(span bitvec.Vector, rs *cascades.RuleSet, m int, r *xrand.Source) []bitvec.Vector {
	byCat := SpanByCategory(span, rs)
	var catBits [][]int
	for _, cat := range []cascades.Category{cascades.OffByDefault, cascades.OnByDefault, cascades.Implementation} {
		if v, ok := byCat[cat]; ok && !v.IsEmpty() {
			catBits = append(catBits, v.Ones())
		}
	}

	all := bitvec.AllSet(bitvec.Width)
	if m <= 0 {
		return nil
	}
	if len(catBits) == 0 {
		// An empty span admits exactly one configuration; sampling would
		// burn the whole attempt budget rediscovering it.
		return []bitvec.Vector{all}
	}
	seen := make(map[bitvec.Key]bool, m)
	out := make([]bitvec.Vector, 0, m)
	attempts := 0
	var permBuf []int // reused across attempts; PermInto draws exactly like Sample did
	for len(out) < m && attempts < 20*m+100 {
		attempts++
		cfg := all
		for _, bits := range catBits {
			// Sample an independent subset of this category's span rules
			// to disable (a k-prefix of a permutation, as xrand.Sample).
			k := r.Intn(len(bits) + 1)
			permBuf = r.PermInto(permBuf, len(bits))
			for _, idx := range permBuf[:k] {
				cfg.Clear(bits[idx])
			}
		}
		key := cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, cfg)
	}
	return out
}

// RuleDiff is the set of rules whose contribution to the final plan changed
// between the default configuration and a new configuration (Definition 6.1).
// Only changes that actually impacted the query plan appear: rules whose
// signature bit is equal in both plans are excluded.
type RuleDiff struct {
	// OnlyDefault lists rules used by the default plan but not the new one.
	OnlyDefault []int
	// OnlyNew lists rules used by the new plan but not the default one.
	OnlyNew []int
}

// Diff computes the RuleDiff between two rule signatures.
func Diff(defaultSig, newSig bitvec.Vector) RuleDiff {
	return RuleDiff{
		OnlyDefault: defaultSig.AndNot(newSig).Ones(),
		OnlyNew:     newSig.AndNot(defaultSig).Ones(),
	}
}

// DiffVector returns the symmetric-difference bit vector of two signatures,
// used as a model feature (§7.2, "a bit vector representing the RuleDiff").
func DiffVector(defaultSig, newSig bitvec.Vector) bitvec.Vector {
	return defaultSig.Xor(newSig)
}
