package steering

import (
	"fmt"
	"sort"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/workload"
)

// JobGroup is a rule-signature job group (Definition 6.2): the set of jobs
// whose *default* rule signature maps to the same bit vector. Job groups cut
// across templates and inputs — they capture "the code path the query takes
// inside the optimizer", which is why one discovered configuration tends to
// transfer within a group (§6.4).
type JobGroup struct {
	Signature bitvec.Vector
	Jobs      []*workload.Job
}

// GroupKey identifies a job group.
func (g *JobGroup) GroupKey() bitvec.Key { return g.Signature.Key() }

// Grouper assigns jobs to rule-signature job groups by compiling them under
// the default configuration.
type Grouper struct {
	Harness *abtest.Harness
	// cache maps instance hashes to signatures so recurring instances skip
	// recompilation.
	cache map[uint64]bitvec.Vector
}

// NewGrouper returns a Grouper over the harness's optimizer.
func NewGrouper(h *abtest.Harness) *Grouper {
	return &Grouper{Harness: h, cache: make(map[uint64]bitvec.Vector)}
}

// DefaultSignature compiles (or recalls) the job's default rule signature.
func (g *Grouper) DefaultSignature(job *workload.Job) (bitvec.Vector, error) {
	if sig, ok := g.cache[job.InstanceHash]; ok {
		return sig, nil
	}
	// Only the signature is kept; the plan-less compile skips building a
	// physical DAG that would be dropped on the next line.
	res, err := g.Harness.Opt.OptimizeCost(job.Root, g.Harness.Opt.Rules.DefaultConfig())
	if err != nil {
		return bitvec.Vector{}, fmt.Errorf("steering: default signature of %s: %w", job.ID, err)
	}
	g.cache[job.InstanceHash] = res.Signature
	return res.Signature, nil
}

// Group partitions jobs into job groups, ordered by descending size (ties by
// signature hex for determinism).
func (g *Grouper) Group(jobs []*workload.Job) ([]*JobGroup, error) {
	byKey := make(map[bitvec.Key]*JobGroup)
	for _, j := range jobs {
		sig, err := g.DefaultSignature(j)
		if err != nil {
			return nil, err
		}
		k := sig.Key()
		grp, ok := byKey[k]
		if !ok {
			grp = &JobGroup{Signature: sig}
			byKey[k] = grp
		}
		grp.Jobs = append(grp.Jobs, j)
	}
	out := make([]*JobGroup, 0, len(byKey))
	for _, grp := range byKey {
		out = append(out, grp)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Jobs) != len(out[j].Jobs) {
			return len(out[i].Jobs) > len(out[j].Jobs)
		}
		return out[i].Signature.Hex() < out[j].Signature.Hex()
	})
	return out, nil
}

// Comparison is the outcome of applying a configuration to one job versus its
// default.
type Comparison struct {
	Job     *workload.Job
	Default abtest.Trial
	New     abtest.Trial
	// PctChange is the runtime percentage change from default (negative is
	// faster).
	PctChange float64
}

// Extrapolate applies a discovered configuration to each job (typically the
// members of the base job's group across days, §6.4) and compares against the
// default execution. Jobs that fail to compile under cfg are skipped.
func Extrapolate(h *abtest.Harness, cfg bitvec.Vector, jobs []*workload.Job) []Comparison {
	out := make([]Comparison, 0, len(jobs))
	for _, j := range jobs {
		def := h.RunConfig(j.Root, h.Opt.Rules.DefaultConfig(), j.Day, j.ID+"/default")
		if def.Err != nil {
			continue
		}
		alt := h.RunConfig(j.Root, cfg, j.Day, j.ID+"/extrapolated")
		if alt.Err != nil {
			continue
		}
		pct := 0.0
		if def.Metrics.RuntimeSec > 0 {
			pct = 100 * (alt.Metrics.RuntimeSec - def.Metrics.RuntimeSec) / def.Metrics.RuntimeSec
		}
		out = append(out, Comparison{Job: j, Default: def, New: alt, PctChange: pct})
	}
	return out
}
