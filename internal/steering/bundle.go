package steering

import (
	"context"
	"fmt"

	"steerq/internal/bundle"
	"steerq/internal/workload"
)

// BundleReport summarizes one offline bundle build: how the workload's job
// groups resolved into bundle entries.
type BundleReport struct {
	// Jobs is the number of jobs grouped.
	Jobs int
	// Groups is the number of rule-signature job groups (== bundle entries).
	Groups int
	// Steered counts groups whose analysis found an improving configuration.
	Steered int
	// Fallbacks counts groups deliberately pinned to the default
	// configuration (analyzed, no improvement found).
	Fallbacks int
	// Failed counts groups whose representative analysis failed (only
	// possible under fault injection); they are recorded as fallback
	// entries so serving stays safe.
	Failed int
}

// BuildBundle runs the offline "bundle build" step: group the jobs by
// default rule signature (Definition 6.2), analyze one representative per
// group through the full discovery pipeline, and serialize the per-group
// best-configuration decisions into a versioned bundle for the serving
// tier. See BuildBundleCtx.
func (p *Pipeline) BuildBundle(jobs []*workload.Job, version uint64, createdUnix int64) (*bundle.Bundle, BundleReport, error) {
	return p.BuildBundleCtx(context.Background(), jobs, version, createdUnix)
}

// BuildBundleCtx is BuildBundle bounded by a context.
//
// Every group gets exactly one entry: the span-minimized best alternative
// when the analysis found a runtime improvement (see MinimalConfig), and an
// explicit fallback entry pinning the default configuration otherwise —
// including when the representative's analysis failed under fault
// injection, because a bundle must never steer a group on no evidence.
// Groups are analyzed in their deterministic sorted order and the bundle
// encoding is canonical, so the artifact is byte-identical at any Workers
// count (the serving-equivalence suite asserts this).
func (p *Pipeline) BuildBundleCtx(ctx context.Context, jobs []*workload.Job, version uint64, createdUnix int64) (*bundle.Bundle, BundleReport, error) {
	rep := BundleReport{Jobs: len(jobs)}
	g := NewGrouper(p.Harness)
	groups, err := g.Group(jobs)
	if err != nil {
		return nil, rep, fmt.Errorf("steering: bundle build: %w", err)
	}
	rep.Groups = len(groups)
	rs := p.Harness.Opt.Rules
	b := &bundle.Bundle{Version: version, CreatedUnix: createdUnix, Default: rs.DefaultConfig()}
	if len(jobs) > 0 {
		b.Workload = jobs[0].Workload
	}
	for _, grp := range groups {
		e := bundle.Entry{Signature: grp.Signature, Config: rs.DefaultConfig(), Fallback: true}
		a, aerr := p.AnalyzeCtx(ctx, grp.Jobs[0])
		switch {
		case aerr != nil && ctx.Err() != nil:
			return nil, rep, fmt.Errorf("steering: bundle build: %w", aerr)
		case aerr != nil:
			rep.Failed++
		default:
			if cfg, ok := MinimalConfig(a, rs); ok {
				e.Config, e.Fallback = cfg, false
				rep.Steered++
			} else {
				rep.Fallbacks++
			}
		}
		b.Entries = append(b.Entries, e)
	}
	// Encode once to stamp the content checksum, so consumers that load the
	// in-memory bundle directly (tests, the CLI printing the hash) see the
	// same identity a file round trip would.
	if _, err := b.Encode(); err != nil {
		return nil, rep, fmt.Errorf("steering: bundle build: %w", err)
	}
	return b, rep, nil
}
