package steering

import (
	"fmt"
	"sort"

	"steerq/internal/bitvec"
	"steerq/internal/xrand"
)

// IterativeSearch implements the first future-work direction of §8: "use
// feedback from the execution results to guide future iterations of the
// configuration search". Instead of one round of M random candidates and one
// batch of executions, the search runs in rounds; after each round the
// per-rule toggle statistics of the *executed* trials reweight the sampling —
// rules whose flips correlated with runtime improvements are flipped more
// often, rules that correlated with regressions revert toward the default.
type IterativeSearch struct {
	Pipeline *Pipeline

	// Rounds is the number of feedback rounds (>= 1).
	Rounds int
	// PerRound is how many candidates are recompiled per round, and
	// ExecutePerRound how many of them are executed.
	PerRound        int
	ExecutePerRound int
}

// NewIterativeSearch wraps a pipeline with feedback-guided rounds.
func NewIterativeSearch(p *Pipeline) *IterativeSearch {
	return &IterativeSearch{Pipeline: p, Rounds: 3, PerRound: 100, ExecutePerRound: 4}
}

// IterativeResult is the outcome of an iterative search.
type IterativeResult struct {
	// Analysis holds the default trial and span (shared machinery).
	Analysis *Analysis
	// Trials are all executed trials across rounds, in execution order.
	Trials []RoundTrial
	// Best is the best-runtime trial found (nil if none improved).
	Best *RoundTrial
}

// RoundTrial tags a trial with the round that produced it.
type RoundTrial struct {
	Round     int
	Config    bitvec.Vector
	Signature bitvec.Vector
	EstCost   float64
	Runtime   float64
}

// Run performs the feedback-guided search for one job.
func (s *IterativeSearch) Run(a *Analysis) (*IterativeResult, error) {
	p := s.Pipeline
	h := p.Harness
	rs := h.Opt.Rules
	job := a.Job
	def := rs.DefaultConfig()

	res := &IterativeResult{Analysis: a}
	spanBits := a.Span.Ones()
	if len(spanBits) == 0 {
		return res, nil
	}

	// flipWeight[i] is the sampling weight for flipping span rule i away
	// from its default state; starts uniform and is reweighted by feedback.
	flipWeight := make(map[int]float64, len(spanBits))
	for _, id := range spanBits {
		flipWeight[id] = 1
	}

	seen := map[bitvec.Key]bool{def.Key(): true}
	seenSig := map[bitvec.Key]bool{a.Default.Signature.Key(): true}
	rnd := p.Rand.Derive("iterative", job.ID)
	defaultRT := a.Default.Metrics.RuntimeSec

	for round := 0; round < s.Rounds; round++ {
		// Sample candidates: flip each span rule independently with a
		// probability proportional to its weight.
		var cands []Candidate
		attempts := 0
		r := rnd.Derive("round", fmt.Sprint(round))
		for len(cands) < s.PerRound && attempts < 20*s.PerRound {
			attempts++
			cfg := bitvec.AllSet(bitvec.Width)
			for _, id := range spanBits {
				p := flipWeight[id] / (flipWeight[id] + 1)
				if r.Bool(p) {
					cfg.Assign(id, !def.Get(id))
				} else {
					cfg.Assign(id, def.Get(id))
				}
			}
			if seen[cfg.Key()] {
				continue
			}
			seen[cfg.Key()] = true
			c, err := h.Opt.Optimize(job.Root, cfg)
			if err != nil {
				continue
			}
			cands = append(cands, Candidate{Config: cfg, EstCost: c.Cost, Signature: c.Signature})
		}
		// Execute the cheapest distinct-signature candidates.
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].EstCost < cands[j].EstCost })
		executed := 0
		for _, c := range cands {
			if executed >= s.ExecutePerRound {
				break
			}
			if seenSig[c.Signature.Key()] {
				continue
			}
			seenSig[c.Signature.Key()] = true
			executed++
			t := h.RunConfig(job.Root, c.Config, job.Day, fmt.Sprintf("%s/it%d-%d", job.ID, round, executed))
			if t.Err != nil {
				continue
			}
			rt := RoundTrial{
				Round:     round,
				Config:    c.Config,
				Signature: t.Signature,
				EstCost:   t.EstCost,
				Runtime:   t.Metrics.RuntimeSec,
			}
			res.Trials = append(res.Trials, rt)
			if res.Best == nil || rt.Runtime < res.Best.Runtime {
				last := res.Trials[len(res.Trials)-1]
				res.Best = &last
			}
			// Feedback: reward/punish every flipped rule by the trial's
			// relative improvement.
			gain := (defaultRT - rt.Runtime) / defaultRT // >0 is better
			for _, id := range spanBits {
				if c.Config.Get(id) != def.Get(id) {
					w := flipWeight[id] * weightUpdate(gain)
					flipWeight[id] = clampWeight(w)
				}
			}
		}
	}
	if res.Best != nil && res.Best.Runtime >= defaultRT {
		res.Best = nil
	}
	return res, nil
}

// weightUpdate converts a relative runtime gain into a multiplicative weight
// update: a 50% improvement roughly doubles a flip's weight, a 50% regression
// roughly halves it.
func weightUpdate(gain float64) float64 {
	if gain > 1 {
		gain = 1
	}
	if gain < -1 {
		gain = -1
	}
	return 1 + gain
}

func clampWeight(w float64) float64 {
	if w < 0.05 {
		return 0.05
	}
	if w > 20 {
		return 20
	}
	return w
}

// FlipWeights exposes the final per-rule flip probabilities of a search via a
// fresh run — primarily for tests and diagnostics.
func (s *IterativeSearch) FlipWeights(a *Analysis) (map[int]float64, error) {
	// Run reconstructs the weights internally; re-derive them by replaying
	// the trials' flip statistics.
	res, err := s.Run(a)
	if err != nil {
		return nil, err
	}
	def := s.Pipeline.Harness.Opt.Rules.DefaultConfig()
	w := make(map[int]float64)
	for _, id := range a.Span.Ones() {
		w[id] = 1
	}
	defaultRT := a.Default.Metrics.RuntimeSec
	for _, t := range res.Trials {
		gain := (defaultRT - t.Runtime) / defaultRT
		for _, id := range a.Span.Ones() {
			if t.Config.Get(id) != def.Get(id) {
				w[id] = clampWeight(w[id] * weightUpdate(gain))
			}
		}
	}
	return w, nil
}

// Independence implements the second future-work direction of §8:
// "improvements [to the heuristics] can discover independent subsets of
// rules, which will make the space of rule configurations smaller".
//
// Two span rules A and B are judged independent for a job when toggling them
// together produces exactly the composition of toggling them alone: with
// signatures s∅ (default), sA, sB and sAB, independence requires
//
//	sAB == s∅ Δ (s∅ Δ sA) Δ (s∅ Δ sB)    (Δ = symmetric difference)
//
// i.e. the plan changes caused by A and B compose without interaction. The
// prober tests pairs with four compilations each and returns the partition of
// the span into interaction groups; the search space shrinks from 2^|span| to
// the sum of 2^|group| (the §5.2 example: 2^5=32 → 2^2+2^3=12).
type Independence struct {
	// Groups partitions the probed span rules; rules in different groups
	// were observed independent.
	Groups [][]int
	// Compilations counts optimizer invocations spent probing.
	Compilations int
}

// ProbeIndependence partitions a job's span rules into interaction groups.
func ProbeIndependence(p *Pipeline, a *Analysis, r *xrand.Source) (*Independence, error) {
	h := p.Harness
	rs := h.Opt.Rules
	def := rs.DefaultConfig()
	job := a.Job
	bits := a.Span.Ones()
	out := &Independence{}
	if len(bits) == 0 {
		return out, nil
	}

	sig := func(cfg bitvec.Vector) (bitvec.Vector, bool) {
		out.Compilations++
		res, err := h.Opt.Optimize(job.Root, cfg)
		if err != nil {
			return bitvec.Vector{}, false
		}
		return res.Signature, true
	}
	s0, ok := sig(def)
	if !ok {
		return nil, fmt.Errorf("steering: default of %s does not compile", job.ID)
	}
	toggled := func(ids ...int) bitvec.Vector {
		cfg := def
		for _, id := range ids {
			cfg.Assign(id, !def.Get(id))
		}
		return cfg
	}
	single := make(map[int]bitvec.Vector, len(bits))
	for _, id := range bits {
		s, ok := sig(toggled(id))
		if !ok {
			// A rule whose solo toggle breaks compilation interacts with
			// everything (it gates required implementations); give it its
			// own group and skip pair probes.
			continue
		}
		single[id] = s
	}

	// Union-find over span rules; dependent pairs merge.
	parent := make(map[int]int, len(bits))
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, id := range bits {
		parent[id] = id
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < len(bits); i++ {
		for j := i + 1; j < len(bits); j++ {
			x, y := bits[i], bits[j]
			sx, okx := single[x]
			sy, oky := single[y]
			if !okx || !oky {
				union(x, y) // conservatively dependent
				continue
			}
			sxy, ok := sig(toggled(x, y))
			if !ok {
				union(x, y)
				continue
			}
			composed := s0.Xor(s0.Xor(sx)).Xor(s0.Xor(sy))
			if !sxy.Equal(composed) {
				union(x, y)
			}
		}
	}

	groups := make(map[int][]int)
	for _, id := range bits {
		r := find(id)
		groups[r] = append(groups[r], id)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		sort.Ints(groups[r])
		out.Groups = append(out.Groups, groups[r])
	}
	_ = r
	return out, nil
}

// SearchSpace returns the configuration-space sizes before and after the
// independence partition: 2^span versus the sum of per-group subspaces.
func (ind *Independence) SearchSpace(spanSize int) (naive, partitioned float64) {
	naive = pow2(spanSize)
	for _, g := range ind.Groups {
		partitioned += pow2(len(g))
	}
	return naive, partitioned
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}
