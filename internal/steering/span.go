// Package steering implements the paper's contribution on top of the
// simulated SCOPE stack: rule signatures and job spans, randomized
// configuration search, the offline discovery pipeline, RuleDiff, rule-
// signature job groups and cross-day extrapolation.
//
// steerq:hotpath — the candidate stage touches the cache, the footprint
// classifier and the selection loops once per candidate configuration; the
// hotalloc analyzer guards the package against allocation regressions.
package steering

import (
	"errors"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/plan"
)

// JobSpan approximates the job span (Definition 5.1, Algorithm 1): the set
// of non-required rules that can affect the final query plan.
//
// The algorithm starts from a configuration enabling every non-required rule,
// compiles, collects the signature's on rules, disables them and recompiles —
// iterating until no new rules appear or the job no longer compiles. As the
// paper notes (§5.1), this misses rules hidden behind complex dependency
// chains, but finds enough of the span for the configuration search to work.
func JobSpan(opt *cascades.Optimizer, root *plan.Node) (bitvec.Vector, error) {
	return JobSpanFunc(opt.Rules, func(cfg bitvec.Vector) (bitvec.Vector, error) {
		res, err := opt.Optimize(root, cfg)
		if err != nil {
			return bitvec.Vector{}, err
		}
		return res.Signature, nil
	})
}

// JobSpanFunc is JobSpan over an abstract compile step returning the rule
// signature for a configuration. The pipeline passes its cached compile so
// recurring jobs pay for each span iteration at most once.
func JobSpanFunc(rs *cascades.RuleSet, compile func(cfg bitvec.Vector) (bitvec.Vector, error)) (bitvec.Vector, error) {
	nonRequired := bitvec.New(rs.NonRequiredIDs()...)

	var span bitvec.Vector
	config := nonRequired
	for {
		sig, err := compile(config)
		if err != nil {
			if errors.Is(err, cascades.ErrNoPlan) {
				// All implementations of some operator are disabled:
				// nothing more to discover down this path.
				return span, nil
			}
			return bitvec.Vector{}, err
		}
		onRules := sig.And(nonRequired)
		fresh := onRules.AndNot(span)
		if fresh.IsEmpty() {
			return span, nil
		}
		span = span.Or(fresh)
		config = config.AndNot(onRules)
	}
}

// SpanByCategory splits a span into per-category bit vectors, the granularity
// at which the configuration search assumes independence (§5.2).
func SpanByCategory(span bitvec.Vector, rs *cascades.RuleSet) map[cascades.Category]bitvec.Vector {
	out := make(map[cascades.Category]bitvec.Vector)
	for _, id := range span.Ones() {
		ri, ok := rs.Info(id)
		if !ok {
			continue
		}
		v := out[ri.Category]
		v.Set(id)
		out[ri.Category] = v
	}
	return out
}
