package steering_test

import (
	"reflect"
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// TestFootprintSoundnessMetamorphic is the soundness contract the footprint
// memoization rests on: take any configuration, compile it, and flip bits the
// compile never read (rules outside the decision footprint) — an independent
// compile of the mutated configuration must produce a byte-identical result:
// same plan tree, same cost, same signature, same footprint. No-plan verdicts
// must be equally shareable, with matching footprints.
func TestFootprintSoundnessMetamorphic(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	r := xrand.New(2021).Derive("footprint-meta")

	nonRequired := h.Opt.Rules.NonRequiredIDs()
	compiled, noplans := 0, 0
	for trial := 0; trial < 40; trial++ {
		// Alternate densities: mostly-enabled configurations exercise real
		// plans, sparse ones drive the search into no-plan verdicts — the
		// footprint contract must hold for both.
		clearOdds := 4
		if trial%2 == 1 {
			clearOdds = 2
		}
		cfg := bitvec.AllSet(bitvec.Width)
		for _, id := range nonRequired {
			if r.Intn(clearOdds) == 0 {
				cfg.Clear(id)
			}
		}
		res, err := h.Opt.Optimize(job.Root, cfg)
		if res == nil {
			t.Fatalf("trial %d: nil result (err=%v); footprint lost", trial, err)
		}

		// Mutate every bit outside the footprint with probability 1/2: by the
		// soundness claim none of them can matter.
		mut := cfg
		flipped := 0
		for i := 0; i < bitvec.Width; i++ {
			if !res.Footprint.Get(i) && r.Intn(2) == 0 {
				mut.Assign(i, !mut.Get(i))
				flipped++
			}
		}
		if flipped == 0 {
			continue
		}
		res2, err2 := h.Opt.Optimize(job.Root, mut)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("trial %d: outcome flipped after mutating %d off-footprint bits: %v vs %v",
				trial, flipped, err, err2)
		}
		if res2 == nil || !res.Footprint.Equal(res2.Footprint) {
			t.Fatalf("trial %d: footprint changed after off-footprint mutation", trial)
		}
		if err != nil {
			noplans++
			continue
		}
		compiled++
		if res.Cost != res2.Cost {
			t.Fatalf("trial %d: cost %v vs %v", trial, res.Cost, res2.Cost)
		}
		if !res.Signature.Equal(res2.Signature) {
			t.Fatalf("trial %d: signature differs", trial)
		}
		if !reflect.DeepEqual(res.Plan, res2.Plan) {
			t.Fatalf("trial %d: plan tree differs after off-footprint mutation", trial)
		}
	}
	if compiled == 0 {
		t.Fatal("no configuration compiled; metamorphic check is vacuous")
	}
	t.Logf("checked %d compiled + %d no-plan pairs", compiled, noplans)
}

// TestFootprintExcludesRequired: Required rules are always on and never
// consult the configuration, so they must never appear in a footprint — and
// every non-required signature bit must (a rule cannot fire without its
// enabled-bit having been read).
func TestFootprintExcludesRequired(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)

	res, err := h.Opt.Optimize(job.Root, h.Opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Footprint.IsEmpty() {
		t.Fatal("default compile read no enabled-bits; footprint instrumentation is dead")
	}
	var required bitvec.Vector
	for _, ri := range h.Opt.Rules.Infos() {
		if ri.Category == cascades.Required {
			required.Set(ri.ID)
		}
	}
	if !res.Footprint.And(required).IsEmpty() {
		t.Fatalf("footprint contains required rules: %v", res.Footprint.And(required).Ones())
	}
	if fired := res.Signature.AndNot(required); !res.Footprint.Contains(fired) {
		t.Fatalf("signature bits %v fired without being read", fired.AndNot(res.Footprint).Ones())
	}
}

// TestFootprintClasses exercises the classifier's semantics directly:
// admission order wins, admitting an existing class is a no-op, and an empty
// footprint matches every configuration.
func TestFootprintClasses(t *testing.T) {
	var fc steering.FootprintClasses
	if _, ok := fc.Lookup(bitvec.New(1, 2)); ok {
		t.Fatal("empty classifier claimed a hit")
	}

	// Class A: footprint {0,1}, representative has bit 0 set, bit 1 clear.
	vA := steering.CompileValue{Cost: 1, Footprint: bitvec.New(0, 1), OK: true}
	if !fc.Admit(bitvec.New(0, 7), vA) {
		t.Fatal("first admission did not create a class")
	}
	if fc.Admit(bitvec.New(0, 9), vA) {
		t.Fatal("same projection admitted twice")
	}
	if fc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fc.Len())
	}
	// Any config with bit 0 set and bit 1 clear resolves to A, whatever the
	// other bits say.
	if v, ok := fc.Lookup(bitvec.New(0, 42, 200)); !ok || v.Cost != 1 {
		t.Fatalf("projected lookup failed: ok=%v v=%+v", ok, v)
	}
	// Disagreeing on a footprint bit must miss.
	if _, ok := fc.Lookup(bitvec.New(1, 0)); ok {
		t.Fatal("lookup matched despite footprint-bit disagreement")
	}

	// Class B: empty footprint — matches everything not already claimed, in
	// admission order (A first).
	vB := steering.CompileValue{Cost: 2, OK: false}
	if !fc.Admit(bitvec.New(100), vB) {
		t.Fatal("empty-footprint class not created")
	}
	if v, ok := fc.Lookup(bitvec.New(1)); !ok || v.Cost != 2 {
		t.Fatalf("empty footprint should match any config, got ok=%v v=%+v", ok, v)
	}
	if v, ok := fc.Lookup(bitvec.New(0)); !ok || v.Cost != 1 {
		t.Fatalf("admission order violated: got %+v", v)
	}
}
