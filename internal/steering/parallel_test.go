package steering_test

import (
	"testing"

	"steerq/internal/steering"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// fingerprintJob gives the script job the hashes a generated recurring job
// would carry, so the compile cache accepts it.
func fingerprintJob(t *testing.T, j *workload.Job) {
	t.Helper()
	j.TemplateHash = 0xfeed
	j.InstanceHash = 0xbeef
	j.InputsHash = 0xcafe
}

func analyzeWith(t *testing.T, workers int, cache *steering.CompileCache) *steering.Analysis {
	t.Helper()
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	fingerprintJob(t, job)
	p := steering.NewPipeline(h, xrand.New(11).Derive("par-test"))
	p.MaxCandidates = 80
	p.ExecutePerJob = 5
	p.Workers = workers
	p.Cache = cache
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return a
}

func requireSameAnalysis(t *testing.T, label string, a, b *steering.Analysis) {
	t.Helper()
	if !a.Span.Equal(b.Span) {
		t.Fatalf("%s: span differs: %v vs %v", label, a.Span, b.Span)
	}
	if a.Default.Signature != b.Default.Signature || a.Default.EstCost != b.Default.EstCost ||
		a.Default.Metrics != b.Default.Metrics {
		t.Fatalf("%s: default trial differs", label)
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("%s: candidate count %d vs %d", label, len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		if ca.Config != cb.Config || ca.EstCost != cb.EstCost || ca.Signature != cb.Signature {
			t.Fatalf("%s: candidate %d differs: %+v vs %+v", label, i, ca, cb)
		}
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("%s: selected count %d vs %d", label, len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		if a.Selected[i].Config != b.Selected[i].Config {
			t.Fatalf("%s: selection %d differs", label, i)
		}
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial count %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Config != tb.Config || ta.Signature != tb.Signature ||
			ta.EstCost != tb.EstCost || ta.Metrics != tb.Metrics {
			t.Fatalf("%s: trial %d differs: %+v vs %+v", label, i, ta, tb)
		}
	}
}

// TestPipelineParallelDeterminism is the determinism contract: candidates,
// selections, signatures and trial metrics are bit-for-bit identical at any
// worker count, with and without the compile cache.
func TestPipelineParallelDeterminism(t *testing.T) {
	base := analyzeWith(t, 1, nil)
	if len(base.Candidates) == 0 || len(base.Trials) == 0 {
		t.Fatal("serial baseline produced no candidates/trials; test is vacuous")
	}
	for _, workers := range []int{2, 8} {
		requireSameAnalysis(t, "workers", base, analyzeWith(t, workers, nil))
	}
	requireSameAnalysis(t, "cache+serial", base, analyzeWith(t, 1, steering.NewCompileCache()))
	requireSameAnalysis(t, "cache+parallel", base, analyzeWith(t, 8, steering.NewCompileCache()))
}

// TestCompileCacheReuse checks that a second recompilation of the same job is
// served from the cache and still yields identical results.
func TestCompileCacheReuse(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	fingerprintJob(t, job)
	cache := steering.NewCompileCache()
	p := steering.NewPipeline(h, xrand.New(11).Derive("cache-test"))
	p.MaxCandidates = 40
	p.Workers = 4
	p.Cache = cache

	a1, err := p.Recompile(job)
	if err != nil {
		t.Fatal(err)
	}
	first := cache.Stats()
	if first.Entries == 0 || first.Misses == 0 {
		t.Fatalf("first pass should populate the cache, got %+v", first)
	}
	a2, err := p.Recompile(job)
	if err != nil {
		t.Fatal(err)
	}
	second := cache.Stats()
	if second.Misses != first.Misses {
		t.Fatalf("second pass missed the cache: %d -> %d misses", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Fatalf("second pass recorded no hits: %+v -> %+v", first, second)
	}
	if !a1.Span.Equal(a2.Span) || len(a1.Candidates) != len(a2.Candidates) {
		t.Fatal("cached recompilation differs from fresh one")
	}
	for i := range a1.Candidates {
		if a1.Candidates[i] != a2.Candidates[i] {
			t.Fatalf("cached candidate %d differs", i)
		}
	}
}

// TestCompileCacheSkipsUnfingerprintedJobs: ad-hoc jobs without template /
// instance / input hashes must bypass the cache — an all-zero key would alias
// every script job onto one entry.
func TestCompileCacheSkipsUnfingerprintedJobs(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat) // zero hashes
	cache := steering.NewCompileCache()
	p := steering.NewPipeline(h, xrand.New(11).Derive("cache-skip"))
	p.MaxCandidates = 20
	p.Cache = cache
	if _, err := p.Recompile(job); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("unfingerprinted job touched the cache: %+v", st)
	}
}
