package steering

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/par"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// Candidate is one recompiled (not executed) rule configuration for a job.
type Candidate struct {
	Config    bitvec.Vector
	EstCost   float64
	Signature bitvec.Vector
}

// Analysis is the pipeline's per-job record.
type Analysis struct {
	Job *workload.Job

	// Default holds the compiled and executed default-configuration trial.
	Default abtest.Trial

	// Span is the job span found by Algorithm 1.
	Span bitvec.Vector

	// Candidates are the successfully recompiled candidate configurations
	// (compile failures are dropped — §4 expects them).
	Candidates []Candidate

	// Selected are the configurations chosen for execution (the cheapest
	// by estimated cost, deduplicated by signature).
	Selected []Candidate

	// Trials are the executions of Selected, aligned by index. Under fault
	// injection a trial whose configuration failed persistently is replaced
	// by a copy of Default with FellBack set.
	Trials []abtest.Trial

	// Robustness tallies the injected-fault handling this analysis needed:
	// retries, timeouts, corrupted compiles and fallbacks. Always zero when
	// injection is off. Accumulated serially in batch order, so it is
	// identical at any worker count.
	Robustness faults.Record

	// Footprint reports how far footprint memoization collapsed the
	// candidate stage: of Candidates generated configurations, only
	// Compiled went through the optimizer; the rest resolved against an
	// equivalence class (Avoided), seeded either by a compile in this
	// analysis or by a compile-cache hit (CacheSeeded).
	Footprint FootprintStats

	// Sched summarizes the candidate stage's scheduling. Steals are
	// diagnostic — which worker reached an item first is timing-dependent —
	// and are deliberately excluded from the determinism contract; every
	// other field is a function of the batch sequence and so identical at
	// any worker count.
	Sched SchedStats
}

// SchedStats aggregates work-stealing scheduler activity over the candidate
// stage (and, through Add, over whole workloads in steerq-bench).
type SchedStats struct {
	// Items counts compiles dispatched through the scheduler.
	Items int
	// Steals counts cross-worker steals (diagnostic; see Analysis.Sched).
	Steals uint64
	// Merges counts serial merge phases (one per compile batch).
	Merges int
	// MaxWorkers is the widest resolved worker count any batch ran with.
	MaxWorkers int
}

// Add accumulates o into s (for workload-level reporting).
func (s *SchedStats) Add(o SchedStats) {
	s.Items += o.Items
	s.Steals += o.Steals
	s.Merges += o.Merges
	if o.MaxWorkers > s.MaxWorkers {
		s.MaxWorkers = o.MaxWorkers
	}
}

// FootprintStats summarizes the equivalence-class collapse of one candidate
// stage (see FootprintClasses).
type FootprintStats struct {
	// Candidates is the number of candidate configurations generated.
	Candidates int
	// Classes is the number of distinct equivalence classes discovered.
	Classes int
	// Compiled is the number of candidates actually sent through the
	// optimizer (including faulted attempts).
	Compiled int
	// CacheSeeded counts classes whose representative came from the
	// compile cache rather than a fresh compile.
	CacheSeeded int
	// Avoided counts candidates resolved without compiling: class or cache.
	Avoided int
}

// Add accumulates o into s (for workload-level reporting).
func (s *FootprintStats) Add(o FootprintStats) {
	s.Candidates += o.Candidates
	s.Classes += o.Classes
	s.Compiled += o.Compiled
	s.CacheSeeded += o.CacheSeeded
	s.Avoided += o.Avoided
}

// Pipeline is the offline discovery pipeline of §5–6: span computation,
// randomized candidate search, recompilation, heuristic selection and
// selective A/B execution. Fault tolerance — injection, retry policy and
// per-attempt timeouts — is configured on the Harness and honored at every
// compile and execution site here.
type Pipeline struct {
	Harness *abtest.Harness
	Rand    *xrand.Source

	// MaxCandidates is M, the number of candidate configurations to
	// recompile per job (the paper uses up to 1000).
	MaxCandidates int

	// ExecutePerJob is how many recompiled candidates are executed (the
	// paper executes the 10 cheapest).
	ExecutePerJob int

	// Workers bounds the goroutines recompiling candidates. Zero resolves
	// through STEERQ_WORKERS and then GOMAXPROCS (see internal/par); any
	// value yields bit-for-bit identical analyses — results are slotted by
	// candidate index, each job draws from its own derived RNG stream, and
	// fault decisions are keyed by content, not schedule.
	Workers int

	// Cache, when non-nil, memoizes {cost, signature} per (job fingerprint,
	// config) so recurring jobs skip identical recompilations. Safe to share
	// across goroutines and across pipelines of one workload. Faulted
	// compilations — injected failures, timeouts, corrupted plans — are
	// never cached; only validated successes and genuine no-plan outcomes
	// are.
	Cache *CompileCache

	// Obs, when non-nil, records per-stage spans (pipeline.recompile,
	// pipeline.span_search, pipeline.execute — tagged by job ID, never by
	// schedule) and candidate/trial outcome counters, and mirrors the
	// serially merged faults.Record into robustness counters. All recorded
	// state is commutative or content-keyed, so snapshots stay bit-identical
	// at any Workers value.
	Obs *obs.Registry

	// schedMu guards the lazily built scheduler plumbing below; a Pipeline
	// may serve concurrent Analyze calls, and each checks arenas out for
	// the duration of its candidate stage.
	schedMu sync.Mutex
	// arenaFree is the free list of per-worker compile arenas. Arenas are
	// keyed by scheduler worker identity while checked out, so a compile
	// never touches the cascades scratch pool from the fan-out path.
	arenaFree []*cascades.Scratch
	// schedObs is the pipeline's scheduler telemetry, resolved once
	// against Obs.
	schedObs *par.SchedObs
}

// NewPipeline returns a pipeline with the paper's parameters (M=1000, 10
// executions per job).
func NewPipeline(h *abtest.Harness, r *xrand.Source) *Pipeline {
	return &Pipeline{Harness: h, Rand: r, MaxCandidates: 1000, ExecutePerJob: 10}
}

// Analyze runs the full pipeline for one job: default execution, span,
// candidate generation, recompilation, selection of the cheapest plans and
// their execution.
func (p *Pipeline) Analyze(job *workload.Job) (*Analysis, error) {
	return p.AnalyzeCtx(context.Background(), job)
}

// AnalyzeCtx is Analyze bounded by a context; cancellation surfaces as the
// returned error once in-flight compile attempts notice it.
func (p *Pipeline) AnalyzeCtx(ctx context.Context, job *workload.Job) (*Analysis, error) {
	a, err := p.RecompileCtx(ctx, job)
	if err != nil {
		return nil, err
	}
	p.ExecuteCtx(ctx, a)
	return a, nil
}

// Recompile runs the cheap half of the pipeline — everything except
// executing the alternatives: the default trial, the span, and the M
// recompiled candidates. Figure 4 is produced from this stage alone.
func (p *Pipeline) Recompile(job *workload.Job) (*Analysis, error) {
	return p.RecompileCtx(context.Background(), job)
}

// RecompileCtx is Recompile bounded by a context.
func (p *Pipeline) RecompileCtx(ctx context.Context, job *workload.Job) (*Analysis, error) {
	ctx, sp := p.Obs.StartSpan(ctx, "pipeline.recompile", job.ID)
	a, err := p.recompileCtx(ctx, job)
	sp.EndErr(err)
	if a != nil {
		mirrorRobustness(p.Obs, a.Robustness)
	}
	return a, err
}

func (p *Pipeline) recompileCtx(ctx context.Context, job *workload.Job) (*Analysis, error) {
	h := p.Harness
	a := &Analysis{Job: job}
	def := h.RunConfigCtx(ctx, job.Root, h.Opt.Rules.DefaultConfig(), job.Day, job.ID+"/default", &a.Robustness)
	if def.Err != nil {
		return nil, fmt.Errorf("steering: default compile of %s: %w", job.ID, def.Err)
	}
	a.Default = def
	// Span probing is serial, so a plain counter gives each probe a stable
	// tag independent of worker count.
	probe := 0
	_, spanSp := p.Obs.StartSpan(ctx, "pipeline.span_search", job.ID)
	span, err := JobSpanFunc(h.Opt.Rules, func(cfg bitvec.Vector) (bitvec.Vector, error) {
		tag := fmt.Sprintf("%s/span%d", job.ID, probe)
		probe++
		v, cerr := p.compile(ctx, job, cfg, tag, &a.Robustness)
		if cerr != nil {
			return bitvec.Vector{}, cerr
		}
		return v.Signature, nil
	})
	spanSp.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("steering: span of %s: %w", job.ID, err)
	}
	a.Span = span
	// Config generation stays serial on the job's derived stream; only the
	// pure compile calls fan out below.
	r := p.Rand.Derive("job", job.ID)
	cfgs := CandidateConfigs(span, h.Opt.Rules, p.MaxCandidates, r)
	// Candidate outcomes are per-candidate counters, not spans: M can be
	// 1000, and an atomic add per candidate keeps the volume O(1) in memory.
	// Pre-resolving the three counters keeps registry lookups out of the
	// fan-out.
	candCounters := map[string]*obs.Counter{
		"compiled": p.Obs.Counter("steerq_pipeline_candidates_total", "outcome", "compiled"),
		"noplan":   p.Obs.Counter("steerq_pipeline_candidates_total", "outcome", "noplan"),
		"faulted":  p.Obs.Counter("steerq_pipeline_candidates_total", "outcome", "faulted"),
	}
	p.resolveCandidates(ctx, job, cfgs, a, candCounters)
	p.Obs.Counter("steerq_pipeline_footprint_classes_total").Add(uint64(a.Footprint.Classes))
	p.Obs.Counter("steerq_pipeline_compiles_avoided_total").Add(uint64(a.Footprint.Avoided))
	return a, nil
}

// classBatch is how many unresolved candidates each discovery round
// compiles in parallel. Fixed — never derived from Workers — so the class
// discovery sequence, and with it every shared value and counter, is
// byte-identical at any worker count. 16 keeps even an 8-worker pool busy
// while bounding the compiles wasted on candidates that round N+1 would
// have resolved against round N's classes.
const classBatch = 16

// Merge-phase metric names and histogram bounds. Durations read the
// registry clock, so frozen-clock runs record deterministic zeros exactly
// like span durations.
const (
	mergeSecondsMetric = "steerq_pipeline_merge_seconds"
	mergesMetric       = "steerq_pipeline_merges_total"
)

var mergeSecondsBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// checkoutArenas takes w compile arenas off the pipeline's free list
// (growing it on first use); returnArenas gives them back. Checked-out
// arenas are indexed by scheduler worker identity, whose exclusivity
// guarantee replaces locking.
func (p *Pipeline) checkoutArenas(w int) []*cascades.Scratch {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	out := make([]*cascades.Scratch, w)
	for i := range out {
		if n := len(p.arenaFree); n > 0 {
			out[i] = p.arenaFree[n-1]
			p.arenaFree = p.arenaFree[:n-1]
		} else {
			out[i] = cascades.NewScratch()
		}
	}
	return out
}

func (p *Pipeline) returnArenas(arenas []*cascades.Scratch) {
	p.schedMu.Lock()
	p.arenaFree = append(p.arenaFree, arenas...)
	p.schedMu.Unlock()
}

// schedTelemetry resolves (once) the scheduler's obs instruments against
// the pipeline's registry; nil when the pipeline is uninstrumented.
func (p *Pipeline) schedTelemetry() *par.SchedObs {
	if p.Obs == nil {
		return nil
	}
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	if p.schedObs == nil {
		p.schedObs = par.NewSchedObs(p.Obs)
	}
	return p.schedObs
}

// mergeEntry is one compiled candidate parked in its worker's write buffer
// until the serial merge phase: the batch index it belongs to, the compile
// outcome, and the fault record the attempt accumulated.
type mergeEntry struct {
	bi  int
	v   CompileValue
	err error
	rec faults.Record
}

// resolveCandidates resolves every candidate configuration to a compile
// outcome, compiling only one representative per footprint equivalence
// class (see FootprintClasses). Rounds alternate a serial sweep — resolve
// pending candidates against discovered classes, then against the compile
// cache — with a work-stealing parallel compile of the first classBatch
// still-unresolved candidates, and a serial merge phase.
//
// The parallel phase is write-free on every shared structure: each worker
// compiles through its own checked-out arena and parks outcomes in its own
// write buffer (the worker-identity exclusivity of par.Run is the lock).
// The merge phase then drains the buffers in worker-index order, scatters
// them back into batch order, and applies them in ascending candidate
// index — the exact order a serial run produces — pushing all cache writes
// through one PutBatch. Classes, counters, fault records and the cache's
// CLOCK eviction order therefore never see worker count or schedule, and
// heavier candidates (more enabled rules) are scheduled first via the
// priority hook without affecting any of it.
func (p *Pipeline) resolveCandidates(ctx context.Context, job *workload.Job, cfgs []bitvec.Vector, a *Analysis, candCounters map[string]*obs.Counter) {
	a.Footprint.Candidates = len(cfgs)
	fp, cacheable := jobFingerprint(job)
	cacheable = cacheable && p.Cache != nil
	var classes FootprintClasses
	resolved := make([]Candidate, len(cfgs))
	okFlags := make([]bool, len(cfgs))
	record := func(i int, v CompileValue) {
		if !v.OK {
			candCounters["noplan"].Inc()
			return
		}
		candCounters["compiled"].Inc()
		resolved[i] = Candidate{Config: cfgs[i], EstCost: v.Cost, Signature: v.Signature}
		okFlags[i] = true
	}

	workers := par.Workers(p.Workers)
	if workers > classBatch {
		workers = classBatch
	}
	arenas := p.checkoutArenas(workers)
	defer p.returnArenas(arenas)
	schedObs := p.schedTelemetry()
	mergeHist := p.Obs.Histogram(mergeSecondsMetric, mergeSecondsBounds)
	mergeCount := p.Obs.Counter(mergesMetric)
	clock := p.Obs.Clock()

	var slots [classBatch]mergeEntry
	bufs := make([][]mergeEntry, workers)
	var writes []CacheWrite
	pending := make([]int, len(cfgs))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		// The sweep overwrites pending in place: the write index never
		// passes the read index, and each round only keeps the tail.
		unresolved := pending[:0]
		for _, i := range pending {
			if v, ok := classes.Lookup(cfgs[i]); ok {
				a.Footprint.Avoided++
				record(i, v)
				continue
			}
			if cacheable {
				if v, ok := p.Cache.Get(fp, cfgs[i]); ok {
					if classes.Admit(cfgs[i], v) {
						a.Footprint.Classes++
						a.Footprint.CacheSeeded++
					}
					a.Footprint.Avoided++
					record(i, v)
					continue
				}
			}
			unresolved = append(unresolved, i)
		}
		if len(unresolved) == 0 {
			break
		}
		n := classBatch
		if n > len(unresolved) {
			n = len(unresolved)
		}
		batch := unresolved[:n]
		// Parallel phase: workers compile into their own buffers through
		// their own arenas; nothing shared is written.
		for w := range bufs {
			bufs[w] = bufs[w][:0]
		}
		st, _ := par.Run(workers, len(batch), par.Options{
			Priority: func(bi int) int64 { return int64(cfgs[batch[bi]].Count()) },
			Obs:      schedObs,
		}, func(worker, bi int) error {
			e := mergeEntry{bi: bi}
			tag := fmt.Sprintf("%s/cand%d", job.ID, batch[bi])
			e.v, e.err = p.compileFresh(ctx, job, cfgs[batch[bi]], tag, &e.rec, arenas[worker])
			bufs[worker] = append(bufs[worker], e)
			return nil
		})
		a.Sched.Items += st.Items
		a.Sched.Steals += st.Steals
		if st.Workers > a.Sched.MaxWorkers {
			a.Sched.MaxWorkers = st.Workers
		}

		// Merge phase: worker-index order for collection, ascending
		// candidate index for application.
		mergeStart := clock()
		for w := range bufs {
			for _, e := range bufs[w] {
				slots[e.bi] = e
			}
		}
		writes = writes[:0]
		for bi := range batch {
			s := &slots[bi]
			i := batch[bi]
			a.Robustness.Add(s.rec)
			a.Footprint.Compiled++
			if s.err != nil && !errors.Is(s.err, cascades.ErrNoPlan) {
				// Faulted compile: no footprint to trust, nothing shared.
				candCounters["faulted"].Inc()
				continue
			}
			if classes.Admit(cfgs[i], s.v) {
				a.Footprint.Classes++
			}
			if cacheable {
				writes = append(writes, CacheWrite{Config: cfgs[i], Value: s.v})
			}
			record(i, s.v)
		}
		p.Cache.PutBatch(fp, writes)
		a.Sched.Merges++
		mergeCount.Inc()
		mergeHist.Observe(clock().Sub(mergeStart).Seconds())
		pending = unresolved[n:]
	}
	a.Candidates = make([]Candidate, 0, len(cfgs))
	for i := range cfgs {
		if okFlags[i] {
			a.Candidates = append(a.Candidates, resolved[i])
		}
	}
}

// compile optimizes job under cfg through the cache, retrying injected
// faults per the harness policy. Failed compilations surface as
// cascades.ErrNoPlan exactly as from Optimize, whether fresh or cached;
// fault-injected errors surface wrapped and are never cached. Serial
// callers only (span probes): the cache traffic must stay ordered.
func (p *Pipeline) compile(ctx context.Context, job *workload.Job, cfg bitvec.Vector, tag string, rec *faults.Record) (CompileValue, error) {
	fp, cacheable := jobFingerprint(job)
	cacheable = cacheable && p.Cache != nil
	if cacheable {
		if v, ok := p.Cache.Get(fp, cfg); ok {
			if !v.OK {
				return v, cascades.ErrNoPlan
			}
			return v, nil
		}
	}
	v, err := p.compileFresh(ctx, job, cfg, tag, rec, nil)
	if err != nil {
		// Only the optimizer's own no-plan verdict is negative-cached;
		// injected failures, timeouts and corruption must not poison the
		// cache for later (possibly fault-free) lookups.
		if cacheable && errors.Is(err, cascades.ErrNoPlan) {
			p.Cache.Put(fp, cfg, v)
		}
		return v, err
	}
	if cacheable {
		p.Cache.Put(fp, cfg, v)
	}
	return v, nil
}

// compileFresh runs one cache-free compile of job under cfg, retrying
// injected faults per the harness policy. On success the returned value
// carries the compile's decision footprint; a genuine no-plan outcome
// (cascades.ErrNoPlan) returns OK=false but still carries the footprint, so
// negatives share across equivalence classes exactly like successes.
//
// arena, when non-nil, is the caller's worker-local compile arena; nil
// falls back to the cascades scratch pool (the serial span-probe path).
func (p *Pipeline) compileFresh(ctx context.Context, job *workload.Job, cfg bitvec.Vector, tag string, rec *faults.Record, arena *cascades.Scratch) (CompileValue, error) {
	h := p.Harness
	pol := faults.PolicyOrDefault(h.Retry, h.Faults)
	// Candidate resolution keeps only the costed verdict, so skip plan
	// materialization — the compile's single largest allocation — unless
	// fault injection is active: corruption and validation target the plan
	// and must keep seeing one.
	buildPlan := h.Faults.Active()
	var res *cascades.Result
	_, err := pol.Do(ctx, faults.SiteCompile, h.Faults.RetryRand(faults.SiteCompile, tag), rec,
		func(actx context.Context, attempt int) error {
			ictx, cancel := par.ItemContext(actx, h.CompileTimeout)
			defer cancel()
			r, cerr := h.Faults.CompileAttempt(ictx, tag, attempt, func() (*cascades.Result, error) {
				if buildPlan {
					return h.Opt.OptimizeInto(arena, job.Root, cfg)
				}
				return h.Opt.OptimizeCostInto(arena, job.Root, cfg)
			})
			if r != nil {
				// Optimize reports a result even for its no-plan verdict;
				// capture it so the failing footprint survives the error.
				res = r
			}
			return cerr
		})
	if err != nil {
		v := CompileValue{}
		if res != nil && errors.Is(err, cascades.ErrNoPlan) {
			v.Footprint = res.Footprint
		}
		return v, err
	}
	return CompileValue{Cost: res.Cost, Signature: res.Signature, Footprint: res.Footprint, OK: true}, nil
}

// Execute selects the cheapest recompiled candidates (deduplicated by rule
// signature, so the executed set spans distinct plans) and runs them through
// the A/B harness.
func (p *Pipeline) Execute(a *Analysis) {
	p.ExecuteCtx(context.Background(), a)
}

// ExecuteCtx is Execute bounded by a context. Under fault injection, a
// selected trial that still fails after the retry budget degrades gracefully:
// the pipeline falls back to the already-executed default trial (marked
// FellBack) and counts the fallback in a.Robustness — the steered job runs,
// just without its steering.
func (p *Pipeline) ExecuteCtx(ctx context.Context, a *Analysis) {
	ctx, sp := p.Obs.StartSpan(ctx, "pipeline.execute", a.Job.ID)
	before := a.Robustness
	defer func() {
		sp.End(obs.OutcomeOK)
		mirrorRobustness(p.Obs, recordDelta(a.Robustness, before))
	}()
	cands := append([]Candidate(nil), a.Candidates...)
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].EstCost < cands[j].EstCost })
	seen := map[bitvec.Key]bool{a.Default.Signature.Key(): true}
	for _, c := range cands {
		if len(a.Selected) >= p.ExecutePerJob {
			break
		}
		k := c.Signature.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		a.Selected = append(a.Selected, c)
	}
	h := p.Harness
	for i, c := range a.Selected {
		t := h.RunConfigCtx(ctx, a.Job.Root, c.Config, a.Job.Day, fmt.Sprintf("%s/alt%d", a.Job.ID, i), &a.Robustness)
		if t.Err != nil && h.Faults.Active() {
			fb := a.Default
			fb.Attempts = t.Attempts
			fb.FellBack = true
			a.Robustness.Fallbacks++
			t = fb
		}
		p.Obs.Counter("steerq_pipeline_trials_total", "outcome", trialOutcome(t.Err, t.FellBack)).Inc()
		a.Trials = append(a.Trials, t)
	}
}

// Metric selects which §3.1.2 metric a comparison optimizes.
type Metric int

// Metrics of interest (§3.1.2).
const (
	MetricRuntime Metric = iota
	MetricCPU
	MetricIO
)

var metricNames = [...]string{"runtime", "cpu-time", "io-time"}

func (m Metric) String() string { return metricNames[m] }

// value extracts the metric from a trial.
func (m Metric) value(t *abtest.Trial) float64 {
	switch m {
	case MetricCPU:
		return t.Metrics.CPUSec
	case MetricIO:
		return t.Metrics.IOTimeSec
	}
	return t.Metrics.RuntimeSec
}

// BestAlternative returns the executed trial with the lowest value of the
// metric, or nil when nothing was executed. Fallback trials are skipped:
// they duplicate the default and must not masquerade as an improvement.
func (a *Analysis) BestAlternative(m Metric) *abtest.Trial {
	var best *abtest.Trial
	for i := range a.Trials {
		t := &a.Trials[i]
		if t.Err != nil || t.FellBack {
			continue
		}
		if best == nil || m.value(t) < m.value(best) {
			best = t
		}
	}
	return best
}

// BestConfig returns the trial (including the default) with the lowest value
// of the metric: "always choose the best known rule configuration" (Table 3
// includes the default, since some jobs improve under none of the
// alternatives).
func (a *Analysis) BestConfig(m Metric) *abtest.Trial {
	best := &a.Default
	if alt := a.BestAlternative(m); alt != nil && m.value(alt) < m.value(best) {
		best = alt
	}
	return best
}

// PercentChange returns the percentage change of the trial's metric from the
// default (negative is an improvement; bounded below by -100%, unbounded
// above, exactly as Figure 6 notes).
func (a *Analysis) PercentChange(t *abtest.Trial, m Metric) float64 {
	d := m.value(&a.Default)
	if d == 0 {
		return 0
	}
	return 100 * (m.value(t) - d) / d
}

// CheaperCandidates reports candidates whose estimated cost undercuts the
// default by at least frac (e.g. 0.1 = 10% cheaper) — heuristic (1) of §6.1.
func (a *Analysis) CheaperCandidates(frac float64) []Candidate {
	var out []Candidate
	for _, c := range a.Candidates {
		if c.EstCost < a.Default.EstCost*(1-frac) {
			out = append(out, c)
		}
	}
	return out
}

// LowCostHighRuntime reports whether the job sits in Figure 5's top-left
// corner: the optimizer expected it to be fast (estimated cost below
// costCeil) but it ran long (runtime above runtimeFloor seconds) — heuristic
// (2) of §6.1.
func (a *Analysis) LowCostHighRuntime(costCeil, runtimeFloor float64) bool {
	return a.Default.EstCost < costCeil && a.Default.Metrics.RuntimeSec > runtimeFloor
}
