package steering

import (
	"errors"
	"fmt"
	"sort"

	"steerq/internal/abtest"
	"steerq/internal/bitvec"
	"steerq/internal/cascades"
	"steerq/internal/par"
	"steerq/internal/workload"
	"steerq/internal/xrand"
)

// Candidate is one recompiled (not executed) rule configuration for a job.
type Candidate struct {
	Config    bitvec.Vector
	EstCost   float64
	Signature bitvec.Vector
}

// Analysis is the pipeline's per-job record.
type Analysis struct {
	Job *workload.Job

	// Default holds the compiled and executed default-configuration trial.
	Default abtest.Trial

	// Span is the job span found by Algorithm 1.
	Span bitvec.Vector

	// Candidates are the successfully recompiled candidate configurations
	// (compile failures are dropped — §4 expects them).
	Candidates []Candidate

	// Selected are the configurations chosen for execution (the cheapest
	// by estimated cost, deduplicated by signature).
	Selected []Candidate

	// Trials are the executions of Selected, aligned by index.
	Trials []abtest.Trial
}

// Pipeline is the offline discovery pipeline of §5–6: span computation,
// randomized candidate search, recompilation, heuristic selection and
// selective A/B execution.
type Pipeline struct {
	Harness *abtest.Harness
	Rand    *xrand.Source

	// MaxCandidates is M, the number of candidate configurations to
	// recompile per job (the paper uses up to 1000).
	MaxCandidates int

	// ExecutePerJob is how many recompiled candidates are executed (the
	// paper executes the 10 cheapest).
	ExecutePerJob int

	// Workers bounds the goroutines recompiling candidates. Zero resolves
	// through STEERQ_WORKERS and then GOMAXPROCS (see internal/par); any
	// value yields bit-for-bit identical analyses — results are slotted by
	// candidate index and each job draws from its own derived RNG stream.
	Workers int

	// Cache, when non-nil, memoizes {cost, signature} per (job fingerprint,
	// config) so recurring jobs skip identical recompilations. Safe to share
	// across goroutines and across pipelines of one workload.
	Cache *CompileCache
}

// NewPipeline returns a pipeline with the paper's parameters (M=1000, 10
// executions per job).
func NewPipeline(h *abtest.Harness, r *xrand.Source) *Pipeline {
	return &Pipeline{Harness: h, Rand: r, MaxCandidates: 1000, ExecutePerJob: 10}
}

// Analyze runs the full pipeline for one job: default execution, span,
// candidate generation, recompilation, selection of the cheapest plans and
// their execution.
func (p *Pipeline) Analyze(job *workload.Job) (*Analysis, error) {
	a, err := p.Recompile(job)
	if err != nil {
		return nil, err
	}
	p.Execute(a)
	return a, nil
}

// Recompile runs the cheap half of the pipeline — everything except
// executing the alternatives: the default trial, the span, and the M
// recompiled candidates. Figure 4 is produced from this stage alone.
func (p *Pipeline) Recompile(job *workload.Job) (*Analysis, error) {
	h := p.Harness
	def := h.RunConfig(job.Root, h.Opt.Rules.DefaultConfig(), job.Day, job.ID+"/default")
	if def.Err != nil {
		return nil, fmt.Errorf("steering: default compile of %s: %w", job.ID, def.Err)
	}
	span, err := JobSpanFunc(h.Opt.Rules, func(cfg bitvec.Vector) (bitvec.Vector, error) {
		v, cerr := p.compile(job, cfg)
		if cerr != nil {
			return bitvec.Vector{}, cerr
		}
		return v.Signature, nil
	})
	if err != nil {
		return nil, fmt.Errorf("steering: span of %s: %w", job.ID, err)
	}
	// Config generation stays serial on the job's derived stream; only the
	// pure Optimize calls fan out below.
	r := p.Rand.Derive("job", job.ID)
	cfgs := CandidateConfigs(span, h.Opt.Rules, p.MaxCandidates, r)
	a := &Analysis{Job: job, Default: def, Span: span}
	type slot struct {
		c  Candidate
		ok bool
	}
	slots, _ := par.Map(p.Workers, cfgs, func(i int, cfg bitvec.Vector) (slot, error) {
		v, cerr := p.compile(job, cfg)
		if cerr != nil {
			return slot{}, nil // configurations that do not compile are expected
		}
		return slot{c: Candidate{Config: cfg, EstCost: v.Cost, Signature: v.Signature}, ok: true}, nil
	})
	a.Candidates = make([]Candidate, 0, len(slots))
	for _, s := range slots {
		if s.ok {
			a.Candidates = append(a.Candidates, s.c)
		}
	}
	return a, nil
}

// compile optimizes job under cfg through the cache. Failed compilations
// surface as cascades.ErrNoPlan exactly as from Optimize, whether fresh or
// cached.
func (p *Pipeline) compile(job *workload.Job, cfg bitvec.Vector) (CompileValue, error) {
	key, cacheable := jobKey(job, cfg)
	cacheable = cacheable && p.Cache != nil
	if cacheable {
		if v, ok := p.Cache.Get(key); ok {
			if !v.OK {
				return CompileValue{}, cascades.ErrNoPlan
			}
			return v, nil
		}
	}
	res, err := p.Harness.Opt.Optimize(job.Root, cfg)
	if err != nil {
		if cacheable && errors.Is(err, cascades.ErrNoPlan) {
			p.Cache.Put(key, CompileValue{OK: false})
		}
		return CompileValue{}, err
	}
	v := CompileValue{Cost: res.Cost, Signature: res.Signature, OK: true}
	if cacheable {
		p.Cache.Put(key, v)
	}
	return v, nil
}

// Execute selects the cheapest recompiled candidates (deduplicated by rule
// signature, so the executed set spans distinct plans) and runs them through
// the A/B harness.
func (p *Pipeline) Execute(a *Analysis) {
	cands := append([]Candidate(nil), a.Candidates...)
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].EstCost < cands[j].EstCost })
	seen := map[bitvec.Key]bool{a.Default.Signature.Key(): true}
	for _, c := range cands {
		if len(a.Selected) >= p.ExecutePerJob {
			break
		}
		k := c.Signature.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		a.Selected = append(a.Selected, c)
	}
	for i, c := range a.Selected {
		t := p.Harness.RunConfig(a.Job.Root, c.Config, a.Job.Day, fmt.Sprintf("%s/alt%d", a.Job.ID, i))
		a.Trials = append(a.Trials, t)
	}
}

// Metric selects which §3.1.2 metric a comparison optimizes.
type Metric int

// Metrics of interest (§3.1.2).
const (
	MetricRuntime Metric = iota
	MetricCPU
	MetricIO
)

var metricNames = [...]string{"runtime", "cpu-time", "io-time"}

func (m Metric) String() string { return metricNames[m] }

// value extracts the metric from a trial.
func (m Metric) value(t *abtest.Trial) float64 {
	switch m {
	case MetricCPU:
		return t.Metrics.CPUSec
	case MetricIO:
		return t.Metrics.IOTimeSec
	}
	return t.Metrics.RuntimeSec
}

// BestAlternative returns the executed trial with the lowest value of the
// metric, or nil when nothing was executed.
func (a *Analysis) BestAlternative(m Metric) *abtest.Trial {
	var best *abtest.Trial
	for i := range a.Trials {
		t := &a.Trials[i]
		if t.Err != nil {
			continue
		}
		if best == nil || m.value(t) < m.value(best) {
			best = t
		}
	}
	return best
}

// BestConfig returns the trial (including the default) with the lowest value
// of the metric: "always choose the best known rule configuration" (Table 3
// includes the default, since some jobs improve under none of the
// alternatives).
func (a *Analysis) BestConfig(m Metric) *abtest.Trial {
	best := &a.Default
	if alt := a.BestAlternative(m); alt != nil && m.value(alt) < m.value(best) {
		best = alt
	}
	return best
}

// PercentChange returns the percentage change of the trial's metric from the
// default (negative is an improvement; bounded below by -100%, unbounded
// above, exactly as Figure 6 notes).
func (a *Analysis) PercentChange(t *abtest.Trial, m Metric) float64 {
	d := m.value(&a.Default)
	if d == 0 {
		return 0
	}
	return 100 * (m.value(t) - d) / d
}

// CheaperCandidates reports candidates whose estimated cost undercuts the
// default by at least frac (e.g. 0.1 = 10% cheaper) — heuristic (1) of §6.1.
func (a *Analysis) CheaperCandidates(frac float64) []Candidate {
	var out []Candidate
	for _, c := range a.Candidates {
		if c.EstCost < a.Default.EstCost*(1-frac) {
			out = append(out, c)
		}
	}
	return out
}

// LowCostHighRuntime reports whether the job sits in Figure 5's top-left
// corner: the optimizer expected it to be fast (estimated cost below
// costCeil) but it ran long (runtime above runtimeFloor seconds) — heuristic
// (2) of §6.1.
func (a *Analysis) LowCostHighRuntime(costCeil, runtimeFloor float64) bool {
	return a.Default.EstCost < costCeil && a.Default.Metrics.RuntimeSec > runtimeFloor
}
