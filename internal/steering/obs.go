package steering

import (
	"steerq/internal/faults"
	"steerq/internal/obs"
)

// trialOutcome classifies one executed alternative for the
// steerq_pipeline_trials_total counter.
func trialOutcome(err error, fellBack bool) string {
	switch {
	case fellBack:
		return "fallback"
	case err != nil:
		return obs.OutcomeError
	default:
		return obs.OutcomeOK
	}
}

// mirrorRobustness adds one analysis stage's fault-handling delta to the
// registry's robustness counters. Deltas are computed from serially merged
// faults.Record values and added serially by the pipeline, so the counters
// match the records bit-for-bit at any worker count.
func mirrorRobustness(reg *obs.Registry, d faults.Record) {
	if reg == nil || d.IsZero() {
		return
	}
	retries := func(kind string, n int) {
		if n > 0 {
			reg.Counter("steerq_robustness_retries_total", "kind", kind).Add(uint64(n))
		}
	}
	events := func(kind string, n int) {
		if n > 0 {
			reg.Counter("steerq_robustness_events_total", "kind", kind).Add(uint64(n))
		}
	}
	retries("compile", d.CompileRetries)
	retries("exec", d.ExecRetries)
	events("timeout", d.Timeouts)
	events("corruption", d.Corruptions)
	events("fallback", d.Fallbacks)
	events("giveup", d.GiveUps)
}

// recordDelta returns after minus before, field by field. Backoff is a
// duration total and subtracts like the counts.
func recordDelta(after, before faults.Record) faults.Record {
	return faults.Record{
		CompileRetries: after.CompileRetries - before.CompileRetries,
		ExecRetries:    after.ExecRetries - before.ExecRetries,
		Timeouts:       after.Timeouts - before.Timeouts,
		Corruptions:    after.Corruptions - before.Corruptions,
		Fallbacks:      after.Fallbacks - before.Fallbacks,
		GiveUps:        after.GiveUps - before.GiveUps,
		Backoff:        after.Backoff - before.Backoff,
	}
}
