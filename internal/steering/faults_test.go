package steering_test

import (
	"errors"
	"sync"
	"testing"

	"steerq/internal/cascades"
	"steerq/internal/faults"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// faultyPipeline builds a pipeline with fault injection armed and plan
// checking on: any corrupted plan that slipped past compile validation would
// panic in the executor, so a passing test proves the robustness layer
// filtered every one.
func faultyPipeline(t *testing.T, workers int, cache *steering.CompileCache, fp faults.Plan) *steering.Pipeline {
	t.Helper()
	cat := steerCatalog()
	h := steerHarness(cat)
	h.Executor.CheckPlans = true
	h.SetFaults(faults.NewInjector(fp))
	p := steering.NewPipeline(h, xrand.New(11).Derive("fault-test"))
	p.MaxCandidates = 40
	p.ExecutePerJob = 5
	p.Workers = workers
	p.Cache = cache
	return p
}

func analyzeFaulty(t *testing.T, workers int, cache *steering.CompileCache, fp faults.Plan) *steering.Analysis {
	t.Helper()
	p := faultyPipeline(t, workers, cache, fp)
	job := steerJob(t, p.Harness.Cat)
	fingerprintJob(t, job)
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return a
}

// requireSameFaultyAnalysis extends the clean-path comparison with the
// robustness fields: fault handling must be as reproducible as the results.
func requireSameFaultyAnalysis(t *testing.T, label string, a, b *steering.Analysis) {
	t.Helper()
	requireSameAnalysis(t, label, a, b)
	if a.Robustness != b.Robustness {
		t.Fatalf("%s: robustness differs: %+v vs %+v", label, a.Robustness, b.Robustness)
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.FellBack != tb.FellBack || ta.Attempts != tb.Attempts {
			t.Fatalf("%s: trial %d fault handling differs: fellback %v/%v attempts %d/%d",
				label, i, ta.FellBack, tb.FellBack, ta.Attempts, tb.Attempts)
		}
	}
}

// TestPipelineFaultDeterminism is the core metamorphic property: with a
// pinned fault seed, the analysis — including which faults were injected,
// how many retries they cost, and which trials fell back — is bit-for-bit
// identical at any worker count. Run under -race this also proves the
// injector's counters and the retry records are data-race free.
func TestPipelineFaultDeterminism(t *testing.T) {
	fp := faults.DefaultPlan(1337)
	base := analyzeFaulty(t, 1, nil, fp)
	if base.Robustness.IsZero() {
		t.Fatal("fault plan injected nothing; test is vacuous")
	}
	for _, workers := range []int{2, 8} {
		requireSameFaultyAnalysis(t, "workers", base, analyzeFaulty(t, workers, nil, fp))
	}
	requireSameFaultyAnalysis(t, "cache+parallel", base, analyzeFaulty(t, 8, steering.NewCompileCache(), fp))
}

// TestFaultedPipelineSurvives: at moderate fault rates every executed trial
// either succeeded (after retries) or fell back to the default — no trial
// surfaces an injected error, and the retries are observable in the record.
func TestFaultedPipelineSurvives(t *testing.T) {
	a := analyzeFaulty(t, 4, nil, faults.DefaultPlan(2024))
	rb := a.Robustness
	if rb.Retries() == 0 {
		t.Fatalf("no retries recorded under injection: %+v", rb)
	}
	for i, tr := range a.Trials {
		if tr.Err != nil {
			t.Fatalf("trial %d surfaced an error despite retry+fallback: %v", i, tr.Err)
		}
		if tr.FellBack && tr.Metrics != a.Default.Metrics {
			t.Fatalf("trial %d fell back but metrics differ from the default's", i)
		}
	}
	fellBack := 0
	for _, tr := range a.Trials {
		if tr.FellBack {
			fellBack++
		}
	}
	if fellBack != rb.Fallbacks {
		t.Fatalf("record counts %d fallbacks, trials show %d", rb.Fallbacks, fellBack)
	}
}

// TestFallbackToDefault drives the execution site hard enough that some
// selected trial exhausts its retry budget, and checks the graceful
// degradation contract: the trial becomes a copy of the default (marked,
// error-free), the fallback is counted, and BestAlternative refuses to
// treat it as a discovered improvement.
func TestFallbackToDefault(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		fp := faults.Plan{Seed: seed, Exec: faults.Probs{Fail: 0.6}}
		p := faultyPipeline(t, 4, nil, fp)
		job := steerJob(t, p.Harness.Cat)
		a, err := p.Analyze(job)
		if err != nil {
			continue // this seed killed even the default trial; try the next
		}
		if a.Robustness.Fallbacks == 0 {
			continue
		}
		sawFallback := false
		for i, tr := range a.Trials {
			if !tr.FellBack {
				continue
			}
			sawFallback = true
			if tr.Err != nil {
				t.Fatalf("seed %d: fallback trial %d carries error %v", seed, i, tr.Err)
			}
			if tr.Metrics != a.Default.Metrics || tr.Signature != a.Default.Signature {
				t.Fatalf("seed %d: fallback trial %d is not a copy of the default", seed, i)
			}
			if tr.Attempts < 2 {
				t.Fatalf("seed %d: fallback after %d attempts, want the exhausted retry budget", seed, i)
			}
		}
		if !sawFallback {
			t.Fatalf("seed %d: record counts fallbacks but no trial is marked", seed)
		}
		if alt := a.BestAlternative(steering.MetricRuntime); alt != nil && alt.FellBack {
			t.Fatalf("seed %d: BestAlternative returned a fallback trial", seed)
		}
		return
	}
	t.Fatal("no seed in [0, 40) produced a fallback; rates or retry budget changed?")
}

// TestCompileCacheNeverCachesFaultedResults is the cache-purity property:
// after a heavily faulted run, every cache entry must be indistinguishable
// from one produced by a fault-free compile. It is checked by draining the
// same cache with injection off and comparing against a pristine run — a
// poisoned entry (injected failure cached as no-plan, corrupted cost or
// signature) would surface as a candidate difference.
func TestCompileCacheNeverCachesFaultedResults(t *testing.T) {
	fp := faults.Plan{Seed: 7, Compile: faults.Probs{Fail: 0.15, Hang: 0.05, Corrupt: 0.15}}
	cache := steering.NewCompileCache()
	p := faultyPipeline(t, 8, cache, fp)
	job := steerJob(t, p.Harness.Cat)
	fingerprintJob(t, job)
	if _, err := p.Recompile(job); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Entries == 0 {
		t.Fatal("faulted run cached nothing; purity check is vacuous")
	}

	// Drain the poisoned-candidate cache with injection off...
	cleanCat := steerCatalog()
	cleanH := steerHarness(cleanCat)
	cleanJob := steerJob(t, cleanCat)
	fingerprintJob(t, cleanJob)
	drain := steering.NewPipeline(cleanH, xrand.New(11).Derive("fault-test"))
	drain.MaxCandidates = 40
	drain.Workers = 4
	drain.Cache = cache
	fromCache, err := drain.Recompile(cleanJob)
	if err != nil {
		t.Fatal(err)
	}
	// ... and compare with a run that never saw the cache or the faults.
	pristineCat := steerCatalog()
	pristineH := steerHarness(pristineCat)
	pristineJob := steerJob(t, pristineCat)
	fingerprintJob(t, pristineJob)
	pristine := steering.NewPipeline(pristineH, xrand.New(11).Derive("fault-test"))
	pristine.MaxCandidates = 40
	pristine.Workers = 4
	a, err := pristine.Recompile(pristineJob)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAnalysis(t, "cache drained after faults", a, fromCache)
}

// TestCompileCacheFaultHammer pounds one shared cache from many goroutines
// running faulted recompilations (run under -race). Afterwards the counters
// must be consistent and every concurrent analysis identical.
func TestCompileCacheFaultHammer(t *testing.T) {
	fp := faults.Plan{Seed: 3, Compile: faults.Probs{Fail: 0.1, Hang: 0.03, Corrupt: 0.1}}
	cache := steering.NewCompileCache()
	const goroutines = 8
	results := make([]*steering.Analysis, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := faultyPipeline(t, 2, cache, fp)
			job := steerJob(t, p.Harness.Cat)
			fingerprintJob(t, job)
			results[g], errs[g] = p.Recompile(job)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	st := cache.Stats()
	if st.Entries == 0 || st.Misses == 0 {
		t.Fatalf("hammer left no trace in the cache: %+v", st)
	}
	if st.Entries > int(st.Misses) {
		t.Fatalf("more entries (%d) than misses (%d): entries appeared without a lookup", st.Entries, st.Misses)
	}
	for g := 1; g < goroutines; g++ {
		if len(results[g].Candidates) != len(results[0].Candidates) {
			t.Fatalf("goroutine %d compiled %d candidates, goroutine 0 compiled %d",
				g, len(results[g].Candidates), len(results[0].Candidates))
		}
		for i := range results[g].Candidates {
			if results[g].Candidates[i] != results[0].Candidates[i] {
				t.Fatalf("goroutine %d candidate %d differs", g, i)
			}
		}
	}
}

// TestFaultedCompileErrorsStayOutOfNegativeCache: an injected persistent
// compile failure must not be cached as "does not compile" — a later
// fault-free recompilation through the same cache must rediscover the
// configuration.
func TestFaultedCompileErrorsStayOutOfNegativeCache(t *testing.T) {
	// All-fail compile plan: with certainty every span probe fails, so
	// Recompile errors out — and must leave the cache empty rather than
	// full of bogus no-plan entries.
	fp := faults.Plan{Seed: 5, Compile: faults.Probs{Fail: 1}}
	cache := steering.NewCompileCache()
	p := faultyPipeline(t, 2, cache, fp)
	job := steerJob(t, p.Harness.Cat)
	fingerprintJob(t, job)
	_, err := p.Analyze(job)
	if err == nil {
		t.Fatal("all-fail plan still analyzed")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if errors.Is(err, cascades.ErrNoPlan) {
		t.Fatalf("injected failure surfaced as a genuine no-plan: %v", err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("injected failures were cached: %+v", st)
	}
}
