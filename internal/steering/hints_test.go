package steering_test

import (
	"strings"
	"testing"

	"steerq/internal/rules"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

func TestHintsRoundTrip(t *testing.T) {
	rs := rules.Catalog()
	cfg := rs.DefaultConfig()
	cfg.Clear(rules.IDJoinImpl2)
	cfg.Clear(rules.IDSelectIntoGet)
	cfg.Set(rules.IDCorrelatedJoinOnUnionAll1)

	h := steering.HintsFor(cfg, rs)
	if len(h.Disable) != 2 || len(h.Enable) != 1 {
		t.Fatalf("hints %+v", h)
	}
	text := h.String()
	for _, want := range []string{"DISABLE:", "JoinImpl2", "SelectIntoGet", "ENABLE:", "CorrelatedJoinOnUnionAll1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("hint text %q missing %q", text, want)
		}
	}
	got, err := steering.ParseHints(text, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cfg) {
		t.Fatal("hints did not round-trip the configuration")
	}
}

func TestHintsDefault(t *testing.T) {
	rs := rules.Catalog()
	h := steering.HintsFor(rs.DefaultConfig(), rs)
	if h.String() != "DEFAULT\n" {
		t.Fatalf("default hints %q", h.String())
	}
	got, err := steering.ParseHints("DEFAULT\n", rs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(rs.DefaultConfig()) {
		t.Fatal("DEFAULT did not parse to the default configuration")
	}
}

func TestParseHintsErrors(t *testing.T) {
	rs := rules.Catalog()
	cases := []string{
		"DISABLE: NoSuchRule",
		"FROBNICATE: JoinImpl2",
		"DISABLE: EnforceExchange", // required rules cannot be hinted
	}
	for _, text := range cases {
		if _, err := steering.ParseHints(text, rs); err == nil {
			t.Errorf("ParseHints(%q) succeeded, want error", text)
		}
	}
}

func TestRecommend(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	job.Workload = "A"
	p := steering.NewPipeline(h, xrand.New(3))
	p.MaxCandidates = 60
	p.ExecutePerJob = 5
	a, err := p.Analyze(job)
	if err != nil {
		t.Fatal(err)
	}
	rec := steering.Recommend(a, h.Opt.Rules)
	best := a.BestAlternative(steering.MetricRuntime)
	if best == nil || best.Metrics.RuntimeSec >= a.Default.Metrics.RuntimeSec {
		if rec != nil {
			t.Fatal("recommendation issued without an improvement")
		}
		t.Skip("no improving alternative at this seed")
	}
	if rec == nil {
		t.Fatal("no recommendation despite an improving alternative")
	}
	if rec.SteeredRuntimeSec >= rec.DefaultRuntimeSec {
		t.Fatalf("recommendation does not improve: %+v", rec)
	}
	// The hints reconstruct the minimized configuration, which agrees with
	// the measured configuration on every span rule.
	cfg, err := steering.ParseHints(rec.Hints, h.Opt.Rules)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Span.Ones() {
		if cfg.Get(id) != best.Config.Get(id) {
			t.Fatalf("minimized configuration disagrees with the measured one on span rule %d", id)
		}
	}
	// And names only span toggles: nothing outside the span differs from
	// the default.
	if !a.Span.Contains(cfg.Xor(h.Opt.Rules.DefaultConfig())) {
		t.Fatal("recommendation toggles rules outside the job span")
	}
}
