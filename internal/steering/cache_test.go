package steering_test

import (
	"testing"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/steering"
)

// cfp builds a distinct synthetic job fingerprint.
func cfp(n uint64) steering.JobFingerprint {
	return steering.JobFingerprint{Template: n + 1, Instance: n * 31, Inputs: n * 7}
}

// cval builds a compile value whose footprint is {bit}, so distinct bits give
// distinct classes under one job.
func cval(bit int, cost float64) steering.CompileValue {
	return steering.CompileValue{Cost: cost, Footprint: bitvec.New(bit), OK: true}
}

// TestCompileCacheCapacityBound: a bounded cache never holds more entries
// than its capacity, however many distinct (job, class) pairs churn through
// it, and every displacement is counted as an eviction.
func TestCompileCacheCapacityBound(t *testing.T) {
	const capacity = 8
	c := steering.NewCompileCacheWithCapacity(capacity)
	const inserts = 100
	for i := 0; i < inserts; i++ {
		c.Put(cfp(uint64(i)), bitvec.New(i%bitvec.Width), cval(i%bitvec.Width, float64(i)))
		if st := c.Stats(); st.Entries > capacity {
			t.Fatalf("after insert %d: %d entries exceed capacity %d", i, st.Entries, capacity)
		}
	}
	st := c.Stats()
	if st.Entries != capacity {
		t.Fatalf("entries = %d, want full cache at capacity %d", st.Entries, capacity)
	}
	if st.Evictions != inserts-capacity {
		t.Fatalf("evictions = %d, want %d", st.Evictions, inserts-capacity)
	}
	if st.Capacity != capacity {
		t.Fatalf("Stats().Capacity = %d, want %d", st.Capacity, capacity)
	}
}

// TestCompileCacheUnboundedNeverEvicts: the default cache keeps everything —
// PR-to-PR behavior of experiments that rely on full retention is unchanged.
func TestCompileCacheUnboundedNeverEvicts(t *testing.T) {
	c := steering.NewCompileCache()
	for i := 0; i < 500; i++ {
		c.Put(cfp(uint64(i)), bitvec.New(i%bitvec.Width), cval(i%bitvec.Width, float64(i)))
	}
	st := c.Stats()
	if st.Entries != 500 || st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}

// cacheTrace runs a fixed churn workload against a fresh bounded cache and
// returns the hit/miss pattern of a final probe sweep plus the stats.
func cacheTrace(capacity int) (string, steering.CacheStats) {
	c := steering.NewCompileCacheWithCapacity(capacity)
	// One job, many classes; interleaved re-reads give some slots a second
	// chance so the CLOCK actually exercises its reference bits.
	fp := cfp(1)
	for i := 0; i < 40; i++ {
		bit := i % 20
		cfg := bitvec.New(bit)
		if _, ok := c.Get(fp, cfg); !ok {
			c.Put(fp, cfg, cval(bit, float64(bit)))
		}
		if i%3 == 0 {
			c.Get(fp, bitvec.New(0)) // keep class 0 referenced
		}
	}
	pattern := ""
	for bit := 0; bit < 20; bit++ {
		if _, ok := c.Get(fp, bitvec.New(bit)); ok {
			pattern += "H"
		} else {
			pattern += "m"
		}
	}
	return pattern, c.Stats()
}

// TestCompileCacheEvictionDeterministic: the segmented CLOCK's survivor set
// is a pure function of the operation sequence — identical runs agree on
// every survivor, every counter, and the second-chance bit demonstrably
// protects the hot entry.
func TestCompileCacheEvictionDeterministic(t *testing.T) {
	p1, s1 := cacheTrace(6)
	p2, s2 := cacheTrace(6)
	if p1 != p2 {
		t.Fatalf("survivor pattern diverged between identical runs: %s vs %s", p1, p2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged between identical runs: %+v vs %+v", s1, s2)
	}
	if s1.Evictions == 0 {
		t.Fatal("trace never evicted; determinism check is vacuous")
	}
	if p1[0] != 'H' {
		t.Fatalf("repeatedly referenced class 0 was evicted (pattern %s); second chance broken", p1)
	}
	if s1.Entries > 6 {
		t.Fatalf("entries %d exceed capacity", s1.Entries)
	}
}

// TestCompileCacheEntriesGaugeConsistency: the registry gauge tracks the
// live entry count through insert and evict churn, and hits + misses always
// equals the number of lookups issued.
func TestCompileCacheEntriesGaugeConsistency(t *testing.T) {
	reg := obs.NewWithClock(obs.FrozenClock())
	const capacity = 4
	c := steering.NewCompileCacheWithCapacity(capacity)
	c.SetObs(reg, "workload", "evict-test")

	lookups := 0
	get := func(fp steering.JobFingerprint, cfg bitvec.Vector) bool {
		lookups++
		_, ok := c.Get(fp, cfg)
		return ok
	}
	for i := 0; i < 30; i++ {
		bit := i % 10
		fp := cfp(uint64(i % 3))
		cfg := bitvec.New(bit)
		if !get(fp, cfg) {
			c.Put(fp, cfg, cval(bit, float64(i)))
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != uint64(lookups) {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, lookups)
	}
	if st.Entries > capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, capacity)
	}

	gauge := -1.0
	var hits, misses, evictions uint64
	snap := reg.Snapshot()
	for _, g := range snap.Gauges {
		if g.Name == "steerq_cache_entries" {
			gauge = g.Value
		}
	}
	for _, cp := range snap.Counters {
		switch cp.Name {
		case "steerq_cache_hits_total":
			hits = cp.Value
		case "steerq_cache_misses_total":
			misses = cp.Value
		case "steerq_cache_evictions_total":
			evictions = cp.Value
		}
	}
	if gauge != float64(st.Entries) {
		t.Fatalf("entries gauge %v != Stats().Entries %d", gauge, st.Entries)
	}
	if hits != st.Hits || misses != st.Misses || evictions != st.Evictions {
		t.Fatalf("registry counters (h=%d m=%d e=%d) disagree with Stats() %+v",
			hits, misses, evictions, st)
	}
	if evictions == 0 {
		t.Fatal("churn produced no evictions; gauge consistency check is weak")
	}
}

// TestCompileCacheProjectedHits: a configuration that differs from the
// writer's only outside the footprint must hit, and the hit must be counted
// as projected; agreeing configurations hit without the projected count.
func TestCompileCacheProjectedHits(t *testing.T) {
	c := steering.NewCompileCache()
	fp := cfp(9)
	writer := bitvec.New(3, 50)          // bit 50 is outside the footprint
	c.Put(fp, writer, cval(3, 7))        // footprint {3}
	if _, ok := c.Get(fp, writer); !ok { // exact writer config
		t.Fatal("writer config missed")
	}
	if st := c.Stats(); st.Projected != 0 {
		t.Fatalf("exact hit counted as projected: %+v", st)
	}
	probe := bitvec.New(3, 99, 200) // agrees on bit 3, differs elsewhere
	v, ok := c.Get(fp, probe)
	if !ok || v.Cost != 7 {
		t.Fatalf("projected probe missed: ok=%v v=%+v", ok, v)
	}
	if st := c.Stats(); st.Projected != 1 {
		t.Fatalf("projected hit not counted: %+v", st)
	}
	if _, ok := c.Get(fp, bitvec.New(99)); ok { // disagrees on footprint bit 3
		t.Fatal("footprint-bit disagreement hit anyway")
	}
}

// TestCompileCacheBoundedReuse: bounding the cache must not break the
// footprint-projected reuse path as long as the working set fits.
func TestCompileCacheBoundedReuse(t *testing.T) {
	c := steering.NewCompileCacheWithCapacity(32)
	fp := cfp(2)
	for bit := 0; bit < 16; bit++ {
		c.Put(fp, bitvec.New(bit), cval(bit, float64(bit)))
	}
	for bit := 0; bit < 16; bit++ {
		v, ok := c.Get(fp, bitvec.New(bit, 100+bit))
		if !ok || v.Cost != float64(bit) {
			t.Fatalf("bit %d: bounded cache lost a fitting entry (ok=%v v=%+v)", bit, ok, v)
		}
	}
	if st := c.Stats(); st.Evictions != 0 || st.Projected != 16 {
		t.Fatalf("unexpected stats for fitting working set: %+v", st)
	}
}

// TestCompileCachePutRefreshKeepsCount: re-putting an existing class must
// not grow the entry count or the eviction clock.
func TestCompileCachePutRefreshKeepsCount(t *testing.T) {
	c := steering.NewCompileCacheWithCapacity(4)
	fp := cfp(3)
	for i := 0; i < 10; i++ {
		c.Put(fp, bitvec.New(5), cval(5, float64(i)))
	}
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("refreshing one class churned the cache: %+v", st)
	}
	if v, ok := c.Get(fp, bitvec.New(5)); !ok || v.Cost != 9 {
		t.Fatalf("refresh did not keep the latest value: %+v", v)
	}
}

// sanity check that cfp stays collision-free over the range the tests use.
func TestCfpDistinct(t *testing.T) {
	seen := map[steering.JobFingerprint]int{}
	for i := 0; i < 600; i++ {
		fp := cfp(uint64(i))
		if j, dup := seen[fp]; dup {
			t.Fatalf("cfp(%d) == cfp(%d): %+v", i, j, fp)
		}
		seen[fp] = i
	}
}

// TestPutBatchMatchesSerialPuts: a PutBatch must leave a bounded cache in
// exactly the state the same writes applied one Put at a time would —
// entries, evictions, and the hit pattern of a probe sweep — because batch
// insertion order is slice order and the CLOCK hand advances identically.
func TestPutBatchMatchesSerialPuts(t *testing.T) {
	const capacity = 8
	fp := cfp(3)
	build := func(batch bool) (*steering.CompileCache, string) {
		c := steering.NewCompileCacheWithCapacity(capacity)
		for round := 0; round < 4; round++ {
			var writes []steering.CacheWrite
			for k := 0; k < 6; k++ {
				bit := (round*6 + k) % 20
				w := steering.CacheWrite{Config: bitvec.New(bit), Value: cval(bit, float64(bit))}
				if batch {
					writes = append(writes, w)
				} else {
					c.Put(fp, w.Config, w.Value)
				}
			}
			c.PutBatch(fp, writes)
		}
		probe := make([]byte, 20)
		for bit := 0; bit < 20; bit++ {
			if _, ok := c.Get(fp, bitvec.New(bit)); ok {
				probe[bit] = 'H'
			} else {
				probe[bit] = 'm'
			}
		}
		return c, string(probe)
	}
	serialC, serialProbe := build(false)
	batchC, batchProbe := build(true)
	if batchProbe != serialProbe {
		t.Fatalf("probe pattern differs: batch %s vs serial %s", batchProbe, serialProbe)
	}
	ss, bs := serialC.Stats(), batchC.Stats()
	if ss.Entries != bs.Entries || ss.Evictions != bs.Evictions {
		t.Fatalf("stats differ: batch %+v vs serial %+v", bs, ss)
	}
}

// TestPutBatchNilAndEmpty: the nil-receiver and empty-batch paths are
// no-ops, matching Put's nil-safety so the pipeline needs no guards.
func TestPutBatchNilAndEmpty(t *testing.T) {
	var nilCache *steering.CompileCache
	nilCache.PutBatch(cfp(1), []steering.CacheWrite{{Config: bitvec.New(1), Value: cval(1, 1)}})
	c := steering.NewCompileCache()
	c.PutBatch(cfp(1), nil)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("empty batch inserted entries: %+v", st)
	}
}
