package steering_test

import (
	"testing"

	"steerq/internal/steering"
	"steerq/internal/xrand"
)

func TestIterativeSearchFindsImprovements(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(21))
	p.MaxCandidates = 40
	p.ExecutePerJob = 3
	a, err := p.Recompile(job)
	if err != nil {
		t.Fatal(err)
	}
	it := steering.NewIterativeSearch(p)
	it.Rounds = 3
	it.PerRound = 40
	it.ExecutePerRound = 3
	res, err := it.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) == 0 {
		t.Fatal("iterative search executed nothing")
	}
	// Rounds are labeled and ordered.
	last := -1
	for _, tr := range res.Trials {
		if tr.Round < last {
			t.Fatal("trials out of round order")
		}
		last = tr.Round
		if tr.Runtime <= 0 {
			t.Fatal("trial without runtime")
		}
	}
	if res.Best != nil && res.Best.Runtime >= a.Default.Metrics.RuntimeSec {
		t.Fatal("Best does not beat the default")
	}
}

func TestIterativeSearchDeterministic(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	run := func() []steering.RoundTrial {
		p := steering.NewPipeline(h, xrand.New(21))
		p.MaxCandidates = 30
		a, err := p.Recompile(job)
		if err != nil {
			t.Fatal(err)
		}
		it := steering.NewIterativeSearch(p)
		it.Rounds = 2
		it.PerRound = 30
		it.ExecutePerRound = 2
		res, err := it.Run(a)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trials
	}
	t1 := run()
	t2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("trial counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Runtime != t2[i].Runtime || !t1[i].Config.Equal(t2[i].Config) {
			t.Fatal("iterative search not deterministic")
		}
	}
}

func TestIterativeSearchEmptySpan(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(21))
	a, err := p.Recompile(job)
	if err != nil {
		t.Fatal(err)
	}
	a.Span = a.Span.AndNot(a.Span) // clear
	it := steering.NewIterativeSearch(p)
	res, err := it.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 0 || res.Best != nil {
		t.Fatal("empty span should yield no trials")
	}
}

func TestProbeIndependence(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	job := steerJob(t, cat)
	p := steering.NewPipeline(h, xrand.New(7))
	p.MaxCandidates = 10
	a, err := p.Recompile(job)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := steering.ProbeIndependence(p, a, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Every span rule appears in exactly one group.
	seen := make(map[int]bool)
	for _, g := range ind.Groups {
		for _, id := range g {
			if seen[id] {
				t.Fatalf("rule %d in two groups", id)
			}
			seen[id] = true
			if !a.Span.Get(id) {
				t.Fatalf("rule %d outside the span", id)
			}
		}
	}
	if len(seen) != a.Span.Count() {
		t.Fatalf("groups cover %d of %d span rules", len(seen), a.Span.Count())
	}
	// The partitioned space never exceeds the naive space, and shrinks
	// whenever there is more than one group.
	naive, part := ind.SearchSpace(a.Span.Count())
	if part > naive {
		t.Fatalf("partitioned space %v exceeds naive %v", part, naive)
	}
	if len(ind.Groups) > 1 && part >= naive {
		t.Fatalf("independence found (%d groups) but space did not shrink", len(ind.Groups))
	}
	t.Logf("span=%d groups=%d compilations=%d space %v -> %v",
		a.Span.Count(), len(ind.Groups), ind.Compilations, naive, part)
}

func TestSearchSpaceArithmetic(t *testing.T) {
	ind := &steering.Independence{Groups: [][]int{{1, 2}, {3, 4, 5}}}
	naive, part := ind.SearchSpace(5)
	if naive != 32 || part != 12 {
		t.Fatalf("SearchSpace = %v, %v; the paper's example expects 32 -> 12", naive, part)
	}
}
