package steering

import (
	"sync"
	"sync/atomic"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/workload"
)

// JobFingerprint identifies one recurring job instance for caching.
//
// The production follow-up to the paper (QO-Advisor) keeps the recompilation
// fan-out affordable by never compiling the same recurring input twice; this
// fingerprint is how the reproduction gets the same effect. Template
// identifies the recurring job structure, Instance fingerprints the day's
// bound constants (recurring arrivals vary predicate literals, §3.1.1), and
// Inputs fingerprints the set of streams read that day — together they pin
// exactly the facts the estimated-statistics optimizer consumes, so a cached
// {cost, signature} is bit-identical to recompiling.
type JobFingerprint struct {
	Template uint64
	Instance uint64
	Inputs   uint64
}

// CompileValue is the cached outcome of one compilation. Plans themselves are
// not retained — the pipeline's candidate stage only consumes the estimated
// cost and the rule signature, and dropping the plan keeps a multi-day cache
// small.
type CompileValue struct {
	Cost      float64
	Signature bitvec.Vector
	// Footprint is the compile's decision footprint (cascades.Result): the
	// rule IDs whose enabled-bit the search read. It doubles as the cache's
	// index: entries are stored under the configuration *projected onto the
	// footprint*, so any configuration agreeing on those bits — even one
	// differing on irrelevant rules — finds the entry.
	Footprint bitvec.Vector
	// OK is false when the configuration did not compile (cascades.ErrNoPlan
	// — the only per-configuration failure the optimizer produces). Failures
	// are cached too: recurring jobs re-probe the same dead configurations,
	// and the footprint of a failed search is just as sharing-sound as a
	// successful one's.
	OK bool
}

// cacheShards is the fixed shard count. Power of two so the shard pick is a
// mask; 64 shards keep lock contention negligible at any plausible worker
// count. Sharding is by job fingerprint alone, so all entries of one job —
// and its eviction clock — live in one shard.
const cacheShards = 64

// footprintEntry holds every cached outcome sharing one decision footprint,
// keyed by the writer configuration projected onto that footprint.
type footprintEntry struct {
	foot bitvec.Vector
	vals map[bitvec.Key]*cacheSlot
}

// cacheSlot is one cached outcome plus its CLOCK bookkeeping.
type cacheSlot struct {
	val CompileValue
	// writer is the full (unprojected) key of the configuration that wrote
	// the entry; a lookup whose full key differs found the entry through
	// footprint projection alone (counted as a projected hit).
	writer bitvec.Key
	// ref is the second-chance bit: set on every bounded-mode hit, cleared
	// (instead of evicting) when the clock hand passes.
	ref bool
}

// jobEntry indexes one job's footprint entries in insertion order. Lookups
// scan the footprints oldest-first; compiles of one job read overlapping
// rule sets, so the list stays short (often length one).
type jobEntry struct {
	foots []*footprintEntry
}

// ringSlot is one value's position on its shard's eviction clock.
type ringSlot struct {
	fp  JobFingerprint
	fe  *footprintEntry
	key bitvec.Key
}

type cacheShard struct {
	mu   sync.RWMutex
	jobs map[JobFingerprint]*jobEntry
	// ring orders the shard's value slots by insertion for the CLOCK hand.
	ring []ringSlot
	hand int
}

// Cache metric names. The cache always counts through *obs.Counter — a
// standalone set by default, registry-owned ones after SetObs — so reads
// are atomic everywhere and wiring observability re-points rather than
// duplicates.
const (
	cacheHitsMetric      = "steerq_cache_hits_total"
	cacheMissesMetric    = "steerq_cache_misses_total"
	cacheEntriesMetric   = "steerq_cache_entries"
	cacheProjHitsMetric  = "steerq_cache_projected_hits_total"
	cacheEvictionsMetric = "steerq_cache_evictions_total"
)

// CompileCache is a sharded, concurrency-safe memo of compilation outcomes
// indexed by (job fingerprint, footprint-projected configuration). A single
// cache is shared across days and experiments of one workload; hit/miss/
// projected-hit counters feed the steerq-bench perf report.
//
// Lookups project the probing configuration onto each stored footprint of
// the job, so recurring templates hit even when the probing configuration
// differs from the writer's on rules the compile never consulted. A hit
// whose full configuration differs from the writer's is additionally
// counted as a projected hit.
//
// With a positive capacity the cache is bounded: each shard runs a
// second-chance CLOCK over its value slots in insertion order, and inserts
// that push the global entry count past the capacity evict from the
// inserting shard (a segmented clock — 64 independent hands, no global
// ordering to contend on). Eviction order is deterministic whenever each
// job's compiles are issued serially, which the pipeline guarantees: the
// candidate stage's cache traffic is serial per job, and distinct jobs
// occupy distinct shards.
type CompileCache struct {
	shards    [cacheShards]cacheShard
	capacity  int
	entries   atomic.Int64
	hits      *obs.Counter
	misses    *obs.Counter
	projected *obs.Counter
	evictions *obs.Counter
}

// NewCompileCache returns an empty, unbounded cache.
func NewCompileCache() *CompileCache {
	return NewCompileCacheWithCapacity(0)
}

// NewCompileCacheWithCapacity returns an empty cache bounded to at most
// capacity entries (0 means unbounded). Serving-scale workloads should
// bound the cache: without it, churned templates accumulate forever.
func NewCompileCacheWithCapacity(capacity int) *CompileCache {
	c := &CompileCache{
		capacity:  capacity,
		hits:      obs.NewCounter(cacheHitsMetric),
		misses:    obs.NewCounter(cacheMissesMetric),
		projected: obs.NewCounter(cacheProjHitsMetric),
		evictions: obs.NewCounter(cacheEvictionsMetric),
	}
	for i := range c.shards {
		c.shards[i].jobs = make(map[JobFingerprint]*jobEntry)
	}
	return c
}

// SetObs re-points the cache's counters at registry-owned instruments (with
// the given label pairs, e.g. "workload", "A") and registers an entry-count
// gauge. Counts accumulated before the call carry over. Call it before the
// cache is shared across goroutines: the counter fields themselves are not
// synchronized, only their values are.
func (c *CompileCache) SetObs(reg *obs.Registry, labels ...string) {
	if c == nil || reg == nil {
		return
	}
	hits := reg.Counter(cacheHitsMetric, labels...)
	misses := reg.Counter(cacheMissesMetric, labels...)
	projected := reg.Counter(cacheProjHitsMetric, labels...)
	evictions := reg.Counter(cacheEvictionsMetric, labels...)
	hits.Add(c.hits.Value())
	misses.Add(c.misses.Value())
	projected.Add(c.projected.Value())
	evictions.Add(c.evictions.Value())
	c.hits, c.misses, c.projected, c.evictions = hits, misses, projected, evictions
	reg.GaugeFunc(cacheEntriesMetric, func() float64 {
		return float64(c.entries.Load())
	}, labels...)
}

// shard maps a job fingerprint to its shard.
func (c *CompileCache) shard(fp JobFingerprint) *cacheShard {
	h := fp.Template ^ fp.Instance*0x9e3779b97f4a7c15 ^ fp.Inputs*0x85ebca6b
	return &c.shards[h%cacheShards]
}

// lookup scans the job's footprint entries in insertion order for one whose
// projection of cfg is present. mark sets the CLOCK reference bit (bounded
// mode only — callers holding just the read lock must pass false).
func (s *cacheShard) lookup(fp JobFingerprint, cfg bitvec.Vector, full bitvec.Key, mark bool) (CompileValue, bool, bool) {
	je := s.jobs[fp]
	if je == nil {
		return CompileValue{}, false, false
	}
	for _, fe := range je.foots {
		if slot, ok := fe.vals[cfg.And(fe.foot).Key()]; ok {
			if mark {
				slot.ref = true
			}
			return slot.val, true, slot.writer != full
		}
	}
	return CompileValue{}, false, false
}

// Get returns the cached value for compiling the fingerprinted job under
// cfg, matching by footprint projection. The hit/miss (and projected-hit)
// counters are updated; a nil receiver reports a miss, so call sites need
// no nil guards.
func (c *CompileCache) Get(fp JobFingerprint, cfg bitvec.Vector) (CompileValue, bool) {
	if c == nil {
		return CompileValue{}, false
	}
	s := c.shard(fp)
	full := cfg.Key()
	var v CompileValue
	var ok, projected bool
	if c.capacity > 0 {
		// Bounded mode writes the reference bit, so hits need the write
		// lock. Contention stays negligible: per-job traffic is serial.
		s.mu.Lock()
		v, ok, projected = s.lookup(fp, cfg, full, true)
		s.mu.Unlock()
	} else {
		s.mu.RLock()
		v, ok, projected = s.lookup(fp, cfg, full, false)
		s.mu.RUnlock()
	}
	if ok {
		c.hits.Inc()
		if projected {
			c.projected.Inc()
		}
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put stores the outcome of compiling the fingerprinted job under cfg. The
// entry is indexed by cfg projected onto v.Footprint. Concurrent Puts of
// the same projection are benign: compilation is deterministic, so both
// writers carry identical values. Inserts past the capacity evict.
func (c *CompileCache) Put(fp JobFingerprint, cfg bitvec.Vector, v CompileValue) {
	if c == nil {
		return
	}
	s := c.shard(fp)
	s.mu.Lock()
	c.putLocked(s, fp, cfg, v)
	s.mu.Unlock()
}

// CacheWrite is one pending insertion for PutBatch.
type CacheWrite struct {
	Config bitvec.Vector
	Value  CompileValue
}

// PutBatch applies a batch of writes for one fingerprinted job under a
// single shard-lock acquisition, in slice order. The pipeline's merge phase
// drains each compile batch's per-worker write buffers through it — all of
// one job's entries live in one shard (sharding is by fingerprint alone),
// so the batch pays one lock round trip instead of one per candidate, and
// insertion order — hence CLOCK eviction order — is exactly the slice
// order, independent of how many workers produced the values.
func (c *CompileCache) PutBatch(fp JobFingerprint, writes []CacheWrite) {
	if c == nil || len(writes) == 0 {
		return
	}
	s := c.shard(fp)
	s.mu.Lock()
	for _, w := range writes {
		c.putLocked(s, fp, w.Config, w.Value)
	}
	s.mu.Unlock()
}

// putLocked inserts one entry into s, which must be fp's shard and write-
// locked by the caller.
func (c *CompileCache) putLocked(s *cacheShard, fp JobFingerprint, cfg bitvec.Vector, v CompileValue) {
	je := s.jobs[fp]
	if je == nil {
		je = &jobEntry{}
		s.jobs[fp] = je
	}
	var fe *footprintEntry
	for _, f := range je.foots {
		if f.foot.Equal(v.Footprint) {
			fe = f
			break
		}
	}
	if fe == nil {
		fe = &footprintEntry{foot: v.Footprint, vals: make(map[bitvec.Key]*cacheSlot)}
		je.foots = append(je.foots, fe)
	}
	k := cfg.And(v.Footprint).Key()
	if slot, ok := fe.vals[k]; ok {
		slot.val = v // deterministic recompile of the same class; refresh
		return
	}
	fe.vals[k] = &cacheSlot{val: v, writer: cfg.Key()}
	s.ring = append(s.ring, ringSlot{fp: fp, fe: fe, key: k})
	n := c.entries.Add(1)
	if c.capacity > 0 {
		for ; n > int64(c.capacity); n-- {
			s.evictLocked(c)
		}
	}
}

// evictLocked removes one value slot from the shard by second-chance CLOCK:
// the hand sweeps the insertion-ordered ring, clearing reference bits until
// it finds a slot whose bit is already clear. Callers hold the write lock.
func (s *cacheShard) evictLocked(c *CompileCache) {
	for len(s.ring) > 0 {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		rs := s.ring[s.hand]
		if slot := rs.fe.vals[rs.key]; slot != nil && slot.ref {
			slot.ref = false
			s.hand++
			continue
		}
		delete(rs.fe.vals, rs.key)
		s.ring = append(s.ring[:s.hand], s.ring[s.hand+1:]...)
		if len(rs.fe.vals) == 0 {
			s.dropFootprint(rs.fp, rs.fe)
		}
		c.entries.Add(-1)
		c.evictions.Inc()
		return
	}
}

// dropFootprint unlinks an emptied footprint entry from its job (and the
// job itself once footprint-less) so churned templates do not accumulate
// empty shells.
func (s *cacheShard) dropFootprint(fp JobFingerprint, fe *footprintEntry) {
	je := s.jobs[fp]
	if je == nil {
		return
	}
	foots := je.foots[:0]
	for _, f := range je.foots {
		if f != fe {
			foots = append(foots, f)
		}
	}
	je.foots = foots
	if len(je.foots) == 0 {
		delete(s.jobs, fp)
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Projected uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ProjectedRate returns the fraction of hits found through footprint
// projection rather than an exact writer-configuration match.
func (s CacheStats) ProjectedRate() float64 {
	if s.Hits == 0 {
		return 0
	}
	return float64(s.Projected) / float64(s.Hits)
}

// Stats snapshots the counters and entry count. Safe on a nil cache.
func (c *CompileCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Projected: c.projected.Value(),
		Evictions: c.evictions.Value(),
		Entries:   int(c.entries.Load()),
		Capacity:  c.capacity,
	}
}

// jobFingerprint extracts a job's cache fingerprint, and reports whether
// the job is cacheable at all. Ad-hoc jobs (e.g. scripts compiled by the
// CLI) carry no fingerprints; caching them under an all-zero fingerprint
// would alias every script onto one entry, so they bypass the cache.
func jobFingerprint(job *workload.Job) (JobFingerprint, bool) {
	if job.TemplateHash == 0 && job.InstanceHash == 0 && job.InputsHash == 0 {
		return JobFingerprint{}, false
	}
	return JobFingerprint{
		Template: job.TemplateHash,
		Instance: job.InstanceHash,
		Inputs:   job.InputsHash,
	}, true
}
