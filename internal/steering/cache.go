package steering

import (
	"sync"

	"steerq/internal/bitvec"
	"steerq/internal/obs"
	"steerq/internal/workload"
)

// CompileKey identifies one (job instance, rule configuration) compilation.
//
// The production follow-up to the paper (QO-Advisor) keeps the recompilation
// fan-out affordable by never compiling the same recurring input twice; this
// key is how the reproduction gets the same effect. Template identifies the
// recurring job structure, Instance fingerprints the day's bound constants
// (recurring arrivals vary predicate literals, §3.1.1), and Inputs
// fingerprints the set of streams read that day — together they pin exactly
// the facts the estimated-statistics optimizer consumes, so a cached
// {cost, signature} is bit-identical to recompiling.
type CompileKey struct {
	Template uint64
	Instance uint64
	Inputs   uint64
	Config   bitvec.Key
}

// CompileValue is the cached outcome of one compilation. Plans themselves are
// not retained — the pipeline's candidate stage only consumes the estimated
// cost and the rule signature, and dropping the plan keeps a multi-day cache
// small.
type CompileValue struct {
	Cost      float64
	Signature bitvec.Vector
	// OK is false when the configuration did not compile (cascades.ErrNoPlan
	// — the only per-configuration failure the optimizer produces). Failures
	// are cached too: recurring jobs re-probe the same dead configurations.
	OK bool
}

// cacheShards is the fixed shard count. Power of two so the shard pick is a
// mask; 64 shards keep lock contention negligible at any plausible worker
// count.
const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[CompileKey]CompileValue
}

// Cache metric names. The cache always counts through *obs.Counter — a
// standalone pair by default, registry-owned ones after SetObs — so reads
// are atomic everywhere (the bespoke counters steerq-bench used to read are
// gone) and wiring observability re-points rather than duplicates.
const (
	cacheHitsMetric    = "steerq_cache_hits_total"
	cacheMissesMetric  = "steerq_cache_misses_total"
	cacheEntriesMetric = "steerq_cache_entries"
)

// CompileCache is a sharded, concurrency-safe memo of compilation outcomes
// keyed by CompileKey. A single cache is shared across days and experiments
// of one workload; hit/miss counters feed the steerq-bench perf report.
type CompileCache struct {
	shards [cacheShards]cacheShard
	hits   *obs.Counter
	misses *obs.Counter
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	c := &CompileCache{
		hits:   obs.NewCounter(cacheHitsMetric),
		misses: obs.NewCounter(cacheMissesMetric),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[CompileKey]CompileValue)
	}
	return c
}

// SetObs re-points the cache's counters at registry-owned instruments (with
// the given label pairs, e.g. "workload", "A") and registers an entry-count
// gauge. Counts accumulated before the call carry over. Call it before the
// cache is shared across goroutines: the counter fields themselves are not
// synchronized, only their values are.
func (c *CompileCache) SetObs(reg *obs.Registry, labels ...string) {
	if c == nil || reg == nil {
		return
	}
	hits := reg.Counter(cacheHitsMetric, labels...)
	misses := reg.Counter(cacheMissesMetric, labels...)
	hits.Add(c.hits.Value())
	misses.Add(c.misses.Value())
	c.hits, c.misses = hits, misses
	reg.GaugeFunc(cacheEntriesMetric, func() float64 {
		return float64(c.Stats().Entries)
	}, labels...)
}

// shard maps a key to its shard by mixing the fingerprint words; the config
// key's first word distinguishes the M candidate configurations of one job,
// which would otherwise all land in one shard.
func (c *CompileCache) shard(k CompileKey) *cacheShard {
	h := k.Template ^ k.Instance*0x9e3779b97f4a7c15 ^ k.Inputs ^ k.Config[0]*0x85ebca6b ^ k.Config[1]
	return &c.shards[h%cacheShards]
}

// Get returns the cached value for k. The hit/miss counters are updated; a
// nil receiver reports a miss, so call sites need no nil guards.
func (c *CompileCache) Get(k CompileKey) (CompileValue, bool) {
	if c == nil {
		return CompileValue{}, false
	}
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put stores the value for k. Concurrent Puts of the same key are benign:
// compilation is deterministic, so both writers carry identical values.
func (c *CompileCache) Put(k CompileKey, v CompileValue) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters and entry count. Safe on a nil cache.
func (c *CompileCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Hits: c.hits.Value(), Misses: c.misses.Value()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}

// jobKey builds the cache key for compiling job under cfg, and reports
// whether the job is cacheable at all. Ad-hoc jobs (e.g. scripts compiled by
// the CLI) carry no fingerprints; caching them under an all-zero key would
// alias every script onto one entry, so they bypass the cache.
func jobKey(job *workload.Job, cfg bitvec.Vector) (CompileKey, bool) {
	if job.TemplateHash == 0 && job.InstanceHash == 0 && job.InputsHash == 0 {
		return CompileKey{}, false
	}
	return CompileKey{
		Template: job.TemplateHash,
		Instance: job.InstanceHash,
		Inputs:   job.InputsHash,
		Config:   cfg.Key(),
	}, true
}
