package steering_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"steerq/internal/faults"
	"steerq/internal/obs"
	"steerq/internal/steering"
	"steerq/internal/xrand"
)

// obsAnalyze runs one fully instrumented, fault-injected analysis at the
// given worker count on a frozen clock and returns the registry's JSON and
// text serializations.
func obsAnalyze(t *testing.T, workers int) (snapJSON, snapText string) {
	t.Helper()
	reg := obs.NewWithClock(obs.FrozenClock())
	cat := steerCatalog()
	h := steerHarness(cat)
	h.Executor.CheckPlans = true
	in := faults.NewInjector(faults.DefaultPlan(1337))
	h.SetFaults(in)
	h.SetObs(reg)
	h.Opt.SetObs(reg)
	in.Publish(reg)
	cache := steering.NewCompileCache()
	cache.SetObs(reg, "workload", "test")
	p := steering.NewPipeline(h, xrand.New(11).Derive("fault-test"))
	p.MaxCandidates = 40
	p.ExecutePerJob = 5
	p.Workers = workers
	p.Cache = cache
	p.Obs = reg
	job := steerJob(t, cat)
	fingerprintJob(t, job)
	if _, err := p.Analyze(job); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	snap := reg.Snapshot()
	data, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Text(&buf); err != nil {
		t.Fatal(err)
	}
	return string(data), buf.String()
}

// TestObsSnapshotWorkerDeterminism is PR 5's extension of the PR 4
// metamorphic suite: under a frozen clock, the full observability state of a
// faulted analysis — every counter, histogram bucket, gauge, span path and
// outcome — serializes byte-identically at any worker count, in both the JSON
// snapshot and the text exposition. Run under -race this also proves the
// sharded histogram and span recording are data-race free.
//
// STEERQ_VCLOCK is set the way the deterministic CI run sets it: the
// scheduler's per-worker attribution and steal counts are the one
// schedule-dependent corner of the registry, and the virtual clock is the
// switch that canonicalizes them (like it zeroes span durations), so the
// frozen-clock goldens cover them too.
func TestObsSnapshotWorkerDeterminism(t *testing.T) {
	t.Setenv(obs.VClockEnv, "1")
	baseJSON, baseText := obsAnalyze(t, 1)
	for _, want := range []string{
		"steerq_pipeline_candidates_total",
		"steerq_cascades_rule_firings_total",
		"steerq_robustness_retries_total",
		"steerq_par_items_total",
		"steerq_par_queue_depth",
		"steerq_pipeline_merge_seconds",
		"steerq_pipeline_merges_total",
		"pipeline.recompile",
		"abtest.compile",
	} {
		if !strings.Contains(baseJSON, want) {
			t.Fatalf("instrumentation missing %q; determinism test is vacuous:\n%s", want, baseJSON)
		}
	}
	for _, workers := range []int{2, 8} {
		gotJSON, gotText := obsAnalyze(t, workers)
		if gotJSON != baseJSON {
			t.Errorf("workers=%d: JSON snapshot differs from workers=1\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, baseJSON, workers, gotJSON)
		}
		if gotText != baseText {
			t.Errorf("workers=%d: text exposition differs from workers=1\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, baseText, workers, gotText)
		}
	}
}

// TestCompileCacheSetObsCarriesCounts: re-pointing the cache's counters into
// a registry must not lose events already counted, and the registry's view
// must track subsequent activity.
func TestCompileCacheSetObsCarriesCounts(t *testing.T) {
	cat := steerCatalog()
	h := steerHarness(cat)
	p := steering.NewPipeline(h, xrand.New(3).Derive("cache-obs"))
	p.MaxCandidates = 20
	p.Workers = 2
	p.Cache = steering.NewCompileCache()
	job := steerJob(t, cat)
	fingerprintJob(t, job)
	if _, err := p.Recompile(job); err != nil {
		t.Fatal(err)
	}
	before := p.Cache.Stats()
	if before.Misses == 0 {
		t.Fatal("first pass recorded no misses; test is vacuous")
	}

	reg := obs.New()
	p.Cache.SetObs(reg, "workload", "test")
	snap := reg.Snapshot()
	vals := map[string]uint64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["steerq_cache_hits_total"] != before.Hits || vals["steerq_cache_misses_total"] != before.Misses {
		t.Fatalf("SetObs dropped prior counts: registry %v, cache %+v", vals, before)
	}

	// A second pass over the same job hits the cache; both views must agree.
	if _, err := p.Recompile(job); err != nil {
		t.Fatal(err)
	}
	after := p.Cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatal("second pass recorded no hits; test is vacuous")
	}
	snap = reg.Snapshot()
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["steerq_cache_hits_total"] != after.Hits || vals["steerq_cache_misses_total"] != after.Misses {
		t.Fatalf("registry view diverged after SetObs: registry %v, cache %+v", vals, after)
	}
	var entries float64
	for _, g := range snap.Gauges {
		if g.Name == "steerq_cache_entries" {
			entries = g.Value
		}
	}
	if int(entries) != after.Entries {
		t.Fatalf("entries gauge = %v, cache has %d", entries, after.Entries)
	}
}

// TestCompileCacheObsConcurrent hammers an obs-wired cache from many
// goroutines; under -race this is the regression test for the migration from
// bespoke atomic fields to obs counters.
func TestCompileCacheObsConcurrent(t *testing.T) {
	fp := faults.DefaultPlan(77)
	cache := steering.NewCompileCache()
	cache.SetObs(obs.New(), "workload", "test")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := analyzeFaulty(t, 2, cache, fp)
			if a == nil {
				t.Error("analysis returned nil")
			}
		}()
	}
	wg.Wait()
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("hammer recorded no cache traffic; test is vacuous")
	}
}
