package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the allocation discipline of opted-in hot-path packages
// (PR 3 cut the serial pipeline leg from 1.48M to 702K allocs/op; this
// analyzer keeps that from regressing one append at a time). A package opts
// in by carrying the steerq:hotpath file pragma — cascades, plan and bitvec
// do. Two shapes are flagged:
//
//   - a slice declared without capacity that is unconditionally appended to
//     inside a range loop over a known-length operand: every growth step is
//     a fresh allocation plus copy that make(T, 0, len(src)) removes;
//   - string concatenation (+= or s = s + x) inside any loop, which
//     allocates quadratically; strings.Builder or a byte slice is the
//     replacement.
//
// The append rule only fires when the append is a direct child of the loop
// body — conditionally filtered appends may legitimately stay small and are
// left to judgment.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "hot-path packages (steerq:hotpath) must preallocate loop appends and avoid string concatenation in loops",
	SkipTests: true,
	Run:       runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	optedIn := false
	for _, f := range pass.Files {
		if hasFilePragma(f, HotPathPragma) {
			optedIn = true
			break
		}
	}
	if !optedIn {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHotLoops(pass, fd.Body)
		}
	}
}

// checkHotLoops inspects one function body for the two hot-path shapes.
func checkHotLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			checkGrowingAppend(pass, body, loop)
			checkStringConcat(pass, loop.Body)
		case *ast.ForStmt:
			checkStringConcat(pass, loop.Body)
		}
		return true
	})
}

// checkGrowingAppend flags `dest = append(dest, ...)` as a direct child of a
// range-loop body when dest was declared without capacity and the ranged
// operand has a known length.
func checkGrowingAppend(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	opType := pass.Info.Types[rs.X].Type
	if opType == nil || !lenKnown(opType) {
		return
	}
	for _, st := range rs.Body.List {
		assign, ok := st.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			continue
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			continue
		}
		destID, ok := call.Args[0].(*ast.Ident)
		if !ok || pass.Info.ObjectOf(destID) != pass.Info.ObjectOf(id) {
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || obj.Pos() >= rs.Pos() {
			continue // declared inside the loop: grows afresh each iteration
		}
		if !declaredWithoutCap(pass, fnBody, obj) {
			continue
		}
		pass.Reportf(assign.Pos(),
			"append to %s grows inside a range loop over a known-length operand; preallocate with make(..., 0, len(...))",
			id.Name)
	}
}

// checkStringConcat flags string += / s = s + x anywhere inside a loop body
// (excluding nested function literals).
func checkStringConcat(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 {
			return true
		}
		lhs := assign.Lhs[0]
		if !isString(pass, lhs) {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN:
			pass.Reportf(assign.Pos(), "string concatenation in a loop allocates quadratically; use strings.Builder or a byte slice")
		case token.ASSIGN:
			if bin, ok := assign.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD && sameObject(pass, lhs, bin.X) {
				pass.Reportf(assign.Pos(), "string concatenation in a loop allocates quadratically; use strings.Builder or a byte slice")
			}
		}
		return true
	})
}

// declaredWithoutCap reports whether the slice object is declared in this
// function as `var x []T`, `x := []T{}`, `x := []T(nil)` or
// `x := make([]T, 0)` — every form that starts at capacity zero.
func declaredWithoutCap(pass *Pass, fnBody *ast.BlockStmt, obj types.Object) bool {
	result := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if pass.Info.ObjectOf(name) == obj {
						result = true
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.ObjectOf(id) != obj || i >= len(st.Rhs) {
					continue
				}
				if zeroCapSliceExpr(pass, st.Rhs[i]) {
					result = true
				}
			}
		}
		return true
	})
	return result
}

// zeroCapSliceExpr recognizes []T{}, []T(nil) and make([]T, 0).
func zeroCapSliceExpr(pass *Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		t := pass.Info.Types[v].Type
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice && len(v.Elts) == 0
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(v.Args) == 2 {
				tv := pass.Info.Types[v.Args[1]]
				return tv.Value != nil && tv.Value.ExactString() == "0"
			}
		}
		// []T(nil) conversion.
		t := pass.Info.Types[v].Type
		if t == nil {
			return false
		}
		if _, isSlice := t.Underlying().(*types.Slice); isSlice && len(v.Args) == 1 {
			if id, ok := v.Args[0].(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// lenKnown reports whether ranging over the type yields a cheaply derivable
// length (slices, arrays, maps, strings — everything len() accepts).
func lenKnown(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, isArray := u.Elem().Underlying().(*types.Array)
		return isArray
	}
	return false
}

// sameObject reports whether two expressions are uses of the same object.
func sameObject(pass *Pass, a, b ast.Expr) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	ao := pass.Info.ObjectOf(ai)
	return ao != nil && ao == pass.Info.ObjectOf(bi)
}
