package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// DetCheck enforces the repo's determinism contract at compile time: the
// byte-identical W1-vs-W8 pipeline output that the metamorphic suites assert
// dynamically dies to exactly two classes of bug, and both are visible in the
// syntax tree.
//
// Wall-clock reads: any use of time.Now, time.Since, time.Until or the
// implicit-clock timer constructors (time.After, time.Tick, time.NewTimer,
// time.NewTicker) is flagged. Production code threads an obs.Clock
// (obs.ClockFromEnv respects STEERQ_VCLOCK); the one approved raw seam is
// obs.WallClock, which carries the steerq:allow-wallclock pragma — as must
// any other deliberate exception, with a justification.
//
// Map-iteration escapes: ranging over a map is fine as long as the visit
// order cannot be observed. The analyzer flags loops whose yielded keys or
// values escape into an outer slice (via append), an outer string (via
// concatenation), a metric label (an obs.Registry instrument call) or a
// return value. Slice escapes are suppressed when a sort call follows the
// loop in the same function — the canonical collect-then-sort idiom — and
// carry a suggested fix inserting sort.Strings/sort.Ints after the loop when
// the element type allows it. String, label and return escapes have no
// sorting repair and are always flagged.
var DetCheck = &Analyzer{
	Name:      "detcheck",
	Doc:       "no wall-clock reads and no map-iteration order escaping into output, outside approved seams",
	SkipTests: true,
	Run:       runDetCheck,
}

// wallClockFuncs are the time-package identifiers that read or schedule off
// the real clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runDetCheck(pass *Pass) {
	for _, f := range pass.Files {
		allowed := pragmaLines(pass.Fset, f, AllowWallclockPragma)
		checkWallClock(pass, f, allowed)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkMapRanges(pass, f, fd.Body)
			}
		}
	}
}

// checkWallClock flags every selector use of a wall-clock time function not
// covered by a steerq:allow-wallclock pragma.
func checkWallClock(pass *Pass, f *ast.File, allowed map[int]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		if allowed[pass.Fset.Position(sel.Pos()).Line] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"wall-clock read time.%s breaks run-to-run determinism; thread an obs.Clock (obs.ClockFromEnv) or annotate with %q and a justification",
			sel.Sel.Name, "// "+AllowWallclockPragma)
		return true
	})
}

// mapEscape is one observed escape of a map-range variable out of the loop.
type mapEscape struct {
	pos  token.Pos
	kind string // "slice", "string", "label", "return"
	// dest is the append destination object for slice escapes (nil when the
	// destination is not a plain identifier, e.g. a struct field).
	dest types.Object
	// destName/destElem drive the suggested sort-insertion fix.
	destName string
	destElem types.Type
}

// checkMapRanges walks one function body looking for map-range statements
// whose loop variables escape, applying the collect-then-sort suppression.
func checkMapRanges(pass *Pass, f *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv := pass.Info.Types[rs.X]
		if tv.Type == nil {
			return true
		}
		if _, ok := tv.Type.Underlying().(*types.Map); !ok {
			return true
		}
		vars := rangeVars(pass, rs)
		if len(vars) == 0 {
			return true
		}
		escapes := findEscapes(pass, rs, vars)
		if len(escapes) == 0 {
			return true
		}
		sorted := sortFollows(pass, body, rs.End())
		for _, esc := range escapes {
			if esc.kind == "slice" && sorted {
				continue // collect-then-sort idiom: order is re-established
			}
			var fix *Fix
			if esc.kind == "slice" {
				fix = sortInsertionFix(pass, f, rs, esc)
			}
			pass.ReportFix(esc.pos, fix,
				"map iteration order escapes into a %s without an intervening sort; iterate sorted keys or sort the result",
				esc.kind)
		}
		return true
	})
}

// rangeVars collects the non-blank key/value objects a range statement binds.
func rangeVars(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			vars[obj] = true // tok == ASSIGN: reusing an outer variable
		}
	}
	return vars
}

// findEscapes scans a map-range body for the four escape shapes.
func findEscapes(pass *Pass, rs *ast.RangeStmt, vars map[types.Object]bool) []mapEscape {
	var escapes []mapEscape
	var closures []*ast.FuncLit
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			closures = append(closures, fl)
		}
		return true
	})
	inClosure := func(pos token.Pos) bool {
		for _, fl := range closures {
			if fl.Pos() <= pos && pos < fl.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			escapes = append(escapes, assignEscapes(pass, rs, st, vars)...)
		case *ast.ReturnStmt:
			// A return inside a closure (e.g. a sort.Slice comparator) does
			// not return from the enclosing function.
			if inClosure(st.Pos()) {
				return true
			}
			for _, r := range st.Results {
				if usesAny(pass, r, vars) {
					escapes = append(escapes, mapEscape{pos: st.Pos(), kind: "return"})
					break
				}
			}
		case *ast.CallExpr:
			if name, ok := obsInstrumentCall(pass, st); ok {
				for _, arg := range st.Args {
					if usesAny(pass, arg, vars) {
						escapes = append(escapes, mapEscape{pos: st.Pos(), kind: "label"})
						break
					}
				}
				_ = name
			}
		}
		return true
	})
	return escapes
}

// assignEscapes detects `dest = append(dest, ...loopvar...)` and
// `dest += loopvar` / `dest = dest + loopvar` where dest outlives the loop.
func assignEscapes(pass *Pass, rs *ast.RangeStmt, st *ast.AssignStmt, vars map[types.Object]bool) []mapEscape {
	var escapes []mapEscape
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		lhs := st.Lhs[i]
		// String concatenation: s += v, or s = s + v.
		if st.Tok == token.ADD_ASSIGN && isString(pass, lhs) && usesAny(pass, rhs, vars) && declaredOutside(pass, lhs, rs) {
			escapes = append(escapes, mapEscape{pos: st.Pos(), kind: "string"})
			continue
		}
		if bin, ok := rhs.(*ast.BinaryExpr); ok && st.Tok == token.ASSIGN && bin.Op == token.ADD &&
			isString(pass, lhs) && usesAny(pass, rhs, vars) && declaredOutside(pass, lhs, rs) {
			escapes = append(escapes, mapEscape{pos: st.Pos(), kind: "string"})
			continue
		}
		// Slice growth: dest = append(dest, ...loopvar...).
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			continue
		}
		escaping := false
		for _, arg := range call.Args[1:] {
			if usesAny(pass, arg, vars) {
				escaping = true
				break
			}
		}
		if !escaping || !declaredOutside(pass, lhs, rs) {
			continue
		}
		esc := mapEscape{pos: st.Pos(), kind: "slice"}
		if id, ok := lhs.(*ast.Ident); ok {
			esc.dest = pass.Info.ObjectOf(id)
			esc.destName = id.Name
			if t := pass.Info.Types[lhs].Type; t != nil {
				if sl, ok := t.Underlying().(*types.Slice); ok {
					esc.destElem = sl.Elem()
				}
			}
		}
		escapes = append(escapes, esc)
	}
	return escapes
}

// sortFollows reports whether any call into package sort (or a method named
// Sort) appears after pos within the function body. The heuristic is
// deliberately permissive — a later sort re-establishes deterministic order
// for the collect-then-sort idiom, and a false negative here still fails the
// golden metrics diff in CI.
func sortFollows(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sort" {
					found = true
				}
			}
			if fun.Sel.Name == "Sort" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "Sort" {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortInsertionFix builds the suggested repair for a slice escape: insert
// sort.Strings/sort.Ints on the destination directly after the loop, adding
// the "sort" import when the file has a parenthesized import block to put it
// in. Returns nil when the element type has no one-call sort.
func sortInsertionFix(pass *Pass, f *ast.File, rs *ast.RangeStmt, esc mapEscape) *Fix {
	if esc.destName == "" || esc.destElem == nil {
		return nil
	}
	basic, ok := esc.destElem.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var call string
	switch basic.Kind() {
	case types.String:
		call = "sort.Strings"
	case types.Int:
		call = "sort.Ints"
	default:
		return nil
	}
	fix := &Fix{
		Message: "insert " + call + "(" + esc.destName + ") after the loop",
		Edits:   []Edit{pass.Edit(rs.End(), rs.End(), "\n"+call+"("+esc.destName+")")},
	}
	if imp := importInsertionEdit(pass, f, "sort"); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	} else if !importsPackage(f, "sort") {
		return nil // nowhere safe to add the import; report without a fix
	}
	return fix
}

// importsPackage reports whether f already imports the given path.
func importsPackage(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

// importInsertionEdit returns an edit adding path to f's first parenthesized
// import block, or nil when the import already exists or there is no block.
func importInsertionEdit(pass *Pass, f *ast.File, path string) *Edit {
	if importsPackage(f, path) {
		return nil
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		e := pass.Edit(gd.Lparen+1, gd.Lparen+1, "\n\t"+strconv.Quote(path))
		return &e
	}
	return nil
}

// usesAny reports whether the expression references any of the given objects.
func usesAny(pass *Pass, e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && vars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredOutside reports whether the assignment target was declared outside
// the range statement (so writes through it survive the loop). Non-identifier
// targets (fields, index expressions) are treated as outside.
func declaredOutside(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// isString reports whether the expression has string type.
func isString(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// obsInstrumentCall reports whether the call registers an obs instrument
// (Registry.Counter/Gauge/GaugeFunc/Histogram or obs.NewCounter), returning
// the method name.
func obsInstrumentCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Counter", "Gauge", "GaugeFunc", "Histogram", "NewCounter":
	default:
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.ModulePath+"/internal/obs" {
		return "", false
	}
	return name, true
}
