package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// ObsLabels is cardinality protection for the metrics plane (and the future
// steerqd /metrics endpoint): every instrument registered against an
// obs.Registry must have a compile-time-constant, well-formed name, constant
// well-formed label keys, and label values that are not manufactured from
// unbounded inputs via fmt.Sprintf/Sprint or strconv conversions — the two
// idioms that turn a job ID or a float into a fresh timeseries per request.
//
// Checked calls: Registry.Counter / Gauge / GaugeFunc / Histogram and
// obs.NewCounter. Label pairs forwarded with a `labels...` spread cannot be
// inspected statically and are skipped — the analyzer checks the literal
// pairs at whatever call site constructs them. The obs package itself is
// exempt, exactly as internal/xrand is exempt from randcheck: it is the seam
// that implements the discipline.
var ObsLabels = &Analyzer{
	Name: "obslabels",
	Doc:  "metric names and label keys are constant and well-formed; label values are never built from unbounded inputs",
	Run:  runObsLabels,
}

var (
	metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_:]*$`)
	labelKeyRe   = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

func runObsLabels(pass *Pass) {
	if pass.Pkg.Path() == pass.ModulePath+"/internal/obs" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := obsInstrumentCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call.Args[0])
			// Label varargs start after (name) for Counter/Gauge/NewCounter
			// and after (name, bounds|fn) for Histogram/GaugeFunc.
			labelStart := 1
			if method == "Histogram" || method == "GaugeFunc" {
				labelStart = 2
			}
			if len(call.Args) <= labelStart {
				return true
			}
			if call.Ellipsis.IsValid() {
				return true // labels... spread: checked where the slice is built
			}
			for i, arg := range call.Args[labelStart:] {
				if i%2 == 0 {
					checkLabelKey(pass, arg)
				} else {
					checkLabelValue(pass, arg)
				}
			}
			return true
		})
	}
}

// checkMetricName requires a constant name matching the exposition grammar.
func checkMetricName(pass *Pass, arg ast.Expr) {
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "metric name is not a compile-time constant; dynamic names create unbounded metric families")
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q does not match %s", name, metricNameRe)
	}
}

// checkLabelKey requires a constant key matching the label grammar.
func checkLabelKey(pass *Pass, arg ast.Expr) {
	key, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "metric label key is not a compile-time constant; dynamic keys create unbounded label dimensions")
		return
	}
	if !labelKeyRe.MatchString(key) {
		pass.Reportf(arg.Pos(), "metric label key %q does not match %s", key, labelKeyRe)
	}
}

// checkLabelValue flags values manufactured from unbounded inputs. Constants,
// enum String() methods and plain variables pass; direct fmt/strconv
// conversions do not.
func checkLabelValue(pass *Pass, arg ast.Expr) {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			pass.Reportf(arg.Pos(), "metric label value built with fmt.%s; formatted values explode cardinality — use a bounded enum or a histogram", fn.Name())
		}
	case "strconv":
		pass.Reportf(arg.Pos(), "metric label value built with strconv.%s; numeric label values explode cardinality — use a bounded enum or a histogram", fn.Name())
	}
}

// constString extracts a compile-time constant string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv := pass.Info.Types[e]
	if tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}
