// Package analysis is a stdlib-only static-analysis engine (go/ast +
// go/types, no external dependencies) enforcing steerq's project invariants:
// the 256-rule catalog census, exhaustive handling of plan enumerations,
// deterministic randomness, panic-free library code, and wrapped errors at
// package boundaries.
//
// The engine mirrors the shape of golang.org/x/tools/go/analysis at a much
// smaller scale: a Loader type-checks the whole module from source, each
// Analyzer runs a single pass over one type-checked unit, and diagnostics
// carry exact file:line:column positions. The driver lives in
// cmd/steerq-lint.
//
// # Suppression pragma
//
// A statement may be exempted from panicfree by a comment containing the
// token "steerq:allow-panic" on the same line or the line directly above,
// together with a justification:
//
//	// steerq:allow-panic — mirrors slice indexing semantics.
//	panic(fmt.Sprintf("bitvec: bit %d out of range", i))
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllowPanicPragma is the comment token that exempts the next (or same) line
// from the panicfree analyzer. It must be followed by a justification.
const AllowPanicPragma = "steerq:allow-panic"

// Diagnostic is one finding, positioned at a concrete file location.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is a single-pass check over one type-checked unit.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTests excludes units that contain _test.go files. Test code
	// legitimately pattern-matches a few enum members or panics in helpers.
	SkipTests bool
	Run       func(*Pass)
}

// Pass hands one type-checked unit to an analyzer. Files holds only the
// files diagnostics may be reported against (for test units, just the test
// files — the base files were already analyzed in the base unit).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the module's import-path prefix ("steerq").
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// LibraryPackage reports whether the pass's package is library code: inside
// the module's internal/ tree. Binaries (cmd/, examples/) and external
// modules are not library packages.
func (p *Pass) LibraryPackage() bool {
	return strings.HasPrefix(p.Pkg.Path(), p.ModulePath+"/internal/")
}

// allowedLines returns the set of file lines covered by an allow pragma: the
// pragma's own line and the line below it, so the comment may sit on the
// flagged line or directly above it.
func allowedLines(fset *token.FileSet, f *ast.File, pragma string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, pragma) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// Analyzers returns every registered analyzer in a stable order.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		RuleCheck,
		ExhaustiveSwitch,
		RandCheck,
		PanicFree,
		ErrWrap,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Run executes the analyzers over the units and returns all diagnostics
// sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			if a.SkipTests && u.Test {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       u.Fset,
				Files:      u.Files,
				Pkg:        u.Pkg,
				Info:       u.Info,
				ModulePath: u.ModulePath,
				diags:      &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
