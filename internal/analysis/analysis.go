// Package analysis is a stdlib-only static-analysis engine (go/ast +
// go/types, no external dependencies) enforcing steerq's project invariants:
// the 256-rule catalog census, exhaustive handling of plan enumerations,
// deterministic randomness, panic-free library code, wrapped errors at
// package boundaries, and — because the repo's core claim is byte-identical
// pipeline output at any worker count — determinism itself: no stray
// wall-clock reads, no map-iteration order escaping into output, paired
// mutexes, bounded metric labels, threaded contexts and allocation-lean hot
// paths.
//
// The engine mirrors the shape of golang.org/x/tools/go/analysis at a much
// smaller scale: a Loader type-checks the whole module from source, each
// Analyzer runs a single pass over one type-checked unit, and diagnostics
// carry exact file:line:column positions plus optional machine-applicable
// fixes. The driver lives in cmd/steerq-lint; output formats (text, JSON,
// SARIF), the fix applier, the findings baseline and the .steerqlint.json
// configuration live in this package so they are unit-testable.
//
// # Suppression pragmas
//
// See pragma.go for the full vocabulary (steerq:allow-panic,
// steerq:allow-wallclock, steerq:hotpath). Line pragmas cover the comment's
// line and the line directly below and should carry a justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a concrete file location. A
// diagnostic may carry suggested fixes that -fix can apply mechanically.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []Fix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is a single-pass check over one type-checked unit.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTests excludes units that contain _test.go files. Test code
	// legitimately pattern-matches a few enum members or panics in helpers.
	SkipTests bool
	Run       func(*Pass)
}

// Pass hands one type-checked unit to an analyzer. Files holds only the
// files diagnostics may be reported against (for test units, just the test
// files — the base files were already analyzed in the base unit).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the module's import-path prefix ("steerq").
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix records a diagnostic at pos carrying an optional suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil && len(fix.Edits) > 0 {
		d.Fixes = []Fix{*fix}
	}
	*p.diags = append(*p.diags, d)
}

// Edit converts a token.Pos range plus replacement text into a byte-offset
// Edit against the position's file.
func (p *Pass) Edit(pos, end token.Pos, newText string) Edit {
	from := p.Fset.Position(pos)
	to := p.Fset.Position(end)
	return Edit{
		Filename: from.Filename,
		Start:    from.Offset,
		End:      to.Offset,
		NewText:  newText,
	}
}

// LibraryPackage reports whether the pass's package is library code: inside
// the module's internal/ tree. Binaries (cmd/, examples/) and external
// modules are not library packages.
func (p *Pass) LibraryPackage() bool {
	return strings.HasPrefix(p.Pkg.Path(), p.ModulePath+"/internal/")
}

// Analyzers returns every registered analyzer in a stable order.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		RuleCheck,
		ExhaustiveSwitch,
		RandCheck,
		PanicFree,
		ErrWrap,
		DetCheck,
		LockCheck,
		ObsLabels,
		CtxFlow,
		HotAlloc,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Run executes the analyzers over the units and returns all diagnostics
// sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			if a.SkipTests && u.Test {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       u.Fset,
				Files:      u.Files,
				Pkg:        u.Pkg,
				Info:       u.Info,
				ModulePath: u.ModulePath,
				diags:      &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
