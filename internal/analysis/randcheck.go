package analysis

import (
	"strconv"
)

// RandCheck forbids importing math/rand (and math/rand/v2) anywhere but
// internal/xrand. Every stochastic component must draw from xrand's
// seed-derived streams so experiments stay reproducible: a stray math/rand
// global would perturb results across runs and across unrelated code changes.
// Test files are included — a test seeding math/rand directly is exactly the
// nondeterminism the rule exists to prevent.
var RandCheck = &Analyzer{
	Name: "randcheck",
	Doc:  "math/rand may be imported only by internal/xrand",
	Run:  runRandCheck,
}

func runRandCheck(pass *Pass) {
	if pass.Pkg.Path() == pass.ModulePath+"/internal/xrand" {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/xrand; derive a stream from internal/xrand instead", path)
			}
		}
	}
}
