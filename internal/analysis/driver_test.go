package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixModule lays down a tiny self-contained module with exactly one
// finding — a fixable detcheck slice escape — so driver output is pinnable
// byte-for-byte and -fix has something mechanical to repair.
func writeFixModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	gomod := "module fixmod\n\ngo 1.21\n"
	src := `package fixmod

import (
	"fmt"
)

// Keys collects map keys without sorting.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Hello anchors the fmt import.
func Hello() { fmt.Println("hi") }
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "det.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// loadFixModule type-checks the module with a fresh loader and runs detcheck.
func loadFixModule(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	return Run(units, []*Analyzer{DetCheck})
}

const goldenJSON = `{
  "tool": "steerq-lint",
  "findings": [
    {
      "analyzer": "detcheck",
      "severity": "error",
      "file": "det.go",
      "line": 11,
      "column": 3,
      "message": "map iteration order escapes into a slice without an intervening sort; iterate sorted keys or sort the result",
      "fixable": true
    }
  ]
}
`

const goldenSARIF = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "steerq-lint",
          "rules": [
            {
              "id": "detcheck",
              "shortDescription": {
                "text": "no wall-clock reads and no map-iteration order escaping into output, outside approved seams"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "detcheck",
          "level": "error",
          "message": {
            "text": "map iteration order escapes into a slice without an intervening sort; iterate sorted keys or sort the result"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "det.go"
                },
                "region": {
                  "startLine": 11,
                  "startColumn": 3
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
`

// TestReportJSONGolden pins the -format=json byte layout the CI archive
// depends on.
func TestReportJSONGolden(t *testing.T) {
	dir := writeFixModule(t)
	diags := loadFixModule(t, dir)
	rep := NewReport(dir, diags, nil)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.String() != goldenJSON {
		t.Errorf("JSON report drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), goldenJSON)
	}
}

// TestSARIFGolden pins the -format=sarif byte layout, including the rule
// catalog emitted for a clean run's coverage documentation.
func TestSARIFGolden(t *testing.T) {
	dir := writeFixModule(t)
	diags := loadFixModule(t, dir)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, dir, diags, nil, []*Analyzer{DetCheck}); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if buf.String() != goldenSARIF {
		t.Errorf("SARIF report drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), goldenSARIF)
	}
}

// TestWriteText pins the human format: file:line:col: analyzer: message.
func TestWriteText(t *testing.T) {
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Analyzer: "detcheck",
		Message:  "boom",
	}}
	var buf bytes.Buffer
	if err := WriteText(&buf, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "a.go:3:7: detcheck: boom\n"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
}

// TestApplyFixesIdempotent applies the suggested sort insertion and verifies
// the repaired module is finding-free, gofmt-clean, and that a second -fix
// pass is a no-op.
func TestApplyFixesIdempotent(t *testing.T) {
	dir := writeFixModule(t)
	diags := loadFixModule(t, dir)
	if len(diags) != 1 || len(diags[0].Fixes) != 1 {
		t.Fatalf("want exactly one fixable finding, got %v", diags)
	}
	n, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if n != 1 {
		t.Fatalf("applied %d fixes, want 1", n)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "det.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "sort.Strings(out)") {
		t.Errorf("fix did not insert sort call:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), "\"sort\"") {
		t.Errorf("fix did not add the sort import:\n%s", fixed)
	}
	// The repaired tree must be clean on a fresh load, so a re-run has
	// nothing to apply: the idempotency contract of -fix.
	again := loadFixModule(t, dir)
	if len(again) != 0 {
		t.Fatalf("repaired module still has findings: %v", again)
	}
	n2, err := ApplyFixes(again)
	if err != nil || n2 != 0 {
		t.Fatalf("second pass applied %d fixes (err %v), want 0", n2, err)
	}
}

// TestApplyFixesOverlap rejects overlapping edits without touching the file.
func TestApplyFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f.go")
	orig := []byte("package p\n")
	if err := os.WriteFile(name, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{{
		Analyzer: "x",
		Fixes: []Fix{{
			Message: "conflicting",
			Edits: []Edit{
				{Filename: name, Start: 0, End: 5, NewText: "a"},
				{Filename: name, Start: 3, End: 7, NewText: "b"},
			},
		}},
	}}
	if _, err := ApplyFixes(diags); err == nil {
		t.Fatal("overlapping edits must error")
	}
	after, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, orig) {
		t.Errorf("file modified despite overlap error: %q", after)
	}
}

// TestApplyFixesDedup applies byte-identical edits (two findings suggesting
// the same import insertion) exactly once.
func TestApplyFixesDedup(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f.go")
	if err := os.WriteFile(name, []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edit := Edit{Filename: name, Start: 9, End: 9, NewText: "\n\nvar V = 1"}
	diags := []Diagnostic{
		{Analyzer: "x", Fixes: []Fix{{Message: "add V", Edits: []Edit{edit}}}},
		{Analyzer: "y", Fixes: []Fix{{Message: "add V", Edits: []Edit{edit}}}},
	}
	if _, err := ApplyFixes(diags); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(after), "var V = 1"); got != 1 {
		t.Errorf("identical edit applied %d times, want 1:\n%s", got, after)
	}
}

// TestBaselineLifecycle covers the whole grandfather flow: build, write,
// reload, suppress, and staleness when a grandfathered finding disappears.
func TestBaselineLifecycle(t *testing.T) {
	root := filepath.FromSlash("/work/mod")
	diags := []Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(root, "b.go"), Line: 9}, Analyzer: "lockcheck", Message: "m2"},
		{Pos: token.Position{Filename: filepath.Join(root, "a.go"), Line: 3}, Analyzer: "detcheck", Message: "m1"},
	}
	b := NewBaseline(root, diags)
	if len(b.Entries) != 2 || b.Entries[0].File != "a.go" || b.Entries[1].File != "b.go" {
		t.Fatalf("baseline not sorted by file: %+v", b.Entries)
	}

	path := filepath.Join(t.TempDir(), "lint-baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, suppressed, stale := loaded.Apply(root, diags)
	if len(kept) != 0 || suppressed != 2 || len(stale) != 0 {
		t.Errorf("full match: kept=%d suppressed=%d stale=%d, want 0/2/0", len(kept), suppressed, len(stale))
	}

	// One finding fixed: its entry is now stale and must be surfaced.
	kept, suppressed, stale = loaded.Apply(root, diags[:1])
	if len(kept) != 0 || suppressed != 1 || len(stale) != 1 || stale[0].Analyzer != "detcheck" {
		t.Errorf("after fix: kept=%d suppressed=%d stale=%+v, want 0/1/[detcheck]", len(kept), suppressed, stale)
	}

	// A new finding passes through untouched.
	fresh := Diagnostic{Pos: token.Position{Filename: filepath.Join(root, "c.go"), Line: 1}, Analyzer: "ctxflow", Message: "m3"}
	kept, suppressed, stale = loaded.Apply(root, append(diags, fresh))
	if len(kept) != 1 || kept[0].Analyzer != "ctxflow" || suppressed != 2 || len(stale) != 0 {
		t.Errorf("new finding: kept=%v suppressed=%d stale=%d", kept, suppressed, len(stale))
	}

	// Nil and empty baselines are pass-through.
	var nilB *Baseline
	kept, suppressed, stale = nilB.Apply(root, diags)
	if len(kept) != 2 || suppressed != 0 || len(stale) != 0 {
		t.Errorf("nil baseline must pass findings through")
	}
}

func TestLoadBaselineStrict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"entries": [], "extra": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("unknown field must fail strict decoding")
	}
}

// TestConfig exercises .steerqlint.json parsing and the nil-config defaults.
func TestConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ConfigFile)
	body := `{"analyzers": {"hotalloc": {"enabled": false}, "errwrap": {"severity": "warning"}}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	if cfg.Enabled("hotalloc") {
		t.Error("hotalloc must be disabled")
	}
	if !cfg.Enabled("detcheck") {
		t.Error("unlisted analyzers stay enabled")
	}
	if got := cfg.Severity("errwrap"); got != SeverityWarning {
		t.Errorf("errwrap severity = %q, want warning", got)
	}
	if got := cfg.Severity("detcheck"); got != SeverityError {
		t.Errorf("default severity = %q, want error", got)
	}
	if got := len(cfg.Select(Analyzers())); got != len(Analyzers())-1 {
		t.Errorf("Select kept %d analyzers, want %d", got, len(Analyzers())-1)
	}

	var nilCfg *Config
	if !nilCfg.Enabled("anything") || nilCfg.Severity("anything") != SeverityError {
		t.Error("nil config must enable everything at error severity")
	}
	if got := len(nilCfg.Select(Analyzers())); got != len(Analyzers()) {
		t.Errorf("nil Select kept %d, want all", got)
	}
}

func TestConfigRejectsUnknowns(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"unknown analyzer": `{"analyzers": {"nosuch": {}}}`,
		"bad severity":     `{"analyzers": {"detcheck": {"severity": "fatal"}}}`,
		"unknown field":    `{"analysers": {}}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: LoadConfig must fail", name)
		}
	}
}
