package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestIsPragmaComment(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"// steerq:allow-panic — justified", true},
		{"//steerq:allow-panic", true},
		{"//\tsteerq:allow-panic", true},
		{"/* steerq:allow-panic */", true},
		{"// steerq:allow-panic", true},
		// Mid-sentence mentions are documentation, not directives.
		{"// honor the steerq:allow-panic pragma here", false},
		{"// the token \"steerq:allow-panic\" suppresses", false},
		{"// steerq:allow-wallclock", false}, // different pragma
		{"// nothing at all", false},
	}
	for _, c := range cases {
		if got := isPragmaComment(c.text, AllowPanicPragma); got != c.want {
			t.Errorf("isPragmaComment(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestPragmaLinesWindow(t *testing.T) {
	src := `package p

func f() {
	// steerq:allow-panic — next line covered
	panic("a")
	panic("b")
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	lines := pragmaLines(fset, f, AllowPanicPragma)
	if !lines[4] || !lines[5] {
		t.Errorf("pragma on line 4 must cover lines 4 and 5, got %v", lines)
	}
	if lines[6] {
		t.Errorf("line 6 must not be covered, got %v", lines)
	}
}

func TestHasFilePragma(t *testing.T) {
	const withPragma = `// Package p is hot.
//
// steerq:hotpath — opted in.
package p
`
	const mentionOnly = `// Package p documents the steerq:hotpath pragma without carrying it.
package p
`
	fset := token.NewFileSet()
	fp, err := parser.ParseFile(fset, "a.go", withPragma, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := parser.ParseFile(fset, "b.go", mentionOnly, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFilePragma(fp, HotPathPragma) {
		t.Error("leading-token pragma comment not detected")
	}
	if hasFilePragma(fm, HotPathPragma) {
		t.Error("mid-sentence mention must not count as a file pragma")
	}
}
