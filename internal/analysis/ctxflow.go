package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the context discipline the *Ctx method family established
// in internal/par, internal/faults and internal/steering:
//
//   - a function named with the Ctx suffix takes context.Context as its
//     first parameter — the suffix is the API promise that cancellation
//     propagates;
//   - a function that already has a context in scope never manufactures a
//     fresh root with context.Background() or context.TODO(); the in-scope
//     context is threaded instead (this is the bug that silently detaches a
//     subtree from pipeline cancellation). These findings carry a fix that
//     substitutes the in-scope identifier;
//   - no struct stores a context.Context field — contexts flow through call
//     chains, never through state (the contextcheck rule from the stdlib's
//     own documentation).
//
// Non-Ctx wrappers (Analyze calling AnalyzeCtx(context.Background(), ...))
// have no context in scope and stay legal: that is precisely the sanctioned
// place to mint a root context.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "Ctx-suffixed functions take context first, in-scope contexts are propagated (not re-rooted), and contexts are never stored in structs",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkCtxSignature(pass, d)
				if d.Body != nil {
					checkCtxPropagation(pass, d.Body, ctxParamName(pass, d.Type))
				}
			case *ast.GenDecl:
				checkCtxFields(pass, d)
			}
		}
	}
}

// checkCtxSignature flags Ctx-suffixed functions whose first parameter is not
// a context.Context.
func checkCtxSignature(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if len(name) <= 3 || name[len(name)-3:] != "Ctx" {
		return
	}
	params := fn.Type.Params
	if params != nil && len(params.List) > 0 && isContextType(pass, params.List[0].Type) {
		return
	}
	pass.Reportf(fn.Pos(), "%s has the Ctx suffix but does not take context.Context as its first parameter", name)
}

// checkCtxPropagation walks one function scope. ctxName is the innermost
// in-scope context parameter ("" when none); nested literals that declare
// their own context parameter shadow it, and literals without one inherit it
// by capture.
func checkCtxPropagation(pass *Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			inner := ctxParamName(pass, e.Type)
			if inner == "" {
				inner = ctxName
			}
			checkCtxPropagation(pass, e.Body, inner)
			return false
		case *ast.CallExpr:
			if ctxName == "" {
				return true
			}
			for _, arg := range e.Args {
				if isCtxRoot(pass, arg) {
					fix := &Fix{
						Message: "thread the in-scope context " + ctxName,
						Edits:   []Edit{pass.Edit(arg.Pos(), arg.End(), ctxName)},
					}
					pass.ReportFix(arg.Pos(), fix,
						"context root minted with a context parameter %s in scope; propagate %s instead of detaching from cancellation",
						ctxName, ctxName)
				}
			}
		}
		return true
	})
}

// checkCtxFields flags struct types with a context.Context field.
func checkCtxFields(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			if isContextType(pass, field.Type) {
				pass.Reportf(field.Pos(), "struct %s stores a context.Context; pass contexts through call chains, not state", ts.Name.Name)
			}
		}
	}
}

// ctxParamName returns the name of the first context.Context parameter of a
// function type, "" when absent or blank.
func ctxParamName(pass *Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
		return ""
	}
	return ""
}

// isCtxRoot recognizes context.Background() and context.TODO() calls.
func isCtxRoot(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isContextType reports whether the type expression denotes context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
