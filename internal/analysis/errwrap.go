package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the error idiom at library package boundaries: every
// fmt.Errorf format string starts with the package name ("pkg: ...") or
// wraps an already-prefixed error ("%w ..."), and any error passed as an
// argument is wrapped with %w rather than flattened with %v/%s, so callers
// can errors.Is/As through the boundary.
var ErrWrap = &Analyzer{
	Name:      "errwrap",
	Doc:       "fmt.Errorf in library packages must prefix the package name and wrap errors with %w",
	SkipTests: true,
	Run:       runErrWrap,
}

func runErrWrap(pass *Pass) {
	if !pass.LibraryPackage() {
		return
	}
	errType := errorInterface()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass, call.Fun, "fmt", "Errorf") || len(call.Args) == 0 {
				return true
			}
			tv := pass.Info.Types[call.Args[0]]
			if tv.Value == nil {
				return true // non-constant format: out of scope
			}
			format, err := strconv.Unquote(tv.Value.ExactString())
			if err != nil {
				return true
			}
			prefix := pass.Pkg.Name() + ": "
			if !strings.HasPrefix(format, prefix) && !strings.HasPrefix(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf format %q must start with %q (or wrap with a leading %%w)", format, prefix)
			}
			if strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				at := pass.Info.Types[arg].Type
				if at != nil && types.Implements(at, errType) {
					pass.Reportf(arg.Pos(), "error argument flattened by fmt.Errorf; wrap it with %%w")
				}
			}
			return true
		})
	}
}

// isPkgFunc reports whether fun is a selector pkg.Name resolving to the
// package with the given import path.
func isPkgFunc(pass *Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// errorInterface returns the universe error interface type.
func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
