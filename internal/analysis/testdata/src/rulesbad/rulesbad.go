// Package rules (fixture "rulesbad") seeds violations for the rulecheck
// analyzer: a miniature 8-rule catalog with a duplicate registration, a
// band/category mismatch, a duplicate name, coverage gaps, an orphaned ID
// constant, and a rule literal missing its info stamp.
package rules

import "steerq/internal/cascades"

const (
	IDAlpha  = 0
	IDBeta   = 1
	IDGamma  = 2
	IDOrphan = 3 // want "never used by a catalog registration"
)

const (
	requiredEnd     = 2 // want "never registered"
	offByDefaultEnd = 4
	onByDefaultEnd  = 6
	catalogEnd      = 8
)

type info cascades.RuleInfo

func (i info) Info() cascades.RuleInfo { return cascades.RuleInfo(i) }

type demoRule struct {
	info
}

func (demoRule) Apply() {}

func mk(id int, name string, cat cascades.Category) info {
	return info(cascades.RuleInfo{ID: id, Name: name, Category: cat})
}

var catalog = []demoRule{
	{info: mk(IDAlpha, "Alpha", cascades.Required)},
	{info: mk(IDAlpha, "AlphaDup", cascades.Required)}, // want "registered more than once"
	{info: mk(IDBeta, "Alpha", cascades.Required)},     // want "already registered for ID 0"
	{info: mk(IDGamma, "Gamma", cascades.OnByDefault)}, // want "but its band is off-by-default"
	{}, // want "constructed without info"
}

type declaredBlock struct {
	first int
	names []string
	cat   cascades.Category
}

var declaredNames = []string{"DeclaredFour", "DeclaredFive"}

var blocks = []declaredBlock{
	{first: 4, names: declaredNames, cat: cascades.OnByDefault},
}
