// Package exhaustive seeds violations for the exhaustiveswitch analyzer.
package exhaustive

import "steerq/internal/plan"

func describePhys(op plan.PhysOp) string {
	switch op { // want "switch over steerq/internal/plan.PhysOp misses"
	case plan.PhysExtract, plan.PhysRangeScan:
		return "scan"
	case plan.PhysHashJoin:
		return "join"
	}
	return ""
}

func describeOp(op plan.Op) string {
	switch op { // want "switch over steerq/internal/plan.Op misses"
	case plan.OpGet:
		return "get"
	}
	return ""
}

func withDefault(op plan.PhysOp) string {
	switch op {
	case plan.PhysExtract:
		return "scan"
	default:
		return "other"
	}
}

func exhaustiveExchange(k plan.ExchangeKind) string {
	switch k {
	case plan.ExchangeShuffle:
		return "shuffle"
	case plan.ExchangeBroadcast:
		return "broadcast"
	case plan.ExchangeGather:
		return "gather"
	case plan.ExchangeInitial:
		return "initial"
	}
	return ""
}

func partialExchange(k plan.ExchangeKind) string {
	switch k { // want "switch over steerq/internal/plan.ExchangeKind misses ExchangeInitial"
	case plan.ExchangeShuffle:
		return "shuffle"
	case plan.ExchangeBroadcast:
		return "broadcast"
	case plan.ExchangeGather:
		return "gather"
	}
	return ""
}

// localKind is not a tracked enum; partial switches over it are fine.
type localKind int

const (
	kindA localKind = iota
	kindB
)

func describeLocal(k localKind) string {
	switch k {
	case kindA:
		return "a"
	}
	return ""
}
