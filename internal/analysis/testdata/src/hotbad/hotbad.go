// Package hotbad seeds violations for the hotalloc analyzer.
//
// steerq:hotpath — fixture opt-in; without this pragma the analyzer skips
// the package entirely (see hotclean).
package hotbad

import "strings"

// GrowingAppend appends inside a range over a known-length operand with a
// zero-capacity destination, in all three zero-cap declaration forms.
func GrowingAppend(src []int) []int {
	var out []int
	for _, v := range src {
		out = append(out, v*2) // want "append to out grows inside a range loop"
	}
	lit := []int{}
	for _, v := range src {
		lit = append(lit, v) // want "append to lit grows inside a range loop"
	}
	zero := make([]int, 0)
	for _, v := range src {
		zero = append(zero, v) // want "append to zero grows inside a range loop"
	}
	return append(append(out, lit...), zero...)
}

// Preallocated is the repaired shape.
func Preallocated(src []int) []int {
	out := make([]int, 0, len(src))
	for _, v := range src {
		out = append(out, v*2)
	}
	return out
}

// FilteredAppend is conditional: legitimately small results are left to
// judgment, so no finding.
func FilteredAppend(src []int) []int {
	var out []int
	for _, v := range src {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

// InnerDecl re-declares the slice each iteration: growth never compounds.
func InnerDecl(src [][]int) int {
	n := 0
	for _, row := range src {
		var tmp []int
		tmp = append(tmp, row...)
		n += len(tmp)
	}
	return n
}

// StringConcat builds a string one += at a time.
func StringConcat(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "string concatenation in a loop"
	}
	return s
}

// StringConcatAssign uses the s = s + x spelling inside a for loop.
func StringConcatAssign(parts []string) string {
	s := ""
	for i := 0; i < len(parts); i++ {
		s = s + parts[i] // want "string concatenation in a loop"
	}
	return s
}

// BuilderConcat is the repaired shape.
func BuilderConcat(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}
