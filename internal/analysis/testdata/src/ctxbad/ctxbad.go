// Package ctxbad seeds violations for the ctxflow analyzer.
package ctxbad

import "context"

// worker stores a context in state.
type worker struct {
	ctx  context.Context // want "struct worker stores a context.Context"
	name string
}

// clean threads contexts properly.
type clean struct {
	name string
}

// RunCtx is the well-formed shape: context first, propagated downward.
func (c *clean) RunCtx(ctx context.Context, n int) error {
	return stepCtx(ctx, n)
}

// BadSigCtx has the suffix but not the parameter.
func BadSigCtx(n int) error { // want "BadSigCtx has the Ctx suffix but does not take context.Context as its first parameter"
	return nil
}

// WrongOrderCtx takes a context, but not first.
func WrongOrderCtx(n int, ctx context.Context) error { // want "does not take context.Context as its first parameter"
	return stepCtx(ctx, n)
}

// stepCtx is a propagation target.
func stepCtx(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// Detach re-roots even though a context is in scope.
func Detach(ctx context.Context, n int) error {
	return stepCtx(context.Background(), n) // want "propagate ctx instead of detaching"
}

// DetachTODO does the same with TODO.
func DetachTODO(ctx context.Context, n int) error {
	return stepCtx(context.TODO(), n) // want "propagate ctx instead of detaching"
}

// DetachInClosure inherits the outer context by capture.
func DetachInClosure(ctx context.Context) func() error {
	return func() error {
		return stepCtx(context.Background(), 1) // want "propagate ctx instead of detaching"
	}
}

// ShadowedClosure declares its own context parameter, which shadows the outer
// one; propagating the inner one is what the analyzer asks for, so the only
// finding is against the inner name.
func ShadowedClosure(ctx context.Context) func(context.Context) error {
	return func(inner context.Context) error {
		return stepCtx(context.Background(), 2) // want "propagate inner instead of detaching"
	}
}

// Run is the sanctioned wrapper: no context in scope, so minting a root is
// exactly right.
func (c *clean) Run(n int) error {
	return c.RunCtx(context.Background(), n)
}
