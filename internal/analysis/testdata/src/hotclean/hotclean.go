// Package hotclean carries the same shapes as hotbad but no steerq:hotpath
// pragma: the analyzer must not fire at all on packages that never opted in.
package hotclean

// GrowingAppend would be a finding in a hot-path package.
func GrowingAppend(src []int) []int {
	var out []int
	for _, v := range src {
		out = append(out, v*2)
	}
	return out
}

// StringConcat would be a finding in a hot-path package.
func StringConcat(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p
	}
	return s
}
