// Package randbad seeds violations for the randcheck analyzer.
package randbad

import (
	"math/rand" // want "import of math/rand outside internal/xrand"

	"steerq/internal/xrand"
)

// Bad draws from a process-global math/rand stream: not reproducible.
func Bad() int { return rand.Int() }

// Good derives a seeded stream.
func Good() int { return xrand.New(1).Intn(10) }
