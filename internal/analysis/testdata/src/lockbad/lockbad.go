// Package lockbad seeds violations for the lockcheck analyzer.
package lockbad

import "sync"

// Store is the well-behaved shape: pointer receivers, deferred unlocks.
type Store struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get is clean: deferred RUnlock pairs with RLock.
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

// Leak acquires and never releases.
func (s *Store) Leak() {
	s.mu.Lock() // want "s.mu.Lock() is never unlocked"
	s.m["x"] = 1
}

// RLeak read-acquires and never releases.
func (s *Store) RLeak() int {
	s.mu.RLock() // want "s.mu.RLock() is never runlocked"
	return s.m["x"]
}

// WrongRelease releases a write lock with the read-side method.
func (s *Store) WrongRelease() {
	s.mu.Lock() // want "released with RUnlock"
	s.m["x"] = 1
	s.mu.RUnlock()
}

// WrongRRelease releases a read lock with the write-side method.
func (s *Store) WrongRRelease() int {
	s.mu.RLock() // want "released with Unlock"
	v := s.m["x"]
	s.mu.Unlock()
	return v
}

// EarlyReturn returns while holding the inline lock.
func (s *Store) EarlyReturn(k string) int {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		return v // want "return between s.mu.Lock() and s.mu.Unlock() leaves the mutex held"
	}
	s.mu.Unlock()
	return 0
}

// DeferredReturn is the same shape made safe by defer.
func (s *Store) DeferredReturn(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[k]; ok {
		return v
	}
	return 0
}

// ClosureScope locks inside a closure: the closure is its own scope, so the
// leak is attributed there, not to the enclosing function.
func (s *Store) ClosureScope() func() {
	return func() {
		s.mu.Lock() // want "s.mu.Lock() is never unlocked"
	}
}

// ByValue copies the store, and with it the mutex state.
func ByValue(s Store) int { // want "ByValue passes a parameter by value"
	return len(s.m)
}

// Snapshot has a value receiver carrying the mutex.
func (s Store) Snapshot() int { // want "Snapshot passes a receiver by value"
	return len(s.m)
}

// wrapped embeds a mutex-bearing struct one level down.
type wrapped struct {
	inner Store
}

// ByValueNested copies a struct holding a mutex at depth.
func ByValueNested(w wrapped) int { // want "ByValueNested passes a parameter by value"
	return len(w.inner.m)
}

// ByPointer is clean.
func ByPointer(s *Store) int {
	return len(s.m)
}
