// Package detbad seeds violations for the detcheck analyzer: wall-clock
// reads and map-iteration order escaping into observable output.
package detbad

import (
	"sort"
	"time"

	"steerq/internal/obs"
)

// WallClock reads the real clock three ways.
func WallClock() time.Duration {
	start := time.Now()                 // want "wall-clock read time.Now"
	tick := time.NewTicker(time.Second) // want "wall-clock read time.NewTicker"
	tick.Stop()
	return time.Since(start) // want "wall-clock read time.Since"
}

// AllowedWallClock is pragma-suppressed.
func AllowedWallClock() time.Time {
	return time.Now() // steerq:allow-wallclock — fixture suppression.
}

// SliceEscape appends map-range keys with no sort anywhere after the loop.
func SliceEscape(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "escapes into a slice"
	}
	return out
}

// CollectThenSort is the canonical suppressed idiom: a sort follows the loop.
func CollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StringEscape concatenates map-range values into an outer string.
func StringEscape(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want "escapes into a string"
	}
	return s
}

// ReturnEscape returns a range variable straight out of the loop.
func ReturnEscape(m map[string]int) string {
	for k := range m {
		return k // want "escapes into a return"
	}
	return ""
}

// LabelEscape feeds a map-range key into a metric label.
func LabelEscape(reg *obs.Registry, m map[string]int) {
	for k, v := range m {
		reg.Counter("detbad_total", "kind", k).Add(uint64(v)) // want "escapes into a label"
	}
}

// ComparatorReturn exercises the closure exemption: the return inside the
// sort.Slice comparator is not a return of ComparatorReturn.
func ComparatorReturn(m map[string][]int) {
	for _, vs := range m {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
}
