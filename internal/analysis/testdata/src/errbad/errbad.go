// Package errbad seeds violations for the errwrap analyzer.
package errbad

import (
	"errors"
	"fmt"
)

var errBase = errors.New("errbad: base")

// BadPrefix builds an error without the package-name prefix.
func BadPrefix(n int) error {
	return fmt.Errorf("lookup failed for %d", n) // want "must start with"
}

// BadFlatten loses the error chain by formatting with %v.
func BadFlatten() error {
	return fmt.Errorf("errbad: open failed: %v", errBase) // want "wrap it with %w"
}

// GoodPrefix wraps with the package prefix and %w.
func GoodPrefix() error {
	return fmt.Errorf("errbad: open failed: %w", errBase)
}

// GoodRewrap adds context in front of an already-prefixed error.
func GoodRewrap(err error) error {
	return fmt.Errorf("%w (while retrying)", err)
}
