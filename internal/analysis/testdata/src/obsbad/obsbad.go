// Package obsbad seeds violations for the obslabels analyzer.
package obsbad

import (
	"fmt"
	"strconv"

	"steerq/internal/obs"
)

// Wire registers instruments in every way obslabels objects to.
func Wire(reg *obs.Registry, job string, n int) {
	// Clean registrations: constant names, constant keys, bounded values.
	reg.Counter("obsbad_events_total", "kind", "ok").Inc()
	reg.Gauge("obsbad_depth").Set(1)
	reg.Histogram("obsbad_latency_seconds", []float64{0.1, 1}, "stage", "compile").Observe(0.2)
	reg.GaugeFunc("obsbad_live", func() float64 { return 1 }, "stage", "exec")

	name := "obsbad_" + job
	reg.Counter(name).Inc()                   // want "metric name is not a compile-time constant"
	reg.Counter("ObsBad_Total").Inc()         // want "does not match"
	reg.Counter("obsbad_total", "Kind", "ok") // want "does not match"

	key := "kind" + job
	reg.Counter("obsbad_total", key, "ok") // want "metric label key is not a compile-time constant"

	reg.Counter("obsbad_total", "job", fmt.Sprintf("%s-%d", job, n)) // want "built with fmt.Sprintf"
	reg.Counter("obsbad_total", "size", strconv.Itoa(n))             // want "built with strconv.Itoa"
	reg.Histogram("obsbad_h", []float64{1}, "job", fmt.Sprint(job))  // want "built with fmt.Sprint"
	obs.NewCounter("also bad").Inc()                                 // want "does not match"
}

// Forward exercises the documented labels... skip: spreads are checked where
// the slice is built, not here.
func Forward(reg *obs.Registry, labels []string) {
	reg.Counter("obsbad_fwd_total", labels...).Inc()
}
