// Package panicbad seeds violations for the panicfree analyzer.
package panicbad

import "fmt"

// Bad panics without a pragma.
func Bad(i int) {
	if i < 0 {
		panic(fmt.Sprintf("panicbad: negative %d", i)) // want "naked panic in library package"
	}
}

// AllowedAbove carries the pragma on the line above.
func AllowedAbove(i int) {
	if i < 0 {
		// steerq:allow-panic — fixture: assertion of a static invariant.
		panic("panicbad: negative")
	}
}

// AllowedSameLine carries the pragma on the panic line.
func AllowedSameLine(i int) {
	if i < 0 {
		panic("panicbad: negative") // steerq:allow-panic — fixture justification.
	}
}

// Shadowed calls a local function named panic, not the builtin.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
