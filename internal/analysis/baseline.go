package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineEntry identifies one grandfathered finding. Entries match on
// analyzer, module-relative file path and exact message — never on line
// numbers, so unrelated edits to the same file do not churn the baseline.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Justification documents why the finding is deliberate. Free text,
	// required by convention (review enforces it), ignored by matching.
	Justification string `json:"justification,omitempty"`
}

// Baseline is the committed set of grandfathered findings (lint-baseline.json).
// A baseline is not a mute button: an entry that stops matching any current
// finding is *stale* and fails the driver, so a fixed finding must be removed
// from the baseline in the same change — grandfathered debt can only shrink.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and strictly decodes a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: read baseline: %w", err)
	}
	var b Baseline
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("analysis: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline builds a baseline grandfathering every given finding, with
// paths relativized against root. Used by the driver's -update-baseline.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	b := &Baseline{Entries: []BaselineEntry{}}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Message:  d.Message,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Write serializes the baseline to path as indented JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: marshal baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("analysis: write baseline: %w", err)
	}
	return nil
}

// Apply filters diags through the baseline: suppressed findings are removed
// and returned as a count, and entries that matched nothing come back as
// stale — the driver treats stale entries as an error so the baseline cannot
// outlive the findings it grandfathers.
func (b *Baseline) Apply(root string, diags []Diagnostic) (kept []Diagnostic, suppressed int, stale []BaselineEntry) {
	if b == nil || len(b.Entries) == 0 {
		return diags, 0, nil
	}
	matched := make([]bool, len(b.Entries))
	for _, d := range diags {
		rel := relPath(root, d.Pos.Filename)
		hit := false
		for i, e := range b.Entries {
			if e.Analyzer == d.Analyzer && e.File == rel && e.Message == d.Message {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	for i, e := range b.Entries {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return kept, suppressed, stale
}

// relPath renders filename relative to root with forward slashes, falling
// back to the input when it is not under root.
func relPath(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
