package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// trackedEnums are the plan enumerations whose switch statements must be
// exhaustive or carry a default clause. A missed member here is exactly the
// bug class that silently mis-costs or mis-validates new operators when the
// enum grows.
var trackedEnums = map[string]bool{
	"steerq/internal/plan.PhysOp":       true,
	"steerq/internal/plan.Op":           true,
	"steerq/internal/plan.ExchangeKind": true,
}

// ExhaustiveSwitch flags switch statements over plan.PhysOp, plan.Op and
// plan.ExchangeKind that neither cover every enum member nor declare a
// default clause. Test units are skipped: tests legitimately match a few
// members.
var ExhaustiveSwitch = &Analyzer{
	Name:      "exhaustiveswitch",
	Doc:       "switches over plan enums must be exhaustive or have a default",
	SkipTests: true,
	Run:       runExhaustiveSwitch,
}

func runExhaustiveSwitch(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil {
				return true
			}
			key := obj.Pkg().Path() + "." + obj.Name()
			if !trackedEnums[key] {
				return true
			}
			members := enumMembers(obj.Pkg(), named)
			covered := make(map[int64]bool)
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if v := pass.Info.Types[e].Value; v != nil && v.Kind() == constant.Int {
						if i, exact := constant.Int64Val(v); exact {
							covered[i] = true
						}
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, m := range members {
				if !covered[m.value] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default",
					key, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

type enumMember struct {
	name  string
	value int64
}

// enumMembers collects the package-level constants of the named type in its
// defining package, deduplicated by value (aliases like a MaxOp sentinel
// would count once).
func enumMembers(pkg *types.Package, named *types.Named) []enumMember {
	scope := pkg.Scope()
	seen := make(map[int64]bool)
	var out []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, enumMember{name: name, value: v})
	}
	return out
}
