package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture files:
//
//	switch op { // want "switch over ... misses"
//
// The quoted text must be a substring of a diagnostic reported on that line.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// fixtureTest type-checks one fixture package under testdata/src and checks
// the analyzer's diagnostics against the file's // want comments, both ways:
// every expectation must be matched and every diagnostic expected.
func fixtureTest(t *testing.T, a *Analyzer, fixturePath, dir string) {
	t.Helper()
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	files, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in testdata/src/%s: %v", dir, err)
	}
	unit, err := loader.CheckFiles(fixturePath, files, false)
	if err != nil {
		t.Fatalf("CheckFiles: %v", err)
	}

	diags := Run([]*Unit{unit}, []*Analyzer{a})

	// Collect expectations: "file:line" -> expected substrings.
	wants := make(map[string][]string)
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], m[1])
			}
		}
	}

	matched := make(map[string]int) // key -> count of matched expectations
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				matched[key]++
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		if matched[key] < len(ws) {
			t.Errorf("%s: expected %d diagnostic(s) matching %q, matched %d",
				key, len(ws), ws, matched[key])
		}
	}
}

func TestExhaustiveSwitchFixture(t *testing.T) {
	fixtureTest(t, ExhaustiveSwitch, "steerq/internal/fixture/exhaustive", "exhaustive")
}

func TestRandCheckFixture(t *testing.T) {
	fixtureTest(t, RandCheck, "steerq/internal/fixture/randbad", "randbad")
}

func TestPanicFreeFixture(t *testing.T) {
	fixtureTest(t, PanicFree, "steerq/internal/fixture/panicbad", "panicbad")
}

func TestErrWrapFixture(t *testing.T) {
	fixtureTest(t, ErrWrap, "steerq/internal/fixture/errbad", "errbad")
}

func TestRuleCheckFixture(t *testing.T) {
	fixtureTest(t, RuleCheck, "steerq/internal/fixture/rulesbad", "rulesbad")
}

func TestDetCheckFixture(t *testing.T) {
	fixtureTest(t, DetCheck, "steerq/internal/fixture/detbad", "detbad")
}

func TestLockCheckFixture(t *testing.T) {
	fixtureTest(t, LockCheck, "steerq/internal/fixture/lockbad", "lockbad")
}

func TestObsLabelsFixture(t *testing.T) {
	fixtureTest(t, ObsLabels, "steerq/internal/fixture/obsbad", "obsbad")
}

func TestCtxFlowFixture(t *testing.T) {
	fixtureTest(t, CtxFlow, "steerq/internal/fixture/ctxbad", "ctxbad")
}

func TestHotAllocFixture(t *testing.T) {
	fixtureTest(t, HotAlloc, "steerq/internal/fixture/hotbad", "hotbad")
}

func TestHotAllocNotOptedIn(t *testing.T) {
	fixtureTest(t, HotAlloc, "steerq/internal/fixture/hotclean", "hotclean")
}

// TestRepoIsClean runs every analyzer over the whole module and expects zero
// findings — the same gate ci.sh enforces via cmd/steerq-lint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(units) < 10 {
		t.Fatalf("LoadAll found only %d units; module discovery broken", len(units))
	}
	for _, d := range Run(units, Analyzers()) {
		t.Errorf("finding: %s", d)
	}
}

// TestAllowedLines pins the pragma window: the pragma line and the one below.
func TestAllowedLines(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	files, err := filepath.Glob(filepath.Join("testdata", "src", "panicbad", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("fixture files: %v", err)
	}
	unit, err := loader.CheckFiles("steerq/internal/fixture/panicbad2", files, false)
	if err != nil {
		t.Fatalf("CheckFiles: %v", err)
	}
	var fset *token.FileSet = unit.Fset
	lines := pragmaLines(fset, unit.Files[0], AllowPanicPragma)
	if len(lines) == 0 {
		t.Fatal("no allowed lines found in fixture with two pragmas")
	}
	for line := range lines {
		if line <= 0 {
			t.Errorf("nonsensical allowed line %d", line)
		}
	}
}
