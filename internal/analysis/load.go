package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"steerq/internal/par"
)

// Unit is one type-checked analysis unit: a base package, its in-package
// test extension, or an external _test package.
type Unit struct {
	// Path is the unit's import path (suffixed "_test" for external test
	// packages).
	Path string
	// Dir is the source directory.
	Dir string
	// Files are the files analyzers may report diagnostics against. For the
	// in-package test unit this is just the _test.go files: the base files
	// were already covered by the base unit.
	Files []*ast.File
	// Test marks units containing _test.go files.
	Test bool

	Fset       *token.FileSet
	Pkg        *types.Package
	Info       *types.Info
	ModulePath string
}

// Loader type-checks the module's packages from source on demand. Module
// packages resolve from the source tree; standard-library imports resolve
// through go/importer's source importer, so the loader needs no pre-built
// export data and no external tooling.
//
// LoadAll parses every package directory concurrently through internal/par
// (token.FileSet is safe for concurrent use; scheduling affects only file
// base offsets, never reported positions) and then type-checks serially in
// sorted directory order, so the unit list — and therefore every diagnostic —
// is deterministic at any worker count.
type Loader struct {
	Root       string // module root directory (holds go.mod)
	ModulePath string
	Fset       *token.FileSet
	// Workers bounds the parallel parse fan-out in LoadAll (0 resolves via
	// par.Workers: $STEERQ_WORKERS, then GOMAXPROCS).
	Workers int

	std  types.Importer
	base map[string]*Unit // import path -> checked base unit
	busy map[string]bool  // import-cycle guard

	parseMu sync.Mutex
	parsed  map[string]parsedDir // dir -> parse results
}

// parsedDir caches one directory's parsed files, split non-test/test.
type parsedDir struct {
	base, tests []*ast.File
}

// NewLoader returns a loader for the module rooted at dir.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		base:       make(map[string]*Unit),
		busy:       make(map[string]bool),
		parsed:     make(map[string]parsedDir),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: read module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer: module packages are type-checked from
// source (and cached); everything else falls through to the standard-library
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		u, err := l.loadBase(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its source directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// loadBase type-checks (once) the non-test files of a module package.
func (l *Loader) loadBase(path string) (*Unit, error) {
	if u, ok := l.base[path]; ok {
		return u, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := l.dirFor(path)
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	u, err := l.check(path, dir, files, files, false)
	if err != nil {
		return nil, err
	}
	l.base[path] = u
	return u, nil
}

// parseDir parses a directory's Go files, split into non-test and test
// files. Results are cached, and the cache is safe for the concurrent
// pre-parse LoadAll runs.
func (l *Loader) parseDir(dir string) (base, tests []*ast.File, err error) {
	l.parseMu.Lock()
	if p, ok := l.parsed[dir]; ok {
		l.parseMu.Unlock()
		return p.base, p.tests, nil
	}
	l.parseMu.Unlock()
	base, tests, err = l.parseDirUncached(dir)
	if err != nil {
		return nil, nil, err
	}
	l.parseMu.Lock()
	l.parsed[dir] = parsedDir{base: base, tests: tests}
	l.parseMu.Unlock()
	return base, tests, nil
}

// parseDirUncached does the actual parsing for parseDir.
func (l *Loader) parseDirUncached(dir string) (base, tests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: read dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parse: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			base = append(base, f)
		}
	}
	return base, tests, nil
}

// check type-checks one unit. reportFiles are the files the unit exposes for
// diagnostics; allFiles is the full file set handed to the type checker.
func (l *Loader) check(path, dir string, reportFiles, allFiles []*ast.File, test bool) (*Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, allFiles, info)
	if len(errs) > 0 {
		const maxShown = 10
		if len(errs) > maxShown {
			errs = append(errs[:maxShown], fmt.Errorf("analysis: ... and %d more errors", len(errs)-maxShown))
		}
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, errors.Join(errs...))
	}
	return &Unit{
		Path:       path,
		Dir:        dir,
		Files:      reportFiles,
		Test:       test,
		Fset:       l.Fset,
		Pkg:        pkg,
		Info:       info,
		ModulePath: l.ModulePath,
	}, nil
}

// CheckFiles parses and type-checks an ad-hoc unit (used by fixture tests).
// The unit is registered under path so later units may import it.
func (l *Loader) CheckFiles(path string, filenames []string, test bool) (*Unit, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	u, err := l.check(path, filepath.Dir(filenames[0]), files, files, test)
	if err != nil {
		return nil, err
	}
	l.base[path] = u
	return u, nil
}

// LoadAll discovers and type-checks every package of the module, returning
// one unit per (package, test extension, external test package) in a stable
// order. Directories named testdata and hidden directories are skipped.
func (l *Loader) LoadAll() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.go"))
		if err != nil {
			return err
		}
		if len(matches) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk module: %w", err)
	}
	sort.Strings(dirs)

	// Pre-parse every directory concurrently; the error surfaced is the
	// lowest-index failure, so even the failure mode is deterministic.
	if err := par.ForEach(l.Workers, len(dirs), func(i int) error {
		_, _, err := l.parseDir(dirs[i])
		return err
	}); err != nil {
		return nil, err
	}

	var units []*Unit
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: walk module: %w", err)
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		base, tests, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		var baseUnit *Unit
		if len(base) > 0 {
			baseUnit, err = l.loadBase(path)
			if err != nil {
				return nil, err
			}
			units = append(units, baseUnit)
		}
		// Split test files: in-package extensions check together with the
		// base files; external test packages check on their own.
		var inPkg, external []*ast.File
		for _, f := range tests {
			if strings.HasSuffix(f.Name.Name, "_test") {
				external = append(external, f)
			} else {
				inPkg = append(inPkg, f)
			}
		}
		if len(inPkg) > 0 {
			all := append(append([]*ast.File(nil), base...), inPkg...)
			u, err := l.check(path, dir, inPkg, all, true)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if len(external) > 0 {
			u, err := l.check(path+"_test", dir, external, external, true)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}
