package analysis

import (
	"go/ast"
)

// PanicFree forbids naked panic(...) calls in library packages (internal/).
// Library code must return errors; a panic that is genuinely load-bearing
// (assertion of a static invariant, slice-indexing semantics) carries the
// steerq:allow-panic pragma with a justification on the same or previous
// line. Binaries (cmd/, examples/) and test files are exempt.
var PanicFree = &Analyzer{
	Name:      "panicfree",
	Doc:       "library packages must not call panic without a steerq:allow-panic pragma",
	SkipTests: true,
	Run:       runPanicFree,
}

func runPanicFree(pass *Pass) {
	if !pass.LibraryPackage() {
		return
	}
	for _, f := range pass.Files {
		allowed := pragmaLines(pass.Fset, f, AllowPanicPragma)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Only the builtin: a local function named panic shadows it.
			if obj := pass.Info.Uses[id]; obj == nil || obj.Pkg() != nil {
				return true
			}
			if !allowed[pass.Fset.Position(call.Pos()).Line] {
				pass.Reportf(call.Pos(), "naked panic in library package; return an error or annotate with %q and a justification", "// "+AllowPanicPragma)
			}
			return true
		})
	}
}
