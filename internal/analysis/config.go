package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ConfigFile is the default driver configuration filename, looked up at the
// module root.
const ConfigFile = ".steerqlint.json"

// Severity levels. Errors fail the driver's exit status; warnings are
// reported (and appear in JSON/SARIF output at the corresponding level) but
// do not fail the run.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// AnalyzerSetting is one analyzer's configuration.
type AnalyzerSetting struct {
	// Enabled turns the analyzer off when explicitly false. Absent means
	// enabled.
	Enabled *bool `json:"enabled,omitempty"`
	// Severity is "error" (default) or "warning".
	Severity string `json:"severity,omitempty"`
}

// Config is the parsed .steerqlint.json: per-analyzer enablement and
// severity. The zero/nil Config enables everything at error severity.
type Config struct {
	Analyzers map[string]AnalyzerSetting `json:"analyzers"`
}

// LoadConfig reads and strictly validates a configuration file: unknown
// fields, unknown analyzer names and unknown severities are all errors, so a
// typo cannot silently disable a gate.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: read config: %w", err)
	}
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("analysis: parse config %s: %w", path, err)
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	// Validate in sorted name order so the error reported for a config with
	// several bad entries is deterministic (detcheck's map-range rule).
	names := make([]string, 0, len(c.Analyzers))
	for name := range c.Analyzers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !known[name] {
			return nil, fmt.Errorf("analysis: config %s names unknown analyzer %q", path, name)
		}
		s := c.Analyzers[name]
		switch s.Severity {
		case "", SeverityError, SeverityWarning:
		default:
			return nil, fmt.Errorf("analysis: config %s: analyzer %q has unknown severity %q (want %q or %q)",
				path, name, s.Severity, SeverityError, SeverityWarning)
		}
	}
	return &c, nil
}

// Enabled reports whether the named analyzer is enabled.
func (c *Config) Enabled(name string) bool {
	if c == nil {
		return true
	}
	s, ok := c.Analyzers[name]
	if !ok || s.Enabled == nil {
		return true
	}
	return *s.Enabled
}

// Severity returns the configured severity for the named analyzer
// (SeverityError by default).
func (c *Config) Severity(name string) string {
	if c == nil {
		return SeverityError
	}
	if s, ok := c.Analyzers[name]; ok && s.Severity != "" {
		return s.Severity
	}
	return SeverityError
}

// Select filters the analyzer list down to the enabled ones.
func (c *Config) Select(all []*Analyzer) []*Analyzer {
	out := make([]*Analyzer, 0, len(all))
	for _, a := range all {
		if c.Enabled(a.Name) {
			out = append(out, a)
		}
	}
	return out
}
