package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file renders findings in the driver's three output formats. All three
// are deterministic given the sorted diagnostics Run returns: text for
// humans, JSON (the Report type) for CI archival next to BENCH_pipeline.json,
// and SARIF 2.1.0 for code-scanning UIs.

// ReportFinding is one finding in the JSON report, with module-relative
// paths so the archived report is machine-independent.
type ReportFinding struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

// Report is the machine-readable run summary emitted by -format=json.
type Report struct {
	Tool       string          `json:"tool"`
	Findings   []ReportFinding `json:"findings"`
	Suppressed int             `json:"suppressed,omitempty"`
	Stale      []BaselineEntry `json:"stale_baseline,omitempty"`
}

// NewReport builds the JSON report from a run's surviving diagnostics.
func NewReport(root string, diags []Diagnostic, cfg *Config) Report {
	r := Report{Tool: "steerq-lint", Findings: []ReportFinding{}}
	for _, d := range diags {
		r.Findings = append(r.Findings, ReportFinding{
			Analyzer: d.Analyzer,
			Severity: cfg.Severity(d.Analyzer),
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
			Fixable:  len(d.Fixes) > 0,
		})
	}
	return r
}

// WriteJSON serializes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: marshal report: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("analysis: write report: %w", err)
	}
	return nil
}

// WriteText prints classic file:line:col lines, one per finding.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message); err != nil {
			return fmt.Errorf("analysis: write text report: %w", err)
		}
	}
	return nil
}

// Minimal SARIF 2.1.0 object model — only the properties steerq-lint emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the findings as a single-run SARIF 2.1.0 log. Rules
// list every analyzer that ran (not just those that fired) so a clean run
// still documents its coverage.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic, cfg *Config, analyzers []*Analyzer) error {
	driver := sarifDriver{Name: "steerq-lint", Rules: []sarifRule{}}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   cfg.Severity(d.Analyzer), // SARIF levels "error"/"warning" match
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: marshal sarif: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("analysis: write sarif: %w", err)
	}
	return nil
}
