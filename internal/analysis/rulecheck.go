package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// Paper census (Table 2): the four category widths the 256-rule catalog must
// reproduce exactly.
const (
	paperRequired       = 37
	paperOffByDefault   = 46
	paperOnByDefault    = 141
	paperImplementation = 32
	paperCatalog        = 256
)

// RuleCheck cross-checks the rule catalog of a package named "rules":
//
//   - every rule ID declared in ids.go is registered exactly once by
//     catalog.go (explicitly via mk(...)/cascades.RuleInfo{...} or through a
//     declaredBlock range), with no overlaps and no gaps in [0, catalogEnd);
//   - each registration's category matches its ID band (required,
//     off-by-default, on-by-default, implementation boundaries);
//   - when catalogEnd is 256, the band widths reproduce the paper's
//     37/46/141/32 split;
//   - registered rule names are unique;
//   - every ID constant is referenced by some registration (an unreferenced
//     constant is catalog drift);
//   - every rule struct literal (a type with an Apply or Implement method)
//     initializes its info field via mk(...), so the engine stamps the
//     catalog-declared RuleID into plan operators rather than a zero ID.
//
// The analyzer understands the registration idioms of
// internal/rules/catalog.go; a new idiom must extend this analyzer or it
// will be reported as an unregistered ID.
var RuleCheck = &Analyzer{
	Name:      "rulecheck",
	Doc:       "rule catalog census, attribution and registration invariants",
	SkipTests: true,
	Run:       runRuleCheck,
}

// registration is one claimed rule ID.
type registration struct {
	id   int64
	name string
	cat  int64
	pos  token.Pos
}

func runRuleCheck(pass *Pass) {
	if pass.Pkg.Name() != "rules" {
		return
	}
	c := &ruleChecker{pass: pass, idConsts: make(map[string]*idConst), stringLists: make(map[types.Object][]string)}
	c.collectConsts()
	c.collectStringLists()
	for _, f := range pass.Files {
		c.collectRegistrations(f)
		c.checkRuleLiterals(f)
	}
	c.checkClaims()
	c.checkNames()
	c.checkUnusedConsts()
}

type idConst struct {
	obj   types.Object
	value int64
	pos   token.Pos
	used  bool
}

type ruleChecker struct {
	pass        *Pass
	idConsts    map[string]*idConst
	stringLists map[types.Object][]string
	regs        []registration

	// Band boundaries from ids.go; boundariesOK is true when all four were
	// found.
	requiredEnd, offEnd, onEnd, catalogEnd int64
	boundariesOK                           bool
	boundaryPos                            token.Pos
}

// collectConsts gathers the ID* rule constants and the band boundary
// constants from the package scope.
func (c *ruleChecker) collectConsts() {
	scope := c.pass.Pkg.Scope()
	found := 0
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v, exact := constant.Int64Val(obj.Val())
		if !exact {
			continue
		}
		switch name {
		case "requiredEnd":
			c.requiredEnd, found = v, found+1
			c.boundaryPos = obj.Pos()
		case "offByDefaultEnd":
			c.offEnd, found = v, found+1
		case "onByDefaultEnd":
			c.onEnd, found = v, found+1
		case "catalogEnd":
			c.catalogEnd, found = v, found+1
		default:
			if len(name) > 2 && name[:2] == "ID" {
				c.idConsts[name] = &idConst{obj: obj, value: v, pos: obj.Pos()}
			}
		}
	}
	c.boundariesOK = found == 4
	if c.boundariesOK && c.catalogEnd == paperCatalog {
		widths := [4]int64{c.requiredEnd, c.offEnd - c.requiredEnd, c.onEnd - c.offEnd, c.catalogEnd - c.onEnd}
		want := [4]int64{paperRequired, paperOffByDefault, paperOnByDefault, paperImplementation}
		if widths != want {
			c.pass.Reportf(c.boundaryPos, "category bands %d/%d/%d/%d do not match the paper's %d/%d/%d/%d split",
				widths[0], widths[1], widths[2], widths[3], want[0], want[1], want[2], want[3])
		}
	}
}

// collectStringLists maps package-level []string variables to their literal
// element values (the declaredRequired/... name lists).
func (c *ruleChecker) collectStringLists() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					var elems []string
					valid := true
					for _, e := range cl.Elts {
						v := c.pass.Info.Types[e].Value
						if v == nil || v.Kind() != constant.String {
							valid = false
							break
						}
						elems = append(elems, constant.StringVal(v))
					}
					if valid && len(elems) > 0 {
						if obj := c.pass.Info.Defs[name]; obj != nil {
							c.stringLists[obj] = elems
						}
					}
				}
			}
		}
	}
}

// collectRegistrations walks one file for the three registration idioms.
func (c *ruleChecker) collectRegistrations(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "mk" && len(n.Args) >= 3 {
				c.addExplicit(n.Args[0], n.Args[1], n.Args[2], n.Pos())
			}
		case *ast.CompositeLit:
			switch c.litTypeName(n) {
			case "RuleInfo":
				var idE, nameE, catE ast.Expr
				for _, e := range n.Elts {
					kv, ok := e.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					switch key := kv.Key.(*ast.Ident); key.Name {
					case "ID":
						idE = kv.Value
					case "Name":
						nameE = kv.Value
					case "Category":
						catE = kv.Value
					}
				}
				if idE != nil && c.pass.Info.Types[idE].Value != nil {
					c.addExplicit(idE, nameE, catE, n.Pos())
				}
			case "declaredBlock":
				c.addBlock(n)
			}
		}
		return true
	})
}

// litTypeName returns the named type of a composite literal, if any.
func (c *ruleChecker) litTypeName(n *ast.CompositeLit) string {
	tv, ok := c.pass.Info.Types[n]
	if !ok {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// addExplicit records one mk(...) or RuleInfo{...} registration with a
// constant ID.
func (c *ruleChecker) addExplicit(idE, nameE, catE ast.Expr, pos token.Pos) {
	v := c.pass.Info.Types[idE].Value
	if v == nil {
		return // non-constant ID (e.g. the literal inside mk's own body)
	}
	id, exact := constant.Int64Val(v)
	if !exact {
		return
	}
	reg := registration{id: id, pos: pos, cat: -1}
	if nameE != nil {
		if nv := c.pass.Info.Types[nameE].Value; nv != nil && nv.Kind() == constant.String {
			reg.name = constant.StringVal(nv)
		}
	}
	if catE != nil {
		if cv := c.pass.Info.Types[catE].Value; cv != nil {
			if cvi, ok := constant.Int64Val(cv); ok {
				reg.cat = cvi
			}
		}
	}
	c.markConstUsed(idE)
	c.regs = append(c.regs, reg)
}

// addBlock expands a declaredBlock{first, names, cat} literal into one
// registration per listed name.
func (c *ruleChecker) addBlock(n *ast.CompositeLit) {
	var firstE, namesE, catE ast.Expr
	for _, e := range n.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		switch key := kv.Key.(*ast.Ident); key.Name {
		case "first":
			firstE = kv.Value
		case "names":
			namesE = kv.Value
		case "cat":
			catE = kv.Value
		}
	}
	if firstE == nil || namesE == nil || catE == nil {
		c.pass.Reportf(n.Pos(), "declaredBlock literal must set first, names and cat")
		return
	}
	fv := c.pass.Info.Types[firstE].Value
	cv := c.pass.Info.Types[catE].Value
	if fv == nil || cv == nil {
		c.pass.Reportf(n.Pos(), "declaredBlock first and cat must be constant expressions")
		return
	}
	first, _ := constant.Int64Val(fv)
	cat, _ := constant.Int64Val(cv)
	id, ok := namesE.(*ast.Ident)
	if !ok {
		c.pass.Reportf(namesE.Pos(), "declaredBlock names must reference a package-level []string literal")
		return
	}
	names, ok := c.stringLists[c.pass.Info.Uses[id]]
	if !ok {
		c.pass.Reportf(namesE.Pos(), "declaredBlock names %s does not resolve to a []string literal", id.Name)
		return
	}
	c.markConstUsed(firstE)
	for i, name := range names {
		c.regs = append(c.regs, registration{id: first + int64(i), name: name, cat: cat, pos: n.Pos()})
	}
}

// markConstUsed marks any ID* constants referenced by the expression.
func (c *ruleChecker) markConstUsed(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.Info.Uses[id]; obj != nil {
				if ic, ok := c.idConsts[obj.Name()]; ok && ic.obj == obj {
					ic.used = true
				}
			}
		}
		return true
	})
}

// band returns the category an ID's band implies.
func (c *ruleChecker) band(id int64) int64 {
	switch {
	case id < c.requiredEnd:
		return 0 // cascades.Required
	case id < c.offEnd:
		return 1 // cascades.OffByDefault
	case id < c.onEnd:
		return 2 // cascades.OnByDefault
	default:
		return 3 // cascades.Implementation
	}
}

var categoryNames = [...]string{"required", "off-by-default", "on-by-default", "implementation"}

// checkClaims verifies exactly-once registration over [0, catalogEnd) and
// band/category agreement.
func (c *ruleChecker) checkClaims() {
	byID := make(map[int64][]registration)
	for _, r := range c.regs {
		byID[r.id] = append(byID[r.id], r)
	}
	for id, rs := range byID {
		if len(rs) > 1 {
			sort.Slice(rs, func(i, j int) bool { return rs[i].pos < rs[j].pos })
			for _, r := range rs[1:] {
				c.pass.Reportf(r.pos, "rule ID %d (%s) registered more than once (first as %q)", id, r.name, rs[0].name)
			}
		}
		if c.boundariesOK {
			want := c.band(id)
			for _, r := range rs {
				if r.cat >= 0 && r.cat != want {
					c.pass.Reportf(r.pos, "rule ID %d (%s) registered as %s but its band is %s",
						id, r.name, catName(r.cat), catName(want))
				}
			}
		}
	}
	if !c.boundariesOK || c.catalogEnd <= 0 {
		return
	}
	var gaps []string
	for start := int64(0); start < c.catalogEnd; start++ {
		if _, ok := byID[start]; ok {
			continue
		}
		end := start
		for end+1 < c.catalogEnd {
			if _, ok := byID[end+1]; ok {
				break
			}
			end++
		}
		if start == end {
			gaps = append(gaps, strconv.FormatInt(start, 10))
		} else {
			gaps = append(gaps, fmt.Sprintf("%d-%d", start, end))
		}
		start = end
	}
	if len(gaps) > 0 {
		c.pass.Reportf(c.boundaryPos, "rule IDs %v declared by the catalog bands but never registered", gaps)
	}
}

func catName(cat int64) string {
	if cat >= 0 && int(cat) < len(categoryNames) {
		return categoryNames[cat]
	}
	return fmt.Sprintf("category(%d)", cat)
}

// checkNames verifies registered rule names are unique.
func (c *ruleChecker) checkNames() {
	seen := make(map[string]registration)
	regs := append([]registration(nil), c.regs...)
	sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })
	for _, r := range regs {
		if r.name == "" {
			continue
		}
		if prev, dup := seen[r.name]; dup {
			c.pass.Reportf(r.pos, "rule name %q already registered for ID %d", r.name, prev.id)
			continue
		}
		seen[r.name] = r
	}
}

// checkUnusedConsts flags ID constants no registration references: a
// declared-but-unregistered rule ID silently drifts from the catalog.
func (c *ruleChecker) checkUnusedConsts() {
	names := make([]string, 0, len(c.idConsts))
	for name := range c.idConsts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ic := c.idConsts[name]
		if !ic.used {
			c.pass.Reportf(ic.pos, "rule ID constant %s (=%d) is never used by a catalog registration", name, ic.value)
		}
	}
}

// checkRuleLiterals requires every composite literal of a rule type (a named
// struct in this package with an Apply or Implement method) to stamp its
// info field via mk(...), so Info().ID is the catalog-declared rule ID.
func (c *ruleChecker) checkRuleLiterals(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := c.pass.Info.Types[cl]
		if !ok {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Pkg() != c.pass.Pkg {
			return true
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return true
		}
		if !hasRuleMethod(named) {
			return true
		}
		for _, e := range cl.Elts {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "info" {
					if _, isCall := kv.Value.(*ast.CallExpr); isCall {
						return true
					}
					c.pass.Reportf(kv.Value.Pos(), "rule %s: info must be stamped via mk(ID..., ...)", named.Obj().Name())
					return true
				}
			}
		}
		c.pass.Reportf(cl.Pos(), "rule %s constructed without info: the engine would stamp rule ID 0 into its plan operators", named.Obj().Name())
		return true
	})
}

// hasRuleMethod reports whether the type (or its pointer) declares an Apply
// or Implement method — the TransformRule/ImplementRule signatures.
func hasRuleMethod(named *types.Named) bool {
	for _, name := range []string{"Apply", "Implement"} {
		if obj, _, _ := types.LookupFieldOrMethod(named, true, named.Obj().Pkg(), name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}
