package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCheck audits every sync.Mutex / sync.RWMutex interaction inside one
// function scope (closures are separate scopes — a goroutine body locking a
// pool mutex is analyzed on its own):
//
//   - a Lock (or RLock) with no matching unlock anywhere in the scope;
//   - RLock paired with Unlock, or Lock paired with RUnlock — both runtime
//     faults on RWMutex;
//   - a return statement between an inline Lock and its inline Unlock — the
//     classic leaked-lock bug that defer exists to prevent (scopes that defer
//     the unlock are exempt);
//   - mutex-containing values (structs holding a mutex at any depth) passed
//     by value as a parameter or receiver, which copies the lock state.
//
// The scope-local pairing is intentionally conservative: lock helpers that
// acquire in one function and release in another are rare enough here that
// they can carry a baseline entry rather than complicating the analysis.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "mutexes unlock on every return path, RLock pairs with RUnlock, and no mutex is passed by value",
	Run:  runLockCheck,
}

// lockOp is one mutex method call inside a scope.
type lockOp struct {
	key      string // canonical receiver expression, e.g. "s.mu"
	name     string // Lock, Unlock, RLock, RUnlock
	pos      token.Pos
	deferred bool
}

func runLockCheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkMutexByValue(pass, fn)
				if fn.Body != nil {
					checkLockScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockScope(pass, fn.Body)
			}
			return true
		})
	}
}

// checkLockScope collects the scope's lock operations and return positions
// (excluding nested function literals) and runs the pairing checks.
func checkLockScope(pass *Pass, body *ast.BlockStmt) {
	var ops []lockOp
	var returns []token.Pos
	walkScope(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())
		case *ast.DeferStmt:
			if op, ok := mutexOp(pass, st.Call); ok {
				op.deferred = true
				ops = append(ops, op)
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if op, ok := mutexOp(pass, call); ok {
					ops = append(ops, op)
				}
			}
		}
	})
	if len(ops) == 0 {
		return
	}
	byKey := make(map[string][]lockOp)
	for _, op := range ops {
		byKey[op.key] = append(byKey[op.key], op)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		checkPairing(pass, k, byKey[k], returns)
	}
}

// checkPairing runs the per-receiver checks over one scope's ops.
func checkPairing(pass *Pass, key string, ops []lockOp, returns []token.Pos) {
	count := func(name string) int {
		n := 0
		for _, op := range ops {
			if op.name == name {
				n++
			}
		}
		return n
	}
	locks, unlocks := count("Lock"), count("Unlock")
	rlocks, runlocks := count("RLock"), count("RUnlock")
	first := ops[0]

	switch {
	case locks > 0 && unlocks == 0 && runlocks > 0:
		pass.Reportf(first.pos, "%s.Lock() released with RUnlock(); a write lock must pair with Unlock()", key)
		return
	case rlocks > 0 && runlocks == 0 && unlocks > 0:
		pass.Reportf(first.pos, "%s.RLock() released with Unlock(); a read lock must pair with RUnlock()", key)
		return
	case locks > 0 && unlocks == 0:
		pass.Reportf(first.pos, "%s.Lock() is never unlocked in this function", key)
		return
	case rlocks > 0 && runlocks == 0:
		pass.Reportf(first.pos, "%s.RLock() is never runlocked in this function", key)
		return
	}

	// Leaked-lock check: with no deferred unlock covering the scope, a return
	// between an acquire and its next release leaves the mutex held.
	for _, op := range ops {
		if op.deferred {
			return
		}
	}
	for _, acquire := range []string{"Lock", "RLock"} {
		release := "Unlock"
		if acquire == "RLock" {
			release = "RUnlock"
		}
		var lockPos token.Pos = token.NoPos
		for _, op := range ops {
			switch op.name {
			case acquire:
				if lockPos == token.NoPos {
					lockPos = op.pos
				}
			case release:
				if lockPos != token.NoPos {
					for _, r := range returns {
						if r > lockPos && r < op.pos {
							pass.Reportf(r, "return between %s.%s() and %s.%s() leaves the mutex held; unlock first or use defer", key, acquire, key, release)
						}
					}
					lockPos = token.NoPos
				}
			}
		}
	}
}

// walkScope visits the statements of one function scope, not descending into
// nested function literals (each literal is its own scope).
func walkScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// mutexOp recognizes a call as a sync mutex method invocation.
func mutexOp(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	return lockOp{key: types.ExprString(sel.X), name: name, pos: call.Pos()}, true
}

// checkMutexByValue flags parameters and receivers whose type contains a
// mutex without pointer indirection: the copy duplicates lock state, so
// locking the copy synchronizes nothing.
func checkMutexByValue(pass *Pass, fn *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pass.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if containsMutex(t, make(map[types.Type]bool)) {
				pass.Reportf(field.Pos(), "%s passes a %s by value, copying its mutex; use a pointer", fn.Name.Name, what)
			}
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
}

// containsMutex reports whether t holds a sync.Mutex or sync.RWMutex without
// pointer indirection, at any struct-field depth.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}
