package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// Edit is a single byte-range replacement in one file. Start == End inserts.
type Edit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// Fix is one suggested repair: a short description plus the text edits that
// implement it. Fixes are self-contained — applying a fix removes the
// finding, so applying all fixes twice is a no-op (the idempotency the driver
// test pins).
type Fix struct {
	Message string `json:"message"`
	Edits   []Edit `json:"edits"`
}

// ApplyFixes applies every fix attached to diags to the files on disk. Edits
// are deduplicated (two findings may suggest the identical import insertion),
// checked for overlap, applied back-to-front per file and the result
// re-rendered in canonical gofmt style with sorted imports. It returns the
// number of fixes applied; on an overlap the whole file is skipped with an
// error so a half-applied state never reaches disk.
func ApplyFixes(diags []Diagnostic) (int, error) {
	byFile := make(map[string][]Edit)
	applied := 0
	for _, d := range diags {
		for _, fx := range d.Fixes {
			applied++
			for _, e := range fx.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}
	if applied == 0 {
		return 0, nil
	}
	files := make([]string, 0, len(byFile))
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		if err := applyFileEdits(name, byFile[name]); err != nil {
			return 0, err
		}
	}
	return applied, nil
}

// applyFileEdits splices one file's deduplicated edits and rewrites it.
func applyFileEdits(name string, edits []Edit) error {
	edits = dedupEdits(edits)
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	for i := 1; i < len(edits); i++ {
		if edits[i].Start < edits[i-1].End {
			return fmt.Errorf("analysis: overlapping fixes in %s at offsets %d and %d; apply one and re-run",
				name, edits[i-1].Start, edits[i].Start)
		}
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("analysis: apply fixes: %w", err)
	}
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		if e.Start < 0 || e.End > len(src) || e.Start > e.End {
			return fmt.Errorf("analysis: fix edit out of range in %s (%d..%d of %d bytes)", name, e.Start, e.End, len(src))
		}
		var out []byte
		out = append(out, src[:e.Start]...)
		out = append(out, e.NewText...)
		out = append(out, src[e.End:]...)
		src = out
	}
	formatted, err := formatSource(name, src)
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, formatted, 0o644); err != nil {
		return fmt.Errorf("analysis: apply fixes: %w", err)
	}
	return nil
}

// dedupEdits drops byte-identical edits.
func dedupEdits(edits []Edit) []Edit {
	seen := make(map[Edit]bool, len(edits))
	out := edits[:0]
	for _, e := range edits {
		if seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// formatSource re-renders edited source in gofmt style with sorted imports,
// so applied fixes never trip the ci.sh gofmt gate.
func formatSource(filename string, src []byte) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: fix produced unparsable %s: %w", filename, err)
	}
	ast.SortImports(fset, f)
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, f); err != nil {
		return nil, fmt.Errorf("analysis: format fixed %s: %w", filename, err)
	}
	return buf.Bytes(), nil
}
