package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The pragma vocabulary. Every suppression or opt-in comment the analyzers
// honor is declared here and parsed by the two helpers below, so the pragma
// grammar cannot drift between analyzers.
//
// Line pragmas (AllowPanicPragma, AllowWallclockPragma) exempt the statement
// on the same line or the line directly below the comment and should carry a
// justification after the token:
//
//	// steerq:allow-panic — mirrors slice indexing semantics.
//	panic(fmt.Sprintf("bitvec: bit %d out of range", i))
//
// File pragmas (HotPathPragma) opt a whole file — and through it, its package
// — into an analyzer. They conventionally sit in the package or file doc
// comment:
//
//	// Package cascades ... (steerq:hotpath — guarded by the hotalloc
//	// analyzer against allocation regressions.)
const (
	// AllowPanicPragma exempts the next (or same) line from the panicfree
	// analyzer.
	AllowPanicPragma = "steerq:allow-panic"
	// AllowWallclockPragma exempts the next (or same) line from detcheck's
	// wall-clock rule. Reserved for approved seams such as obs.WallClock.
	AllowWallclockPragma = "steerq:allow-wallclock"
	// HotPathPragma opts a file's package into the hotalloc analyzer.
	HotPathPragma = "steerq:hotpath"
)

// pragmaLines returns the set of file lines covered by the given line pragma:
// the pragma's own line and the line below it, so the comment may sit on the
// flagged line or directly above it.
func pragmaLines(fset *token.FileSet, f *ast.File, pragma string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !isPragmaComment(c.Text, pragma) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// hasFilePragma reports whether any comment in f carries the given file
// pragma token. Used for package-scoped opt-ins: a package is opted in when
// any of its files carries the pragma.
func hasFilePragma(f *ast.File, pragma string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isPragmaComment(c.Text, pragma) {
				return true
			}
		}
	}
	return false
}

// isPragmaComment reports whether a comment is a pragma directive: the token
// must lead the comment text (after the // or /* marker and optional space).
// Mid-sentence mentions of a pragma token — documentation talking *about* the
// pragma, like this very comment — are not directives.
func isPragmaComment(text, pragma string) bool {
	for _, marker := range []string{"//", "/*"} {
		if rest, ok := strings.CutPrefix(text, marker); ok {
			return strings.HasPrefix(strings.TrimLeft(rest, " \t"), pragma)
		}
	}
	return false
}
