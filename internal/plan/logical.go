package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates logical operators of the SCOPE-like algebra.
type Op int

// Logical operators. The set mirrors the operator classes the paper's rules
// act on: relational operators, SCOPE-specific UNION ALL, and user-defined
// PROCESS/REDUCE operators (§3.2).
const (
	OpGet      Op = iota // scan of a named input stream
	OpSelect             // filter by a predicate
	OpProject            // projection / computed columns
	OpJoin               // inner equi/theta join
	OpGroupBy            // grouping and aggregation
	OpUnionAll           // bag union of same-schema inputs (n-ary)
	OpProcess            // row-wise user-defined operator
	OpReduce             // per-key user-defined operator
	OpTop                // top-N by sort keys
	OpOutput             // write result to a path
	OpMulti              // virtual root over multiple outputs of one job
)

var opNames = [...]string{
	"Get", "Select", "Project", "Join", "GroupBy", "UnionAll",
	"Process", "Reduce", "Top", "Output", "Multi",
}

func (o Op) String() string { return opNames[o] }

// Projection is one output expression of a Project operator.
type Projection struct {
	Expr *Expr
	Out  Column
}

// Agg is one aggregate computed by a GroupBy operator.
type Agg struct {
	Fn  string // COUNT, SUM, MIN, MAX, AVG
	Arg *Expr  // nil for COUNT(*)
	Out Column
}

// SortKey is one ordering column with direction.
type SortKey struct {
	Col  Column
	Desc bool
}

// Node is a logical operator. Nodes form DAGs: a node consumed by several
// parents appears once and is shared.
type Node struct {
	Op       Op
	Children []*Node

	// Schema lists the output columns of the operator.
	Schema []Column

	// Operator payloads; which fields are meaningful depends on Op.
	Table      string       // Get: input stream name
	Pred       *Expr        // Select: filter; Join: join condition
	Projs      []Projection // Project
	GroupKeys  []Column     // GroupBy
	Aggs       []Agg        // GroupBy
	Processor  string       // Process, Reduce: UDO name
	ReduceKeys []Column     // Reduce
	TopN       int          // Top
	SortKeys   []SortKey    // Top
	OutputPath string       // Output
}

// NewGet returns a Get node scanning the named stream with the given output
// schema.
func NewGet(table string, schema []Column) *Node {
	return &Node{Op: OpGet, Table: table, Schema: schema}
}

// NewSelect returns a Select node filtering child by pred.
func NewSelect(child *Node, pred *Expr) *Node {
	return &Node{Op: OpSelect, Children: []*Node{child}, Pred: pred, Schema: child.Schema}
}

// NewProject returns a Project node computing the given projections.
func NewProject(child *Node, projs []Projection) *Node {
	schema := make([]Column, len(projs))
	for i, p := range projs {
		schema[i] = p.Out
	}
	return &Node{Op: OpProject, Children: []*Node{child}, Projs: projs, Schema: schema}
}

// NewJoin returns an inner Join of left and right on pred.
func NewJoin(left, right *Node, pred *Expr) *Node {
	schema := make([]Column, 0, len(left.Schema)+len(right.Schema))
	schema = append(schema, left.Schema...)
	schema = append(schema, right.Schema...)
	return &Node{Op: OpJoin, Children: []*Node{left, right}, Pred: pred, Schema: schema}
}

// NewGroupBy returns a GroupBy node.
func NewGroupBy(child *Node, keys []Column, aggs []Agg) *Node {
	schema := make([]Column, 0, len(keys)+len(aggs))
	schema = append(schema, keys...)
	for _, a := range aggs {
		schema = append(schema, a.Out)
	}
	return &Node{Op: OpGroupBy, Children: []*Node{child}, GroupKeys: keys, Aggs: aggs, Schema: schema}
}

// NewUnionAll returns an n-ary UnionAll. All children must share arity; the
// schema is taken from the first child.
func NewUnionAll(children ...*Node) *Node {
	if len(children) == 0 {
		// steerq:allow-panic — constructor misuse, caught at generator-authoring time.
		panic("plan: UnionAll needs at least one child")
	}
	return &Node{Op: OpUnionAll, Children: children, Schema: children[0].Schema}
}

// NewProcess returns a Process node applying the named UDO. The schema is
// preserved (row-wise transforms in the dialect keep columns).
func NewProcess(child *Node, processor string) *Node {
	return &Node{Op: OpProcess, Children: []*Node{child}, Processor: processor, Schema: child.Schema}
}

// NewReduce returns a Reduce node applying the named UDO per key group.
func NewReduce(child *Node, keys []Column, processor string) *Node {
	return &Node{Op: OpReduce, Children: []*Node{child}, ReduceKeys: keys, Processor: processor, Schema: child.Schema}
}

// NewTop returns a Top-N node ordered by the given keys.
func NewTop(child *Node, n int, keys []SortKey) *Node {
	return &Node{Op: OpTop, Children: []*Node{child}, TopN: n, SortKeys: keys, Schema: child.Schema}
}

// NewOutput returns an Output node writing child to path.
func NewOutput(child *Node, path string) *Node {
	return &Node{Op: OpOutput, Children: []*Node{child}, OutputPath: path, Schema: child.Schema}
}

// NewMulti returns the virtual root over a job's outputs.
func NewMulti(outputs ...*Node) *Node {
	return &Node{Op: OpMulti, Children: outputs}
}

// ColumnSet returns the set of column IDs produced by the node.
func (n *Node) ColumnSet() map[ColumnID]bool {
	set := make(map[ColumnID]bool, len(n.Schema))
	for _, c := range n.Schema {
		set[c.ID] = true
	}
	return set
}

// Walk visits every node of the DAG exactly once in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	seen := make(map[*Node]bool)
	var rec func(*Node)
	rec = func(m *Node) {
		if m == nil || seen[m] {
			return
		}
		seen[m] = true
		fn(m)
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
}

// Count returns the number of distinct operator nodes in the DAG.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Inputs returns the sorted distinct input stream names scanned by the DAG.
func (n *Node) Inputs() []string {
	set := make(map[string]bool)
	n.Walk(func(m *Node) {
		if m.Op == OpGet {
			set[m.Table] = true
		}
	})
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String renders the DAG as an indented tree; shared nodes are expanded at
// first visit and referenced by ordinal afterwards.
func (n *Node) String() string {
	var b strings.Builder
	ids := make(map[*Node]int)
	var rec func(m *Node, depth int)
	rec = func(m *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if id, ok := ids[m]; ok {
			fmt.Fprintf(&b, "^ref=%d\n", id)
			return
		}
		ids[m] = len(ids)
		fmt.Fprintf(&b, "%s%s\n", m.Op, m.payload())
		for _, c := range m.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

func (n *Node) payload() string {
	switch n.Op {
	case OpGet:
		return fmt.Sprintf("(%s)", n.Table)
	case OpSelect, OpJoin:
		return fmt.Sprintf("(%s)", n.Pred)
	case OpProject:
		parts := make([]string, len(n.Projs))
		for i, p := range n.Projs {
			parts[i] = fmt.Sprintf("%s AS %s", p.Expr, p.Out.Name)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case OpGroupBy:
		keys := make([]string, len(n.GroupKeys))
		for i, k := range n.GroupKeys {
			keys[i] = k.Name
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.String()
			}
			aggs[i] = fmt.Sprintf("%s(%s) AS %s", a.Fn, arg, a.Out.Name)
		}
		return fmt.Sprintf("(keys=[%s] aggs=[%s])", strings.Join(keys, ","), strings.Join(aggs, ","))
	case OpProcess:
		return fmt.Sprintf("(%s)", n.Processor)
	case OpReduce:
		keys := make([]string, len(n.ReduceKeys))
		for i, k := range n.ReduceKeys {
			keys[i] = k.Name
		}
		return fmt.Sprintf("(%s ON %s)", n.Processor, strings.Join(keys, ","))
	case OpTop:
		return fmt.Sprintf("(%d)", n.TopN)
	case OpOutput:
		return fmt.Sprintf("(%s)", n.OutputPath)
	default:
		return "" // OpUnionAll, OpMulti: children carry all the information
	}
}
