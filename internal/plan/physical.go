package plan

import (
	"fmt"
	"sort"
	"strings"
)

// PhysOp enumerates physical operators.
type PhysOp int

// Physical operators. Several correspond one-to-one with the implementation
// rules of Table 2 (HashJoinImpl1, UnionAllToVirtualDataset, ...); Exchange
// is produced by the EnforceExchange required rule.
const (
	PhysExtract        PhysOp = iota // partitioned scan of an input stream
	PhysFilter                       // predicate evaluation
	PhysCompute                      // projection / scalar computation
	PhysHashJoin                     // hash join, build = smaller estimated side
	PhysHashJoinAlt                  // hash join variant, build = right side always ("JoinImpl2")
	PhysMergeJoin                    // sort-merge join
	PhysLoopJoin                     // (indexed) nested-loop join / apply
	PhysHashAgg                      // hash aggregation
	PhysStreamAgg                    // sorted-stream aggregation
	PhysPartialHashAgg               // local pre-aggregation (two-phase)
	PhysFinalHashAgg                 // global phase of two-phase aggregation
	PhysUnionMerge                   // physical union: reads all branches, emits one stream
	PhysVirtualDataset               // virtual union: consumers read branches in place
	PhysProcessImpl                  // user-defined row processor
	PhysReduceImpl                   // user-defined key reducer
	PhysLocalTop                     // per-partition top-N
	PhysGlobalTop                    // final top-N
	PhysSort                         // full sort (enforcer for merge join / stream agg)
	PhysExchange                     // data movement (shuffle/broadcast/gather)
	PhysOutputImpl                   // writer
	PhysMultiImpl                    // virtual root
	PhysRangeScan                    // scan restricted by a pushed-down range predicate
)

var physNames = [...]string{
	"Extract", "Filter", "Compute", "HashJoin", "HashJoinAlt", "MergeJoin",
	"LoopJoin", "HashAgg", "StreamAgg", "PartialHashAgg", "FinalHashAgg",
	"UnionMerge", "VirtualDataset", "ProcessImpl", "ReduceImpl", "LocalTop",
	"GlobalTop", "Sort", "Exchange", "OutputImpl", "MultiImpl", "RangeScan",
}

func (o PhysOp) String() string { return physNames[o] }

// DistKind enumerates data distribution properties of a physical stream.
type DistKind int

// Distribution kinds.
const (
	DistAny       DistKind = iota // unconstrained (only valid as a requirement)
	DistRandom                    // partitioned with no key guarantee
	DistHash                      // hash-partitioned on Keys
	DistBroadcast                 // full copy on every partition
	DistSingleton                 // single partition
)

var distNames = [...]string{"any", "random", "hash", "broadcast", "singleton"}

func (d DistKind) String() string { return distNames[d] }

// Distribution describes how a physical stream is partitioned across
// containers, and at what degree of parallelism.
type Distribution struct {
	Kind DistKind
	Keys []ColumnID // hash keys when Kind == DistHash
	DOP  int        // number of partitions (1 for singleton/broadcast targets)
}

// Satisfies reports whether a delivered distribution d meets requirement r.
func (d Distribution) Satisfies(r Distribution) bool {
	switch r.Kind {
	case DistAny:
		return true
	case DistSingleton:
		return d.Kind == DistSingleton
	case DistBroadcast:
		return d.Kind == DistBroadcast
	case DistRandom:
		return d.Kind == DistRandom || d.Kind == DistHash || d.Kind == DistSingleton
	case DistHash:
		if d.Kind == DistSingleton {
			return true // one partition trivially co-locates all keys
		}
		if d.Kind != DistHash || len(d.Keys) != len(r.Keys) {
			return false
		}
		for i := range d.Keys {
			if d.Keys[i] != r.Keys[i] {
				return false
			}
		}
		return d.DOP == r.DOP || r.DOP == 0
	}
	return false
}

func (d Distribution) String() string {
	if d.Kind == DistHash {
		keys := make([]string, len(d.Keys))
		for i, k := range d.Keys {
			keys[i] = fmt.Sprint(k)
		}
		return fmt.Sprintf("hash(%s)x%d", strings.Join(keys, ","), d.DOP)
	}
	if d.DOP > 0 {
		return fmt.Sprintf("%sx%d", distNames[d.Kind], d.DOP)
	}
	return distNames[d.Kind]
}

// ExchangeKind enumerates data movement operations.
type ExchangeKind int

// Exchange kinds.
const (
	ExchangeShuffle   ExchangeKind = iota // hash-repartition on keys
	ExchangeBroadcast                     // replicate to every consumer partition
	ExchangeGather                        // merge all partitions into one
	ExchangeInitial                       // initial partitioned read layout
)

var exchangeNames = [...]string{"shuffle", "broadcast", "gather", "initial"}

func (e ExchangeKind) String() string { return exchangeNames[e] }

// PhysNode is a physical operator. Like logical nodes, physical plans are
// DAGs with shared subtrees.
type PhysNode struct {
	Op       PhysOp
	Children []*PhysNode
	Schema   []Column

	// Payload fields, meaningful per Op (mirrors Node).
	Table      string
	Pred       *Expr
	Projs      []Projection
	GroupKeys  []Column
	Aggs       []Agg
	Processor  string
	ReduceKeys []Column
	TopN       int
	SortKeys   []SortKey
	OutputPath string

	// Exchange payload.
	Exchange ExchangeKind
	HashKeys []Column

	// Dist is the output distribution of this operator.
	Dist Distribution

	// EstRows is the optimizer's estimated output cardinality.
	EstRows float64
	// EstCost is the operator-local estimated cost.
	EstCost float64
	// TotalCost is EstCost plus the total cost of all children
	// (shared children counted once).
	TotalCost float64

	// RuleID identifies the optimizer rule whose application produced this
	// operator; the union of RuleIDs over a final plan is the job's rule
	// signature (Definition 3.2).
	RuleID int
}

// Walk visits every node of the physical DAG exactly once in pre-order.
func (n *PhysNode) Walk(fn func(*PhysNode)) {
	seen := make(map[*PhysNode]bool)
	var rec func(*PhysNode)
	rec = func(m *PhysNode) {
		if m == nil || seen[m] {
			return
		}
		seen[m] = true
		fn(m)
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
}

// Count returns the number of distinct physical operators in the DAG.
func (n *PhysNode) Count() int {
	c := 0
	n.Walk(func(*PhysNode) { c++ })
	return c
}

// RuleIDs returns the sorted distinct rule IDs that contributed operators to
// the plan.
func (n *PhysNode) RuleIDs() []int {
	set := make(map[int]bool)
	n.Walk(func(m *PhysNode) {
		if m.RuleID >= 0 {
			set[m.RuleID] = true
		}
	})
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// String renders the physical DAG with distributions, estimated rows and
// costs; shared nodes are referenced by ordinal after first expansion.
func (n *PhysNode) String() string {
	var b strings.Builder
	ids := make(map[*PhysNode]int)
	var rec func(m *PhysNode, depth int)
	rec = func(m *PhysNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if id, ok := ids[m]; ok {
			fmt.Fprintf(&b, "^ref=%d\n", id)
			return
		}
		ids[m] = len(ids)
		fmt.Fprintf(&b, "%s%s [%s rows=%.0f cost=%.1f]\n", m.Op, m.physPayload(), m.Dist, m.EstRows, m.EstCost)
		for _, c := range m.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

func (n *PhysNode) physPayload() string {
	switch n.Op {
	case PhysExtract, PhysRangeScan:
		return fmt.Sprintf("(%s)", n.Table)
	case PhysFilter:
		return fmt.Sprintf("(%s)", n.Pred)
	case PhysExchange:
		return fmt.Sprintf("(%s)", n.Exchange)
	case PhysProcessImpl, PhysReduceImpl:
		return fmt.Sprintf("(%s)", n.Processor)
	case PhysOutputImpl:
		return fmt.Sprintf("(%s)", n.OutputPath)
	case PhysLocalTop, PhysGlobalTop:
		return fmt.Sprintf("(%d)", n.TopN)
	default:
		return ""
	}
}
