package plan

import (
	"strings"
	"testing"
)

func physChain() *PhysNode {
	k := Column{ID: 1, Name: "k", Source: "s.k"}
	schema := []Column{k}
	scan := &PhysNode{Op: PhysExtract, Table: "s", Schema: schema, RuleID: 3,
		Dist: Distribution{Kind: DistRandom, DOP: 8}, EstRows: 1e6, EstCost: 2}
	ex := &PhysNode{Op: PhysExchange, Exchange: ExchangeShuffle, Schema: schema, RuleID: 0,
		Children: []*PhysNode{scan},
		Dist:     Distribution{Kind: DistHash, Keys: []ColumnID{1}, DOP: 8}, EstRows: 1e6, EstCost: 1}
	agg := &PhysNode{Op: PhysHashAgg, Schema: schema, GroupKeys: schema, RuleID: 228,
		Children: []*PhysNode{ex},
		Dist:     Distribution{Kind: DistHash, Keys: []ColumnID{1}, DOP: 8}, EstRows: 100, EstCost: 5}
	out := &PhysNode{Op: PhysOutputImpl, OutputPath: "o", Schema: schema, RuleID: 2,
		Children: []*PhysNode{agg},
		Dist:     Distribution{Kind: DistHash, Keys: []ColumnID{1}, DOP: 8}, EstRows: 100, EstCost: 1}
	return out
}

func TestPhysRuleIDs(t *testing.T) {
	got := physChain().RuleIDs()
	want := []int{0, 2, 3, 228}
	if len(got) != len(want) {
		t.Fatalf("RuleIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RuleIDs = %v, want %v", got, want)
		}
	}
}

func TestPhysCountAndWalk(t *testing.T) {
	p := physChain()
	if p.Count() != 4 {
		t.Fatalf("Count = %d", p.Count())
	}
	// Shared nodes counted once.
	shared := p.Children[0]
	multi := &PhysNode{Op: PhysMultiImpl, Children: []*PhysNode{p, shared}, RuleID: 6,
		Dist: Distribution{Kind: DistSingleton, DOP: 1}}
	if multi.Count() != 5 {
		t.Fatalf("shared Count = %d, want 5", multi.Count())
	}
}

func TestPhysString(t *testing.T) {
	s := physChain().String()
	for _, want := range []string{"OutputImpl(o)", "HashAgg", "Exchange(shuffle)", "Extract(s)", "hash(1)x8"} {
		if !strings.Contains(s, want) {
			t.Errorf("physical plan string missing %q:\n%s", want, s)
		}
	}
}

func TestExchangeKindStrings(t *testing.T) {
	cases := map[ExchangeKind]string{
		ExchangeShuffle:   "shuffle",
		ExchangeBroadcast: "broadcast",
		ExchangeGather:    "gather",
		ExchangeInitial:   "initial",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestPhysOpStringsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for op := PhysExtract; op <= PhysRangeScan; op++ {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("physical op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
}

func TestWriteDOT(t *testing.T) {
	var b strings.Builder
	if err := WriteDOT(&b, "plan", physChain()); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{"digraph", "Extract", "HashAgg", "->", "style=dashed"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
	// Shared nodes render once: node count equals distinct operators.
	if got := strings.Count(s, "label="); got != 4 {
		t.Fatalf("%d labeled nodes, want 4", got)
	}
	if err := WriteDOT(&b, "x", nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}
