package plan

import (
	"fmt"
	"hash/fnv"
	"io"
)

// TemplateHash computes the recurring-template identifier of a logical plan.
//
// Per §3.1.1, recurring jobs belonging to the same template are identified by
// "discarding all variable values (e.g., predicate filters) and computing the
// hash of the remaining information in the query graph". Literal constants
// are therefore excluded, while operator structure, column names, input
// stream names, UDO names and aggregate functions are included — which is why
// "even small differences in a job, such as a single different input name,
// will lead to different recurring template identifiers" (§6.4).
func TemplateHash(n *Node) uint64 {
	h := fnv.New64a()
	hashNode(h, n, false)
	return h.Sum64()
}

// InstanceHash is like TemplateHash but includes literal constants, so two
// instances of the same template with different predicate values hash
// differently.
func InstanceHash(n *Node) uint64 {
	h := fnv.New64a()
	hashNode(h, n, true)
	return h.Sum64()
}

// InputsHash identifies the set of input streams a job reads. Table 1 counts
// "# Unique Inputs" per workload using this notion.
func InputsHash(n *Node) uint64 {
	h := fnv.New64a()
	for _, in := range n.Inputs() {
		io.WriteString(h, in)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func hashNode(h io.Writer, n *Node, withLiterals bool) {
	// Walk the DAG in a canonical order. Shared nodes are hashed at each
	// occurrence; identity sharing does not change the template.
	fmt.Fprintf(h, "op:%d;", n.Op)
	switch n.Op {
	case OpGet:
		io.WriteString(h, n.Table)
	case OpSelect, OpJoin:
		hashExpr(h, n.Pred, withLiterals)
	case OpProject:
		for _, p := range n.Projs {
			io.WriteString(h, p.Out.Name)
			hashExpr(h, p.Expr, withLiterals)
		}
	case OpGroupBy:
		for _, k := range n.GroupKeys {
			io.WriteString(h, k.Name)
		}
		for _, a := range n.Aggs {
			io.WriteString(h, a.Fn)
			hashExpr(h, a.Arg, withLiterals)
			io.WriteString(h, a.Out.Name)
		}
	case OpProcess:
		io.WriteString(h, n.Processor)
	case OpReduce:
		io.WriteString(h, n.Processor)
		for _, k := range n.ReduceKeys {
			io.WriteString(h, k.Name)
		}
	case OpTop:
		// TopN count is structural, not a variable predicate value.
		fmt.Fprintf(h, "n:%d;", n.TopN)
		for _, k := range n.SortKeys {
			io.WriteString(h, k.Col.Name)
			fmt.Fprintf(h, "d:%t;", k.Desc)
		}
	case OpOutput:
		io.WriteString(h, n.OutputPath)
	default:
		// OpUnionAll, OpMulti: no payload beyond the operator and children.
	}
	fmt.Fprintf(h, "#%d(", len(n.Children))
	for _, c := range n.Children {
		hashNode(h, c, withLiterals)
		io.WriteString(h, ",")
	}
	io.WriteString(h, ")")
}

func hashExpr(h io.Writer, e *Expr, withLiterals bool) {
	if e == nil {
		io.WriteString(h, "~")
		return
	}
	fmt.Fprintf(h, "e:%d;", e.Kind)
	switch e.Kind {
	case ExprColumn:
		io.WriteString(h, e.Col.Name)
		io.WriteString(h, "|")
		io.WriteString(h, e.Col.Source)
	case ExprConst:
		if withLiterals {
			io.WriteString(h, e.Lit.String())
		} else {
			io.WriteString(h, "?") // variable value discarded
		}
	case ExprCmp, ExprArith:
		fmt.Fprintf(h, "o:%d;", e.Op)
	case ExprFunc:
		io.WriteString(h, e.Fn)
	}
	for _, a := range e.Args {
		hashExpr(h, a, withLiterals)
	}
}
