package plan

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders a physical plan as a Graphviz digraph: one box per
// operator annotated with its distribution, estimated rows and local cost;
// shared DAG nodes render once with multiple in-edges. Pipe the output
// through `dot -Tsvg` to visualize a steered plan next to its default.
func WriteDOT(w io.Writer, name string, root *PhysNode) error {
	if root == nil {
		return fmt.Errorf("plan: WriteDOT: nil plan")
	}
	ids := make(map[*PhysNode]int)
	var nodes []*PhysNode
	root.Walk(func(n *PhysNode) {
		ids[n] = len(nodes)
		nodes = append(nodes, n)
	})
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n", name); err != nil {
		return err
	}
	for _, n := range nodes {
		label := dotLabel(n)
		style := ""
		if n.Op == PhysExchange {
			style = ", style=dashed"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q%s];\n", ids[n], label, style); err != nil {
			return err
		}
	}
	for _, n := range nodes {
		for _, c := range n.Children {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", ids[c], ids[n]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotLabel(n *PhysNode) string {
	var b strings.Builder
	b.WriteString(n.Op.String())
	switch n.Op {
	case PhysExtract, PhysRangeScan:
		fmt.Fprintf(&b, "\n%s", n.Table)
	case PhysExchange:
		fmt.Fprintf(&b, "\n%s", n.Exchange)
	case PhysProcessImpl, PhysReduceImpl:
		fmt.Fprintf(&b, "\n%s", n.Processor)
	case PhysOutputImpl:
		fmt.Fprintf(&b, "\n%s", n.OutputPath)
	default:
		// Joins, aggregations, sorts etc. have no extra payload to label.
	}
	fmt.Fprintf(&b, "\n%s | rows=%.3g | cost=%.2f", n.Dist, n.EstRows, n.EstCost)
	return b.String()
}
