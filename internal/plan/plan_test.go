package plan

import (
	"strings"
	"testing"
)

func col(id int, name, source string) Column {
	return Column{ID: ColumnID(id), Name: name, Source: source}
}

func TestAndFlattening(t *testing.T) {
	a := Cmp(OpGT, ColExpr(col(1, "a", "")), NumExpr(1))
	b := Cmp(OpLT, ColExpr(col(2, "b", "")), NumExpr(2))
	c := Cmp(OpEQ, ColExpr(col(3, "c", "")), NumExpr(3))
	got := And(And(a, b), c)
	if got.Kind != ExprAnd || len(got.Args) != 3 {
		t.Fatalf("And did not flatten: %v", got)
	}
	if And() != nil {
		t.Fatal("And() should be nil")
	}
	if And(a) != a {
		t.Fatal("And(a) should be a")
	}
	if And(nil, a, nil) != a {
		t.Fatal("And should skip nils")
	}
}

func TestConjuncts(t *testing.T) {
	a := Cmp(OpGT, ColExpr(col(1, "a", "")), NumExpr(1))
	b := Cmp(OpLT, ColExpr(col(2, "b", "")), NumExpr(2))
	if got := Conjuncts(And(a, b)); len(got) != 2 {
		t.Fatalf("Conjuncts = %v", got)
	}
	if got := Conjuncts(a); len(got) != 1 || got[0] != a {
		t.Fatalf("Conjuncts of simple expr = %v", got)
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil) should be nil")
	}
}

func TestRefersOnly(t *testing.T) {
	e := And(
		Cmp(OpGT, ColExpr(col(1, "a", "")), NumExpr(1)),
		Cmp(OpEQ, ColExpr(col(2, "b", "")), ColExpr(col(3, "c", ""))),
	)
	if !e.RefersOnly(map[ColumnID]bool{1: true, 2: true, 3: true}) {
		t.Fatal("RefersOnly false with full set")
	}
	if e.RefersOnly(map[ColumnID]bool{1: true, 2: true}) {
		t.Fatal("RefersOnly true with missing column")
	}
}

func TestEquiJoinSides(t *testing.T) {
	a, b := col(1, "a", ""), col(2, "b", "")
	e := Cmp(OpEQ, ColExpr(a), ColExpr(b))
	l, r, ok := e.EquiJoinSides()
	if !ok || l.ID != 1 || r.ID != 2 {
		t.Fatalf("EquiJoinSides = %v %v %v", l, r, ok)
	}
	if _, _, ok := Cmp(OpLT, ColExpr(a), ColExpr(b)).EquiJoinSides(); ok {
		t.Fatal("non-equality accepted")
	}
	if _, _, ok := Cmp(OpEQ, ColExpr(a), NumExpr(5)).EquiJoinSides(); ok {
		t.Fatal("column-constant accepted")
	}
}

// buildJob constructs Select(Get) -> Project -> Output with the given
// constant in the predicate.
func buildJob(threshold float64, stream string) *Node {
	c := col(1, "a", stream+".a")
	get := NewGet(stream, []Column{c})
	sel := NewSelect(get, Cmp(OpGT, ColExpr(c), NumExpr(threshold)))
	proj := NewProject(sel, []Projection{{Expr: ColExpr(c), Out: c}})
	return NewOutput(proj, "out/x")
}

func TestTemplateHashIgnoresLiterals(t *testing.T) {
	a := buildJob(10, "s")
	b := buildJob(99, "s")
	if TemplateHash(a) != TemplateHash(b) {
		t.Fatal("template hash depends on literal values")
	}
	if InstanceHash(a) == InstanceHash(b) {
		t.Fatal("instance hash ignores literal values")
	}
}

func TestTemplateHashSensitiveToInputs(t *testing.T) {
	a := buildJob(10, "s1")
	b := buildJob(10, "s2")
	if TemplateHash(a) == TemplateHash(b) {
		t.Fatal("template hash ignores input stream name (§6.4 requires it not to)")
	}
	if InputsHash(a) == InputsHash(b) {
		t.Fatal("inputs hash ignores stream name")
	}
}

func TestWalkVisitsSharedOnce(t *testing.T) {
	c := col(1, "a", "s.a")
	get := NewGet("s", []Column{c})
	o1 := NewOutput(get, "x")
	o2 := NewOutput(get, "y")
	root := NewMulti(o1, o2)
	count := 0
	root.Walk(func(n *Node) {
		if n.Op == OpGet {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("shared Get visited %d times", count)
	}
	if root.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", root.Count())
	}
}

func TestInputs(t *testing.T) {
	g1 := NewGet("s2", []Column{col(1, "a", "s2.a")})
	g2 := NewGet("s1", []Column{col(2, "b", "s1.b")})
	j := NewJoin(g1, g2, Cmp(OpEQ, ColExpr(col(1, "a", "s2.a")), ColExpr(col(2, "b", "s1.b"))))
	got := j.Inputs()
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("Inputs = %v", got)
	}
}

func TestCloneWithFreshIDs(t *testing.T) {
	root := buildJob(5, "s")
	next := ColumnID(100)
	clone := CloneWithFreshIDs(root, func() ColumnID { next++; return next })

	// Same structure.
	if TemplateHash(root) != TemplateHash(clone) {
		t.Fatal("clone changed the template")
	}
	// All IDs remapped above 100.
	clone.Walk(func(n *Node) {
		for _, c := range n.Schema {
			if c.ID <= 100 {
				t.Fatalf("clone kept old column ID %d", c.ID)
			}
		}
	})
	// Predicate references remapped consistently with schemas.
	var sel *Node
	clone.Walk(func(n *Node) {
		if n.Op == OpSelect {
			sel = n
		}
	})
	if !sel.Pred.RefersOnly(sel.Children[0].ColumnSet()) {
		t.Fatal("clone predicate references unmapped columns")
	}
}

func TestCloneSharingPreserved(t *testing.T) {
	c := col(1, "a", "s.a")
	get := NewGet("s", []Column{c})
	root := NewMulti(NewOutput(get, "x"), NewOutput(get, "y"))
	next := ColumnID(100)
	clone := CloneWithFreshIDs(root, func() ColumnID { next++; return next })
	if clone.Children[0].Children[0] != clone.Children[1].Children[0] {
		t.Fatal("clone broke internal sharing")
	}
}

func TestDistributionSatisfies(t *testing.T) {
	hash := Distribution{Kind: DistHash, Keys: []ColumnID{1, 2}, DOP: 8}
	cases := []struct {
		d, r Distribution
		want bool
	}{
		{hash, Distribution{Kind: DistAny}, true},
		{hash, Distribution{Kind: DistHash, Keys: []ColumnID{1, 2}}, true},
		{hash, Distribution{Kind: DistHash, Keys: []ColumnID{2, 1}}, false},
		{hash, Distribution{Kind: DistHash, Keys: []ColumnID{1}}, false},
		{hash, Distribution{Kind: DistRandom}, true},
		{hash, Distribution{Kind: DistSingleton}, false},
		{Distribution{Kind: DistSingleton, DOP: 1}, Distribution{Kind: DistHash, Keys: []ColumnID{1}}, true},
		{Distribution{Kind: DistBroadcast}, Distribution{Kind: DistBroadcast}, true},
		{Distribution{Kind: DistRandom}, Distribution{Kind: DistBroadcast}, false},
	}
	for i, c := range cases {
		if got := c.d.Satisfies(c.r); got != c.want {
			t.Errorf("case %d: %v satisfies %v = %v, want %v", i, c.d, c.r, got, c.want)
		}
	}
}

func TestNodeString(t *testing.T) {
	s := buildJob(5, "stream").String()
	for _, want := range []string{"Output", "Project", "Select", "Get(stream)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExprString(t *testing.T) {
	e := And(
		Cmp(OpGT, ColExpr(col(1, "a", "")), NumExpr(1.5)),
		Or(Cmp(OpEQ, ColExpr(col(2, "b", "")), StrExpr("x")), Cmp(OpNE, ColExpr(col(3, "c", "")), NumExpr(2))),
	)
	s := e.String()
	for _, want := range []string{"a", ">", "1.5", `"x"`, "OR", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("expr string %q missing %q", s, want)
		}
	}
}

func TestExprClone(t *testing.T) {
	e := And(
		Cmp(OpGT, ColExpr(col(1, "a", "")), NumExpr(1)),
		Cmp(OpLT, ColExpr(col(2, "b", "")), NumExpr(2)),
	)
	c := e.Clone()
	c.Args[0].Op = OpLE
	if e.Args[0].Op != OpGT {
		t.Fatal("Clone aliases the original")
	}
}
