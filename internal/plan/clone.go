package plan

// CloneWithFreshIDs deep-copies a logical DAG, remapping every column ID to a
// fresh one obtained from nextID. Internal sharing within the subtree is
// preserved (a node consumed twice inside the subtree is cloned once).
//
// The binder uses this when a script variable is referenced more than once in
// relational position: sharing the node verbatim would make the two
// occurrences' columns indistinguishable inside a join, so later references
// get fresh column identities while keeping the identical structure (and
// therefore the identical template hash contribution).

// ClonePhys deep-copies a physical DAG's node structure, preserving internal
// sharing (a node consumed twice is cloned once). Payload slices and
// expressions are shared with the original — callers that mutate a clone may
// overwrite a node's scalar fields or re-slice its slices, but must not
// write through the shared backing arrays. The fault injector uses this to
// corrupt a copy of a compiled plan without touching the optimizer's result.
func ClonePhys(n *PhysNode) *PhysNode {
	cloned := make(map[*PhysNode]*PhysNode)
	var rec func(*PhysNode) *PhysNode
	rec = func(m *PhysNode) *PhysNode {
		if m == nil {
			return nil
		}
		if c, ok := cloned[m]; ok {
			return c
		}
		cp := *m
		cloned[m] = &cp
		cp.Children = make([]*PhysNode, len(m.Children))
		for i, ch := range m.Children {
			cp.Children[i] = rec(ch)
		}
		return &cp
	}
	return rec(n)
}

func CloneWithFreshIDs(n *Node, nextID func() ColumnID) *Node {
	remap := make(map[ColumnID]ColumnID)
	cloned := make(map[*Node]*Node)
	var rec func(*Node) *Node
	mapCol := func(c Column) Column {
		id, ok := remap[c.ID]
		if !ok {
			id = nextID()
			remap[c.ID] = id
		}
		c.ID = id
		return c
	}
	var mapExpr func(e *Expr) *Expr
	mapExpr = func(e *Expr) *Expr {
		if e == nil {
			return nil
		}
		cp := *e
		if e.Kind == ExprColumn {
			cp.Col = mapCol(e.Col)
		}
		if len(e.Args) > 0 {
			cp.Args = make([]*Expr, len(e.Args))
			for i, a := range e.Args {
				cp.Args[i] = mapExpr(a)
			}
		}
		return &cp
	}
	mapCols := func(cols []Column) []Column {
		if cols == nil {
			return nil
		}
		out := make([]Column, len(cols))
		for i, c := range cols {
			out[i] = mapCol(c)
		}
		return out
	}
	rec = func(m *Node) *Node {
		if m == nil {
			return nil
		}
		if c, ok := cloned[m]; ok {
			return c
		}
		cp := &Node{
			Op:         m.Op,
			Table:      m.Table,
			Processor:  m.Processor,
			TopN:       m.TopN,
			OutputPath: m.OutputPath,
		}
		cloned[m] = cp
		cp.Children = make([]*Node, len(m.Children))
		for i, ch := range m.Children {
			cp.Children[i] = rec(ch)
		}
		cp.Schema = mapCols(m.Schema)
		cp.Pred = mapExpr(m.Pred)
		if m.Projs != nil {
			cp.Projs = make([]Projection, len(m.Projs))
			for i, p := range m.Projs {
				cp.Projs[i] = Projection{Expr: mapExpr(p.Expr), Out: mapCol(p.Out)}
			}
		}
		cp.GroupKeys = mapCols(m.GroupKeys)
		if m.Aggs != nil {
			cp.Aggs = make([]Agg, len(m.Aggs))
			for i, a := range m.Aggs {
				cp.Aggs[i] = Agg{Fn: a.Fn, Arg: mapExpr(a.Arg), Out: mapCol(a.Out)}
			}
		}
		cp.ReduceKeys = mapCols(m.ReduceKeys)
		if m.SortKeys != nil {
			cp.SortKeys = make([]SortKey, len(m.SortKeys))
			for i, k := range m.SortKeys {
				cp.SortKeys[i] = SortKey{Col: mapCol(k.Col), Desc: k.Desc}
			}
		}
		return cp
	}
	return rec(n)
}
