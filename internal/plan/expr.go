// Package plan defines the logical and physical query plan representation
// shared by the binder (internal/scopeql), the Cascades optimizer
// (internal/cascades), the cost model (internal/cost) and the execution
// simulator (internal/exec).
//
// SCOPE scripts compile to directed acyclic graphs of operators with up to
// hundreds of nodes (§3.1); both logical and physical plans here are DAGs —
// an intermediate result bound to a script variable and consumed twice is
// represented by a shared node.
//
// steerq:hotpath — plans are built and walked inside every compilation; the
// hotalloc analyzer guards this package against allocation regressions.
package plan

import (
	"fmt"
	"strconv"
	"strings"
)

// ColumnID uniquely identifies a column within one job's plan. The binder
// assigns IDs; rewrites preserve them so predicates remain valid as operators
// move.
type ColumnID int

// Column is a resolved output column of an operator.
type Column struct {
	ID ColumnID
	// Name is the user-visible name ("cnt", "a").
	Name string
	// Source is the base stream and column this value descends from
	// ("events.user_id"), or "" for computed columns. The cardinality
	// estimator and the execution oracle use Source to look up catalog
	// statistics.
	Source string
}

func (c Column) String() string {
	if c.Source != "" {
		return fmt.Sprintf("%s#%d(%s)", c.Name, c.ID, c.Source)
	}
	return fmt.Sprintf("%s#%d", c.Name, c.ID)
}

// ExprKind enumerates scalar expression forms.
type ExprKind int

// Scalar expression kinds.
const (
	ExprColumn ExprKind = iota // column reference
	ExprConst                  // literal constant
	ExprCmp                    // comparison: Args[0] op Args[1]
	ExprAnd                    // conjunction of Args
	ExprOr                     // disjunction of Args
	ExprArith                  // arithmetic: Args[0] op Args[1]
	ExprFunc                   // scalar function call
)

// CmpOp enumerates comparison and arithmetic operators.
type CmpOp int

// Comparison and arithmetic operators.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var cmpNames = [...]string{"==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/"}

func (o CmpOp) String() string { return cmpNames[o] }

// Literal is a constant value. Only numeric and string constants appear in
// the SCOPE-like dialect.
type Literal struct {
	IsString bool
	F        float64
	S        string
}

func (l Literal) String() string {
	if l.IsString {
		return strconv.Quote(l.S)
	}
	return strconv.FormatFloat(l.F, 'g', -1, 64)
}

// Expr is a scalar expression tree.
type Expr struct {
	Kind ExprKind
	Col  Column  // ExprColumn
	Lit  Literal // ExprConst
	Op   CmpOp   // ExprCmp, ExprArith
	Fn   string  // ExprFunc
	Args []*Expr
}

// ColExpr returns a column reference expression.
func ColExpr(c Column) *Expr { return &Expr{Kind: ExprColumn, Col: c} }

// NumExpr returns a numeric literal expression.
func NumExpr(v float64) *Expr { return &Expr{Kind: ExprConst, Lit: Literal{F: v}} }

// StrExpr returns a string literal expression.
func StrExpr(s string) *Expr { return &Expr{Kind: ExprConst, Lit: Literal{IsString: true, S: s}} }

// Cmp returns a comparison expression l op r.
func Cmp(op CmpOp, l, r *Expr) *Expr { return &Expr{Kind: ExprCmp, Op: op, Args: []*Expr{l, r}} }

// And returns the conjunction of the given predicates. It flattens nested
// conjunctions and returns nil for no arguments, the sole argument for one.
func And(preds ...*Expr) *Expr {
	var flat []*Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if p.Kind == ExprAnd {
			flat = append(flat, p.Args...)
		} else {
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return &Expr{Kind: ExprAnd, Args: flat}
}

// Or returns the disjunction of the given predicates.
func Or(preds ...*Expr) *Expr {
	var flat []*Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if p.Kind == ExprOr {
			flat = append(flat, p.Args...)
		} else {
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return &Expr{Kind: ExprOr, Args: flat}
}

// Conjuncts splits a predicate into its top-level conjuncts. A nil predicate
// yields nil.
func Conjuncts(e *Expr) []*Expr {
	if e == nil {
		return nil
	}
	if e.Kind == ExprAnd {
		return e.Args
	}
	return []*Expr{e}
}

// Columns appends the IDs of all columns referenced by e to dst and returns
// the result.
func (e *Expr) Columns(dst []ColumnID) []ColumnID {
	if e == nil {
		return dst
	}
	if e.Kind == ExprColumn {
		return append(dst, e.Col.ID)
	}
	for _, a := range e.Args {
		dst = a.Columns(dst)
	}
	return dst
}

// RefersOnly reports whether every column referenced by e is in the given
// set. Rewrite rules use it to decide pushdown legality.
func (e *Expr) RefersOnly(set map[ColumnID]bool) bool {
	if e == nil {
		return true
	}
	if e.Kind == ExprColumn {
		return set[e.Col.ID]
	}
	for _, a := range e.Args {
		if !a.RefersOnly(set) {
			return false
		}
	}
	return true
}

// EquiJoinSides splits an equality comparison into its two column sides if e
// has the form colA == colB; ok is false otherwise.
func (e *Expr) EquiJoinSides() (a, b Column, ok bool) {
	if e == nil || e.Kind != ExprCmp || e.Op != OpEQ || len(e.Args) != 2 {
		return Column{}, Column{}, false
	}
	l, r := e.Args[0], e.Args[1]
	if l.Kind != ExprColumn || r.Kind != ExprColumn {
		return Column{}, Column{}, false
	}
	return l.Col, r.Col, true
}

// String renders the expression in SCOPE-like syntax.
func (e *Expr) String() string {
	if e == nil {
		return "<nil>"
	}
	switch e.Kind {
	case ExprColumn:
		return e.Col.Name
	case ExprConst:
		return e.Lit.String()
	case ExprCmp, ExprArith:
		return fmt.Sprintf("(%s %s %s)", e.Args[0], e.Op, e.Args[1])
	case ExprAnd:
		return joinExprs(e.Args, " AND ")
	case ExprOr:
		return joinExprs(e.Args, " OR ")
	case ExprFunc:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
	}
	return "<expr?>"
}

func joinExprs(args []*Expr, sep string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Clone returns a deep copy of the expression. Rewrite rules clone before
// mutating so memo expressions stay immutable.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	cp := *e
	if len(e.Args) > 0 {
		cp.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			cp.Args[i] = a.Clone()
		}
	}
	return &cp
}
