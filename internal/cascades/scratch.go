package cascades

import (
	"sync"

	"steerq/internal/cost"
	"steerq/internal/plan"
)

// Chunk sizes for the compile-scoped slab allocators. Fixed small chunks
// bound waste to one partial tail per compile and make recycling trivial: a
// chunk is either fully reusable or not yet allocated.
const (
	pexprChunkLen  = 64
	childChunkLen  = 256
	mexprChunkLen  = 64
	groupChunkLen  = 32
	gsliceChunkLen = 128
	exprsChunkLen  = 128
	exprsSeedCap   = 4
	nodeChunkLen   = 64
)

// searchScratch is the recyclable allocation arena of one compile: every
// slab chunk the memo and the physical search carve from, plus the interning
// maps, the candidates map and the property scratch buffers. Compilation
// allocates the same few hundred kilobytes of short-lived memory for every
// candidate configuration; recycling the arena across Optimize calls turns
// that from GC churn into a handful of memclears and map clears.
//
// Safety rests on an ownership argument, not on luck: extract materializes
// the winning plan into fresh plan.PhysNodes whose payload slices belong to
// the plan.Nodes and schema arrays the rules allocated — never to a pexpr,
// an MExpr, a Group struct or any chunk. No pointer into the arena survives
// Optimize (the winners maps and interning indexes die with the memo), so
// once Optimize returns, the arena can be zeroed and handed to the next
// compile. Zeroing also drops the chunk-held references into the dead
// search graph, keeping the pool from pinning retired memos.
type searchScratch struct {
	// owned marks an arena held by a caller's Scratch handle: release still
	// zeroes it for the next compile but must not hand it to the shared
	// pool, or two owners could end up recycling one arena concurrently.
	owned bool

	// Physical-search side.
	pexprChunks [][]pexpr
	childChunks [][]*pexpr
	nextPexpr   int
	nextChild   int
	candidates  map[*Group][]*pexpr
	propsBuf    []cost.Props
	schemaBuf   [][]plan.Column

	// nodeChunks back the compile-scoped plan.Node copies: the memo's
	// shallow payload clones and the search's enforcer placeholders. Plan
	// extraction copies payload slice headers out of these nodes but never
	// retains the structs, so they recycle with the rest of the arena.
	nodeChunks [][]plan.Node
	nextNode   int

	// Memo side.
	mexprChunks  [][]MExpr
	groupChunks  [][]Group
	gsliceChunks [][]*Group
	exprsChunks  [][]*MExpr
	nextMExpr    int
	nextGroup    int
	nextGSlice   int
	nextExprs    int
	exprsTail    []*MExpr
	groups       []*Group
	buckets      map[uint64]*MExpr
	byNode       map[*plan.Node]*Group
	keyScratch   []byte
	memoProps    []cost.Props
	memoSchema   [][]plan.Column
}

// newSearchScratch builds an empty arena; the chunk slabs grow lazily on
// first use.
func newSearchScratch() *searchScratch {
	return &searchScratch{
		candidates: make(map[*Group][]*pexpr),
		buckets:    make(map[uint64]*MExpr, 64),
		byNode:     make(map[*plan.Node]*Group),
	}
}

// scratchPool recycles compile arenas across Optimize calls and goroutines.
// Entries are dropped by the runtime under memory pressure, so a one-off
// giant compile cannot pin its arena forever.
var scratchPool = sync.Pool{
	New: func() any { return newSearchScratch() },
}

// Scratch is a caller-owned compile arena for OptimizeInto and
// OptimizeCostInto. Call sites that compile in a tight loop — the steering
// pipeline's candidate fan-out keys one Scratch per scheduler worker — hold
// on to a Scratch so every compile reuses the same slabs and maps without a
// sync.Pool round trip (and without the pool's cross-goroutine handoffs,
// which under contention hand a cold arena to a hot loop). A Scratch must
// not be used by two compiles at once; the zero of exclusivity is the
// caller's worker identity. A nil *Scratch is valid and falls back to the
// shared pool.
type Scratch struct {
	sc *searchScratch
}

// NewScratch returns an empty caller-owned arena.
func NewScratch() *Scratch {
	sc := newSearchScratch()
	sc.owned = true
	return &Scratch{sc: sc}
}

// arena returns the backing arena, or nil to request the pooled path.
func (s *Scratch) arena() *searchScratch {
	if s == nil {
		return nil
	}
	return s.sc
}

// pexprChunk returns the next zeroed pexpr chunk, reusing a recycled one
// when available.
func (sc *searchScratch) pexprChunk() []pexpr {
	if sc.nextPexpr < len(sc.pexprChunks) {
		c := sc.pexprChunks[sc.nextPexpr]
		sc.nextPexpr++
		return c
	}
	c := make([]pexpr, pexprChunkLen)
	sc.pexprChunks = append(sc.pexprChunks, c)
	sc.nextPexpr = len(sc.pexprChunks)
	return c
}

// childChunk returns the next zeroed child-pointer chunk.
func (sc *searchScratch) childChunk() []*pexpr {
	if sc.nextChild < len(sc.childChunks) {
		c := sc.childChunks[sc.nextChild]
		sc.nextChild++
		return c
	}
	c := make([]*pexpr, childChunkLen)
	sc.childChunks = append(sc.childChunks, c)
	sc.nextChild = len(sc.childChunks)
	return c
}

// nodeChunk returns the next zeroed plan.Node chunk.
func (sc *searchScratch) nodeChunk() []plan.Node {
	if sc.nextNode < len(sc.nodeChunks) {
		c := sc.nodeChunks[sc.nextNode]
		sc.nextNode++
		return c
	}
	c := make([]plan.Node, nodeChunkLen)
	sc.nodeChunks = append(sc.nodeChunks, c)
	sc.nextNode = len(sc.nodeChunks)
	return c
}

// mexprChunk returns the next zeroed MExpr chunk.
func (sc *searchScratch) mexprChunk() []MExpr {
	if sc.nextMExpr < len(sc.mexprChunks) {
		c := sc.mexprChunks[sc.nextMExpr]
		sc.nextMExpr++
		return c
	}
	c := make([]MExpr, mexprChunkLen)
	sc.mexprChunks = append(sc.mexprChunks, c)
	sc.nextMExpr = len(sc.mexprChunks)
	return c
}

// groupChunk returns the next Group chunk. Recycled chunks keep each slot's
// (cleared) winners map so steady-state compiles reuse the map storage too.
func (sc *searchScratch) groupChunk() []Group {
	if sc.nextGroup < len(sc.groupChunks) {
		c := sc.groupChunks[sc.nextGroup]
		sc.nextGroup++
		return c
	}
	c := make([]Group, groupChunkLen)
	sc.groupChunks = append(sc.groupChunks, c)
	sc.nextGroup = len(sc.groupChunks)
	return c
}

// gsliceChunk returns the next zeroed child-group chunk.
func (sc *searchScratch) gsliceChunk() []*Group {
	if sc.nextGSlice < len(sc.gsliceChunks) {
		c := sc.gsliceChunks[sc.nextGSlice]
		sc.nextGSlice++
		return c
	}
	c := make([]*Group, gsliceChunkLen)
	sc.gsliceChunks = append(sc.gsliceChunks, c)
	sc.nextGSlice = len(sc.gsliceChunks)
	return c
}

// exprsSeed carves a len-0, cap-exprsSeedCap expression slice for a new
// group's Exprs. Groups outgrowing the seed spill to a regular append
// reallocation, which dies with the memo.
func (sc *searchScratch) exprsSeed() []*MExpr {
	if len(sc.exprsTail) < exprsSeedCap {
		if sc.nextExprs < len(sc.exprsChunks) {
			sc.exprsTail = sc.exprsChunks[sc.nextExprs]
		} else {
			c := make([]*MExpr, exprsChunkLen)
			sc.exprsChunks = append(sc.exprsChunks, c)
			sc.exprsTail = c
		}
		sc.nextExprs++
	}
	s := sc.exprsTail[:0:exprsSeedCap]
	sc.exprsTail = sc.exprsTail[exprsSeedCap:]
	return s
}

// release zeroes every chunk handed out this compile, clears the maps and
// buffers, and returns the arena to the pool. Must run only after the
// winning plan has been extracted.
func (s *search) release() {
	sc := s.scratch
	if sc == nil {
		return
	}
	for _, c := range sc.pexprChunks[:sc.nextPexpr] {
		clear(c)
	}
	for _, c := range sc.childChunks[:sc.nextChild] {
		clear(c)
	}
	for _, c := range sc.nodeChunks[:sc.nextNode] {
		clear(c)
	}
	sc.nextPexpr, sc.nextChild, sc.nextNode = 0, 0, 0
	clear(sc.candidates)
	// The buffers may have grown (or been reallocated) during the search;
	// take them back and drop any references parked beyond the live length.
	pb := s.propsBuf[:cap(s.propsBuf)]
	clear(pb)
	sc.propsBuf = pb[:0]
	sb := s.schemaBuf[:cap(s.schemaBuf)]
	clear(sb)
	sc.schemaBuf = sb[:0]

	if m := s.m; m != nil && m.arena == sc {
		for _, c := range sc.mexprChunks[:sc.nextMExpr] {
			clear(c)
		}
		for _, c := range sc.gsliceChunks[:sc.nextGSlice] {
			clear(c)
		}
		for _, c := range sc.exprsChunks[:sc.nextExprs] {
			clear(c)
		}
		for _, c := range sc.groupChunks[:sc.nextGroup] {
			for i := range c {
				w := c[i].winners
				clear(w)
				c[i] = Group{winners: w}
			}
		}
		sc.nextMExpr, sc.nextGroup, sc.nextGSlice, sc.nextExprs = 0, 0, 0, 0
		sc.exprsTail = nil
		clear(sc.byNode)
		clear(sc.buckets)
		gs := m.Groups[:cap(m.Groups)]
		clear(gs)
		sc.groups = gs[:0]
		sc.keyScratch = m.scratch[:0]
		mp := m.propsBuf[:cap(m.propsBuf)]
		clear(mp)
		sc.memoProps = mp[:0]
		ms := m.schemaBuf[:cap(m.schemaBuf)]
		clear(ms)
		sc.memoSchema = ms[:0]
		m.arena = nil
	}

	s.scratch = nil
	if !sc.owned {
		scratchPool.Put(sc)
	}
}
