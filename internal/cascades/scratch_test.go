package cascades_test

import (
	"errors"
	"testing"

	"steerq/internal/cascades"
	"steerq/internal/rules"
)

// TestOptimizeIntoMatchesOptimize: compiles through one caller-owned arena —
// reused back to back, including across a no-plan failure — are
// byte-identical to pooled compiles of the same inputs. This is the contract
// the pipeline's per-worker arenas rest on.
func TestOptimizeIntoMatchesOptimize(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	base := opt.Rules.DefaultConfig()

	broken := base
	for _, id := range []int{rules.IDHashJoinImpl1, rules.IDJoinImpl2, rules.IDMergeJoinImpl, rules.IDJoinToApplyIndex1} {
		broken.Clear(id)
	}

	sc := cascades.NewScratch()
	for pass := 0; pass < 3; pass++ {
		// Success case, plan materialized.
		want, err := opt.Optimize(root, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := opt.OptimizeInto(sc, root, base)
		if err != nil {
			t.Fatal(err)
		}
		if want.Cost != got.Cost || !want.Signature.Equal(got.Signature) ||
			!want.Footprint.Equal(got.Footprint) || want.Plan.String() != got.Plan.String() {
			t.Fatalf("pass %d: arena compile diverged from pooled compile", pass)
		}
		// Cost-only through the same arena.
		costed, err := opt.OptimizeCostInto(sc, root, base)
		if err != nil {
			t.Fatal(err)
		}
		if costed.Plan != nil || costed.Cost != want.Cost || !costed.Signature.Equal(want.Signature) {
			t.Fatalf("pass %d: OptimizeCostInto diverged", pass)
		}
		// No-plan failure must leave the arena reusable and carry the footprint.
		wantFail, werr := opt.Optimize(root, broken)
		gotFail, gerr := opt.OptimizeInto(sc, root, broken)
		if !errors.Is(werr, cascades.ErrNoPlan) || !errors.Is(gerr, cascades.ErrNoPlan) {
			t.Fatalf("pass %d: broken config compiled: %v / %v", pass, werr, gerr)
		}
		if !wantFail.Footprint.Equal(gotFail.Footprint) {
			t.Fatalf("pass %d: no-plan footprints diverged", pass)
		}
	}
}

// TestOptimizeIntoNilScratch: a nil *Scratch falls back to the shared pool,
// so call sites can thread an optional arena without branching.
func TestOptimizeIntoNilScratch(t *testing.T) {
	cat := testCatalog()
	opt := newOpt(cat)
	root := compile(t, cat, joinAggScript)
	want, err := opt.Optimize(root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.OptimizeInto(nil, root, opt.Rules.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want.Cost != got.Cost || !want.Signature.Equal(got.Signature) {
		t.Fatal("nil-scratch compile diverged")
	}
}
