package cascades

import (
	"fmt"
	"strings"

	"steerq/internal/cost"
	"steerq/internal/plan"
)

// pexpr is a costed physical sub-plan candidate. Children are fully resolved
// pexprs (the winners chosen for the child groups under this candidate's
// requirements), so extraction is a simple walk.
type pexpr struct {
	op       plan.PhysOp
	node     *plan.Node // payload
	children []*pexpr
	lexpr    *MExpr // implemented logical expression (nil for enforcers)
	ruleID   int
	outDist  plan.Distribution
	dop      int
	// props are the candidate's own estimated statistics, derived from its
	// expression tree (not the group's canonical statistics) — see
	// Memo.DerivePropsFrom.
	props    cost.Props
	rows     float64
	rowBytes float64
	usage    cost.OpUsage // local usage
	total    float64      // cumulative estimated latency cost
	exchange plan.ExchangeKind
	buildIdx int
}

// winner is the cached best plan of a group for one requirement.
type winner = pexpr

// distKey is a small comparable form of a distribution requirement, used as
// the winner-cache key so probing the cache never builds a string. The common
// case (at most four hash keys, everything int32-sized) packs into 40 bytes;
// anything wider (absent from the workloads, but kept exact for safety)
// spills the whole requirement into an injectively encoded string, and the
// two shapes can never collide because extra is non-empty exactly on the
// spill path.
type distKey struct {
	kind  uint8
	nkeys uint8
	dop   int32
	keys  [4]int32
	extra string
}

func makeDistKey(d plan.Distribution) distKey {
	fits := int(d.Kind) >= 0 && int(d.Kind) <= 255 &&
		len(d.Keys) <= 4 &&
		int64(d.DOP) == int64(int32(d.DOP))
	if fits {
		for _, id := range d.Keys {
			if int64(id) != int64(int32(id)) {
				fits = false
				break
			}
		}
	}
	if fits {
		k := distKey{kind: uint8(d.Kind), nkeys: uint8(len(d.Keys)), dop: int32(d.DOP)}
		for i, id := range d.Keys {
			k.keys[i] = int32(id)
		}
		return k
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|", d.Kind, d.DOP)
	for _, id := range d.Keys {
		fmt.Fprintf(&b, "%d,", id)
	}
	return distKey{extra: b.String()}
}

// newPexpr returns a zeroed candidate carved from the search's slab, so
// candidate construction costs at most one heap allocation per chunk —
// usually zero, since chunks are recycled across compiles through the
// searchScratch arena. Slab entries live as long as the search, which
// outlives every pexpr pointer handed out.
func (s *search) newPexpr() *pexpr {
	// Fixed small chunks: waste is bounded by one partial tail per search,
	// which measured strictly better on total bytes than geometric growth
	// (doubling over-reserves roughly 2x the live size on average).
	if len(s.pexprSlab) == 0 {
		s.pexprSlab = s.scratch.pexprChunk()
	}
	p := &s.pexprSlab[0]
	s.pexprSlab = s.pexprSlab[1:]
	return p
}

// childSlice carves an n-element child slice from a pooled backing array.
// Capacity is clipped to n so no holder can append into a neighbour's
// children. Carve before any recursive optimizeGroup call; the pool cursor
// only ever advances, so carved slices are never handed out twice.
func (s *search) childSlice(n int) []*pexpr {
	if n == 0 {
		return nil
	}
	if len(s.childPool) < n {
		if n > childChunkLen {
			// Oversize request: one-off allocation outside the recycled
			// arena (operator fan-ins this wide do not occur in practice).
			s.childPool = make([]*pexpr, n)
		} else {
			s.childPool = s.scratch.childChunk()
		}
	}
	c := s.childPool[:n:n]
	s.childPool = s.childPool[n:]
	return c
}

func (s *search) oneChild(p *pexpr) []*pexpr {
	c := s.childSlice(1)
	c[0] = p
	return c
}

// placeholderNode carves an enforcer payload placeholder (an OpSelect node
// carrying only a schema) from the arena's node slab. Like every arena node
// it never escapes the compile: extraction copies its (empty) payload slice
// headers, never the struct.
func (s *search) placeholderNode(schema []plan.Column) *plan.Node {
	if len(s.nodeSlab) == 0 {
		s.nodeSlab = s.scratch.nodeChunk()
	}
	n := &s.nodeSlab[0]
	s.nodeSlab = s.nodeSlab[1:]
	n.Op = plan.OpSelect
	n.Schema = schema
	return n
}

// optimizeGroup returns the cheapest physical plan for g delivering a
// distribution satisfying req, or nil when none exists.
func (s *search) optimizeGroup(g *Group, req plan.Distribution) *winner {
	key := makeDistKey(req)
	if w, ok := g.winners[key]; ok {
		return w
	}
	// Mark in-progress to make accidental cycles fail loudly rather than
	// recurse forever (logical DAGs are acyclic, so this never triggers on
	// well-formed input).
	g.winners[key] = nil

	var best *pexpr
	consider := func(p *pexpr) {
		if p == nil {
			return
		}
		if best == nil || p.total < best.total {
			best = p
		}
	}
	for _, cand := range s.groupCandidates(g) {
		if cand.outDist.Satisfies(req) {
			consider(cand)
		} else {
			consider(s.enforce(cand, req))
		}
	}
	g.winners[key] = best
	return best
}

// groupCandidates enumerates (and caches) all physical implementation
// candidates of a group, each fully costed with child winners resolved.
func (s *search) groupCandidates(g *Group) []*pexpr {
	if c, ok := s.candidates[g]; ok {
		return c
	}
	s.candidates[g] = nil // cycle guard
	// Most expressions yield one or two implementations; sizing for the
	// expression count keeps the common case to a single allocation.
	out := make([]*pexpr, 0, len(g.Exprs)*2)
	for _, e := range g.Exprs {
		for _, r := range s.o.Rules.implementsFor(e.Node.Op) {
			ri := r.Info()
			if !s.ruleEnabled(ri) {
				continue
			}
			protos := r.Implement(e, s.m)
			if len(protos) > 0 {
				s.o.om.firings[ri.Category].Inc()
			}
			for _, proto := range protos {
				if p := s.buildCandidate(e, proto, ri.ID); p != nil {
					out = append(out, p)
				}
			}
		}
	}
	s.candidates[g] = out
	return out
}

// buildCandidate resolves child requirements and costs one implementation
// candidate. Returns nil when a child has no feasible plan.
func (s *search) buildCandidate(e *MExpr, proto *PhysProto, ruleID int) *pexpr {
	g := e.Group
	children := s.childSlice(len(e.Children))
	var childTotal float64
	for i, cg := range e.Children {
		req := plan.Distribution{Kind: plan.DistAny}
		if i < len(proto.ChildReq) {
			req = proto.ChildReq[i]
		}
		if req.Kind == plan.DistBroadcast && i > 0 && children[0] != nil {
			// Broadcast replicates to every consumer partition: the
			// replication factor is the probe side's parallelism.
			req.DOP = children[0].dop
		}
		var w *pexpr
		if i == 0 && proto.LocalPre != 0 {
			// Two-phase implementation: run a local pre-operator on the
			// child's unconstrained plan, then enforce the requirement on
			// the (much smaller) pre-aggregated stream.
			base := s.optimizeGroup(cg, plan.Distribution{Kind: plan.DistAny})
			if base == nil {
				return nil
			}
			w = s.wrapLocalPre(base, proto, e, ruleID)
			if !w.outDist.Satisfies(req) {
				w = s.enforce(w, req)
			}
		} else {
			w = s.optimizeGroup(cg, req)
		}
		if w == nil {
			return nil
		}
		if proto.NeedsSort {
			w = s.wrapSort(w, cg)
		}
		children[i] = w
		childTotal += w.total
	}

	// Scratch slices: DerivePropsFrom and the estimator only read them, so
	// the backing arrays are reused across every candidate of the search.
	// All child recursion is complete by this point, so no nested
	// buildCandidate can clobber them before DerivePropsFrom returns.
	childProps := s.propsBuf[:0]
	childSchemas := s.schemaBuf[:0]
	for i := range children {
		childProps = append(childProps, children[i].props)
		childSchemas = append(childSchemas, e.Children[i].Schema)
	}
	s.propsBuf, s.schemaBuf = childProps, childSchemas
	props := s.m.DerivePropsFrom(proto.Node, childProps, childSchemas, g.Schema)
	p := s.newPexpr()
	*p = pexpr{
		op:       proto.Op,
		node:     proto.Node,
		children: children,
		lexpr:    e,
		ruleID:   ruleID,
		props:    props,
		rows:     props.Rows,
		rowBytes: props.RowBytes,
		buildIdx: proto.BuildIdx,
	}
	p.dop = s.chooseOpDOP(p)
	p.outDist = s.deliveredDist(proto, p)
	p.usage = s.localUsage(p)
	p.total = childTotal + p.usage.LatencySeconds
	return p
}

// chooseOpDOP derives the operator's degree of parallelism. Parallelism is
// decided where data lands — scans and exchanges — and *inherited* everywhere
// else: an operator consuming partitions in place cannot change their count
// without an exchange. Since scans and exchanges size their partitions from
// estimated bytes (cost.ChooseDOP), every estimation error propagates into a
// mis-fit degree of parallelism exactly as §5.3 describes.
func (s *search) chooseOpDOP(p *pexpr) int {
	switch p.op {
	case plan.PhysExtract, plan.PhysRangeScan:
		// Scan parallelism follows the stored stream's partitioning, not
		// the (possibly tiny) filtered output.
		rows, bytes := s.scanInput(p)
		return cost.ChooseDOP(rows, bytes, s.maxDOP())
	case plan.PhysGlobalTop, plan.PhysMultiImpl:
		return 1
	case plan.PhysVirtualDataset:
		// Virtual union keeps every branch's partitions in place.
		d := 0
		for _, c := range p.children {
			d += c.dop
		}
		if d < 1 {
			d = 1
		}
		return d
	case plan.PhysUnionMerge:
		return cost.ChooseDOP(p.rows, p.rowBytes, s.maxDOP())
	case plan.PhysHashJoin, plan.PhysMergeJoin:
		// Both sides were re-partitioned to matching hash layouts.
		d := 1
		for _, c := range p.children {
			if c.dop > d {
				d = c.dop
			}
		}
		return d
	case plan.PhysHashJoinAlt, plan.PhysLoopJoin:
		// Probe side layout preserved; build side broadcast.
		if len(p.children) > 0 {
			return maxInt(p.children[0].dop, 1)
		}
		return 1
	default:
		// Everything else consumes its (first) child's partitions in place.
		if len(p.children) > 0 {
			return maxInt(p.children[0].dop, 1)
		}
		return 1
	}
}

func (s *search) maxDOP() int {
	if s.o.MaxDOP > 0 {
		return s.o.MaxDOP
	}
	return 50
}

// deliveredDist resolves the candidate's output distribution; a proto OutDist
// of DistAny means "inherit from the first child".
func (s *search) deliveredDist(proto *PhysProto, p *pexpr) plan.Distribution {
	d := proto.OutDist
	if d.Kind == plan.DistAny {
		if len(p.children) > 0 {
			d = p.children[0].outDist
		} else {
			d = plan.Distribution{Kind: plan.DistRandom}
		}
	}
	d.DOP = p.dop
	return d
}

// scanInput returns the estimated size of the stream a scan reads.
func (s *search) scanInput(p *pexpr) (rows, bytes float64) {
	if st := s.o.Est.Cat.Stream(p.node.Table); st != nil {
		return st.BaseRows, st.BaseRows * st.BytesPerRow
	}
	return p.rows, p.rows * p.rowBytes
}

// localUsage costs the candidate's own operator.
func (s *search) localUsage(p *pexpr) cost.OpUsage {
	var inRows, inBytes float64
	for _, c := range p.children {
		inRows += c.rows
		inBytes += c.rows * c.rowBytes
	}
	if p.op == plan.PhysExtract || p.op == plan.PhysRangeScan {
		inRows, inBytes = s.scanInput(p)
	}
	params := cost.OpCostParams{
		Op:       p.op,
		Exchange: p.exchange,
		InRows:   inRows,
		InBytes:  inBytes,
		OutRows:  p.rows,
		OutBytes: p.rows * p.rowBytes,
		DOP:      p.dop,
		Branches: len(p.children),
	}
	if p.node != nil {
		params.TopN = p.node.TopN
		if p.node.Processor != "" {
			params.UDO = s.o.Est.Cat.UDO(p.node.Processor)
		}
	}
	if len(p.children) == 2 && (p.op == plan.PhysHashJoin || p.op == plan.PhysHashJoinAlt || p.op == plan.PhysMergeJoin || p.op == plan.PhysLoopJoin) {
		b := p.buildIdx
		if b < 0 || b > 1 {
			b = 1
		}
		params.BuildRows = p.children[b].rows
		params.ProbeRows = p.children[1-b].rows
	}
	return s.o.Coster.Cost(params)
}

// enforce wraps a candidate with an Exchange enforcer so it satisfies req.
func (s *search) enforce(inner *pexpr, req plan.Distribution) *pexpr {
	var kind plan.ExchangeKind
	dop := 0
	switch req.Kind {
	case plan.DistHash, plan.DistRandom:
		kind = plan.ExchangeShuffle
		dop = cost.ChooseDOP(inner.rows, inner.rowBytes, s.maxDOP())
	case plan.DistSingleton:
		kind = plan.ExchangeGather
		dop = 1
	case plan.DistBroadcast:
		kind = plan.ExchangeBroadcast
		if req.DOP > 0 {
			dop = req.DOP
		} else {
			dop = cost.ChooseDOP(inner.rows, inner.rowBytes, s.maxDOP())
		}
	default:
		return inner
	}
	ex := s.newPexpr()
	*ex = pexpr{
		op:       plan.PhysExchange,
		node:     s.placeholderNode(inner.node.Schema),
		children: s.oneChild(inner),
		ruleID:   s.o.EnforceExchangeID,
		props:    inner.props,
		rows:     inner.rows,
		rowBytes: inner.rowBytes,
		exchange: kind,
		dop:      dop,
		buildIdx: -1,
	}
	ex.outDist = plan.Distribution{Kind: req.Kind, Keys: req.Keys, DOP: dop}
	ex.usage = s.localUsage(ex)
	ex.total = inner.total + ex.usage.LatencySeconds
	return ex
}

// wrapLocalPre inserts the local phase of a two-phase operator above a child
// plan: per-partition pre-aggregation or per-partition top-N.
func (s *search) wrapLocalPre(inner *pexpr, proto *PhysProto, e *MExpr, ruleID int) *pexpr {
	outRows := inner.rows
	switch proto.LocalPre {
	case plan.PhysPartialHashAgg:
		// Each partition holds at most one row per output group, estimated
		// from this candidate's own child statistics. Uses the same
		// read-only scratch slices as buildCandidate: this call completes
		// before the caller fills them for its own DerivePropsFrom.
		cp := append(s.propsBuf[:0], inner.props)
		cs := append(s.schemaBuf[:0], e.Children[0].Schema)
		s.propsBuf, s.schemaBuf = cp, cs
		final := s.m.DerivePropsFrom(proto.Node, cp, cs, e.Group.Schema)
		outRows = minFloat(inner.rows, final.Rows*float64(maxInt(inner.dop, 1)))
	case plan.PhysLocalTop:
		outRows = minFloat(inner.rows, float64(proto.Node.TopN*maxInt(inner.dop, 1)))
	default:
		// No other operator is used as a local pre-phase.
	}
	// Props value copy shares the NDV map copy-on-write; only Rows differs
	// and nothing downstream mutates NDV maps in place (see cost.Props).
	preProps := inner.props
	preProps.Rows = maxFloat(1, outRows)
	pre := s.newPexpr()
	*pre = pexpr{
		op:       proto.LocalPre,
		node:     proto.Node,
		children: s.oneChild(inner),
		lexpr:    e,
		ruleID:   ruleID,
		props:    preProps,
		rows:     preProps.Rows,
		rowBytes: inner.rowBytes,
		outDist:  inner.outDist,
		dop:      inner.dop,
		buildIdx: -1,
	}
	pre.usage = s.localUsage(pre)
	pre.total = inner.total + pre.usage.LatencySeconds
	return pre
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// wrapSort inserts a Sort enforcer above a child winner (merge join, stream
// aggregation).
func (s *search) wrapSort(inner *pexpr, g *Group) *pexpr {
	srt := s.newPexpr()
	*srt = pexpr{
		op:       plan.PhysSort,
		node:     s.placeholderNode(g.Schema),
		children: s.oneChild(inner),
		ruleID:   s.o.EnforceSortID,
		props:    inner.props,
		rows:     inner.rows,
		rowBytes: inner.rowBytes,
		outDist:  inner.outDist,
		dop:      inner.dop,
		buildIdx: -1,
	}
	srt.usage = s.localUsage(srt)
	srt.total = inner.total + srt.usage.LatencySeconds
	return srt
}

// SortedKeys returns column IDs sorted ascending (canonical form for hash
// distribution requirements). Key lists are tiny, so insertion sort beats
// sort.Slice and avoids its closure allocation on a per-candidate path.
func SortedKeys(cols []plan.Column) []plan.ColumnID {
	ids := make([]plan.ColumnID, len(cols))
	for i, c := range cols {
		ids[i] = c.ID
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
