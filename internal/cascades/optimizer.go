package cascades

import (
	"errors"
	"fmt"

	"steerq/internal/bitvec"
	"steerq/internal/cost"
	"steerq/internal/obs"
	"steerq/internal/plan"
)

// Optimizer compiles logical plans into physical plans under a rule
// configuration.
type Optimizer struct {
	Rules  *RuleSet
	Est    *cost.Estimator
	Coster *cost.Coster

	// MaxDOP caps the degree of parallelism per operator.
	MaxDOP int
	// MaxPasses bounds exploration rounds.
	MaxPasses int
	// ExprLimit / TotalLimit bound the memo (see Memo).
	ExprLimit  int
	TotalLimit int

	// EnforceExchangeID and EnforceSortID are the rule IDs attributed to
	// enforcer-inserted Exchange and Sort operators. Both must name
	// Required rules in the rule set.
	EnforceExchangeID int
	EnforceSortID     int

	// LegacyIntern reroutes memo interning through the pre-hash
	// string-keyed path. Test-only: the memo-equivalence golden test
	// compiles both paths and asserts identical results. Remove together
	// with legacykey.go once the hashed path has baked.
	LegacyIntern bool

	// om holds the pre-resolved observability instruments (see SetObs).
	// All fields are nil-safe no-ops until SetObs is called.
	om optObs
}

// optObs are the optimizer's pre-resolved metrics: resolved once in SetObs
// so the per-compilation hot paths pay one atomic add, not a registry
// lookup. Counters are atomic and histograms hold commutative integer
// state, so concurrent Optimize calls stay deterministic at snapshot time.
type optObs struct {
	// firings counts rule applications per rule category.
	firings [len(categoryNames)]*obs.Counter
	// compiles counts outcomes: ok and noplan.
	ok, noPlan *obs.Counter
	// collisions accumulates memo interning hash collisions.
	collisions *obs.Counter
	// groups and exprs record final memo sizes per compilation.
	groups, exprs *obs.Histogram
}

// memoSizeBounds bucket final memo sizes; TotalLimit defaults to 2048, so
// the finite bounds cover the whole default range.
var memoSizeBounds = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// SetObs wires the optimizer's compile-time metrics into reg: rule firings
// per category, compile outcomes, memo sizes and interning collisions. Call
// it before the first Optimize; a nil registry leaves the optimizer
// uninstrumented (every instrument no-ops).
func (o *Optimizer) SetObs(reg *obs.Registry) {
	for c := range o.om.firings {
		o.om.firings[c] = reg.Counter("steerq_cascades_rule_firings_total", "category", Category(c).String())
	}
	o.om.ok = reg.Counter("steerq_cascades_compiles_total", "outcome", "ok")
	o.om.noPlan = reg.Counter("steerq_cascades_compiles_total", "outcome", "noplan")
	o.om.collisions = reg.Counter("steerq_cascades_intern_collisions_total")
	o.om.groups = reg.Histogram("steerq_cascades_memo_groups", memoSizeBounds)
	o.om.exprs = reg.Histogram("steerq_cascades_memo_exprs", memoSizeBounds)
}

// Result is the outcome of one compilation.
type Result struct {
	// Plan is the winning physical plan.
	Plan *plan.PhysNode
	// Cost is the estimated total plan cost (seconds of modeled latency).
	Cost float64
	// Signature is the rule signature: the set of rules that directly
	// contributed to Plan (Definition 3.2).
	Signature bitvec.Vector
	// Footprint is the decision footprint: the set of rule IDs whose
	// enabled-bit was read during this compilation (a superset of
	// Signature minus required rules). The search tree only ever branches
	// on these reads, so two configurations agreeing on every footprint
	// bit provably produce byte-identical results — the foundation of the
	// steering layer's equivalence-class memoization.
	Footprint bitvec.Vector
	// Config echoes the configuration used.
	Config bitvec.Vector
	// Groups and Exprs report memo size for diagnostics.
	Groups, Exprs int
}

// ErrNoPlan is returned when no physical plan exists under the given
// configuration — e.g. every implementation rule for some operator was
// disabled. The paper notes many configurations "may not compile successfully
// due to implicit dependencies" (§4); the discovery pipeline treats this
// error as a skipped candidate.
var ErrNoPlan = errors.New("cascades: no physical plan under this rule configuration")

// Optimize compiles the logical plan under cfg and returns the cheapest
// physical plan found, its estimated cost, and its rule signature.
//
// Optimize is safe for concurrent use: every call builds a fresh Memo and
// search, and the Optimizer's own fields (Rules, Est, Coster, limits) are
// read-only after construction. The discovery pipeline relies on this to fan
// candidate recompilations out across workers.
func (o *Optimizer) Optimize(root *plan.Node, cfg bitvec.Vector) (*Result, error) {
	return o.optimize(root, cfg, true, nil)
}

// OptimizeInto is Optimize compiling through the caller-owned arena instead
// of the shared scratch pool. Hot loops that compile many configurations on
// one goroutine — or one scheduler worker — hold a cascades.Scratch per
// worker so steady-state compiles never touch the pool. A nil Scratch
// behaves exactly like Optimize.
func (o *Optimizer) OptimizeInto(sc *Scratch, root *plan.Node, cfg bitvec.Vector) (*Result, error) {
	return o.optimize(root, cfg, true, sc.arena())
}

// OptimizeCostInto is OptimizeCost through a caller-owned arena; see
// OptimizeInto.
func (o *Optimizer) OptimizeCostInto(sc *Scratch, root *plan.Node, cfg bitvec.Vector) (*Result, error) {
	return o.optimize(root, cfg, false, sc.arena())
}

// OptimizeCost is Optimize without plan materialization: the returned Result
// carries the same Cost, Signature, Footprint and memo statistics as an
// Optimize of the same inputs, but Plan is nil. Candidate sweeps that keep
// only the costed verdict (the steering pipeline resolves hundreds of
// configurations per job and discards every plan but the chosen one) use it
// to skip building a physical node DAG nobody reads — per-candidate, that is
// the single largest allocation of a compile. The search itself is
// byte-identical to Optimize's; only the final extraction differs.
func (o *Optimizer) OptimizeCost(root *plan.Node, cfg bitvec.Vector) (*Result, error) {
	return o.optimize(root, cfg, false, nil)
}

func (o *Optimizer) optimize(root *plan.Node, cfg bitvec.Vector, buildPlan bool, sc *searchScratch) (*Result, error) {
	if root == nil {
		return nil, errors.New("cascades: nil plan")
	}
	if sc == nil {
		sc = scratchPool.Get().(*searchScratch)
	}
	m := newMemoArena(root, o.Est, o.LegacyIntern, sc)
	if o.ExprLimit > 0 {
		m.ExprLimit = o.ExprLimit
	}
	if o.TotalLimit > 0 {
		m.TotalLimit = o.TotalLimit
	}
	s := &search{
		o:          o,
		m:          m,
		cfg:        cfg,
		scratch:    sc,
		candidates: sc.candidates,
		propsBuf:   sc.propsBuf,
		schemaBuf:  sc.schemaBuf,
	}
	// Recycle the arena once the winner (if any) has been extracted; the
	// Result only references memo-owned payloads, never slab memory.
	defer s.release()
	s.explore()
	w := s.optimizeGroup(m.Root, plan.Distribution{Kind: plan.DistAny})
	o.om.collisions.Add(m.Collisions())
	o.om.groups.Observe(float64(len(m.Groups)))
	o.om.exprs.Observe(float64(m.TotalExprs()))
	if w == nil {
		o.om.noPlan.Inc()
		// The no-plan verdict still carries the footprint: any other
		// configuration agreeing on those bits fails identically, so
		// callers can share the negative outcome across the class.
		return &Result{
			Footprint: s.footprint,
			Config:    cfg,
			Groups:    len(m.Groups),
			Exprs:     m.TotalExprs(),
		}, fmt.Errorf("%w (root group %d)", ErrNoPlan, m.Root.ID)
	}
	o.om.ok.Inc()
	var p *plan.PhysNode
	var sig bitvec.Vector
	if buildPlan {
		p, sig = s.extract(w)
	} else {
		sig = s.signature(w)
	}
	return &Result{
		Plan:      p,
		Cost:      w.total,
		Signature: sig,
		Footprint: s.footprint,
		Config:    cfg,
		Groups:    len(m.Groups),
		Exprs:     m.TotalExprs(),
	}, nil
}

// search carries per-compilation state.
type search struct {
	o          *Optimizer
	m          *Memo
	cfg        bitvec.Vector
	scratch    *searchScratch
	candidates map[*Group][]*pexpr

	// footprint accumulates the ID of every non-required rule whose
	// enabled-bit the search read (see ruleEnabled). Configurations that
	// agree on all footprint bits take the exact same path through
	// explore/optimizeGroup and so produce identical plans.
	footprint bitvec.Vector

	// pexprSlab and childPool are the active tails of the scratch arena's
	// chunked allocators for candidates and their child slices; propsBuf
	// and schemaBuf are reusable scratch for DerivePropsFrom inputs (never
	// retained by the estimator). Chunks come from — and return to — the
	// recycled searchScratch, so steady-state compilation allocates near
	// zero slab memory (see scratch.go for the ownership argument).
	pexprSlab []pexpr
	childPool []*pexpr
	nodeSlab  []plan.Node
	propsBuf  []cost.Props
	schemaBuf [][]plan.Column
}

// explore runs transformation rules to a bounded fixpoint. Each
// (expression, rule) pair fires at most once; passes repeat so expressions
// created late still receive every rule.
func (s *search) explore() {
	passes := s.o.MaxPasses
	if passes <= 0 {
		passes = 4
	}
	for pass := 0; pass < passes; pass++ {
		changed := false
		for gi := 0; gi < len(s.m.Groups); gi++ {
			g := s.m.Groups[gi]
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				for _, r := range s.o.Rules.transformsFor(e.Node.Op) {
					ri := r.Info()
					if !s.ruleEnabled(ri) {
						continue
					}
					if e.firedRule(ri.ID) {
						continue
					}
					results := r.Apply(e, s.m)
					if results == nil {
						continue // did not match; may match later passes
					}
					s.o.om.firings[ri.Category].Inc()
					e.markFired(ri.ID)
					for _, rn := range results {
						if s.m.Intern(rn, g, e, ri.ID) {
							changed = true
						}
					}
					if s.m.Full() {
						return
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// ruleEnabled reports whether a rule may fire under the search's
// configuration, recording every configuration-bit read in the decision
// footprint. Required rules ignore the configuration and leave no
// footprint: they behave identically under every configuration, so they
// cannot distinguish equivalence classes.
func (s *search) ruleEnabled(ri RuleInfo) bool {
	if ri.Category == Required {
		return true
	}
	s.footprint.Set(ri.ID)
	return s.cfg.Get(ri.ID)
}
