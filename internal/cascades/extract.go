package cascades

import (
	"steerq/internal/bitvec"
	"steerq/internal/plan"
)

// extract materializes the winning pexpr tree into a plan.PhysNode DAG and
// collects the rule signature: every implementation and enforcer rule that
// produced an operator in the plan plus every transformation rule on the
// derivation chain of the logical expressions those operators implement.
func (s *search) extract(w *winner) (*plan.PhysNode, bitvec.Vector) {
	var sig bitvec.Vector
	built := make(map[*pexpr]*plan.PhysNode)
	var rec func(p *pexpr) *plan.PhysNode
	rec = func(p *pexpr) *plan.PhysNode {
		if n, ok := built[p]; ok {
			return n
		}
		if p.ruleID >= 0 {
			sig.Set(p.ruleID)
		}
		if p.lexpr != nil {
			sig = sig.Or(p.lexpr.Provenance)
		}
		n := &plan.PhysNode{
			Op:       p.op,
			Schema:   p.node.Schema,
			Dist:     p.outDist,
			EstRows:  p.rows,
			EstCost:  p.usage.LatencySeconds,
			RuleID:   p.ruleID,
			Exchange: p.exchange,
		}
		if p.lexpr != nil {
			// The canonical schema of the implemented group, not the
			// payload's (join commutes may reorder payload columns).
			n.Schema = p.lexpr.Group.Schema
		}
		copyPayload(n, p.node)
		built[p] = n
		n.Children = make([]*plan.PhysNode, len(p.children))
		for i, c := range p.children {
			n.Children[i] = rec(c)
		}
		n.TotalCost = n.EstCost
		// Count each distinct child subtree once; operators have few
		// children, so a linear dup scan beats a per-node map.
		for i, c := range n.Children {
			dup := false
			for _, prev := range n.Children[:i] {
				if prev == c {
					dup = true
					break
				}
			}
			if !dup {
				n.TotalCost += c.TotalCost
			}
		}
		return n
	}
	root := rec(w)
	root.TotalCost = w.total
	return root, sig
}

// signature collects the rule signature of the winning pexpr tree without
// materializing any plan nodes — the plan-less sibling of extract, used by
// OptimizeCost. It visits each distinct pexpr exactly once, like extract's
// built map, so the resulting bit vector is identical to the Signature an
// extract of the same winner would report.
func (s *search) signature(w *winner) bitvec.Vector {
	var sig bitvec.Vector
	seen := make(map[*pexpr]struct{})
	var rec func(p *pexpr)
	rec = func(p *pexpr) {
		if _, ok := seen[p]; ok {
			return
		}
		seen[p] = struct{}{}
		if p.ruleID >= 0 {
			sig.Set(p.ruleID)
		}
		if p.lexpr != nil {
			sig = sig.Or(p.lexpr.Provenance)
		}
		for _, c := range p.children {
			rec(c)
		}
	}
	rec(w)
	return sig
}

func copyPayload(dst *plan.PhysNode, src *plan.Node) {
	dst.Table = src.Table
	dst.Pred = src.Pred
	dst.Projs = src.Projs
	dst.GroupKeys = src.GroupKeys
	dst.Aggs = src.Aggs
	dst.Processor = src.Processor
	dst.ReduceKeys = src.ReduceKeys
	dst.TopN = src.TopN
	dst.SortKeys = src.SortKeys
	dst.OutputPath = src.OutputPath
}
